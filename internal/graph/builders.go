package graph

import (
	"fmt"
	"math/rand"
)

// Line returns a directed path graph with n edges v0->v1->...->vn.
// Edges are named "e1".."en". It panics if n < 1.
func Line(n int) *Graph {
	if n < 1 {
		panic("graph: Line needs n >= 1")
	}
	g := New()
	prev := g.AddNode("v0")
	for i := 1; i <= n; i++ {
		cur := g.AddNode(fmt.Sprintf("v%d", i))
		g.AddEdge(prev, cur, fmt.Sprintf("e%d", i))
		prev = cur
	}
	return g
}

// Ring returns a directed cycle with n edges v0->v1->...->v0.
// Edges are named "e1".."en". It panics if n < 2 (self-loops are not
// representable).
func Ring(n int) *Graph {
	if n < 2 {
		panic("graph: Ring needs n >= 2")
	}
	g := New()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(nodes[i], nodes[(i+1)%n], fmt.Sprintf("e%d", i+1))
	}
	return g
}

// Complete returns the complete directed graph on n nodes (an edge in
// each direction between every pair). It panics if n < 2.
func Complete(n int) *Graph {
	if n < 2 {
		panic("graph: Complete needs n >= 2")
	}
	g := New()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(nodes[i], nodes[j], "")
			}
		}
	}
	return g
}

// Grid returns a directed rows x cols grid with rightward and downward
// edges (a DAG). Nodes are named "r<i>c<j>". It panics unless both
// dimensions are >= 1 and at least one is >= 2.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("graph: Grid needs at least two nodes")
	}
	g := New()
	ids := make([][]NodeID, rows)
	for i := 0; i < rows; i++ {
		ids[i] = make([]NodeID, cols)
		for j := 0; j < cols; j++ {
			ids[i][j] = g.AddNode(fmt.Sprintf("r%dc%d", i, j))
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				g.AddEdge(ids[i][j], ids[i][j+1], "")
			}
			if i+1 < rows {
				g.AddEdge(ids[i][j], ids[i+1][j], "")
			}
		}
	}
	return g
}

// TwoParallelPaths returns a DAG with a source s, sink t, and two
// disjoint directed paths of the given lengths between them. Edges on
// the first path are named "p1_1".. and on the second "p2_1"...
// It panics unless both lengths are >= 1.
func TwoParallelPaths(len1, len2 int) *Graph {
	if len1 < 1 || len2 < 1 {
		panic("graph: TwoParallelPaths needs lengths >= 1")
	}
	g := New()
	s := g.AddNode("s")
	t := g.AddNode("t")
	addPath := func(prefix string, n int) {
		prev := s
		for i := 1; i <= n; i++ {
			var cur NodeID
			if i == n {
				cur = t
			} else {
				cur = g.AddNode(fmt.Sprintf("%s_v%d", prefix, i))
			}
			g.AddEdge(prev, cur, fmt.Sprintf("%s_%d", prefix, i))
			prev = cur
		}
	}
	addPath("p1", len1)
	addPath("p2", len2)
	return g
}

// RandomDAG returns a random directed acyclic graph: n nodes with a
// fixed topological order and m distinct forward edges drawn uniformly
// (seeded, deterministic). Every non-sink node keeps at least one
// outgoing edge towards its successor so the graph stays connected
// enough to route on. It panics unless n >= 2 and m >= n-1, or if m
// exceeds the n(n-1)/2 forward pairs.
func RandomDAG(n int, m int, seed int64) *Graph {
	if n < 2 {
		panic("graph: RandomDAG needs n >= 2")
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		panic(fmt.Sprintf("graph: RandomDAG needs n-1 <= m <= %d", maxM))
	}
	g := New()
	nodes := g.AddNodes(n)
	rng := rand.New(rand.NewSource(seed))
	used := make(map[[2]int]bool, m)
	// Backbone: the topological chain, guaranteeing reachability.
	for i := 0; i+1 < n; i++ {
		g.AddEdge(nodes[i], nodes[i+1], "")
		used[[2]int{i, i + 1}] = true
	}
	for g.NumEdges() < m {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		key := [2]int{i, j}
		if used[key] {
			continue
		}
		used[key] = true
		g.AddEdge(nodes[i], nodes[j], "")
	}
	return g
}
