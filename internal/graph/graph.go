// Package graph implements the directed multigraphs on which adversarial
// queuing executions run.
//
// A network in the adversarial queuing model (Borodin et al., J. ACM 2001)
// is a directed graph G = (V, E): nodes are switches and each edge is a
// unit-capacity link with a buffer at its tail. Parallel edges and named
// edges are supported because the constructions in Lotker, Patt-Shamir
// and Rosén (SICOMP 2004) address edges by name (a, e_i, f_i, a', e_0).
//
// Graphs are append-only: nodes and edges may be added but never removed,
// so NodeID and EdgeID values stay valid for the lifetime of the graph.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of a Graph. IDs are dense, starting at 0.
type NodeID int32

// EdgeID identifies an edge of a Graph. IDs are dense, starting at 0.
type EdgeID int32

// NoNode and NoEdge are sentinel "not found" values.
const (
	NoNode NodeID = -1
	NoEdge EdgeID = -1
)

// Edge is a directed link of the network. A buffer sits at its tail
// (the From node); one packet may cross the edge per time step.
type Edge struct {
	ID   EdgeID
	From NodeID
	To   NodeID
	Name string // optional; unique when nonempty
}

// Graph is a directed multigraph. The zero value is an empty graph
// ready to use.
type Graph struct {
	nodeNames []string
	edges     []Edge
	out       [][]EdgeID // outgoing edge IDs per node
	in        [][]EdgeID // incoming edge IDs per node
	nodeByNm  map[string]NodeID
	edgeByNm  map[string]EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodeByNm: make(map[string]NodeID),
		edgeByNm: make(map[string]EdgeID),
	}
}

func (g *Graph) lazyInit() {
	if g.nodeByNm == nil {
		g.nodeByNm = make(map[string]NodeID)
	}
	if g.edgeByNm == nil {
		g.edgeByNm = make(map[string]EdgeID)
	}
}

// AddNode adds a node with an optional name (empty means anonymous) and
// returns its ID. It panics if the name is already taken.
func (g *Graph) AddNode(name string) NodeID {
	g.lazyInit()
	if name != "" {
		if _, ok := g.nodeByNm[name]; ok {
			panic(fmt.Sprintf("graph: duplicate node name %q", name))
		}
	}
	id := NodeID(len(g.nodeNames))
	g.nodeNames = append(g.nodeNames, name)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if name != "" {
		g.nodeByNm[name] = id
	}
	return id
}

// AddNodes adds n anonymous nodes and returns their IDs.
func (g *Graph) AddNodes(n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode("")
	}
	return ids
}

// AddEdge adds a directed edge from -> to with an optional unique name
// and returns its ID. Self-loops are rejected: the model's routes are
// simple directed paths, which can never use a self-loop.
func (g *Graph) AddEdge(from, to NodeID, name string) EdgeID {
	g.lazyInit()
	if !g.validNode(from) || !g.validNode(to) {
		panic(fmt.Sprintf("graph: AddEdge with invalid endpoint %d->%d", from, to))
	}
	if from == to {
		panic("graph: self-loop edges are not allowed")
	}
	if name != "" {
		if _, ok := g.edgeByNm[name]; ok {
			panic(fmt.Sprintf("graph: duplicate edge name %q", name))
		}
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Name: name})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	if name != "" {
		g.edgeByNm[name] = id
	}
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodeNames) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns all edges in ID order. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// NodeName returns the name of node id ("" if anonymous).
func (g *Graph) NodeName(id NodeID) string { return g.nodeNames[id] }

// EdgeName returns the name of edge id, or "e<id>" if anonymous.
func (g *Graph) EdgeName(id EdgeID) string {
	if id == NoEdge {
		return "<none>"
	}
	if n := g.edges[id].Name; n != "" {
		return n
	}
	return fmt.Sprintf("e%d", id)
}

// NodeByName returns the node with the given name, or NoNode.
func (g *Graph) NodeByName(name string) NodeID {
	if id, ok := g.nodeByNm[name]; ok {
		return id
	}
	return NoNode
}

// EdgeByName returns the edge with the given name, or NoEdge.
func (g *Graph) EdgeByName(name string) EdgeID {
	if id, ok := g.edgeByNm[name]; ok {
		return id
	}
	return NoEdge
}

// MustEdge returns the edge with the given name and panics if absent.
// Constructions use it to resolve their named gadget edges.
func (g *Graph) MustEdge(name string) EdgeID {
	id := g.EdgeByName(name)
	if id == NoEdge {
		panic(fmt.Sprintf("graph: no edge named %q", name))
	}
	return id
}

// Out returns the outgoing edges of node v (shared slice; do not modify).
func (g *Graph) Out(v NodeID) []EdgeID { return g.out[v] }

// In returns the incoming edges of node v (shared slice; do not modify).
func (g *Graph) In(v NodeID) []EdgeID { return g.in[v] }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// MaxInDegree returns the maximum in-degree over all nodes (the
// parameter α of Díaz et al.).
func (g *Graph) MaxInDegree() int {
	max := 0
	for v := range g.in {
		if d := len(g.in[v]); d > max {
			max = d
		}
	}
	return max
}

func (g *Graph) validNode(v NodeID) bool { return v >= 0 && int(v) < len(g.nodeNames) }

func (g *Graph) validEdge(e EdgeID) bool { return e >= 0 && int(e) < len(g.edges) }

// IsPath reports whether route is a contiguous directed walk: each
// edge's head is the next edge's tail. An empty route is not a path.
func (g *Graph) IsPath(route []EdgeID) bool {
	if len(route) == 0 {
		return false
	}
	for i, e := range route {
		if !g.validEdge(e) {
			return false
		}
		if i > 0 && g.edges[route[i-1]].To != g.edges[e].From {
			return false
		}
	}
	return true
}

// IsSimplePath reports whether route is a directed path visiting no
// node twice (the model requires injected routes to be simple).
func (g *Graph) IsSimplePath(route []EdgeID) bool {
	if !g.IsPath(route) {
		return false
	}
	seen := make(map[NodeID]bool, len(route)+1)
	seen[g.edges[route[0]].From] = true
	for _, e := range route {
		to := g.edges[e].To
		if seen[to] {
			return false
		}
		seen[to] = true
	}
	return true
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, g.NumNodes())
	var visit func(v NodeID) bool
	visit = func(v NodeID) bool {
		color[v] = gray
		for _, e := range g.out[v] {
			w := g.edges[e].To
			switch color[w] {
			case gray:
				return true
			case white:
				if visit(w) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < g.NumNodes(); v++ {
		if color[v] == white && visit(NodeID(v)) {
			return true
		}
	}
	return false
}

// Reachable reports whether node to is reachable from node from.
func (g *Graph) Reachable(from, to NodeID) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[v] {
			w := g.edges[e].To
			if w == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// ShortestPath returns a minimum-hop route (as edge IDs) from node
// `from` to node `to`, or nil if none exists. Ties are broken towards
// lower edge IDs, so the result is deterministic.
func (g *Graph) ShortestPath(from, to NodeID) []EdgeID {
	if from == to {
		return []EdgeID{}
	}
	prev := make([]EdgeID, g.NumNodes())
	for i := range prev {
		prev[i] = NoEdge
	}
	visited := make([]bool, g.NumNodes())
	visited[from] = true
	frontier := []NodeID{from}
	for len(frontier) > 0 && !visited[to] {
		var next []NodeID
		for _, v := range frontier {
			for _, e := range g.out[v] {
				w := g.edges[e].To
				if !visited[w] {
					visited[w] = true
					prev[w] = e
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	if !visited[to] {
		return nil
	}
	var rev []EdgeID
	for v := to; v != from; {
		e := prev[v]
		rev = append(rev, e)
		v = g.edges[e].From
	}
	route := make([]EdgeID, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	return route
}

// RouteString formats a route as "a -> e1 -> ... " using edge names.
func (g *Graph) RouteString(route []EdgeID) string {
	if len(route) == 0 {
		return "<empty>"
	}
	s := g.EdgeName(route[0])
	for _, e := range route[1:] {
		s += " -> " + g.EdgeName(e)
	}
	return s
}

// NamedEdges returns the names of all named edges, sorted.
func (g *Graph) NamedEdges() []string {
	names := make([]string, 0, len(g.edgeByNm))
	for n := range g.edgeByNm {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
