package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("")
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	e1 := g.AddEdge(a, b, "ab")
	e2 := g.AddEdge(b, c, "")
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Edge(e1).From != a || g.Edge(e1).To != b {
		t.Error("edge endpoints wrong")
	}
	if g.EdgeByName("ab") != e1 {
		t.Error("EdgeByName failed")
	}
	if g.NodeByName("b") != b {
		t.Error("NodeByName failed")
	}
	if g.NodeByName("zzz") != NoNode {
		t.Error("missing node should be NoNode")
	}
	if g.EdgeByName("zzz") != NoEdge {
		t.Error("missing edge should be NoEdge")
	}
	if g.EdgeName(e2) != "e1" {
		t.Errorf("anonymous edge name = %q", g.EdgeName(e2))
	}
	if g.EdgeName(NoEdge) != "<none>" {
		t.Errorf("NoEdge name = %q", g.EdgeName(NoEdge))
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, "ab")
	if g.NumEdges() != 1 {
		t.Fatal("zero value graph broken")
	}
}

func TestDuplicateNamesPanic(t *testing.T) {
	g := New()
	g.AddNode("a")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate node name did not panic")
			}
		}()
		g.AddNode("a")
	}()
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(b, c, "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate edge name did not panic")
			}
		}()
		g.AddEdge(c, b, "x")
	}()
}

func TestSelfLoopPanics(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Error("self-loop did not panic")
		}
	}()
	g.AddEdge(a, a, "")
}

func TestInvalidEndpointPanics(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Error("invalid endpoint did not panic")
		}
	}()
	g.AddEdge(a, NodeID(99), "")
}

func TestMustEdge(t *testing.T) {
	g := Line(3)
	if g.MustEdge("e2") == NoEdge {
		t.Error("MustEdge failed on present edge")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEdge on missing edge did not panic")
		}
	}()
	g.MustEdge("nope")
}

func TestParallelEdges(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	e1 := g.AddEdge(a, b, "x")
	e2 := g.AddEdge(a, b, "y")
	if e1 == e2 {
		t.Error("parallel edges share an ID")
	}
	if g.OutDegree(a) != 2 || g.InDegree(b) != 2 {
		t.Error("degrees wrong with parallel edges")
	}
}

func TestDegreesAndMaxInDegree(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, c, "")
	g.AddEdge(b, c, "")
	g.AddEdge(c, a, "")
	if g.OutDegree(c) != 1 || g.InDegree(c) != 2 {
		t.Error("degree accounting wrong")
	}
	if g.MaxInDegree() != 2 {
		t.Errorf("MaxInDegree = %d, want 2", g.MaxInDegree())
	}
}

func TestIsPathAndSimplePath(t *testing.T) {
	g := Line(4) // e1..e4
	route := []EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
	if !g.IsPath(route) || !g.IsSimplePath(route) {
		t.Error("line prefix should be a simple path")
	}
	if g.IsPath(nil) {
		t.Error("empty route is not a path")
	}
	bad := []EdgeID{g.MustEdge("e1"), g.MustEdge("e3")}
	if g.IsPath(bad) {
		t.Error("gap route should not be a path")
	}
	if g.IsPath([]EdgeID{EdgeID(99)}) {
		t.Error("invalid edge id should not be a path")
	}
}

func TestSimplePathRejectsCycle(t *testing.T) {
	g := Ring(3)
	full := []EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
	if !g.IsPath(full) {
		t.Error("ring walk is a path")
	}
	if g.IsSimplePath(full) {
		t.Error("full ring revisits start node; not simple")
	}
	part := full[:2]
	if !g.IsSimplePath(part) {
		t.Error("partial ring is simple")
	}
}

func TestHasCycle(t *testing.T) {
	if Line(5).HasCycle() {
		t.Error("line has no cycle")
	}
	if !Ring(4).HasCycle() {
		t.Error("ring has a cycle")
	}
	if Grid(3, 3).HasCycle() {
		t.Error("grid DAG has no cycle")
	}
	if TwoParallelPaths(3, 5).HasCycle() {
		t.Error("parallel paths DAG has no cycle")
	}
}

func TestReachable(t *testing.T) {
	g := Line(3)
	v0, v3 := g.NodeByName("v0"), g.NodeByName("v3")
	if !g.Reachable(v0, v3) {
		t.Error("v3 reachable from v0")
	}
	if g.Reachable(v3, v0) {
		t.Error("v0 not reachable from v3 in a line")
	}
	if !g.Reachable(v0, v0) {
		t.Error("node reachable from itself")
	}
}

func TestShortestPath(t *testing.T) {
	g := TwoParallelPaths(2, 5)
	s, tt := g.NodeByName("s"), g.NodeByName("t")
	p := g.ShortestPath(s, tt)
	if len(p) != 2 {
		t.Fatalf("shortest path length = %d, want 2", len(p))
	}
	if !g.IsSimplePath(p) {
		t.Error("shortest path is not simple")
	}
	if g.Edge(p[0]).From != s || g.Edge(p[1]).To != tt {
		t.Error("path endpoints wrong")
	}
	if got := g.ShortestPath(tt, s); got != nil {
		t.Error("no reverse path in DAG")
	}
	if got := g.ShortestPath(s, s); len(got) != 0 || got == nil {
		t.Error("self path should be empty non-nil")
	}
}

func TestShortestPathOnGrid(t *testing.T) {
	g := Grid(3, 4)
	from := g.NodeByName("r0c0")
	to := g.NodeByName("r2c3")
	p := g.ShortestPath(from, to)
	if len(p) != 5 {
		t.Fatalf("grid shortest path = %d hops, want 5", len(p))
	}
	if !g.IsSimplePath(p) {
		t.Error("grid path not simple")
	}
}

func TestBuildersShapes(t *testing.T) {
	if g := Line(7); g.NumNodes() != 8 || g.NumEdges() != 7 {
		t.Error("Line shape wrong")
	}
	if g := Ring(5); g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Error("Ring shape wrong")
	}
	if g := Complete(4); g.NumNodes() != 4 || g.NumEdges() != 12 {
		t.Error("Complete shape wrong")
	}
	if g := Grid(2, 3); g.NumNodes() != 6 || g.NumEdges() != 7 {
		t.Errorf("Grid shape wrong: %d nodes %d edges", Grid(2, 3).NumNodes(), Grid(2, 3).NumEdges())
	}
	if g := TwoParallelPaths(3, 4); g.NumNodes() != 2+2+3 || g.NumEdges() != 7 {
		t.Error("TwoParallelPaths shape wrong")
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Line(0)":   func() { Line(0) },
		"Ring(1)":   func() { Ring(1) },
		"Complete1": func() { Complete(1) },
		"Grid(0,5)": func() { Grid(0, 5) },
		"Grid(1,1)": func() { Grid(1, 1) },
		"TPP(0,1)":  func() { TwoParallelPaths(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDOT(t *testing.T) {
	g := Line(2)
	dot := g.DOTString("line")
	for _, want := range []string{"digraph \"line\"", "e1", "e2", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != g.DOTString("line") {
		t.Error("DOT output not deterministic")
	}
}

func TestRouteString(t *testing.T) {
	g := Line(3)
	r := []EdgeID{g.MustEdge("e1"), g.MustEdge("e2")}
	if got := g.RouteString(r); got != "e1 -> e2" {
		t.Errorf("RouteString = %q", got)
	}
	if got := g.RouteString(nil); got != "<empty>" {
		t.Errorf("RouteString(nil) = %q", got)
	}
}

func TestNamedEdgesSorted(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b, "zz")
	g.AddEdge(b, c, "aa")
	g.AddEdge(c, a, "")
	got := g.NamedEdges()
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Errorf("NamedEdges = %v", got)
	}
}

// Property: in any Line(n), every contiguous edge window is a simple path.
func TestQuickLineWindowsSimple(t *testing.T) {
	f := func(n, lo, ln uint8) bool {
		size := int(n%20) + 1
		g := Line(size)
		start := int(lo) % size
		length := int(ln)%(size-start) + 1
		route := make([]EdgeID, 0, length)
		for i := 0; i < length; i++ {
			route = append(route, EdgeID(start+i))
		}
		return g.IsSimplePath(route)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ShortestPath on a ring from v0 to vk has k hops.
func TestQuickRingShortest(t *testing.T) {
	f := func(n, k uint8) bool {
		size := int(n%20) + 2
		g := Ring(size)
		target := int(k) % size
		p := g.ShortestPath(0, NodeID(target))
		return len(p) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
