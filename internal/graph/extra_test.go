package graph

import (
	"testing"
	"testing/quick"
)

func TestAddNodes(t *testing.T) {
	g := New()
	ids := g.AddNodes(5)
	if len(ids) != 5 || g.NumNodes() != 5 {
		t.Fatalf("AddNodes: %v", ids)
	}
	for i, id := range ids {
		if int(id) != i {
			t.Errorf("id[%d] = %d", i, id)
		}
		if g.NodeName(id) != "" {
			t.Error("anonymous node has a name")
		}
	}
}

func TestEdgesSlice(t *testing.T) {
	g := Line(3)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges = %d", len(es))
	}
	for i, e := range es {
		if int(e.ID) != i {
			t.Errorf("edge %d has ID %d", i, e.ID)
		}
	}
}

func TestRandomDAG(t *testing.T) {
	g := RandomDAG(10, 20, 7)
	if g.NumNodes() != 10 || g.NumEdges() != 20 {
		t.Fatalf("shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.HasCycle() {
		t.Error("RandomDAG produced a cycle")
	}
	// Deterministic for a fixed seed.
	h := RandomDAG(10, 20, 7)
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(EdgeID(i)) != h.Edge(EdgeID(i)) {
			t.Fatal("same seed produced different graphs")
		}
	}
	// The backbone makes the last node reachable from the first.
	if !g.Reachable(0, NodeID(9)) {
		t.Error("sink unreachable")
	}
}

func TestRandomDAGPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n<2":   func() { RandomDAG(1, 1, 1) },
		"m<n-1": func() { RandomDAG(5, 3, 1) },
		"m>max": func() { RandomDAG(4, 7, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuickRandomDAGAcyclic(t *testing.T) {
	f := func(nRaw, mRaw uint8, seed int64) bool {
		n := int(nRaw%12) + 2
		maxM := n * (n - 1) / 2
		span := maxM - (n - 1)
		m := n - 1
		if span > 0 {
			m += int(mRaw) % (span + 1)
		}
		g := RandomDAG(n, m, seed)
		return !g.HasCycle() && g.NumEdges() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
