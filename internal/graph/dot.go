package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOT writes the graph in Graphviz DOT format. Named nodes and edges
// keep their names; anonymous ones get positional labels. Edge IDs are
// stable, so the output is deterministic.
func (g *Graph) DOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.NumNodes(); v++ {
		label := g.nodeNames[v]
		if label == "" {
			label = fmt.Sprintf("n%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From, e.To, g.EdgeName(e.ID))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DOTString returns the DOT rendering as a string.
func (g *Graph) DOTString(title string) string {
	var sb strings.Builder
	if err := g.DOT(&sb, title); err != nil {
		// strings.Builder never fails; keep the error path honest anyway.
		panic(err)
	}
	return sb.String()
}
