package gadget

import (
	"strings"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/sim"
)

func TestChainShape(t *testing.T) {
	n, m := 3, 4
	c := NewChain(n, m, false)
	// Edges: M+1 ingress/egress + 2n per gadget.
	wantEdges := (m + 1) + 2*n*m
	if got := c.G.NumEdges(); got != wantEdges {
		t.Errorf("edges = %d, want %d", got, wantEdges)
	}
	// Nodes: src + sink + per gadget (v, w, 2(n-1) intermediates).
	wantNodes := 2 + m*(2+2*(n-1))
	if got := c.G.NumNodes(); got != wantNodes {
		t.Errorf("nodes = %d, want %d", got, wantNodes)
	}
	if c.HasStitch() {
		t.Error("open chain has no stitch")
	}
	if c.G.HasCycle() {
		t.Error("open chain must be a DAG")
	}
}

func TestChainSharedEdges(t *testing.T) {
	c := NewChain(2, 3, false)
	for k := 1; k < 3; k++ {
		if c.Egress(k) != c.Ingress(k+1) {
			t.Errorf("egress of gadget %d != ingress of gadget %d", k, k+1)
		}
	}
	if c.G.EdgeName(c.Ingress(1)) != "a1" {
		t.Errorf("ingress name = %s", c.G.EdgeName(c.Ingress(1)))
	}
	if c.G.EdgeName(c.Egress(3)) != "a4" {
		t.Errorf("egress name = %s", c.G.EdgeName(c.Egress(3)))
	}
}

func TestStitchClosesCycle(t *testing.T) {
	c := NewChain(2, 2, true)
	if !c.HasStitch() {
		t.Fatal("stitch missing")
	}
	if !c.G.HasCycle() {
		t.Error("G_eps must contain a cycle")
	}
	// e0 runs from the head of the last egress to the tail of a1.
	e0 := c.G.Edge(c.Stitch())
	last := c.G.Edge(c.Egress(2))
	first := c.G.Edge(c.Ingress(1))
	if e0.From != last.To || e0.To != first.From {
		t.Error("stitch endpoints wrong")
	}
	// The recycle route egress->e0->ingress must be a simple path
	// (Lemma 3.16 uses three edges in series).
	route := []graph.EdgeID{c.Egress(2), c.Stitch(), c.Ingress(1)}
	if !c.G.IsSimplePath(route) {
		t.Error("recycle route is not simple")
	}
}

func TestRoutesAreSimple(t *testing.T) {
	c := NewChain(4, 3, true)
	for k := 1; k <= 3; k++ {
		if !c.G.IsSimplePath(c.LongRoute(k)) {
			t.Errorf("long route of gadget %d not simple", k)
		}
		for i := 1; i <= 4; i++ {
			if !c.G.IsSimplePath(c.EgressRouteOfE(k, i)) {
				t.Errorf("e-route (%d,%d) not simple", k, i)
			}
		}
	}
	// A pump route spanning two gadgets: a<k>,f…,a<k+1>,f'…,a<k+2>.
	span := []graph.EdgeID{c.Ingress(1)}
	span = append(span, c.FPath(1)...)
	span = append(span, c.Ingress(2))
	span = append(span, c.FPath(2)...)
	span = append(span, c.Egress(2))
	if !c.G.IsSimplePath(span) {
		t.Error("two-gadget long route not simple")
	}
}

func TestGadgetEdges(t *testing.T) {
	c := NewChain(2, 2, false)
	edges := c.GadgetEdges(1)
	if len(edges) != 1+2*2 {
		t.Errorf("gadget edges = %d", len(edges))
	}
	for _, eid := range edges {
		if eid == c.Egress(1) {
			t.Error("egress must not belong to the gadget's own edge set")
		}
	}
}

func TestIndexPanics(t *testing.T) {
	c := NewChain(2, 2, false)
	for name, f := range map[string]func(){
		"Ingress(0)": func() { c.Ingress(0) },
		"Egress(3)":  func() { c.Egress(3) },
		"EPath(-1)":  func() { c.EPath(-1) },
		"bad chain":  func() { NewChain(0, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSeedInvariantEstablishesC(t *testing.T) {
	c := NewChain(3, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, 10)
	rep := c.CheckInvariant(e, 1, false)
	if !rep.Holds(0) {
		t.Fatalf("seeded invariant does not hold: %v", rep.Err(0))
	}
	if rep.ETotal != 10 || rep.AQueue != 10 || rep.S() != 10 {
		t.Errorf("report = %+v", rep)
	}
	// Gadget 2 must be empty.
	rep2 := c.CheckInvariant(e, 2, false)
	if rep2.ETotal != 0 || rep2.AQueue != 0 || rep2.Strays != 0 {
		t.Errorf("gadget 2 not empty: %+v", rep2)
	}
	if got := c.TotalQueuedInGadget(e, 1); got != 20 {
		t.Errorf("gadget 1 total = %d", got)
	}
}

func TestSeedInvariantPanicsOnSmallS(t *testing.T) {
	c := NewChain(5, 1, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	defer func() {
		if recover() == nil {
			t.Error("S < n did not panic")
		}
	}()
	c.SeedInvariant(e, 1, 3)
}

func TestClaim38OneOldPacketCrossesEgressPerStep(t *testing.T) {
	// With C(S,F) seeded and no injections, exactly one packet must
	// arrive at the tail of a' in each step of [1, 2S] (Claim 3.8).
	n, s := 3, 12
	c := NewChain(n, 1, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, s)
	egress := c.Egress(1)
	arrivals := 0
	prev := 0
	for step := 1; step <= 2*s; step++ {
		// Count cumulative arrivals at a' = packets that entered its
		// buffer plus those already forwarded beyond it.
		e.Step()
		cur := int(e.Absorbed()) + e.QueueLen(egress)
		got := cur - prev
		// a' itself forwards one packet per step once nonempty; track
		// arrivals as (queue delta) + (sent this step).
		_ = got
		arrivals = cur
		prev = cur
	}
	// All 2S packets must have reached (or passed) a' by step 2S... they
	// arrive by step S+n and drain one per step afterwards.
	if arrivals != 2*s {
		t.Errorf("arrivals tracked %d, want %d", arrivals, 2*s)
	}
}

func TestInvariantDrainTiming(t *testing.T) {
	// From C(S,F) with no further injections: arrivals at the tail of
	// a' happen once per step in [1, S] (e-packets, Claim 3.8) and
	// [n+1, S+n] (a-packets), so a' is continuously busy from step 2
	// and absorbs the 2S-th packet at step 2S + 1.
	n, s := 3, 9
	c := NewChain(n, 1, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, s)
	drained := e.RunUntil(func(e *sim.Engine) bool { return e.TotalQueued() == 0 }, 100)
	if !drained {
		t.Fatal("did not drain")
	}
	want := int64(2*s + 1)
	if e.Now() != want {
		t.Errorf("drained at step %d, want %d", e.Now(), want)
	}
	// The paper's Lemma 3.13 drain bound: at step S + n at least S - n
	// packets sit at the egress buffer.
	e2 := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e2, 1, s)
	e2.Run(int64(s + n))
	if got := e2.QueueLen(c.Egress(1)); got < s-n {
		t.Errorf("egress queue at S+n = %d, want >= %d", got, s-n)
	}
}

func TestCheckInvariantRelaxedRoutes(t *testing.T) {
	// Packets whose routes continue beyond the gadget's egress satisfy
	// the invariant only in relaxed mode.
	c := NewChain(2, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	for j := 0; j < 2; j++ {
		i := (j % 2) + 1
		route := c.EgressRouteOfE(1, i)
		route = append(route, c.EPath(2)[0]) // wrong: continues into g2.e1
		// a2 -> g2.e1 requires contiguity: EgressRouteOfE ends at a2,
		// whose head is v2, the tail of g2.e1 — contiguous.
		e.Seed(packet.Injection{Route: route})
	}
	for j := 0; j < 2; j++ {
		route := c.LongRoute(1)
		route = append(route, c.EPath(2)[0])
		e.Seed(packet.Injection{Route: route})
	}
	strict := c.CheckInvariant(e, 1, false)
	if strict.BadERoutes == 0 && strict.BadARoutes == 0 {
		t.Error("strict check should flag extended routes")
	}
	relaxed := c.CheckInvariant(e, 1, true)
	if !relaxed.Holds(0) {
		t.Errorf("relaxed check should accept extended routes: %v", relaxed.Err(0))
	}
}

func TestInvariantReportHoldsSlack(t *testing.T) {
	rep := InvariantReport{ETotal: 100, AQueue: 97}
	if rep.Holds(2) {
		t.Error("slack 2 should reject diff 3")
	}
	if !rep.Holds(3) {
		t.Error("slack 3 should accept diff 3")
	}
	if rep.S() != 97 {
		t.Errorf("S = %d", rep.S())
	}
	if rep.Err(3) != nil {
		t.Error("Err should be nil within slack")
	}
	if rep.Err(0) == nil {
		t.Error("Err should flag outside slack")
	}
	bad := InvariantReport{ETotal: 5, AQueue: 5, EmptyE: []int{2}}
	if bad.Holds(0) {
		t.Error("empty e-buffer must fail")
	}
	if !strings.Contains(bad.Err(0).Error(), "emptyE") {
		t.Errorf("Err text: %v", bad.Err(0))
	}
}

func TestDOTOutputsNamedEdges(t *testing.T) {
	c := NewChain(2, 2, true)
	dot := c.G.DOTString("F2_2")
	for _, want := range []string{"a1", "a2", "a3", "g1.e1", "g2.f2", "e0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}
