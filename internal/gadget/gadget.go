// Package gadget builds the parametric networks of section 3 of the
// paper: the gadget Fₙ (Definition 3.4, Figure 3.1), daisy chains F^M,
// and the cyclic graph G_ε of Theorem 3.17 (Figure 3.2), together with
// the gadget invariant C(S, Fₙ) of Definition 3.5.
//
// An Fₙ gadget has an ingress edge a, an egress edge a′, and two
// parallel paths of length n between them, e₁…eₙ and f₁…fₙ. Daisy
// chaining identifies the egress of one gadget with the ingress of the
// next. In a chain of M gadgets the shared edges are named a1…a(M+1):
// gadget k has ingress a<k> and egress a<k+1>, and its internal edges
// are g<k>.e<i> and g<k>.f<i>. The optional stitch edge e0 (Theorem
// 3.17) connects the head of a(M+1) back to the tail of a1.
package gadget

import (
	"fmt"

	"aqt/internal/buffer"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/sim"
)

// Chain is a daisy chain of M Fₙ gadgets, optionally closed by the
// stitch edge e0.
type Chain struct {
	G *graph.Graph
	N int // path length inside each gadget
	M int // number of gadgets

	// ingress[k-1] is a<k>; ingress[M] is the egress of the last gadget.
	ingress []graph.EdgeID
	// e[k-1][i-1] and f[k-1][i-1] are g<k>.e<i> and g<k>.f<i>.
	e [][]graph.EdgeID
	f [][]graph.EdgeID
	// stitch is e0 or graph.NoEdge.
	stitch graph.EdgeID
}

// NewChain builds F^M with gadget parameter n. If stitch is true the
// graph is G_ε: an extra edge e0 closes the chain into a cycle.
// It panics unless n >= 1 and m >= 1.
func NewChain(n, m int, stitch bool) *Chain {
	if n < 1 || m < 1 {
		panic("gadget: need n >= 1 and m >= 1")
	}
	g := graph.New()
	c := &Chain{G: g, N: n, M: m, stitch: graph.NoEdge}

	src := g.AddNode("src")
	prevExit := src
	for k := 1; k <= m; k++ {
		entry := g.AddNode(fmt.Sprintf("v%d", k))
		c.ingress = append(c.ingress, g.AddEdge(prevExit, entry, fmt.Sprintf("a%d", k)))
		exit := g.AddNode(fmt.Sprintf("w%d", k))
		c.e = append(c.e, addParallelPath(g, entry, exit, n, fmt.Sprintf("g%d.e", k)))
		c.f = append(c.f, addParallelPath(g, entry, exit, n, fmt.Sprintf("g%d.f", k)))
		prevExit = exit
	}
	sink := g.AddNode("sink")
	c.ingress = append(c.ingress, g.AddEdge(prevExit, sink, fmt.Sprintf("a%d", m+1)))
	if stitch {
		c.stitch = g.AddEdge(sink, src, "e0")
	}
	return c
}

// addParallelPath adds a path of n edges from entry to exit named
// prefix+"1"..prefix+"n", creating n-1 intermediate nodes.
func addParallelPath(g *graph.Graph, entry, exit graph.NodeID, n int, prefix string) []graph.EdgeID {
	edges := make([]graph.EdgeID, n)
	prev := entry
	for i := 1; i <= n; i++ {
		var cur graph.NodeID
		if i == n {
			cur = exit
		} else {
			cur = g.AddNode(fmt.Sprintf("%s%d.n", prefix, i))
		}
		edges[i-1] = g.AddEdge(prev, cur, fmt.Sprintf("%s%d", prefix, i))
		prev = cur
	}
	return edges
}

// Ingress returns a<k>, the ingress edge of gadget k (1-based).
func (c *Chain) Ingress(k int) graph.EdgeID {
	c.checkK(k)
	return c.ingress[k-1]
}

// Egress returns a<k+1>, the egress edge of gadget k — also the
// ingress of gadget k+1 when one exists.
func (c *Chain) Egress(k int) graph.EdgeID {
	c.checkK(k)
	return c.ingress[k]
}

// EPath returns the edges e₁…eₙ of gadget k.
func (c *Chain) EPath(k int) []graph.EdgeID {
	c.checkK(k)
	return c.e[k-1]
}

// FPath returns the edges f₁…fₙ of gadget k.
func (c *Chain) FPath(k int) []graph.EdgeID {
	c.checkK(k)
	return c.f[k-1]
}

// Stitch returns e0, or graph.NoEdge for an open chain.
func (c *Chain) Stitch() graph.EdgeID { return c.stitch }

// HasStitch reports whether the chain is closed into G_ε.
func (c *Chain) HasStitch() bool { return c.stitch != graph.NoEdge }

func (c *Chain) checkK(k int) {
	if k < 1 || k > c.M {
		panic(fmt.Sprintf("gadget: gadget index %d out of range [1,%d]", k, c.M))
	}
}

// GadgetEdges returns all edges belonging to gadget k — its ingress,
// both parallel paths, but not its egress (which belongs to gadget
// k+1 in the invariant's accounting).
func (c *Chain) GadgetEdges(k int) []graph.EdgeID {
	c.checkK(k)
	out := []graph.EdgeID{c.Ingress(k)}
	out = append(out, c.EPath(k)...)
	out = append(out, c.FPath(k)...)
	return out
}

// EgressRouteOfE returns the remaining route an old packet queued at
// e_i of gadget k must have under C(S,Fₙ): e_i, …, e_n, a<k+1>.
func (c *Chain) EgressRouteOfE(k, i int) []graph.EdgeID {
	ep := c.EPath(k)
	out := append([]graph.EdgeID{}, ep[i-1:]...)
	return append(out, c.Egress(k))
}

// LongRoute returns the route a<k>, f₁…fₙ, a<k+1> of the "long"
// packets queued at the ingress under C(S,Fₙ).
func (c *Chain) LongRoute(k int) []graph.EdgeID {
	out := []graph.EdgeID{c.Ingress(k)}
	out = append(out, c.FPath(k)...)
	return append(out, c.Egress(k))
}

// InvariantReport is the outcome of checking C(S, Fₙ) on one gadget
// (Definition 3.5). In the exact paper statement ETotal == AQueue == S
// with no violations; discrete rounding makes the two S values differ
// slightly in practice, so callers decide how much slack to accept via
// Holds.
type InvariantReport struct {
	K int // gadget index

	// ETotal is the number of packets in the buffers of e₁…eₙ
	// (condition 1; should be S).
	ETotal int
	// EmptyE lists i with an empty e_i buffer (condition 2 violations).
	EmptyE []int
	// BadERoutes counts packets in e-buffers whose remaining route is
	// not e_i…e_n,a′ (condition 2 violations). Routes extending beyond
	// a′ are allowed when relaxRoutes was set (mid-construction the
	// routes already continue into the next gadget).
	BadERoutes int
	// AQueue is the number of packets at the ingress buffer with
	// remaining route a,f₁…fₙ,a′ (condition 3; should be S).
	AQueue int
	// BadARoutes counts ingress-buffer packets with any other route.
	BadARoutes int
	// Strays counts packets in the gadget's f-buffers (condition 4).
	Strays int
}

// S returns the invariant's S value, the minimum of the two queue
// totals (the usable pump input for the next gadget).
func (r InvariantReport) S() int {
	if r.AQueue < r.ETotal {
		return r.AQueue
	}
	return r.ETotal
}

// Holds reports whether the invariant holds with the given absolute
// slack: the two totals may differ by at most slack, no e-buffer may
// be empty, and no route or stray violations are allowed.
func (r InvariantReport) Holds(slack int) bool {
	diff := r.ETotal - r.AQueue
	if diff < 0 {
		diff = -diff
	}
	return diff <= slack && len(r.EmptyE) == 0 && r.BadERoutes == 0 &&
		r.BadARoutes == 0 && r.Strays == 0
}

// Err returns nil when Holds(slack), else a descriptive error.
func (r InvariantReport) Err(slack int) error {
	if r.Holds(slack) {
		return nil
	}
	return fmt.Errorf("gadget %d: C(S,F) violated: eTotal=%d aQueue=%d emptyE=%v badE=%d badA=%d strays=%d",
		r.K, r.ETotal, r.AQueue, r.EmptyE, r.BadERoutes, r.BadARoutes, r.Strays)
}

// CheckInvariant evaluates C(S, Fₙ) for gadget k on the live engine.
// With relaxRoutes, a packet's remaining route may extend beyond the
// gadget's egress (as happens after the Lemma 3.6 route extensions)
// as long as it begins with the required prefix.
func (c *Chain) CheckInvariant(e *sim.Engine, k int, relaxRoutes bool) InvariantReport {
	rep := InvariantReport{K: k}
	// Conditions 1 and 2: the e-path buffers.
	for i := 1; i <= c.N; i++ {
		eid := c.EPath(k)[i-1]
		q := e.Queue(eid)
		if q.Len() == 0 {
			rep.EmptyE = append(rep.EmptyE, i)
		}
		rep.ETotal += q.Len()
		want := c.EgressRouteOfE(k, i)
		countBadRoutes(q, want, relaxRoutes, &rep.BadERoutes)
	}
	// Condition 3: the ingress buffer.
	want := c.LongRoute(k)
	aq := e.Queue(c.Ingress(k))
	aq.Each(func(p *packet.Packet) bool {
		if routeMatches(p.RemainingRoute(), want, relaxRoutes) {
			rep.AQueue++
		} else {
			rep.BadARoutes++
		}
		return true
	})
	// Condition 4: nothing in the f-buffers.
	for _, eid := range c.FPath(k) {
		rep.Strays += e.QueueLen(eid)
	}
	return rep
}

func countBadRoutes(q *buffer.Buffer, want []graph.EdgeID, relax bool, bad *int) {
	q.Each(func(p *packet.Packet) bool {
		if !routeMatches(p.RemainingRoute(), want, relax) {
			*bad++
		}
		return true
	})
}

// routeMatches reports whether got equals want, or (when relax) starts
// with want.
func routeMatches(got, want []graph.EdgeID, relax bool) bool {
	if relax {
		if len(got) < len(want) {
			return false
		}
		got = got[:len(want)]
	} else if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// SeedInvariant seeds the engine (before its first step) into the
// exact configuration C(S, Fₙ) on gadget k: S packets spread round-
// robin over the e-buffers (each nonempty, in paper's route form) and
// S packets at the ingress with the long route. It panics if S < n.
func (c *Chain) SeedInvariant(e *sim.Engine, k, s int) {
	if s < c.N {
		panic("gadget: SeedInvariant needs S >= n so every e-buffer is nonempty")
	}
	// Fill e_n, e_{n-1}, …: the paper spreads packets with each buffer
	// nonempty; the exact distribution is immaterial to the adversary,
	// which only uses "one old packet crosses a′ per step" (Claim 3.8).
	// Round-robin keeps every buffer nonempty.
	for j := 0; j < s; j++ {
		i := (j % c.N) + 1
		e.Seed(packet.Injection{Route: c.EgressRouteOfE(k, i), Tag: "old-e"})
	}
	for j := 0; j < s; j++ {
		e.Seed(packet.Injection{Route: c.LongRoute(k), Tag: "old-a"})
	}
}

// TotalQueuedInGadget returns the number of packets buffered on gadget
// k's edges (ingress + both paths).
func (c *Chain) TotalQueuedInGadget(e *sim.Engine, k int) int {
	total := 0
	for _, eid := range c.GadgetEdges(k) {
		total += e.QueueLen(eid)
	}
	return total
}
