// Package packet defines the packets that traverse an adversarial
// queuing network and the injection descriptors adversaries emit.
//
// A packet is injected with a simple directed route and crosses it hop
// by hop in store-and-forward fashion; the simulator moves at most one
// packet per edge per time step. Fields the scheduling policies need —
// injection time, arrival time at the current buffer, the remaining
// route — live here so the policy package can stay free of simulator
// internals.
package packet

import (
	"fmt"

	"aqt/internal/graph"
)

// ID identifies a packet within one execution. IDs are assigned
// densely by the engine in injection order.
type ID int64

// Packet is a packet in flight (or queued) in the network. The engine
// owns packets; policies and observers must treat them as read-only.
type Packet struct {
	ID ID

	// Route is the full route of the packet, as (possibly extended by
	// rerouting) at the current time. Route[Pos] is the edge whose
	// buffer currently holds the packet (or which it is crossing).
	Route []graph.EdgeID

	// Pos is the index into Route of the packet's current edge.
	Pos int

	// InjectedAt is the time step at which the packet was injected
	// (the second substep of that step).
	InjectedAt int64

	// ArrivedAt is the time step at which the packet arrived at its
	// current buffer: its injection step for the first edge, or the
	// step in whose second substep it was received. It is the key of
	// FIFO/LIFO ordering.
	ArrivedAt int64

	// EnqueueSeq is a global sequence number assigned on every enqueue,
	// giving a deterministic total order among packets that arrive at
	// the same buffer in the same step.
	EnqueueSeq int64

	// Reroutes counts how many times the packet's route was altered
	// on-line (Lemma 3.3 machinery). The paper requires this to be
	// finite; the Theorem 3.17 construction keeps it <= M.
	Reroutes int

	// Tag is an optional label for experiment bookkeeping (e.g. "old",
	// "short", "long" in the Lemma 3.6 analysis). The engine never
	// reads it.
	Tag string

	// SourceName optionally records which injection stream created the
	// packet, for tracing.
	SourceName string
}

// CurrentEdge returns the edge whose buffer holds the packet.
func (p *Packet) CurrentEdge() graph.EdgeID { return p.Route[p.Pos] }

// RemainingRoute returns the suffix of the route not yet completed,
// starting with the current edge. The slice aliases Route.
func (p *Packet) RemainingRoute() []graph.EdgeID { return p.Route[p.Pos:] }

// RemainingHops returns the number of edges the packet still has to
// cross, including the current one.
func (p *Packet) RemainingHops() int { return len(p.Route) - p.Pos }

// Destination returns the final node of the packet's route.
// It requires access to the graph to resolve the last edge.
func (p *Packet) Destination(g *graph.Graph) graph.NodeID {
	return g.Edge(p.Route[len(p.Route)-1]).To
}

// Source returns the first node of the packet's route.
func (p *Packet) Source(g *graph.Graph) graph.NodeID {
	return g.Edge(p.Route[0]).From
}

// HopsFromSource returns the number of edges already crossed.
func (p *Packet) HopsFromSource() int { return p.Pos }

// String formats a compact description for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d(pos %d/%d, inj %d, arr %d)",
		p.ID, p.Pos, len(p.Route), p.InjectedAt, p.ArrivedAt)
}

// Injection describes one packet an adversary wants to inject. The
// engine validates the route and assigns the packet its identity.
type Injection struct {
	Route []graph.EdgeID
	// Tag and SourceName are copied onto the created packet.
	Tag        string
	SourceName string
}

// Inj is shorthand for constructing an Injection from a route.
func Inj(route ...graph.EdgeID) Injection { return Injection{Route: route} }

// TaggedInj constructs an Injection with a tag.
func TaggedInj(tag string, route ...graph.EdgeID) Injection {
	return Injection{Route: route, Tag: tag}
}

// InjNamed constructs an Injection from named edges of g; it panics on
// an unknown name (MustEdge semantics). Convenient in tests and
// examples.
func InjNamed(g *graph.Graph, names ...string) Injection {
	route := make([]graph.EdgeID, len(names))
	for i, n := range names {
		route[i] = g.MustEdge(n)
	}
	return Injection{Route: route}
}
