package packet

import (
	"strings"
	"testing"

	"aqt/internal/graph"
)

func lineRoute(g *graph.Graph, names ...string) []graph.EdgeID {
	r := make([]graph.EdgeID, len(names))
	for i, n := range names {
		r[i] = g.MustEdge(n)
	}
	return r
}

func TestPacketAccessors(t *testing.T) {
	g := graph.Line(4)
	p := &Packet{
		ID:         7,
		Route:      lineRoute(g, "e1", "e2", "e3", "e4"),
		Pos:        1,
		InjectedAt: 10,
		ArrivedAt:  12,
	}
	if p.CurrentEdge() != g.MustEdge("e2") {
		t.Error("CurrentEdge wrong")
	}
	if p.RemainingHops() != 3 {
		t.Errorf("RemainingHops = %d", p.RemainingHops())
	}
	rem := p.RemainingRoute()
	if len(rem) != 3 || rem[0] != g.MustEdge("e2") {
		t.Error("RemainingRoute wrong")
	}
	if p.HopsFromSource() != 1 {
		t.Error("HopsFromSource wrong")
	}
	if p.Source(g) != g.NodeByName("v0") {
		t.Error("Source wrong")
	}
	if p.Destination(g) != g.NodeByName("v4") {
		t.Error("Destination wrong")
	}
	if !strings.Contains(p.String(), "pkt#7") {
		t.Errorf("String = %q", p.String())
	}
}

func TestRemainingRouteAliases(t *testing.T) {
	g := graph.Line(3)
	p := &Packet{Route: lineRoute(g, "e1", "e2", "e3"), Pos: 0}
	rem := p.RemainingRoute()
	if &rem[0] != &p.Route[0] {
		t.Error("RemainingRoute should alias Route")
	}
}

func TestInjectionHelpers(t *testing.T) {
	g := graph.Line(2)
	inj := Inj(g.MustEdge("e1"), g.MustEdge("e2"))
	if len(inj.Route) != 2 || inj.Tag != "" {
		t.Error("Inj wrong")
	}
	ti := TaggedInj("old", g.MustEdge("e1"))
	if ti.Tag != "old" || len(ti.Route) != 1 {
		t.Error("TaggedInj wrong")
	}
}
