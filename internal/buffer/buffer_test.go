package buffer

import (
	"testing"
	"testing/quick"

	"aqt/internal/packet"
)

func pk(id int) *packet.Packet { return &packet.Packet{ID: packet.ID(id)} }

func ids(b *Buffer) []int {
	var out []int
	b.Each(func(p *packet.Packet) bool {
		out = append(out, int(p.ID))
		return true
	})
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPushPopOrder(t *testing.T) {
	var b Buffer
	for i := 0; i < 20; i++ {
		b.PushBack(pk(i))
	}
	if b.Len() != 20 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Front().ID != 0 || b.Back().ID != 19 {
		t.Fatal("front/back wrong")
	}
	for i := 0; i < 20; i++ {
		if got := b.PopFront(); int(got.ID) != i {
			t.Fatalf("pop %d got %d", i, got.ID)
		}
	}
	if b.Len() != 0 {
		t.Fatal("not empty after pops")
	}
}

func TestWrapAround(t *testing.T) {
	var b Buffer
	// Force head to travel around the ring repeatedly.
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			b.PushBack(pk(round*5 + i))
		}
		for i := 0; i < 5; i++ {
			want := round*5 + i
			if got := b.PopFront(); int(got.ID) != want {
				t.Fatalf("round %d: got %d want %d", round, got.ID, want)
			}
		}
	}
}

func TestRemoveAtMiddle(t *testing.T) {
	var b Buffer
	for i := 0; i < 7; i++ {
		b.PushBack(pk(i))
	}
	got := b.RemoveAt(3)
	if got.ID != 3 {
		t.Fatalf("RemoveAt(3) = %d", got.ID)
	}
	if !eq(ids(&b), []int{0, 1, 2, 4, 5, 6}) {
		t.Fatalf("order after middle removal: %v", ids(&b))
	}
	got = b.RemoveAt(0)
	if got.ID != 0 {
		t.Fatalf("RemoveAt(0) = %d", got.ID)
	}
	got = b.RemoveAt(b.Len() - 1)
	if got.ID != 6 {
		t.Fatalf("RemoveAt(last) = %d", got.ID)
	}
	if !eq(ids(&b), []int{1, 2, 4, 5}) {
		t.Fatalf("order: %v", ids(&b))
	}
}

func TestAtAndPanics(t *testing.T) {
	var b Buffer
	b.PushBack(pk(1))
	if b.At(0).ID != 1 {
		t.Error("At(0) wrong")
	}
	for _, f := range []func(){
		func() { b.At(1) },
		func() { b.At(-1) },
		func() { b.RemoveAt(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestEachEarlyStop(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.PushBack(pk(i))
	}
	count := 0
	b.Each(func(p *packet.Packet) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Each visited %d, want 3", count)
	}
}

func TestSliceAndClear(t *testing.T) {
	var b Buffer
	for i := 0; i < 4; i++ {
		b.PushBack(pk(i))
	}
	s := b.Slice()
	if len(s) != 4 || s[0].ID != 0 || s[3].ID != 3 {
		t.Error("Slice wrong")
	}
	b.Clear()
	if b.Len() != 0 {
		t.Error("Clear failed")
	}
	b.PushBack(pk(9))
	if b.Front().ID != 9 {
		t.Error("buffer unusable after Clear")
	}
}

// Property: a Buffer behaves exactly like a reference slice
// implementation under a random operation sequence.
func TestQuickAgainstReference(t *testing.T) {
	f := func(ops []uint16) bool {
		var b Buffer
		var ref []*packet.Packet
		next := 0
		for _, op := range ops {
			if op%3 != 0 && len(ref) > 0 {
				i := int(op) % len(ref)
				got := b.RemoveAt(i)
				want := ref[i]
				ref = append(ref[:i], ref[i+1:]...)
				if got != want {
					return false
				}
			} else {
				p := pk(next)
				next++
				b.PushBack(p)
				ref = append(ref, p)
			}
			if b.Len() != len(ref) {
				return false
			}
			for i := range ref {
				if b.At(i) != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var buf Buffer
	for i := 0; i < b.N; i++ {
		buf.PushBack(pk(i))
		if buf.Len() > 1000 {
			buf.PopFront()
		}
	}
}
