package buffer

import (
	"testing"
	"testing/quick"

	"aqt/internal/packet"
)

func pk(id int) *packet.Packet { return &packet.Packet{ID: packet.ID(id)} }

func ids(b *Buffer) []int {
	var out []int
	b.Each(func(p *packet.Packet) bool {
		out = append(out, int(p.ID))
		return true
	})
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPushPopOrder(t *testing.T) {
	var b Buffer
	for i := 0; i < 20; i++ {
		b.PushBack(pk(i))
	}
	if b.Len() != 20 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Front().ID != 0 || b.Back().ID != 19 {
		t.Fatal("front/back wrong")
	}
	for i := 0; i < 20; i++ {
		if got := b.PopFront(); int(got.ID) != i {
			t.Fatalf("pop %d got %d", i, got.ID)
		}
	}
	if b.Len() != 0 {
		t.Fatal("not empty after pops")
	}
}

// TestRemoveAtPrefixShiftWrapped drives RemoveAt down its
// prefix-shift branch (i < n-i-1) while the prefix physically wraps
// around the ring end, so the shifted window crosses ring[len-1] →
// ring[0].
func TestRemoveAtPrefixShiftWrapped(t *testing.T) {
	var b Buffer
	// Fill to capacity 8, then pop 6 so head sits at physical index 6,
	// two slots from the ring end.
	for i := 0; i < 8; i++ {
		b.PushBack(pk(i))
	}
	for i := 0; i < 6; i++ {
		b.PopFront()
	}
	// Refill: logical order 6,7,10..15; positions 0 and 1 live at
	// physical 6 and 7, positions 2.. wrap to physical 0..
	for i := 10; i < 16; i++ {
		b.PushBack(pk(i))
	}
	if got := ids(&b); !eq(got, []int{6, 7, 10, 11, 12, 13, 14, 15}) {
		t.Fatalf("setup = %v", got)
	}
	// Removing position 2 (first wrapped slot) shifts the prefix
	// {6,7} right across the wrap boundary.
	if got := b.RemoveAt(2); int(got.ID) != 10 {
		t.Fatalf("RemoveAt(2) = %d, want 10", got.ID)
	}
	if got := ids(&b); !eq(got, []int{6, 7, 11, 12, 13, 14, 15}) {
		t.Fatalf("after wrapped prefix shift: %v", got)
	}
	// Now remove position 1: the whole (shorter) prefix lives past the
	// wrap, exercising idx(j-1) wrapping inside the shift loop.
	if got := b.RemoveAt(1); int(got.ID) != 7 {
		t.Fatalf("RemoveAt(1) = %d, want 7", got.ID)
	}
	if got := ids(&b); !eq(got, []int{6, 11, 12, 13, 14, 15}) {
		t.Fatalf("after second shift: %v", got)
	}
	// Drain fully to confirm ring integrity after the wrapped moves.
	want := []int{6, 11, 12, 13, 14, 15}
	for _, w := range want {
		if got := b.PopFront(); int(got.ID) != w {
			t.Fatalf("drain got %d, want %d", got.ID, w)
		}
	}
	if b.Len() != 0 {
		t.Fatal("not empty after drain")
	}
}

// TestRemoveAtSuffixShiftWrapped exercises the suffix-shift branch
// when the suffix crosses the wrap boundary.
func TestRemoveAtSuffixShiftWrapped(t *testing.T) {
	var b Buffer
	for i := 0; i < 8; i++ {
		b.PushBack(pk(i))
	}
	b.PopFront()
	b.PopFront()
	b.PushBack(pk(10))
	b.PushBack(pk(11))
	// Logical 2..7,10,11; head at physical 2; positions 6,7 wrap to
	// physical 0,1. Removing position 5 (physical 7, the last slot)
	// picks the suffix branch and shifts {10,11} left across the ring
	// end.
	if got := b.RemoveAt(5); int(got.ID) != 7 {
		t.Fatalf("RemoveAt(5) = %d, want 7", got.ID)
	}
	if got := ids(&b); !eq(got, []int{2, 3, 4, 5, 6, 10, 11}) {
		t.Fatalf("after wrapped suffix shift: %v", got)
	}
	for _, w := range []int{2, 3, 4, 5, 6, 10, 11} {
		if got := b.PopFront(); int(got.ID) != w {
			t.Fatalf("drain got %d, want %d", got.ID, w)
		}
	}
}

func TestWrapAround(t *testing.T) {
	var b Buffer
	// Force head to travel around the ring repeatedly.
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			b.PushBack(pk(round*5 + i))
		}
		for i := 0; i < 5; i++ {
			want := round*5 + i
			if got := b.PopFront(); int(got.ID) != want {
				t.Fatalf("round %d: got %d want %d", round, got.ID, want)
			}
		}
	}
}

func TestRemoveAtMiddle(t *testing.T) {
	var b Buffer
	for i := 0; i < 7; i++ {
		b.PushBack(pk(i))
	}
	got := b.RemoveAt(3)
	if got.ID != 3 {
		t.Fatalf("RemoveAt(3) = %d", got.ID)
	}
	if !eq(ids(&b), []int{0, 1, 2, 4, 5, 6}) {
		t.Fatalf("order after middle removal: %v", ids(&b))
	}
	got = b.RemoveAt(0)
	if got.ID != 0 {
		t.Fatalf("RemoveAt(0) = %d", got.ID)
	}
	got = b.RemoveAt(b.Len() - 1)
	if got.ID != 6 {
		t.Fatalf("RemoveAt(last) = %d", got.ID)
	}
	if !eq(ids(&b), []int{1, 2, 4, 5}) {
		t.Fatalf("order: %v", ids(&b))
	}
}

func TestAtAndPanics(t *testing.T) {
	var b Buffer
	b.PushBack(pk(1))
	if b.At(0).ID != 1 {
		t.Error("At(0) wrong")
	}
	for _, f := range []func(){
		func() { b.At(1) },
		func() { b.At(-1) },
		func() { b.RemoveAt(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestEachEarlyStop(t *testing.T) {
	var b Buffer
	for i := 0; i < 5; i++ {
		b.PushBack(pk(i))
	}
	count := 0
	b.Each(func(p *packet.Packet) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Each visited %d, want 3", count)
	}
}

func TestSliceAndClear(t *testing.T) {
	var b Buffer
	for i := 0; i < 4; i++ {
		b.PushBack(pk(i))
	}
	s := b.Slice()
	if len(s) != 4 || s[0].ID != 0 || s[3].ID != 3 {
		t.Error("Slice wrong")
	}
	b.Clear()
	if b.Len() != 0 {
		t.Error("Clear failed")
	}
	b.PushBack(pk(9))
	if b.Front().ID != 9 {
		t.Error("buffer unusable after Clear")
	}
}

// Property: a Buffer behaves exactly like a reference slice
// implementation under a random operation sequence.
func TestQuickAgainstReference(t *testing.T) {
	f := func(ops []uint16) bool {
		var b Buffer
		var ref []*packet.Packet
		next := 0
		for _, op := range ops {
			if op%3 != 0 && len(ref) > 0 {
				i := int(op) % len(ref)
				got := b.RemoveAt(i)
				want := ref[i]
				ref = append(ref[:i], ref[i+1:]...)
				if got != want {
					return false
				}
			} else {
				p := pk(next)
				next++
				b.PushBack(p)
				ref = append(ref, p)
			}
			if b.Len() != len(ref) {
				return false
			}
			for i := range ref {
				if b.At(i) != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEvictionPatternsPreserveOrder drives the buffer through the
// access patterns the bounded-buffer drop policies use — RemoveAt(0)
// for drop-head, RemoveAt(mid) for drop-ntg victims, PushBack for the
// admitted arrival — at a fixed capacity, and checks the survivors
// keep strictly increasing EnqueueSeq through wraps and evictions
// (the sortedness IndexOfSeq's binary search depends on).
func TestEvictionPatternsPreserveOrder(t *testing.T) {
	const cap = 4
	seq := int64(0)
	push := func(b *Buffer, id int) {
		p := pk(id)
		p.EnqueueSeq = seq
		seq++
		b.PushBack(p)
	}
	sorted := func(b *Buffer) bool {
		for i := 1; i < b.Len(); i++ {
			if b.At(i-1).EnqueueSeq >= b.At(i).EnqueueSeq {
				return false
			}
		}
		return true
	}
	for name, victim := range map[string]func(b *Buffer, arrival int) int{
		"head": func(*Buffer, int) int { return 0 },
		"ntg":  func(b *Buffer, arrival int) int { return arrival % b.Len() },
	} {
		var b Buffer
		for id := 0; id < 200; id++ {
			if b.Len() >= cap {
				v := victim(&b, id)
				want := b.At(v)
				if got := b.RemoveAt(v); got != want {
					t.Fatalf("%s: RemoveAt(%d) returned %v, want %v", name, v, got, want)
				}
			}
			push(&b, id)
			if b.Len() > cap {
				t.Fatalf("%s: occupancy %d exceeds cap %d", name, b.Len(), cap)
			}
			if !sorted(&b) {
				t.Fatalf("%s: EnqueueSeq order broken after id %d: %v", name, id, ids(&b))
			}
			// IndexOfSeq must still resolve every survivor.
			for i := 0; i < b.Len(); i++ {
				p := b.At(i)
				if got := b.IndexOfSeq(p.EnqueueSeq); got != i {
					t.Fatalf("%s: IndexOfSeq(%d) = %d, want %d", name, p.EnqueueSeq, got, i)
				}
			}
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	var buf Buffer
	for i := 0; i < b.N; i++ {
		buf.PushBack(pk(i))
		if buf.Len() > 1000 {
			buf.PopFront()
		}
	}
}
