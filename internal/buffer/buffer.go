// Package buffer implements the per-edge packet buffer of an
// adversarial queuing network.
//
// A buffer keeps packets in enqueue order (front = earliest). It is a
// growable ring deque so that FIFO service — by far the hottest policy
// in the paper's constructions, where single buffers hold tens of
// thousands of packets — pops the front in O(1); removal at an
// arbitrary index (needed by every other policy) moves the shorter
// side of the ring.
package buffer

import "aqt/internal/packet"

// Buffer is a queue of packets in enqueue order. The zero value is an
// empty buffer ready to use.
type Buffer struct {
	ring []*packet.Packet
	head int // index of front element
	n    int // number of elements
}

// Len returns the number of buffered packets.
func (b *Buffer) Len() int { return b.n }

// At returns the i-th packet in enqueue order (0 = front). It panics
// if i is out of range.
func (b *Buffer) At(i int) *packet.Packet {
	if i < 0 || i >= b.n {
		panic("buffer: index out of range")
	}
	return b.ring[b.idx(i)]
}

// Front returns the earliest-enqueued packet. It panics when empty.
func (b *Buffer) Front() *packet.Packet { return b.At(0) }

// Back returns the latest-enqueued packet. It panics when empty.
func (b *Buffer) Back() *packet.Packet { return b.At(b.n - 1) }

// PushBack appends a packet at the back of the buffer.
func (b *Buffer) PushBack(p *packet.Packet) {
	if b.n == len(b.ring) {
		b.grow()
	}
	b.ring[b.idx(b.n)] = p
	b.n++
}

// RemoveAt removes and returns the i-th packet in enqueue order,
// preserving the order of the rest. Removing the front or back is
// O(1); the general case moves the shorter side.
func (b *Buffer) RemoveAt(i int) *packet.Packet {
	if i < 0 || i >= b.n {
		panic("buffer: index out of range")
	}
	p := b.ring[b.idx(i)]
	if i < b.n-i-1 {
		// Shift the prefix right.
		for j := i; j > 0; j-- {
			b.ring[b.idx(j)] = b.ring[b.idx(j-1)]
		}
		b.ring[b.idx(0)] = nil
		b.head = b.wrap(b.head + 1)
	} else {
		// Shift the suffix left.
		for j := i; j < b.n-1; j++ {
			b.ring[b.idx(j)] = b.ring[b.idx(j+1)]
		}
		b.ring[b.idx(b.n-1)] = nil
	}
	b.n--
	return p
}

// PopFront removes and returns the front packet. It panics when empty.
func (b *Buffer) PopFront() *packet.Packet { return b.RemoveAt(0) }

// Each calls fn for every packet in enqueue order; it stops early if
// fn returns false.
func (b *Buffer) Each(fn func(p *packet.Packet) bool) {
	for i := 0; i < b.n; i++ {
		if !fn(b.ring[b.idx(i)]) {
			return
		}
	}
}

// Slice returns the buffered packets as a fresh slice in enqueue order.
func (b *Buffer) Slice() []*packet.Packet {
	out := make([]*packet.Packet, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.ring[b.idx(i)]
	}
	return out
}

// IndexOfSeq returns the position (in enqueue order) of the packet
// with the given EnqueueSeq, or -1 if absent. Because packets enter at
// the back with strictly increasing sequence numbers, the buffer is
// sorted by EnqueueSeq and a binary search suffices — this is how the
// engine's keyed-policy fast path locates a heap-selected packet.
func (b *Buffer) IndexOfSeq(seq int64) int {
	lo, hi := 0, b.n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := b.ring[b.idx(mid)].EnqueueSeq
		switch {
		case s == seq:
			return mid
		case s < seq:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1
}

// Clear removes all packets.
func (b *Buffer) Clear() {
	for i := 0; i < b.n; i++ {
		b.ring[b.idx(i)] = nil
	}
	b.head, b.n = 0, 0
}

func (b *Buffer) idx(i int) int {
	return b.wrap(b.head + i)
}

func (b *Buffer) wrap(i int) int {
	if len(b.ring) == 0 {
		return 0
	}
	if i >= len(b.ring) {
		i -= len(b.ring)
	}
	return i
}

func (b *Buffer) grow() {
	newCap := len(b.ring) * 2
	if newCap < 8 {
		newCap = 8
	}
	fresh := make([]*packet.Packet, newCap)
	for i := 0; i < b.n; i++ {
		fresh[i] = b.ring[b.idx(i)]
	}
	b.ring = fresh
	b.head = 0
}
