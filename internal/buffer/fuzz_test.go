package buffer

import (
	"testing"

	"aqt/internal/packet"
)

// FuzzBufferOps drives a Buffer with an arbitrary operation tape and
// checks it against a plain-slice reference, including the IndexOfSeq
// binary search the engine's keyed fast path relies on.
func FuzzBufferOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 1, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Add([]byte{2, 2, 0, 0, 0, 0, 1, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 200 {
			ops = ops[:200]
		}
		var b Buffer
		var ref []*packet.Packet
		seq := int64(0)
		for _, op := range ops {
			switch {
			case op%3 == 0 || len(ref) == 0:
				p := &packet.Packet{ID: packet.ID(seq), EnqueueSeq: seq}
				seq++
				b.PushBack(p)
				ref = append(ref, p)
			case op%3 == 1:
				i := int(op) % len(ref)
				got := b.RemoveAt(i)
				want := ref[i]
				ref = append(ref[:i], ref[i+1:]...)
				if got != want {
					t.Fatalf("RemoveAt(%d) = %v, want %v", i, got, want)
				}
			default:
				got := b.PopFront()
				want := ref[0]
				ref = ref[1:]
				if got != want {
					t.Fatal("PopFront mismatch")
				}
			}
			if b.Len() != len(ref) {
				t.Fatalf("Len %d vs %d", b.Len(), len(ref))
			}
			for i, w := range ref {
				if b.At(i) != w {
					t.Fatalf("At(%d) mismatch", i)
				}
				if got := b.IndexOfSeq(w.EnqueueSeq); got != i {
					t.Fatalf("IndexOfSeq(%d) = %d, want %d", w.EnqueueSeq, got, i)
				}
			}
			if b.IndexOfSeq(seq+1000) != -1 {
				t.Fatal("IndexOfSeq found a missing sequence")
			}
		}
	})
}
