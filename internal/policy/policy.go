// Package policy implements the queuing (contention-resolution)
// policies studied in adversarial queuing theory.
//
// A policy answers one question: given the nonempty buffer of an edge
// at the start of a time step, which packet crosses the edge? All
// policies here are greedy by construction — the engine only consults
// a policy when the buffer is nonempty, and exactly one packet is sent
// (the model of Borodin et al. admits only greedy protocols).
//
// Each policy also carries the classification predicates the paper's
// theorems are parameterized by:
//
//   - Historic (Definition 3.1): scheduling decisions are independent
//     of the remaining routes beyond the next edge. Historic policies
//     admit the on-line rerouting of Lemma 3.3.
//   - Time-priority (Definition 4.2): a packet that arrived at a buffer
//     at time t has priority over every packet injected after t. Such
//     policies get the stronger 1/d stability bound of Theorem 4.3.
//   - UniversallyStable: known from the literature (Andrews et al.,
//     J. ACM 2001) to be stable on every network at every rate r < 1;
//     recorded so experiments can cross-check the policy zoo.
package policy

import (
	"fmt"
	"math/rand"
	"sort"

	"aqt/internal/buffer"
	"aqt/internal/packet"
)

// Policy selects the packet to send from a nonempty buffer.
type Policy interface {
	// Name returns the canonical (upper-case) policy name.
	Name() string

	// Select returns the index within q of the packet to cross the
	// edge this step. q holds the buffer contents in enqueue order
	// (index 0 arrived first); it is nonempty and must not be
	// modified. now is the current time step.
	Select(q *buffer.Buffer, now int64) int

	// Traits returns the policy's classification.
	Traits() Traits
}

// Traits classify a policy for the paper's theorems.
type Traits struct {
	// Historic is true when decisions do not depend on route suffixes
	// beyond each packet's next edge (Definition 3.1).
	Historic bool
	// TimePriority is true when arrivals at time t beat injections
	// after t (Definition 4.2).
	TimePriority bool
	// UniversallyStable is true when the literature proves stability
	// on every network for every rate r < 1.
	UniversallyStable bool
}

// argBest returns the index of the best packet under the given strict
// less-than comparison; ties are broken towards the lower EnqueueSeq,
// making every policy deterministic.
func argBest(q *buffer.Buffer, less func(a, b *packet.Packet) bool) int {
	best := 0
	for i := 1; i < q.Len(); i++ {
		a, b := q.At(i), q.At(best)
		switch {
		case less(a, b):
			best = i
		case less(b, a):
			// keep best
		case a.EnqueueSeq < b.EnqueueSeq:
			best = i
		}
	}
	return best
}

// FIFO sends the packet that arrived at the buffer earliest
// (first-in-first-out). Historic and time-priority; famously not
// universally stable — this paper shows instability at every rate
// above 1/2.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Traits implements Policy.
func (FIFO) Traits() Traits { return Traits{Historic: true, TimePriority: true} }

// Select implements Policy.
func (FIFO) Select(q *buffer.Buffer, now int64) int {
	// The engine maintains buffers in enqueue order, so FIFO is the
	// front. Verified against explicit comparison in tests.
	return 0
}

// LIFO sends the packet that arrived at the buffer latest
// (last-in-first-out). Historic; unstable at arbitrarily low rates
// (Borodin et al.).
type LIFO struct{}

// Name implements Policy.
func (LIFO) Name() string { return "LIFO" }

// Traits implements Policy.
func (LIFO) Traits() Traits { return Traits{Historic: true} }

// Select implements Policy.
func (LIFO) Select(q *buffer.Buffer, now int64) int {
	// The engine enqueues in arrival order, so the back of the buffer
	// is the latest arrival with the highest EnqueueSeq (true stack
	// order). Verified against explicit comparison in tests.
	return q.Len() - 1
}

// LIS (longest-in-system) sends the packet injected earliest.
// Historic, time-priority, universally stable.
type LIS struct{}

// Name implements Policy.
func (LIS) Name() string { return "LIS" }

// Traits implements Policy.
func (LIS) Traits() Traits {
	return Traits{Historic: true, TimePriority: true, UniversallyStable: true}
}

// Select implements Policy.
func (LIS) Select(q *buffer.Buffer, now int64) int {
	return argBest(q, func(a, b *packet.Packet) bool { return a.InjectedAt < b.InjectedAt })
}

// SIS (shortest-in-system, also called NIS, newest-in-system) sends
// the packet injected latest. Historic, universally stable.
type SIS struct{}

// Name implements Policy.
func (SIS) Name() string { return "SIS" }

// Traits implements Policy.
func (SIS) Traits() Traits { return Traits{Historic: true, UniversallyStable: true} }

// Select implements Policy.
func (SIS) Select(q *buffer.Buffer, now int64) int {
	return argBest(q, func(a, b *packet.Packet) bool { return a.InjectedAt > b.InjectedAt })
}

// FTG (furthest-to-go) sends the packet with the most remaining hops.
// Not historic (it inspects route suffixes); universally stable.
type FTG struct{}

// Name implements Policy.
func (FTG) Name() string { return "FTG" }

// Traits implements Policy.
func (FTG) Traits() Traits { return Traits{UniversallyStable: true} }

// Select implements Policy.
func (FTG) Select(q *buffer.Buffer, now int64) int {
	return argBest(q, func(a, b *packet.Packet) bool { return a.RemainingHops() > b.RemainingHops() })
}

// NTG (nearest-to-go) sends the packet with the fewest remaining hops.
// Not historic; unstable at arbitrarily low rates (Borodin et al.),
// using routes of length Θ(1/r) — the phenomenon section 5 of the
// paper contrasts with its 1/(d+1) bound.
type NTG struct{}

// Name implements Policy.
func (NTG) Name() string { return "NTG" }

// Traits implements Policy.
func (NTG) Traits() Traits { return Traits{} }

// Select implements Policy.
func (NTG) Select(q *buffer.Buffer, now int64) int {
	return argBest(q, func(a, b *packet.Packet) bool { return a.RemainingHops() < b.RemainingHops() })
}

// FFS (furthest-from-source) sends the packet that has crossed the
// most edges. Historic; not universally stable.
type FFS struct{}

// Name implements Policy.
func (FFS) Name() string { return "FFS" }

// Traits implements Policy.
func (FFS) Traits() Traits { return Traits{Historic: true} }

// Select implements Policy.
func (FFS) Select(q *buffer.Buffer, now int64) int {
	return argBest(q, func(a, b *packet.Packet) bool { return a.HopsFromSource() > b.HopsFromSource() })
}

// NFS (nearest-from-source, also called NTS, nearest-to-source) sends
// the packet that has crossed the fewest edges. Historic; universally
// stable (Andrews et al.).
type NFS struct{}

// Name implements Policy.
func (NFS) Name() string { return "NFS" }

// Traits implements Policy.
func (NFS) Traits() Traits { return Traits{Historic: true, UniversallyStable: true} }

// Select implements Policy.
func (NFS) Select(q *buffer.Buffer, now int64) int {
	return argBest(q, func(a, b *packet.Packet) bool { return a.HopsFromSource() < b.HopsFromSource() })
}

// Random sends a uniformly random packet, from a seeded deterministic
// stream. Historic (it ignores routes entirely). Used as a fuzzing
// policy in tests; no stability classification is claimed.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*Random) Name() string { return "RANDOM" }

// Traits implements Policy.
func (*Random) Traits() Traits { return Traits{Historic: true} }

// Select implements Policy.
func (r *Random) Select(q *buffer.Buffer, now int64) int {
	return r.rng.Intn(q.Len())
}

// All returns one instance of every deterministic built-in policy, in
// a stable order. Random is excluded (it needs a seed).
func All() []Policy {
	return []Policy{FIFO{}, LIFO{}, LIS{}, SIS{}, FTG{}, NTG{}, FFS{}, NFS{}}
}

// Names returns the registry's policy names, sorted.
func Names() []string {
	ps := All()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	sort.Strings(names)
	return names
}

// ByName returns the deterministic policy with the given (case-exact)
// name, or an error listing the valid names.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q (valid: %v)", name, Names())
}
