package policy

import "aqt/internal/packet"

// Keyed marks a policy whose selection rule is "the packet minimizing
// (SelectionKey, EnqueueSeq)". The engine exploits this with a
// per-buffer heap: selection drops from a full O(n) scan per step to
// O(log n).
//
// The contract requires the key to be constant while the packet sits
// in one buffer. All built-in comparison policies qualify: injection
// times never change (LIS, SIS), and a packet's position — hence its
// remaining-hop count and hops-from-source — only changes when it
// moves between buffers (FTG, NTG, FFS, NFS). The one exception is a
// Lemma 3.3 reroute, which changes RemainingHops in place; the engine
// then pushes a fresh heap entry for just that packet and lazily
// discards the stranded old one (the tombstone scheme in sim/keyed.go)
// instead of rebuilding the whole buffer's heap.
type Keyed interface {
	Policy
	// SelectionKey returns the key minimized by this policy's
	// selection rule, evaluated when p enters a buffer.
	SelectionKey(p *packet.Packet) int64
}

// SelectionKey implements Keyed for LIS: oldest injection first.
func (LIS) SelectionKey(p *packet.Packet) int64 { return p.InjectedAt }

// SelectionKey implements Keyed for SIS: newest injection first.
func (SIS) SelectionKey(p *packet.Packet) int64 { return -p.InjectedAt }

// SelectionKey implements Keyed for FTG: most remaining hops first.
func (FTG) SelectionKey(p *packet.Packet) int64 { return -int64(p.RemainingHops()) }

// SelectionKey implements Keyed for NTG: fewest remaining hops first.
func (NTG) SelectionKey(p *packet.Packet) int64 { return int64(p.RemainingHops()) }

// SelectionKey implements Keyed for FFS: most hops from source first.
func (FFS) SelectionKey(p *packet.Packet) int64 { return -int64(p.HopsFromSource()) }

// SelectionKey implements Keyed for NFS: fewest hops from source first.
func (NFS) SelectionKey(p *packet.Packet) int64 { return int64(p.HopsFromSource()) }

// Compile-time interface checks.
var (
	_ Keyed = LIS{}
	_ Keyed = SIS{}
	_ Keyed = FTG{}
	_ Keyed = NTG{}
	_ Keyed = FFS{}
	_ Keyed = NFS{}
)
