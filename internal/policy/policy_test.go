package policy

import (
	"testing"
	"testing/quick"

	"aqt/internal/buffer"
	"aqt/internal/graph"
	"aqt/internal/packet"
)

// spec describes one buffered packet: injectedAt, arrivedAt, pos, routeLen.
type spec [4]int64

// mkQueue builds a buffer of packets from specs; EnqueueSeq follows
// slice order. The engine guarantees enqueue order == arrival order,
// so callers keep arrivedAt non-decreasing when modeling real buffers.
func mkQueue(specs ...spec) *buffer.Buffer {
	var q buffer.Buffer
	for i, s := range specs {
		routeLen := int(s[3])
		if routeLen < 1 {
			routeLen = 1
		}
		route := make([]graph.EdgeID, routeLen)
		for j := range route {
			route[j] = graph.EdgeID(j)
		}
		q.PushBack(&packet.Packet{
			ID:         packet.ID(i),
			Route:      route,
			Pos:        int(s[2]),
			InjectedAt: s[0],
			ArrivedAt:  s[1],
			EnqueueSeq: int64(i),
		})
	}
	return &q
}

func TestFIFOSelectsFront(t *testing.T) {
	q := mkQueue(spec{5, 2, 0, 3}, spec{1, 7, 0, 3}, spec{9, 9, 0, 3})
	if got := (FIFO{}).Select(q, 10); got != 0 {
		t.Errorf("FIFO selected %d, want 0", got)
	}
}

func TestLIFOSelectsBack(t *testing.T) {
	q := mkQueue(spec{1, 2, 0, 3}, spec{1, 5, 0, 3}, spec{1, 9, 0, 3})
	if got := (LIFO{}).Select(q, 10); got != 2 {
		t.Errorf("LIFO selected %d, want 2", got)
	}
	// Explicit equivalence with arg-max over (ArrivedAt, EnqueueSeq)
	// under the engine's enqueue-order invariant.
	best := 0
	for i := 1; i < q.Len(); i++ {
		a, b := q.At(i), q.At(best)
		if a.ArrivedAt > b.ArrivedAt ||
			(a.ArrivedAt == b.ArrivedAt && a.EnqueueSeq > b.EnqueueSeq) {
			best = i
		}
	}
	if best != 2 {
		t.Errorf("reference LIFO arg-max = %d, want 2", best)
	}
}

func TestLISAndSIS(t *testing.T) {
	q := mkQueue(spec{5, 7, 0, 3}, spec{1, 8, 0, 3}, spec{9, 9, 0, 3})
	if got := (LIS{}).Select(q, 10); got != 1 {
		t.Errorf("LIS selected %d, want 1 (oldest injection)", got)
	}
	if got := (SIS{}).Select(q, 10); got != 2 {
		t.Errorf("SIS selected %d, want 2 (newest injection)", got)
	}
	// Tie on injection time: earlier EnqueueSeq wins for both.
	q2 := mkQueue(spec{3, 7, 0, 3}, spec{3, 8, 0, 3})
	if got := (LIS{}).Select(q2, 10); got != 0 {
		t.Errorf("LIS tie selected %d, want 0", got)
	}
	if got := (SIS{}).Select(q2, 10); got != 0 {
		t.Errorf("SIS tie selected %d, want 0", got)
	}
}

func TestFTGAndNTG(t *testing.T) {
	// remaining hops = routeLen - pos: 4, 1, 2
	q := mkQueue(spec{1, 1, 0, 4}, spec{1, 1, 2, 3}, spec{1, 2, 1, 3})
	if got := (FTG{}).Select(q, 10); got != 0 {
		t.Errorf("FTG selected %d, want 0", got)
	}
	if got := (NTG{}).Select(q, 10); got != 1 {
		t.Errorf("NTG selected %d, want 1", got)
	}
}

func TestFFSAndNFS(t *testing.T) {
	// pos: 0, 2, 1
	q := mkQueue(spec{1, 1, 0, 4}, spec{1, 1, 2, 4}, spec{1, 2, 1, 4})
	if got := (FFS{}).Select(q, 10); got != 1 {
		t.Errorf("FFS selected %d, want 1", got)
	}
	if got := (NFS{}).Select(q, 10); got != 0 {
		t.Errorf("NFS selected %d, want 0", got)
	}
}

func TestRandomDeterministicAndInRange(t *testing.T) {
	q := mkQueue(spec{1, 1, 0, 2}, spec{1, 1, 0, 2}, spec{1, 2, 0, 2})
	a := NewRandom(42)
	b := NewRandom(42)
	for i := 0; i < 100; i++ {
		x, y := a.Select(q, int64(i)), b.Select(q, int64(i))
		if x != y {
			t.Fatal("same seed diverged")
		}
		if x < 0 || x >= q.Len() {
			t.Fatalf("selection %d out of range", x)
		}
	}
	if (&Random{}).Name() != "RANDOM" {
		t.Error("Random name wrong")
	}
}

func TestTraits(t *testing.T) {
	cases := []struct {
		p    Policy
		want Traits
	}{
		{FIFO{}, Traits{Historic: true, TimePriority: true}},
		{LIFO{}, Traits{Historic: true}},
		{LIS{}, Traits{Historic: true, TimePriority: true, UniversallyStable: true}},
		{SIS{}, Traits{Historic: true, UniversallyStable: true}},
		{FTG{}, Traits{UniversallyStable: true}},
		{NTG{}, Traits{}},
		{FFS{}, Traits{Historic: true}},
		{NFS{}, Traits{Historic: true, UniversallyStable: true}},
	}
	for _, c := range cases {
		if got := c.p.Traits(); got != c.want {
			t.Errorf("%s traits = %+v, want %+v", c.p.Name(), got, c.want)
		}
	}
	if !(NewRandom(1)).Traits().Historic {
		t.Error("Random should be historic")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"FIFO", "LIFO", "LIS", "SIS", "FTG", "NTG", "FFS", "NFS"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown policy should error")
	}
	if len(All()) != 8 {
		t.Errorf("All() = %d policies", len(All()))
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names not sorted")
		}
	}
}

// Property: every deterministic policy returns an index in range and is
// a pure function of the buffer snapshot.
func TestQuickSelectionValidAndPure(t *testing.T) {
	f := func(raw []uint16, now uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		specs := make([]spec, len(raw))
		arrived := int64(0)
		for i, v := range raw {
			routeLen := int64(v%5) + 1
			pos := int64(v/5) % routeLen
			arrived += int64(v % 3) // non-decreasing, as in real buffers
			specs[i] = spec{int64(v % 97), arrived, pos, routeLen}
		}
		q := mkQueue(specs...)
		for _, p := range All() {
			i1 := p.Select(q, int64(now))
			i2 := p.Select(q, int64(now))
			if i1 != i2 || i1 < 0 || i1 >= q.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FIFO's front equals the arg-min over (ArrivedAt, EnqueueSeq)
// when the buffer is in enqueue order (as the engine maintains it).
func TestQuickFIFOEquivalence(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%10) + 1
		specs := make([]spec, size)
		arr := int64(0)
		for i := range specs {
			arr += int64(i % 3)
			specs[i] = spec{arr, arr, 0, 3}
		}
		q := mkQueue(specs...)
		best := 0
		for i := 1; i < q.Len(); i++ {
			a, b := q.At(i), q.At(best)
			if a.ArrivedAt < b.ArrivedAt ||
				(a.ArrivedAt == b.ArrivedAt && a.EnqueueSeq < b.EnqueueSeq) {
				best = i
			}
		}
		return (FIFO{}).Select(q, 100) == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
