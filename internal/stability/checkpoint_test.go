package stability

import (
	"reflect"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// drainingProbe mirrors TestRunClassifiesDrainingSystem: a random
// (w,r) adversary well under the stability bound.
func drainingProbe() *sim.Engine {
	g := graph.Ring(6)
	adv := adversary.NewRandomWR(g, 20, rational.New(1, 6), 2, 5)
	return sim.New(g, policy.LIS{}, adv)
}

// overloadProbe mirrors TestRunClassifiesOverload: a paced script well
// past server capacity on one edge.
func overloadProbe() *sim.Engine {
	g := graph.Line(4)
	adv := adversary.NewScript(
		adversary.Stream{Name: "a", Start: 1, Rate: rational.New(9, 10), Budget: -1,
			Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")}},
		adversary.Stream{Name: "b", Start: 1, Rate: rational.New(9, 10), Budget: -1,
			Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}},
	)
	return sim.New(g, policy.FIFO{}, adv)
}

// TestProbePauseResume: for both a draining and an overloaded probe,
// pausing at several points — persisting through the wire format —
// and resuming must reproduce Run's report exactly.
func TestProbePauseResume(t *testing.T) {
	cases := []struct {
		name  string
		build func() *sim.Engine
		steps int64
	}{
		{"draining", drainingProbe, 3000},
		{"overload", overloadProbe, 2000},
	}
	const stride, growth = 10, 1.25
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want := Run(tc.build(), tc.steps, stride, growth)
			for _, at := range []int64{1, tc.steps / 2, tc.steps - 1, tc.steps} {
				pc, err := PauseRun(tc.build(), tc.steps, stride, at, growth)
				if err != nil {
					t.Fatalf("PauseRun(at=%d): %v", at, err)
				}
				pc2, err := DecodeProbeCheckpoint(pc.Encode())
				if err != nil {
					t.Fatalf("decode(at=%d): %v", at, err)
				}
				got, err := ResumeRun(tc.build(), pc2)
				if err != nil {
					t.Fatalf("ResumeRun(at=%d): %v", at, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("at=%d: resumed report differs:\nwant: %+v\ngot:  %+v", at, want, got)
				}
			}
		})
	}
}

// TestThresholdSearchWithResumedProbes runs the same rate bisection
// twice — once with straight Run probes, once with probes that pause
// mid-run, persist, and resume — and requires identical thresholds and
// identical probe sequences. This is the mid-bisection persistence the
// checkpoint machinery exists for.
func TestThresholdSearchWithResumedProbes(t *testing.T) {
	build := func(r rational.Rat) *sim.Engine {
		g := graph.Line(4)
		adv := adversary.NewScript(
			adversary.Stream{Name: "a", Start: 1, Rate: r, Budget: -1,
				Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")}},
			adversary.Stream{Name: "b", Start: 1, Rate: r, Budget: -1,
				Route: []graph.EdgeID{g.MustEdge("e2"), g.MustEdge("e3")}},
		)
		return sim.New(g, policy.FIFO{}, adv)
	}
	const steps, stride, growth = 1500, 10, 1.25
	lo, hi := rational.New(1, 4), rational.FromInt(1)

	var directSeq []rational.Rat
	direct := ThresholdSearch(func(r rational.Rat) Verdict {
		directSeq = append(directSeq, r)
		return Run(build(r), steps, stride, growth).Verdict
	}, lo, hi, 6)

	var resumedSeq []rational.Rat
	resumed := ThresholdSearch(func(r rational.Rat) Verdict {
		resumedSeq = append(resumedSeq, r)
		pc, err := PauseRun(build(r), steps, stride, steps/3, growth)
		if err != nil {
			t.Fatalf("PauseRun(%v): %v", r, err)
		}
		pc2, err := DecodeProbeCheckpoint(pc.Encode())
		if err != nil {
			t.Fatalf("decode(%v): %v", r, err)
		}
		rep, err := ResumeRun(build(r), pc2)
		if err != nil {
			t.Fatalf("ResumeRun(%v): %v", r, err)
		}
		return rep.Verdict
	}, lo, hi, 6)

	if !direct.Eq(resumed) {
		t.Errorf("threshold with resumed probes %v != direct %v", resumed, direct)
	}
	if !reflect.DeepEqual(directSeq, resumedSeq) {
		t.Errorf("probe sequences differ:\ndirect:  %v\nresumed: %v", directSeq, resumedSeq)
	}
}

// TestProbeCheckpointRejects covers the probe document's own error
// paths on top of the engine document's validation.
func TestProbeCheckpointRejects(t *testing.T) {
	if _, err := PauseRun(drainingProbe(), 100, 10, 0, 1.25); err == nil {
		t.Error("pauseAt=0 accepted")
	}
	if _, err := PauseRun(drainingProbe(), 100, 10, 101, 1.25); err == nil {
		t.Error("pauseAt past the horizon accepted")
	}
	for _, doc := range []string{
		`{}`,
		`not json`,
		`{"version": 2, "engine": {"version": 1}, "recorder": {"stride": 1}, "remaining": 0, "growth": 1}`,
		`{"version": 1, "engine": {"version": 1, "num_nodes": 2, "num_edges": 1, "policy": "FIFO"},
		  "recorder": {"stride": 1}, "remaining": -4, "growth": 1}`,
	} {
		if _, err := DecodeProbeCheckpoint([]byte(doc)); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}
