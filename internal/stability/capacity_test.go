package stability

import "testing"

// stepProbe is stable at and above bstar, unstable below.
func stepProbe(bstar int64, calls *[]int64) func(int64) Verdict {
	return func(cap int64) Verdict {
		if calls != nil {
			*calls = append(*calls, cap)
		}
		if cap >= bstar {
			return Stable
		}
		return Diverging
	}
}

func TestMinStableCapSynthetic(t *testing.T) {
	for bstar := int64(1); bstar <= 64; bstar++ {
		got := MinStableCap(stepProbe(bstar, nil), 1, 64)
		if got != bstar {
			t.Fatalf("B* = %d: search returned %d", bstar, got)
		}
	}
}

func TestMinStableCapBoundaries(t *testing.T) {
	// Stable everywhere: returns lo.
	if got := MinStableCap(func(int64) Verdict { return Stable }, 3, 40); got != 3 {
		t.Errorf("stable everywhere: got %d, want 3", got)
	}
	// Stable nowhere: returns hi+1.
	if got := MinStableCap(func(int64) Verdict { return Diverging }, 3, 40); got != 41 {
		t.Errorf("stable nowhere: got %d, want 41", got)
	}
	// Single-point interval.
	if got := MinStableCap(stepProbe(5, nil), 5, 5); got != 5 {
		t.Errorf("single point stable: got %d, want 5", got)
	}
	if got := MinStableCap(stepProbe(6, nil), 5, 5); got != 6 {
		t.Errorf("single point unstable: got %d, want 6", got)
	}
}

func TestMinStableCapInconclusiveIsUnstable(t *testing.T) {
	// Inconclusive below 10, stable at and above: the search must not
	// report anything below 10.
	probe := func(cap int64) Verdict {
		if cap >= 10 {
			return Stable
		}
		return Inconclusive
	}
	if got := MinStableCap(probe, 1, 32); got != 10 {
		t.Errorf("got %d, want 10", got)
	}
}

func TestMinStableCapProbeCountLogarithmic(t *testing.T) {
	var calls []int64
	MinStableCap(stepProbe(700, &calls), 1, 1024)
	// Two endpoint probes plus ~log2(1024) bisections.
	if len(calls) > 13 {
		t.Errorf("probe called %d times (%v), want <= 13", len(calls), calls)
	}
	// Every probed capacity stays inside [lo, hi].
	for _, c := range calls {
		if c < 1 || c > 1024 {
			t.Errorf("probed capacity %d outside [1, 1024]", c)
		}
	}
}

func TestMinStableCapPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"lo zero":  func() { MinStableCap(func(int64) Verdict { return Stable }, 0, 4) },
		"hi below": func() { MinStableCap(func(int64) Verdict { return Stable }, 4, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
