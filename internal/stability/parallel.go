// Parallel probe layer: every stability probe is an independent
// simulation (each builds its own graph, engine and adversary), so
// rate/depth sweeps and threshold searches fan out across goroutines.
// The ownership invariant the whole layer rests on: a probe owns every
// piece of simulator state it touches — workers never share an engine,
// an arena or a graph under construction — so the only synchronisation
// is the job/result handoff. Results are deterministic: SweepGrid
// returns them in input order regardless of worker count, and
// ParallelThresholdSearch walks the identical decision sequence as
// ThresholdSearch (workers only evaluate speculative future midpoints
// early), so both are bit-identical to their sequential counterparts
// for any deterministic probe.
package stability

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"aqt/internal/obs"
	"aqt/internal/rational"
)

// Point is one probe coordinate of a (rate, depth) sweep grid.
type Point struct {
	Rate  rational.Rat
	Depth int
}

// String formats the point for sweep reports.
func (p Point) String() string { return fmt.Sprintf("(r=%v, n=%d)", p.Rate, p.Depth) }

// GridResult couples one probe point with its outcome. Panic mirrors
// expt.RunAll's recovered-panic contract: a probe that crashes reports
// the panic message in its own result instead of taking the sweep (or
// the process) down, and never counts as a verdict.
type GridResult[P, V any] struct {
	Point P
	Value V
	Panic string
}

// SweepGrid evaluates probe at every point across a worker pool of the
// given size (workers <= 0 means GOMAXPROCS) and returns the results
// in input order. Points are independent by contract — probe must not
// share mutable state between calls; build one engine per call.
func SweepGrid[P, V any](points []P, probe func(P) V, workers int) []GridResult[P, V] {
	return SweepGridOpt(points, probe, workers, nil)
}

// SweepGridOpt is SweepGrid with sweep telemetry: onProgress (nil =
// none) is called on every probe start and finish with cumulative
// done/total/in-flight counts, elapsed time and the slowest probe seen
// so far. Progress emission is serialized under the tracker's mutex
// and adds nothing to the probe path when onProgress is nil; results
// are identical to SweepGrid either way.
func SweepGridOpt[P, V any](points []P, probe func(P) V, workers int, onProgress obs.ProgressFunc) []GridResult[P, V] {
	results := make([]GridResult[P, V], len(points))
	for i := range points {
		results[i].Point = points[i]
	}
	if len(points) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	prog := newProgTracker(onProgress, len(points))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if prog == nil {
					gridProbe(&results[i], probe)
					continue
				}
				prog.begin()
				t0 := time.Now()
				gridProbe(&results[i], probe)
				prog.end(time.Since(t0))
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// progTracker aggregates one sweep's progress counters and serializes
// emission to the caller's ProgressFunc. A nil tracker no-ops, so the
// probe loops stay branch-cheap without telemetry.
type progTracker struct {
	mu       sync.Mutex
	fn       obs.ProgressFunc
	start    time.Time
	total    int
	done     int
	inFlight int
	slowest  time.Duration
}

func newProgTracker(fn obs.ProgressFunc, total int) *progTracker {
	if fn == nil {
		return nil
	}
	return &progTracker{fn: fn, start: time.Now(), total: total}
}

func (p *progTracker) begin() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.inFlight++
	if p.done+p.inFlight > p.total {
		// Speculative probes can outrun the bisection estimate (and a
		// worker may dequeue one after resolution capped the total);
		// keep total >= done+inFlight so reports — and the ETA derived
		// from them — stay sane. Exact totals (SweepGrid) never hit this.
		p.total = p.done + p.inFlight
	}
	p.emit()
	p.mu.Unlock()
}

func (p *progTracker) end(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.inFlight--
	p.done++
	if d > p.slowest {
		p.slowest = d
	}
	if p.done > p.total {
		// Speculative probes can exceed the bisection estimate.
		p.total = p.done
	}
	p.emit()
	p.mu.Unlock()
}

// resolve caps the total at the probes already finished or in flight:
// the search's answer is known, so the worst-case bisection estimate
// no longer applies. Without this, reports emitted while close() joins
// the in-flight speculative probes would still carry the stale
// estimate, and a consumer's ETA would count phantom remaining probes
// until the very last report (the finish() correction).
func (p *progTracker) resolve() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if t := p.done + p.inFlight; t < p.total {
		p.total = t
		p.emit()
	}
	p.mu.Unlock()
}

// finish corrects the total downwards when a search resolved early
// (fewer probes consumed than estimated) and emits the final report.
func (p *progTracker) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = p.done
	p.inFlight = 0
	p.emit()
	p.mu.Unlock()
}

func (p *progTracker) emit() {
	p.fn(obs.SweepProgress{
		Done:         p.done,
		Total:        p.total,
		InFlight:     p.inFlight,
		Elapsed:      time.Since(p.start),
		SlowestProbe: p.slowest,
	})
}

func gridProbe[P, V any](res *GridResult[P, V], probe func(P) V) {
	defer func() {
		if p := recover(); p != nil {
			res.Panic = fmt.Sprint(p)
		}
	}()
	res.Value = probe(res.Point)
}

// ParallelThresholdSearch is ThresholdSearch with a worker pool
// (workers <= 0 means GOMAXPROCS): while the bisection waits for the
// verdict it needs next, idle workers speculatively pre-probe the
// midpoints the search may visit after it — the frontier of the
// decision tree rooted at the current interval. Verdicts are memoised
// by grid index, the driver consumes them in the exact sequential
// decision order, and unstarted speculative probes are cancelled the
// moment the threshold resolves (in-flight probes are joined before
// returning, so no goroutine outlives the call). The result is
// bit-identical to ThresholdSearch for any deterministic probe; a
// probe panic re-panics on the caller's goroutine exactly when the
// sequential search would have hit it (panics at purely speculative
// points the sequential search never reaches are discarded).
func ParallelThresholdSearch(probe func(rate rational.Rat) Verdict, lo, hi rational.Rat, bits, workers int) rational.Rat {
	return ParallelThresholdSearchOpt(probe, lo, hi, bits, workers, nil)
}

// ParallelThresholdSearchOpt is ParallelThresholdSearch with sweep
// telemetry: onProgress (nil = none) receives probe start/finish
// reports whose Total is the worst-case bisection probe count
// (2 endpoint probes + one per halving); early resolution corrects it
// downwards in the final report, and speculative probes beyond the
// estimate push it up. The search result is unaffected.
func ParallelThresholdSearchOpt(probe func(rate rational.Rat) Verdict, lo, hi rational.Rat, bits, workers int, onProgress obs.ProgressFunc) rational.Rat {
	loI, hiI, den := snapGrid(lo, hi, bits)
	if hiI < loI {
		return rational.New(hiI+1, den)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prog := newProgTracker(onProgress, bisectionProbeEstimate(loI, hiI))
	defer prog.finish()
	st := searchState{loI: loI, hiI: hiI}
	if workers <= 1 {
		// A 1-worker pool has no speculation to offer; run the decision
		// loop inline.
		for {
			idx, done, result := st.need()
			if done {
				prog.resolve()
				return rational.New(result, den)
			}
			prog.begin()
			t0 := time.Now()
			v := probe(rational.New(idx, den))
			prog.end(time.Since(t0))
			st = st.advance(v == Diverging)
		}
	}

	s := &speculator{probe: probe, den: den, cells: make(map[int64]*specCell), prog: prog}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	defer s.close()
	for {
		idx, done, result := st.need()
		if done {
			prog.resolve()
			return rational.New(result, den)
		}
		s.schedule(frontier(st, workers))
		st = st.advance(s.await(idx))
	}
}

// bisectionProbeEstimate returns the worst-case number of probes the
// sequential decision sequence consumes: both endpoints plus one per
// halving of the grid interval.
func bisectionProbeEstimate(loI, hiI int64) int {
	est := 2
	for w := hiI - loI; w > 1; w = (w + 1) / 2 {
		est++
	}
	return est
}

// frontier lists up to max distinct grid indices the search may probe
// within its next decisions, nearest first: the index needed now, then
// the two indices reachable after its verdict, and so on down the
// binary tree of bisection midpoints.
func frontier(st searchState, max int) []int64 {
	var out []int64
	seen := make(map[int64]bool, max)
	level := []searchState{st}
	for len(level) > 0 && len(out) < max {
		var next []searchState
		for _, s := range level {
			idx, done, _ := s.need()
			if done {
				continue
			}
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
				if len(out) >= max {
					return out
				}
			}
			next = append(next, s.advance(true), s.advance(false))
		}
		level = next
	}
	return out
}

// speculator is the memoising worker pool behind
// ParallelThresholdSearch. All fields after probe/den are guarded by
// mu; cells holds one entry per grid index ever scheduled.
type speculator struct {
	probe func(rational.Rat) Verdict
	den   int64
	prog  *progTracker // nil = no telemetry

	mu     sync.Mutex
	cond   *sync.Cond
	cells  map[int64]*specCell
	queue  []int64
	closed bool
	wg     sync.WaitGroup
}

type specCell struct {
	done     bool
	diverges bool
	panicked bool
	panicVal any
}

// schedule enqueues every not-yet-scheduled index for the workers.
func (s *speculator) schedule(idxs []int64) {
	s.mu.Lock()
	for _, idx := range idxs {
		if s.cells[idx] == nil {
			s.cells[idx] = &specCell{}
			s.queue = append(s.queue, idx)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// await blocks until the verdict at idx (previously scheduled) is
// available. A probe panic at an awaited index resurfaces here.
func (s *speculator) await(idx int64) bool {
	s.mu.Lock()
	cell := s.cells[idx]
	for !cell.done {
		s.cond.Wait()
	}
	s.mu.Unlock()
	if cell.panicked {
		s.close()
		panic(cell.panicVal)
	}
	return cell.diverges
}

// close cancels all unstarted work and joins the workers. Safe to call
// more than once.
func (s *speculator) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.queue = nil // cancel-on-resolve: unstarted probes never run
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *speculator) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		idx := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		s.prog.begin()
		t0 := time.Now()
		diverges, panicVal, panicked := s.runProbe(idx)
		s.prog.end(time.Since(t0))

		s.mu.Lock()
		cell := s.cells[idx]
		cell.diverges, cell.panicVal, cell.panicked = diverges, panicVal, panicked
		cell.done = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *speculator) runProbe(idx int64) (diverges bool, panicVal any, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			panicVal, panicked = p, true
		}
	}()
	return s.probe(rational.New(idx, s.den)) == Diverging, nil, false
}
