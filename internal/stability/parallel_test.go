package stability

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aqt/internal/rational"
)

// monotoneProbe builds a deterministic monotone probe: diverging at and
// above tau, below it stable or (deterministically, by a hash of the
// rate) inconclusive — exercising the "inconclusive counts as stable"
// rule under parallelism too.
func monotoneProbe(tau rational.Rat, withInconclusive bool) func(rational.Rat) Verdict {
	return func(r rational.Rat) Verdict {
		if r.Cmp(tau) >= 0 {
			return Diverging
		}
		if withInconclusive && (r.Num()+r.Den())%3 == 0 {
			return Inconclusive
		}
		return Stable
	}
}

// TestParallelThresholdSearchEquivalence is the equivalence property
// suite: across randomized monotone probes, endpoints (on- and
// off-grid) and resolutions, the parallel search must return
// bit-identical rationals to the sequential one — including the
// empty-grid and diverges-at-lo edge cases. Run under -race via
// `make verify`.
func TestParallelThresholdSearchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	workerChoices := []int{1, 2, 3, 4, 8}
	cases, emptyGrid, atLo, aboveHi := 0, 0, 0, 0
	for i := 0; i < 1250; i++ {
		bits := 1 + rng.Intn(12)
		den := int64(1) << bits

		// Endpoints: sometimes exactly on the dyadic grid, otherwise
		// random rationals with foreign denominators.
		var lo, hi rational.Rat
		if rng.Intn(3) == 0 {
			lo = rational.New(rng.Int63n(2*den), den)
		} else {
			lo = rational.New(rng.Int63n(257), 1+rng.Int63n(128))
		}
		switch rng.Intn(4) {
		case 0: // wide interval
			hi = lo.Add(rational.New(1+rng.Int63n(200), 1+rng.Int63n(16)))
		case 1: // narrow interval: often snaps to an empty grid
			hi = lo.Add(rational.New(1, 2+rng.Int63n(4*den)))
		default:
			hi = lo.Add(rational.New(1+rng.Int63n(64), 1+rng.Int63n(96)))
		}

		// Threshold: inside, below (diverges already at lo) or above
		// (never diverges) the interval.
		span := hi.Sub(lo)
		var tau rational.Rat
		switch rng.Intn(5) {
		case 0:
			tau = lo.Sub(span) // diverges at lo
		case 1:
			tau = hi.Add(span).Add(rational.New(1, 7)) // stable everywhere
		default:
			tau = lo.Add(span.MulInt(rng.Int63n(9)).Div(rational.FromInt(8)))
		}
		probe := monotoneProbe(tau, rng.Intn(2) == 0)

		want := ThresholdSearch(probe, lo, hi, bits)
		workers := workerChoices[i%len(workerChoices)]
		got := ParallelThresholdSearch(probe, lo, hi, bits, workers)
		if got != want {
			t.Fatalf("case %d: ParallelThresholdSearch(tau=%v, lo=%v, hi=%v, bits=%d, workers=%d) = %v, want %v",
				i, tau, lo, hi, bits, workers, got, want)
		}

		cases++
		loI, hiI, _ := snapGrid(lo, hi, bits)
		switch {
		case hiI < loI:
			emptyGrid++
		case tau.LessEq(lo): // diverging already at the lower endpoint
			atLo++
		case hi.Less(want): // stable on the whole grid
			aboveHi++
		}
	}
	if cases < 1000 {
		t.Fatalf("only %d cases ran, want >= 1000", cases)
	}
	// The generator must actually hit the edge regimes it claims to.
	if emptyGrid == 0 || atLo == 0 || aboveHi == 0 {
		t.Fatalf("edge-case coverage too thin: emptyGrid=%d atLo=%d aboveHi=%d", emptyGrid, atLo, aboveHi)
	}
	t.Logf("%d cases: %d empty-grid, %d diverging-at-lo, %d stable-everywhere", cases, emptyGrid, atLo, aboveHi)
}

// TestParallelThresholdSearchEmptyGridNoProbe mirrors the sequential
// contract: an interval with no grid point must resolve without a
// single probe (and without spinning up stray goroutines).
func TestParallelThresholdSearchEmptyGridNoProbe(t *testing.T) {
	var calls atomic.Int64
	probe := func(rational.Rat) Verdict { calls.Add(1); return Diverging }
	lo, hi := rational.New(3, 10), rational.New(2, 5)
	got := ParallelThresholdSearch(probe, lo, hi, 1, 8)
	if calls.Load() != 0 {
		t.Errorf("probe called %d times on an empty grid", calls.Load())
	}
	if !hi.Less(got) {
		t.Errorf("threshold = %v, want > hi %v", got, hi)
	}
}

func TestParallelThresholdSearchPanics(t *testing.T) {
	probe := func(rational.Rat) Verdict { return Stable }
	for name, f := range map[string]func(){
		"bits":   func() { ParallelThresholdSearch(probe, rational.New(1, 2), rational.FromInt(1), 0, 4) },
		"lo>=hi": func() { ParallelThresholdSearch(probe, rational.FromInt(1), rational.FromInt(1), 8, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestParallelThresholdSearchProbePanic: a panic at a point the
// sequential search would visit must resurface on the caller's
// goroutine with the original value, and the pool must be fully torn
// down afterwards.
func TestParallelThresholdSearchProbePanic(t *testing.T) {
	before := runtime.NumGoroutine()
	probe := func(r rational.Rat) Verdict { panic(fmt.Sprintf("probe exploded at %v", r)) }
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ParallelThresholdSearch(probe, rational.New(1, 2), rational.FromInt(1), 8, 4)
	}()
	msg, ok := recovered.(string)
	if !ok || !strings.HasPrefix(msg, "probe exploded at ") {
		t.Fatalf("recovered %v, want the probe's panic value", recovered)
	}
	waitForGoroutines(t, before)
}

// TestParallelThresholdSearchCancelOnResolve: once the threshold
// resolves, queued speculative probes are dropped and no goroutine
// keeps probing — the probe-call counter must freeze the moment the
// search returns, and the worker goroutines must all be gone.
func TestParallelThresholdSearchCancelOnResolve(t *testing.T) {
	before := runtime.NumGoroutine()
	var calls atomic.Int64
	// Diverging at lo: resolves after a single needed verdict while 8
	// workers hold a speculated frontier; the slow probe keeps some of
	// it queued when the driver resolves.
	probe := func(rational.Rat) Verdict {
		calls.Add(1)
		time.Sleep(2 * time.Millisecond)
		return Diverging
	}
	got := ParallelThresholdSearch(probe, rational.New(1, 2), rational.FromInt(1), 20, 8)
	if want := rational.New(1, 2); got != want {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
	frozen := calls.Load()
	waitForGoroutines(t, before)
	time.Sleep(20 * time.Millisecond)
	if now := calls.Load(); now != frozen {
		t.Errorf("probe ran %d more times after the search returned", now-frozen)
	}
	// 8 workers, one needed verdict: speculation is bounded by the pool
	// size, so at most workers+1 probes can ever have started.
	if frozen > 9 {
		t.Errorf("%d probes ran for a search resolved by its first verdict", frozen)
	}
}

func TestSweepGridOrderAndWorkers(t *testing.T) {
	points := make([]Point, 17)
	for i := range points {
		points[i] = Point{Rate: rational.New(int64(i)+1, 40), Depth: i}
	}
	probe := func(p Point) string {
		// Scramble completion order so result order must come from the
		// index bookkeeping, not scheduling luck.
		time.Sleep(time.Duration((17-p.Depth)%5) * time.Millisecond)
		return fmt.Sprintf("d%d@%v", p.Depth, p.Rate)
	}
	for _, workers := range []int{0, 1, 3, 64} {
		before := runtime.NumGoroutine()
		res := SweepGrid(points, probe, workers)
		if len(res) != len(points) {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		for i, r := range res {
			want := fmt.Sprintf("d%d@%v", i, points[i].Rate)
			if r.Value != want || r.Panic != "" {
				t.Errorf("workers=%d: result[%d] = %q (panic %q), want %q", workers, i, r.Value, r.Panic, want)
			}
			if r.Point != points[i] {
				t.Errorf("workers=%d: result[%d].Point = %v, want %v", workers, i, r.Point, points[i])
			}
		}
		waitForGoroutines(t, before)
	}
}

func TestSweepGridEmpty(t *testing.T) {
	res := SweepGrid(nil, func(Point) int { t.Error("probe called"); return 0 }, 4)
	if len(res) != 0 {
		t.Errorf("%d results for an empty grid", len(res))
	}
}

// TestSweepGridPanicCapture mirrors expt.RunAll's contract: a crashed
// probe surfaces in its own result and leaves its siblings intact.
func TestSweepGridPanicCapture(t *testing.T) {
	points := []Point{{Depth: 1}, {Depth: 2}, {Depth: 3}}
	res := SweepGrid(points, func(p Point) int {
		if p.Depth == 2 {
			panic("boom at depth 2")
		}
		return p.Depth * 10
	}, 3)
	if res[0].Panic != "" || res[0].Value != 10 || res[2].Panic != "" || res[2].Value != 30 {
		t.Errorf("healthy probes affected by sibling panic: %+v", res)
	}
	if res[1].Panic != "boom at depth 2" {
		t.Errorf("panic not captured: %+v", res[1])
	}
	if res[1].Value != 0 {
		t.Errorf("panicked probe must not report a value, got %d", res[1].Value)
	}
}

// waitForGoroutines asserts the goroutine count settles back to (at
// most) the recorded baseline — the leak check behind the pool
// contract that every worker is joined before the call returns.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}
