package stability

import "aqt/internal/rational"

// ThresholdSearch locates an instability threshold by rate bisection:
// assuming probe is monotone (stable below some rate r*, diverging at
// and above it), it returns the lowest dyadic rate with denominator
// 2^bits in (lo, hi] at which probe diverges. It returns hi+1/2^bits
// (i.e. just above hi) when probe never diverges on the grid, and lo
// when it diverges already at lo.
//
// Inconclusive probe results are treated as stable (the search errs
// towards reporting a higher threshold, never a spuriously low one).
func ThresholdSearch(probe func(rate rational.Rat) Verdict, lo, hi rational.Rat, bits int) rational.Rat {
	if bits < 1 || bits > 30 {
		panic("stability: bits out of range")
	}
	if !lo.Less(hi) {
		panic("stability: need lo < hi")
	}
	den := int64(1) << bits
	toGrid := func(r rational.Rat, up bool) int64 {
		v := r.MulInt(den)
		if up {
			return v.Ceil()
		}
		return v.Floor()
	}
	// Ceil the lower endpoint: flooring an off-grid lo would probe a
	// rate strictly below lo, breaking the documented (lo, hi]
	// contract (and potentially returning a rate the caller already
	// knows to be stable territory). Symmetrically, floor the upper
	// endpoint: ceiling an off-grid hi would probe a rate strictly
	// above it, and a divergence first seen there would be reported
	// from outside (lo, hi].
	loI := toGrid(lo, true)
	hiI := toGrid(hi, false)
	if hiI < loI {
		// No grid point lands inside [lo, hi] at this resolution, so
		// nothing can diverge on the grid; report "just above hi"
		// without probing outside the interval.
		return rational.New(hiI+1, den)
	}
	diverges := func(i int64) bool {
		return probe(rational.New(i, den)) == Diverging
	}
	if diverges(loI) {
		return rational.New(loI, den)
	}
	if !diverges(hiI) {
		return rational.New(hiI+1, den)
	}
	// Invariant: stable at loI, diverging at hiI.
	for hiI-loI > 1 {
		mid := (loI + hiI) / 2
		if diverges(mid) {
			hiI = mid
		} else {
			loI = mid
		}
	}
	return rational.New(hiI, den)
}
