package stability

import "aqt/internal/rational"

// ThresholdSearch locates an instability threshold by rate bisection:
// assuming probe is monotone (stable below some rate r*, diverging at
// and above it), it returns the lowest dyadic rate with denominator
// 2^bits in (lo, hi] at which probe diverges. It returns hi+1/2^bits
// (i.e. just above hi) when probe never diverges on the grid, and lo
// when it diverges already at lo.
//
// Inconclusive probe results are treated as stable (the search errs
// towards reporting a higher threshold, never a spuriously low one).
//
// ParallelThresholdSearch evaluates the same decision sequence with a
// worker pool and returns bit-identical results for any deterministic
// probe.
func ThresholdSearch(probe func(rate rational.Rat) Verdict, lo, hi rational.Rat, bits int) rational.Rat {
	loI, hiI, den := snapGrid(lo, hi, bits)
	if hiI < loI {
		// No grid point lands inside [lo, hi] at this resolution, so
		// nothing can diverge on the grid; report "just above hi"
		// without probing outside the interval.
		return rational.New(hiI+1, den)
	}
	st := searchState{loI: loI, hiI: hiI}
	for {
		idx, done, result := st.need()
		if done {
			return rational.New(result, den)
		}
		st = st.advance(probe(rational.New(idx, den)) == Diverging)
	}
}

// snapGrid validates the search parameters and snaps the endpoints to
// the dyadic grid with denominator den = 2^bits. The lower endpoint is
// ceiled: flooring an off-grid lo would probe a rate strictly below
// lo, breaking the documented (lo, hi] contract (and potentially
// returning a rate the caller already knows to be stable territory).
// Symmetrically the upper endpoint is floored: ceiling an off-grid hi
// would probe a rate strictly above it, and a divergence first seen
// there would be reported from outside (lo, hi].
func snapGrid(lo, hi rational.Rat, bits int) (loI, hiI, den int64) {
	if bits < 1 || bits > 30 {
		panic("stability: bits out of range")
	}
	if !lo.Less(hi) {
		panic("stability: need lo < hi")
	}
	den = int64(1) << bits
	return lo.MulInt(den).Ceil(), hi.MulInt(den).Floor(), den
}

// searchState is the bisection's decision state, factored out so the
// sequential and parallel searches walk literally the same sequence of
// probe points and verdict branches. Phases: 0 probes the snapped lo
// endpoint, 1 probes the snapped hi endpoint, 2 bisects the interval
// with the invariant "stable at loI, diverging at hiI".
type searchState struct {
	phase    int
	loI, hiI int64
	resolved bool
	result   int64
}

// need returns the grid index the search probes next, or done=true
// with the resolved result index.
func (st searchState) need() (idx int64, done bool, result int64) {
	if st.resolved {
		return 0, true, st.result
	}
	switch st.phase {
	case 0:
		return st.loI, false, 0
	case 1:
		return st.hiI, false, 0
	default:
		if st.hiI-st.loI <= 1 {
			return 0, true, st.hiI
		}
		return (st.loI + st.hiI) / 2, false, 0
	}
}

// advance folds the verdict for the index need() returned into the
// state.
func (st searchState) advance(diverges bool) searchState {
	switch st.phase {
	case 0:
		if diverges {
			st.resolved, st.result = true, st.loI
		} else {
			st.phase = 1
		}
	case 1:
		if !diverges {
			st.resolved, st.result = true, st.hiI+1
		} else {
			st.phase = 2
		}
	default:
		mid := (st.loI + st.hiI) / 2
		if diverges {
			st.hiI = mid
		} else {
			st.loI = mid
		}
	}
	return st
}
