package stability

// MinStableCap locates the minimal stable buffer capacity B*(r) by
// bisection: assuming probe is monotone in the capacity (unstable —
// dropping, or diverging — below some B*, stable at and above it), it
// returns the lowest capacity in [lo, hi] at which probe reports
// Stable. It returns hi+1 when probe is stable nowhere on [lo, hi],
// and lo when it is stable already at lo.
//
// Inconclusive probe results are treated as unstable: the search errs
// towards reporting a larger capacity, never a spuriously small one —
// the exact dual of ThresholdSearch's "Inconclusive is stable" rule,
// because here the stable side sits at the TOP of the interval.
//
// That duality is also how the implementation works: the capacity axis
// is reflected through m(i) = lo + hi - i, which flips "stable below,
// diverging above" (the rate axis searchState was built for) into
// "unstable below, stable above". The reflected walk reuses
// searchState verbatim, so MinStableCap inherits the decision sequence
// the threshold tests pin down.
func MinStableCap(probe func(cap int64) Verdict, lo, hi int64) int64 {
	if lo < 1 {
		panic("stability: need lo >= 1 (capacity 0 is the unbounded engine)")
	}
	if hi < lo {
		panic("stability: need lo <= hi")
	}
	mirror := func(i int64) int64 { return lo + hi - i }
	st := searchState{loI: lo, hiI: hi}
	for {
		idx, done, result := st.need()
		if done {
			// result is the lowest mirrored index that is unstable,
			// i.e. m(result) is the largest unstable capacity; B* is
			// one above it. The sentinel results fall out for free:
			// unstable everywhere resolves to result = lo, so
			// m(lo)+1 = hi+1; stable everywhere resolves to
			// result = hi+1, so m(hi+1)+1 = lo.
			return mirror(result) + 1
		}
		st = st.advance(probe(mirror(idx)) != Stable)
	}
}
