package stability

import (
	"bytes"
	"encoding/json"
	"fmt"

	"aqt/internal/sim"
)

// ProbeCheckpointVersion is the probe checkpoint document version.
const ProbeCheckpointVersion = 1

// ProbeCheckpoint is a paused stability probe: the engine state, the
// recorder's sampled series and peaks, and enough run parameters to
// finish the probe exactly as Run would have. Long threshold
// bisections persist these between probe evaluations and survive
// process restarts without losing mid-probe work.
type ProbeCheckpoint struct {
	Version   int               `json:"version"`
	Engine    *sim.Checkpoint   `json:"engine"`
	Recorder  sim.RecorderState `json:"recorder"`
	Remaining int64             `json:"remaining"`
	Growth    float64           `json:"growth"`
}

// PauseRun starts the probe Run(eng, steps, stride, growthThreshold)
// would execute, but stops after pauseAt steps and captures a
// checkpoint instead of classifying. The engine must be fresh, as Run
// requires; pauseAt must lie in [1, steps].
func PauseRun(eng *sim.Engine, steps, stride, pauseAt int64, growthThreshold float64) (*ProbeCheckpoint, error) {
	if pauseAt < 1 || pauseAt > steps {
		return nil, fmt.Errorf("stability: pauseAt %d outside [1, %d]", pauseAt, steps)
	}
	rec := sim.NewRecorder(stride)
	rec.MaxSamples = 1 << 14
	eng.AddObserver(rec)
	eng.RunLeap(pauseAt)
	ec, err := eng.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &ProbeCheckpoint{
		Version:   ProbeCheckpointVersion,
		Engine:    ec,
		Recorder:  rec.CheckpointState(),
		Remaining: steps - pauseAt,
		Growth:    growthThreshold,
	}, nil
}

// ResumeRun restores pc onto eng — freshly constructed the same way
// the paused probe's engine was — finishes the remaining steps and
// classifies. For a deterministic probe the report is identical to the
// uninterrupted Run (modulo leap-window accounting, which Run does not
// report).
func ResumeRun(eng *sim.Engine, pc *ProbeCheckpoint) (RunReport, error) {
	if pc.Version != ProbeCheckpointVersion {
		return RunReport{}, fmt.Errorf("stability: unsupported probe checkpoint version %d (want %d)", pc.Version, ProbeCheckpointVersion)
	}
	if pc.Engine == nil {
		return RunReport{}, fmt.Errorf("stability: probe checkpoint missing engine state")
	}
	if pc.Remaining < 0 {
		return RunReport{}, fmt.Errorf("stability: negative remaining step count %d", pc.Remaining)
	}
	rec := sim.NewRecorder(1) // stride overwritten by RestoreState
	eng.AddObserver(rec)
	if err := eng.Restore(pc.Engine); err != nil {
		return RunReport{}, err
	}
	if err := rec.RestoreState(pc.Recorder); err != nil {
		return RunReport{}, err
	}
	eng.RunLeap(pc.Remaining)
	return RunReport{
		Verdict:    Classify(rec.Samples(), pc.Growth),
		PeakTotal:  rec.PeakTotal(),
		FinalTotal: eng.TotalQueued(),
		Samples:    rec.Samples(),
	}, nil
}

// Encode renders the probe checkpoint as deterministic indented JSON
// with a trailing newline.
func (pc *ProbeCheckpoint) Encode() []byte {
	data, err := json.MarshalIndent(pc, "", "  ")
	if err != nil {
		panic("stability: probe checkpoint encode: " + err.Error())
	}
	return append(data, '\n')
}

// DecodeProbeCheckpoint parses and validates a persisted probe
// checkpoint. The embedded engine document is structurally validated
// here; spec-level fit is checked by ResumeRun against the engine it
// is given.
func DecodeProbeCheckpoint(data []byte) (*ProbeCheckpoint, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pc ProbeCheckpoint
	if err := dec.Decode(&pc); err != nil {
		return nil, fmt.Errorf("stability: probe checkpoint: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("stability: probe checkpoint: trailing data")
	}
	if pc.Version != ProbeCheckpointVersion {
		return nil, fmt.Errorf("stability: unsupported probe checkpoint version %d (want %d)", pc.Version, ProbeCheckpointVersion)
	}
	if pc.Engine == nil {
		return nil, fmt.Errorf("stability: probe checkpoint missing engine state")
	}
	if err := pc.Engine.Validate(); err != nil {
		return nil, err
	}
	if pc.Remaining < 0 {
		return nil, fmt.Errorf("stability: negative remaining step count %d", pc.Remaining)
	}
	return &pc, nil
}
