package stability

import (
	"sync"
	"testing"
	"time"

	"aqt/internal/obs"
	"aqt/internal/rational"
)

// TestProgTrackerResolve pins the early-resolution fix: once resolve()
// caps the total, reports stop counting phantom remaining probes, and
// a speculative probe dequeued after resolution grows the total so
// done+inFlight can never exceed it.
func TestProgTrackerResolve(t *testing.T) {
	var reports []obs.SweepProgress
	p := newProgTracker(func(sp obs.SweepProgress) { reports = append(reports, sp) }, 10)

	for i := 0; i < 3; i++ {
		p.begin()
		p.end(time.Millisecond)
	}
	p.begin() // one probe still in flight at resolution time
	p.resolve()
	last := reports[len(reports)-1]
	if last.Total != 4 {
		t.Errorf("after resolve with 3 done + 1 in flight: Total %d, want 4", last.Total)
	}

	// A worker dequeues a speculative probe after resolution: the total
	// must stretch to cover it instead of reporting done+inFlight > total.
	p.begin()
	last = reports[len(reports)-1]
	if got := last.Done + last.InFlight; got > last.Total {
		t.Errorf("post-resolve begin: done+inFlight %d > total %d", got, last.Total)
	}
	p.end(time.Millisecond)
	p.end(time.Millisecond)
	p.finish()
	last = reports[len(reports)-1]
	if last.Total != last.Done || last.InFlight != 0 {
		t.Errorf("final report %+v: want Total == Done and no in-flight probes", last)
	}
	for i, r := range reports {
		if r.Done+r.InFlight > r.Total {
			t.Errorf("report %d: done %d + inFlight %d exceeds total %d", i, r.Done, r.InFlight, r.Total)
		}
	}

	// resolve must not touch an exact (not over-estimated) total.
	var rep2 []obs.SweepProgress
	q := newProgTracker(func(sp obs.SweepProgress) { rep2 = append(rep2, sp) }, 2)
	q.begin()
	q.end(time.Millisecond)
	q.begin()
	q.end(time.Millisecond)
	q.resolve()
	if last := rep2[len(rep2)-1]; last.Total != 2 || last.Done != 2 {
		t.Errorf("exact-total resolve: %+v, want 2/2", last)
	}

	// All methods are nil-safe (telemetry off).
	var nilTracker *progTracker
	nilTracker.begin()
	nilTracker.end(time.Millisecond)
	nilTracker.resolve()
	nilTracker.finish()
}

// TestParallelThresholdSearchProgressNoStaleETA runs real searches and
// requires every emitted report to satisfy the invariant the StatusLine
// ETA depends on (done+inFlight <= total), the final report to close
// the books (Done == Total, nothing in flight), and the early-resolved
// total to be corrected — for both the inline 1-worker path and the
// speculating pool.
func TestParallelThresholdSearchProgressNoStaleETA(t *testing.T) {
	tau := rational.New(3, 4)
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var reports []obs.SweepProgress
		got := ParallelThresholdSearchOpt(monotoneProbe(tau, false),
			rational.New(1, 2), rational.New(1, 1), 6, workers,
			func(sp obs.SweepProgress) {
				mu.Lock()
				reports = append(reports, sp)
				mu.Unlock()
			})
		want := ThresholdSearch(monotoneProbe(tau, false), rational.New(1, 2), rational.New(1, 1), 6)
		if got.Cmp(want) != 0 {
			t.Fatalf("workers=%d: search returned %v, want %v", workers, got, want)
		}
		if len(reports) == 0 {
			t.Fatalf("workers=%d: no progress reports", workers)
		}
		for i, r := range reports {
			if r.Done+r.InFlight > r.Total {
				t.Errorf("workers=%d report %d: done %d + inFlight %d exceeds total %d",
					workers, i, r.Done, r.InFlight, r.Total)
			}
		}
		last := reports[len(reports)-1]
		if last.Done != last.Total || last.InFlight != 0 {
			t.Errorf("workers=%d final report %+v: want Done == Total, InFlight == 0", workers, last)
		}
		if eta := last.ETA(); eta != 0 {
			t.Errorf("workers=%d: final report still advertises ETA %v", workers, eta)
		}
	}
}
