package stability

import (
	"strings"
	"testing"
	"testing/quick"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestResidenceBound(t *testing.T) {
	if got := ResidenceBound(10, rational.New(1, 3)); got != 3 {
		t.Errorf("floor(10/3) = %d", got)
	}
	if got := ResidenceBound(12, rational.New(1, 4)); got != 3 {
		t.Errorf("floor(12/4) = %d", got)
	}
}

func TestRateBounds(t *testing.T) {
	if !GreedyRateBound(3).Eq(rational.New(1, 4)) {
		t.Error("greedy bound wrong")
	}
	if !TimePriorityRateBound(3).Eq(rational.New(1, 3)) {
		t.Error("time-priority bound wrong")
	}
	for _, f := range []func(){func() { GreedyRateBound(0) }, func() { TimePriorityRateBound(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("d=0 did not panic")
				}
			}()
			f()
		}()
	}
}

func TestInitialConfigResidenceBound(t *testing.T) {
	// S=10, w=5, r=1/8, bound rate 1/4: w* = ceil(16/(1/8)) = 128,
	// residence = floor(128/4) = 32.
	got := InitialConfigResidenceBound(10, 5, rational.New(1, 8), rational.New(1, 4))
	if got != 32 {
		t.Errorf("bound = %d, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("r >= bound did not panic")
		}
	}()
	InitialConfigResidenceBound(10, 5, rational.New(1, 4), rational.New(1, 4))
}

// theorem41Network builds a random-ish multi-path network and a (w,r)
// adversary at the given rate with routes of length <= d.
func theorem41Setup(d int, w int64, rate rational.Rat, seed int64) (*graph.Graph, sim.Adversary) {
	g := graph.Complete(d + 2)
	adv := adversary.NewRandomWR(g, w, rate, d, seed)
	return g, adv
}

func TestTheorem41AllGreedyPolicies(t *testing.T) {
	// Every policy is greedy; at r <= 1/(d+1) the floor(wr) residence
	// bound must hold for all of them.
	d := 3
	w := int64(40)
	rate := GreedyRateBound(d) // exactly 1/(d+1)
	for _, pol := range policy.All() {
		g, adv := theorem41Setup(d, w, rate, 11)
		res := CheckResidence(g, pol, adv, w, rate, d, 4000)
		if res.Injected == 0 {
			t.Fatalf("%s: adversary injected nothing", pol.Name())
		}
		if !res.OK() {
			t.Errorf("Theorem 4.1 violated: %s", res)
		}
	}
}

func TestTheorem43TimePriorityAtOneOverD(t *testing.T) {
	// FIFO and LIS tolerate the higher rate 1/d.
	d := 3
	w := int64(42)
	rate := TimePriorityRateBound(d) // 1/d
	for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}} {
		if !pol.Traits().TimePriority {
			t.Fatalf("%s is not time-priority", pol.Name())
		}
		g, adv := theorem41Setup(d, w, rate, 23)
		res := CheckResidence(g, pol, adv, w, rate, d, 4000)
		if res.Injected == 0 {
			t.Fatal("adversary injected nothing")
		}
		if !res.OK() {
			t.Errorf("Theorem 4.3 violated: %s", res)
		}
	}
}

func TestResidenceResultString(t *testing.T) {
	res := ResidenceResult{Policy: "FIFO", W: 10, Rate: rational.New(1, 4), D: 3,
		Bound: 2, Measured: 5}
	if res.OK() {
		t.Error("5 > 2 should not be OK")
	}
	if !strings.Contains(res.String(), "VIOLATED") {
		t.Errorf("String = %q", res.String())
	}
	res.Measured = 2
	if !res.OK() || !strings.Contains(res.String(), "OK") {
		t.Error("2 <= 2 should be OK")
	}
}

func TestClassify(t *testing.T) {
	mk := func(vals ...int64) []sim.Sample {
		out := make([]sim.Sample, len(vals))
		for i, v := range vals {
			out[i] = sim.Sample{T: int64(i), TotalQueued: v}
		}
		return out
	}
	if v := Classify(mk(1, 2, 3), 1.25); v != Inconclusive {
		t.Errorf("short series = %v", v)
	}
	// Flat series: stable.
	if v := Classify(mk(5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5), 1.25); v != Stable {
		t.Errorf("flat = %v", v)
	}
	// Linearly growing series: diverging.
	grow := make([]int64, 30)
	for i := range grow {
		grow[i] = int64(10 * (i + 1))
	}
	if v := Classify(mk(grow...), 1.25); v != Diverging {
		t.Errorf("growing = %v", v)
	}
	// Empty network forever: stable.
	if v := Classify(mk(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0), 1.25); v != Stable {
		t.Errorf("empty = %v", v)
	}
	// Zero middle then nonzero tail: diverging.
	if v := Classify(mk(0, 0, 0, 0, 0, 0, 0, 0, 7, 7, 7, 7), 1.25); v != Diverging {
		t.Errorf("late burst = %v", v)
	}
	if Stable.String() != "stable" || Diverging.String() != "diverging" || Inconclusive.String() != "inconclusive" {
		t.Error("verdict strings wrong")
	}
}

func TestRunClassifiesDrainingSystem(t *testing.T) {
	g := graph.Ring(4)
	adv := adversary.NewRandomWR(g, 20, rational.New(1, 6), 2, 5)
	eng := sim.New(g, policy.FIFO{}, adv)
	rep := Run(eng, 3000, 10, 1.25)
	if rep.Verdict != Stable {
		t.Errorf("low-rate ring under FIFO should be stable, got %v (peak %d, final %d)",
			rep.Verdict, rep.PeakTotal, rep.FinalTotal)
	}
	if len(rep.Samples) == 0 {
		t.Error("no samples recorded")
	}
}

func TestRunClassifiesOverload(t *testing.T) {
	// A single edge fed at rate 2 cannot drain: diverging.
	g := graph.Line(1)
	adv := adversary.NewScript(adversary.Stream{
		Start: 1, Rate: rational.FromInt(2), Budget: -1,
		Route: []graph.EdgeID{g.MustEdge("e1")},
	})
	eng := sim.New(g, policy.FIFO{}, adv)
	rep := Run(eng, 2000, 10, 1.25)
	if rep.Verdict != Diverging {
		t.Errorf("overloaded edge should diverge, got %v", rep.Verdict)
	}
}

func TestMaxRouteLenObserver(t *testing.T) {
	g := graph.Line(4)
	m := &MaxRouteLen{}
	e := sim.New(g, policy.FIFO{}, nil)
	e.AddObserver(m)
	p := e.Seed(packet.InjNamed(g, "e1", "e2"))
	if m.D != 2 {
		t.Errorf("D = %d after seed", m.D)
	}
	e.ExtendRoute(p, []graph.EdgeID{g.MustEdge("e3"), g.MustEdge("e4")})
	if m.D != 4 {
		t.Errorf("D = %d after extension", m.D)
	}
}

// Property: for random d, w and any rate <= 1/(d+1), FIFO and LIS obey
// the floor(wr) residence bound on complete graphs.
func TestQuickResidenceBoundHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(dRaw, wRaw uint8, seed int64) bool {
		d := int(dRaw%3) + 1
		w := int64(wRaw%30) + int64(d+1) // ensure floor(wr) >= 1
		rate := GreedyRateBound(d)
		for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}} {
			g, adv := theorem41Setup(d, w, rate, seed)
			res := CheckResidence(g, pol, adv, w, rate, d, 1200)
			if !res.OK() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
