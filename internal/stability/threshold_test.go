package stability

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestThresholdSearchSynthetic(t *testing.T) {
	// Diverges at and above 5/8.
	probe := func(r rational.Rat) Verdict {
		if r.Cmp(rational.New(5, 8)) >= 0 {
			return Diverging
		}
		return Stable
	}
	got := ThresholdSearch(probe, rational.New(1, 4), rational.FromInt(1), 10)
	if !got.Eq(rational.New(5, 8)) {
		t.Errorf("threshold = %v, want 5/8", got)
	}
}

func TestThresholdSearchBoundaries(t *testing.T) {
	alwaysDiverges := func(rational.Rat) Verdict { return Diverging }
	neverDiverges := func(rational.Rat) Verdict { return Stable }
	inconclusive := func(rational.Rat) Verdict { return Inconclusive }

	lo, hi := rational.New(1, 2), rational.FromInt(1)
	if got := ThresholdSearch(alwaysDiverges, lo, hi, 8); !got.Eq(lo) {
		t.Errorf("always-diverging threshold = %v, want %v", got, lo)
	}
	above := ThresholdSearch(neverDiverges, lo, hi, 8)
	if !hi.Less(above) {
		t.Errorf("never-diverging threshold = %v, want > %v", above, hi)
	}
	// Inconclusive treated as stable.
	if got := ThresholdSearch(inconclusive, lo, hi, 8); !hi.Less(got) {
		t.Errorf("inconclusive threshold = %v", got)
	}
}

func TestThresholdSearchOffGridLo(t *testing.T) {
	// lo = 1/3 is off the dyadic grid (bits=3, den=8). Flooring the
	// lower grid point would probe 2/8 = 1/4 < lo; with a probe that
	// already diverges at 1/4 the search would then return 1/4,
	// violating the (lo, hi] contract. The correct answer is the
	// lowest grid point >= lo, i.e. 3/8.
	lo, hi := rational.New(1, 3), rational.FromInt(1)
	var probed []rational.Rat
	probe := func(r rational.Rat) Verdict {
		probed = append(probed, r)
		if r.Cmp(rational.New(1, 4)) >= 0 {
			return Diverging
		}
		return Stable
	}
	got := ThresholdSearch(probe, lo, hi, 3)
	if got.Less(lo) {
		t.Errorf("threshold %v is below lo %v", got, lo)
	}
	if !got.Eq(rational.New(3, 8)) {
		t.Errorf("threshold = %v, want 3/8", got)
	}
	for _, r := range probed {
		if r.Less(lo) {
			t.Errorf("probed rate %v below lo %v", r, lo)
		}
	}
}

func TestThresholdSearchOffGridHi(t *testing.T) {
	// hi = 2/3 is off the dyadic grid (bits=3, den=8). Ceiling the
	// upper grid point would probe 6/8 = 3/4 > hi; with a probe that
	// diverges only above hi, the search would then report 3/4 as a
	// threshold inside (lo, hi] — an interval that is in fact stable
	// throughout. Flooring to 5/8 keeps every probe inside [lo, hi]
	// and yields the "stable everywhere" verdict (a result > hi).
	lo, hi := rational.New(1, 8), rational.New(2, 3)
	var probed []rational.Rat
	probe := func(r rational.Rat) Verdict {
		probed = append(probed, r)
		if r.Cmp(rational.New(3, 4)) >= 0 {
			return Diverging
		}
		return Stable
	}
	got := ThresholdSearch(probe, lo, hi, 3)
	if !hi.Less(got) {
		t.Errorf("threshold = %v, want > hi %v (no divergence inside the interval)", got, hi)
	}
	for _, r := range probed {
		if hi.Less(r) {
			t.Errorf("probed rate %v above hi %v", r, hi)
		}
	}
}

func TestThresholdSearchOffGridHiDivergence(t *testing.T) {
	// Same off-grid hi, but with a real threshold at 1/2: the result
	// must be unaffected by how the endpoint is snapped.
	lo, hi := rational.New(1, 8), rational.New(2, 3)
	probe := func(r rational.Rat) Verdict {
		if r.Cmp(rational.New(1, 2)) >= 0 {
			return Diverging
		}
		return Stable
	}
	if got := ThresholdSearch(probe, lo, hi, 3); !got.Eq(rational.New(1, 2)) {
		t.Errorf("threshold = %v, want 1/2", got)
	}
}

func TestThresholdSearchNoGridPointInRange(t *testing.T) {
	// (3/10, 2/5) contains no multiple of 1/2: after snapping, the
	// grid interval is empty. The search must return "just above hi"
	// without a single probe — probing outside [lo, hi] is exactly
	// what endpoint snapping is meant to prevent.
	calls := 0
	probe := func(rational.Rat) Verdict { calls++; return Diverging }
	lo, hi := rational.New(3, 10), rational.New(2, 5)
	got := ThresholdSearch(probe, lo, hi, 1)
	if calls != 0 {
		t.Errorf("probe called %d times on an empty grid", calls)
	}
	if !hi.Less(got) {
		t.Errorf("threshold = %v, want > hi %v", got, hi)
	}
}

func TestThresholdSearchPanics(t *testing.T) {
	probe := func(rational.Rat) Verdict { return Stable }
	for name, f := range map[string]func(){
		"bits":   func() { ThresholdSearch(probe, rational.New(1, 2), rational.FromInt(1), 0) },
		"lo>=hi": func() { ThresholdSearch(probe, rational.FromInt(1), rational.FromInt(1), 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestThresholdSearchSingleEdgeSaturation(t *testing.T) {
	// A single edge fed by one stream diverges exactly when the rate
	// exceeds 1 (service is one packet per step).
	probe := func(rate rational.Rat) Verdict {
		g := graph.Line(1)
		adv := adversary.NewScript(adversary.Stream{
			Start: 1, Rate: rate, Budget: -1, Route: []graph.EdgeID{g.MustEdge("e1")},
		})
		eng := sim.New(g, policy.FIFO{}, adv)
		rep := Run(eng, 1200, 10, 1.25)
		return rep.Verdict
	}
	got := ThresholdSearch(probe, rational.New(1, 2), rational.FromInt(2), 6)
	// Threshold should land just above 1 (1 + 1/64 on the grid: at
	// rate exactly 1 the queue stays flat).
	if got.Float() < 1.0 || got.Float() > 1.1 {
		t.Errorf("saturation threshold = %v (%.4f), want ~1", got, got.Float())
	}
}
