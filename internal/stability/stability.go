// Package stability implements the paper's section 4 — the stability
// theorems for greedy and time-priority protocols under (w,r)
// adversaries — together with the empirical machinery experiments
// need: divergence detection on queue-size series, instability
// threshold search, and the policy-zoo matrix.
//
// Theorem 4.1: with a (w,r) adversary at r <= 1/(d+1) (d = longest
// route length) and any greedy schedule, no packet stays in one buffer
// more than floor(w·r) steps. Theorem 4.3 relaxes the rate to 1/d for
// time-priority protocols (Definition 4.2), e.g. FIFO and LIS. Both
// bounds are independent of the network size — only the adversary's
// parameters enter.
package stability

import (
	"fmt"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// ResidenceBound returns the Theorem 4.1/4.3 bound floor(w·r) on the
// number of steps any packet spends in a single buffer.
func ResidenceBound(w int64, r rational.Rat) int64 {
	return r.FloorMulInt(w)
}

// GreedyRateBound returns the largest admissible rate 1/(d+1) of
// Theorem 4.1 for routes of length at most d.
func GreedyRateBound(d int) rational.Rat {
	if d < 1 {
		panic("stability: d must be >= 1")
	}
	return rational.New(1, int64(d+1))
}

// TimePriorityRateBound returns the 1/d bound of Theorem 4.3.
func TimePriorityRateBound(d int) rational.Rat {
	if d < 1 {
		panic("stability: d must be >= 1")
	}
	return rational.New(1, int64(d))
}

// InitialConfigResidenceBound returns the Corollary 4.5/4.6 bound for
// a system started with an S-initial-configuration under a (w,r)
// adversary with r < rateBound (1/(d+1) or 1/d):
//
//	floor( ceil((S+w+1)/(rateBound − r)) · rateBound ).
//
// It panics unless r < rateBound.
func InitialConfigResidenceBound(s, w int64, r, rateBound rational.Rat) int64 {
	diff := rateBound.Sub(r)
	if diff.Sign() <= 0 {
		panic("stability: corollary needs r < rate bound")
	}
	wStar := rational.FromInt(s + w + 1).Div(diff).Ceil()
	return rateBound.FloorMulInt(wStar)
}

// ResidenceResult reports one residence-bound check.
type ResidenceResult struct {
	Policy   string
	W        int64
	Rate     rational.Rat
	D        int // longest route length used
	Steps    int64
	Bound    int64 // floor(w·r)
	Measured int64 // max per-buffer residence, waiting packets included
	Injected int64
	Absorbed int64
}

// OK reports whether the theorem's bound held.
func (r ResidenceResult) OK() bool { return r.Measured <= r.Bound }

// String summarizes the result.
func (r ResidenceResult) String() string {
	verdict := "OK"
	if !r.OK() {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("%s w=%d r=%v d=%d: residence %d <= %d [%s] (%d injected, %d absorbed over %d steps)",
		r.Policy, r.W, r.Rate, r.D, r.Measured, r.Bound, verdict, r.Injected, r.Absorbed, r.Steps)
}

// CheckResidence runs pol on g under adv for the given number of steps
// and measures the maximum per-buffer residence, including packets
// still waiting at the end. d is the longest route length the
// adversary uses (for the report only).
func CheckResidence(g *graph.Graph, pol policy.Policy, adv sim.Adversary, w int64, rate rational.Rat, d int, steps int64) ResidenceResult {
	e := sim.New(g, pol, adv)
	// No observers and no per-step decisions: take the quiet hot loop.
	e.RunQuiet(steps)
	return ResidenceResult{
		Policy:   pol.Name(),
		W:        w,
		Rate:     rate,
		D:        d,
		Steps:    steps,
		Bound:    ResidenceBound(w, rate),
		Measured: e.MaxResidence(true),
		Injected: e.Injected(),
		Absorbed: e.Absorbed(),
	}
}

// Verdict classifies a queue-size series.
type Verdict int

// Verdicts.
const (
	// Stable: the backlog stopped growing (bounded buffers).
	Stable Verdict = iota
	// Diverging: the backlog keeps growing across run thirds.
	Diverging
	// Inconclusive: not enough signal (e.g. empty series).
	Inconclusive
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Stable:
		return "stable"
	case Diverging:
		return "diverging"
	default:
		return "inconclusive"
	}
}

// Classify inspects a total-queued series sampled over a run and
// decides whether the system is stable. The rule compares backlog
// peaks over the last third of the run against the middle third: a
// growth ratio above growthThreshold (e.g. 1.25) means diverging;
// anything else is stable. Series shorter than 9 samples are
// inconclusive.
func Classify(samples []sim.Sample, growthThreshold float64) Verdict {
	if len(samples) < 9 {
		return Inconclusive
	}
	third := len(samples) / 3
	peak := func(from, to int) int64 {
		var m int64
		for _, s := range samples[from:to] {
			if s.TotalQueued > m {
				m = s.TotalQueued
			}
		}
		return m
	}
	mid := peak(third, 2*third)
	last := peak(2*third, len(samples))
	if mid == 0 {
		if last == 0 {
			return Stable
		}
		return Diverging
	}
	if float64(last) >= growthThreshold*float64(mid) {
		return Diverging
	}
	return Stable
}

// RunAndClassify executes an engine for the given steps, sampling
// every stride, and classifies the backlog series.
type RunReport struct {
	Verdict    Verdict
	PeakTotal  int64
	FinalTotal int64
	Samples    []sim.Sample
}

// Run runs eng for steps and classifies.
func Run(eng *sim.Engine, steps, stride int64, growthThreshold float64) RunReport {
	rec := sim.NewRecorder(stride)
	// Bound the retained series so million-step stride-1 probes cannot
	// grow memory with the horizon: past 2^14 samples the recorder
	// doubles its effective stride in place. Peaks stay exact (they are
	// tracked every step, independent of sampling) and every workload
	// the repo's experiments run stays far below the bound, so existing
	// series — and Classify verdicts — are unchanged.
	rec.MaxSamples = 1 << 14
	eng.AddObserver(rec)
	// RunLeap batch-advances provably static stretches (idle tails and
	// final-edge drains) when the adversary reports a horizon; with a
	// non-static adversary or extra observers it degrades to Run's
	// per-step execution, bit-identically either way. The Recorder
	// reconstructs its samples and peaks across leaped windows.
	eng.RunLeap(steps)
	return RunReport{
		Verdict:    Classify(rec.Samples(), growthThreshold),
		PeakTotal:  rec.PeakTotal(),
		FinalTotal: eng.TotalQueued(),
		Samples:    rec.Samples(),
	}
}

// MaxRouteLen returns d, the length of the longest route among all
// injected packets, tracked as an engine observer.
type MaxRouteLen struct {
	D int
}

// OnStep implements sim.Observer.
func (*MaxRouteLen) OnStep(*sim.Engine) {}

// OnInject implements sim.InjectionObserver.
func (m *MaxRouteLen) OnInject(_ int64, p *packet.Packet) {
	if len(p.Route) > m.D {
		m.D = len(p.Route)
	}
}

// OnReroute implements sim.RerouteObserver (extensions lengthen
// routes).
func (m *MaxRouteLen) OnReroute(_ int64, p *packet.Packet, _ []graph.EdgeID) {
	if len(p.Route) > m.D {
		m.D = len(p.Route)
	}
}
