package obs_test

import (
	"strings"
	"testing"

	"aqt/internal/obs"
)

func TestHistogramBasics(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%d/%d, want 5/0/100", s.Count, s.Min, s.Max)
	}
	if got, want := s.Mean(), 106.0/5; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	// Quantiles are log2-bucket upper bounds: each must dominate the
	// true quantile and never exceed Max.
	if q := s.Quantile(1.0); q != 100 {
		t.Errorf("Quantile(1.0) = %d, want exact max 100", q)
	}
	if q := s.Quantile(0.5); q < 1 || q > 3 {
		t.Errorf("Quantile(0.5) = %d, want a bound in [1,3]", q)
	}
	if q := s.Quantile(0.01); q != 0 {
		t.Errorf("Quantile(0.01) = %d, want 0 (first observation is 0)", q)
	}
}

func TestHistogramQuantileClampsToMax(t *testing.T) {
	h := obs.NewRegistry().Histogram("h")
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket top would be 7
	}
	if q := h.Snapshot().Quantile(0.99); q != 5 {
		t.Errorf("Quantile(0.99) = %d, want 5 (bucket top clamped to Max)", q)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := obs.NewRegistry().Histogram("h")
	h.Observe(-7)
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("negative observation not clamped: %+v", s)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := obs.NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter returned distinct handles for one name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram returned distinct handles for one name")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := obs.NewRegistry()
	a.Counter("sends").Add(10)
	a.Counter("only_a").Add(1)
	ha := a.Histogram("queue")
	ha.Observe(2)
	ha.Observe(8)

	b := obs.NewRegistry()
	b.Counter("sends").Add(5)
	b.Counter("only_b").Add(2)
	hb := b.Histogram("queue")
	hb.Observe(1)
	hb.Observe(32)
	b.Histogram("only_b_hist").Observe(4)

	m := a.Snapshot().Merge(b.Snapshot())
	if v, ok := m.Counter("sends"); !ok || v != 15 {
		t.Errorf("merged sends = %d,%v, want 15,true", v, ok)
	}
	if v, ok := m.Counter("only_a"); !ok || v != 1 {
		t.Errorf("merged only_a = %d,%v", v, ok)
	}
	if v, ok := m.Counter("only_b"); !ok || v != 2 {
		t.Errorf("merged only_b = %d,%v", v, ok)
	}
	q, ok := m.Histogram("queue")
	if !ok || q.Count != 4 || q.Min != 1 || q.Max != 32 || q.Sum != 43 {
		t.Errorf("merged queue = %+v, want count 4, min 1, max 32, sum 43", q)
	}
	if _, ok := m.Histogram("only_b_hist"); !ok {
		t.Error("one-sided histogram dropped by Merge")
	}
	// Deterministic order: sorted by name whatever the merge order.
	for i := 1; i < len(m.Counters); i++ {
		if m.Counters[i-1].Name >= m.Counters[i].Name {
			t.Errorf("counters not sorted: %q >= %q", m.Counters[i-1].Name, m.Counters[i].Name)
		}
	}
	m2 := b.Snapshot().Merge(a.Snapshot())
	if len(m2.Counters) != len(m.Counters) || len(m2.Histograms) != len(m.Histograms) {
		t.Error("Merge is order-sensitive")
	}
}

func TestMergeSnapshotsFoldsMany(t *testing.T) {
	var snaps []obs.Snapshot
	for i := 0; i < 4; i++ {
		r := obs.NewRegistry()
		r.Counter("n").Add(int64(i + 1))
		snaps = append(snaps, r.Snapshot())
	}
	m := obs.MergeSnapshots(snaps...)
	if v, _ := m.Counter("n"); v != 10 {
		t.Errorf("MergeSnapshots counter = %d, want 10", v)
	}
}

func TestWriteText(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sim.sends").Add(42)
	r.Histogram("sim.latency").Observe(9)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "sim.sends") || !strings.Contains(out, "42") {
		t.Errorf("WriteText missing counter line:\n%s", out)
	}
	if !strings.Contains(out, "sim.latency") || !strings.Contains(out, "max 9") {
		t.Errorf("WriteText missing histogram line:\n%s", out)
	}
}
