package obs

import (
	"reflect"
	"testing"
)

// TestRegistryStateRoundTrip: a registry's full contents — including
// zero-valued metrics, whose registration is itself observable state —
// must survive State → RestoreState, and handles fetched before the
// restore must alias the restored values.
func TestRegistryStateRoundTrip(t *testing.T) {
	src := NewRegistry()
	src.Counter("b.count").Add(7)
	src.Counter("a.zero") // registered, never incremented
	h := src.Histogram("lat")
	for _, v := range []int64{0, 1, 1, 9, 300} {
		h.Observe(v)
	}
	src.Histogram("empty")
	st := src.State()

	dst := NewRegistry()
	pre := dst.Counter("b.count") // handle fetched before restore
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if pre.Value() != 7 {
		t.Errorf("pre-fetched handle reads %d, want 7", pre.Value())
	}
	if !reflect.DeepEqual(src.Snapshot(), dst.Snapshot()) {
		t.Errorf("snapshots differ:\nsrc: %+v\ndst: %+v", src.Snapshot(), dst.Snapshot())
	}
	if !reflect.DeepEqual(st, dst.State()) {
		t.Error("State is not a fixed point across restore")
	}
}

// TestRegistryStateRejects: malformed registry states (reachable from
// fuzzed checkpoint documents) must be rejected with errors.
func TestRegistryStateRejects(t *testing.T) {
	cases := []struct {
		name string
		st   RegistryState
	}{
		{"unsorted counters", RegistryState{Counters: []CounterSnapshot{{Name: "b"}, {Name: "a"}}}},
		{"empty name", RegistryState{Counters: []CounterSnapshot{{Name: ""}}}},
		{"bucket sum mismatch", RegistryState{Histograms: []HistogramState{
			{Name: "h", Count: 5, Buckets: []int64{1, 1}}}}},
		{"negative bucket", RegistryState{Histograms: []HistogramState{
			{Name: "h", Count: 0, Buckets: []int64{2, -2, 1}}}}},
		{"trailing zero bucket", RegistryState{Histograms: []HistogramState{
			{Name: "h", Count: 1, Buckets: []int64{1, 0}}}}},
		{"too many buckets", RegistryState{Histograms: []HistogramState{
			{Name: "h", Count: 0, Buckets: make([]int64, 100)}}}},
	}
	for _, tc := range cases {
		if err := NewRegistry().RestoreState(tc.st); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestFlightStateRoundTrip: the ring must rebuild at identical indices
// (same retained events, same total) both before and after wraparound.
func TestFlightStateRoundTrip(t *testing.T) {
	for _, n := range []int{5, 16, 40} { // below, at, past a 16-ring
		src := NewFlightRecorder(16)
		for i := 0; i < n; i++ {
			src.RecordFailure(int64(i), "x")
		}
		st := src.CheckpointState()
		dst := NewFlightRecorder(16)
		if err := dst.RestoreState(st); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(src.Events(), dst.Events()) {
			t.Fatalf("n=%d: events differ", n)
		}
		// Subsequent records must land where the uninterrupted recorder
		// would put them.
		src.RecordFailure(999, "y")
		dst.RecordFailure(999, "y")
		if !reflect.DeepEqual(src.Events(), dst.Events()) {
			t.Fatalf("n=%d: post-restore events diverge", n)
		}
	}
}

// TestFlightStateRejects: retained-event counts inconsistent with
// (total, cap) must be refused, as must hostile capacities.
func TestFlightStateRejects(t *testing.T) {
	cases := []FlightState{
		{Cap: 8, Total: 0},                               // cap below min
		{Cap: 1 << 25, Total: 0},                         // cap above bound
		{Cap: 16, Total: 3, Events: make([]Event, 2)},    // too few retained
		{Cap: 16, Total: 3, Events: make([]Event, 4)},    // too many retained
		{Cap: 16, Total: 100, Events: make([]Event, 15)}, // wrapped ring must be full
	}
	for i, st := range cases {
		if err := NewFlightRecorder(16).RestoreState(st); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestMeterStateFinishLatch: the Finish latch must survive the round
// trip so a restored meter does not double-finalize derived metrics.
func TestMeterStateFinishLatch(t *testing.T) {
	src := NewMeter(nil)
	src.Registry().Counter("sim.steps").Add(4)
	src.finished = true
	st := src.CheckpointState()
	dst := NewMeter(nil)
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !dst.finished {
		t.Error("finish latch lost")
	}
	if !reflect.DeepEqual(src.Registry().Snapshot(), dst.Registry().Snapshot()) {
		t.Error("registries differ")
	}
}
