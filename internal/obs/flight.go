// Package obs is the observability layer of the simulator: a
// flight-recorder ring of structured events fed alloc-free by the
// engine's event hooks, a mergeable zero-alloc metrics registry
// (counters + log-bucketed histograms), and sweep-progress telemetry
// for the parallel probe layer.
//
// The design constraint throughout is that instrumentation must not
// give back the zero-alloc hot path: FlightRecorder registers via
// sim.Engine.AddEventObserver (event interfaces only), so Run keeps
// its observerless fast path, and recording one event is a fixed-size
// struct store into a preallocated ring — no allocation, no
// formatting. Formatting happens only at dump time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/sim"
)

// EventKind labels one flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds.
const (
	EvInject EventKind = iota
	EvSend
	EvAbsorb
	EvReroute
	EvMarker
	EvFailure
	EvLeap
	EvDrop
)

var kindNames = [...]string{"inject", "send", "absorb", "reroute", "marker", "failure", "leap", "drop"}

// Labels of leap events, by window kind.
const (
	labelLeapIdle  = "leap.idle"
	labelLeapDrain = "leap.drain"
)

// String returns the JSONL name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one fixed-size flight-recorder record. Which fields are
// meaningful depends on Kind:
//
//	inject:  Pkt, Edge (first route edge), Hops (route length), Label (stream name)
//	send:    Pkt, Edge (edge being crossed), Hops (remaining incl. current)
//	absorb:  Pkt, Edge (last route edge), Label (stream name)
//	reroute: Pkt, Edge (current edge), Hops (new route length), Aux (old route length)
//	drop:    Pkt, Edge (the full buffer), Hops (remaining incl. current), Label (stream name)
//	marker:  Label (annotation, e.g. an adversary phase name)
//	failure: Label (the invariant-violation message)
//	leap:    Hops (window length in steps; T is the window's last step),
//	         Label ("leap.idle" or "leap.drain")
//
// Label always stores a string that existed before the event fired
// (stream names, phase names built at construction time), so recording
// an Event copies a pointer, never allocates.
type Event struct {
	T     int64
	Kind  EventKind
	Pkt   int64
	Edge  graph.EdgeID
	Hops  int
	Aux   int
	Label string
}

// FlightRecorder is a fixed-capacity keep-latest ring of Events. It
// implements every sim event-observer interface; register it with
// sim.Engine.AddEventObserver so the engine's observerless Run fast
// path stays intact. Recording is O(1) and allocation-free.
//
// On OnFailure (an invariant violation reported through
// sim.Engine.NotifyFailure or CheckConservation) the recorder appends
// a failure event and, if AutoDump is set, dumps the ring as JSONL to
// it — once, on the first failure.
type FlightRecorder struct {
	// AutoDump, when non-nil, receives a JSONL dump of the ring on the
	// first failure event. Errors from the writer are stored in
	// DumpErr, not returned (OnFailure has no error path).
	AutoDump io.Writer
	// DumpErr records the error of the auto-dump, if any.
	DumpErr error

	ring   []Event
	total  uint64
	dumped bool
}

// NewFlightRecorder returns a recorder keeping the latest capacity
// events (min 16).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 16 {
		capacity = 16
	}
	return &FlightRecorder{ring: make([]Event, capacity)}
}

// record stores ev, overwriting the oldest event when full.
func (r *FlightRecorder) record(ev Event) {
	r.ring[r.total%uint64(len(r.ring))] = ev
	r.total++
}

// OnInject implements sim.InjectionObserver.
func (r *FlightRecorder) OnInject(t int64, p *packet.Packet) {
	r.record(Event{T: t, Kind: EvInject, Pkt: int64(p.ID),
		Edge: p.Route[0], Hops: len(p.Route), Label: p.SourceName})
}

// OnSend implements sim.SendObserver.
func (r *FlightRecorder) OnSend(t int64, eid graph.EdgeID, p *packet.Packet) {
	r.record(Event{T: t, Kind: EvSend, Pkt: int64(p.ID),
		Edge: eid, Hops: p.RemainingHops()})
}

// OnAbsorb implements sim.AbsorptionObserver.
func (r *FlightRecorder) OnAbsorb(t int64, p *packet.Packet) {
	r.record(Event{T: t, Kind: EvAbsorb, Pkt: int64(p.ID),
		Edge: p.Route[len(p.Route)-1], Label: p.SourceName})
}

// OnReroute implements sim.RerouteObserver.
func (r *FlightRecorder) OnReroute(t int64, p *packet.Packet, oldRoute []graph.EdgeID) {
	r.record(Event{T: t, Kind: EvReroute, Pkt: int64(p.ID),
		Edge: p.CurrentEdge(), Hops: len(p.Route), Aux: len(oldRoute), Label: p.SourceName})
}

// OnDrop implements sim.DropObserver: a packet discarded at the full
// buffer of edge eid (bounded-buffer mode), with its remaining work in
// Hops — the same field OnSend uses, so a trace shows how far from its
// destination each casualty was.
func (r *FlightRecorder) OnDrop(t int64, eid graph.EdgeID, p *packet.Packet) {
	r.record(Event{T: t, Kind: EvDrop, Pkt: int64(p.ID),
		Edge: eid, Hops: p.RemainingHops(), Label: p.SourceName})
}

// OnMarker implements sim.MarkerObserver: adversary phase markers and
// other Engine.Annotate labels land in the ring as marker events.
func (r *FlightRecorder) OnMarker(t int64, label string) {
	r.record(Event{T: t, Kind: EvMarker, Pkt: -1, Edge: graph.NoEdge, Label: label})
}

// Mark records a marker event directly — for harnesses that trace
// their own lifecycle without an engine (cmd/experiments).
func (r *FlightRecorder) Mark(t int64, label string) { r.OnMarker(t, label) }

// AcceptLeap implements sim.LeapObserver. The recorder accepts both
// window kinds: a leaped window's per-step activity (the sends and
// absorptions of a drain) is summarized by one leap event instead of
// being recorded individually — the trade the ring makes anyway by
// evicting old events. Refusing would force the engine to step just to
// fill the ring with events a long run evicts moments later.
func (r *FlightRecorder) AcceptLeap(sim.LeapKind) bool { return true }

// OnLeap implements sim.LeapObserver: one event per leaped window,
// timestamped with the window's last step, its length in Hops.
func (r *FlightRecorder) OnLeap(e *sim.Engine, info sim.LeapInfo) {
	label := labelLeapIdle
	if info.Kind == sim.LeapDrain {
		label = labelLeapDrain
	}
	r.record(Event{T: info.To, Kind: EvLeap, Pkt: -1, Edge: graph.NoEdge,
		Hops: int(info.Steps()), Label: label})
}

// OnFailure implements sim.FailureObserver: it records a failure event
// and auto-dumps the ring to AutoDump on the first failure.
func (r *FlightRecorder) OnFailure(e *sim.Engine, reason string) {
	var t int64
	if e != nil {
		t = e.Now()
	}
	r.RecordFailure(t, reason)
}

// RecordFailure is OnFailure without an engine (harness-level traces).
func (r *FlightRecorder) RecordFailure(t int64, reason string) {
	r.record(Event{T: t, Kind: EvFailure, Pkt: -1, Edge: graph.NoEdge, Label: reason})
	if r.AutoDump != nil && !r.dumped {
		r.dumped = true
		r.DumpErr = r.DumpJSONL(r.AutoDump)
	}
}

// Len returns the number of events currently retained.
func (r *FlightRecorder) Len() int {
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.ring) }

// Total returns the lifetime number of recorded events.
func (r *FlightRecorder) Total() uint64 { return r.total }

// Overwritten returns how many events were evicted by the keep-latest
// ring (Total − Len).
func (r *FlightRecorder) Overwritten() uint64 { return r.total - uint64(r.Len()) }

// Events returns the retained events in chronological order (a copy;
// call off the hot path).
func (r *FlightRecorder) Events() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	start := r.total - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, r.ring[(start+i)%uint64(len(r.ring))])
	}
	return out
}

// EventsInto copies the retained events in chronological order into
// *dst, reusing its backing storage; once *dst has grown to the ring
// capacity it allocates nothing. The server publisher runs this at
// every sample boundary.
func (r *FlightRecorder) EventsInto(dst *[]Event) {
	d := (*dst)[:0]
	if cap(d) < len(r.ring) {
		d = make([]Event, 0, len(r.ring))
	}
	n := uint64(r.Len())
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		d = append(d, r.ring[(start+i)%uint64(len(r.ring))])
	}
	*dst = d
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Pkt   *int64 `json:"pkt,omitempty"`
	Edge  *int64 `json:"edge,omitempty"`
	Hops  *int   `json:"hops,omitempty"`
	Aux   *int   `json:"aux,omitempty"`
	Label string `json:"label,omitempty"`
}

// DumpJSONL writes the retained events as one JSON object per line,
// oldest first. Packet fields are omitted on marker/failure lines, and
// leap lines carry only the window length (hops) and label;
// ValidateJSONL checks the inverse schema.
func (r *FlightRecorder) DumpJSONL(w io.Writer) error {
	return DumpEventsJSONL(w, r.Events())
}

// DumpEventsJSONL writes events in the flight-recorder JSONL wire form
// — the /trace shape, shared by the server (which serves published
// event copies, not the live ring) and DumpJSONL.
func DumpEventsJSONL(w io.Writer, events []Event) error {
	for _, ev := range events {
		je := jsonEvent{T: ev.T, Kind: ev.Kind.String(), Label: ev.Label}
		switch ev.Kind {
		case EvMarker, EvFailure:
		case EvLeap:
			hops := ev.Hops
			je.Hops = &hops
		default:
			pkt, edge, hops, aux := ev.Pkt, int64(ev.Edge), ev.Hops, ev.Aux
			je.Pkt, je.Edge, je.Hops = &pkt, &edge, &hops
			if ev.Kind == EvReroute {
				je.Aux = &aux
			}
		}
		line, err := json.Marshal(je)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
