//go:build !race

package obs_test

// raceEnabled gates allocation assertions: the race detector
// instruments allocations, so AllocsPerRun counts are meaningless
// under -race.
const raceEnabled = false
