// Telemetry server coverage: endpoint contents against a real traced
// engine, published-snapshot isolation (handlers never see live
// observer state), and a live concurrency test — engine stepping and
// publishing while HTTP scrapes hammer every endpoint — that gives the
// race detector something to chew on under `make race`.
package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"aqt/internal/obs"
)

// telemetryFixture builds a traced burst engine wired to a server the
// way the CLIs wire it: sampler OnSample publishes every source.
func telemetryFixture() (*obs.Server, func(steps int64)) {
	e := burstEngine()
	meter := obs.NewMeter(nil)
	e.AddObserver(meter)
	sam := obs.NewSampler(obs.SamplerConfig{Every: 4, MaxSamples: 64, Meter: meter})
	sam.Attach(e)
	sp := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 2, Seed: 5})
	sp.Attach(e)
	fr := obs.NewFlightRecorder(256)
	e.AddEventObserver(fr)
	srv := obs.NewServer()
	sam.OnSample = func() {
		srv.PublishTelemetry(e.Now(), meter.Registry(), sam, sp, fr)
	}
	return srv, func(steps int64) { e.Run(steps) }
}

func get(t *testing.T, ts *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	srv, run := telemetryFixture()
	run(600)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if body, _ := get(t, ts, "/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q, want \"ok\\n\"", body)
	}

	body, ctype := get(t, ts, "/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{"# TYPE aqt_sim_latency histogram", "# TYPE aqt_sim_queue_total histogram"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, ctype = get(t, ts, "/series")
	if !strings.HasPrefix(ctype, "application/jsonl") {
		t.Errorf("/series content type %q", ctype)
	}
	if n, err := obs.ValidateJSONL(strings.NewReader(body)); err != nil || n == 0 {
		t.Errorf("/series invalid: n=%d err=%v", n, err)
	}
	if !strings.Contains(body, `"label":"latency_p99"`) {
		t.Error("/series missing the meter-linked latency_p99 series")
	}

	body, _ = get(t, ts, "/trace")
	if n, err := obs.ValidateJSONL(strings.NewReader(body)); err != nil || n == 0 {
		t.Errorf("/trace invalid: n=%d err=%v", n, err)
	}
	if !strings.Contains(body, `"kind":"span"`) {
		t.Error("/trace carries no span lines")
	}
	if !strings.Contains(body, `"kind":"inject"`) {
		t.Error("/trace carries no flight-recorder lines")
	}

	body, ctype = get(t, ts, "/progress")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/progress content type %q", ctype)
	}
	var prog struct {
		HasProgress bool `json:"has_progress"`
		Done        int  `json:"done"`
		Total       int  `json:"total"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if prog.HasProgress {
		t.Error("/progress claims progress before any OnProgress")
	}
	srv.OnProgress(obs.SweepProgress{Done: 3, Total: 9, InFlight: 2})
	body, _ = get(t, ts, "/progress")
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if !prog.HasProgress || prog.Done != 3 || prog.Total != 9 {
		t.Errorf("/progress = %s, want done 3/9 with has_progress", body)
	}

	if body, _ := get(t, ts, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestServerStart covers the self-listening path the CLIs use.
func TestServerStart(t *testing.T) {
	srv, run := telemetryFixture()
	run(100)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Errorf("healthz over Start = %q", body)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestServerLiveScrapeRace is the goroutine-confinement gate: one
// goroutine steps the engine (publishing at every sample boundary)
// while scrapers hit every endpoint concurrently. Run under -race via
// `make race`, any handler touching live engine state is caught.
func TestServerLiveScrapeRace(t *testing.T) {
	srv, run := telemetryFixture()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			run(50)
			srv.OnProgress(obs.SweepProgress{Done: i, Total: 40})
		}
	}()

	var wg sync.WaitGroup
	paths := []string{"/metrics", "/series", "/trace", "/progress", "/healthz"}
	for _, p := range paths {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + p)
				if err != nil {
					t.Errorf("GET %s: %v", p, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("GET %s: drain: %v", p, err)
				}
				resp.Body.Close()
			}
		}(p)
	}
	wg.Wait()
	<-done

	// The final publish must still be coherent: /series and /trace
	// validate against the schema.
	for _, p := range []string{"/series", "/trace"} {
		body, _ := get(t, ts, p)
		if _, err := obs.ValidateJSONL(strings.NewReader(body)); err != nil {
			t.Errorf("%s after concurrent scraping: %v", p, err)
		}
	}
}
