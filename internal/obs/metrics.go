package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically growing (or at least additive) metric.
// Handles are fetched once from a Registry and bumped on the hot path;
// neither Inc nor Add allocates or synchronizes — a Registry and its
// handles are goroutine-confined, like the engine they instrument.
// Cross-goroutine aggregation goes through Snapshot/Merge.
type Counter struct {
	name string
	n    int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// histBuckets is the number of log2 buckets: bucket b holds values v
// with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b) (bucket 0 holds
// exactly 0). 64-bit values need 65 buckets.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative int64
// observations. Observe is O(1) and allocation-free; the fixed bucket
// array makes histograms mergeable by plain addition.
type Histogram struct {
	name    string
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Observe records v (clamped at 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// ObserveN records v exactly n times in O(1) — the bulk form leap-mode
// observers use to fold a window of identical per-step observations
// into the histogram. n <= 0 records nothing. Equivalent to calling
// Observe(v) n times.
func (h *Histogram) ObserveN(v, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * n
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Snapshot returns the histogram's current state as a value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{Name: h.name, Count: h.count, Sum: h.sum,
		Min: h.min, Max: h.max, Buckets: h.buckets}
}

// Registry is a goroutine-confined set of named counters and
// histograms. Typical use: one Registry per worker/engine, handles
// fetched before the run, Snapshot() after it, snapshots merged across
// workers into one sweep-level summary.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	// ordC/ordH hold the same metrics sorted by name, maintained at
	// registration time so SnapshotInto can render a deterministic
	// snapshot without sorting (and therefore without allocating).
	ordC []*Counter
	ordH []*Histogram
}

// NewRegistry returns an empty registry. The ordered lists start with
// capacity for the usual engine-metric census so steady registration
// costs one allocation per metric (the value itself), keeping macro
// benchmarks' alloc counts where they were before ordering moved to
// registration time.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		ordC:     make([]*Counter, 0, 8),
		ordH:     make([]*Histogram, 0, 8),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Fetch handles outside the hot loop.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	i := sort.Search(len(r.ordC), func(i int) bool { return r.ordC[i].name >= name })
	r.ordC = append(r.ordC, nil)
	copy(r.ordC[i+1:], r.ordC[i:])
	r.ordC[i] = c
	return c
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	i := sort.Search(len(r.ordH), func(i int) bool { return r.ordH[i].name >= name })
	r.ordH = append(r.ordH, nil)
	copy(r.ordH[i+1:], r.ordH[i:])
	r.ordH[i] = h
	return h
}

// Snapshot captures every metric's current value, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.SnapshotInto(&s)
	return s
}

// SnapshotInto captures every metric's current value, sorted by name,
// reusing dst's slices. Once dst has been through one capture (or was
// sized for the registry), subsequent calls are allocation-free — the
// form the live-telemetry publisher uses at every sample boundary.
func (r *Registry) SnapshotInto(dst *Snapshot) {
	if cap(dst.Counters) < len(r.ordC) {
		dst.Counters = make([]CounterSnapshot, 0, len(r.ordC))
	}
	if cap(dst.Histograms) < len(r.ordH) {
		dst.Histograms = make([]HistogramSnapshot, 0, len(r.ordH))
	}
	dst.Counters = dst.Counters[:0]
	dst.Histograms = dst.Histograms[:0]
	for _, c := range r.ordC {
		dst.Counters = append(dst.Counters, CounterSnapshot{Name: c.name, Value: c.n})
	}
	for _, h := range r.ordH {
		dst.Histograms = append(dst.Histograms, h.Snapshot())
	}
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Name    string             `json:"name"`
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Min     int64              `json:"min"`
	Max     int64              `json:"max"`
	Buckets [histBuckets]int64 `json:"-"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) at
// bucket resolution: the top of the log2 bucket containing the rank-q
// observation, clamped to the exact Max. Returns 0 when empty.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.Buckets[b]
		if seen >= rank {
			// Bucket b spans [2^(b-1), 2^b); its inclusive top is 2^b−1.
			if b == 0 {
				return 0
			}
			// For b >= 63 the shift overflows int64 (1<<63 is negative,
			// 1<<64 is zero), which would return a bogus negative bound
			// instead of clamping; the top of those buckets saturates at
			// MaxInt64.
			top := int64(math.MaxInt64)
			if b < 63 {
				top = int64(1)<<uint(b) - 1
			}
			if top > h.Max {
				top = h.Max
			}
			return top
		}
	}
	return h.Max
}

// merge folds o into h (same metric from another worker).
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if h.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return h
	}
	out := h
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for b := range out.Buckets {
		out.Buckets[b] += o.Buckets[b]
	}
	return out
}

// Snapshot is an immutable, mergeable view of a Registry. Merging
// sums counters and folds histograms by name, so per-probe metrics
// from goroutine-confined engines aggregate into one sweep-level
// summary without the probes ever sharing state.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// Counter returns the value of the named counter.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram snapshot.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Merge returns the union of s and o: counters with the same name sum,
// histograms with the same name fold bucket-wise, metrics present on
// only one side carry over. The result is sorted by name, so merging
// is deterministic regardless of worker completion order.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var out Snapshot
	cs := make(map[string]int64, len(s.Counters)+len(o.Counters))
	for _, c := range s.Counters {
		cs[c.Name] += c.Value
	}
	for _, c := range o.Counters {
		cs[c.Name] += c.Value
	}
	for name, v := range cs {
		out.Counters = append(out.Counters, CounterSnapshot{Name: name, Value: v})
	}
	hs := make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms))
	for _, h := range s.Histograms {
		hs[h.Name] = h
	}
	for _, h := range o.Histograms {
		if prev, ok := hs[h.Name]; ok {
			hs[h.Name] = prev.merge(h)
		} else {
			hs[h.Name] = h
		}
	}
	for _, h := range hs {
		out.Histograms = append(out.Histograms, h)
	}
	out.sort()
	return out
}

// MergeSnapshots folds any number of snapshots into one.
func MergeSnapshots(ss ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range ss {
		out = out.Merge(s)
	}
	out.sort()
	return out
}

// WriteText renders the snapshot as a fixed-width text summary:
// counters first, then histograms with count/mean/p50/p99/max.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-28s %12d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%-28s count %-10d mean %-10.1f p50<=%-8d p99<=%-8d max %d\n",
			h.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max); err != nil {
			return err
		}
	}
	return nil
}
