package obs

import (
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/sim"
)

// Meter instruments one engine with the standard simulation metrics:
//
//	sim.queue_total     histogram of total backlog, observed per step
//	sim.queue_max       histogram of the max single-buffer occupancy, per step
//	sim.latency         histogram of end-to-end packet latency, per absorption
//	sim.edge_occupancy  histogram of per-edge queue length at Finish time
//	sim.drop_hops       histogram of remaining hops of dropped packets,
//	                    per drop (bounded-buffer mode; registered on the
//	                    first drop, so unbounded summaries are unchanged)
//	sim.steps/sends/receives/injections/absorbed, sim.heap_skips,
//	sim.heap_compactions — StepStats counters, folded in by Finish,
//	plus sim.drops when any packet was dropped
//
// Register it with sim.Engine.AddObserver (it needs the per-step
// OnStep hook); its handles live in a Registry, so per-engine meters
// from a sweep's worker goroutines merge via Registry.Snapshot() +
// Snapshot.Merge. The per-step and per-event paths are O(1) and
// allocation-free.
type Meter struct {
	reg      *Registry
	qTotal   *Histogram
	qMax     *Histogram
	latency  *Histogram
	occ      *Histogram
	dropHops *Histogram // lazily registered by the first OnDrop
	finished bool
}

// NewMeter returns a Meter recording into reg (nil = a fresh private
// Registry, retrievable via Registry()).
func NewMeter(reg *Registry) *Meter {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Meter{
		reg:     reg,
		qTotal:  reg.Histogram("sim.queue_total"),
		qMax:    reg.Histogram("sim.queue_max"),
		latency: reg.Histogram("sim.latency"),
		occ:     reg.Histogram("sim.edge_occupancy"),
	}
}

// Registry returns the registry the meter records into.
func (m *Meter) Registry() *Registry { return m.reg }

// LatencySnapshot returns the current state of the end-to-end latency
// histogram as a value (stack-allocated; no handle escapes). The
// Sampler derives its latency-quantile series from this.
func (m *Meter) LatencySnapshot() HistogramSnapshot { return m.latency.Snapshot() }

// OnStep implements sim.Observer: both reads are O(1) (the engine
// maintains the max occupancy incrementally).
func (m *Meter) OnStep(e *sim.Engine) {
	m.qTotal.Observe(e.TotalQueued())
	m.qMax.Observe(int64(e.MaxQueued()))
}

// OnAbsorb implements sim.AbsorptionObserver: end-to-end latency is
// absorption time minus injection time.
func (m *Meter) OnAbsorb(t int64, p *packet.Packet) {
	m.latency.Observe(t - p.InjectedAt)
}

// OnDrop implements sim.DropObserver: the remaining-hops distribution
// of the casualties of a bounded buffer — how much delivered work each
// drop cost. The histogram is created on the first drop (one-time
// allocation off the zero-alloc gated path), keeping unbounded-mode
// registries exactly as before bounded buffers existed.
func (m *Meter) OnDrop(t int64, eid graph.EdgeID, p *packet.Packet) {
	if m.dropHops == nil {
		m.dropHops = m.reg.Histogram("sim.drop_hops")
	}
	m.dropHops.Observe(int64(p.RemainingHops()))
}

// AcceptLeap implements sim.LeapObserver: idle windows observe k zeros
// into both queue histograms, which ObserveN reconstructs exactly.
// Drain windows absorb packets whose individual latencies feed
// sim.latency, so the meter refuses them and the engine steps through.
func (m *Meter) AcceptLeap(kind sim.LeapKind) bool { return kind == sim.LeapIdle }

// OnLeap implements sim.LeapObserver for idle windows: every skipped
// step would have observed TotalQueued == 0 and MaxQueued == 0.
func (m *Meter) OnLeap(e *sim.Engine, info sim.LeapInfo) {
	k := info.Steps()
	m.qTotal.ObserveN(0, k)
	m.qMax.ObserveN(0, k)
}

// Finish folds the end-of-run state into the registry: the per-edge
// occupancy distribution (one histogram observation per edge, weighted
// via the engine's O(max occupancy) length histogram) and the
// StepStats counters. Call it once, after the run; repeated calls are
// no-ops so a deferred Finish cannot double-count.
func (m *Meter) Finish(e *sim.Engine) {
	if m.finished {
		return
	}
	m.finished = true
	e.EachQueueLen(func(l, edges int) {
		for i := 0; i < edges; i++ {
			m.occ.Observe(int64(l))
		}
	})
	st := e.Stats()
	m.reg.Counter("sim.steps").Add(st.Steps)
	m.reg.Counter("sim.sends").Add(st.Sends)
	m.reg.Counter("sim.receives").Add(st.Receives)
	m.reg.Counter("sim.injections").Add(st.Injections)
	m.reg.Counter("sim.absorbed").Add(e.Absorbed())
	m.reg.Counter("sim.heap_skips").Add(st.HeapSkips)
	m.reg.Counter("sim.heap_compactions").Add(st.HeapCompactions)
	if st.Drops > 0 {
		m.reg.Counter("sim.drops").Add(st.Drops)
	}
}
