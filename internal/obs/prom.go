// Prometheus text exposition (version 0.0.4) of a Snapshot: counters
// as counter families, log2 histograms as native Prometheus
// histograms with cumulative le bounds at each bucket's inclusive top
// (2^b − 1). Only the stdlib is involved — no client library.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// promName mangles a registry metric name into a Prometheus-legal one:
// every character outside [a-zA-Z0-9_] becomes '_' and the result is
// prefixed with "aqt_" ("sim.queue_total" → "aqt_sim_queue_total").
func promName(name string) string {
	out := make([]byte, 0, len(name)+4)
	out = append(out, "aqt_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// bucketTop returns the inclusive upper bound of log2 bucket b:
// bucket 0 holds exactly 0, bucket b holds [2^(b-1), 2^b). Saturates
// at MaxInt64 where the shift would overflow.
func bucketTop(b int) int64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(b) - 1
}

// WriteProm renders snap in the Prometheus text exposition format,
// metrics sorted by name (a Snapshot is already sorted). Histogram
// buckets are emitted cumulatively up to the last non-empty bucket,
// then +Inf, _sum and _count.
func WriteProm(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, c := range snap.Counters {
		n := promName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, h := range snap.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		last := -1
		for b := 0; b < histBuckets; b++ {
			if h.Buckets[b] != 0 {
				last = b
			}
		}
		var cum int64
		for b := 0; b <= last; b++ {
			cum += h.Buckets[b]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", n, bucketTop(b), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	return bw.Flush()
}
