package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SweepProgress is one progress report from a parallel probe layer
// (stability.SweepGrid, stability.ParallelThresholdSearch,
// expt.RunAll). Emitted on every probe start and finish.
type SweepProgress struct {
	// Done counts finished probes; Total is the number of probes the
	// sweep will run (for a threshold search, an upper estimate that is
	// corrected downwards on early resolution).
	Done, Total int
	// InFlight counts probes currently running.
	InFlight int
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration
	// SlowestProbe is the longest single-probe duration seen so far
	// (the per-probe peak; 0 until a probe finishes).
	SlowestProbe time.Duration
}

// ETA estimates the remaining wall-clock time from the mean pace of
// the finished probes. It returns 0 — "no estimate" — until a probe
// finishes, when the sweep is already complete or over-complete
// (Total <= Done, as after an early-resolved search corrected Total
// downwards), and for degenerate reports (non-positive Done or
// Elapsed), so a malformed report can never yield a negative or
// divide-by-zero ETA.
func (p SweepProgress) ETA() time.Duration {
	if p.Done <= 0 || p.Total <= p.Done || p.Elapsed <= 0 {
		return 0
	}
	per := p.Elapsed / time.Duration(p.Done)
	return per * time.Duration(p.Total-p.Done)
}

// String renders the canonical one-line form.
func (p SweepProgress) String() string {
	s := fmt.Sprintf("probes %d/%d", p.Done, p.Total)
	if p.InFlight > 0 {
		s += fmt.Sprintf(" (%d in flight)", p.InFlight)
	}
	s += fmt.Sprintf(" elapsed %s", p.Elapsed.Round(100*time.Millisecond))
	if eta := p.ETA(); eta > 0 {
		s += fmt.Sprintf(" eta %s", eta.Round(100*time.Millisecond))
	}
	if p.SlowestProbe > 0 {
		s += fmt.Sprintf(" slowest %s", p.SlowestProbe.Round(time.Millisecond))
	}
	return s
}

// ProgressFunc receives progress reports. Implementations must be
// safe for concurrent calls from worker goroutines; the ones the
// sweep layers pass are serialized under the sweep's own mutex, but
// the contract is on the consumer.
type ProgressFunc func(SweepProgress)

// StatusLine renders SweepProgress reports as a live, self-overwriting
// status line (carriage-return style) — the stderr UI behind the
// -progress flags. Updates are throttled to one per interval except
// the final report (Done == Total), which always renders. Call Finish
// to terminate the line with a newline once the sweep returns.
type StatusLine struct {
	mu       sync.Mutex
	w        io.Writer
	interval time.Duration
	last     time.Time
	lastLen  int
	wrote    bool
}

// NewStatusLine returns a status line writing to w, throttled to ~10
// updates per second.
func NewStatusLine(w io.Writer) *StatusLine {
	return &StatusLine{w: w, interval: 100 * time.Millisecond}
}

// SetInterval overrides the update throttle (0 = render every report).
func (s *StatusLine) SetInterval(d time.Duration) { s.interval = d }

// Progress returns the ProgressFunc to hand to a sweep layer.
func (s *StatusLine) Progress() ProgressFunc {
	return func(p SweepProgress) { s.Update(p) }
}

// Update renders one progress report, subject to throttling.
func (s *StatusLine) Update(p SweepProgress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	final := p.Done >= p.Total
	if !final && s.wrote && now.Sub(s.last) < s.interval {
		return
	}
	s.last = now
	line := p.String()
	pad := s.lastLen - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(s.w, "\r%s%*s", line, pad, "")
	s.lastLen = len(line)
	s.wrote = true
}

// Finish ends the status line with a newline (no-op if nothing was
// written).
func (s *StatusLine) Finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wrote {
		fmt.Fprintln(s.w)
		s.wrote = false
		s.lastLen = 0
	}
}
