// Sampler turns the end-state metrics of PR 5 into trajectories: a
// step observer that snapshots engine gauges every Every steps into
// per-metric time series, bounded by the same stride-doubling
// downsampling scheme as sim.Recorder.MaxSamples. The paper's
// stability statements (Theorem 3.17's backlog growth, the Lemma 3.6
// pump phases) are claims about exactly these trajectories.
package obs

import (
	"bufio"
	"fmt"
	"io"

	"aqt/internal/sim"
)

// Point is one sample of a metric time series.
type Point struct {
	T int64 `json:"t"`
	V int64 `json:"v"`
}

// Series is one named metric trajectory. Points are uniformly spaced
// at the sampler's current effective stride.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Core series indices. The latency-quantile series exist only when a
// Meter is linked, and always follow the core block.
const (
	sBacklog = iota // TotalQueued
	sQueueMax
	sAbsorbed
	sDrops
	sHeapSkips
	sHeapComp
	numCoreSeries

	maxSeries = numCoreSeries + 2 // + latency_p50, latency_p99
)

var coreSeriesNames = [numCoreSeries]string{
	"backlog", "queue_max", "absorbed", "drops", "heap_skips", "heap_compactions",
}

// SamplerConfig configures a Sampler.
type SamplerConfig struct {
	// Every is the sampling stride in steps (<= 0 means 1: every step).
	Every int64
	// MaxSamples bounds each retained series; whenever an append would
	// exceed it the effective stride doubles and off-stride points are
	// dropped, exactly like sim.Recorder. <= 0 means 512; clamped to a
	// minimum of 16.
	MaxSamples int
	// Meter, when non-nil, adds latency_p50/latency_p99 series read
	// from the meter's sim.latency histogram at each sample step.
	Meter *Meter
}

// Sampler records per-metric time series from an engine's step hook.
// Off-sample steps cost one modulo; sample steps cost O(series) and
// allocate nothing once the preallocated series are live, so the
// engine hot path stays 0 allocs/op with a Sampler attached.
//
// Like the engine it observes, a Sampler is goroutine-confined; live
// readers go through Server.PublishTelemetry snapshots.
type Sampler struct {
	// OnSample, when non-nil, runs after every appended sample batch —
	// the hook the telemetry Server uses to publish fresh snapshots at
	// sample boundaries without the engine ever sharing live state.
	OnSample func()

	every      int64
	maxSamples int
	meter      *Meter
	eng        *sim.Engine
	series     []Series
	factor     int64 // power-of-two downsampling factor (0 or 1 = none)
}

// NewSampler returns a sampler with the given configuration. Attach it
// to an engine with Attach (not AddObserver directly: the sampler
// latches the engine for its leap-acceptance probe).
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Every < 1 {
		cfg.Every = 1
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 512
	}
	if cfg.MaxSamples < 16 {
		cfg.MaxSamples = 16
	}
	s := &Sampler{every: cfg.Every, maxSamples: cfg.MaxSamples, meter: cfg.Meter}
	n := numCoreSeries
	if s.meter != nil {
		n += 2
	}
	s.series = make([]Series, n)
	for i := 0; i < numCoreSeries; i++ {
		s.series[i].Name = coreSeriesNames[i]
	}
	if s.meter != nil {
		s.series[numCoreSeries].Name = "latency_p50"
		s.series[numCoreSeries+1].Name = "latency_p99"
	}
	for i := range s.series {
		// cap+1 so the append-then-downsample cycle never regrows.
		s.series[i].Points = make([]Point, 0, s.maxSamples+1)
	}
	return s
}

// Attach registers the sampler on e and latches the engine reference
// the drain-acceptance probe needs.
func (s *Sampler) Attach(e *sim.Engine) {
	s.eng = e
	e.AddObserver(s)
}

// Every returns the configured base sampling stride.
func (s *Sampler) Every() int64 { return s.every }

// EffectiveEvery returns the current spacing of retained points: the
// base stride times the power-of-two downsampling factor.
func (s *Sampler) EffectiveEvery() int64 { return s.eff() }

// Series returns the recorded series (shared slices; read-only).
func (s *Sampler) Series() []Series { return s.series }

func (s *Sampler) eff() int64 {
	ev := s.every
	if s.factor > 1 {
		ev *= s.factor
	}
	return ev
}

// OnStep implements sim.Observer: a single modulo off sample steps,
// O(series) reads on them (every engine gauge the sampler reads is
// maintained incrementally).
func (s *Sampler) OnStep(e *sim.Engine) {
	if e.Now()%s.eff() != 0 {
		return
	}
	var vals [maxSeries]int64
	s.gauges(e, &vals)
	vals[sBacklog] = e.TotalQueued()
	vals[sQueueMax] = int64(e.MaxQueued())
	s.push(e.Now(), &vals)
}

// gauges fills the sample-time values of every series that is constant
// through a static leap window: the lifetime counters and — when a
// meter is linked — the latency quantiles.
func (s *Sampler) gauges(e *sim.Engine, vals *[maxSeries]int64) {
	st := e.Stats()
	vals[sAbsorbed] = e.Absorbed()
	vals[sDrops] = st.Drops
	vals[sHeapSkips] = st.HeapSkips
	vals[sHeapComp] = st.HeapCompactions
	if s.meter != nil {
		ls := s.meter.LatencySnapshot()
		vals[numCoreSeries] = ls.Quantile(0.50)
		vals[numCoreSeries+1] = ls.Quantile(0.99)
	}
}

// push appends one aligned point to every series, re-establishes the
// MaxSamples bound and fires the OnSample hook.
func (s *Sampler) push(t int64, vals *[maxSeries]int64) {
	for i := range s.series {
		s.series[i].Points = append(s.series[i].Points, Point{T: t, V: vals[i]})
	}
	for len(s.series[0].Points) > s.maxSamples {
		s.downsample()
	}
	if s.OnSample != nil {
		s.OnSample()
	}
}

// downsample doubles the effective stride and drops off-stride points
// from every series, keeping them aligned with each other.
func (s *Sampler) downsample() {
	if s.factor < 1 {
		s.factor = 1
	}
	s.factor *= 2
	eff := s.every * s.factor
	for i := range s.series {
		kept := s.series[i].Points[:0]
		for _, p := range s.series[i].Points {
			if p.T%eff == 0 {
				kept = append(kept, p)
			}
		}
		s.series[i].Points = kept
	}
}

// AcceptLeap implements sim.LeapObserver. Idle windows are always
// reconstructible (every gauge is constant, backlog and max are zero).
// A drain window keeps the counter series constant only if no keyed
// tombstone exists when it opens — the drain pops through the keyed
// heaps, and a stranded entry would bump HeapSkips (and possibly
// HeapCompactions) mid-window at a step the closed form cannot place.
// Latency quantiles change per absorption, so a meter-linked sampler
// refuses drains outright (as the Meter itself does).
func (s *Sampler) AcceptLeap(kind sim.LeapKind) bool {
	if kind == sim.LeapIdle {
		return true
	}
	return s.meter == nil && s.eng != nil && s.eng.HeapStaleTotal() == 0
}

// OnLeap implements sim.LeapObserver by reconstructing the samples
// OnStep would have appended across the window. Fired before the
// engine mutates, so the occupancy histogram still describes the
// window's start. Idle: every series is constant (backlog and max
// zero). Drain: every nonempty buffer sheds exactly one final-edge
// packet per step, so backlog(dt) = Σ_{l>dt} (l−dt)·edges(l), max(dt)
// = curMax−dt, and — nothing injected or dropped — absorbed(dt) =
// absorbed₀ + backlog₀ − backlog(dt).
func (s *Sampler) OnLeap(e *sim.Engine, info sim.LeapInfo) {
	var vals [maxSeries]int64
	s.gauges(e, &vals)
	type lvl struct{ l, cnt int64 }
	var levels []lvl
	var tot0, curMax int64
	if info.Kind == sim.LeapDrain {
		e.EachQueueLen(func(l, edges int) {
			if l > 0 {
				levels = append(levels, lvl{int64(l), int64(edges)})
			}
		})
		curMax = int64(e.MaxQueued())
		tot0 = e.TotalQueued()
	}
	absorbed0 := e.Absorbed()
	// Sampled steps: every effective-stride multiple in (From, To]. The
	// stride is re-read after each append because appending may trigger
	// downsampling, exactly as the per-step path interleaves them.
	eff := s.eff()
	for t := (info.From/eff + 1) * eff; t <= info.To; {
		if info.Kind == sim.LeapDrain {
			dt := t - info.From
			var tot int64
			for _, lv := range levels {
				if lv.l > dt {
					tot += (lv.l - dt) * lv.cnt
				}
			}
			vals[sBacklog] = tot
			if curMax > dt {
				vals[sQueueMax] = curMax - dt
			} else {
				vals[sQueueMax] = 0
			}
			vals[sAbsorbed] = absorbed0 + tot0 - tot
		}
		s.push(t, &vals)
		eff = s.eff()
		t = (t/eff + 1) * eff
	}
}

// DumpJSONL writes every retained point as one schema-validated JSONL
// line per point: {"t":..,"kind":"sample","label":"<series>","v":..},
// series by series in registration order, time-ordered within each.
func (s *Sampler) DumpJSONL(w io.Writer) error {
	return WriteSeriesJSONL(w, s.series)
}

// WriteSeriesJSONL writes series as schema-validated "sample" JSONL
// lines — the /series wire form, shared by the server and the -trace
// dumps.
func WriteSeriesJSONL(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	for i := range series {
		for _, p := range series[i].Points {
			if _, err := fmt.Fprintf(bw, `{"t":%d,"kind":"sample","label":%q,"v":%d}`+"\n",
				p.T, series[i].Name, p.V); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SeriesInto copies the sampler's series into *dst, reusing its
// backing storage; after the first call (which sizes every Points
// buffer for the MaxSamples bound) it allocates nothing. The server
// publisher runs this at every sample boundary.
func (s *Sampler) SeriesInto(dst *[]Series) {
	d := *dst
	if cap(d) < len(s.series) {
		d = make([]Series, len(s.series))
	}
	d = d[:len(s.series)]
	for i := range s.series {
		d[i].Name = s.series[i].Name
		if cap(d[i].Points) < s.maxSamples+1 {
			d[i].Points = make([]Point, 0, s.maxSamples+1)
		}
		d[i].Points = append(d[i].Points[:0], s.series[i].Points...)
	}
	*dst = d
}

// SeriesState is one series' serializable state.
type SeriesState struct {
	Name   string  `json:"name"`
	Points []Point `json:"points,omitempty"`
}

// SamplerState is the serializable dynamic state of a Sampler:
// configuration, downsampling factor and the retained series.
// Restoring it onto a same-shaped fresh sampler reproduces the
// uninterrupted series, including future stride-doubling points.
type SamplerState struct {
	Every      int64         `json:"every"`
	MaxSamples int           `json:"max_samples"`
	Factor     int64         `json:"factor,omitempty"`
	Series     []SeriesState `json:"series"`
}

// CheckpointState extracts the sampler's state (points are copied).
func (s *Sampler) CheckpointState() SamplerState {
	st := SamplerState{Every: s.every, MaxSamples: s.maxSamples, Factor: s.factor}
	for i := range s.series {
		st.Series = append(st.Series, SeriesState{
			Name:   s.series[i].Name,
			Points: append([]Point(nil), s.series[i].Points...),
		})
	}
	return st
}

// maxSamplerBound caps a restored MaxSamples (hostile input: the
// preallocation is MaxSamples+1 points per series).
const maxSamplerBound = 1 << 20

// RestoreState overwrites the sampler with a previously extracted
// state. The state's series set must exactly match the sampler's
// configuration — in particular, latency series must be present iff a
// meter is linked. Malformed state is rejected with an error, never a
// panic: it is reachable from fuzzed checkpoint documents.
func (s *Sampler) RestoreState(st SamplerState) error {
	if st.Every < 1 {
		return fmt.Errorf("sampler state: every %d < 1", st.Every)
	}
	if st.MaxSamples < 16 || st.MaxSamples > maxSamplerBound {
		return fmt.Errorf("sampler state: max_samples %d outside [16,%d]", st.MaxSamples, maxSamplerBound)
	}
	if st.Factor < 0 {
		return fmt.Errorf("sampler state: negative factor %d", st.Factor)
	}
	if len(st.Series) != len(s.series) {
		return fmt.Errorf("sampler state: %d series, sampler configured with %d", len(st.Series), len(s.series))
	}
	for i := range st.Series {
		if st.Series[i].Name != s.series[i].Name {
			return fmt.Errorf("sampler state: series[%d] is %q, sampler configured with %q",
				i, st.Series[i].Name, s.series[i].Name)
		}
		if len(st.Series[i].Points) > st.MaxSamples {
			return fmt.Errorf("sampler state: series %q retains %d points, max %d",
				st.Series[i].Name, len(st.Series[i].Points), st.MaxSamples)
		}
		if len(st.Series[i].Points) != len(st.Series[0].Points) {
			return fmt.Errorf("sampler state: series %q has %d points, %q has %d (series must stay aligned)",
				st.Series[i].Name, len(st.Series[i].Points), st.Series[0].Name, len(st.Series[0].Points))
		}
		for j, p := range st.Series[i].Points {
			if j > 0 && p.T <= st.Series[i].Points[j-1].T {
				return fmt.Errorf("sampler state: series %q point %d time %d not increasing", st.Series[i].Name, j, p.T)
			}
			if p.T != st.Series[0].Points[j].T {
				return fmt.Errorf("sampler state: series %q point %d at t=%d, %q at t=%d (series must stay aligned)",
					st.Series[i].Name, j, p.T, st.Series[0].Name, st.Series[0].Points[j].T)
			}
		}
	}
	s.every = st.Every
	s.maxSamples = st.MaxSamples
	s.factor = st.Factor
	for i := range s.series {
		if cap(s.series[i].Points) < s.maxSamples+1 {
			s.series[i].Points = make([]Point, 0, s.maxSamples+1)
		}
		s.series[i].Points = append(s.series[i].Points[:0], st.Series[i].Points...)
	}
	return nil
}
