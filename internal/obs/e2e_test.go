package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// TestInvariantViolationAutoDumpsTrace is the end-to-end acceptance
// check for the flight recorder: run the Lemma 3.6 pump at r = 7/10
// against a rate validator deliberately mis-rated at 1/2 — the pump's
// injections then violate the declared leaky-bucket constraint — and
// require that CheckAndNotify auto-dumps a JSONL trace whose tail
// carries the pump's phase marker and the failure event.
func TestInvariantViolationAutoDumpsTrace(t *testing.T) {
	r := rational.New(7, 10)
	n := 3
	p := core.ParamsFor(r, n)
	s := 4 * p.S0
	if s > 64 {
		s = 64
	}
	if min := int64(4 * n); s < min {
		s = min
	}
	c := gadget.NewChain(n, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, int(s))

	var dump bytes.Buffer
	fr := obs.NewFlightRecorder(1 << 14)
	fr.AutoDump = &dump
	e.AddEventObserver(fr)
	// The mis-rated validator: the adversary really injects at 7/10.
	rv := adversary.NewRateValidator(rational.New(1, 2))
	e.AddObserver(rv)

	var rep core.PumpReport
	seq := adversary.NewSequence(core.PumpPhase(p, c, 1, nil, &rep))
	e.SetAdversary(seq)
	e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s+int64(8*n))

	err := rv.CheckAndNotify(e)
	if err == nil {
		t.Fatal("mis-rated validator found no violation — the scenario is broken")
	}
	if dump.Len() == 0 {
		t.Fatal("violation did not auto-dump a trace")
	}
	if fr.DumpErr != nil {
		t.Fatalf("auto-dump error: %v", fr.DumpErr)
	}
	if _, verr := obs.ValidateJSONL(bytes.NewReader(dump.Bytes())); verr != nil {
		t.Fatalf("auto-dumped trace fails the schema: %v", verr)
	}

	out := dump.String()
	if !strings.Contains(out, `"kind":"marker"`) || !strings.Contains(out, "lemma3.6 pump") {
		t.Errorf("trace is missing the pump phase marker")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"kind":"failure"`) || !strings.Contains(last, "rate validator") {
		t.Errorf("trace tail is not the failure event: %s", last)
	}
}
