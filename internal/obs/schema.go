package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateJSONL checks that r is a well-formed telemetry dump: every
// non-empty line is a JSON object with an integer "t" >= 0 and a known
// "kind"; packet kinds (inject/send/absorb/reroute/drop) must carry
// "pkt", "edge" and "hops", marker/failure lines must carry a
// non-empty "label", and leap lines must carry a positive "hops"
// (window length) plus a label. Two telemetry kinds extend the flight
// schema: "sample" lines (Sampler time series) need a series name in
// "label" and a value in "v"; "span" lines (SpanTracer) need
// pkt/edge/hops, a non-negative end-to-end latency in "aux", an
// outcome label (absorb|drop), and — when present — a "path" of at
// most min(hops, SpanMaxHops) [edge,t,wait] triples. It returns the
// number of validated events. The `make trace-smoke` and
// `make telemetry-smoke` targets run the cmd dumps through this.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev struct {
			T     *int64    `json:"t"`
			Kind  *string   `json:"kind"`
			Pkt   *int64    `json:"pkt"`
			Edge  *int64    `json:"edge"`
			Hops  *int      `json:"hops"`
			Aux   *int64    `json:"aux"`
			V     *int64    `json:"v"`
			Label string    `json:"label"`
			Path  [][]int64 `json:"path"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return n, fmt.Errorf("line %d: %v", line, err)
		}
		if ev.T == nil || *ev.T < 0 {
			return n, fmt.Errorf("line %d: missing or negative \"t\"", line)
		}
		if ev.Kind == nil {
			return n, fmt.Errorf("line %d: missing \"kind\"", line)
		}
		switch *ev.Kind {
		case "inject", "send", "absorb", "reroute", "drop":
			if ev.Pkt == nil || ev.Edge == nil || ev.Hops == nil {
				return n, fmt.Errorf("line %d: %s event needs pkt/edge/hops", line, *ev.Kind)
			}
		case "marker", "failure":
			if ev.Label == "" {
				return n, fmt.Errorf("line %d: %s event needs a label", line, *ev.Kind)
			}
		case "leap":
			if ev.Hops == nil || *ev.Hops < 1 {
				return n, fmt.Errorf("line %d: leap event needs a positive hops window", line)
			}
			if ev.Label == "" {
				return n, fmt.Errorf("line %d: leap event needs a label", line)
			}
		case "sample":
			if ev.Label == "" {
				return n, fmt.Errorf("line %d: sample event needs a series name label", line)
			}
			if ev.V == nil {
				return n, fmt.Errorf("line %d: sample event needs a value \"v\"", line)
			}
		case "span":
			if ev.Pkt == nil || ev.Edge == nil || ev.Hops == nil || *ev.Hops < 0 {
				return n, fmt.Errorf("line %d: span event needs pkt/edge and non-negative hops", line)
			}
			if ev.Aux == nil || *ev.Aux < 0 {
				return n, fmt.Errorf("line %d: span event needs a non-negative latency \"aux\"", line)
			}
			if ev.Label != "absorb" && ev.Label != "drop" {
				return n, fmt.Errorf("line %d: span event label %q, want absorb|drop", line, ev.Label)
			}
			maxPath := *ev.Hops
			if maxPath > SpanMaxHops {
				maxPath = SpanMaxHops
			}
			if len(ev.Path) > maxPath {
				return n, fmt.Errorf("line %d: span path of %d hops, max min(hops=%d, %d)",
					line, len(ev.Path), *ev.Hops, SpanMaxHops)
			}
			for i, h := range ev.Path {
				if len(h) != 3 {
					return n, fmt.Errorf("line %d: span path[%d] has %d fields, want [edge,t,wait]", line, i, len(h))
				}
			}
		default:
			return n, fmt.Errorf("line %d: unknown kind %q", line, *ev.Kind)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
