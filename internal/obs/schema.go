package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateJSONL checks that r is a well-formed flight-recorder dump:
// every non-empty line is a JSON object with an integer "t" >= 0 and a
// known "kind"; packet kinds (inject/send/absorb/reroute/drop) must
// carry "pkt", "edge" and "hops", marker/failure lines must carry a
// non-empty "label", and leap lines must carry a positive "hops"
// (window length) plus a label. It returns the number of validated
// events. The `make trace-smoke` target runs cmd/aqtsim -trace through
// this.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev struct {
			T     *int64  `json:"t"`
			Kind  *string `json:"kind"`
			Pkt   *int64  `json:"pkt"`
			Edge  *int64  `json:"edge"`
			Hops  *int    `json:"hops"`
			Label string  `json:"label"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return n, fmt.Errorf("line %d: %v", line, err)
		}
		if ev.T == nil || *ev.T < 0 {
			return n, fmt.Errorf("line %d: missing or negative \"t\"", line)
		}
		if ev.Kind == nil {
			return n, fmt.Errorf("line %d: missing \"kind\"", line)
		}
		switch *ev.Kind {
		case "inject", "send", "absorb", "reroute", "drop":
			if ev.Pkt == nil || ev.Edge == nil || ev.Hops == nil {
				return n, fmt.Errorf("line %d: %s event needs pkt/edge/hops", line, *ev.Kind)
			}
		case "marker", "failure":
			if ev.Label == "" {
				return n, fmt.Errorf("line %d: %s event needs a label", line, *ev.Kind)
			}
		case "leap":
			if ev.Hops == nil || *ev.Hops < 1 {
				return n, fmt.Errorf("line %d: leap event needs a positive hops window", line)
			}
			if ev.Label == "" {
				return n, fmt.Errorf("line %d: leap event needs a label", line)
			}
		default:
			return n, fmt.Errorf("line %d: unknown kind %q", line, *ev.Kind)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
