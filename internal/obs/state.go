// Serializable dynamic state for the observability layer: registry
// contents (with explicit histogram buckets — HistogramSnapshot's
// bucket array is deliberately excluded from its JSON form, so
// checkpoints carry a dedicated shape), meter progress and the flight
// recorder ring. Restore methods validate hostile payloads with
// errors, never panics: they are reachable from fuzzed checkpoint
// documents.
package obs

import (
	"fmt"
	"sort"
)

// HistogramState is one histogram's complete serializable state.
// Buckets are the log2 buckets with trailing zeros trimmed (restore
// pads back to the fixed array).
type HistogramState struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min,omitempty"`
	Max     int64   `json:"max,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// RegistryState is the complete serializable contents of a Registry,
// sorted by name. Zero-valued metrics are carried too: registration
// itself is state (Snapshot lists every registered metric).
type RegistryState struct {
	Counters   []CounterSnapshot `json:"counters,omitempty"`
	Histograms []HistogramState  `json:"histograms,omitempty"`
}

// State extracts the registry's contents for checkpointing.
func (r *Registry) State() RegistryState {
	var st RegistryState
	for name, c := range r.counters {
		st.Counters = append(st.Counters, CounterSnapshot{Name: name, Value: c.n})
	}
	sort.Slice(st.Counters, func(i, j int) bool { return st.Counters[i].Name < st.Counters[j].Name })
	for name, h := range r.hists {
		hs := HistogramState{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		last := -1
		for b, v := range h.buckets {
			if v != 0 {
				last = b
			}
		}
		if last >= 0 {
			hs.Buckets = append([]int64(nil), h.buckets[:last+1]...)
		}
		st.Histograms = append(st.Histograms, hs)
	}
	sort.Slice(st.Histograms, func(i, j int) bool { return st.Histograms[i].Name < st.Histograms[j].Name })
	return st
}

// RestoreState writes a previously extracted state back through the
// registry's create-on-first-use handles, so any handle already
// fetched from this registry (e.g. by a Meter) observes the restored
// values. Metrics already registered but absent from the state are
// left untouched.
func (r *Registry) RestoreState(st RegistryState) error {
	prev := ""
	for i, cs := range st.Counters {
		if cs.Name == "" || (i > 0 && cs.Name <= prev) {
			return fmt.Errorf("registry state: counters[%d] name %q not strictly increasing", i, cs.Name)
		}
		prev = cs.Name
	}
	prev = ""
	for i := range st.Histograms {
		hs := &st.Histograms[i]
		if hs.Name == "" || (i > 0 && hs.Name <= prev) {
			return fmt.Errorf("registry state: histograms[%d] name %q not strictly increasing", i, hs.Name)
		}
		prev = hs.Name
		if len(hs.Buckets) > histBuckets {
			return fmt.Errorf("registry state: histograms[%d] has %d buckets, max %d", i, len(hs.Buckets), histBuckets)
		}
		var sum int64
		for b, v := range hs.Buckets {
			if v < 0 {
				return fmt.Errorf("registry state: histograms[%d] bucket %d negative", i, b)
			}
			sum += v
		}
		if len(hs.Buckets) > 0 && hs.Buckets[len(hs.Buckets)-1] == 0 {
			return fmt.Errorf("registry state: histograms[%d] has trailing zero buckets", i)
		}
		if sum != hs.Count {
			return fmt.Errorf("registry state: histograms[%d] buckets sum %d != count %d", i, sum, hs.Count)
		}
	}
	for _, cs := range st.Counters {
		r.Counter(cs.Name).n = cs.Value
	}
	for i := range st.Histograms {
		hs := &st.Histograms[i]
		h := r.Histogram(hs.Name)
		h.count, h.sum, h.min, h.max = hs.Count, hs.Sum, hs.Min, hs.Max
		h.buckets = [histBuckets]int64{}
		copy(h.buckets[:], hs.Buckets)
	}
	return nil
}

// MeterState is the serializable state of a Meter: its registry
// contents plus the Finish latch.
type MeterState struct {
	Registry RegistryState `json:"registry"`
	Finished bool          `json:"finished,omitempty"`
}

// CheckpointState extracts the meter's state. Note it captures the
// whole backing registry; meters sharing a registry with other writers
// should be checkpointed at the registry level instead.
func (m *Meter) CheckpointState() MeterState {
	return MeterState{Registry: m.reg.State(), Finished: m.finished}
}

// RestoreState applies a previously extracted state onto a fresh
// Meter. Handles the meter pre-fetched at construction alias the same
// registry entries, so they observe the restored values; the lazily
// registered drop histogram is re-latched when present in the state.
func (m *Meter) RestoreState(st MeterState) error {
	if err := m.reg.RestoreState(st.Registry); err != nil {
		return err
	}
	m.finished = st.Finished
	if m.dropHops == nil {
		if _, ok := m.reg.hists["sim.drop_hops"]; ok {
			m.dropHops = m.reg.Histogram("sim.drop_hops")
		}
	}
	return nil
}

// FlightState is the serializable state of a FlightRecorder: the ring
// capacity, the total ever recorded, the retained events in
// chronological order, and the auto-dump latch. The AutoDump writer
// itself is runtime wiring, not state.
type FlightState struct {
	Cap    int     `json:"cap"`
	Total  uint64  `json:"total"`
	Dumped bool    `json:"dumped,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// CheckpointState extracts the recorder's state.
func (r *FlightRecorder) CheckpointState() FlightState {
	return FlightState{
		Cap:    len(r.ring),
		Total:  r.total,
		Dumped: r.dumped,
		Events: r.Events(),
	}
}

// maxFlightCap bounds a restored ring allocation (hostile input).
const maxFlightCap = 1 << 24

// RestoreState overwrites the recorder with a previously extracted
// state, rebuilding the ring at the same indices (events re-recorded
// from Total-len(Events) onward), so subsequent overwrites land
// exactly where they would have in the uninterrupted run.
func (r *FlightRecorder) RestoreState(st FlightState) error {
	if st.Cap < 16 || st.Cap > maxFlightCap {
		return fmt.Errorf("flight state: cap %d outside [16,%d]", st.Cap, maxFlightCap)
	}
	want := st.Total
	if want > uint64(st.Cap) {
		want = uint64(st.Cap)
	}
	if uint64(len(st.Events)) != want {
		return fmt.Errorf("flight state: %d events retained, want min(total=%d, cap=%d) = %d",
			len(st.Events), st.Total, st.Cap, want)
	}
	r.ring = make([]Event, st.Cap)
	r.total = st.Total - uint64(len(st.Events))
	for _, ev := range st.Events {
		r.record(ev)
	}
	r.dumped = st.Dumped
	r.DumpErr = nil
	return nil
}
