// Allocation gates for the observability layer: a flight recorder on
// the event hooks and a Meter on the per-step dispatch path must both
// leave the engine at 0 allocs per Step — instrumentation does not get
// to give back what PR 2 won.
package obs_test

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func tracedEngine(ob func(e *sim.Engine)) *sim.Engine {
	g := graph.Line(32)
	adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
	e := sim.New(g, policy.FIFO{}, adv)
	ob(e)
	e.Run(512) // steady state: arenas, rings and active set warmed
	return e
}

func TestStepAllocsTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		e.AddEventObserver(obs.NewFlightRecorder(4096))
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("flight-recorded Step: %v allocs/op, want 0", avg)
	}
}

func TestStepAllocsMetered(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		e.AddObserver(obs.NewMeter(nil))
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("metered Step: %v allocs/op, want 0", avg)
	}
}

func TestStepAllocsTracedAndMetered(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		e.AddEventObserver(obs.NewFlightRecorder(4096))
		e.AddObserver(obs.NewMeter(nil))
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("traced+metered Step: %v allocs/op, want 0", avg)
	}
}
