// Allocation gates for the observability layer: a flight recorder on
// the event hooks and a Meter on the per-step dispatch path must both
// leave the engine at 0 allocs per Step — instrumentation does not get
// to give back what PR 2 won.
package obs_test

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func tracedEngine(ob func(e *sim.Engine)) *sim.Engine {
	g := graph.Line(32)
	adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
	e := sim.New(g, policy.FIFO{}, adv)
	ob(e)
	e.Run(512) // steady state: arenas, rings and active set warmed
	return e
}

func TestStepAllocsTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		e.AddEventObserver(obs.NewFlightRecorder(4096))
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("flight-recorded Step: %v allocs/op, want 0", avg)
	}
}

func TestStepAllocsMetered(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		e.AddObserver(obs.NewMeter(nil))
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("metered Step: %v allocs/op, want 0", avg)
	}
}

func TestStepAllocsTracedAndMetered(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		e.AddEventObserver(obs.NewFlightRecorder(4096))
		e.AddObserver(obs.NewMeter(nil))
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("traced+metered Step: %v allocs/op, want 0", avg)
	}
}

func TestStepAllocsSampled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		s := obs.NewSampler(obs.SamplerConfig{Every: 4, MaxSamples: 64})
		s.Attach(e)
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("sampled Step: %v allocs/op, want 0", avg)
	}
}

func TestStepAllocsSpanTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	e := tracedEngine(func(e *sim.Engine) {
		st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 2, Seed: 9})
		st.Attach(e)
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("span-traced Step: %v allocs/op, want 0", avg)
	}
}

// TestStepAllocsFullTelemetry is the PR's acceptance gate: sampler,
// span tracer, flight recorder, meter AND a publishing server wired
// through OnSample — the full live-telemetry stack — must leave Step
// at 0 allocs/op once the publish buffers reach steady state.
func TestStepAllocsFullTelemetry(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	srv := obs.NewServer()
	e := tracedEngine(func(e *sim.Engine) {
		meter := obs.NewMeter(nil)
		e.AddObserver(meter)
		sam := obs.NewSampler(obs.SamplerConfig{Every: 4, MaxSamples: 64, Meter: meter})
		sam.Attach(e)
		sp := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 2, Seed: 9})
		sp.Attach(e)
		fr := obs.NewFlightRecorder(4096)
		e.AddEventObserver(fr)
		sam.OnSample = func() {
			srv.PublishTelemetry(e.Now(), meter.Registry(), sam, sp, fr)
		}
	})
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("full-telemetry Step: %v allocs/op, want 0", avg)
	}
}
