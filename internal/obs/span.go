// SpanTracer builds per-packet causal spans — inject, every per-edge
// hop with its queueing wait, absorb or drop — for a seeded sample of
// packet IDs, from the same event hooks the flight recorder uses. A
// span is the per-packet latency *breakdown by edge* that no
// aggregate histogram gives: where exactly a Theorem 3.17 packet
// spent its residence. Hop waits additionally feed per-edge residence
// histograms, so the sampled population is summarizable without
// reading individual spans.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/sim"
)

// SpanMaxHops bounds the per-hop detail retained in one span. Spans of
// longer routes keep the first SpanMaxHops hops plus the exact total
// hop count — fixed-size spans are what keeps recording alloc-free.
const SpanMaxHops = 32

// SpanHop is one recorded hop: the packet crossed Edge during the send
// substep of step T after waiting Wait steps in its buffer.
type SpanHop struct {
	Edge graph.EdgeID
	T    int64
	Wait int64
}

// Span is one packet's completed trajectory. The value is fixed-size
// (recording never allocates); Hops is the true hop count, which can
// exceed NPath when a route was longer than SpanMaxHops.
//
// Its JSON form is exactly the schema-validated "span" JSONL line:
//
//	{"t":<end>,"kind":"span","pkt":..,"edge":<last edge>,"hops":..,
//	 "aux":<end-start latency>,"label":"absorb"|"drop",
//	 "path":[[edge,t,wait],...]}
//
// An in-flight span (End < Start, no outcome yet — these appear only
// inside checkpoint state, never in trace dumps) marshals with label
// "live", t at the injection step and aux 0.
type Span struct {
	Pkt   int64
	Start int64 // injection step
	End   int64 // absorption or drop step
	Drop  bool  // outcome: false = absorbed
	Edge  graph.EdgeID
	Hops  int
	NPath int
	Path  [SpanMaxHops]SpanHop
}

// MarshalJSON renders the span as its JSONL line (see the type doc).
func (s Span) MarshalJSON() ([]byte, error) {
	t, aux := s.End, s.End-s.Start
	if s.End < s.Start { // in-flight: anchored at injection, no latency yet
		t, aux = s.Start, 0
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"t":%d,"kind":"span","pkt":%d,"edge":%d,"hops":%d,"aux":%d,"label":%q,"path":[`,
		t, s.Pkt, int64(s.Edge), s.Hops, aux, s.outcome())
	for i := 0; i < s.NPath; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		h := &s.Path[i]
		fmt.Fprintf(&b, "[%d,%d,%d]", int64(h.Edge), h.T, h.Wait)
	}
	b.WriteString("]}")
	return b.Bytes(), nil
}

func (s Span) outcome() string {
	if s.End < s.Start {
		return "live"
	}
	if s.Drop {
		return "drop"
	}
	return "absorb"
}

// UnmarshalJSON parses and validates the JSONL line form. Errors, not
// panics: span payloads are reachable from fuzzed checkpoint
// documents.
func (s *Span) UnmarshalJSON(data []byte) error {
	var w struct {
		T     int64     `json:"t"`
		Kind  string    `json:"kind"`
		Pkt   int64     `json:"pkt"`
		Edge  int64     `json:"edge"`
		Hops  int       `json:"hops"`
		Aux   int64     `json:"aux"`
		Label string    `json:"label"`
		Path  [][]int64 `json:"path"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Kind != "span" {
		return fmt.Errorf("span: kind %q, want \"span\"", w.Kind)
	}
	if w.Hops < 0 || w.Aux < 0 {
		return fmt.Errorf("span: negative hops (%d) or latency (%d)", w.Hops, w.Aux)
	}
	if len(w.Path) > SpanMaxHops || len(w.Path) > w.Hops {
		return fmt.Errorf("span: path of %d hops, max min(hops=%d, %d)", len(w.Path), w.Hops, SpanMaxHops)
	}
	switch w.Label {
	case "absorb", "drop":
		*s = Span{Pkt: w.Pkt, Start: w.T - w.Aux, End: w.T, Drop: w.Label == "drop",
			Edge: graph.EdgeID(w.Edge), Hops: w.Hops, NPath: len(w.Path)}
	case "live":
		if w.Aux != 0 {
			return fmt.Errorf("span: live span with latency %d", w.Aux)
		}
		*s = Span{Pkt: w.Pkt, Start: w.T, End: -1,
			Edge: graph.EdgeID(w.Edge), Hops: w.Hops, NPath: len(w.Path)}
	default:
		return fmt.Errorf("span: label %q, want absorb|drop|live", w.Label)
	}
	for i, h := range w.Path {
		if len(h) != 3 {
			return fmt.Errorf("span: path[%d] has %d fields, want [edge,t,wait]", i, len(h))
		}
		s.Path[i] = SpanHop{Edge: graph.EdgeID(h[0]), T: h[1], Wait: h[2]}
	}
	return nil
}

// SpanConfig configures a SpanTracer.
type SpanConfig struct {
	// SampleEvery picks roughly one of every SampleEvery packet IDs via
	// a seeded hash (<= 1 means every packet). Sampling by ID, not by
	// time, keeps a packet's whole span together.
	SampleEvery int64
	// Seed varies which IDs the hash picks.
	Seed uint64
	// MaxLive bounds concurrently tracked in-flight spans (<= 0 means
	// 64). A sampled injection arriving at a full table is counted in
	// Missed and not tracked.
	MaxLive int
	// MaxDone bounds the keep-latest ring of completed spans (<= 0
	// means 256, min 16).
	MaxDone int
}

// SpanTracer records Spans for a sampled subset of packets. Register
// it with sim.Engine.AddEventObserver via Attach — it implements only
// event interfaces, so the engine's observerless step fast path stays
// intact, and recording is allocation-free (fixed-size span slots,
// preallocated tables). Hop waits feed per-edge residence histograms
// in a private registry (names "span.edge_wait.<edge>").
type SpanTracer struct {
	cfg       SpanConfig
	eng       *sim.Engine
	live      []Span
	done      []Span // keep-latest ring, FlightRecorder-style
	doneTotal uint64
	missed    uint64
	reg       *Registry
	edgeHists []*Histogram
}

// NewSpanTracer returns a tracer with the given configuration. Attach
// it to an engine with Attach.
func NewSpanTracer(cfg SpanConfig) *SpanTracer {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 64
	}
	if cfg.MaxDone <= 0 {
		cfg.MaxDone = 256
	}
	if cfg.MaxDone < 16 {
		cfg.MaxDone = 16
	}
	return &SpanTracer{
		cfg:  cfg,
		live: make([]Span, 0, cfg.MaxLive),
		done: make([]Span, cfg.MaxDone),
		reg:  NewRegistry(),
	}
}

// Attach registers the tracer on e (event interfaces only) and
// prefetches one residence-histogram handle per edge so the event
// path never touches the registry map.
func (st *SpanTracer) Attach(e *sim.Engine) {
	st.eng = e
	g := e.Graph()
	st.edgeHists = make([]*Histogram, g.NumEdges())
	for eid := 0; eid < g.NumEdges(); eid++ {
		st.edgeHists[eid] = st.reg.Histogram("span.edge_wait." + g.EdgeName(graph.EdgeID(eid)))
	}
	e.AddEventObserver(st)
}

// Registry returns the per-edge residence-histogram registry.
func (st *SpanTracer) Registry() *Registry { return st.reg }

// Missed returns how many sampled injections were not tracked because
// the live table was full.
func (st *SpanTracer) Missed() uint64 { return st.missed }

// Live returns the number of currently tracked in-flight spans.
func (st *SpanTracer) Live() int { return len(st.live) }

// DoneTotal returns the lifetime number of completed spans.
func (st *SpanTracer) DoneTotal() uint64 { return st.doneTotal }

// tracked reports whether packet id is in the sampled population: a
// splitmix64-style finalizer over (id, seed), so the choice is
// deterministic, seed-varied and uniform across ID space.
func (st *SpanTracer) tracked(id packet.ID) bool {
	if st.cfg.SampleEvery <= 1 {
		return true
	}
	x := uint64(id) + st.cfg.Seed*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x%uint64(st.cfg.SampleEvery) == 0
}

// find returns the live slot index of pkt, or -1. Linear scan over at
// most MaxLive fixed-size slots — the table is small by construction.
func (st *SpanTracer) find(pkt int64) int {
	for i := range st.live {
		if st.live[i].Pkt == pkt {
			return i
		}
	}
	return -1
}

// OnInject implements sim.InjectionObserver: opens a span for sampled
// packets.
func (st *SpanTracer) OnInject(t int64, p *packet.Packet) {
	if !st.tracked(p.ID) {
		return
	}
	if len(st.live) == cap(st.live) {
		st.missed++
		return
	}
	st.live = append(st.live, Span{Pkt: int64(p.ID), Start: t, End: -1, Edge: graph.NoEdge})
}

// OnSend implements sim.SendObserver: records the hop and its queueing
// wait, and feeds the edge's residence histogram.
func (st *SpanTracer) OnSend(t int64, eid graph.EdgeID, p *packet.Packet) {
	if !st.tracked(p.ID) {
		return
	}
	i := st.find(int64(p.ID))
	if i < 0 {
		return
	}
	wait := t - p.ArrivedAt
	sp := &st.live[i]
	if sp.NPath < SpanMaxHops {
		sp.Path[sp.NPath] = SpanHop{Edge: eid, T: t, Wait: wait}
		sp.NPath++
	}
	sp.Hops++
	if int(eid) < len(st.edgeHists) {
		st.edgeHists[eid].Observe(wait)
	}
}

// OnAbsorb implements sim.AbsorptionObserver: closes the span with the
// absorb outcome.
func (st *SpanTracer) OnAbsorb(t int64, p *packet.Packet) {
	if !st.tracked(p.ID) {
		return
	}
	st.complete(int64(p.ID), t, p.Route[len(p.Route)-1], false)
}

// OnDrop implements sim.DropObserver: closes the span with the drop
// outcome at the buffer that discarded the packet.
func (st *SpanTracer) OnDrop(t int64, eid graph.EdgeID, p *packet.Packet) {
	if !st.tracked(p.ID) {
		return
	}
	st.complete(int64(p.ID), t, eid, true)
}

// complete moves live span pkt (if tracked) into the done ring.
func (st *SpanTracer) complete(pkt, t int64, eid graph.EdgeID, drop bool) {
	i := st.find(pkt)
	if i < 0 {
		return
	}
	sp := &st.live[i]
	sp.End, sp.Edge, sp.Drop = t, eid, drop
	st.done[st.doneTotal%uint64(len(st.done))] = *sp
	st.doneTotal++
	last := len(st.live) - 1
	st.live[i] = st.live[last]
	st.live = st.live[:last]
}

// AcceptLeap implements sim.LeapObserver. Idle windows carry no packet
// events, so nothing can be missed. A drain window absorbs packets at
// engine-chosen steps the tracer cannot attribute to individual spans,
// so it vetoes drains while any tracked span is in flight — and only
// then: with an empty live table every draining packet is untracked,
// and neither spans nor residence histograms lose an observation.
func (st *SpanTracer) AcceptLeap(kind sim.LeapKind) bool {
	return kind == sim.LeapIdle || len(st.live) == 0
}

// OnLeap implements sim.LeapObserver: accepted windows need no
// reconstruction (no tracked packet was involved).
func (st *SpanTracer) OnLeap(*sim.Engine, sim.LeapInfo) {}

// Done returns the retained completed spans in completion order (a
// copy; call off the hot path).
func (st *SpanTracer) Done() []Span {
	var out []Span
	st.DoneInto(&out)
	return out
}

// DoneInto copies the retained completed spans in completion order
// into *dst, reusing its backing storage; once *dst has grown to the
// ring capacity it allocates nothing.
func (st *SpanTracer) DoneInto(dst *[]Span) {
	d := (*dst)[:0]
	if cap(d) < len(st.done) {
		d = make([]Span, 0, len(st.done))
	}
	n := st.doneTotal
	if n > uint64(len(st.done)) {
		n = uint64(len(st.done))
	}
	start := st.doneTotal - n
	for i := uint64(0); i < n; i++ {
		d = append(d, st.done[(start+i)%uint64(len(st.done))])
	}
	*dst = d
}

// DumpJSONL writes the retained completed spans as schema-validated
// "span" JSONL lines, oldest first.
func (st *SpanTracer) DumpJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, sp := range st.Done() {
		line, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SpanState is the serializable dynamic state of a SpanTracer:
// configuration, the in-flight and completed spans, and the per-edge
// residence histograms.
type SpanState struct {
	SampleEvery int64         `json:"sample_every"`
	Seed        uint64        `json:"seed,omitempty"`
	MaxLive     int           `json:"max_live"`
	MaxDone     int           `json:"max_done"`
	Missed      uint64        `json:"missed,omitempty"`
	DoneTotal   uint64        `json:"done_total,omitempty"`
	Live        []Span        `json:"live,omitempty"`
	Done        []Span        `json:"done,omitempty"`
	Hists       RegistryState `json:"hists"`
}

// CheckpointState extracts the tracer's state (spans are copied; live
// spans keep their table order so a restored run is bit-identical).
func (st *SpanTracer) CheckpointState() SpanState {
	return SpanState{
		SampleEvery: st.cfg.SampleEvery,
		Seed:        st.cfg.Seed,
		MaxLive:     st.cfg.MaxLive,
		MaxDone:     st.cfg.MaxDone,
		Missed:      st.missed,
		DoneTotal:   st.doneTotal,
		Live:        append([]Span(nil), st.live...),
		Done:        st.Done(),
		Hists:       st.reg.State(),
	}
}

// maxSpanTable bounds restored table sizes (hostile input).
const maxSpanTable = 1 << 20

// checkSpan validates one restored span's structural invariants (the
// JSON path validates the wire form; states can also be built
// directly).
func checkSpan(where string, i int, sp *Span, closed bool) error {
	if sp.NPath < 0 || sp.NPath > SpanMaxHops || sp.NPath > sp.Hops || sp.Hops < 0 {
		return fmt.Errorf("span state: %s[%d] npath %d / hops %d out of range", where, i, sp.NPath, sp.Hops)
	}
	if closed && sp.End < sp.Start {
		return fmt.Errorf("span state: %s[%d] ends at %d before start %d", where, i, sp.End, sp.Start)
	}
	return nil
}

// RestoreState overwrites the tracer with a previously extracted
// state. Malformed state is rejected with an error, never a panic.
// Call before Attach or with the same engine attached; the histogram
// handles keep aliasing the restored registry entries.
func (st *SpanTracer) RestoreState(s SpanState) error {
	if s.SampleEvery < 1 {
		return fmt.Errorf("span state: sample_every %d < 1", s.SampleEvery)
	}
	if s.MaxLive < 1 || s.MaxLive > maxSpanTable {
		return fmt.Errorf("span state: max_live %d outside [1,%d]", s.MaxLive, maxSpanTable)
	}
	if s.MaxDone < 16 || s.MaxDone > maxSpanTable {
		return fmt.Errorf("span state: max_done %d outside [16,%d]", s.MaxDone, maxSpanTable)
	}
	if len(s.Live) > s.MaxLive {
		return fmt.Errorf("span state: %d live spans, max %d", len(s.Live), s.MaxLive)
	}
	want := s.DoneTotal
	if want > uint64(s.MaxDone) {
		want = uint64(s.MaxDone)
	}
	if uint64(len(s.Done)) != want {
		return fmt.Errorf("span state: %d done spans retained, want min(total=%d, cap=%d) = %d",
			len(s.Done), s.DoneTotal, s.MaxDone, want)
	}
	for i := range s.Live {
		if err := checkSpan("live", i, &s.Live[i], false); err != nil {
			return err
		}
	}
	for i := range s.Done {
		if err := checkSpan("done", i, &s.Done[i], true); err != nil {
			return err
		}
	}
	if err := st.reg.RestoreState(s.Hists); err != nil {
		return err
	}
	st.cfg.SampleEvery = s.SampleEvery
	st.cfg.Seed = s.Seed
	st.cfg.MaxLive = s.MaxLive
	st.cfg.MaxDone = s.MaxDone
	st.missed = s.Missed
	if cap(st.live) < s.MaxLive {
		st.live = make([]Span, 0, s.MaxLive)
	}
	st.live = append(st.live[:0], s.Live...)
	st.done = make([]Span, s.MaxDone)
	st.doneTotal = s.DoneTotal - uint64(len(s.Done))
	for _, sp := range s.Done {
		st.done[st.doneTotal%uint64(len(st.done))] = sp
		st.doneTotal++
	}
	return nil
}

// WriteResidenceText renders the per-edge residence histograms as a
// fixed-width summary, one line per edge with recorded hops.
func (st *SpanTracer) WriteResidenceText(w io.Writer) error {
	var snap Snapshot
	st.reg.SnapshotInto(&snap)
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-28s hops %-8d mean_wait %-8s p99<=%d\n",
			h.Name, h.Count, strconv.FormatFloat(h.Mean(), 'f', 1, 64), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}
