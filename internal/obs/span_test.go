// SpanTracer coverage: end-to-end span capture with residence
// histograms, seeded ID sampling, the JSONL wire form (golden-pinned
// and schema-validated), drain-window vetoes, and state round trips
// with hostile-input rejection.
package obs_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/obs"
)

// TestSpanTracerEndToEnd: every packet of the single-edge burst
// workload is tracked (SampleEvery 1), so the tracer must complete one
// span per absorption, each a structurally consistent 1-hop absorb
// span, and the e1 residence histogram must hold exactly one wait per
// span.
func TestSpanTracerEndToEnd(t *testing.T) {
	e := burstEngine()
	st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
	st.Attach(e)
	e.Run(1000)
	if st.Missed() != 0 {
		t.Fatalf("%d sampled injections missed (live table too small for the workload)", st.Missed())
	}
	if got, want := st.DoneTotal(), uint64(e.Absorbed()); got != want {
		t.Fatalf("completed %d spans, engine absorbed %d", got, want)
	}
	if st.DoneTotal() == 0 {
		t.Fatal("workload absorbed nothing")
	}
	for i, sp := range st.Done() {
		if sp.Drop {
			t.Errorf("span %d: drop outcome in a lossless workload", i)
		}
		if sp.Hops != 1 || sp.NPath != 1 {
			t.Errorf("span %d: hops=%d npath=%d on a 1-edge route", i, sp.Hops, sp.NPath)
		}
		if sp.End < sp.Start {
			t.Errorf("span %d: ends at %d before start %d", i, sp.End, sp.Start)
		}
		if sp.NPath > 0 && sp.Path[sp.NPath-1].Edge != sp.Edge {
			t.Errorf("span %d: final path edge %d != span edge %d", i, sp.Path[sp.NPath-1].Edge, sp.Edge)
		}
	}
	var snap obs.Snapshot
	st.Registry().SnapshotInto(&snap)
	var observed int64
	for _, h := range snap.Histograms {
		observed += h.Count
	}
	if observed != int64(st.DoneTotal()) {
		t.Errorf("residence histograms hold %d waits, spans recorded %d hops", observed, st.DoneTotal())
	}
}

// TestSpanTracerSampling: a sparse seeded sample tracks a strict,
// deterministic subset — two identically seeded runs agree exactly,
// and a different seed picks a different population.
func TestSpanTracerSampling(t *testing.T) {
	run := func(seed uint64) *obs.SpanTracer {
		e := burstEngine()
		st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 4, Seed: seed})
		st.Attach(e)
		e.Run(1000)
		return st
	}
	a, b := run(7), run(7)
	if a.DoneTotal() == 0 {
		t.Fatal("sparse sample tracked nothing (workload too small)")
	}
	if a.DoneTotal() >= uint64(burstAbsorbed(t)) {
		t.Errorf("SampleEvery=4 tracked %d of %d absorptions — not a strict subset", a.DoneTotal(), burstAbsorbed(t))
	}
	if !reflect.DeepEqual(a.Done(), b.Done()) {
		t.Error("identically seeded runs tracked different spans")
	}
	if c := run(8); c.DoneTotal() == a.DoneTotal() {
		ca, cc := a.Done(), c.Done()
		if reflect.DeepEqual(ca, cc) {
			t.Error("different seeds picked the identical sample population")
		}
	}
}

// burstAbsorbed runs the burst workload untraced and returns its
// absorption count (the denominator for sampling assertions).
func burstAbsorbed(t *testing.T) int64 {
	t.Helper()
	e := burstEngine()
	e.Run(1000)
	return e.Absorbed()
}

// TestSpanJSONGolden pins the exact JSONL line a span marshals to and
// the round trip back through UnmarshalJSON.
func TestSpanJSONGolden(t *testing.T) {
	sp := obs.Span{
		Pkt: 42, Start: 10, End: 25, Drop: false, Edge: graph.EdgeID(3),
		Hops: 2, NPath: 2,
	}
	sp.Path[0] = obs.SpanHop{Edge: 1, T: 14, Wait: 4}
	sp.Path[1] = obs.SpanHop{Edge: 3, T: 25, Wait: 9}
	line, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `{"t":25,"kind":"span","pkt":42,"edge":3,"hops":2,"aux":15,"label":"absorb","path":[[1,14,4],[3,25,9]]}`
	if string(line) != want {
		t.Errorf("span line:\n got %s\nwant %s", line, want)
	}
	if n, err := obs.ValidateJSONL(bytes.NewReader(line)); err != nil || n != 1 {
		t.Errorf("golden line fails the schema: n=%d err=%v", n, err)
	}
	var back obs.Span
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back, sp) {
		t.Errorf("round trip differs:\n got %+v\nwant %+v", back, sp)
	}

	drop := obs.Span{Pkt: 7, Start: 3, End: 3, Drop: true, Edge: 0, Hops: 0, NPath: 0}
	line, err = json.Marshal(drop)
	if err != nil {
		t.Fatalf("Marshal drop: %v", err)
	}
	wantDrop := `{"t":3,"kind":"span","pkt":7,"edge":0,"hops":0,"aux":0,"label":"drop","path":[]}`
	if string(line) != wantDrop {
		t.Errorf("drop span line:\n got %s\nwant %s", line, wantDrop)
	}
}

// TestSpanUnmarshalRejects: every malformed wire-form class errors
// (span payloads live inside fuzzed checkpoint documents).
func TestSpanUnmarshalRejects(t *testing.T) {
	for _, bad := range []string{
		`{"t":5,"kind":"sample","pkt":1,"edge":0,"hops":0,"aux":0,"label":"absorb","path":[]}`,              // wrong kind
		`{"t":5,"kind":"span","pkt":1,"edge":0,"hops":0,"aux":0,"label":"evaporate","path":[]}`,             // bad label
		`{"t":5,"kind":"span","pkt":1,"edge":0,"hops":-1,"aux":0,"label":"absorb","path":[]}`,               // negative hops
		`{"t":5,"kind":"span","pkt":1,"edge":0,"hops":0,"aux":-2,"label":"absorb","path":[]}`,               // negative latency
		`{"t":5,"kind":"span","pkt":1,"edge":0,"hops":1,"aux":0,"label":"absorb","path":[[0,1,0],[1,2,0]]}`, // path > hops
		`{"t":5,"kind":"span","pkt":1,"edge":0,"hops":1,"aux":0,"label":"absorb","path":[[0,1]]}`,           // short triple
	} {
		var sp obs.Span
		if err := json.Unmarshal([]byte(bad), &sp); err == nil {
			t.Errorf("accepted invalid span line: %s", bad)
		}
	}
}

// TestSpanTracerDumpValidates: the JSONL dump of a traced run passes
// the schema with one line per retained span.
func TestSpanTracerDumpValidates(t *testing.T) {
	e := burstEngine()
	st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
	st.Attach(e)
	e.Run(1000)
	var buf bytes.Buffer
	if err := st.DumpJSONL(&buf); err != nil {
		t.Fatalf("DumpJSONL: %v", err)
	}
	n, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	if want := len(st.Done()); n != want {
		t.Errorf("dump has %d lines, tracer retains %d spans", n, want)
	}
}

// TestSpanTracerVetoesDrains: with every packet tracked, a drain
// window always has tracked spans in flight, so the tracer must veto
// all drains (idle windows still leap) — and the leaped run's state
// must equal a stepped run's exactly.
func TestSpanTracerVetoesDrains(t *testing.T) {
	const steps = 1000
	le, se := burstEngine(), burstEngine()
	lt := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
	stt := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
	lt.Attach(le)
	stt.Attach(se)
	le.RunLeap(steps)
	se.Run(steps)
	if d := le.Leaps().Drain; d != 0 {
		t.Errorf("tracer with live spans accepted %d drain windows, want 0", d)
	}
	if le.Leaps().Idle == 0 {
		t.Error("idle windows must still leap with a span tracer attached")
	}
	if !reflect.DeepEqual(lt.CheckpointState(), stt.CheckpointState()) {
		t.Errorf("span tracer states differ after leap vs step:\nleap: %+v\nstep: %+v",
			lt.CheckpointState(), stt.CheckpointState())
	}
}

// TestSpanTracerAcceptsDrainsWhenEmpty: a sample so sparse it tracks
// nothing leaves the live table empty, so every drain is attributable
// to untracked packets and must be accepted.
func TestSpanTracerAcceptsDrainsWhenEmpty(t *testing.T) {
	e := burstEngine()
	st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1 << 40, Seed: 1})
	st.Attach(e)
	e.RunLeap(1000)
	if st.DoneTotal() != 0 || st.Live() != 0 {
		t.Fatalf("astronomically sparse sample still tracked spans (done=%d live=%d)", st.DoneTotal(), st.Live())
	}
	if e.Leaps().Drain == 0 {
		t.Error("empty tracer must accept drain windows, engine leaped none")
	}
}

// TestSpanStateRoundTrip: checkpoint mid-burst (live spans in flight),
// restore onto a fresh tracer + restored engine, finish both — spans,
// counters and histograms must agree exactly.
func TestSpanStateRoundTrip(t *testing.T) {
	const total, k = 1000, 333 // k inside a burst so live spans exist
	ref := burstEngine()
	rt := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 2, Seed: 3})
	rt.Attach(ref)
	ref.Run(total)

	half := burstEngine()
	ht := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 2, Seed: 3})
	ht.Attach(half)
	half.Run(k)
	st := ht.CheckpointState()
	if data, err := json.Marshal(st); err != nil {
		t.Fatalf("state marshal: %v", err)
	} else {
		var back obs.SpanState
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("state unmarshal: %v", err)
		}
		st = back
	}

	cp, err := half.Checkpoint()
	if err != nil {
		t.Fatalf("engine checkpoint: %v", err)
	}
	resumed := burstEngine()
	if err := resumed.Restore(cp); err != nil {
		t.Fatalf("engine restore: %v", err)
	}
	gt := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 2, Seed: 3})
	gt.Attach(resumed)
	if err := gt.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	resumed.Run(total - k)
	if !reflect.DeepEqual(rt.CheckpointState(), gt.CheckpointState()) {
		t.Errorf("resumed tracer state differs from straight run:\nref: %+v\ngot: %+v",
			rt.CheckpointState(), gt.CheckpointState())
	}
}

// TestSpanStateRejects: every malformed-state class is refused.
func TestSpanStateRejects(t *testing.T) {
	mk := func() obs.SpanState {
		e := burstEngine()
		st := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
		st.Attach(e)
		e.Run(400)
		return st.CheckpointState()
	}
	cases := []struct {
		name string
		mut  func(st *obs.SpanState)
	}{
		{"sample_every below 1", func(st *obs.SpanState) { st.SampleEvery = 0 }},
		{"max_live out of range", func(st *obs.SpanState) { st.MaxLive = 0 }},
		{"max_live hostile", func(st *obs.SpanState) { st.MaxLive = 1 << 21 }},
		{"max_done too small", func(st *obs.SpanState) { st.MaxDone = 8 }},
		{"live overflow", func(st *obs.SpanState) {
			st.MaxLive = 1
			st.Live = make([]obs.Span, 2)
		}},
		{"done count mismatch", func(st *obs.SpanState) { st.DoneTotal += 5 }},
		{"corrupt npath", func(st *obs.SpanState) { st.Done[0].NPath = obs.SpanMaxHops + 1 }},
		{"npath beyond hops", func(st *obs.SpanState) { st.Done[0].NPath = st.Done[0].Hops + 1 }},
		{"span ends before start", func(st *obs.SpanState) { st.Done[0].End = st.Done[0].Start - 1 }},
	}
	for _, tc := range cases {
		st := mk()
		if len(st.Done) == 0 {
			t.Fatalf("%s: fixture completed no spans", tc.name)
		}
		tc.mut(&st)
		fresh := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
		if err := fresh.RestoreState(st); err == nil {
			t.Errorf("%s: malformed state accepted", tc.name)
		}
	}
	fresh := obs.NewSpanTracer(obs.SpanConfig{SampleEvery: 1})
	if err := fresh.RestoreState(mk()); err != nil {
		t.Errorf("pristine state rejected: %v", err)
	}
}
