package obs_test

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// The observability overhead pair, mirrored by cmd/bench's
// StepTraced/StepMetered entries: the instrumented step must stay
// allocation-free and within a small constant of StepRecorded.

func benchEngine(b *testing.B, ob func(e *sim.Engine)) *sim.Engine {
	g := graph.Line(32)
	adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
	e := sim.New(g, policy.FIFO{}, adv)
	ob(e)
	e.Run(256)
	b.ReportAllocs()
	b.ResetTimer()
	return e
}

func BenchmarkStepTraced(b *testing.B) {
	e := benchEngine(b, func(e *sim.Engine) {
		e.AddEventObserver(obs.NewFlightRecorder(4096))
	})
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepMetered(b *testing.B) {
	e := benchEngine(b, func(e *sim.Engine) {
		e.AddObserver(obs.NewMeter(nil))
	})
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
