// Leap-mode coverage for the observability layer, plus the boundary
// fixes that rode along: the Meter's closed-form window reconstruction
// must be indistinguishable from stepping, the flight recorder must
// emit schema-valid leap events, ETA must clamp its degenerate inputs,
// and the histogram quantile/merge edges must be well-defined.
package obs_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/sim"
)

// burstEngine builds the standard leap workload: periodic single-edge
// bursts with long provably-idle gaps.
func burstEngine() *sim.Engine {
	g := graph.Line(8)
	adv := adversary.NewBurstScript(adversary.BurstStream{
		Name: "burst", Start: 1, Period: 64, Burst: 24, Budget: -1,
		Route: []graph.EdgeID{g.MustEdge("e1")},
	})
	return sim.New(g, policy.FIFO{}, adv)
}

// TestMeterLeapEquivalence: a leaped run with a Meter attached must
// produce the identical registry snapshot as a stepped run — idle
// windows are reconstructed by ObserveN, drain windows are refused and
// stepped through (the latency histogram needs each absorption).
func TestMeterLeapEquivalence(t *testing.T) {
	const steps = 1000
	leap, step := burstEngine(), burstEngine()
	lm, sm := obs.NewMeter(nil), obs.NewMeter(nil)
	leap.AddObserver(lm)
	step.AddObserver(sm)
	leap.RunLeap(steps)
	step.Run(steps)
	lm.Finish(leap)
	sm.Finish(step)
	ls, ss := lm.Registry().Snapshot(), sm.Registry().Snapshot()
	// Nanos is the one nondeterministic piece of state and the Meter
	// does not record it, so full deep equality is the contract.
	if !reflect.DeepEqual(ls, ss) {
		t.Errorf("meter snapshots differ:\nleap: %+v\nstep: %+v", ls, ss)
	}
	if leap.Leaps().Idle == 0 {
		t.Error("metered run leaped no idle windows")
	}
	if leap.Leaps().Drain != 0 {
		t.Error("meter must refuse drain windows (latency needs absorptions)")
	}
}

// TestFlightRecorderLeapEvents: the flight recorder accepts every
// window kind, records one summary event per window, and its dump
// passes the JSONL schema (including the new leap lines).
func TestFlightRecorderLeapEvents(t *testing.T) {
	const steps = 1000
	e := burstEngine()
	fr := obs.NewFlightRecorder(4096)
	e.AddEventObserver(fr)
	e.RunLeap(steps)
	ls := e.Leaps()
	if ls.Windows == 0 || ls.Drain == 0 {
		t.Fatalf("traced run should leap idle and drain windows, got %+v", ls)
	}
	var buf bytes.Buffer
	if err := fr.DumpJSONL(&buf); err != nil {
		t.Fatalf("DumpJSONL: %v", err)
	}
	dump := buf.String()
	n, err := obs.ValidateJSONL(strings.NewReader(dump))
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	if n == 0 {
		t.Fatal("empty dump")
	}
	idle := strings.Count(dump, `"label":"leap.idle"`)
	drain := strings.Count(dump, `"label":"leap.drain"`)
	if int64(idle) != ls.Idle || int64(drain) != ls.Drain {
		t.Errorf("dump has %d idle / %d drain leap lines, engine leaped %d/%d",
			idle, drain, ls.Idle, ls.Drain)
	}
	// Leap lines carry the window length as hops and no packet fields.
	for _, line := range strings.Split(dump, "\n") {
		if !strings.Contains(line, `"kind":"leap"`) {
			continue
		}
		if strings.Contains(line, `"pkt"`) || strings.Contains(line, `"edge"`) {
			t.Errorf("leap line carries packet fields: %s", line)
		}
		if !strings.Contains(line, `"hops"`) {
			t.Errorf("leap line missing hops window length: %s", line)
		}
	}
}

// TestValidateJSONLLeapLines pins the schema rules for leap lines
// directly: hops must be present and positive, the label non-empty.
func TestValidateJSONLLeapLines(t *testing.T) {
	ok := `{"t":10,"kind":"leap","hops":5,"label":"leap.idle"}`
	if n, err := obs.ValidateJSONL(strings.NewReader(ok)); err != nil || n != 1 {
		t.Errorf("valid leap line rejected: n=%d err=%v", n, err)
	}
	for _, bad := range []string{
		`{"t":10,"kind":"leap","label":"leap.idle"}`,          // no hops
		`{"t":10,"kind":"leap","hops":0,"label":"leap.idle"}`, // empty window
		`{"t":10,"kind":"leap","hops":5}`,                     // no label
	} {
		if _, err := obs.ValidateJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("schema accepted invalid leap line: %s", bad)
		}
	}
}

// TestETAClampsDegenerateReports is the status-line boundary fix: a
// report with no finished probes, a shrunken total (early-resolved
// search) or a non-positive elapsed time must yield "no estimate", not
// a divide-by-zero or a negative duration.
func TestETAClampsDegenerateReports(t *testing.T) {
	cases := []struct {
		name string
		p    obs.SweepProgress
	}{
		{"zero done", obs.SweepProgress{Done: 0, Total: 10, Elapsed: time.Second}},
		{"negative done", obs.SweepProgress{Done: -3, Total: 10, Elapsed: time.Second}},
		{"total == done", obs.SweepProgress{Done: 10, Total: 10, Elapsed: time.Second}},
		{"total < done (early resolve)", obs.SweepProgress{Done: 10, Total: 7, Elapsed: time.Second}},
		{"zero elapsed", obs.SweepProgress{Done: 3, Total: 10}},
		{"negative elapsed", obs.SweepProgress{Done: 3, Total: 10, Elapsed: -time.Second}},
	}
	for _, tc := range cases {
		if eta := tc.p.ETA(); eta != 0 {
			t.Errorf("%s: ETA() = %v, want 0", tc.name, eta)
		}
		// String must render every degenerate report without an eta field.
		if s := tc.p.String(); strings.Contains(s, "eta") {
			t.Errorf("%s: String() advertises an eta: %q", tc.name, s)
		}
	}
	// Sanity: the healthy case still estimates.
	healthy := obs.SweepProgress{Done: 2, Total: 6, Elapsed: 2 * time.Second}
	if eta := healthy.ETA(); eta != 4*time.Second {
		t.Errorf("healthy ETA() = %v, want 4s", eta)
	}
}

// TestQuantileEdges: empty histograms quantile to 0, and buckets at or
// above 2^62 (where the naive 1<<b bound overflows int64) clamp to the
// exact Max instead of going negative.
func TestQuantileEdges(t *testing.T) {
	var empty obs.HistogramSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	r := obs.NewRegistry()
	h := r.Histogram("big")
	h.Observe(math.MaxInt64)        // bucket 64: 1<<64 would shift to 0
	h.Observe(math.MaxInt64 - 1000) // same bucket
	h.Observe(int64(1) << 62)       // bucket 63: 1<<63 is negative
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		v := s.Quantile(q)
		if v < 0 {
			t.Fatalf("Quantile(%v) overflowed to %d", q, v)
		}
		if v > s.Max {
			t.Errorf("Quantile(%v) = %d exceeds Max %d", q, v, s.Max)
		}
	}
	if v := s.Quantile(1); v != math.MaxInt64 {
		t.Errorf("Quantile(1) = %d, want exact Max %d", v, int64(math.MaxInt64))
	}
	// Out-of-range q clamps rather than panicking or indexing badly.
	if v := s.Quantile(-3); v < 0 || v > s.Max {
		t.Errorf("Quantile(-3) = %d out of range", v)
	}
	if v := s.Quantile(7); v != s.Quantile(1) {
		t.Errorf("Quantile(7) = %d, want Quantile(1) = %d", v, s.Quantile(1))
	}
}

// TestObserveNEquivalence: ObserveN(v, n) must leave the histogram in
// exactly the state of n Observe(v) calls, and n <= 0 must record
// nothing.
func TestObserveNEquivalence(t *testing.T) {
	ra, rb := obs.NewRegistry(), obs.NewRegistry()
	bulk, loop := ra.Histogram("h"), rb.Histogram("h")
	obsSeq := []struct{ v, n int64 }{{5, 3}, {0, 4}, {-7, 2}, {1 << 40, 1}, {9, 0}, {9, -2}}
	for _, o := range obsSeq {
		bulk.ObserveN(o.v, o.n)
		for i := int64(0); i < o.n; i++ {
			loop.Observe(o.v)
		}
	}
	if !reflect.DeepEqual(bulk.Snapshot(), loop.Snapshot()) {
		t.Errorf("ObserveN snapshot %+v != Observe-loop snapshot %+v",
			bulk.Snapshot(), loop.Snapshot())
	}
	// First-ever observation through the bulk path must set Min.
	r := obs.NewRegistry()
	h := r.Histogram("min")
	h.ObserveN(42, 3)
	if s := h.Snapshot(); s.Min != 42 || s.Max != 42 || s.Count != 3 || s.Sum != 126 {
		t.Errorf("bulk-first snapshot %+v, want min=max=42 count=3 sum=126", s)
	}
}

// TestSnapshotMergeDisjoint: merging snapshots whose counter and
// histogram sets are disjoint must union them (sorted), and metrics
// present on both sides must fold.
func TestSnapshotMergeDisjoint(t *testing.T) {
	ra := obs.NewRegistry()
	ra.Counter("a.count").Add(3)
	ra.Histogram("a.hist").Observe(10)
	ra.Counter("shared").Add(5)

	rb := obs.NewRegistry()
	rb.Counter("b.count").Add(7)
	rb.Histogram("b.hist").Observe(20)
	rb.Counter("shared").Add(11)

	m := ra.Snapshot().Merge(rb.Snapshot())
	want := map[string]int64{"a.count": 3, "b.count": 7, "shared": 16}
	if len(m.Counters) != len(want) {
		t.Fatalf("merged %d counters, want %d: %+v", len(m.Counters), len(want), m.Counters)
	}
	for name, v := range want {
		got, ok := m.Counter(name)
		if !ok || got != v {
			t.Errorf("counter %s = %d (present=%v), want %d", name, got, ok, v)
		}
	}
	for _, name := range []string{"a.hist", "b.hist"} {
		h, ok := m.Histogram(name)
		if !ok || h.Count != 1 {
			t.Errorf("histogram %s missing or wrong after disjoint merge: %+v", name, h)
		}
	}
	// Merge output is sorted by name regardless of input order.
	for i := 1; i < len(m.Counters); i++ {
		if m.Counters[i-1].Name > m.Counters[i].Name {
			t.Fatalf("merged counters unsorted: %+v", m.Counters)
		}
	}
	// Merging with an empty snapshot is the identity.
	if got := m.Merge(obs.Snapshot{}); !reflect.DeepEqual(got, m) {
		t.Error("merge with empty snapshot changed the result")
	}
}
