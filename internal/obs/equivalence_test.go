package obs_test

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// TestInstrumentedEquivalence runs an identical simulation twice —
// once bare, once with the full observability stack attached — and
// requires the final engine states to match exactly: observation must
// not perturb the simulation.
func TestInstrumentedEquivalence(t *testing.T) {
	build := func(instrument bool) (*sim.Engine, *graph.Graph, *obs.Meter) {
		g := graph.Line(16)
		adv := adversary.NewRandomWR(g, 16, rational.New(1, 3), 4, 9)
		e := sim.New(g, policy.FIFO{}, adv)
		var m *obs.Meter
		if instrument {
			e.AddEventObserver(obs.NewFlightRecorder(1024))
			m = obs.NewMeter(nil)
			e.AddObserver(m)
		}
		e.Run(2000)
		return e, g, m
	}
	bare, g, _ := build(false)
	inst, _, meter := build(true)

	sb, si := bare.Snap(), inst.Snap()
	sb.Stats.Nanos, si.Stats.Nanos = 0, 0
	if sb != si {
		t.Errorf("snapshots diverge:\nbare:         %+v\ninstrumented: %+v", sb, si)
	}
	for eid := 0; eid < g.NumEdges(); eid++ {
		id := graph.EdgeID(eid)
		if bl, il := bare.QueueLen(id), inst.QueueLen(id); bl != il {
			t.Errorf("edge %s: queue length %d bare vs %d instrumented", g.EdgeName(id), bl, il)
		}
	}

	// The meter's view must agree with the engine it watched.
	snap := meter.Registry().Snapshot()
	qt, ok := snap.Histogram("sim.queue_total")
	if !ok || qt.Count != 2000 {
		t.Errorf("sim.queue_total count = %d, want one observation per step (2000)", qt.Count)
	}
	meter.Finish(inst)
	snap = meter.Registry().Snapshot()
	if v, _ := snap.Counter("sim.steps"); v != 2000 {
		t.Errorf("sim.steps = %d, want 2000", v)
	}
	if v, _ := snap.Counter("sim.absorbed"); v != inst.Absorbed() {
		t.Errorf("sim.absorbed = %d, engine says %d", v, inst.Absorbed())
	}
	lat, _ := snap.Histogram("sim.latency")
	if lat.Count != inst.Absorbed() {
		t.Errorf("sim.latency count = %d, want one per absorption (%d)", lat.Count, inst.Absorbed())
	}
	occ, _ := snap.Histogram("sim.edge_occupancy")
	if occ.Count != int64(g.NumEdges()) {
		t.Errorf("sim.edge_occupancy count = %d, want one per edge (%d)", occ.Count, g.NumEdges())
	}
	if occ.Max != int64(si.MaxQueueLen) {
		t.Errorf("sim.edge_occupancy max = %d, engine max queue is %d", occ.Max, si.MaxQueueLen)
	}
	// Finish is idempotent: a second call must not double-count.
	meter.Finish(inst)
	if v, _ := meter.Registry().Snapshot().Counter("sim.steps"); v != 2000 {
		t.Errorf("second Finish double-counted: sim.steps = %d", v)
	}
}
