// Server is the embeddable live-telemetry HTTP surface: Prometheus
// metrics, sampler time series, flight/span traces, sweep progress
// and pprof, served from snapshots the simulation side publishes at
// sample boundaries. Engines stay goroutine-confined — no handler
// ever touches an engine, a registry or an observer; the only shared
// state is the published copy under the server's lock. This is the
// first HTTP surface on the road to aqtsimd and dispatcher worker
// status streaming.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// TelemetryState is one published snapshot of everything the server
// exposes. All fields are optional; publishers fill what they have.
type TelemetryState struct {
	// Now is the engine step the snapshot was taken at.
	Now int64
	// Metrics is a Registry snapshot (served at /metrics).
	Metrics Snapshot
	// Series are Sampler time series (served at /series).
	Series []Series
	// Spans are completed SpanTracer spans (served at /trace).
	Spans []Span
	// Flight is the flight-recorder tail (served at /trace).
	Flight []Event
}

// Server serves published telemetry snapshots over HTTP. Create with
// NewServer, wire a publisher (e.g. Sampler.OnSample →
// PublishTelemetry), then either mount Handler on a listener of your
// choice or call Start.
//
// Publishing reuses the previous snapshot's buffers, so a steady-state
// publish allocates nothing; handlers render under a read lock, so a
// slow scrape delays the next publish, never corrupts it.
type Server struct {
	mu    sync.RWMutex
	state TelemetryState

	pmu      sync.Mutex
	progress SweepProgress
	hasProg  bool

	mux  *http.ServeMux
	hsrv *http.Server
}

// NewServer returns a server with all endpoints mounted:
// /metrics, /series, /trace, /healthz, /progress, /debug/pprof/*.
func NewServer() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/series", s.handleSeries)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/progress", s.handleProgress)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's HTTP handler (for httptest or custom
// listeners).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a
// background goroutine, returning the bound address. Use Close to
// stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.hsrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.hsrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops a server started with Start (no-op otherwise).
func (s *Server) Close() error {
	if s.hsrv == nil {
		return nil
	}
	return s.hsrv.Close()
}

// PublishTelemetry captures the current state of the given telemetry
// sources (each may be nil) into the served snapshot. Call it from the
// simulation goroutine — the natural wiring is sampler.OnSample — so
// readers always see a sample-boundary-consistent view. Buffers from
// the previous snapshot are reused: once they have grown to their
// steady-state sizes, publishing allocates nothing, keeping the gated
// zero-alloc step path intact with a server attached.
func (s *Server) PublishTelemetry(now int64, reg *Registry, sam *Sampler, sp *SpanTracer, fr *FlightRecorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.Now = now
	if reg != nil {
		reg.SnapshotInto(&s.state.Metrics)
	}
	if sam != nil {
		sam.SeriesInto(&s.state.Series)
	}
	if sp != nil {
		sp.DoneInto(&s.state.Spans)
	}
	if fr != nil {
		fr.EventsInto(&s.state.Flight)
	}
}

// PublishSnapshot replaces the served metrics snapshot — the
// sweep-side publisher for harnesses that aggregate Registry
// snapshots instead of running a Sampler (cmd/experiments).
func (s *Server) PublishSnapshot(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.Metrics = snap
}

// OnProgress implements ProgressFunc: hand it to a sweep layer to
// serve live progress at /progress. Progress has its own lock so a
// sweep's worker-completion path never contends with a publish.
func (s *Server) OnProgress(p SweepProgress) {
	s.pmu.Lock()
	s.progress = p
	s.hasProg = true
	s.pmu.Unlock()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteProm(w, s.state.Metrics)
}

func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	_ = WriteSeriesJSONL(w, s.state.Series)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	if err := DumpEventsJSONL(w, s.state.Flight); err != nil {
		return
	}
	for i := range s.state.Spans {
		line, err := json.Marshal(s.state.Spans[i])
		if err != nil {
			return
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return
		}
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.pmu.Lock()
	p, ok := s.progress, s.hasProg
	s.pmu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := struct {
		Done        int    `json:"done"`
		Total       int    `json:"total"`
		InFlight    int    `json:"in_flight"`
		ElapsedMS   int64  `json:"elapsed_ms"`
		ETAMS       int64  `json:"eta_ms"`
		SlowestMS   int64  `json:"slowest_probe_ms"`
		HasProgress bool   `json:"has_progress"`
		HumanForm   string `json:"text,omitempty"`
	}{
		Done: p.Done, Total: p.Total, InFlight: p.InFlight,
		ElapsedMS: p.Elapsed.Milliseconds(), ETAMS: p.ETA().Milliseconds(),
		SlowestMS: p.SlowestProbe.Milliseconds(), HasProgress: ok,
	}
	if ok {
		enc.HumanForm = p.String()
	}
	_ = json.NewEncoder(w).Encode(enc)
}
