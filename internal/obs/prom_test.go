// Golden test for the Prometheus text exposition: exact bytes for a
// fixed registry, pinning name mangling, cumulative log2 bucket bounds
// and the empty-histogram shape.
package obs_test

import (
	"bytes"
	"testing"

	"aqt/internal/obs"
)

func TestWritePromGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("evt.drop").Add(7)
	h := reg.Histogram("span.edge_wait.e1")
	for _, v := range []int64{0, 1, 2, 3, 10} {
		h.Observe(v)
	}
	reg.Histogram("zz.empty") // registered, never observed

	var snap obs.Snapshot
	reg.SnapshotInto(&snap)
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, snap); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	want := `# TYPE aqt_evt_drop counter
aqt_evt_drop 7
# TYPE aqt_span_edge_wait_e1 histogram
aqt_span_edge_wait_e1_bucket{le="0"} 1
aqt_span_edge_wait_e1_bucket{le="1"} 2
aqt_span_edge_wait_e1_bucket{le="3"} 4
aqt_span_edge_wait_e1_bucket{le="7"} 4
aqt_span_edge_wait_e1_bucket{le="15"} 5
aqt_span_edge_wait_e1_bucket{le="+Inf"} 5
aqt_span_edge_wait_e1_sum 16
aqt_span_edge_wait_e1_count 5
# TYPE aqt_zz_empty histogram
aqt_zz_empty_bucket{le="+Inf"} 0
aqt_zz_empty_sum 0
aqt_zz_empty_count 0
`
	if buf.String() != want {
		t.Errorf("exposition differs:\n got:\n%s\nwant:\n%s", buf.String(), want)
	}
}
