package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestFlightRecorderKeepLatest(t *testing.T) {
	fr := obs.NewFlightRecorder(16)
	if fr.Cap() != 16 {
		t.Fatalf("Cap() = %d, want 16", fr.Cap())
	}
	for i := 0; i < 40; i++ {
		fr.Mark(int64(i), "m")
	}
	if fr.Len() != 16 {
		t.Errorf("Len() = %d, want 16", fr.Len())
	}
	if fr.Total() != 40 {
		t.Errorf("Total() = %d, want 40", fr.Total())
	}
	if fr.Overwritten() != 24 {
		t.Errorf("Overwritten() = %d, want 24", fr.Overwritten())
	}
	evs := fr.Events()
	if len(evs) != 16 {
		t.Fatalf("len(Events()) = %d, want 16", len(evs))
	}
	// Keep-latest: the retained window is the last 16 markers, oldest
	// first.
	for i, ev := range evs {
		if want := int64(24 + i); ev.T != want {
			t.Errorf("Events()[%d].T = %d, want %d", i, ev.T, want)
		}
		if ev.Kind != obs.EvMarker {
			t.Errorf("Events()[%d].Kind = %v, want marker", i, ev.Kind)
		}
	}
}

func TestFlightRecorderMinimumCapacity(t *testing.T) {
	if c := obs.NewFlightRecorder(0).Cap(); c != 16 {
		t.Errorf("Cap() = %d, want the 16 floor", c)
	}
}

// TestDumpJSONLRoundTrip drives a real engine so the dump covers the
// packet event kinds, then validates the dump against the schema.
func TestDumpJSONLRoundTrip(t *testing.T) {
	g := graph.Line(4)
	adv := adversary.NewRandomWR(g, 8, rational.New(1, 3), 3, 5)
	e := sim.New(g, policy.FIFO{}, adv)
	fr := obs.NewFlightRecorder(4096)
	e.AddEventObserver(fr)
	e.Run(64)
	e.Annotate("round-trip marker")

	var buf bytes.Buffer
	if err := fr.DumpJSONL(&buf); err != nil {
		t.Fatalf("DumpJSONL: %v", err)
	}
	n, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if n != fr.Len() {
		t.Errorf("validated %d lines, recorder retains %d", n, fr.Len())
	}
	for _, kind := range []string{`"kind":"inject"`, `"kind":"send"`, `"kind":"marker"`} {
		if !strings.Contains(buf.String(), kind) {
			t.Errorf("dump is missing %s lines", kind)
		}
	}
	if !strings.Contains(buf.String(), "round-trip marker") {
		t.Errorf("dump is missing the Annotate label")
	}
}

// TestAutoDumpOnce: the first failure event dumps the ring to AutoDump;
// later failures are recorded but do not dump again.
func TestAutoDumpOnce(t *testing.T) {
	var buf bytes.Buffer
	fr := obs.NewFlightRecorder(64)
	fr.AutoDump = &buf
	fr.Mark(1, "before failure")
	fr.RecordFailure(2, "first violation")
	if fr.DumpErr != nil {
		t.Fatalf("DumpErr = %v", fr.DumpErr)
	}
	first := buf.String()
	if first == "" {
		t.Fatal("failure did not auto-dump")
	}
	if n, err := obs.ValidateJSONL(strings.NewReader(first)); err != nil || n != 2 {
		t.Fatalf("auto-dump: %d valid lines, err %v; want 2, nil", n, err)
	}
	if !strings.Contains(first, "first violation") || !strings.Contains(first, "before failure") {
		t.Errorf("auto-dump missing expected events:\n%s", first)
	}
	fr.RecordFailure(3, "second violation")
	if buf.String() != first {
		t.Errorf("second failure dumped again")
	}
	if fr.Len() != 3 {
		t.Errorf("Len() = %d after three events, want 3", fr.Len())
	}
}

func TestValidateJSONLRejectsBadLines(t *testing.T) {
	for _, tc := range []struct{ name, line string }{
		{"not json", "not json\n"},
		{"missing t", `{"kind":"marker","label":"x"}` + "\n"},
		{"negative t", `{"t":-1,"kind":"marker","label":"x"}` + "\n"},
		{"unknown kind", `{"t":1,"kind":"teleport","label":"x"}` + "\n"},
		{"marker without label", `{"t":1,"kind":"marker"}` + "\n"},
		{"send without pkt", `{"t":1,"kind":"send","edge":0,"hops":1}` + "\n"},
	} {
		if _, err := obs.ValidateJSONL(strings.NewReader(tc.line)); err == nil {
			t.Errorf("%s: ValidateJSONL accepted %q", tc.name, tc.line)
		}
	}
}
