// Sampler coverage: series recording and stride-doubling, the leap
// closed forms (drain windows must be indistinguishable from stepping,
// meter-linked samplers must refuse them), state round trips with
// hostile-input rejection, and the JSONL wire form.
package obs_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"aqt/internal/obs"
	"aqt/internal/sim"
)

// sampledPair runs the burst workload twice — leaped and stepped —
// with identically configured samplers and returns both.
func sampledPair(t *testing.T, steps int64, cfg func(e *sim.Engine) obs.SamplerConfig) (leapS, stepS *obs.Sampler, leapE *sim.Engine) {
	t.Helper()
	le, se := burstEngine(), burstEngine()
	ls := obs.NewSampler(cfg(le))
	ss := obs.NewSampler(cfg(se))
	ls.Attach(le)
	ss.Attach(se)
	le.RunLeap(steps)
	se.Run(steps)
	return ls, ss, le
}

// TestSamplerRecordsTrajectory pins the basics: aligned series, the
// configured names, monotone timestamps on the base stride, and a
// backlog trajectory that actually moves under the burst workload.
func TestSamplerRecordsTrajectory(t *testing.T) {
	e := burstEngine()
	s := obs.NewSampler(obs.SamplerConfig{Every: 2})
	s.Attach(e)
	e.Run(200)
	series := s.Series()
	if len(series) != 6 {
		t.Fatalf("meterless sampler has %d series, want 6", len(series))
	}
	wantNames := []string{"backlog", "queue_max", "absorbed", "drops", "heap_skips", "heap_compactions"}
	sawNonzeroBacklog := false
	for i, sr := range series {
		if sr.Name != wantNames[i] {
			t.Errorf("series[%d] = %q, want %q", i, sr.Name, wantNames[i])
		}
		if len(sr.Points) != len(series[0].Points) {
			t.Errorf("series %q has %d points, %q has %d (must stay aligned)",
				sr.Name, len(sr.Points), series[0].Name, len(series[0].Points))
		}
		for j, p := range sr.Points {
			if p.T%s.EffectiveEvery() != 0 {
				t.Errorf("series %q point %d at t=%d off the effective stride %d",
					sr.Name, j, p.T, s.EffectiveEvery())
			}
			if p.T != series[0].Points[j].T {
				t.Errorf("series %q point %d at t=%d, misaligned with %d",
					sr.Name, j, p.T, series[0].Points[j].T)
			}
			if sr.Name == "backlog" && p.V > 0 {
				sawNonzeroBacklog = true
			}
		}
	}
	if !sawNonzeroBacklog {
		t.Error("burst workload recorded no nonzero backlog sample")
	}
}

// TestSamplerDownsamples: a run long enough to overflow MaxSamples
// must double the effective stride and keep every series within the
// bound, still aligned.
func TestSamplerDownsamples(t *testing.T) {
	e := burstEngine()
	s := obs.NewSampler(obs.SamplerConfig{Every: 1, MaxSamples: 16})
	s.Attach(e)
	e.Run(200)
	if s.EffectiveEvery() <= s.Every() {
		t.Fatalf("200 steps at every=1 with max 16 samples must downsample, effective still %d", s.EffectiveEvery())
	}
	for _, sr := range s.Series() {
		if len(sr.Points) > 16 {
			t.Errorf("series %q retains %d points, max 16", sr.Name, len(sr.Points))
		}
		for _, p := range sr.Points {
			if p.T%s.EffectiveEvery() != 0 {
				t.Errorf("series %q keeps off-stride point t=%d (effective %d)", sr.Name, p.T, s.EffectiveEvery())
			}
		}
	}
}

// TestSamplerLeapEquivalence is the drain closed form's gate: a
// meterless sampler accepts drain windows (no keyed tombstones in the
// FIFO burst workload), and the leaped run's full sampler state must
// equal the stepped run's bit for bit.
func TestSamplerLeapEquivalence(t *testing.T) {
	ls, ss, le := sampledPair(t, 1000, func(*sim.Engine) obs.SamplerConfig {
		return obs.SamplerConfig{Every: 1, MaxSamples: 64}
	})
	if le.Leaps().Drain == 0 {
		t.Fatal("meterless sampler should accept drain windows, engine leaped none")
	}
	if le.Leaps().Idle == 0 {
		t.Fatal("burst workload leaped no idle windows")
	}
	lst, sst := ls.CheckpointState(), ss.CheckpointState()
	if !reflect.DeepEqual(lst, sst) {
		t.Errorf("sampler states differ after leap vs step:\nleap: %+v\nstep: %+v", lst, sst)
	}
}

// TestSamplerWithMeterRefusesDrains: linking a meter makes the latency
// quantiles part of the sample vector, which no closed form can track
// through a drain — the sampler must veto them (idle windows remain
// fine) and still match a stepped run exactly.
func TestSamplerWithMeterRefusesDrains(t *testing.T) {
	const steps = 1000
	le, se := burstEngine(), burstEngine()
	lm, sm := obs.NewMeter(nil), obs.NewMeter(nil)
	le.AddObserver(lm)
	se.AddObserver(sm)
	ls := obs.NewSampler(obs.SamplerConfig{Every: 1, MaxSamples: 64, Meter: lm})
	ss := obs.NewSampler(obs.SamplerConfig{Every: 1, MaxSamples: 64, Meter: sm})
	ls.Attach(le)
	ss.Attach(se)
	le.RunLeap(steps)
	se.Run(steps)
	if d := le.Leaps().Drain; d != 0 {
		t.Errorf("meter-linked sampler accepted %d drain windows, want 0", d)
	}
	if le.Leaps().Idle == 0 {
		t.Error("idle windows must still leap with a meter-linked sampler")
	}
	if len(ls.Series()) != 8 {
		t.Errorf("meter-linked sampler has %d series, want 8", len(ls.Series()))
	}
	lst, sst := ls.CheckpointState(), ss.CheckpointState()
	if !reflect.DeepEqual(lst, sst) {
		t.Errorf("meter-linked sampler states differ after leap vs step:\nleap: %+v\nstep: %+v", lst, sst)
	}
}

// TestSamplerDumpJSONLValidates: the dump is schema-valid, one line
// per retained point, carrying the "sample" kind.
func TestSamplerDumpJSONLValidates(t *testing.T) {
	e := burstEngine()
	s := obs.NewSampler(obs.SamplerConfig{Every: 4})
	s.Attach(e)
	e.Run(300)
	var buf bytes.Buffer
	if err := s.DumpJSONL(&buf); err != nil {
		t.Fatalf("DumpJSONL: %v", err)
	}
	want := 0
	for _, sr := range s.Series() {
		want += len(sr.Points)
	}
	n, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	if n != want {
		t.Errorf("dump has %d valid lines, sampler retains %d points", n, want)
	}
	if want == 0 {
		t.Fatal("empty dump")
	}
	if !strings.Contains(buf.String(), `"kind":"sample"`) {
		t.Error("dump carries no sample lines")
	}
}

// TestSamplerStateRoundTrip: checkpoint mid-run, restore onto a fresh
// same-shaped sampler, finish both — the series must agree exactly.
func TestSamplerStateRoundTrip(t *testing.T) {
	const total, k = 600, 251
	ref := burstEngine()
	rs := obs.NewSampler(obs.SamplerConfig{Every: 1, MaxSamples: 32})
	rs.Attach(ref)
	ref.Run(total)

	half := burstEngine()
	hs := obs.NewSampler(obs.SamplerConfig{Every: 1, MaxSamples: 32})
	hs.Attach(half)
	half.Run(k)
	st := hs.CheckpointState()

	resumed := burstEngine()
	cp, err := half.Checkpoint()
	if err != nil {
		t.Fatalf("engine checkpoint: %v", err)
	}
	if err := resumed.Restore(cp); err != nil {
		t.Fatalf("engine restore: %v", err)
	}
	gs := obs.NewSampler(obs.SamplerConfig{Every: 1, MaxSamples: 32})
	gs.Attach(resumed)
	if err := gs.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	resumed.Run(total - k)
	if !reflect.DeepEqual(rs.CheckpointState(), gs.CheckpointState()) {
		t.Errorf("resumed sampler state differs from straight run:\nref: %+v\ngot: %+v",
			rs.CheckpointState(), gs.CheckpointState())
	}
}

// TestSamplerStateRejects: every malformed-state class is refused with
// an error (states are reachable from fuzzed checkpoint files).
func TestSamplerStateRejects(t *testing.T) {
	mk := func() obs.SamplerState {
		s := obs.NewSampler(obs.SamplerConfig{Every: 2, MaxSamples: 16})
		e := burstEngine()
		s.Attach(e)
		e.Run(40)
		return s.CheckpointState()
	}
	cases := []struct {
		name string
		mut  func(st *obs.SamplerState)
	}{
		{"every below 1", func(st *obs.SamplerState) { st.Every = 0 }},
		{"max_samples too small", func(st *obs.SamplerState) { st.MaxSamples = 15 }},
		{"max_samples too large", func(st *obs.SamplerState) { st.MaxSamples = 1 << 21 }},
		{"negative factor", func(st *obs.SamplerState) { st.Factor = -2 }},
		{"series dropped", func(st *obs.SamplerState) { st.Series = st.Series[:len(st.Series)-1] }},
		{"series renamed", func(st *obs.SamplerState) { st.Series[0].Name = "bogus" }},
		{"too many points", func(st *obs.SamplerState) {
			st.MaxSamples = 16
			pts := make([]obs.Point, 17)
			for i := range pts {
				pts[i] = obs.Point{T: int64(i + 1), V: 0}
			}
			for i := range st.Series {
				st.Series[i].Points = pts
			}
			st.Series[0].Points = pts
		}},
		{"misaligned lengths", func(st *obs.SamplerState) {
			st.Series[1].Points = st.Series[1].Points[:len(st.Series[1].Points)-1]
		}},
		{"non-increasing time", func(st *obs.SamplerState) {
			p := append([]obs.Point(nil), st.Series[0].Points...)
			p[1].T = p[0].T
			st.Series[0].Points = p
		}},
		{"misaligned timestamps", func(st *obs.SamplerState) {
			p := append([]obs.Point(nil), st.Series[0].Points...)
			p[1].T++
			st.Series[0].Points = p
		}},
	}
	for _, tc := range cases {
		st := mk()
		if len(st.Series[0].Points) < 3 {
			t.Fatalf("%s: fixture too short (%d points)", tc.name, len(st.Series[0].Points))
		}
		tc.mut(&st)
		fresh := obs.NewSampler(obs.SamplerConfig{Every: 2, MaxSamples: 16})
		if err := fresh.RestoreState(st); err == nil {
			t.Errorf("%s: malformed state accepted", tc.name)
		}
	}
	// The unmutated fixture must restore cleanly (the cases above fail
	// for their stated reason, not because the fixture is broken).
	fresh := obs.NewSampler(obs.SamplerConfig{Every: 2, MaxSamples: 16})
	if err := fresh.RestoreState(mk()); err != nil {
		t.Errorf("pristine state rejected: %v", err)
	}
}

// TestValidateJSONLSampleLines pins the schema rules for sample lines.
func TestValidateJSONLSampleLines(t *testing.T) {
	ok := `{"t":10,"kind":"sample","label":"backlog","v":5}`
	if n, err := obs.ValidateJSONL(strings.NewReader(ok)); err != nil || n != 1 {
		t.Errorf("valid sample line rejected: n=%d err=%v", n, err)
	}
	for _, bad := range []string{
		`{"t":10,"kind":"sample","v":5}`,                   // no label
		`{"t":10,"kind":"sample","label":"backlog"}`,       // no value
		`{"kind":"sample","label":"backlog","v":5}`,        // no t
		`{"t":-1,"kind":"sample","label":"backlog","v":5}`, // negative t
	} {
		if _, err := obs.ValidateJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("schema accepted invalid sample line: %s", bad)
		}
	}
}
