package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aqt/internal/obs"
)

func TestSweepProgressETA(t *testing.T) {
	p := obs.SweepProgress{Done: 2, Total: 4, Elapsed: 2 * time.Second}
	if eta := p.ETA(); eta != 2*time.Second {
		t.Errorf("ETA() = %v, want 2s", eta)
	}
	if eta := (obs.SweepProgress{Done: 0, Total: 4}).ETA(); eta != 0 {
		t.Errorf("ETA() with no finished probes = %v, want 0", eta)
	}
	if eta := (obs.SweepProgress{Done: 4, Total: 4, Elapsed: time.Second}).ETA(); eta != 0 {
		t.Errorf("ETA() when done = %v, want 0", eta)
	}
}

func TestSweepProgressString(t *testing.T) {
	p := obs.SweepProgress{Done: 3, Total: 7, InFlight: 2,
		Elapsed: 1500 * time.Millisecond, SlowestProbe: 400 * time.Millisecond}
	s := p.String()
	for _, want := range []string{"probes 3/7", "2 in flight", "elapsed", "eta", "slowest"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestStatusLine(t *testing.T) {
	var buf bytes.Buffer
	sl := obs.NewStatusLine(&buf)
	sl.SetInterval(0)
	sl.Update(obs.SweepProgress{Done: 1, Total: 2, Elapsed: time.Second})
	sl.Update(obs.SweepProgress{Done: 2, Total: 2, Elapsed: 2 * time.Second})
	out := buf.String()
	if strings.Count(out, "\r") != 2 {
		t.Errorf("want two \\r-prefixed renders, got %q", out)
	}
	if !strings.Contains(out, "probes 2/2") {
		t.Errorf("final report missing: %q", out)
	}
	if strings.Contains(out, "\n") {
		t.Errorf("newline before Finish: %q", out)
	}
	sl.Finish()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Errorf("Finish did not terminate the line: %q", buf.String())
	}
	n := buf.Len()
	sl.Finish()
	if buf.Len() != n {
		t.Error("second Finish wrote again")
	}
}

// TestStatusLineThrottle: non-final updates inside the interval are
// dropped; the final report always renders.
func TestStatusLineThrottle(t *testing.T) {
	var buf bytes.Buffer
	sl := obs.NewStatusLine(&buf)
	sl.SetInterval(time.Hour)
	sl.Update(obs.SweepProgress{Done: 1, Total: 3})
	sl.Update(obs.SweepProgress{Done: 2, Total: 3}) // throttled
	if got := strings.Count(buf.String(), "\r"); got != 1 {
		t.Errorf("throttle let %d renders through, want 1", got)
	}
	sl.Update(obs.SweepProgress{Done: 3, Total: 3}) // final: never throttled
	if !strings.Contains(buf.String(), "probes 3/3") {
		t.Errorf("final report throttled: %q", buf.String())
	}
}

// TestStatusLinePadsShrinkingLines: a shorter line must blank the tail
// of a longer previous render.
func TestStatusLinePadsShrinkingLines(t *testing.T) {
	var buf bytes.Buffer
	sl := obs.NewStatusLine(&buf)
	sl.SetInterval(0)
	long := obs.SweepProgress{Done: 1, Total: 100, InFlight: 10,
		Elapsed: 90 * time.Minute, SlowestProbe: time.Minute}
	short := obs.SweepProgress{Done: 100, Total: 100}
	sl.Update(long)
	before := buf.Len()
	sl.Update(short)
	written := buf.String()[before:]
	if len(written)-1 < len(long.String()) { // -1 for the leading \r
		t.Errorf("short render %q does not cover the previous %d columns",
			written, len(long.String()))
	}
}
