//go:build race

package obs_test

// raceEnabled is true when the race detector is active; allocation
// assertions are skipped because race instrumentation allocates.
const raceEnabled = true
