// Package scenario compiles versioned, declarative JSON descriptions
// of adversarial-queuing runs into a graph, an engine and an adversary.
//
// A spec names a topology (the builtin graph families and the paper's
// gadget constructions), a scheduling policy (global, or per-edge via
// sim.Config.PolicyFor), an adversary program (paced streams, periodic
// bursts, seeded random (w,r) traffic, temporal phase sequences, or an
// explicit oblivious injection schedule), an initial configuration,
// and a run block (horizon, run mode, observers, post-run checks).
//
// Compilation targets the existing adversary types — Script,
// BurstScript, RandomWR, Replay, Sequence — so every leap-mode
// StaticUntil horizon those types report is preserved: a spec-compiled
// run is eligible for exactly the same batch-advanced windows as its
// hand-wired original, and the differential tests in this package hold
// spec-compiled executions bit-identical (adversary.SameExecution) to
// the hand-wired experiment constructions under all three run modes.
//
// Validation is strict and line-precise: unknown fields are rejected
// at their position in the file, semantic errors cite the offending
// JSON path and line, and adversary parameter errors carry verbatim
// the messages the hand-wired constructors panic with
// (adversary.CheckStream, CheckBurstStream, CheckWindowRate, ...).
//
// Adaptive constructions (the Lemma 3.3 rerouting pumps, the Theorem
// 3.17 cycle) are emitted as replay specs: per Remark 1 of the paper
// the adaptive controller is "only a matter of representation" — the
// actual adversary is an oblivious injection sequence carrying each
// packet's final route, and under a historic policy (FIFO) the replay
// reproduces the adaptive execution buffer for buffer.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the spec format version this package reads and writes.
const Version = 1

// Spec is the root of a scenario file.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Experiment links the spec to the experiment ID (E1, B2, ...)
	// whose hand-wired construction it serializes, if any.
	Experiment string        `json:"experiment,omitempty"`
	Comment    string        `json:"comment,omitempty"`
	Topology   TopologySpec  `json:"topology"`
	Policy     PolicySpec    `json:"policy"`
	Adversary  AdversarySpec `json:"adversary"`
	// Buffer bounds every edge buffer (sim.Config.BufferCap); absent or
	// cap 0 means unbounded, the default.
	Buffer *BufferSpec `json:"buffer,omitempty"`
	// Seeds is the initial configuration, admitted in order at t = 0.
	Seeds []SeedSpec `json:"seeds,omitempty"`
	Run   RunSpec    `json:"run"`
	// Checks are evaluated after the run; a failed check makes the run
	// report (and cmd/scenario run) fail without panicking.
	Checks *ChecksSpec `json:"checks,omitempty"`
}

// TopologySpec names one of the builtin graph families.
//
//	kind        parameters
//	line        n (edges e1..en)
//	ring        n (edges e1..en)
//	complete    n nodes (edges unnamed: use "#<id>" refs)
//	grid        rows, cols (edges unnamed)
//	twopaths    len1, len2 (edges p1_1.., p2_1..)
//	dag         n nodes, m edges, seed (edges unnamed)
//	chain       n, m, stitch — the paper's F^M_n / G_ε gadget chain
//	            (edges a1.., g<k>.e<i>, g<k>.f<i>, e0)
//	ladder      n rails (edges rail1.., cross1.. — the B2 graph)
type TopologySpec struct {
	Kind   string `json:"kind"`
	N      int    `json:"n,omitempty"`
	M      int    `json:"m,omitempty"`
	Rows   int    `json:"rows,omitempty"`
	Cols   int    `json:"cols,omitempty"`
	Len1   int    `json:"len1,omitempty"`
	Len2   int    `json:"len2,omitempty"`
	Stitch bool   `json:"stitch,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// BufferSpec bounds every edge buffer to cap packets and names the
// policy consulted at capacity: "tail" (reject the arrival), "head"
// (evict the oldest), or "ntg" (evict a packet with the fewest
// remaining hops, keeping the arrival unless it is the minimum).
// Cap 0 is the unbounded default and takes no drop policy.
type BufferSpec struct {
	Cap  int    `json:"cap"`
	Drop string `json:"drop,omitempty"`
}

// PolicySpec selects the scheduling policy: Default everywhere, with
// optional per-edge overrides (edge ref → policy name), compiled to
// sim.Config.PolicyFor.
type PolicySpec struct {
	Default string            `json:"default"`
	Edges   map[string]string `json:"edges,omitempty"`
}

// AdversarySpec describes the injection program.
//
//	kind      fields
//	none      —
//	script    streams (paced rate-r streams → adversary.Script)
//	burst     bursts (periodic bursts → adversary.BurstScript)
//	random    random ((w,r) random traffic → adversary.RandomWR)
//	replay    replay (oblivious schedule → adversary.Replay)
//	sequence  phases (temporal phases → adversary.Sequence)
type AdversarySpec struct {
	Kind    string       `json:"kind"`
	Streams []StreamSpec `json:"streams,omitempty"`
	Bursts  []BurstSpec  `json:"bursts,omitempty"`
	Random  *RandomSpec  `json:"random,omitempty"`
	Replay  *ReplaySpec  `json:"replay,omitempty"`
	Phases  []PhaseSpec  `json:"phases,omitempty"`
}

// StreamSpec is one paced injection stream (adversary.Stream). Rate is
// a rational ("7/10") or decimal ("0.7") string; budget < 0 means
// unbounded. Route entries are edge names, or "#<id>" for unnamed
// edges.
type StreamSpec struct {
	Name   string   `json:"name,omitempty"`
	Start  int64    `json:"start"`
	Rate   string   `json:"rate"`
	Budget int64    `json:"budget"`
	Route  []string `json:"route"`
	Tag    string   `json:"tag,omitempty"`
}

// BurstSpec is one periodic burst stream (adversary.BurstStream):
// every period steps from start, burst packets at once; budget < 0
// means unbounded.
type BurstSpec struct {
	Name   string   `json:"name,omitempty"`
	Start  int64    `json:"start"`
	Period int64    `json:"period"`
	Burst  int64    `json:"burst"`
	Budget int64    `json:"budget"`
	Route  []string `json:"route"`
	Tag    string   `json:"tag,omitempty"`
}

// RandomSpec parameterizes adversary.RandomWR: provably (w,r)-
// compliant random traffic with routes up to maxlen hops, seeded.
// The (w, rate) pair must be admissible: floor(rate·w) >= 1.
type RandomSpec struct {
	W        int64  `json:"w"`
	Rate     string `json:"rate"`
	MaxLen   int    `json:"maxlen"`
	Seed     int64  `json:"seed"`
	Attempts int    `json:"attempts,omitempty"`
}

// ReplaySpec is an explicit oblivious injection schedule
// (adversary.Replay): Routes is a route dictionary, Tags a tag
// dictionary, and Injections a list of run-length-encoded groups.
// Injection order within a step is enqueue order, so groups only merge
// consecutive identical (route, tag) injections.
type ReplaySpec struct {
	Routes     [][]string `json:"routes"`
	Tags       []string   `json:"tags,omitempty"`
	Injections []InjGroup `json:"injections"`
}

// InjGroup is one run-length-encoded injection batch: N packets at
// step T with route Routes[Route], tagged Tags[Tag-1] (Tag 0 =
// untagged). It marshals compactly as the array [t, route, n, tag].
type InjGroup struct {
	T     int64
	Route int
	N     int64
	Tag   int
}

// MarshalJSON implements json.Marshaler ([t, route, n, tag]).
func (gr InjGroup) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%d,%d,%d]", gr.T, gr.Route, gr.N, gr.Tag)), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (gr *InjGroup) UnmarshalJSON(b []byte) error {
	var a []int64
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	if len(a) != 4 {
		return fmt.Errorf("injection group needs [t, route, n, tag], got %d elements", len(a))
	}
	gr.T, gr.Route, gr.N, gr.Tag = a[0], int(a[1]), a[2], int(a[3])
	return nil
}

// PhaseSpec is one temporal phase of a sequence adversary: its inner
// adversary drives injections until the engine clock reaches Until
// (phases advance at the first step with now >= until). Untils must be
// strictly increasing; a phase's inner adversary cannot itself be a
// sequence.
type PhaseSpec struct {
	Name      string        `json:"name,omitempty"`
	Until     int64         `json:"until"`
	Adversary AdversarySpec `json:"adversary"`
}

// SeedSpec seeds N identical packets (route, tag) into the initial
// configuration. N 0 means 1. Seed order is admission order, which
// fixes packet IDs.
type SeedSpec struct {
	Route []string `json:"route"`
	N     int64    `json:"n,omitempty"`
	Tag   string   `json:"tag,omitempty"`
}

// RunSpec is the run block: horizon, run mode and observers.
//
// Modes: "step" (default, per-step observer dispatch), "quiet" (the
// observerless fast path; event observers still fire), "leap"
// (batch-advance provably static windows; results are identical).
//
// Observers: "recorder" (queue-size series), "latency" (end-to-end
// latency stats), "window" (the (w,r) WindowValidator — requires
// Window), "meter" (the obs metrics registry), "sampler" (telemetry
// time series, stride-matched to the recorder; adds latency-quantile
// series when "meter" is also configured), "spans" (per-packet causal
// spans with per-edge residence histograms).
type RunSpec struct {
	Steps     int64       `json:"steps"`
	Mode      string      `json:"mode,omitempty"`
	Observers []string    `json:"observers,omitempty"`
	Window    *WindowSpec `json:"window,omitempty"`
}

// WindowSpec is the (w,r) pair the "window" observer validates
// against.
type WindowSpec struct {
	W    int64  `json:"w"`
	Rate string `json:"rate"`
}

// ChecksSpec lists post-run assertions. Zero-valued fields are not
// checked. MaxBacklog needs the "recorder" observer (peak backlog);
// WindowCompliant needs the "window" observer; MaxDropped needs a
// bounded buffer block (an unbounded engine never drops).
type ChecksSpec struct {
	Conservation    bool  `json:"conservation,omitempty"`
	Drained         bool  `json:"drained,omitempty"`
	MinInjected     int64 `json:"min_injected,omitempty"`
	MaxResidence    int64 `json:"max_residence,omitempty"`
	MaxBacklog      int64 `json:"max_backlog,omitempty"`
	WindowCompliant bool  `json:"window_compliant,omitempty"`
	// MaxDropped bounds total drops; use -1 to assert zero drops
	// exactly (0 means "not checked").
	MaxDropped int64 `json:"max_dropped,omitempty"`
}

// Encode renders the spec in the canonical on-disk form: two-space
// indented JSON with a trailing newline, except that arrays holding
// only scalars (routes, injection groups) stay on one line — replay
// specs carry tens of thousands of those, and the standard indenter
// would put every element on its own line. Parse(Encode(s)) == s for
// every valid spec, and Encode is the byte-level fixed point the fuzz
// harness enforces.
func (s *Spec) Encode() []byte {
	flat, err := json.Marshal(s)
	if err != nil {
		// Spec contains only marshalable fields; this cannot fail.
		panic(fmt.Sprintf("scenario: encode: %v", err))
	}
	var buf bytes.Buffer
	dec := json.NewDecoder(bytes.NewReader(flat))
	dec.UseNumber()
	if err := renderValue(dec, &buf, ""); err != nil {
		panic(fmt.Sprintf("scenario: encode: %v", err))
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// renderValue pretty-prints one JSON value from the token stream,
// keeping scalar-only arrays on a single line.
func renderValue(dec *json.Decoder, buf *bytes.Buffer, indent string) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	return renderToken(dec, buf, indent, tok)
}

func renderToken(dec *json.Decoder, buf *bytes.Buffer, indent string, tok json.Token) error {
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			return renderObject(dec, buf, indent)
		case '[':
			return renderArray(dec, buf, indent)
		}
		return fmt.Errorf("unexpected delimiter %v", t)
	default:
		return renderScalar(buf, tok)
	}
}

func renderScalar(buf *bytes.Buffer, tok json.Token) error {
	switch t := tok.(type) {
	case json.Number:
		buf.WriteString(t.String())
		return nil
	default:
		b, err := json.Marshal(tok)
		if err != nil {
			return err
		}
		buf.Write(b)
		return nil
	}
}

func renderObject(dec *json.Decoder, buf *bytes.Buffer, indent string) error {
	if !dec.More() {
		if _, err := dec.Token(); err != nil { // consume '}'
			return err
		}
		buf.WriteString("{}")
		return nil
	}
	buf.WriteString("{\n")
	inner := indent + "  "
	first := true
	for dec.More() {
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		key, err := dec.Token()
		if err != nil {
			return err
		}
		buf.WriteString(inner)
		if err := renderScalar(buf, key); err != nil {
			return err
		}
		buf.WriteString(": ")
		if err := renderValue(dec, buf, inner); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return err
	}
	buf.WriteString("\n" + indent + "}")
	return nil
}

func renderArray(dec *json.Decoder, buf *bytes.Buffer, indent string) error {
	// Buffer the whole array's first-level tokens to decide the layout:
	// all-scalar arrays render on one line, anything nested goes
	// multi-line.
	var elems []json.Token
	scalars := true
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if _, isDelim := tok.(json.Delim); isDelim {
			// Nested value: render the tail eagerly into per-element
			// buffers below; switch to the multi-line path now.
			scalars = false
			elems = append(elems, tok)
			break
		}
		elems = append(elems, tok)
	}
	if scalars {
		if _, err := dec.Token(); err != nil { // consume ']'
			return err
		}
		buf.WriteString("[")
		for i, tok := range elems {
			if i > 0 {
				buf.WriteString(", ")
			}
			if err := renderScalar(buf, tok); err != nil {
				return err
			}
		}
		buf.WriteString("]")
		return nil
	}
	buf.WriteString("[\n")
	inner := indent + "  "
	for i, tok := range elems {
		if i > 0 {
			buf.WriteString(",\n")
		}
		buf.WriteString(inner)
		var err error
		if isDelim(tok) {
			err = renderToken(dec, buf, inner, tok)
		} else {
			err = renderScalar(buf, tok)
		}
		if err != nil {
			return err
		}
	}
	for dec.More() {
		buf.WriteString(",\n")
		buf.WriteString(inner)
		if err := renderValue(dec, buf, inner); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // consume ']'
		return err
	}
	buf.WriteString("\n" + indent + "]")
	return nil
}

func isDelim(tok json.Token) bool {
	_, ok := tok.(json.Delim)
	return ok
}
