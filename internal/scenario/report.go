package scenario

import (
	"fmt"
	"io"
)

// WriteReport renders the run outcome deterministically: no wall-clock
// fields, no map iteration, stable field order — the same spec and the
// same binary produce byte-identical output regardless of worker count
// or machine. cmd/scenario's golden test holds it to that.
func (b *Built) WriteReport(w io.Writer, out Outcome) {
	s := b.Spec
	fmt.Fprintf(w, "scenario %s", s.Name)
	if s.Experiment != "" {
		fmt.Fprintf(w, " (%s)", s.Experiment)
	}
	fmt.Fprintf(w, "\n  topology %s, %d edges; policy %s", s.Topology.Kind, b.Graph.NumEdges(), s.Policy.Default)
	if n := len(s.Policy.Edges); n > 0 {
		fmt.Fprintf(w, " (+%d per-edge overrides)", n)
	}
	fmt.Fprintf(w, "; adversary %s\n", s.Adversary.Kind)
	fmt.Fprintf(w, "  ran %d steps (%s): injected %d, absorbed %d, queued %d, max queue %d\n",
		out.Snap.Now, out.Mode, out.Snap.Injected, out.Snap.Absorbed,
		out.Snap.TotalQueued, out.Snap.MaxQueueLen)
	if s.Buffer != nil && s.Buffer.Cap > 0 {
		fmt.Fprintf(w, "  buffer cap %d (drop %s): dropped %d\n",
			s.Buffer.Cap, b.Engine.Drop().Name(), out.Snap.Dropped)
	}
	fmt.Fprintf(w, "  max residence %d", out.MaxResidence)
	if out.Leaps.Windows > 0 {
		fmt.Fprintf(w, "; leaped %d windows / %d steps", out.Leaps.Windows, out.Leaps.Steps)
	}
	fmt.Fprintln(w)
	if b.Latency != nil {
		st := b.Latency.Stats()
		fmt.Fprintf(w, "  latency: n=%d min=%.0f max=%.0f mean=%.2f\n", b.Latency.Count(), st.Min, st.Max, st.Mean)
	}
	if b.Recorder != nil {
		fmt.Fprintf(w, "  backlog peak %d\n", b.Recorder.PeakTotal())
	}
	if s.Checks != nil {
		if out.OK() {
			fmt.Fprintf(w, "  checks: ok\n")
		} else {
			for _, f := range out.Failures {
				fmt.Fprintf(w, "  check FAILED: %s\n", f)
			}
		}
	}
}
