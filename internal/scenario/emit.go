package scenario

import (
	"fmt"
	"sort"

	"aqt/internal/adversary"
	"aqt/internal/baselines"
	"aqt/internal/core"
	"aqt/internal/expt"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// Emitted pairs a generated spec with the hand-wired engine it
// serializes, already run to Spec.Run.Steps. The differential tests
// build the spec, run it under each mode, and hold the result
// bit-identical (adversary.SameExecution) to Hand.
type Emitted struct {
	ID   string
	Spec *Spec
	// Hand is the original hand-wired construction after its run (the
	// reference execution). Adaptive constructions are recorded and
	// serialized as replay specs per Remark 1 of the paper; Hand is
	// then the recorded adaptive run itself.
	Hand *sim.Engine
}

// EmitIDs lists the scenario IDs Emit understands, in emission order.
func EmitIDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e7", "e8", "e13", "e14", "b2", "h1", "u1", "quickstart"}
}

// Emit reconstructs one hand-wired experiment (quick sizing), runs it,
// and serializes it into a spec. It panics on unknown IDs and on
// constructions that fail to complete — emission is developer tooling,
// not input validation.
func Emit(id string) Emitted {
	var em Emitted
	switch id {
	case "e1":
		em = emitE1()
	case "e2":
		em = emitE2()
	case "e3":
		em = emitE3()
	case "e4":
		em = emitE4()
	case "e5":
		em = emitE5()
	case "e7":
		em = emitE7()
	case "e8":
		em = emitE8()
	case "e13":
		em = emitE13()
	case "e14":
		em = emitE14()
	case "b2":
		em = emitB2()
	case "h1":
		em = emitH1()
	case "u1":
		em = emitU1()
	case "quickstart":
		em = emitQuickstart()
	default:
		panic(fmt.Sprintf("scenario: unknown emit id %q (have %v)", id, EmitIDs()))
	}
	em.ID = id
	if err := em.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: emitted spec %q does not validate: %v", id, err))
	}
	return em
}

// EmitAll emits every known scenario, fanning the independent
// constructions across a worker pool (each emitter owns its graph and
// engine). Results keep EmitIDs order.
func EmitAll() []Emitted {
	res := stability.SweepGrid(EmitIDs(), Emit, 0)
	out := make([]Emitted, len(res))
	for i, gr := range res {
		if gr.Panic != "" {
			panic(fmt.Sprintf("scenario: emit %q panicked: %s", gr.Point, gr.Panic))
		}
		out[i] = gr.Value
	}
	return out
}

// edgeNamer maps edge IDs back to spec refs: the registered name when
// the builder named the edge, "#<id>" otherwise. EdgeName cannot be
// used here — it synthesizes "e<id>" fallbacks that can collide with
// real names; only the registry round-trips.
func edgeNamer(g *graph.Graph) func(graph.EdgeID) string {
	byID := make(map[graph.EdgeID]string)
	for _, name := range g.NamedEdges() {
		byID[g.EdgeByName(name)] = name
	}
	return func(eid graph.EdgeID) string {
		if n, ok := byID[eid]; ok {
			return n
		}
		return fmt.Sprintf("#%d", eid)
	}
}

func routeRefs(name func(graph.EdgeID) string, route []graph.EdgeID) []string {
	refs := make([]string, len(route))
	for i, eid := range route {
		refs[i] = name(eid)
	}
	return refs
}

func routeKey(refs []string) string { return fmt.Sprint(refs) }

// seedsFromRecording converts a recording's step-0 entries (the
// initial configuration, final routes included) into seed specs,
// merging only consecutive identical (route, tag) entries: seed order
// is admission order and fixes packet IDs.
func seedsFromRecording(name func(graph.EdgeID) string, rec []adversary.RecordedInjection) []SeedSpec {
	var seeds []SeedSpec
	for _, ri := range rec {
		if ri.Step != 0 {
			continue
		}
		refs := routeRefs(name, ri.Route)
		if n := len(seeds); n > 0 && seeds[n-1].Tag == ri.Tag &&
			routeKey(seeds[n-1].Route) == routeKey(refs) {
			seeds[n-1].N++
			continue
		}
		seeds = append(seeds, SeedSpec{Route: refs, N: 1, Tag: ri.Tag})
	}
	return seeds
}

// seedsFromEngine serializes an unrun engine's initial configuration:
// every queued packet, in admission (ID) order, with its current —
// possibly already extended — route.
func seedsFromEngine(name func(graph.EdgeID) string, e *sim.Engine) []SeedSpec {
	var pkts []*packet.Packet
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) { pkts = append(pkts, p) })
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].ID < pkts[j].ID })
	rec := make([]adversary.RecordedInjection, len(pkts))
	for i, p := range pkts {
		rec[i] = adversary.RecordedInjection{Step: 0, Route: p.Route, Tag: p.Tag}
	}
	return seedsFromRecording(name, rec)
}

// replayFromRecording converts a recording's injected packets (steps
// >= 1, final routes) into the dictionary-compressed replay block.
// Groups merge only consecutive identical (step, route, tag) packets,
// preserving within-step enqueue order.
func replayFromRecording(name func(graph.EdgeID) string, rec []adversary.RecordedInjection) *ReplaySpec {
	rs := &ReplaySpec{}
	routeIdx := map[string]int{}
	tagIdx := map[string]int{} // 1-based; 0 = untagged
	for _, ri := range rec {
		if ri.Step == 0 {
			continue
		}
		refs := routeRefs(name, ri.Route)
		key := routeKey(refs)
		rid, ok := routeIdx[key]
		if !ok {
			rid = len(rs.Routes)
			routeIdx[key] = rid
			rs.Routes = append(rs.Routes, refs)
		}
		tid := 0
		if ri.Tag != "" {
			tid, ok = tagIdx[ri.Tag]
			if !ok {
				tid = len(rs.Tags) + 1
				tagIdx[ri.Tag] = tid
				rs.Tags = append(rs.Tags, ri.Tag)
			}
		}
		if n := len(rs.Injections); n > 0 {
			last := &rs.Injections[n-1]
			if last.T == ri.Step && last.Route == rid && last.Tag == tid {
				last.N++
				continue
			}
		}
		rs.Injections = append(rs.Injections, InjGroup{T: ri.Step, Route: rid, N: 1, Tag: tid})
	}
	return rs
}

// recordedReplaySpec assembles the spec shared by all replay-emitted
// constructions.
func recordedReplaySpec(name, experiment, comment string, topo TopologySpec,
	namer func(graph.EdgeID) string, rec []adversary.RecordedInjection, steps int64, mode string) *Spec {
	return &Spec{
		Version:    Version,
		Name:       name,
		Experiment: experiment,
		Comment:    comment,
		Topology:   topo,
		Policy:     PolicySpec{Default: "FIFO"},
		Adversary:  AdversarySpec{Kind: "replay", Replay: replayFromRecording(namer, rec)},
		Seeds:      seedsFromRecording(namer, rec),
		Run:        RunSpec{Steps: steps, Mode: mode},
		Checks:     &ChecksSpec{Conservation: true, MinInjected: 1},
	}
}

// e1Params is the cheap Theorem 3.17 point used by the emitted cycle
// (B3's zoo point): r = 3/4 at depth 6 gives S0 = 192, so one full
// cycle stays affordable in tests and smoke runs.
func e1Params() core.Params { return core.ParamsFor(rational.New(3, 4), 6) }

// emitE1 records one full Theorem 3.17 adversary cycle (bootstrap →
// pumps → drain → stitch) on G_eps and serializes it as an oblivious
// replay (Remark 1).
func emitE1() Emitted {
	rec := adversary.NewScheduleRecorder()
	p := e1Params()
	ins := core.NewInstability(rational.Rat{}, core.InstabilityOptions{
		MarginM:   rational.New(3, 2),
		Params:    &p,
		Observers: []sim.Observer{rec},
	})
	if _, ok := ins.RunCycle(); !ok {
		panic("scenario: emit e1: cycle did not complete within its step cap")
	}
	namer := edgeNamer(ins.Chain.G)
	spec := recordedReplaySpec("e1-theorem317-cycle", "E1",
		"One Theorem 3.17 adversary cycle on G_eps (r = 3/4, n = 6), recorded and replayed obliviously with final routes (Remark 1).",
		TopologySpec{Kind: "chain", N: p.N, M: ins.M, Stitch: true},
		namer, rec.Finish(), ins.Engine.Now(), ModeLeap)
	return Emitted{Spec: spec, Hand: ins.Engine}
}

// emitE2 records the Lemma 3.6 pump at S = S0 (E2's quick sizing),
// including the Lemma 3.3 rerouting, and serializes the final-route
// schedule.
func emitE2() Emitted {
	p := e1Params()
	s := p.S0
	c := gadget.NewChain(p.N, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	rec := adversary.NewScheduleRecorder()
	e.AddObserver(rec)
	rr := adversary.NewRerouter(p.R)
	e.AddObserver(rr)
	c.SeedInvariant(e, 1, int(s))
	var rep core.PumpReport
	seq := adversary.NewSequence(core.PumpPhase(p, c, 1, rr, &rep))
	e.SetAdversary(seq)
	if !e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s) {
		panic("scenario: emit e2: pump did not finish")
	}
	spec := recordedReplaySpec("e2-lemma36-pump", "E2",
		"The Lemma 3.6 gadget pump C(S,F) -> C(S',F') at S = S0 (r = 3/4, n = 6), recorded under the Rerouter and replayed with final routes.",
		TopologySpec{Kind: "chain", N: p.N, M: 2},
		edgeNamer(c.G), rec.Finish(), e.Now(), ModeQuiet)
	return Emitted{Spec: spec, Hand: e}
}

// emitE3 records the Lemma 3.15 bootstrap from a single buffer.
func emitE3() Emitted {
	p := e1Params()
	q2s := 2 * p.S0
	c := gadget.NewChain(p.N, 1, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	rec := adversary.NewScheduleRecorder()
	e.AddObserver(rec)
	e.SeedN(int(q2s), packet.Injection{Route: []graph.EdgeID{c.Ingress(1)}})
	var rep core.BootstrapReport
	seq := adversary.NewSequence(core.BootstrapPhase(p, c, 1, nil, &rep))
	e.SetAdversary(seq)
	if !e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*q2s) {
		panic("scenario: emit e3: bootstrap did not finish")
	}
	spec := recordedReplaySpec("e3-lemma315-bootstrap", "E3",
		"The Lemma 3.15 bootstrap: 2S single-edge packets at the ingress become C(S',F), S' >= S(1+eps).",
		TopologySpec{Kind: "chain", N: p.N, M: 1},
		edgeNamer(c.G), rec.Finish(), e.Now(), ModeQuiet)
	return Emitted{Spec: spec, Hand: e}
}

// emitE4 records the Lemma 3.16 stitch at S = 1000.
func emitE4() Emitted {
	p := core.Solve(rational.New(1, 5))
	s := int64(1000)
	c := gadget.NewChain(p.N, 2, true)
	e := sim.New(c.G, policy.FIFO{}, nil)
	rec := adversary.NewScheduleRecorder()
	e.AddObserver(rec)
	e.SeedN(int(s), packet.Injection{Route: []graph.EdgeID{c.Egress(2)}})
	var rep core.StitchReport
	seq := adversary.NewSequence(core.StitchPhase(p, c, &rep))
	e.SetAdversary(seq)
	if !e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s) {
		panic("scenario: emit e4: stitch did not finish")
	}
	spec := recordedReplaySpec("e4-lemma316-stitch", "E4",
		"The Lemma 3.16 stitch: S old packets at the chain egress are replaced by r^3*S fresh packets at the next ingress via the stitch edge e0.",
		TopologySpec{Kind: "chain", N: p.N, M: 2, Stitch: true},
		edgeNamer(c.G), rec.Finish(), e.Now(), ModeQuiet)
	return Emitted{Spec: spec, Hand: e}
}

// emitE5 records the M = 2 chain pump with its final drain
// (Lemma 3.13's shortest instance).
func emitE5() Emitted {
	p := e1Params()
	s := 2 * p.S0
	c := gadget.NewChain(p.N, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	rec := adversary.NewScheduleRecorder()
	e.AddObserver(rec)
	c.SeedInvariant(e, 1, int(s))
	var rep core.PumpReport
	var drain core.DrainReport
	seq := adversary.NewSequence(
		core.PumpPhase(p, c, 1, nil, &rep),
		core.DrainPhase(p, c, &drain),
	)
	e.SetAdversary(seq)
	if !e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 512*s) {
		panic("scenario: emit e5: chain pump did not finish")
	}
	spec := recordedReplaySpec("e5-lemma313-chainpump", "E5",
		"The Lemma 3.13 chain pump through M = 2 gadgets followed by the drain to the chain egress.",
		TopologySpec{Kind: "chain", N: p.N, M: 2},
		edgeNamer(c.G), rec.Finish(), e.Now(), ModeQuiet)
	return Emitted{Spec: spec, Hand: e}
}

// emitE7 serializes one cell of the Theorem 4.1 greedy-stability grid
// parametrically (the adversary is a seeded generator, so the spec
// stays tiny and regenerates the identical traffic).
func emitE7() Emitted {
	const d = 2
	w := int64(20 * (d + 1))
	rate := stability.GreedyRateBound(d)
	g := graph.Complete(d + 2)
	adv := adversary.NewRandomWR(g, w, rate, d, int64(17*d)+3)
	e := sim.New(g, policy.FIFO{}, adv)
	steps := int64(2500)
	e.RunQuiet(steps)
	spec := &Spec{
		Version:    Version,
		Name:       "e7-theorem41-greedy",
		Experiment: "E7",
		Comment:    "Theorem 4.1 greedy stability: FIFO on K_4 under random (w, 1/(d+1)) traffic; residence bounded by floor(w*r), window-validated.",
		Topology:   TopologySpec{Kind: "complete", N: d + 2},
		Policy:     PolicySpec{Default: "FIFO"},
		Adversary: AdversarySpec{Kind: "random", Random: &RandomSpec{
			W: w, Rate: rate.String(), MaxLen: d, Seed: int64(17*d) + 3}},
		Run: RunSpec{Steps: steps, Mode: ModeQuiet,
			Observers: []string{ObsWindow},
			Window:    &WindowSpec{W: w, Rate: rate.String()}},
		Checks: &ChecksSpec{
			MinInjected:     1,
			MaxResidence:    stability.ResidenceBound(w, rate),
			WindowCompliant: true,
		},
	}
	return Emitted{Spec: spec, Hand: e}
}

// emitE8 serializes one cell of the Theorem 4.3 time-priority grid:
// LIS at the higher rate 1/d.
func emitE8() Emitted {
	const d = 2
	w := int64(20 * d)
	rate := stability.TimePriorityRateBound(d)
	g := graph.Complete(d + 2)
	adv := adversary.NewRandomWR(g, w, rate, d, int64(29*d)+7)
	e := sim.New(g, policy.LIS{}, adv)
	steps := int64(2500)
	e.RunQuiet(steps)
	spec := &Spec{
		Version:    Version,
		Name:       "e8-theorem43-timepriority",
		Experiment: "E8",
		Comment:    "Theorem 4.3 time-priority stability: LIS on K_4 at the higher rate r = 1/d with residence bounded by floor(w*r).",
		Topology:   TopologySpec{Kind: "complete", N: d + 2},
		Policy:     PolicySpec{Default: "LIS"},
		Adversary: AdversarySpec{Kind: "random", Random: &RandomSpec{
			W: w, Rate: rate.String(), MaxLen: d, Seed: int64(29*d) + 7}},
		Run: RunSpec{Steps: steps, Mode: ModeQuiet},
		Checks: &ChecksSpec{
			MinInjected:  1,
			MaxResidence: stability.ResidenceBound(w, rate),
		},
	}
	return Emitted{Spec: spec, Hand: e}
}

// emitE13 records one near-half pump (E13's eps = 1/4 row) and replays
// it under leap mode.
func emitE13() Emitted {
	p := e1Params()
	s := 4 * p.S0
	c := gadget.NewChain(p.N, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	rec := adversary.NewScheduleRecorder()
	e.AddObserver(rec)
	c.SeedInvariant(e, 1, int(s))
	var rep core.PumpReport
	seq := adversary.NewSequence(core.PumpPhase(p, c, 1, nil, &rep))
	e.SetAdversary(seq)
	if !e.RunLeapUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s+64) {
		panic("scenario: emit e13: pump did not finish")
	}
	spec := recordedReplaySpec("e13-nearhalf-pump", "E13",
		"One Lemma 3.6 pump at r = 1/2 + 1/4 and S = 4*S0 (E13's sizing at the affordable depth-6 point): growth persists above one half.",
		TopologySpec{Kind: "chain", N: p.N, M: 2},
		edgeNamer(c.G), rec.Finish(), e.Now(), ModeLeap)
	return Emitted{Spec: spec, Hand: e}
}

// emitE14 serializes one bounded-buffer goodput cell (E14's drop-tail
// point): periodic bursts of b = 6 packets into cap-3 drop-tail
// buffers on a line. Only the first buffer ever overflows — downstream
// edges receive at most one packet per step — so exactly b - cap = 3
// packets drop per burst, the Miller–Patt-Shamir–Rosenbaum loss
// pattern E14 sweeps across capacities.
func emitE14() Emitted {
	g := graph.Line(4)
	const cap, burst, nBursts = 3, int64(6), int64(10)
	bs := adversary.BurstStream{
		Name: "burst", Start: 1, Period: 12, Burst: burst, Budget: nBursts * burst,
		Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")},
	}
	e := sim.NewWithConfig(g, policy.FIFO{}, adversary.NewBurstScript(bs),
		sim.Config{BufferCap: cap, Drop: sim.DropTail{}})
	steps := int64(240)
	e.Run(steps)
	spec := &Spec{
		Version:    Version,
		Name:       "e14-bounded-droptail",
		Experiment: "E14",
		Comment:    "Bounded buffers (Miller, Patt-Shamir, Rosenbaum 2019): periodic 6-packet bursts into cap-3 drop-tail buffers on a line drop exactly burst - cap = 3 packets per burst, all at the first edge.",
		Topology:   TopologySpec{Kind: "line", N: 4},
		Policy:     PolicySpec{Default: "FIFO"},
		Adversary: AdversarySpec{Kind: "burst", Bursts: []BurstSpec{{
			Name: "burst", Start: 1, Period: 12, Burst: burst, Budget: nBursts * burst,
			Route: []string{"e1", "e2", "e3"}}}},
		Buffer: &BufferSpec{Cap: cap, Drop: "tail"},
		Run:    RunSpec{Steps: steps, Mode: ModeStep},
		Checks: &ChecksSpec{Conservation: true, MinInjected: 1, Drained: true,
			MaxDropped: nBursts * (burst - cap)},
	}
	return Emitted{Spec: spec, Hand: e}
}

// emitB2 serializes the NTG starvation ladder (B2's r = 3/5 NTG cell)
// declaratively: cross-traffic script plus the aged convoy as seeds.
func emitB2() Emitted {
	const l, k = 6, 100
	rate := rational.New(3, 5)
	steps := int64(1000)
	sc := baselines.LadderScenario{L: l, K: k, CrossRate: rate, Steps: steps}
	e := sc.Build(policy.NTG{})
	e.Run(steps)

	streams := make([]StreamSpec, l)
	railRoute := make([]string, l)
	for i := 1; i <= l; i++ {
		railRoute[i-1] = fmt.Sprintf("rail%d", i)
		streams[i-1] = StreamSpec{
			Name:  fmt.Sprintf("cross%d", i),
			Start: 1, Rate: rate.String(), Budget: -1,
			Route: []string{fmt.Sprintf("cross%d", i), fmt.Sprintf("rail%d", i)},
			Tag:   "cross",
		}
	}
	spec := &Spec{
		Version:    Version,
		Name:       "b2-ntg-starvation",
		Experiment: "B2",
		Comment:    "The NTG starvation ladder (mechanism of Borodin et al.): continuous crossing traffic at r = 3/5 starves an aged convoy of 100 long-route packets.",
		Topology:   TopologySpec{Kind: "ladder", N: l},
		Policy:     PolicySpec{Default: "NTG"},
		Adversary:  AdversarySpec{Kind: "script", Streams: streams},
		Seeds:      []SeedSpec{{Route: railRoute, N: k, Tag: "convoy"}},
		Run:        RunSpec{Steps: steps, Mode: ModeStep},
		Checks:     &ChecksSpec{Conservation: true, MinInjected: 1},
	}
	return Emitted{Spec: spec, Hand: e}
}

// emitH1 serializes the heterogeneous pump (H1's defused row)
// declaratively: the frozen Lemma 3.6 script plus a per-edge policy
// map switching the target gadget's e'-path to LIS.
func emitH1() Emitted {
	p := e1Params()
	s := p.S0
	c, e := expt.HeteroPumpEngine(p, s, true)
	namer := edgeNamer(c.G)
	seeds := seedsFromEngine(namer, e)
	steps := 2*s + int64(p.N)
	e.RunQuiet(steps)

	edges := make(map[string]string, p.N)
	for _, eid := range c.EPath(2) {
		edges[namer(eid)] = "LIS"
	}
	streams := make([]StreamSpec, 0, p.N+2)
	for i := 1; i <= p.N; i++ {
		streams = append(streams, StreamSpec{
			Name:  fmt.Sprintf("short%d", i),
			Start: int64(i), Rate: p.R.String(),
			Budget: p.R.FloorMulInt(p.Ti(s, i) + 1),
			Route:  []string{namer(c.EPath(2)[i-1])},
		})
	}
	long := append(append([]graph.EdgeID{}, c.LongRoute(1)...), c.FPath(2)...)
	long = append(long, c.Egress(2))
	streams = append(streams, StreamSpec{
		Name: "long", Start: 1, Rate: p.R.String(),
		Budget: p.R.FloorMulInt(s), Route: routeRefs(namer, long),
	})
	tail := append([]graph.EdgeID{c.Ingress(2)}, c.FPath(2)...)
	tail = append(tail, c.Egress(2))
	streams = append(streams, StreamSpec{
		Name: "tail", Start: s + int64(p.N) + 1, Rate: p.R.String(),
		Budget: p.X(s), Route: routeRefs(namer, tail),
	})
	spec := &Spec{
		Version:    Version,
		Name:       "h1-hetero-defused",
		Experiment: "H1",
		Comment:    "The frozen Lemma 3.6 pump with the target gadget's e'-path switched to LIS: a single heterogeneous pipeline defuses the FIFO instability ([15] direction).",
		Topology:   TopologySpec{Kind: "chain", N: p.N, M: 2},
		Policy:     PolicySpec{Default: "FIFO", Edges: edges},
		Adversary:  AdversarySpec{Kind: "script", Streams: streams},
		Seeds:      seeds,
		Run:        RunSpec{Steps: steps, Mode: ModeQuiet},
		Checks:     &ChecksSpec{Conservation: true, MinInjected: 1},
	}
	return Emitted{Spec: spec, Hand: e}
}

// emitU1 serializes one universal-stability cell: LIS on ring(8) under
// heavy random (w, 9/10) traffic, run under leap mode.
func emitU1() Emitted {
	g := graph.Ring(8)
	w := int64(40)
	rate := rational.New(9, 10)
	adv := adversary.NewRandomWR(g, w, rate, 3, 97)
	e := sim.New(g, policy.LIS{}, adv)
	steps := int64(5000)
	e.RunLeap(steps)
	spec := &Spec{
		Version:    Version,
		Name:       "u1-universal-lis",
		Experiment: "U1",
		Comment:    "Universal stability smoke: LIS on ring(8) stays bounded under random (w, 9/10) traffic — far above the 1/2 + eps at which FIFO diverges on G_eps.",
		Topology:   TopologySpec{Kind: "ring", N: 8},
		Policy:     PolicySpec{Default: "LIS"},
		Adversary: AdversarySpec{Kind: "random", Random: &RandomSpec{
			W: w, Rate: rate.String(), MaxLen: 3, Seed: 97}},
		Run: RunSpec{Steps: steps, Mode: ModeLeap,
			Observers: []string{ObsRecorder}},
		Checks: &ChecksSpec{Conservation: true, MinInjected: 1},
	}
	return Emitted{Spec: spec, Hand: e}
}

// emitQuickstart is the hand-authored tour spec: a two-phase sequence
// (periodic bursts, then paced streams) on a ring, exercising the
// sequence compiler end to end. The hand engine mirrors exactly what
// the compiler builds.
func emitQuickstart() Emitted {
	g := graph.Ring(6)
	burst := adversary.BurstStream{
		Name: "warmup", Start: 5, Period: 20, Burst: 3, Budget: 30,
		Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")},
		Tag:   "burst",
	}
	stream := adversary.Stream{
		Name: "paced", Start: 201, Rate: rational.New(2, 5), Budget: 120,
		Route: []graph.EdgeID{g.MustEdge("e4"), g.MustEdge("e5"), g.MustEdge("e6")},
		Tag:   "paced",
	}
	h1, h2 := int64(199), int64(599)
	seq := adversary.NewSequence(
		adversary.Phase{
			Name:  "warmup",
			Enter: func(*sim.Engine) sim.Adversary { return adversary.NewBurstScript(burst) },
			Done:  func(e *sim.Engine) bool { return e.Now() >= 200 },
			Until: &h1,
		},
		adversary.Phase{
			Name:  "paced",
			Enter: func(*sim.Engine) sim.Adversary { return adversary.NewScript(stream) },
			Done:  func(e *sim.Engine) bool { return e.Now() >= 600 },
			Until: &h2,
		},
	)
	e := sim.New(g, policy.FIFO{}, seq)
	steps := int64(600)
	e.RunLeap(steps)
	spec := &Spec{
		Version:  Version,
		Name:     "quickstart-two-phase",
		Comment:  "Hand-authored tour of the spec format: a two-phase sequence (periodic bursts, then a paced stream) on ring(6), leap mode, recorder and latency observers.",
		Topology: TopologySpec{Kind: "ring", N: 6},
		Policy:   PolicySpec{Default: "FIFO"},
		Adversary: AdversarySpec{Kind: "sequence", Phases: []PhaseSpec{
			{Name: "warmup", Until: 200, Adversary: AdversarySpec{Kind: "burst", Bursts: []BurstSpec{{
				Name: "warmup", Start: 5, Period: 20, Burst: 3, Budget: 30,
				Route: []string{"e1", "e2", "e3"}, Tag: "burst"}}}},
			{Name: "paced", Until: 600, Adversary: AdversarySpec{Kind: "script", Streams: []StreamSpec{{
				Name: "paced", Start: 201, Rate: "2/5", Budget: 120,
				Route: []string{"e4", "e5", "e6"}, Tag: "paced"}}}},
		}},
		Run: RunSpec{Steps: steps, Mode: ModeLeap,
			Observers: []string{ObsRecorder, ObsLatency}},
		Checks: &ChecksSpec{Conservation: true, MinInjected: 1},
	}
	return Emitted{Spec: spec, Hand: e}
}
