package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite checkpoint golden files")

// TestCheckpointGolden pins the checkpoint wire format byte-for-byte:
// two corpus scenarios — quickstart (sequence/script/burst adversary,
// recorder + latency) and e14 (bounded drop-tail with real drops) —
// run to a fixed step and encoded. Any change to the encoding shows up
// here first and forces a deliberate decision: bump CheckpointVersion
// (and sim.CheckpointVersion if the engine document changed) or fix
// the regression. Regenerate with `go test ./internal/scenario -run
// TestCheckpointGolden -update`.
func TestCheckpointGolden(t *testing.T) {
	cases := []struct {
		file string
		k    int64
	}{
		{"quickstart.json", 123},
		{"e14.json", 120},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			base := parseSpecFile(t, filepath.Join("..", "..", "scenarios", tc.file))
			b := buildFresh(t, base)
			b.Engine.Run(tc.k)
			cp, err := b.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			got := cp.Encode()
			golden := filepath.Join("testdata", fmt.Sprintf("checkpoint_%s.golden", base.Name))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("checkpoint encoding changed for %s at k=%d.\n"+
					"If intentional, bump the checkpoint version and regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
					tc.file, tc.k, got, want)
			}
			// The golden itself must decode and restore.
			cp2, err := DecodeCheckpoint(golden, want)
			if err != nil {
				t.Fatalf("golden no longer decodes: %v", err)
			}
			fresh := buildFresh(t, base)
			if err := fresh.Restore(cp2); err != nil {
				t.Fatalf("golden no longer restores: %v", err)
			}
		})
	}
}
