package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/sim"
)

// Load reads and fully validates a scenario file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(filepath.Base(path), data)
}

// Parse decodes and fully validates a spec. file labels error messages
// ("" for anonymous input). Every rejection is an *Error carrying the
// 1-based line and JSON path of the offending value: unknown fields
// are caught at their position, type mismatches via the decoder's byte
// offset, and semantic violations via the path map recorded during the
// strict walk.
func Parse(file string, data []byte) (*Spec, error) {
	lines, err := strictCheck(file, data, reflect.TypeOf(Spec{}))
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		li := newLineIndex(data)
		switch e := err.(type) {
		case *json.UnmarshalTypeError:
			return nil, &Error{File: file, Line: li.line(e.Offset), Path: e.Field,
				Msg: fmt.Sprintf("cannot decode %s into %s", e.Value, e.Type)}
		case *json.SyntaxError:
			return nil, &Error{File: file, Line: li.line(e.Offset), Msg: e.Error()}
		}
		return nil, &Error{File: file, Line: 1, Msg: err.Error()}
	}
	if _, err := compile(ctx{file: file, lines: lines}, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Built is a compiled, instantiated scenario: graph, engine (policy
// table applied, adversary installed, observers attached, initial
// configuration seeded) — one step away from running.
type Built struct {
	Spec   *Spec
	Graph  *graph.Graph
	Engine *sim.Engine

	// Observers requested by the run block (nil when absent).
	Recorder *sim.Recorder
	Latency  *sim.LatencyObserver
	Window   *adversary.WindowValidator
	Meter    *obs.Meter
	Sampler  *obs.Sampler
	Spans    *obs.SpanTracer
}

// Build validates the spec and instantiates it. Observers are attached
// before seeding, so validators and recorders see the initial
// configuration, matching the hand-wired experiment order.
func Build(s *Spec) (*Built, error) {
	return build(ctx{}, s)
}

// BuildFile is Build with error messages positioned against the
// original file (as returned by a prior Parse of the same bytes).
func BuildFile(path string) (*Built, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file := filepath.Base(path)
	s, err := Parse(file, data)
	if err != nil {
		return nil, err
	}
	return build(ctx{file: file}, s)
}

func build(c ctx, s *Spec) (*Built, error) {
	comp, err := compile(c, s)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{BufferCap: comp.bufCap, Drop: comp.drop}
	if len(comp.perEdge) > 0 {
		perEdge := comp.perEdge
		// PolicyFor returning nil falls back to the default policy.
		cfg.PolicyFor = func(eid graph.EdgeID) policy.Policy { return perEdge[eid] }
	}
	var adv sim.Adversary
	if comp.makeAdv != nil {
		adv = comp.makeAdv()
	}
	e := sim.NewWithConfig(comp.g, comp.pol, adv, cfg)
	b := &Built{Spec: s, Graph: comp.g, Engine: e}
	for _, name := range s.Run.Observers {
		switch name {
		case ObsRecorder:
			b.Recorder = sim.NewRecorder(recorderStride(s.Run.Steps))
			e.AddObserver(b.Recorder)
		case ObsLatency:
			b.Latency = &sim.LatencyObserver{}
			e.AddObserver(b.Latency)
		case ObsWindow:
			b.Window = adversary.NewWindowValidator(comp.winW, comp.winRate)
			e.AddObserver(b.Window)
		case ObsMeter:
			b.Meter = obs.NewMeter(nil)
			e.AddObserver(b.Meter)
		}
	}
	// Telemetry observers attach in a second pass: the sampler links to
	// the meter (latency-quantile series) regardless of the order the
	// spec listed them in.
	for _, name := range s.Run.Observers {
		switch name {
		case ObsSampler:
			b.Sampler = obs.NewSampler(obs.SamplerConfig{
				Every: recorderStride(s.Run.Steps), Meter: b.Meter})
			b.Sampler.Attach(e)
		case ObsSpans:
			b.Spans = obs.NewSpanTracer(obs.SpanConfig{})
			b.Spans.Attach(e)
		}
	}
	for _, inj := range comp.seeds {
		e.Seed(inj)
	}
	return b, nil
}

// recorderStride matches cmd/aqtsim's sizing: ~512 samples per run.
func recorderStride(steps int64) int64 {
	if s := steps / 512; s > 1 {
		return s
	}
	return 1
}

// Outcome is the deterministic result of running a built scenario:
// everything here is reproducible bit for bit (no wall-clock).
type Outcome struct {
	Mode         string
	Snap         sim.Snapshot
	Leaps        sim.LeapStats
	MaxResidence int64
	// Failures lists the post-run checks that did not hold (empty =
	// all requested checks passed).
	Failures []string
}

// OK reports whether every requested check passed.
func (o Outcome) OK() bool { return len(o.Failures) == 0 }

// Run executes the spec's run block (steps, mode) and evaluates its
// checks. Wall-clock nanoseconds are zeroed out of the snapshot so an
// Outcome is comparable across runs and machines.
func (b *Built) Run() Outcome { return b.RunMode(b.Spec.Run.Mode) }

// RunMode is Run under an explicit mode override ("", "step", "quiet"
// or "leap") — the hook the differential matrix uses to hold one spec
// to the same execution under all three engines paths.
func (b *Built) RunMode(mode string) Outcome {
	steps := b.Spec.Run.Steps
	switch mode {
	case "", ModeStep:
		mode = ModeStep
		b.Engine.Run(steps)
	case ModeQuiet:
		b.Engine.RunQuiet(steps)
	case ModeLeap:
		b.Engine.RunLeap(steps)
	default:
		panic(fmt.Sprintf("scenario: unknown run mode %q", mode))
	}
	out := Outcome{
		Mode:         mode,
		Snap:         b.Engine.Snap(),
		Leaps:        b.Engine.Leaps(),
		MaxResidence: b.Engine.MaxResidence(true),
	}
	out.Snap.Stats.Nanos = 0
	out.Failures = b.evalChecks()
	return out
}

// evalChecks runs the spec's post-run assertions, returning one
// message per failed check.
func (b *Built) evalChecks() []string {
	cs := b.Spec.Checks
	if cs == nil {
		return nil
	}
	var fails []string
	e := b.Engine
	if cs.Conservation {
		if msg := conservationViolation(e); msg != "" {
			fails = append(fails, msg)
		}
	}
	if cs.Drained {
		if q := e.TotalQueued(); q != 0 {
			fails = append(fails, fmt.Sprintf("drained: %d packets still queued", q))
		}
	}
	if cs.MinInjected > 0 {
		if inj := e.Injected(); inj < cs.MinInjected {
			fails = append(fails, fmt.Sprintf("min_injected: %d < %d", inj, cs.MinInjected))
		}
	}
	if cs.MaxResidence > 0 {
		if r := e.MaxResidence(true); r > cs.MaxResidence {
			fails = append(fails, fmt.Sprintf("max_residence: %d > %d", r, cs.MaxResidence))
		}
	}
	if cs.MaxBacklog > 0 && b.Recorder != nil {
		if p := b.Recorder.PeakTotal(); p > cs.MaxBacklog {
			fails = append(fails, fmt.Sprintf("max_backlog: peak %d > %d", p, cs.MaxBacklog))
		}
	}
	if cs.WindowCompliant && b.Window != nil {
		if err := b.Window.CheckAndNotify(e); err != nil {
			fails = append(fails, fmt.Sprintf("window_compliant: %v", err))
		}
	}
	if cs.MaxDropped != 0 {
		limit := cs.MaxDropped
		if limit < 0 { // -1 = exactly zero drops
			limit = 0
		}
		if d := e.Dropped(); d > limit {
			fails = append(fails, fmt.Sprintf("max_dropped: %d > %d", d, limit))
		}
	}
	return fails
}

// conservationViolation converts the engine's conservation panic into
// a check failure message ("" when conservation holds).
func conservationViolation(e *sim.Engine) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	e.CheckConservation()
	return ""
}
