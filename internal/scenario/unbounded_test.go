package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"aqt/internal/adversary"
)

// TestUnboundedEquivalenceCorpus is the bounded-buffer acceptance gate
// for the existing behaviour: the capacity machinery must not perturb
// unbounded executions. For every checked-in scenario and every run
// mode, three engine variants are held bit-identical (snapshot,
// per-edge queue contents, full routes) to a reference built with no
// buffer block:
//
//   - an explicit {"cap": 0} block (the unbounded fast path through
//     tryEnqueue),
//   - a never-full drop-tail buffer at the validation cap (the bounded
//     branch runs on every enqueue but no drop ever fires),
//   - the same with drop-ntg (victim selection wired but unreachable).
//
// Checks are stripped from the variants: the comparison is about the
// execution, and e14's max_dropped requires its buffer block.
func TestUnboundedEquivalenceCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario corpus (run `go run ./cmd/scenario emit`): %v", err)
	}
	variants := []*BufferSpec{
		{Cap: 0},
		{Cap: maxBufferCap, Drop: "tail"},
		{Cap: maxBufferCap, Drop: "ntg"},
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			base, err := Parse(filepath.Base(path), data)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []string{ModeStep, ModeQuiet, ModeLeap} {
				ref, refOut := runVariant(t, base, nil, mode)
				for _, buf := range variants {
					label := fmt.Sprintf("%s/cap=%d,drop=%s", mode, buf.Cap, buf.Drop)
					got, gotOut := runVariant(t, base, buf, mode)
					if d := got.Engine.Dropped(); d != 0 {
						t.Fatalf("%s: dropped %d packets in a never-full buffer", label, d)
					}
					if err := adversary.SameExecution(ref.Engine, got.Engine); err != nil {
						t.Fatalf("%s diverges from the unbounded reference: %v", label, err)
					}
					if !reflect.DeepEqual(refOut.Snap, gotOut.Snap) {
						t.Fatalf("%s snapshot differs:\nref: %+v\ngot: %+v", label, refOut.Snap, gotOut.Snap)
					}
				}
			}
		})
	}
}

// runVariant builds and runs base with its buffer block replaced by
// buf and its checks stripped.
func runVariant(t *testing.T, base *Spec, buf *BufferSpec, mode string) (*Built, Outcome) {
	t.Helper()
	s := *base
	s.Buffer = buf
	s.Checks = nil
	b, err := Build(&s)
	if err != nil {
		t.Fatalf("Build(buffer=%+v): %v", buf, err)
	}
	return b, b.RunMode(mode)
}
