package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Error is a line-precise spec rejection: the file (as passed to
// Parse/Load), the 1-based line, the JSON path of the offending value
// and the message. Semantic messages cite the adversary package's
// Check* errors verbatim, so a spec error reads exactly like the panic
// the equivalent hand-wired constructor would raise.
type Error struct {
	File string
	Line int
	Path string
	Msg  string
}

// Error implements error: "file:line: path: msg".
func (e *Error) Error() string {
	var b strings.Builder
	if e.File != "" {
		fmt.Fprintf(&b, "%s:", e.File)
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, "%d: ", e.Line)
	}
	if e.Path != "" {
		fmt.Fprintf(&b, "%s: ", e.Path)
	}
	b.WriteString(e.Msg)
	return b.String()
}

// lineIndex maps byte offsets to 1-based line numbers.
type lineIndex []int64

func newLineIndex(data []byte) lineIndex {
	starts := lineIndex{0}
	for i, b := range data {
		if b == '\n' {
			starts = append(starts, int64(i+1))
		}
	}
	return starts
}

func (li lineIndex) line(off int64) int {
	// First line start strictly after off, minus one.
	n := sort.Search(len(li), func(i int) bool { return li[i] > off })
	if n < 1 {
		return 1
	}
	return n
}

var unmarshalerType = reflect.TypeOf((*json.Unmarshaler)(nil)).Elem()

// walker walks the JSON token stream against the Spec's type
// structure, recording the line of every path and rejecting unknown
// object fields at their position.
type walker struct {
	dec   *json.Decoder
	lines lineIndex
	file  string
	at    map[string]int // path → line
}

// strictCheck validates data's structure against root's JSON shape:
// well-formed JSON, no unknown fields anywhere, no trailing data. It
// returns the path → line map used to position later semantic errors.
// Types implementing json.Unmarshaler (and interface{} fields) accept
// any well-formed subtree.
func strictCheck(file string, data []byte, root reflect.Type) (map[string]int, error) {
	w := &walker{
		dec:   json.NewDecoder(bytes.NewReader(data)),
		lines: newLineIndex(data),
		file:  file,
		at:    map[string]int{},
	}
	w.dec.UseNumber()
	if err := w.value("", root); err != nil {
		return nil, err
	}
	if _, err := w.dec.Token(); err != io.EOF {
		return nil, &Error{File: file, Line: w.lines.line(w.dec.InputOffset()),
			Msg: "trailing data after the spec object"}
	}
	return w.at, nil
}

func (w *walker) errf(path string, format string, args ...interface{}) error {
	return &Error{File: w.file, Line: w.lines.line(w.dec.InputOffset()),
		Path: path, Msg: fmt.Sprintf(format, args...)}
}

// value consumes one JSON value at path, expected to decode into typ
// (nil = accept anything).
func (w *walker) value(path string, typ reflect.Type) error {
	tok, err := w.dec.Token()
	if err != nil {
		if err == io.EOF {
			return w.errf(path, "unexpected end of file")
		}
		return w.errf(path, "%v", err)
	}
	w.at[path] = w.lines.line(w.dec.InputOffset())
	typ = derefType(typ)
	if d, ok := tok.(json.Delim); ok {
		switch d {
		case '{':
			return w.object(path, typ)
		case '[':
			return w.array(path, typ)
		}
	}
	return nil // scalar; type mismatches surface via json.Unmarshal below
}

// derefType unwraps pointers and turns wildcard-ish types into nil.
func derefType(typ reflect.Type) reflect.Type {
	for typ != nil && typ.Kind() == reflect.Ptr {
		typ = typ.Elem()
	}
	if typ == nil || typ.Kind() == reflect.Interface ||
		reflect.PtrTo(typ).Implements(unmarshalerType) {
		return nil
	}
	return typ
}

func (w *walker) object(path string, typ reflect.Type) error {
	var fields map[string]reflect.Type
	var elem reflect.Type
	if typ != nil {
		switch typ.Kind() {
		case reflect.Struct:
			fields = structFields(typ)
		case reflect.Map:
			elem = typ.Elem()
		}
	}
	// Duplicate keys are rejected here because encoding/json silently
	// resolves them last-wins at Unmarshal time — the first occurrence
	// would vanish without a trace, and the at[path] line map would
	// point semantic errors at the wrong occurrence.
	var seen map[string]bool
	for w.dec.More() {
		tok, err := w.dec.Token()
		if err != nil {
			return w.errf(path, "%v", err)
		}
		key, _ := tok.(string)
		childPath := key
		if path != "" {
			childPath = path + "." + key
		}
		if seen[key] {
			return &Error{File: w.file, Line: w.lines.line(w.dec.InputOffset()),
				Path: childPath, Msg: fmt.Sprintf("duplicate field %q", key)}
		}
		if seen == nil {
			seen = map[string]bool{}
		}
		seen[key] = true
		var childType reflect.Type
		switch {
		case fields != nil:
			ft, ok := fields[key]
			if !ok {
				return &Error{File: w.file, Line: w.lines.line(w.dec.InputOffset()),
					Path: childPath, Msg: fmt.Sprintf("unknown field %q", key)}
			}
			childType = ft
		case elem != nil:
			childType = elem
		}
		if err := w.value(childPath, childType); err != nil {
			return err
		}
	}
	if _, err := w.dec.Token(); err != nil { // consume '}'
		return w.errf(path, "%v", err)
	}
	return nil
}

func (w *walker) array(path string, typ reflect.Type) error {
	var elem reflect.Type
	if typ != nil && (typ.Kind() == reflect.Slice || typ.Kind() == reflect.Array) {
		elem = typ.Elem()
	}
	for i := 0; w.dec.More(); i++ {
		if err := w.value(fmt.Sprintf("%s[%d]", path, i), elem); err != nil {
			return err
		}
	}
	if _, err := w.dec.Token(); err != nil { // consume ']'
		return w.errf(path, "%v", err)
	}
	return nil
}

var fieldCache = map[reflect.Type]map[string]reflect.Type{}

// structFields maps JSON field names to field types for a struct type.
// The cache is populated once per type at first use; Parse runs are
// single-goroutine per call but the cache itself is only mutated under
// lazy initialization of a handful of spec types, so prebuild them.
func structFields(typ reflect.Type) map[string]reflect.Type {
	if f, ok := fieldCache[typ]; ok {
		return f
	}
	f := map[string]reflect.Type{}
	for i := 0; i < typ.NumField(); i++ {
		sf := typ.Field(i)
		if sf.PkgPath != "" {
			continue // unexported
		}
		name := sf.Name
		if tag := sf.Tag.Get("json"); tag != "" {
			if comma := strings.IndexByte(tag, ','); comma >= 0 {
				tag = tag[:comma]
			}
			if tag == "-" {
				continue
			}
			if tag != "" {
				name = tag
			}
		}
		f[name] = sf.Type
	}
	fieldCache[typ] = f
	return f
}

// init prebuilds the field cache for every spec type so concurrent
// Parse calls (cmd/scenario run fans files across workers) never race
// on the map.
func init() {
	var seed func(t reflect.Type)
	seen := map[reflect.Type]bool{}
	seed = func(t reflect.Type) {
		t = derefType(t)
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch t.Kind() {
		case reflect.Struct:
			for name, ft := range structFields(t) {
				_ = name
				seed(ft)
			}
		case reflect.Slice, reflect.Array, reflect.Map:
			seed(t.Elem())
		}
	}
	seed(reflect.TypeOf(Spec{}))
}

// lineOf resolves the best-known line for a JSON path, walking up the
// path when the exact node was not present in the file (e.g. a
// semantic error about an omitted field positions at its parent).
func lineOf(lines map[string]int, path string) int {
	for p := path; ; {
		if l, ok := lines[p]; ok {
			return l
		}
		cut := strings.LastIndexAny(p, ".[")
		if cut < 0 {
			break
		}
		p = p[:cut]
	}
	if l, ok := lines[""]; ok {
		return l
	}
	return 1
}
