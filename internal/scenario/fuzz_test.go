package scenario

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioLoad fuzzes the full Parse pipeline (strict walk →
// decode → compile), seeded from every checked-in scenario plus a few
// hand-picked rejects. The contract: any byte string is either
// rejected with a positioned *Error or decodes to a spec that survives
// an Encode → Parse round trip unchanged. Parse must never panic —
// topology builders and adversary constructors are recover-guarded in
// the compiler, and the fuzzer holds them to it.
func FuzzScenarioLoad(f *testing.F) {
	corpus, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(corpus) == 0 {
		f.Log("no scenarios/ corpus found; fuzzing from inline seeds only")
	}
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(validBase))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"kind": "dag", "n": 12, "m": 30, "seed": 5},
  "policy": {"default": "LIS", "edges": {"#0": "FTG"}},
  "adversary": {"kind": "burst", "bursts": [{"start": 2, "period": 3, "burst": 2, "budget": 10, "route": ["#0"]}]},
  "run": {"steps": 50, "mode": "leap", "observers": ["recorder", "latency"]},
  "checks": {"conservation": true, "max_backlog": 100}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"kind": "ring", "n": -3}}`))
	// Duplicate keys: encoding/json would silently keep the last value;
	// the strict walker must reject.
	f.Add([]byte(`{"version": 1, "version": 1, "name": "x"}`))
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"kind": "ring", "n": 4, "n": 6},
  "policy": {"default": "FIFO"}, "adversary": {"kind": "none"}, "run": {"steps": 10}}`))
	// Bounded buffers: a valid block and two rejects (bad policy name,
	// drop without capacity).
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"kind": "line", "n": 3},
  "policy": {"default": "FIFO"}, "adversary": {"kind": "none"},
  "buffer": {"cap": 2, "drop": "ntg"},
  "run": {"steps": 10}, "checks": {"conservation": true, "max_dropped": -1}}`))
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"kind": "line", "n": 3},
  "policy": {"default": "FIFO"}, "adversary": {"kind": "none"},
  "buffer": {"cap": 2, "drop": "red"}, "run": {"steps": 10}}`))
	f.Add([]byte(`{"version": 1, "name": "x", "topology": {"kind": "line", "n": 3},
  "policy": {"default": "FIFO"}, "adversary": {"kind": "none"},
  "buffer": {"cap": 0, "drop": "tail"}, "run": {"steps": 10}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse("fuzz.json", data)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("rejection is %T, want *Error: %v", err, err)
			}
			return
		}
		// Accepted: Load∘Emit must be a fixed point. Encode the decoded
		// spec and parse it back; the second decode must be valid and
		// identical, and a second encode byte-identical.
		enc := s.Encode()
		s2, err := Parse("fuzz.json", enc)
		if err != nil {
			t.Fatalf("accepted spec fails to re-parse after Encode: %v\nencoded:\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("Encode → Parse is not a fixed point:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
		if enc2 := s2.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatalf("second Encode differs from first:\n%s\n---\n%s", enc, enc2)
		}
	})
}
