package scenario

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"aqt/internal/adversary"
)

// The emitters run full constructions (pumps, cycles); emit once and
// share across every differential subtest.
var (
	emitOnce   sync.Once
	emittedAll []Emitted
)

func allEmitted() []Emitted {
	emitOnce.Do(func() { emittedAll = EmitAll() })
	return emittedAll
}

// TestDifferentialMatrix is the spec compiler's acceptance gate: for
// every emitted experiment and every run mode, the spec-compiled run
// must be bit-identical (snapshot, per-edge queue contents, full
// routes) to the hand-wired construction it serializes.
func TestDifferentialMatrix(t *testing.T) {
	for _, em := range allEmitted() {
		em := em
		for _, mode := range []string{ModeStep, ModeQuiet, ModeLeap} {
			mode := mode
			t.Run(em.ID+"/"+mode, func(t *testing.T) {
				t.Parallel()
				b, err := Build(em.Spec)
				if err != nil {
					t.Fatalf("Build(%s): %v", em.ID, err)
				}
				out := b.RunMode(mode)
				if err := adversary.SameExecution(em.Hand, b.Engine); err != nil {
					t.Fatalf("spec-compiled %q under %s diverges from the hand-wired construction: %v",
						em.ID, mode, err)
				}
				if !out.OK() {
					t.Errorf("%q checks failed under %s: %v", em.ID, mode, out.Failures)
				}
			})
		}
	}
}

// TestEmittedSpecsRoundTrip holds Encode/Parse to a fixed point on
// every emitted spec: the canonical bytes decode to an identical spec,
// and re-encoding reproduces the bytes.
func TestEmittedSpecsRoundTrip(t *testing.T) {
	for _, em := range allEmitted() {
		data := em.Spec.Encode()
		s2, err := Parse(em.ID+".json", data)
		if err != nil {
			t.Fatalf("%s: canonical encoding does not parse: %v", em.ID, err)
		}
		if !reflect.DeepEqual(s2, em.Spec) {
			t.Errorf("%s: Parse(Encode(spec)) differs from spec", em.ID)
		}
		if !bytes.Equal(s2.Encode(), data) {
			t.Errorf("%s: Encode is not a fixed point", em.ID)
		}
	}
}

// TestEmitIDsCovered keeps Emit and EmitIDs in sync.
func TestEmitIDsCovered(t *testing.T) {
	seen := map[string]bool{}
	for _, em := range allEmitted() {
		if em.Spec == nil || em.Hand == nil {
			t.Fatalf("%s: incomplete emission", em.ID)
		}
		if seen[em.ID] {
			t.Fatalf("duplicate emit id %q", em.ID)
		}
		seen[em.ID] = true
	}
	if len(seen) != len(EmitIDs()) {
		t.Fatalf("EmitAll returned %d scenarios, EmitIDs lists %d", len(seen), len(EmitIDs()))
	}
}
