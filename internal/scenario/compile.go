package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"aqt/internal/adversary"
	"aqt/internal/baselines"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// Validation caps. Specs are untrusted input (fuzzed, hand-edited), so
// every quantity that drives an allocation or a loop is bounded before
// anything is built. The caps sit far above every construction the
// experiments emit.
const (
	maxTopoEdges  = 1 << 16
	maxRunSteps   = int64(50_000_000)
	maxStreams    = 1 << 12
	maxPhases     = 1 << 8
	maxSeedTotal  = int64(1) << 21
	maxReplayPkts = int64(1) << 22
	maxRouteLen   = 1 << 12
	maxAttempts   = 1 << 10
	maxBufferCap  = 1 << 20
)

// Run modes.
const (
	ModeStep  = "step"
	ModeQuiet = "quiet"
	ModeLeap  = "leap"
)

// Observer names.
const (
	ObsRecorder = "recorder"
	ObsLatency  = "latency"
	ObsWindow   = "window"
	ObsMeter    = "meter"
	ObsSampler  = "sampler"
	ObsSpans    = "spans"
)

// compiled is a validated spec resolved against its topology: concrete
// edge IDs, parsed rates, a policy table and an adversary factory
// (fresh adversary state per Build).
type compiled struct {
	spec    *Spec
	g       *graph.Graph
	pol     policy.Policy
	perEdge map[graph.EdgeID]policy.Policy
	makeAdv func() sim.Adversary // nil for kind "none"
	seeds   []packet.Injection
	winW    int64
	winRate rational.Rat
	bufCap  int            // 0 = unbounded
	drop    sim.DropPolicy // nil when bufCap == 0
}

// ctx carries the error-positioning state through compilation.
type ctx struct {
	file  string
	lines map[string]int
}

func (c ctx) errf(path, format string, args ...interface{}) error {
	return &Error{File: c.file, Line: lineOf(c.lines, path), Path: path,
		Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the spec completely — structure is assumed (it came
// from Parse or from Go code), topology bounds, edge references, rate
// parses, adversary parameter admissibility, run block and check
// cross-requirements — without building an engine.
func (s *Spec) Validate() error {
	_, err := compile(ctx{}, s)
	return err
}

func compile(c ctx, s *Spec) (*compiled, error) {
	if s.Version != Version {
		return nil, c.errf("version", "unsupported spec version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		return nil, c.errf("name", "name must not be empty")
	}
	g, err := buildTopology(c, s.Topology)
	if err != nil {
		return nil, err
	}
	out := &compiled{spec: s, g: g}

	// Policy block.
	out.pol, err = policy.ByName(s.Policy.Default)
	if err != nil {
		return nil, c.errf("policy.default", "%v", err)
	}
	if len(s.Policy.Edges) > 0 {
		out.perEdge = make(map[graph.EdgeID]policy.Policy, len(s.Policy.Edges))
		for ref, name := range s.Policy.Edges {
			path := "policy.edges." + ref
			eid, err := resolveEdge(g, ref)
			if err != nil {
				return nil, c.errf(path, "%v", err)
			}
			pol, err := policy.ByName(name)
			if err != nil {
				return nil, c.errf(path, "%v", err)
			}
			out.perEdge[eid] = pol
		}
	}

	out.makeAdv, err = compileAdversary(c, g, "adversary", s.Adversary, true)
	if err != nil {
		return nil, err
	}

	// Buffer block (absent = unbounded).
	if b := s.Buffer; b != nil {
		if b.Cap < 0 || b.Cap > maxBufferCap {
			return nil, c.errf("buffer.cap", "cap must be in [0, %d] (0 = unbounded), got %d", maxBufferCap, b.Cap)
		}
		if b.Cap == 0 {
			if b.Drop != "" {
				return nil, c.errf("buffer.drop", "drop policy %q needs cap >= 1 (cap 0 is unbounded)", b.Drop)
			}
		} else {
			name := b.Drop
			if name == "" {
				name = "tail" // the engine's own bounded-mode default
			}
			drop, err := sim.DropByName(name)
			if err != nil {
				return nil, c.errf("buffer.drop", "%v", err)
			}
			out.bufCap, out.drop = b.Cap, drop
		}
	}

	// Seeds.
	var seedTotal int64
	for i, sd := range s.Seeds {
		path := fmt.Sprintf("seeds[%d]", i)
		route, err := resolveRoute(c, g, path+".route", sd.Route)
		if err != nil {
			return nil, err
		}
		n := sd.N
		if n == 0 {
			n = 1
		}
		if n < 0 {
			return nil, c.errf(path+".n", "seed count must be >= 1, got %d", n)
		}
		seedTotal += n
		if seedTotal > maxSeedTotal {
			return nil, c.errf(path, "more than %d seed packets in total", maxSeedTotal)
		}
		for k := int64(0); k < n; k++ {
			out.seeds = append(out.seeds, packet.Injection{Route: route, Tag: sd.Tag})
		}
	}

	// Run block.
	if s.Run.Steps < 0 || s.Run.Steps > maxRunSteps {
		return nil, c.errf("run.steps", "steps must be in [0, %d], got %d", maxRunSteps, s.Run.Steps)
	}
	switch s.Run.Mode {
	case "", ModeStep, ModeQuiet, ModeLeap:
	default:
		return nil, c.errf("run.mode", "unknown run mode %q (step|quiet|leap)", s.Run.Mode)
	}
	seen := map[string]bool{}
	for i, ob := range s.Run.Observers {
		path := fmt.Sprintf("run.observers[%d]", i)
		switch ob {
		case ObsRecorder, ObsLatency, ObsWindow, ObsMeter, ObsSampler, ObsSpans:
		default:
			return nil, c.errf(path, "unknown observer %q (recorder|latency|window|meter|sampler|spans)", ob)
		}
		if seen[ob] {
			return nil, c.errf(path, "duplicate observer %q", ob)
		}
		seen[ob] = true
	}
	if seen[ObsWindow] != (s.Run.Window != nil) {
		return nil, c.errf("run.window", `the "window" observer and the run.window block require each other`)
	}
	if s.Run.Window != nil {
		rate, err := rational.Parse(s.Run.Window.Rate)
		if err != nil {
			return nil, c.errf("run.window.rate", "%v", err)
		}
		// Admissibility up front, with the validator's own message.
		if err := adversary.CheckWindowRate(s.Run.Window.W, rate); err != nil {
			return nil, c.errf("run.window", "%v", err)
		}
		out.winW, out.winRate = s.Run.Window.W, rate
	}

	// Check cross-requirements.
	if cs := s.Checks; cs != nil {
		if cs.MinInjected < 0 || cs.MaxResidence < 0 || cs.MaxBacklog < 0 {
			return nil, c.errf("checks", "check thresholds must be >= 0")
		}
		if cs.MaxBacklog > 0 && !seen[ObsRecorder] {
			return nil, c.errf("checks.max_backlog", `max_backlog needs the "recorder" observer (peak backlog)`)
		}
		if cs.WindowCompliant && !seen[ObsWindow] {
			return nil, c.errf("checks.window_compliant", `window_compliant needs the "window" observer`)
		}
		if cs.MaxDropped < -1 {
			return nil, c.errf("checks.max_dropped", "max_dropped must be >= -1 (-1 = exactly zero drops), got %d", cs.MaxDropped)
		}
		if cs.MaxDropped != 0 && out.bufCap == 0 {
			return nil, c.errf("checks.max_dropped", "max_dropped needs a bounded buffer block (an unbounded engine never drops)")
		}
	}
	return out, nil
}

// buildTopology bounds the parameters, then constructs the graph. The
// builders' own panics (e.g. "graph: Ring needs n >= 2") are converted
// to line-positioned errors citing the builder message verbatim.
func buildTopology(c ctx, t TopologySpec) (g *graph.Graph, err error) {
	bound := func(ok bool, what string) error {
		if ok {
			return nil
		}
		return c.errf("topology", "topology too large: %s (cap %d edges)", what, maxTopoEdges)
	}
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, c.errf("topology", "%v", r)
		}
	}()
	switch t.Kind {
	case "line":
		if err := bound(t.N <= maxTopoEdges, "line"); err != nil {
			return nil, err
		}
		return graph.Line(t.N), nil
	case "ring":
		if err := bound(t.N <= maxTopoEdges, "ring"); err != nil {
			return nil, err
		}
		return graph.Ring(t.N), nil
	case "complete":
		if err := bound(t.N <= 256, "complete"); err != nil {
			return nil, err
		}
		return graph.Complete(t.N), nil
	case "grid":
		if err := bound(t.Rows >= 0 && t.Rows <= 4096 && t.Cols >= 0 && t.Cols <= 4096 && t.Rows*t.Cols <= maxTopoEdges/4, "grid"); err != nil {
			return nil, err
		}
		return graph.Grid(t.Rows, t.Cols), nil
	case "twopaths":
		if err := bound(t.Len1 <= maxTopoEdges/2 && t.Len2 <= maxTopoEdges/2, "twopaths"); err != nil {
			return nil, err
		}
		return graph.TwoParallelPaths(t.Len1, t.Len2), nil
	case "dag":
		if err := bound(t.N <= 2048 && t.M <= maxTopoEdges, "dag"); err != nil {
			return nil, err
		}
		return graph.RandomDAG(t.N, t.M, t.Seed), nil
	case "chain":
		if err := bound(t.N <= 256 && t.M <= 128, "chain"); err != nil {
			return nil, err
		}
		return gadget.NewChain(t.N, t.M, t.Stitch).G, nil
	case "ladder":
		if err := bound(t.N <= maxTopoEdges/2, "ladder"); err != nil {
			return nil, err
		}
		return baselines.Ladder(t.N), nil
	default:
		return nil, c.errf("topology.kind",
			"unknown topology %q (line|ring|complete|grid|twopaths|dag|chain|ladder)", t.Kind)
	}
}

// resolveEdge resolves an edge reference: a name registered by the
// topology builder, or "#<id>" for unnamed edges.
func resolveEdge(g *graph.Graph, ref string) (graph.EdgeID, error) {
	if strings.HasPrefix(ref, "#") {
		id, err := strconv.Atoi(ref[1:])
		if err != nil || id < 0 || id >= g.NumEdges() {
			return graph.NoEdge, fmt.Errorf("bad edge ref %q (want \"#<id>\" with id in [0,%d))", ref, g.NumEdges())
		}
		return graph.EdgeID(id), nil
	}
	if id := g.EdgeByName(ref); id != graph.NoEdge {
		return id, nil
	}
	return graph.NoEdge, fmt.Errorf("unknown edge %q", ref)
}

func resolveRoute(c ctx, g *graph.Graph, path string, refs []string) ([]graph.EdgeID, error) {
	if len(refs) == 0 {
		return nil, c.errf(path, "route must not be empty")
	}
	if len(refs) > maxRouteLen {
		return nil, c.errf(path, "route longer than %d edges", maxRouteLen)
	}
	route := make([]graph.EdgeID, len(refs))
	for i, ref := range refs {
		eid, err := resolveEdge(g, ref)
		if err != nil {
			return nil, c.errf(fmt.Sprintf("%s[%d]", path, i), "%v", err)
		}
		route[i] = eid
	}
	if !g.IsSimplePath(route) {
		return nil, c.errf(path, "route %v is not a simple path in the topology", refs)
	}
	return route, nil
}

// compileAdversary validates one adversary block and returns a factory
// producing a fresh adversary (pacing state and all) per call, or nil
// for kind "none". Parameter violations cite the adversary package's
// Check* messages verbatim — a bad spec fails with exactly the error
// the equivalent hand-wired constructor would panic with.
func compileAdversary(c ctx, g *graph.Graph, path string, a AdversarySpec, allowSeq bool) (func() sim.Adversary, error) {
	// Reject fields that do not belong to the kind: a stray block is
	// almost always a typo'd kind, and silently ignoring it would run
	// a different scenario than the author wrote.
	requireOnly := func(kind string, ok ...bool) error {
		present := []struct {
			name string
			set  bool
		}{
			{"streams", a.Streams != nil},
			{"bursts", a.Bursts != nil},
			{"random", a.Random != nil},
			{"replay", a.Replay != nil},
			{"phases", a.Phases != nil},
		}
		for i, p := range present {
			if p.set && !ok[i] {
				return c.errf(path+"."+p.name, "%s adversary does not take %q", kind, p.name)
			}
		}
		return nil
	}
	switch a.Kind {
	case "none":
		if err := requireOnly("none", false, false, false, false, false); err != nil {
			return nil, err
		}
		return nil, nil

	case "script":
		if err := requireOnly("script", true, false, false, false, false); err != nil {
			return nil, err
		}
		if len(a.Streams) == 0 || len(a.Streams) > maxStreams {
			return nil, c.errf(path+".streams", "script needs 1..%d streams, got %d", maxStreams, len(a.Streams))
		}
		streams := make([]adversary.Stream, len(a.Streams))
		for i, ss := range a.Streams {
			p := fmt.Sprintf("%s.streams[%d]", path, i)
			if ss.Start < 0 {
				return nil, c.errf(p+".start", "start must be >= 0, got %d", ss.Start)
			}
			rate, err := rational.Parse(ss.Rate)
			if err != nil {
				return nil, c.errf(p+".rate", "%v", err)
			}
			route, err := resolveRoute(c, g, p+".route", ss.Route)
			if err != nil {
				return nil, err
			}
			st := adversary.Stream{Name: ss.Name, Start: ss.Start, Rate: rate,
				Budget: ss.Budget, Route: route, Tag: ss.Tag}
			if err := adversary.CheckStream(st); err != nil {
				return nil, c.errf(p, "%v", err)
			}
			streams[i] = st
		}
		return func() sim.Adversary { return adversary.NewScript(streams...) }, nil

	case "burst":
		if err := requireOnly("burst", false, true, false, false, false); err != nil {
			return nil, err
		}
		if len(a.Bursts) == 0 || len(a.Bursts) > maxStreams {
			return nil, c.errf(path+".bursts", "burst needs 1..%d streams, got %d", maxStreams, len(a.Bursts))
		}
		bursts := make([]adversary.BurstStream, len(a.Bursts))
		for i, bs := range a.Bursts {
			p := fmt.Sprintf("%s.bursts[%d]", path, i)
			if bs.Start < 0 {
				return nil, c.errf(p+".start", "start must be >= 0, got %d", bs.Start)
			}
			if bs.Burst > maxSeedTotal {
				return nil, c.errf(p+".burst", "burst larger than %d", maxSeedTotal)
			}
			route, err := resolveRoute(c, g, p+".route", bs.Route)
			if err != nil {
				return nil, err
			}
			st := adversary.BurstStream{Name: bs.Name, Start: bs.Start, Period: bs.Period,
				Burst: bs.Burst, Budget: bs.Budget, Route: route, Tag: bs.Tag}
			if err := adversary.CheckBurstStream(st); err != nil {
				return nil, c.errf(p, "%v", err)
			}
			bursts[i] = st
		}
		return func() sim.Adversary { return adversary.NewBurstScript(bursts...) }, nil

	case "random":
		if err := requireOnly("random", false, false, true, false, false); err != nil {
			return nil, err
		}
		if a.Random == nil {
			return nil, c.errf(path+".random", "random adversary needs the random block")
		}
		r := a.Random
		rate, err := rational.Parse(r.Rate)
		if err != nil {
			return nil, c.errf(path+".random.rate", "%v", err)
		}
		// (w,r) admissibility up front (Definition 2.1): a pair that
		// admits no injections is a spec bug, not an empty run.
		if err := adversary.CheckWindowRate(r.W, rate); err != nil {
			return nil, c.errf(path+".random", "%v", err)
		}
		if r.MaxLen < 1 {
			return nil, c.errf(path+".random.maxlen", "%v", adversary.ErrMaxLen)
		}
		if r.Attempts < 0 || r.Attempts > maxAttempts {
			return nil, c.errf(path+".random.attempts", "attempts must be in [0, %d]", maxAttempts)
		}
		w, maxLen, seed, attempts := r.W, r.MaxLen, r.Seed, r.Attempts
		return func() sim.Adversary {
			adv := adversary.NewRandomWR(g, w, rate, maxLen, seed)
			if attempts > 0 {
				adv.Attempts = attempts
			}
			return adv
		}, nil

	case "replay":
		if err := requireOnly("replay", false, false, false, true, false); err != nil {
			return nil, err
		}
		if a.Replay == nil {
			return nil, c.errf(path+".replay", "replay adversary needs the replay block")
		}
		rp := a.Replay
		routes := make([][]graph.EdgeID, len(rp.Routes))
		for i, refs := range rp.Routes {
			p := fmt.Sprintf("%s.replay.routes[%d]", path, i)
			route, err := resolveRoute(c, g, p, refs)
			if err != nil {
				return nil, err
			}
			routes[i] = route
		}
		var total int64
		for i, gr := range rp.Injections {
			p := fmt.Sprintf("%s.replay.injections[%d]", path, i)
			if gr.T < 1 {
				return nil, c.errf(p, "injection step must be >= 1 (step 0 packets are seeds), got %d", gr.T)
			}
			if gr.Route < 0 || gr.Route >= len(routes) {
				return nil, c.errf(p, "route index %d out of range [0,%d)", gr.Route, len(routes))
			}
			if gr.N < 1 {
				return nil, c.errf(p, "injection count must be >= 1, got %d", gr.N)
			}
			if gr.Tag < 0 || gr.Tag > len(rp.Tags) {
				return nil, c.errf(p, "tag index %d out of range [0,%d] (0 = untagged)", gr.Tag, len(rp.Tags))
			}
			total += gr.N
			if total > maxReplayPkts {
				return nil, c.errf(p, "more than %d replayed packets in total", maxReplayPkts)
			}
		}
		injections := rp.Injections
		tags := rp.Tags
		return func() sim.Adversary {
			rec := make([]adversary.RecordedInjection, 0, total)
			for _, gr := range injections {
				tag := ""
				if gr.Tag > 0 {
					tag = tags[gr.Tag-1]
				}
				for k := int64(0); k < gr.N; k++ {
					rec = append(rec, adversary.RecordedInjection{
						Step: gr.T, Route: routes[gr.Route], Tag: tag})
				}
			}
			return adversary.NewReplay(rec)
		}, nil

	case "sequence":
		if err := requireOnly("sequence", false, false, false, false, true); err != nil {
			return nil, err
		}
		if !allowSeq {
			return nil, c.errf(path, "sequence phases cannot nest another sequence")
		}
		if len(a.Phases) == 0 || len(a.Phases) > maxPhases {
			return nil, c.errf(path+".phases", "sequence needs 1..%d phases, got %d", maxPhases, len(a.Phases))
		}
		type phase struct {
			name  string
			until int64
			mk    func() sim.Adversary
		}
		phases := make([]phase, len(a.Phases))
		prev := int64(0)
		for i, ps := range a.Phases {
			p := fmt.Sprintf("%s.phases[%d]", path, i)
			if ps.Until <= prev {
				return nil, c.errf(p+".until", "phase untils must be strictly increasing and >= 1, got %d after %d", ps.Until, prev)
			}
			prev = ps.Until
			mk, err := compileAdversary(c, g, p+".adversary", ps.Adversary, false)
			if err != nil {
				return nil, err
			}
			phases[i] = phase{name: ps.Name, until: ps.Until, mk: mk}
		}
		return func() sim.Adversary {
			out := make([]adversary.Phase, len(phases))
			for i := range phases {
				ph := phases[i]
				// Done is guaranteed false while now <= until-1, which
				// is exactly the leap horizon contract of Phase.Until.
				horizon := ph.until - 1
				out[i] = adversary.Phase{
					Name: ph.name,
					Enter: func(*sim.Engine) sim.Adversary {
						if ph.mk == nil {
							return nil
						}
						return ph.mk()
					},
					Done:  func(e *sim.Engine) bool { return e.Now() >= ph.until },
					Until: &horizon,
				}
			}
			return adversary.NewSequence(out...)
		}, nil

	default:
		return nil, c.errf(path+".kind",
			"unknown adversary %q (none|script|burst|random|replay|sequence)", a.Kind)
	}
}
