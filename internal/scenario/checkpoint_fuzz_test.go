package scenario

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"aqt/internal/adversary"
)

// FuzzCheckpointLoad fuzzes the checkpoint decoder, seeded with real
// checkpoints generated from every checked-in scenario at two split
// points plus hand-picked rejects. The contract: any byte string is
// either rejected with a positioned *Error or survives an
// Encode → Decode → Encode fixed point; and an accepted document may
// always be offered to Restore on a fresh build of the scenario it
// names (rejection is fine, a panic is not).
func FuzzCheckpointLoad(f *testing.F) {
	// Hostile draw counts must not stall an exec on the RandomWR RNG
	// fast-forward; the cap still clears every corpus run by far.
	adversary.MaxRandomDraws.Store(1 << 20)

	corpus, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	specs := map[string]*Spec{}
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		base, err := Parse(filepath.Base(path), data)
		if err != nil {
			f.Fatal(err)
		}
		specs[base.Name] = base
		for _, k := range []int64{1, base.Run.Steps / 2} {
			if k < 1 {
				continue
			}
			s := *base
			b, err := Build(&s)
			if err != nil {
				f.Fatal(err)
			}
			b.Engine.Run(k)
			cp, err := b.Checkpoint()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(cp.Encode())
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version": 1, "scenario": "x"}`))
	f.Add([]byte(`{"version": 2, "scenario": "x", "engine": {"version": 1}}`))
	f.Add([]byte(`{"version": 1, "scenario": "x", "engine": {"version": 1, "num_nodes": 2,
  "num_edges": 1, "policy": "FIFO", "now": 5, "started": true, "next_id": -1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint("fuzz.ckpt", data)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("rejection is %T, want *Error: %v", err, err)
			}
			return
		}
		// Accepted: Encode normalizes, and from there the encoding must
		// be a fixed point of Decode ∘ Encode.
		enc := cp.Encode()
		cp2, err := DecodeCheckpoint("fuzz.ckpt", enc)
		if err != nil {
			t.Fatalf("accepted checkpoint fails to re-decode after Encode: %v\nencoded:\n%s", err, enc)
		}
		if enc2 := cp2.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatalf("second Encode differs from first:\n%s\n---\n%s", enc, enc2)
		}
		// Restore must reject gracefully or succeed — never panic.
		base, ok := specs[cp2.Scenario]
		if !ok {
			return
		}
		s := *base
		b, err := Build(&s)
		if err != nil {
			t.Fatalf("corpus spec %q no longer builds: %v", s.Name, err)
		}
		if err := b.Restore(cp2); err != nil {
			return
		}
		// A restored engine must be runnable.
		if left := s.Run.Steps - cp2.Engine.Now; left > 0 {
			b.Engine.Run(minI64(left, 64))
		}
	})
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
