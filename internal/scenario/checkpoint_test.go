package scenario

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/sim"
)

// buildFresh builds an independent instance of base (checks kept; they
// are never evaluated here — the comparison is about execution state).
func buildFresh(t *testing.T, base *Spec) *Built {
	t.Helper()
	s := *base
	b, err := Build(&s)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return b
}

// runSegment advances b.Engine by n steps under mode.
func runSegment(t *testing.T, b *Built, mode string, n int64) {
	t.Helper()
	if n == 0 {
		return
	}
	switch mode {
	case ModeStep:
		b.Engine.Run(n)
	case ModeQuiet:
		b.Engine.RunQuiet(n)
	case ModeLeap:
		b.Engine.RunLeap(n)
	default:
		t.Fatalf("unknown mode %q", mode)
	}
}

// requireSameObservers compares every observer's externally observable
// state between the reference run and the resumed run.
func requireSameObservers(t *testing.T, label string, ref, got *Built) {
	t.Helper()
	if ref.Recorder != nil {
		rs, gs := ref.Recorder.CheckpointState(), got.Recorder.CheckpointState()
		if !reflect.DeepEqual(rs, gs) {
			t.Errorf("%s: recorder state differs:\nref: %+v\ngot: %+v", label, rs, gs)
		}
	}
	if ref.Latency != nil {
		if !reflect.DeepEqual(ref.Latency.CheckpointState(), got.Latency.CheckpointState()) {
			t.Errorf("%s: latency series differs (ref %d samples, got %d)",
				label, ref.Latency.Count(), got.Latency.Count())
		}
	}
	if ref.Window != nil {
		if !reflect.DeepEqual(ref.Window.UsageState(), got.Window.UsageState()) {
			t.Errorf("%s: window usage differs", label)
		}
		re, ge := ref.Window.Check(), got.Window.Check()
		if (re == nil) != (ge == nil) || (re != nil && re.Error() != ge.Error()) {
			t.Errorf("%s: window verdict differs: ref=%v got=%v", label, re, ge)
		}
	}
	if ref.Meter != nil {
		rs, gs := ref.Meter.Registry().State(), got.Meter.Registry().State()
		if !reflect.DeepEqual(rs, gs) {
			t.Errorf("%s: meter registry differs:\nref: %+v\ngot: %+v", label, rs, gs)
		}
	}
	if ref.Sampler != nil {
		rs, gs := ref.Sampler.CheckpointState(), got.Sampler.CheckpointState()
		if !reflect.DeepEqual(rs, gs) {
			t.Errorf("%s: sampler state differs:\nref: %+v\ngot: %+v", label, rs, gs)
		}
	}
	if ref.Spans != nil {
		rs, gs := ref.Spans.CheckpointState(), got.Spans.CheckpointState()
		if !reflect.DeepEqual(rs, gs) {
			t.Errorf("%s: span tracer state differs:\nref: %+v\ngot: %+v", label, rs, gs)
		}
	}
}

// checkpointSplit runs base for k steps, checkpoints through the full
// wire format (Encode -> DecodeCheckpoint -> Encode fixed point), then
// restores onto a fresh build and runs the remaining total-k steps.
func checkpointSplit(t *testing.T, base *Spec, mode string, k, total int64) *Built {
	t.Helper()
	a := buildFresh(t, base)
	runSegment(t, a, mode, k)
	cp, err := a.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint at k=%d: %v", k, err)
	}
	data := cp.Encode()
	cp2, err := DecodeCheckpoint("mem.ckpt", data)
	if err != nil {
		t.Fatalf("DecodeCheckpoint at k=%d: %v", k, err)
	}
	if data2 := cp2.Encode(); !bytes.Equal(data, data2) {
		t.Fatalf("k=%d: Encode -> Decode -> Encode is not a fixed point", k)
	}
	b := buildFresh(t, base)
	if err := b.Restore(cp2); err != nil {
		t.Fatalf("Restore at k=%d: %v", k, err)
	}
	runSegment(t, b, mode, total-k)
	return b
}

// TestCheckpointResumeCorpus is the resume-equivalence acceptance gate:
// for every checked-in scenario, every run mode, and a fan of split
// points k (first step, last step, and a spec-seeded random interior
// point), run(T) and run(k); save; load; run(T-k) must agree on the
// full equivalence contract — snapshot modulo Nanos, per-edge queues
// packet by packet, max residence — and on every configured observer's
// state. Leap-window statistics are deliberately NOT compared: a
// checkpoint boundary legitimately splits a leap window in two.
func TestCheckpointResumeCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario corpus (run `go run ./cmd/scenario emit`): %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			base := parseSpecFile(t, path)
			total := base.Run.Steps
			for _, mode := range []string{ModeStep, ModeQuiet, ModeLeap} {
				ref := buildFresh(t, base)
				runSegment(t, ref, mode, total)
				h := fnv.New64a()
				fmt.Fprintf(h, "%s/%s", base.Name, mode)
				rng := rand.New(rand.NewSource(int64(h.Sum64())))
				ks := []int64{1, total - 1, 1 + rng.Int63n(total)}
				for _, k := range ks {
					label := fmt.Sprintf("%s/k=%d", mode, k)
					got := checkpointSplit(t, base, mode, k, total)
					if err := adversary.SameExecution(ref.Engine, got.Engine); err != nil {
						t.Errorf("%s: resumed run diverges: %v", label, err)
					}
					requireSameObservers(t, label, ref, got)
				}
			}
		})
	}
}

// TestCheckpointResumeTelemetryObservers extends the corpus resume
// gate to the PR 10 telemetry observers: every checked-in scenario is
// re-run with "sampler" and "spans" added to its observer set, split
// at an interior step through the full checkpoint wire format, and the
// resumed run must reproduce the straight run's sampler series and
// span tracer state bit for bit (on top of the engine equivalence).
func TestCheckpointResumeTelemetryObservers(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario corpus (run `go run ./cmd/scenario emit`): %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			base := parseSpecFile(t, path)
			obsList := append([]string{}, base.Run.Observers...)
			for _, extra := range []string{ObsSampler, ObsSpans} {
				seen := false
				for _, name := range obsList {
					if name == extra {
						seen = true
					}
				}
				if !seen {
					obsList = append(obsList, extra)
				}
			}
			base.Run.Observers = obsList
			total := base.Run.Steps
			for _, mode := range []string{ModeStep, ModeLeap} {
				ref := buildFresh(t, base)
				if ref.Sampler == nil || ref.Spans == nil {
					t.Fatal("telemetry observers not built")
				}
				runSegment(t, ref, mode, total)
				h := fnv.New64a()
				fmt.Fprintf(h, "telemetry/%s/%s", base.Name, mode)
				rng := rand.New(rand.NewSource(int64(h.Sum64())))
				for _, k := range []int64{1, 1 + rng.Int63n(total)} {
					label := fmt.Sprintf("%s/k=%d", mode, k)
					got := checkpointSplit(t, base, mode, k, total)
					if err := adversary.SameExecution(ref.Engine, got.Engine); err != nil {
						t.Errorf("%s: resumed run diverges: %v", label, err)
					}
					requireSameObservers(t, label, ref, got)
				}
			}
		})
	}
}

// TestCheckpointedRunMatchesRunMode drives the segmented runner the
// CLI uses (-checkpoint-every) across the corpus and requires the same
// Outcome as a straight RunMode, modulo leap-window accounting.
func TestCheckpointedRunMatchesRunMode(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario corpus: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			base := parseSpecFile(t, path)
			for _, mode := range []string{ModeStep, ModeLeap} {
				ref := buildFresh(t, base)
				want := ref.RunMode(mode)
				seg := buildFresh(t, base)
				saves := 0
				got, err := seg.RunCheckpointed(mode, base.Run.Steps/3+1, func(cp *Checkpoint, step int64) error {
					saves++
					if cp.Scenario != base.Name {
						return fmt.Errorf("checkpoint names %q", cp.Scenario)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("%s: RunCheckpointed: %v", mode, err)
				}
				if saves == 0 {
					t.Fatalf("%s: save callback never invoked", mode)
				}
				got.Leaps, want.Leaps = sim.LeapStats{}, sim.LeapStats{}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: outcome differs:\nwant: %+v\ngot:  %+v", mode, want, got)
				}
				if err := adversary.SameExecution(ref.Engine, seg.Engine); err != nil {
					t.Errorf("%s: segmented run diverges: %v", mode, err)
				}
			}
		})
	}
}

// TestCheckpointRandomAdversaryDifferential mirrors the leap engine's
// randomized harness (sim.TestLeapRandomDifferential): random line and
// ring topologies, random burst scripts, all three policy families —
// but here the differential is a checkpoint/restore split at a random
// interior step, through the engine-level wire format, with the
// resumed half running under a randomly chosen mode. Runs under -race
// via `make race`.
func TestCheckpointRandomAdversaryDifferential(t *testing.T) {
	pols := []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}}
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			var g *graph.Graph
			n := 4 + rng.Intn(12)
			if rng.Intn(2) == 0 {
				g = graph.Line(n)
			} else {
				g = graph.Ring(n)
			}
			streams := make([]adversary.BurstStream, 1+rng.Intn(3))
			for i := range streams {
				first := rng.Intn(g.NumEdges())
				routeLen := 1 + rng.Intn(3)
				route := []graph.EdgeID{graph.EdgeID(first)}
				for len(route) < routeLen {
					outs := g.Out(g.Edge(route[len(route)-1]).To)
					if len(outs) == 0 {
						break
					}
					route = append(route, outs[rng.Intn(len(outs))])
				}
				streams[i] = adversary.BurstStream{
					Name:   fmt.Sprintf("s%d", i),
					Start:  1 + int64(rng.Intn(200)),
					Period: 16 + int64(rng.Intn(240)),
					Burst:  1 + int64(rng.Intn(40)),
					Budget: []int64{-1, 20 + int64(rng.Intn(200))}[rng.Intn(2)],
					Route:  route,
				}
			}
			pol := pols[rng.Intn(len(pols))]
			steps := int64(500 + rng.Intn(1500))
			k := 1 + rng.Int63n(steps-1)
			mode := []string{ModeStep, ModeLeap}[rng.Intn(2)]

			direct := sim.New(g, pol, adversary.NewBurstScript(streams...))
			direct.Run(steps)

			half := sim.New(g, pol, adversary.NewBurstScript(streams...))
			half.Run(k)
			cp, err := half.Checkpoint()
			if err != nil {
				t.Fatalf("engine checkpoint at k=%d: %v", k, err)
			}
			data := cp.Encode()
			cp2, err := sim.DecodeCheckpoint(data)
			if err != nil {
				t.Fatalf("engine decode at k=%d: %v", k, err)
			}
			if data2 := cp2.Encode(); !bytes.Equal(data, data2) {
				t.Fatalf("k=%d: engine Encode -> Decode -> Encode is not a fixed point", k)
			}
			resumed := sim.New(g, pol, adversary.NewBurstScript(streams...))
			if err := resumed.Restore(cp2); err != nil {
				t.Fatalf("engine restore at k=%d: %v", k, err)
			}
			if mode == ModeLeap {
				resumed.RunLeap(steps - k)
			} else {
				resumed.Run(steps - k)
			}
			if err := adversary.SameExecution(direct, resumed); err != nil {
				t.Errorf("seed=%d k=%d mode=%s: %v", seed, k, mode, err)
			}
		})
	}
}

// parseSpecFile loads and parses one corpus spec.
func parseSpecFile(t *testing.T, path string) *Spec {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(filepath.Base(path), data)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
