package scenario

import (
	"errors"
	"strings"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/rational"
)

// validBase is a minimal valid spec; the error tests below mutate one
// aspect at a time. Line numbers in the expectations below refer to
// this layout.
const validBase = `{
  "version": 1,
  "name": "t",
  "topology": {"kind": "ring", "n": 4},
  "policy": {"default": "FIFO"},
  "adversary": {"kind": "none"},
  "run": {"steps": 10}
}
`

func TestParseValid(t *testing.T) {
	s, err := Parse("base.json", []byte(validBase))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.Name != "t" || s.Topology.N != 4 {
		t.Fatalf("decoded spec wrong: %+v", s)
	}
}

// specErr parses data and requires an *Error with the given line,
// path, and message substring.
func specErr(t *testing.T, data, wantPath string, wantLine int, wantMsg string) {
	t.Helper()
	_, err := Parse("t.json", []byte(data))
	if err == nil {
		t.Fatalf("spec accepted; want error at %s line %d", wantPath, wantLine)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *Error: %v", err, err)
	}
	if se.Path != wantPath {
		t.Errorf("path = %q, want %q (err: %v)", se.Path, wantPath, err)
	}
	if se.Line != wantLine {
		t.Errorf("line = %d, want %d (err: %v)", se.Line, wantLine, err)
	}
	if !strings.Contains(se.Msg, wantMsg) {
		t.Errorf("msg = %q, want it to contain %q", se.Msg, wantMsg)
	}
	if !strings.HasPrefix(err.Error(), "t.json:") {
		t.Errorf("rendered error %q does not lead with the file", err)
	}
}

func TestParseErrors(t *testing.T) {
	t.Run("unknown top-level field", func(t *testing.T) {
		specErr(t, `{
  "version": 1,
  "polarity": 3,
  "name": "t"
}
`, "polarity", 3, `unknown field "polarity"`)
	})

	t.Run("unknown nested field", func(t *testing.T) {
		specErr(t, `{
  "version": 1,
  "name": "t",
  "topology": {
    "kind": "ring",
    "count": 4
  },
  "policy": {"default": "FIFO"},
  "adversary": {"kind": "none"},
  "run": {"steps": 10}
}
`, "topology.count", 6, `unknown field "count"`)
	})

	t.Run("duplicate top-level field", func(t *testing.T) {
		// encoding/json would silently keep the second value (last
		// wins); the strict walker must reject at the second occurrence.
		specErr(t, `{
  "version": 1,
  "name": "a",
  "name": "b",
  "topology": {"kind": "ring", "n": 4},
  "policy": {"default": "FIFO"},
  "adversary": {"kind": "none"},
  "run": {"steps": 10}
}
`, "name", 4, `duplicate field "name"`)
	})

	t.Run("duplicate nested field", func(t *testing.T) {
		specErr(t, `{
  "version": 1,
  "name": "t",
  "topology": {
    "kind": "ring",
    "n": 4,
    "n": 6
  },
  "policy": {"default": "FIFO"},
  "adversary": {"kind": "none"},
  "run": {"steps": 10}
}
`, "topology.n", 7, `duplicate field "n"`)
	})

	t.Run("duplicate field inside array element", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "script", "streams": [
    {"start": 1, "rate": "1/2", "rate": "1/3", "budget": 4, "route": ["e1"]}
  ]}`, 1),
			"adversary.streams[0].rate", 7, `duplicate field "rate"`)
	})

	t.Run("same key in sibling objects is fine", func(t *testing.T) {
		// Duplicate detection is per object, not per path prefix.
		if _, err := Parse("t.json", []byte(strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "script", "streams": [
    {"start": 1, "rate": "1/2", "budget": 4, "route": ["e1"]},
    {"start": 1, "rate": "1/2", "budget": 4, "route": ["e2"]}
  ]}`, 1))); err != nil {
			t.Fatalf("sibling objects with equal keys rejected: %v", err)
		}
	})

	t.Run("type mismatch", func(t *testing.T) {
		_, err := Parse("t.json", []byte(`{
  "version": 1,
  "name": "t",
  "topology": {"kind": "ring", "n": 4},
  "policy": {"default": "FIFO"},
  "adversary": {"kind": "none"},
  "run": {"steps": "ten"}
}
`))
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("want *Error, got %v", err)
		}
		if se.Line != 7 || !strings.Contains(se.Msg, "cannot decode") {
			t.Errorf("got %v; want a line-7 decode error", err)
		}
	})

	t.Run("trailing data", func(t *testing.T) {
		_, err := Parse("t.json", []byte(validBase+"{}\n"))
		var se *Error
		if !errors.As(err, &se) || !strings.Contains(se.Msg, "trailing data") {
			t.Errorf("got %v; want trailing data error", err)
		}
	})

	t.Run("bad version", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"version": 1`, `"version": 2`, 1),
			"version", 2, "unsupported spec version 2")
	})

	t.Run("unknown topology kind", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"kind": "ring"`, `"kind": "torus"`, 1),
			"topology.kind", 4, `unknown topology "torus"`)
	})

	t.Run("builder panic cited verbatim", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"n": 4`, `"n": 1`, 1),
			"topology", 4, "graph: Ring needs n >= 2")
	})

	t.Run("unknown policy", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"default": "FIFO"`, `"default": "fifo"`, 1),
			"policy.default", 5, `unknown policy "fifo"`)
	})

	t.Run("unknown run mode", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"run": {"steps": 10}`, `"run": {"steps": 10, "mode": "warp"}`, 1),
			"run.mode", 7, `unknown run mode "warp"`)
	})

	t.Run("unknown observer", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"run": {"steps": 10}`,
			`"run": {"steps": 10, "observers": ["recorder", "speed"]}`, 1),
			"run.observers[1]", 7, `unknown observer "speed"`)
	})

	t.Run("window observer without window block", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"run": {"steps": 10}`,
			`"run": {"steps": 10, "observers": ["window"]}`, 1),
			"run.window", 7, "require each other")
	})

	t.Run("stray block for kind", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "none", "random": {"w": 10, "rate": "1/2", "maxlen": 1, "seed": 1}}`, 1),
			"adversary.random", 6, `none adversary does not take "random"`)
	})

	t.Run("sequence cannot nest", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "sequence", "phases": [
    {"until": 5, "adversary": {"kind": "sequence", "phases": [
      {"until": 3, "adversary": {"kind": "none"}}
    ]}}
  ]}`, 1),
			"adversary.phases[0].adversary", 7, "cannot nest another sequence")
	})

	t.Run("unknown edge in route", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "script", "streams": [
    {"start": 1, "rate": "1/2", "budget": 4, "route": ["e1", "nope"]}
  ]}`, 1),
			"adversary.streams[0].route[1]", 7, `unknown edge "nope"`)
	})

	t.Run("non-simple route", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "script", "streams": [
    {"start": 1, "rate": "1/2", "budget": 4, "route": ["e1", "e3"]}
  ]}`, 1),
			"adversary.streams[0].route", 7, "not a simple path")
	})

	t.Run("negative buffer cap", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "none"},
  "buffer": {"cap": -1}`, 1),
			"buffer.cap", 7, "cap must be in [0,")
	})

	t.Run("unknown drop policy", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "none"},
  "buffer": {"cap": 4, "drop": "red"}`, 1),
			"buffer.drop", 7, `unknown drop policy "red"`)
	})

	t.Run("drop policy with unbounded cap", func(t *testing.T) {
		specErr(t, strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "none"},
  "buffer": {"cap": 0, "drop": "tail"}`, 1),
			"buffer.drop", 7, "needs cap >= 1")
	})
}

// TestAdversaryMessagesVerbatim holds spec rejections to the exact
// messages the hand-wired constructors panic with: a scenario author
// debugging a bad spec sees the same diagnostics as a Go caller.
func TestAdversaryMessagesVerbatim(t *testing.T) {
	t.Run("stream", func(t *testing.T) {
		bad := adversary.Stream{Start: 1, Rate: rational.New(0, 1), Budget: 4,
			Route: []graph.EdgeID{0}}
		want := adversary.CheckStream(bad)
		if want == nil {
			t.Fatal("expected CheckStream to reject rate 0")
		}
		_, err := Parse("t.json", []byte(strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "script", "streams": [
    {"start": 1, "rate": "0", "budget": 4, "route": ["e1"]}
  ]}`, 1)))
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("want *Error, got %v", err)
		}
		if se.Msg != want.Error() {
			t.Errorf("spec error %q != constructor error %q", se.Msg, want.Error())
		}
	})

	t.Run("window rate", func(t *testing.T) {
		want := adversary.CheckWindowRate(2, rational.New(1, 3))
		if want == nil {
			t.Fatal("expected CheckWindowRate to reject (2, 1/3)")
		}
		_, err := Parse("t.json", []byte(strings.Replace(validBase, `"adversary": {"kind": "none"}`,
			`"adversary": {"kind": "random", "random": {"w": 2, "rate": "1/3", "maxlen": 1, "seed": 7}}`, 1)))
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("want *Error, got %v", err)
		}
		if se.Msg != want.Error() {
			t.Errorf("spec error %q != constructor error %q", se.Msg, want.Error())
		}
	})
}

// TestValidateWithoutFile checks the Go-API path: semantic errors from
// a programmatically built spec carry paths but no file/line noise.
func TestValidateWithoutFile(t *testing.T) {
	s := &Spec{Version: Version, Name: "x",
		Topology:  TopologySpec{Kind: "ring", N: 4},
		Policy:    PolicySpec{Default: "NOPE"},
		Adversary: AdversarySpec{Kind: "none"},
		Run:       RunSpec{Steps: 5},
	}
	err := s.Validate()
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("want *Error, got %v", err)
	}
	if se.Path != "policy.default" || se.File != "" {
		t.Errorf("got %+v; want path policy.default, empty file", se)
	}
}

// TestChecksCrossRequirements covers the check/observer coupling.
func TestChecksCrossRequirements(t *testing.T) {
	base := func() *Spec {
		return &Spec{Version: Version, Name: "x",
			Topology:  TopologySpec{Kind: "ring", N: 4},
			Policy:    PolicySpec{Default: "FIFO"},
			Adversary: AdversarySpec{Kind: "none"},
			Run:       RunSpec{Steps: 5},
		}
	}
	s := base()
	s.Checks = &ChecksSpec{MaxBacklog: 10}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "recorder") {
		t.Errorf("max_backlog without recorder: got %v", err)
	}
	s = base()
	s.Checks = &ChecksSpec{WindowCompliant: true}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("window_compliant without window: got %v", err)
	}
	s = base()
	s.Run.Observers = []string{"recorder", "recorder"}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate observer") {
		t.Errorf("duplicate observer: got %v", err)
	}
	s = base()
	s.Checks = &ChecksSpec{MaxDropped: 5}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "bounded buffer") {
		t.Errorf("max_dropped without buffer block: got %v", err)
	}
	s = base()
	s.Buffer = &BufferSpec{Cap: 2, Drop: "head"}
	s.Checks = &ChecksSpec{MaxDropped: -2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), ">= -1") {
		t.Errorf("max_dropped below -1: got %v", err)
	}
	s = base()
	s.Buffer = &BufferSpec{Cap: 2, Drop: "ntg"}
	s.Checks = &ChecksSpec{MaxDropped: -1}
	if err := s.Validate(); err != nil {
		t.Errorf("bounded buffer with max_dropped -1 rejected: %v", err)
	}
}
