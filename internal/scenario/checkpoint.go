// Scenario-level checkpoint/restore: one document wrapping the engine
// checkpoint together with the states of every observer the spec
// configured (Recorder, latency, window validator, meter, sampler,
// span tracer). The spec
// file is the single source of truth for everything a checkpoint does
// NOT carry — topology, policy table, buffer config, adversary
// program — so restore means: Build the same spec fresh, then apply
// the checkpoint; a name fingerprint plus the engine's own fingerprint
// checks refuse obvious mismatches.
//
// Decoding is hardened for hostile input (FuzzCheckpointLoad): every
// rejection is a positioned *Error and neither DecodeCheckpoint nor
// Built.Restore ever panics.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/obs"
	"aqt/internal/sim"
)

// CheckpointVersion is the scenario checkpoint document version.
const CheckpointVersion = 1

// Checkpoint is a paused scenario run: the engine state plus every
// configured observer's state. Observer fields are present exactly
// when the spec configures the observer.
type Checkpoint struct {
	Version  int                  `json:"version"`
	Scenario string               `json:"scenario"`
	Engine   *sim.Checkpoint      `json:"engine"`
	Recorder *sim.RecorderState   `json:"recorder,omitempty"`
	Latency  []int64              `json:"latency,omitempty"`
	Window   adversary.UsageState `json:"window,omitempty"`
	Meter    *obs.MeterState      `json:"meter,omitempty"`
	Sampler  *obs.SamplerState    `json:"sampler,omitempty"`
	Spans    *obs.SpanState       `json:"spans,omitempty"`

	hasLatency bool // tracked explicitly: an empty series omits the field
}

// checkpointDoc is the wire shape: hasLatency is reified as a flag so
// "latency observer configured, nothing absorbed yet" survives the
// round trip distinguishably from "no latency observer".
type checkpointDoc struct {
	Version    int                  `json:"version"`
	Scenario   string               `json:"scenario"`
	Engine     *sim.Checkpoint      `json:"engine"`
	Recorder   *sim.RecorderState   `json:"recorder,omitempty"`
	HasLatency bool                 `json:"has_latency,omitempty"`
	Latency    []int64              `json:"latency,omitempty"`
	Window     adversary.UsageState `json:"window,omitempty"`
	Meter      *obs.MeterState      `json:"meter,omitempty"`
	Sampler    *obs.SamplerState    `json:"sampler,omitempty"`
	Spans      *obs.SpanState       `json:"spans,omitempty"`
}

// Checkpoint extracts the built scenario's complete run state. The
// engine must be between steps (not inside an observer hook) and its
// adversary checkpointable — every adversary the compiler can emit is.
func (b *Built) Checkpoint() (*Checkpoint, error) {
	ec, err := b.Engine.Checkpoint()
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{
		Version:  CheckpointVersion,
		Scenario: b.Spec.Name,
		Engine:   ec,
	}
	if b.Recorder != nil {
		st := b.Recorder.CheckpointState()
		cp.Recorder = &st
	}
	if b.Latency != nil {
		cp.hasLatency = true
		cp.Latency = b.Latency.CheckpointState()
	}
	if b.Window != nil {
		cp.Window = b.Window.UsageState()
	}
	if b.Meter != nil {
		st := b.Meter.CheckpointState()
		cp.Meter = &st
	}
	if b.Sampler != nil {
		st := b.Sampler.CheckpointState()
		cp.Sampler = &st
	}
	if b.Spans != nil {
		st := b.Spans.CheckpointState()
		cp.Spans = &st
	}
	return cp, nil
}

// Encode renders the checkpoint as deterministic indented JSON with a
// trailing newline (struct fields marshal in declaration order).
func (cp *Checkpoint) Encode() []byte {
	doc := checkpointDoc{
		Version:    cp.Version,
		Scenario:   cp.Scenario,
		Engine:     cp.Engine,
		Recorder:   cp.Recorder,
		HasLatency: cp.hasLatency,
		Latency:    cp.Latency,
		Window:     cp.Window,
		Meter:      cp.Meter,
		Sampler:    cp.Sampler,
		Spans:      cp.Spans,
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		panic("scenario: checkpoint encode: " + err.Error())
	}
	return append(data, '\n')
}

// DecodeCheckpoint parses and structurally validates a scenario
// checkpoint. Every rejection is a positioned *Error (file:path: msg;
// checkpoints are machine-written, so there is no line map). Semantic
// validation against a particular spec happens in Built.Restore.
func DecodeCheckpoint(file string, data []byte) (*Checkpoint, error) {
	cerr := func(path, format string, args ...interface{}) error {
		return &Error{File: file, Path: path, Msg: fmt.Sprintf(format, args...)}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc checkpointDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, cerr("", "offset %d: %v", dec.InputOffset(), err)
	}
	if dec.More() {
		return nil, cerr("", "trailing data after the checkpoint object")
	}
	if doc.Version != CheckpointVersion {
		return nil, cerr("version", "unsupported checkpoint version %d (want %d)", doc.Version, CheckpointVersion)
	}
	if doc.Scenario == "" {
		return nil, cerr("scenario", "missing scenario name")
	}
	if doc.Engine == nil {
		return nil, cerr("engine", "missing engine state")
	}
	if err := doc.Engine.Validate(); err != nil {
		if ce, ok := err.(*sim.CheckpointError); ok {
			return nil, cerr("engine."+ce.Path, "%s", ce.Msg)
		}
		return nil, cerr("engine", "%v", err)
	}
	if len(doc.Latency) > 0 && !doc.HasLatency {
		return nil, cerr("latency", "latency series present without has_latency")
	}
	for i, v := range doc.Latency {
		if v < 0 {
			return nil, cerr(fmt.Sprintf("latency[%d]", i), "negative latency %d", v)
		}
	}
	return &Checkpoint{
		Version:    doc.Version,
		Scenario:   doc.Scenario,
		Engine:     doc.Engine,
		Recorder:   doc.Recorder,
		Latency:    doc.Latency,
		Window:     doc.Window,
		Meter:      doc.Meter,
		Sampler:    doc.Sampler,
		Spans:      doc.Spans,
		hasLatency: doc.HasLatency,
	}, nil
}

// Restore applies a checkpoint to b, which must be freshly built (not
// yet run) from the same spec the checkpoint was taken of. On error
// the build should be discarded: the engine may be partially restored.
func (b *Built) Restore(cp *Checkpoint) error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("scenario checkpoint: unsupported version %d (want %d)", cp.Version, CheckpointVersion)
	}
	if cp.Scenario != b.Spec.Name {
		return fmt.Errorf("scenario checkpoint: taken of %q, restoring into %q", cp.Scenario, b.Spec.Name)
	}
	if cp.Engine == nil {
		return fmt.Errorf("scenario checkpoint: missing engine state")
	}
	if (cp.Recorder != nil) != (b.Recorder != nil) {
		return fmt.Errorf("scenario checkpoint: recorder state present=%v but spec configures recorder=%v",
			cp.Recorder != nil, b.Recorder != nil)
	}
	if cp.hasLatency != (b.Latency != nil) {
		return fmt.Errorf("scenario checkpoint: latency state present=%v but spec configures latency=%v",
			cp.hasLatency, b.Latency != nil)
	}
	if len(cp.Window) > 0 && b.Window == nil {
		return fmt.Errorf("scenario checkpoint: window state present but spec configures no window validator")
	}
	if (cp.Meter != nil) != (b.Meter != nil) {
		return fmt.Errorf("scenario checkpoint: meter state present=%v but spec configures meter=%v",
			cp.Meter != nil, b.Meter != nil)
	}
	if (cp.Sampler != nil) != (b.Sampler != nil) {
		return fmt.Errorf("scenario checkpoint: sampler state present=%v but spec configures sampler=%v",
			cp.Sampler != nil, b.Sampler != nil)
	}
	if (cp.Spans != nil) != (b.Spans != nil) {
		return fmt.Errorf("scenario checkpoint: span state present=%v but spec configures spans=%v",
			cp.Spans != nil, b.Spans != nil)
	}
	if err := b.Engine.Restore(cp.Engine); err != nil {
		return err
	}
	if cp.Recorder != nil {
		if err := b.Recorder.RestoreState(*cp.Recorder); err != nil {
			return err
		}
	}
	if b.Latency != nil {
		b.Latency.RestoreState(cp.Latency)
	}
	if b.Window != nil {
		if err := b.Window.RestoreUsage(cp.Window); err != nil {
			return err
		}
	}
	if cp.Meter != nil {
		if err := b.Meter.RestoreState(*cp.Meter); err != nil {
			return err
		}
	}
	if cp.Sampler != nil {
		if err := b.Sampler.RestoreState(*cp.Sampler); err != nil {
			return err
		}
	}
	if cp.Spans != nil {
		if err := b.Spans.RestoreState(*cp.Spans); err != nil {
			return err
		}
	}
	return nil
}

// RunCheckpointed runs the spec's configured steps under mode (same
// values as RunMode) in segments of `every` steps, invoking save with
// a fresh checkpoint after each completed segment (including the final
// one). It starts from the engine's current step, so a restored build
// finishes only the remaining steps. The execution is identical to
// RunMode modulo leap-window boundaries at the segment seams.
func (b *Built) RunCheckpointed(mode string, every int64, save func(cp *Checkpoint, step int64) error) (Outcome, error) {
	if every < 1 {
		return Outcome{}, fmt.Errorf("scenario: checkpoint interval %d < 1", every)
	}
	if mode == "" {
		mode = ModeStep
	}
	steps := b.Spec.Run.Steps
	for done := b.Engine.Now(); done < steps; {
		seg := every
		if left := steps - done; seg > left {
			seg = left
		}
		switch mode {
		case ModeStep:
			b.Engine.Run(seg)
		case ModeQuiet:
			b.Engine.RunQuiet(seg)
		case ModeLeap:
			b.Engine.RunLeap(seg)
		default:
			return Outcome{}, fmt.Errorf("scenario: unknown run mode %q", mode)
		}
		done += seg
		cp, err := b.Checkpoint()
		if err != nil {
			return Outcome{}, err
		}
		if save != nil {
			if err := save(cp, done); err != nil {
				return Outcome{}, err
			}
		}
	}
	out := Outcome{
		Mode:         mode,
		Snap:         b.Engine.Snap(),
		Leaps:        b.Engine.Leaps(),
		MaxResidence: b.Engine.MaxResidence(true),
	}
	out.Snap.Stats.Nanos = 0
	out.Failures = b.evalChecks()
	return out, nil
}

// RunRemaining finishes a restored run: it executes the spec's
// configured steps minus the engine's current step under the spec's
// mode, then evaluates checks exactly as Run does.
func (b *Built) RunRemaining() Outcome {
	mode := b.Spec.Run.Mode
	if mode == "" {
		mode = ModeStep
	}
	left := b.Spec.Run.Steps - b.Engine.Now()
	if left < 0 {
		left = 0
	}
	switch mode {
	case ModeStep:
		b.Engine.Run(left)
	case ModeQuiet:
		b.Engine.RunQuiet(left)
	case ModeLeap:
		b.Engine.RunLeap(left)
	default:
		panic(fmt.Sprintf("scenario: unknown run mode %q", mode))
	}
	out := Outcome{
		Mode:         mode,
		Snap:         b.Engine.Snap(),
		Leaps:        b.Engine.Leaps(),
		MaxResidence: b.Engine.MaxResidence(true),
	}
	out.Snap.Stats.Nanos = 0
	out.Failures = b.evalChecks()
	return out
}
