package rational

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// bigOf converts r to a math/big.Rat for oracle comparisons.
func bigOf(r Rat) *big.Rat { return big.NewRat(r.Num(), r.Den()) }

// eqBig reports whether r equals the big.Rat oracle value b.
func eqBig(r Rat, b *big.Rat) bool { return bigOf(r).Cmp(b) == 0 }

// fitsInt64 reports whether b (already in lowest terms — big.Rat
// normalizes) is representable as an int64/int64 Rat with a positive
// denominator.
func fitsInt64(b *big.Rat) bool {
	return b.Num().IsInt64() && b.Denom().IsInt64()
}

// TestAddSubNoSpuriousOverflow pins the bug this file exists for: the
// old Add/Sub multiplied the raw denominators before reducing, so
// accumulating a small rate overflowed int64 long before the true
// reduced value did. With lcm-form reduction, any operation whose
// inputs share their denominator must succeed no matter how large the
// denominator is.
func TestAddSubNoSpuriousOverflow(t *testing.T) {
	bigDen := int64(3_037_000_499) // ~sqrt(MaxInt64); den*den overflows
	a := New(1, bigDen)
	var sum Rat
	for i := 0; i < 1000; i++ {
		sum = sum.Add(a) // pre-fix: panics on the first iteration (den*den)
	}
	if want := New(1000, bigDen); !sum.Eq(want) {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	if d := sum.Sub(New(999, bigDen)); !d.Eq(a) {
		t.Fatalf("sub = %v, want %v", d, a)
	}
	// Different but heavily-shared denominators: lcm fits, product does not.
	x, y := New(1, 2*bigDen), New(1, 3*bigDen)
	got := x.Add(y)
	want := new(big.Rat).Add(bigOf(x), bigOf(y))
	if !eqBig(got, want) {
		t.Fatalf("%v + %v = %v, want %v", x, y, got, want.RatString())
	}
}

// TestGcdMinInt64 pins the abs(MinInt64) bug: the old int64 abs
// returned MinInt64 unchanged (negative), feeding gcd a negative
// operand and corrupting the reduction.
func TestGcdMinInt64(t *testing.T) {
	r := New(math.MinInt64, 4)
	if want := New(math.MinInt64/4, 1); !r.Eq(want) {
		t.Fatalf("New(MinInt64, 4) = %v, want %v", r, want)
	}
	if r := New(math.MinInt64, 2); r.Num() != math.MinInt64/2 || r.Den() != 1 {
		t.Fatalf("New(MinInt64, 2) = %v", r)
	}
	if r := New(math.MinInt64, math.MinInt64); !r.Eq(FromInt(1)) {
		t.Fatalf("New(MinInt64, MinInt64) = %v, want 1", r)
	}
	if r := New(0, math.MinInt64); !r.IsZero() || r.Den() != 1 {
		t.Fatalf("New(0, MinInt64) = %v, want 0/1", r)
	}
	// MinInt64 with an odd coprime denominator cannot be normalized to a
	// positive den: documented panic, not silent corruption.
	defer func() {
		if recover() == nil {
			t.Fatalf("New(3, MinInt64) did not panic")
		}
	}()
	New(3, math.MinInt64)
}

// TestCheckedOverflowPanics verifies genuine overflow panics instead of
// wrapping: the reduced result itself does not fit int64.
func TestCheckedOverflowPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"add", func() { FromInt(math.MaxInt64).Add(FromInt(1)) }},
		{"sub", func() { FromInt(math.MinInt64).Sub(FromInt(1)) }},
		{"mul", func() { FromInt(math.MaxInt64).Mul(FromInt(2)) }},
		{"add-lcm", func() { New(math.MaxInt64, 2).Add(New(math.MaxInt64, 3)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected overflow panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

// TestArithmeticVsBigRat is the property test: on random operands, Add,
// Sub, Mul and Div agree exactly with math/big.Rat whenever they return
// at all; a panic is legal only when the exact result does not fit an
// int64/int64 rational (so lcm-reduction must have removed every
// avoidable overflow).
func TestArithmeticVsBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	randRat := func() Rat {
		// Mix magnitudes: small operands, shared denominators, and
		// near-extremal values that stress the checked paths.
		switch rng.Intn(4) {
		case 0:
			return New(rng.Int63n(2001)-1000, rng.Int63n(1000)+1)
		case 1:
			return New(rng.Int63n(201)-100, []int64{6, 12, 30, 210, 2310}[rng.Intn(5)])
		case 2:
			return New(rng.Int63()-rng.Int63(), rng.Int63n(1<<40)+1)
		default:
			return New(rng.Int63()-rng.Int63(), rng.Int63()+1)
		}
	}
	ops := []struct {
		name string
		rat  func(a, b Rat) Rat
		big  func(x, y *big.Rat) *big.Rat
		ok   func(b Rat) bool
	}{
		{"add", Rat.Add, func(x, y *big.Rat) *big.Rat { return new(big.Rat).Add(x, y) }, func(Rat) bool { return true }},
		{"sub", Rat.Sub, func(x, y *big.Rat) *big.Rat { return new(big.Rat).Sub(x, y) }, func(Rat) bool { return true }},
		{"mul", Rat.Mul, func(x, y *big.Rat) *big.Rat { return new(big.Rat).Mul(x, y) }, func(Rat) bool { return true }},
		{"div", Rat.Div, func(x, y *big.Rat) *big.Rat { return new(big.Rat).Quo(x, y) }, func(b Rat) bool { return !b.IsZero() }},
	}
	for i := 0; i < 20000; i++ {
		a, b := randRat(), randRat()
		op := ops[rng.Intn(len(ops))]
		if !op.ok(b) {
			continue
		}
		want := op.big(bigOf(a), bigOf(b))
		got, panicked := func() (r Rat, panicked bool) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			return op.rat(a, b), false
		}()
		if panicked {
			if fitsInt64(want) {
				t.Fatalf("%s(%v, %v) panicked but exact result %s fits int64",
					op.name, a, b, want.RatString())
			}
			continue
		}
		if !eqBig(got, want) {
			t.Fatalf("%s(%v, %v) = %v, want %s", op.name, a, b, got, want.RatString())
		}
	}
}

// TestCmpVsBigRat checks the comparison chain (Cmp routes through Sub)
// against the oracle on operands whose differences stay in range.
func TestCmpVsBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		a := New(rng.Int63n(1<<30)-(1<<29), rng.Int63n(1<<20)+1)
		b := New(rng.Int63n(1<<30)-(1<<29), rng.Int63n(1<<20)+1)
		if got, want := a.Cmp(b), bigOf(a).Cmp(bigOf(b)); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
}
