package rational

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	cases := []struct {
		num, den, wantNum, wantDen int64
	}{
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 7, 0, 1},
		{6, 3, 2, 1},
		{7, 7, 1, 1},
		{10, 15, 2, 3},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantNum || r.Den() != c.wantDen {
			t.Errorf("New(%d,%d) = %v, want %d/%d", c.num, c.den, r, c.wantNum, c.wantDen)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueUsable(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Error("zero value not zero")
	}
	if r.Den() != 1 {
		t.Errorf("zero value Den = %d, want 1", r.Den())
	}
	if got := r.Add(New(1, 2)); !got.Eq(New(1, 2)) {
		t.Errorf("0 + 1/2 = %v", got)
	}
	if got := r.FloorMulInt(100); got != 0 {
		t.Errorf("0*100 floor = %d", got)
	}
	if r.String() != "0" {
		t.Errorf("String = %q", r.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Eq(New(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Eq(New(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Eq(New(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
	if got := half.Div(third); !got.Eq(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
	if got := half.Inv(); !got.Eq(FromInt(2)) {
		t.Errorf("inv(1/2) = %v", got)
	}
	if got := half.MulInt(6); !got.Eq(FromInt(3)) {
		t.Errorf("1/2*6 = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	New(1, 2).Div(FromInt(0))
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r          Rat
		floor, cil int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(4, 2), 2, 2},
		{New(-4, 2), -2, -2},
		{New(0, 5), 0, 0},
		{New(1, 3), 0, 1},
		{New(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.cil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.cil)
		}
	}
}

func TestFloorCeilMulInt(t *testing.T) {
	r := New(3, 5) // 0.6
	for _, tc := range []struct{ t, floor, cil int64 }{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 2}, {3, 1, 2}, {4, 2, 3}, {5, 3, 3}, {10, 6, 6},
	} {
		if got := r.FloorMulInt(tc.t); got != tc.floor {
			t.Errorf("floor(0.6*%d) = %d, want %d", tc.t, got, tc.floor)
		}
		if got := r.CeilMulInt(tc.t); got != tc.cil {
			t.Errorf("ceil(0.6*%d) = %d, want %d", tc.t, got, tc.cil)
		}
	}
}

func TestFloorMulIntLargeT(t *testing.T) {
	// Splitting by the denominator must avoid overflow for big t.
	r := New(7, 10)
	const T = int64(1) << 50
	want := (T/10)*7 + (T%10)*7/10
	if got := r.FloorMulInt(T); got != want {
		t.Errorf("FloorMulInt big: got %d want %d", got, want)
	}
}

func TestCmpOrdering(t *testing.T) {
	vals := []Rat{New(-3, 2), New(-1, 3), FromInt(0), New(1, 4), New(1, 3), New(1, 2), FromInt(1), New(7, 2)}
	for i := range vals {
		for j := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vals[i].Cmp(vals[j]); got != want {
				t.Errorf("Cmp(%v,%v) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
	if !New(1, 3).Less(New(1, 2)) {
		t.Error("1/3 < 1/2 failed")
	}
	if !New(1, 2).LessEq(New(1, 2)) {
		t.Error("1/2 <= 1/2 failed")
	}
}

func TestFromFloat(t *testing.T) {
	cases := []struct {
		f    float64
		want Rat
	}{
		{0.5, New(1, 2)},
		{0.6, New(3, 5)},
		{0.75, New(3, 4)},
		{1.0 / 3.0, New(1, 3)},
		{0, FromInt(0)},
		{2, FromInt(2)},
		{-0.25, New(-1, 4)},
	}
	for _, c := range cases {
		got := FromFloat(c.f, 1_000_000)
		if !got.Eq(c.want) {
			t.Errorf("FromFloat(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestFromFloatApproximation(t *testing.T) {
	for _, f := range []float64{0.851, math.Pi / 4, 0.123456} {
		got := FromFloat(f, 1_000_000)
		if math.Abs(got.Float()-f) > 1e-6 {
			t.Errorf("FromFloat(%v) = %v (%.9f), too far", f, got, got.Float())
		}
	}
}

func TestString(t *testing.T) {
	if s := New(3, 5).String(); s != "3/5" {
		t.Errorf("String = %q", s)
	}
	if s := FromInt(4).String(); s != "4" {
		t.Errorf("String = %q", s)
	}
	if s := New(-3, 5).String(); s != "-3/5" {
		t.Errorf("String = %q", s)
	}
}

// Property: Add/Sub round-trip.
func TestQuickAddSub(t *testing.T) {
	f := func(an, bn int32, ad, bd uint8) bool {
		a := New(int64(an), int64(ad)+1)
		b := New(int64(bn), int64(bd)+1)
		return a.Add(b).Sub(b).Eq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mul/Div round-trip for nonzero divisor.
func TestQuickMulDiv(t *testing.T) {
	f := func(an, bn int16, ad, bd uint8) bool {
		if bn == 0 {
			return true
		}
		a := New(int64(an), int64(ad)+1)
		b := New(int64(bn), int64(bd)+1)
		return a.Mul(b).Div(b).Eq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: floor(r*t) is monotone in t and within [r*t-1, r*t].
func TestQuickFloorMulMonotone(t *testing.T) {
	f := func(num uint16, den uint8, steps uint8) bool {
		r := New(int64(num%1000), int64(den)+1)
		prev := int64(0)
		for i := int64(1); i <= int64(steps); i++ {
			cur := r.FloorMulInt(i)
			if cur < prev {
				return false
			}
			exact := r.MulInt(i)
			if FromInt(cur).Cmp(exact) > 0 {
				return false
			}
			if exact.Sub(FromInt(cur)).Cmp(FromInt(1)) >= 0 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacerExactSchedule(t *testing.T) {
	p := NewPacer(New(3, 5))
	var total int64
	for i := int64(1); i <= 100; i++ {
		n := p.Tick()
		if n < 0 || n > 1 {
			t.Fatalf("tick %d emitted %d events (rate < 1 must emit 0 or 1)", i, n)
		}
		total += n
		if want := New(3, 5).FloorMulInt(i); total != want {
			t.Fatalf("after %d ticks emitted %d, want %d", i, total, want)
		}
	}
	if p.Emitted() != 60 {
		t.Errorf("Emitted = %d, want 60", p.Emitted())
	}
	if p.Ticks() != 100 {
		t.Errorf("Ticks = %d, want 100", p.Ticks())
	}
}

func TestPacerRateAboveOne(t *testing.T) {
	p := NewPacer(New(5, 2))
	var total int64
	for i := 0; i < 8; i++ {
		total += p.Tick()
	}
	if total != 20 {
		t.Errorf("emitted %d, want 20", total)
	}
}

func TestPacerReset(t *testing.T) {
	p := NewPacer(New(1, 2))
	p.Tick()
	p.Tick()
	p.Reset()
	if p.Emitted() != 0 || p.Ticks() != 0 {
		t.Error("reset did not clear state")
	}
	if n := p.Tick(); n != 0 {
		t.Errorf("first tick after reset of rate 1/2 = %d, want 0", n)
	}
}

func TestPacerNegativeRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	NewPacer(New(-1, 2))
}

func TestCappedPacer(t *testing.T) {
	p := NewCappedPacer(New(2, 3), 7)
	var total int64
	for i := 0; i < 50; i++ {
		total += p.Tick()
	}
	if total != 7 {
		t.Errorf("capped pacer emitted %d, want 7", total)
	}
	if !p.Done() {
		t.Error("capped pacer not done")
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d", p.Remaining())
	}
}

func TestCappedPacerExactPacing(t *testing.T) {
	// Until the budget is hit the schedule must match the plain pacer.
	p := NewCappedPacer(New(3, 5), 1000)
	q := NewPacer(New(3, 5))
	for i := 0; i < 200; i++ {
		a, b := p.Tick(), q.Tick()
		if a != b {
			t.Fatalf("tick %d: capped %d vs plain %d", i, a, b)
		}
	}
}

func TestCappedPacerNegativeBudget(t *testing.T) {
	p := NewCappedPacer(New(1, 2), -5)
	if p.Tick() != 0 || !p.Done() {
		t.Error("negative budget should behave as zero")
	}
}

// Property: a capped pacer's lifetime total equals min(budget, floor(r*t)).
func TestQuickCappedTotal(t *testing.T) {
	f := func(num uint8, den uint8, budget uint8, ticks uint8) bool {
		r := New(int64(num%8), int64(den%8)+1)
		p := NewCappedPacer(r, int64(budget))
		var total int64
		for i := int64(0); i < int64(ticks); i++ {
			total += p.Tick()
		}
		want := r.FloorMulInt(int64(ticks))
		if want > int64(budget) {
			want = int64(budget)
		}
		return total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
