// Package rational implements exact small rational numbers used for
// adversary rate accounting.
//
// Adversarial queuing constructions are extremely sensitive to rounding:
// an injection stream must emit exactly floor(r*t) packets in its first t
// steps, and every validator must agree on that count bit for bit.
// Floating point cannot deliver that over millions of steps, so all rates
// in this repository are rationals with int64 numerator and denominator.
//
// Values are kept in lowest terms with a positive denominator. The zero
// value is 0/1 and ready to use.
package rational

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Rat is a rational number num/den in lowest terms, den > 0.
type Rat struct {
	num int64
	den int64
}

// New returns the rational num/den reduced to lowest terms.
// It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rat{num, den}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// FromFloat returns a rational approximation of f with denominator at
// most maxDen, computed with the Stern–Brocot (continued fraction)
// method. It is used only at API boundaries where a caller supplies a
// float rate such as 0.6; all internal arithmetic stays exact.
func FromFloat(f float64, maxDen int64) Rat {
	if maxDen < 1 {
		maxDen = 1
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("rational: cannot convert %v", f))
	}
	neg := f < 0
	if neg {
		f = -f
	}
	// Continued fraction expansion.
	var (
		h0, h1 int64 = 0, 1 // numerators
		k0, k1 int64 = 1, 0 // denominators
		x            = f
	)
	for i := 0; i < 64; i++ {
		a := int64(math.Floor(x))
		h2 := a*h1 + h0
		k2 := a*k1 + k0
		if k2 > maxDen || h2 < 0 || k2 < 0 {
			break
		}
		h0, h1 = h1, h2
		k0, k1 = k1, k2
		frac := x - float64(a)
		if frac < 1e-12 {
			break
		}
		x = 1 / frac
	}
	if k1 == 0 {
		return FromInt(0)
	}
	if neg {
		h1 = -h1
	}
	return New(h1, k1)
}

// Num returns the numerator (sign carrier).
func (r Rat) Num() int64 { return r.num }

// Den returns the denominator; it is always positive (1 for the zero value).
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1
	}
	return r.den
}

// normalized returns r with a nonzero denominator, so that the zero
// value Rat{} behaves as 0/1.
func (r Rat) normalized() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// Sign returns -1, 0 or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// Float returns the float64 value of r (for reporting only).
func (r Rat) Float() float64 {
	r = r.normalized()
	return float64(r.num) / float64(r.den)
}

// String formats r as "num/den", or "num" when den == 1.
func (r Rat) String() string {
	r = r.normalized()
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	r, s = r.normalized(), s.normalized()
	return New(r.num*s.den+s.num*r.den, r.den*s.den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat {
	r, s = r.normalized(), s.normalized()
	return New(r.num*s.den-s.num*r.den, r.den*s.den)
}

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.normalized(), s.normalized()
	// Cross-reduce first to keep intermediates small.
	g1 := gcd(abs(r.num), s.den)
	g2 := gcd(abs(s.num), r.den)
	return New((r.num/g1)*(s.num/g2), (r.den/g2)*(s.den/g1))
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat {
	s = s.normalized()
	if s.num == 0 {
		panic("rational: division by zero")
	}
	return r.Mul(New(s.den, s.num))
}

// MulInt returns r * n.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat { return FromInt(1).Div(r) }

// Cmp compares r and s, returning -1, 0 or +1.
func (r Rat) Cmp(s Rat) int {
	d := r.Sub(s)
	return d.Sign()
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Eq reports whether r == s.
func (r Rat) Eq(s Rat) bool { return r.Cmp(s) == 0 }

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	r = r.normalized()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	r = r.normalized()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// FloorMulInt returns floor(r * t) without overflow for moderate t.
// It is the cumulative-count primitive used by token buckets:
// a rate-r stream has emitted FloorMulInt(r, t) packets after t steps.
func (r Rat) FloorMulInt(t int64) int64 {
	r = r.normalized()
	// floor(num*t/den); num*t may overflow for very large t, so split t.
	hi, lo := t/r.den, t%r.den
	return r.num*hi + floorDiv(r.num*lo, r.den)
}

// CeilMulInt returns ceil(r * t).
func (r Rat) CeilMulInt(t int64) int64 {
	r = r.normalized()
	hi, lo := t/r.den, t%r.den
	return r.num*hi + ceilDiv(r.num*lo, r.den)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Parse reads a rate from its textual forms: a fraction "num/den", an
// integer "2", or a decimal "0.25" (converted via FromFloat with
// denominator up to 10^6). It accepts exactly what String produces, so
// Parse(r.String()) == r for every Rat. The empty string is an error.
func Parse(s string) (Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseInt(num, 10, 64)
		d, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return Rat{}, fmt.Errorf("rational: bad fraction %q", s)
		}
		return New(n, d), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return FromInt(n), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return Rat{}, fmt.Errorf("rational: bad rate %q", s)
	}
	return FromFloat(f, 1_000_000), nil
}
