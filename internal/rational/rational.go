// Package rational implements exact small rational numbers used for
// adversary rate accounting.
//
// Adversarial queuing constructions are extremely sensitive to rounding:
// an injection stream must emit exactly floor(r*t) packets in its first t
// steps, and every validator must agree on that count bit for bit.
// Floating point cannot deliver that over millions of steps, so all rates
// in this repository are rationals with int64 numerator and denominator.
//
// Values are kept in lowest terms with a positive denominator. The zero
// value is 0/1 and ready to use.
//
// Overflow policy: Add, Sub, Mul and Div return the exact result
// whenever it is representable as an int64/int64 rational. The fast
// path reduces intermediates before multiplying — Add/Sub combine over
// the lcm of the denominators instead of the raw product, Mul
// cross-reduces — and every intermediate multiply/add is
// overflow-checked; when one would overflow anyway, the operation
// recomputes through math/big off the hot path. Only a result that
// genuinely does not fit even in lowest terms panics with a
// "rational: int64 overflow" message rather than silently wrapping:
// rate accounting that has left int64 range is a programming error,
// and a wrapped rate would corrupt every downstream floor(r*t) count
// bit for bit. Cmp (and Less/LessEq/Eq) never overflows.
package rational

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"
)

// Rat is a rational number num/den in lowest terms, den > 0.
type Rat struct {
	num int64
	den int64
}

// New returns the rational num/den reduced to lowest terms.
// It panics if den == 0, or if the value cannot be represented with a
// positive int64 denominator (num or den equal to math.MinInt64 with
// no common factor to reduce away — negating MinInt64 overflows).
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	// Reduce on magnitudes first: mag handles MinInt64 (whose absolute
	// value does not fit int64), and dividing by a shared factor g > 1
	// pulls MinInt64 operands back into negatable range.
	if g := gcd(mag(num), mag(den)); g > 1 {
		num = signedDiv(num, g)
		den = signedDiv(den, g)
	}
	if den < 0 {
		if num == math.MinInt64 || den == math.MinInt64 {
			panic(fmt.Sprintf("rational: int64 overflow normalizing %d/%d", num, den))
		}
		num, den = -num, -den
	}
	return Rat{num, den}
}

// mag returns |a| as a uint64; unlike an int64 abs it is correct for
// math.MinInt64 (magnitude 1<<63).
func mag(a int64) uint64 {
	if a < 0 {
		return -uint64(a)
	}
	return uint64(a)
}

// signedDiv returns a/g computed on magnitudes, correct for
// a == math.MinInt64 (any divisor g > 1 brings the quotient back into
// int64 range).
func signedDiv(a int64, g uint64) int64 {
	q := int64(mag(a) / g)
	if a < 0 {
		return -q
	}
	return q
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// FromFloat returns a rational approximation of f with denominator at
// most maxDen, computed with the Stern–Brocot (continued fraction)
// method. It is used only at API boundaries where a caller supplies a
// float rate such as 0.6; all internal arithmetic stays exact.
func FromFloat(f float64, maxDen int64) Rat {
	if maxDen < 1 {
		maxDen = 1
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("rational: cannot convert %v", f))
	}
	neg := f < 0
	if neg {
		f = -f
	}
	// Continued fraction expansion.
	var (
		h0, h1 int64 = 0, 1 // numerators
		k0, k1 int64 = 1, 0 // denominators
		x            = f
	)
	for i := 0; i < 64; i++ {
		a := int64(math.Floor(x))
		h2 := a*h1 + h0
		k2 := a*k1 + k0
		if k2 > maxDen || h2 < 0 || k2 < 0 {
			break
		}
		h0, h1 = h1, h2
		k0, k1 = k1, k2
		frac := x - float64(a)
		if frac < 1e-12 {
			break
		}
		x = 1 / frac
	}
	if k1 == 0 {
		return FromInt(0)
	}
	if neg {
		h1 = -h1
	}
	return New(h1, k1)
}

// Num returns the numerator (sign carrier).
func (r Rat) Num() int64 { return r.num }

// Den returns the denominator; it is always positive (1 for the zero value).
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1
	}
	return r.den
}

// normalized returns r with a nonzero denominator, so that the zero
// value Rat{} behaves as 0/1.
func (r Rat) normalized() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// Sign returns -1, 0 or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// Float returns the float64 value of r (for reporting only).
func (r Rat) Float() float64 {
	r = r.normalized()
	return float64(r.num) / float64(r.den)
}

// String formats r as "num/den", or "num" when den == 1.
func (r Rat) String() string {
	r = r.normalized()
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// Add returns r + s. The sum is formed over lcm(r.den, s.den), not the
// raw denominator product: with g = gcd(r.den, s.den) it computes
// (r.num*(s.den/g) + s.num*(r.den/g)) / (r.den*(s.den/g)), so rates
// that share denominator structure — the common case for the token
// buckets accumulating r over millions of steps — never leave int64
// range on the fast path. See the package overflow policy for the
// fallback and panic rules.
func (r Rat) Add(s Rat) Rat { return r.addSub(s, false) }

// Sub returns r - s, reduced over lcm(r.den, s.den) exactly like Add.
func (r Rat) Sub(s Rat) Rat { return r.addSub(s, true) }

func (r Rat) addSub(s Rat, neg bool) Rat {
	r, s = r.normalized(), s.normalized()
	g := int64(gcd(uint64(r.den), uint64(s.den))) // dens > 0, so exact
	sd := s.den / g
	x, ok1 := mulCheck(r.num, sd)
	y, ok2 := mulCheck(s.num, r.den/g)
	if neg {
		y = -y
		ok2 = ok2 && y != math.MinInt64 // -MinInt64 wraps to itself
	}
	if ok1 && ok2 {
		if num, ok := addCheck(x, y); ok {
			if den, ok := mulCheck(r.den, sd); ok {
				return New(num, den)
			}
		}
	}
	op, b := "+", new(big.Rat).Add(r.big(), s.big())
	if neg {
		op, b = "-", new(big.Rat).Sub(r.big(), s.big())
	}
	return fromBig(b, r, op, s)
}

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	r, s = r.normalized(), s.normalized()
	// Cross-reduce first to keep intermediates small.
	g1 := int64(gcd(mag(r.num), uint64(s.den)))
	g2 := int64(gcd(mag(s.num), uint64(r.den)))
	if num, ok := mulCheck(r.num/g1, s.num/g2); ok {
		if den, ok := mulCheck(r.den/g2, s.den/g1); ok {
			return New(num, den)
		}
	}
	return fromBig(new(big.Rat).Mul(r.big(), s.big()), r, "*", s)
}

// big returns r as a math/big.Rat (the overflow fallback path only).
func (r Rat) big() *big.Rat {
	r = r.normalized()
	return big.NewRat(r.num, r.den)
}

// fromBig converts the exact result b of the operation "x op y" back
// to a Rat, panicking when it does not fit an int64/int64 rational
// even in lowest terms (big.Rat keeps values normalized with a
// positive denominator, so the fields transfer directly).
func fromBig(b *big.Rat, x Rat, op string, y Rat) Rat {
	if b.Num().IsInt64() && b.Denom().IsInt64() {
		return Rat{b.Num().Int64(), b.Denom().Int64()}
	}
	panic(fmt.Sprintf("rational: int64 overflow in %v %s %v (exact value %s)",
		x, op, y, b.RatString()))
}

// Div returns r / s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat {
	s = s.normalized()
	if s.num == 0 {
		panic("rational: division by zero")
	}
	return r.Mul(New(s.den, s.num))
}

// MulInt returns r * n.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// Inv returns 1/r. It panics if r == 0.
func (r Rat) Inv() Rat { return FromInt(1).Div(r) }

// Cmp compares r and s, returning -1, 0 or +1. Comparison never
// overflows: the lcm-form cross products are overflow-checked and the
// rare out-of-range pair falls back to math/big.
func (r Rat) Cmp(s Rat) int {
	r, s = r.normalized(), s.normalized()
	g := int64(gcd(uint64(r.den), uint64(s.den)))
	x, ok1 := mulCheck(r.num, s.den/g)
	y, ok2 := mulCheck(s.num, r.den/g)
	if ok1 && ok2 {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	return r.big().Cmp(s.big())
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Eq reports whether r == s.
func (r Rat) Eq(s Rat) bool { return r.Cmp(s) == 0 }

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	r = r.normalized()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	r = r.normalized()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// FloorMulInt returns floor(r * t) without overflow for moderate t.
// It is the cumulative-count primitive used by token buckets:
// a rate-r stream has emitted FloorMulInt(r, t) packets after t steps.
func (r Rat) FloorMulInt(t int64) int64 {
	r = r.normalized()
	// floor(num*t/den); num*t may overflow for very large t, so split t.
	hi, lo := t/r.den, t%r.den
	return r.num*hi + floorDiv(r.num*lo, r.den)
}

// CeilMulInt returns ceil(r * t).
func (r Rat) CeilMulInt(t int64) int64 {
	r = r.normalized()
	hi, lo := t/r.den, t%r.den
	return r.num*hi + ceilDiv(r.num*lo, r.den)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// gcd returns the greatest common divisor of a and b (gcd(0, 0) = 1 so
// callers can always divide by it). It runs on uint64 magnitudes so
// the MinInt64 magnitude 1<<63 — which no int64 abs can represent — is
// handled exactly.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// mulCheck returns a*b and whether the product stayed in int64 range.
func mulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// Only a factor of exactly 1 keeps MinInt64 in range (the c/b
		// probe below would itself fault on MinInt64 / -1).
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// addCheck returns a+b and whether the sum stayed in int64 range.
func addCheck(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

// Parse reads a rate from its textual forms: a fraction "num/den", an
// integer "2", or a decimal "0.25" (converted via FromFloat with
// denominator up to 10^6). It accepts exactly what String produces, so
// Parse(r.String()) == r for every Rat. The empty string is an error.
func Parse(s string) (Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseInt(num, 10, 64)
		d, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return Rat{}, fmt.Errorf("rational: bad fraction %q", s)
		}
		return New(n, d), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return FromInt(n), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return Rat{}, fmt.Errorf("rational: bad rate %q", s)
	}
	return FromFloat(f, 1_000_000), nil
}
