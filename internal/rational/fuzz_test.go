package rational

import "testing"

// FuzzArithmetic checks the field axioms the rate machinery depends on
// for arbitrary inputs. Run with `go test -fuzz FuzzArithmetic` for a
// real fuzzing session; plain `go test` exercises the seed corpus.
func FuzzArithmetic(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4))
	f.Add(int64(-7), int64(3), int64(22), int64(10))
	f.Add(int64(0), int64(1), int64(-1), int64(1))
	f.Add(int64(1<<20), int64(3), int64(5), int64(1<<20))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		// Keep operands small enough that intermediates fit int64.
		an, bn = an%100000, bn%100000
		ad, bd = ad%1000, bd%1000
		if ad == 0 {
			ad = 1
		}
		if bd == 0 {
			bd = 1
		}
		a, b := New(an, ad), New(bn, bd)
		if !a.Add(b).Sub(b).Eq(a) {
			t.Fatalf("(%v+%v)-%v != %v", a, b, b, a)
		}
		if !a.Add(b).Eq(b.Add(a)) {
			t.Fatal("addition not commutative")
		}
		if !b.IsZero() && !a.Mul(b).Div(b).Eq(a) {
			t.Fatalf("(%v*%v)/%v != %v", a, b, b, a)
		}
		// floor <= value <= ceil, within 1 of each other.
		if fl, cl := a.Floor(), a.Ceil(); fl > cl || cl-fl > 1 {
			t.Fatalf("floor %d / ceil %d of %v", fl, cl, a)
		}
	})
}

// FuzzPacerCumulative checks the token-bucket identity: after t ticks
// at rate r, exactly floor(r*t) events have been emitted.
func FuzzPacerCumulative(f *testing.F) {
	f.Add(int64(3), int64(5), uint(50))
	f.Add(int64(1), int64(1), uint(10))
	f.Add(int64(7), int64(2), uint(30))
	f.Fuzz(func(t *testing.T, num, den int64, ticks uint) {
		num = int64(mag(num) % 100)
		den = int64(mag(den)%100) + 1
		if ticks > 3000 {
			ticks = 3000
		}
		r := New(num, den)
		p := NewPacer(r)
		var total int64
		for i := uint(0); i < ticks; i++ {
			total += p.Tick()
		}
		if want := r.FloorMulInt(int64(ticks)); total != want {
			t.Fatalf("rate %v after %d ticks: emitted %d, want %d", r, ticks, total, want)
		}
	})
}
