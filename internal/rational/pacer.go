package rational

// Pacer emits events at an exact long-run rate. A Pacer configured with
// rate r answers, for each consecutive tick, how many events are due at
// that tick, such that after t ticks exactly floor(r*t) events have been
// emitted (the canonical leaky-bucket schedule of a rate-r adversary
// stream). The zero value is a stopped pacer that never emits.
type Pacer struct {
	rate  Rat
	ticks int64 // number of ticks already consumed
	sent  int64 // events emitted so far
}

// NewPacer returns a pacer for the given rate. Negative rates panic.
func NewPacer(rate Rat) *Pacer {
	if rate.Sign() < 0 {
		panic("rational: negative pacer rate")
	}
	return &Pacer{rate: rate}
}

// Rate returns the configured rate.
func (p *Pacer) Rate() Rat { return p.rate }

// Tick advances the pacer by one tick and returns the number of events
// due at this tick: floor(r*(ticks+1)) - floor(r*ticks).
func (p *Pacer) Tick() int64 {
	p.ticks++
	due := p.rate.FloorMulInt(p.ticks)
	n := due - p.sent
	p.sent = due
	return n
}

// Emitted returns the total number of events emitted so far.
func (p *Pacer) Emitted() int64 { return p.sent }

// Ticks returns the number of ticks consumed so far.
func (p *Pacer) Ticks() int64 { return p.ticks }

// Reset restarts the pacer from zero.
func (p *Pacer) Reset() {
	p.ticks = 0
	p.sent = 0
}

// Restore sets the pacer's dynamic state to a previously observed
// (Ticks, Emitted) pair — checkpoint/restore support. The rate (and,
// for a CappedPacer, the budget) stays as constructed; the caller is
// responsible for pairing the state with a matching construction.
func (p *Pacer) Restore(ticks, sent int64) {
	p.ticks = ticks
	p.sent = sent
}

// CappedPacer is a Pacer that stops after emitting a fixed budget of
// events. It is used by adversary phases of the form "inject N packets
// at rate r starting at time t0": the stream paces at r until the
// budget is exhausted and then goes silent.
type CappedPacer struct {
	Pacer
	budget int64
}

// NewCappedPacer returns a pacer emitting at the given rate until
// budget events have been emitted in total.
func NewCappedPacer(rate Rat, budget int64) *CappedPacer {
	if budget < 0 {
		budget = 0
	}
	return &CappedPacer{Pacer: *NewPacer(rate), budget: budget}
}

// Tick advances by one tick and returns the number of events due,
// truncated so the lifetime total never exceeds the budget.
func (p *CappedPacer) Tick() int64 {
	if p.sent >= p.budget {
		p.ticks++
		return 0
	}
	n := p.Pacer.Tick()
	if over := p.sent - p.budget; over > 0 {
		n -= over
		p.sent = p.budget
	}
	return n
}

// Done reports whether the budget is exhausted.
func (p *CappedPacer) Done() bool { return p.sent >= p.budget }

// Remaining returns the number of events still to be emitted.
func (p *CappedPacer) Remaining() int64 { return p.budget - p.sent }

// Budget returns the configured lifetime budget.
func (p *CappedPacer) Budget() int64 { return p.budget }
