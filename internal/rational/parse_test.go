package rational

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
		ok   bool
	}{
		{"1/2", New(1, 2), true},
		{"3/4", New(3, 4), true},
		{"9/10", New(9, 10), true},
		{"-2/6", New(-1, 3), true},
		{"2", FromInt(2), true},
		{"0", Rat{}, true},
		{"0.25", New(1, 4), true},
		{"0.75", New(3, 4), true},
		{"", Rat{}, false},
		{"1/0", Rat{}, false},
		{"a/b", Rat{}, false},
		{"nan", Rat{}, false},
		{"+Inf", Rat{}, false},
		{"one half", Rat{}, false},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("Parse(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !got.Eq(tc.want) {
			t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Parse must invert String exactly: the scenario codec round-trips
// rates through their textual form.
func TestParseRoundTripsString(t *testing.T) {
	for _, r := range []Rat{New(1, 2), New(3, 4), New(7, 13), FromInt(5), New(-3, 8), Rat{}} {
		got, err := Parse(r.String())
		if err != nil || !got.Eq(r) {
			t.Errorf("Parse(String(%v)) = %v, %v", r, got, err)
		}
	}
}
