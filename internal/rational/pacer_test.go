package rational

import "testing"

// TestCappedPacerSingleTickOvershoot covers the truncation branch of
// CappedPacer.Tick: with rate 7 and budget 5 the very first tick owes
// 7 events, which must be clipped to the 5-event budget.
func TestCappedPacerSingleTickOvershoot(t *testing.T) {
	p := NewCappedPacer(FromInt(7), 5)
	if got := p.Tick(); got != 5 {
		t.Fatalf("first tick emitted %d, want 5", got)
	}
	if !p.Done() {
		t.Error("pacer should be done after clipping to budget")
	}
	if p.Emitted() != 5 {
		t.Errorf("Emitted = %d, want 5", p.Emitted())
	}
	if p.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", p.Remaining())
	}
	// Exhausted pacers keep counting ticks but never emit again.
	for i := 0; i < 3; i++ {
		if got := p.Tick(); got != 0 {
			t.Fatalf("post-budget tick emitted %d", got)
		}
	}
	if p.Ticks() != 4 {
		t.Errorf("Ticks = %d, want 4", p.Ticks())
	}
	if p.Emitted() != 5 {
		t.Errorf("Emitted after silence = %d, want 5", p.Emitted())
	}
}

// TestCappedPacerMidStreamOvershoot clips a later tick: rate 3,
// budget 5 emits 3, then 2 (not 3), then silence.
func TestCappedPacerMidStreamOvershoot(t *testing.T) {
	p := NewCappedPacer(FromInt(3), 5)
	if got := p.Tick(); got != 3 {
		t.Fatalf("tick 1 emitted %d, want 3", got)
	}
	if p.Done() {
		t.Error("not done at 3/5")
	}
	if got := p.Tick(); got != 2 {
		t.Fatalf("tick 2 emitted %d, want 2 (clipped from 3)", got)
	}
	if !p.Done() || p.Emitted() != 5 {
		t.Errorf("Done=%v Emitted=%d, want true/5", p.Done(), p.Emitted())
	}
	if got := p.Tick(); got != 0 {
		t.Errorf("tick 3 emitted %d, want 0", got)
	}
}
