package sim

import (
	"strings"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

func TestRecorderLastAndPeakBuffer(t *testing.T) {
	g := graph.Line(2)
	rec := NewRecorder(1)
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(rec)
	if (rec.Last() != Sample{}) {
		t.Error("Last on empty recorder should be zero")
	}
	e.SeedN(3, packet.InjNamed(g, "e1", "e2"))
	e.Run(2)
	last := rec.Last()
	if last.T != 2 {
		t.Errorf("Last.T = %d", last.T)
	}
	eid, peak := rec.PeakBuffer()
	if peak < 2 || eid == graph.NoEdge {
		t.Errorf("PeakBuffer = (%d, %d)", eid, peak)
	}
}

func TestRecorderPeakBufferOffSample(t *testing.T) {
	// Stride 2 samples only even steps. Three packets injected at step
	// 1 put the e1 buffer at its lifetime peak of 3 on an off-sample
	// step; by step 2 it has drained to 2. PeakBuffer must still
	// report 3.
	g := graph.Line(1)
	rec := NewRecorder(2)
	e := New(g, policy.FIFO{}, InjectFunc(func(e *Engine) []packet.Injection {
		if e.Now() != 1 {
			return nil
		}
		return []packet.Injection{
			packet.InjNamed(g, "e1"),
			packet.InjNamed(g, "e1"),
			packet.InjNamed(g, "e1"),
		}
	}))
	e.AddObserver(rec)
	e.Run(4)
	eid, peak := rec.PeakBuffer()
	if peak != 3 {
		t.Errorf("PeakBuffer = %d, want 3 (peak at off-sample step 1 missed)", peak)
	}
	if eid != g.MustEdge("e1") {
		t.Errorf("PeakBuffer edge = %v, want e1", eid)
	}
	if rec.PeakTotal() != 3 {
		t.Errorf("PeakTotal = %d, want 3", rec.PeakTotal())
	}
	// The series itself must still only hold sampled (even) steps.
	for _, s := range rec.Samples() {
		if s.T%2 != 0 {
			t.Errorf("off-stride sample at t=%d", s.T)
		}
	}
}

func TestRecorderDefaultStride(t *testing.T) {
	rec := NewRecorder(0)
	if rec.Stride != 1 {
		t.Errorf("stride = %d", rec.Stride)
	}
}

func TestRecorderZeroValueStride(t *testing.T) {
	// A literal Recorder{} never went through NewRecorder's stride
	// default, so OnStep used to divide by zero at e.Now()%r.Stride.
	// The zero value must behave like stride 1.
	g := graph.Line(1)
	rec := &Recorder{}
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(rec)
	e.SeedN(2, packet.InjNamed(g, "e1"))
	e.Run(3)
	if got := len(rec.Samples()); got != 3 {
		t.Errorf("zero-value Recorder took %d samples, want 3 (stride clamped to 1)", got)
	}
	if last := rec.Last(); last.T != 3 {
		t.Errorf("Last.T = %d, want 3", last.T)
	}
	// The clamp must not overwrite the configured stride.
	strided := &Recorder{Stride: 2}
	e2 := New(g, policy.FIFO{}, nil)
	e2.AddObserver(strided)
	e2.SeedN(2, packet.InjNamed(g, "e1"))
	e2.Run(4)
	if got := len(strided.Samples()); got != 2 {
		t.Errorf("stride-2 Recorder took %d samples, want 2", got)
	}
}

func TestAsciiPlotBounds(t *testing.T) {
	rec := NewRecorder(1)
	if got := rec.AsciiPlot(1, 1); !strings.Contains(got, "no samples") {
		t.Errorf("empty plot = %q", got)
	}
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(rec)
	e.SeedN(2, packet.InjNamed(g, "e1"))
	e.Run(3)
	plot := rec.AsciiPlot(1, 1) // clamped to minima
	if len(strings.Split(plot, "\n")) < 4 {
		t.Errorf("plot too small:\n%s", plot)
	}
}

func TestEngineAccessors(t *testing.T) {
	g := graph.Line(1)
	adv := NopAdversary{}
	e := New(g, policy.FIFO{}, adv)
	if e.Graph() != g {
		t.Error("Graph accessor")
	}
	if e.Policy().Name() != "FIFO" {
		t.Error("Policy accessor")
	}
	if e.Adversary() != Adversary(adv) {
		t.Error("Adversary accessor")
	}
}

func TestForEachQueuedOrder(t *testing.T) {
	g := graph.Line(2)
	e := New(g, policy.FIFO{}, nil)
	a := e.Seed(packet.InjNamed(g, "e1"))
	b := e.Seed(packet.InjNamed(g, "e2"))
	c := e.Seed(packet.InjNamed(g, "e1"))
	var order []packet.ID
	e.ForEachQueued(func(eid graph.EdgeID, p *packet.Packet) {
		order = append(order, p.ID)
	})
	// Edge ID order, then enqueue order within an edge.
	want := []packet.ID{a.ID, c.ID, b.ID}
	if len(order) != 3 {
		t.Fatalf("visited %d", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestNilGraphOrPolicyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil graph":  func() { New(nil, policy.FIFO{}, nil) },
		"nil policy": func() { New(graph.Line(1), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestInjectFuncAdapter(t *testing.T) {
	g := graph.Line(1)
	count := 0
	adv := InjectFunc(func(e *Engine) []packet.Injection {
		count++
		if e.Now() == 1 {
			return []packet.Injection{packet.InjNamed(g, "e1")}
		}
		return nil
	})
	adv.PreStep(nil) // no-op must not panic
	e := New(g, policy.FIFO{}, adv)
	e.Run(3)
	if count != 3 || e.Injected() != 1 {
		t.Errorf("count=%d injected=%d", count, e.Injected())
	}
}
