// Equivalence tests for the quiet observation path: RunQuiet must be
// the same execution as Run, observers must see every step exactly
// once, and event observers must keep firing under RunQuiet.
package sim_test

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// normalize clears the only nondeterministic Snapshot field (wall-clock
// nanoseconds) so snapshots of equal executions compare byte-identical.
func normalize(s sim.Snapshot) sim.Snapshot {
	s.Stats.Nanos = 0
	return s
}

// TestRunQuietEquivalence runs the same seeded random (w,r) workload
// three ways — RunQuiet, Run with zero observers, and a manual Step
// loop — for FIFO, LIS and NTG, and requires identical Snapshots and
// StepStats (modulo Nanos) plus identical per-edge queue lengths.
func TestRunQuietEquivalence(t *testing.T) {
	const steps = 500
	for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			build := func() *sim.Engine {
				g := graph.Line(12)
				adv := adversary.NewRandomWR(g, 20, rational.New(2, 5), 4, 23)
				e := sim.New(g, pol, adv)
				e.SeedN(3, packet.Injection{Route: []graph.EdgeID{0, 1}})
				return e
			}
			quiet, loud, manual := build(), build(), build()
			quiet.RunQuiet(steps)
			loud.Run(steps)
			for i := 0; i < steps; i++ {
				manual.Step()
			}
			sq, sl, sm := normalize(quiet.Snap()), normalize(loud.Snap()), normalize(manual.Snap())
			if sq != sl {
				t.Errorf("RunQuiet snapshot %+v != Run snapshot %+v", sq, sl)
			}
			if sq != sm {
				t.Errorf("RunQuiet snapshot %+v != Step-loop snapshot %+v", sq, sm)
			}
			for eid := 0; eid < quiet.Graph().NumEdges(); eid++ {
				id := graph.EdgeID(eid)
				if quiet.QueueLen(id) != loud.QueueLen(id) {
					t.Fatalf("edge %d: RunQuiet queue %d != Run queue %d",
						eid, quiet.QueueLen(id), loud.QueueLen(id))
				}
			}
		})
	}
}

// TestRunUntilQuietEquivalence pins the observer-free RunUntil fast
// path (stepCore, batch Nanos accounting) against a manual Step +
// predicate loop and against RunUntil with an observer attached: same
// fired flag, same stop time, same Snapshot, same queues — and the
// observed variant must still dispatch OnStep once per step.
func TestRunUntilQuietEquivalence(t *testing.T) {
	const maxSteps = 400
	pred := func(e *sim.Engine) bool { return e.Absorbed() >= 40 }
	for _, pol := range []policy.Policy{policy.FIFO{}, policy.NTG{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			build := func() *sim.Engine {
				g := graph.Line(10)
				adv := adversary.NewRandomWR(g, 18, rational.New(1, 3), 4, 31)
				e := sim.New(g, pol, adv)
				e.SeedN(3, packet.Injection{Route: []graph.EdgeID{0, 1}})
				return e
			}
			quiet, manual, observed := build(), build(), build()

			qFired := quiet.RunUntil(pred, maxSteps)
			mFired := false
			for i := int64(0); i < maxSteps; i++ {
				manual.Step()
				if pred(manual) {
					mFired = true
					break
				}
			}
			rec := &stepRecorder{}
			observed.AddObserver(rec)
			oFired := observed.RunUntil(pred, maxSteps)

			if qFired != mFired || qFired != oFired {
				t.Fatalf("fired: quiet %v, manual %v, observed %v", qFired, mFired, oFired)
			}
			sq, sm, so := normalize(quiet.Snap()), normalize(manual.Snap()), normalize(observed.Snap())
			if sq != sm {
				t.Errorf("quiet RunUntil snapshot %+v != Step-loop snapshot %+v", sq, sm)
			}
			if sq != so {
				t.Errorf("quiet RunUntil snapshot %+v != observed RunUntil snapshot %+v", sq, so)
			}
			for eid := 0; eid < quiet.Graph().NumEdges(); eid++ {
				id := graph.EdgeID(eid)
				if quiet.QueueLen(id) != manual.QueueLen(id) {
					t.Fatalf("edge %d: quiet queue %d != manual queue %d",
						eid, quiet.QueueLen(id), manual.QueueLen(id))
				}
			}
			if int64(len(rec.times)) != observed.Now() {
				t.Errorf("observed RunUntil dispatched OnStep %d times over %d steps",
					len(rec.times), observed.Now())
			}
			// The fast path must still account wall time in StepStats.
			if quiet.Snap().Stats.Nanos <= 0 {
				t.Error("quiet RunUntil recorded no Nanos")
			}
		})
	}
}

// TestRunUntilExhaustsBudget covers the pred-never-fires branch of the
// quiet fast path: exactly maxSteps are taken and false is returned.
func TestRunUntilExhaustsBudget(t *testing.T) {
	g := graph.Line(4)
	e := sim.New(g, policy.FIFO{}, adversary.NewRandomWR(g, 8, rational.New(1, 2), 3, 3))
	if e.RunUntil(func(*sim.Engine) bool { return false }, 57) {
		t.Error("RunUntil fired with an always-false predicate")
	}
	if e.Now() != 57 {
		t.Errorf("RunUntil took %d steps, want 57", e.Now())
	}
}

// stepRecorder records the engine time at every OnStep dispatch.
type stepRecorder struct {
	times []int64
}

func (r *stepRecorder) OnStep(e *sim.Engine) { r.times = append(r.times, e.Now()) }

// TestRunDispatchesEveryStep attaches a recording observer to Run and
// requires exactly one OnStep per step, in order.
func TestRunDispatchesEveryStep(t *testing.T) {
	g := graph.Line(6)
	e := sim.New(g, policy.FIFO{}, adversary.NewRandomWR(g, 10, rational.New(1, 2), 3, 5))
	rec := &stepRecorder{}
	e.AddObserver(rec)
	e.Run(64)
	if len(rec.times) != 64 {
		t.Fatalf("observer saw %d steps, want 64", len(rec.times))
	}
	for i, now := range rec.times {
		if now != int64(i+1) {
			t.Fatalf("dispatch %d saw t=%d, want %d", i, now, i+1)
		}
	}
}

// countingEventObserver counts event-observer callbacks (and OnStep, to
// prove RunQuiet suppresses it).
type countingEventObserver struct {
	steps, injects, reroutes, absorbs int
}

func (c *countingEventObserver) OnStep(*sim.Engine)                              { c.steps++ }
func (c *countingEventObserver) OnInject(int64, *packet.Packet)                  { c.injects++ }
func (c *countingEventObserver) OnReroute(int64, *packet.Packet, []graph.EdgeID) { c.reroutes++ }
func (c *countingEventObserver) OnAbsorb(int64, *packet.Packet)                  { c.absorbs++ }

// TestRunQuietDeliversEvents verifies the documented RunQuiet contract:
// OnStep is skipped, but injection and absorption events still fire.
func TestRunQuietDeliversEvents(t *testing.T) {
	g := graph.Line(8)
	e := sim.New(g, policy.FIFO{}, adversary.NewRandomWR(g, 12, rational.New(1, 2), 3, 9))
	ob := &countingEventObserver{}
	e.AddObserver(ob)
	e.RunQuiet(200)
	if ob.steps != 0 {
		t.Errorf("RunQuiet dispatched OnStep %d times, want 0", ob.steps)
	}
	if int64(ob.injects) != e.Injected() || ob.injects == 0 {
		t.Errorf("observer saw %d injections, engine reports %d", ob.injects, e.Injected())
	}
	if int64(ob.absorbs) != e.Absorbed() || ob.absorbs == 0 {
		t.Errorf("observer saw %d absorptions, engine reports %d", ob.absorbs, e.Absorbed())
	}
	if ob.reroutes != 0 {
		t.Errorf("RandomWR never reroutes, observer saw %d", ob.reroutes)
	}
}
