// Differential harness for the engine's incremental max-queue
// tracking: the old O(E) brute-force scan runs as a reference oracle
// against the incremental MaxQueued/MaxQueueLen after every step of
// seeded random (w,r) workloads — including reroutes
// (ReplaceRouteSuffix/ExtendRoute, which leave keyed-heap tombstones)
// and absorptions — on the paper's three topology regimes.
package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// bruteMaxQueue is the reference oracle: the pre-incremental O(E) scan,
// ties to the lowest edge ID, (NoEdge, 0) on an empty network.
func bruteMaxQueue(e *sim.Engine) (graph.EdgeID, int) {
	best, bestLen := graph.NoEdge, 0
	for eid := 0; eid < e.Graph().NumEdges(); eid++ {
		if l := e.QueueLen(graph.EdgeID(eid)); l > bestLen {
			best, bestLen = graph.EdgeID(eid), l
		}
	}
	return best, bestLen
}

// chaosRerouter wraps an inner adversary and, on a seeded schedule,
// truncates or extends the route of a random queued packet from
// PreStep — exercising ReplaceRouteSuffix (absorption at the current
// edge's head) and ExtendRoute (longer residence) against the
// incremental bookkeeping.
type chaosRerouter struct {
	inner sim.Adversary
	rng   *rand.Rand
	pkts  []*packet.Packet
}

func (c *chaosRerouter) PreStep(e *sim.Engine) {
	c.inner.PreStep(e)
	if c.rng.Intn(3) != 0 {
		return
	}
	c.pkts = c.pkts[:0]
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) {
		c.pkts = append(c.pkts, p)
	})
	if len(c.pkts) == 0 {
		return
	}
	p := c.pkts[c.rng.Intn(len(c.pkts))]
	if c.rng.Intn(2) == 0 {
		// Truncate: the packet absorbs after crossing its current edge.
		e.ReplaceRouteSuffix(p, nil)
		return
	}
	// Extend by one fresh edge when a simple continuation exists.
	g := e.Graph()
	onRoute := map[graph.NodeID]bool{g.Edge(p.Route[0]).From: true}
	for _, eid := range p.Route {
		onRoute[g.Edge(eid).To] = true
	}
	last := g.Edge(p.Route[len(p.Route)-1]).To
	for _, eid := range g.Out(last) {
		if !onRoute[g.Edge(eid).To] {
			e.ExtendRoute(p, []graph.EdgeID{eid})
			return
		}
	}
}

func (c *chaosRerouter) Inject(e *sim.Engine) []packet.Injection {
	return c.inner.Inject(e)
}

// TestMaxQueueLenDifferential drives random (w,r) load plus chaotic
// reroutes on Line/Ring/G_ε under FIFO (plain path), NTG (keyed-heap
// path) and a heterogeneous mix, asserting after every step that the
// incremental max equals the brute-force oracle, edge tie-break
// included.
func TestMaxQueueLenDifferential(t *testing.T) {
	topos := []struct {
		name   string
		build  func() *graph.Graph
		maxLen int
	}{
		{"Line9", func() *graph.Graph { return graph.Line(9) }, 4},
		{"Ring8", func() *graph.Graph { return graph.Ring(8) }, 4},
		{"Geps", func() *graph.Graph { return gadget.NewChain(3, 3, true).G }, 5},
	}
	pols := []policy.Policy{policy.FIFO{}, policy.NTG{}, policy.LIS{}}
	for _, tp := range topos {
		for _, pol := range pols {
			t.Run(fmt.Sprintf("%s/%s", tp.name, pol.Name()), func(t *testing.T) {
				g := tp.build()
				adv := &chaosRerouter{
					inner: adversary.NewRandomWR(g, 16, rational.New(1, 2), tp.maxLen, 11),
					rng:   rand.New(rand.NewSource(42)),
				}
				e := sim.New(g, pol, adv)
				// An initial configuration exercises seeds too.
				e.SeedN(5, packet.Injection{Route: []graph.EdgeID{0}})
				checkStep(t, e, 0)
				for step := 1; step <= 600; step++ {
					e.Step()
					checkStep(t, e, step)
				}
				e.CheckConservation()
			})
		}
	}
}

// TestMaxQueueLenDifferentialDrain covers the empty↔nonempty
// transitions: a seeded burst drains to an empty network, which must
// report (NoEdge, 0), then refills.
func TestMaxQueueLenDifferentialDrain(t *testing.T) {
	g := graph.Line(6)
	route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
	e := sim.New(g, policy.FIFO{}, nil)
	e.SeedN(7, packet.Inj(route...))
	for step := 1; step <= 40; step++ {
		e.Step()
		checkStep(t, e, step)
	}
	if eid, l := e.MaxQueueLen(); eid != graph.NoEdge || l != 0 {
		t.Fatalf("drained network reports max (%d, %d), want (NoEdge, 0)", eid, l)
	}
	if e.MaxQueued() != 0 {
		t.Fatalf("drained network MaxQueued = %d", e.MaxQueued())
	}
}

func checkStep(t *testing.T, e *sim.Engine, step int) {
	t.Helper()
	wantEdge, wantLen := bruteMaxQueue(e)
	if got := e.MaxQueued(); got != wantLen {
		t.Fatalf("step %d: incremental MaxQueued = %d, brute force = %d", step, got, wantLen)
	}
	gotEdge, gotLen := e.MaxQueueLen()
	if gotEdge != wantEdge || gotLen != wantLen {
		t.Fatalf("step %d: incremental MaxQueueLen = (%d, %d), brute force = (%d, %d)",
			step, gotEdge, gotLen, wantEdge, wantLen)
	}
}
