// Bounded buffers: finite per-edge capacity with pluggable drop
// policies, after Miller, Patt-Shamir and Rosenbaum ("With Great Speed
// Come Small Buffers", PODC 2019). With Config.BufferCap = B > 0 every
// edge buffer holds at most B packets; a packet arriving (by injection
// or transit) at a full buffer triggers the configured DropPolicy,
// which either discards the arrival or evicts a buffered packet to
// make room. Dropped packets leave the system permanently — they are
// never retransmitted — so the conservation law becomes
//
//	injected = absorbed + queued + dropped,
//
// enforced by Engine.CheckConservation. BufferCap = 0 (the default) is
// the paper's unbounded model; the engine is then bit-identical to an
// engine built without a Config (gated by the unbounded-equivalence
// differential tests in internal/scenario).
//
// Leap-mode compatibility: leaped windows require a static adversary
// horizon, so they contain no injections; idle windows hold no packets
// at all, and drain windows only move packets from final-edge buffers
// to absorption — no enqueue ever happens inside a leapable window, so
// no drop can. Bounded engines therefore leap exactly like unbounded
// ones, and RunLeap stays bit-identical to Run (proved for a bounded
// scenario in internal/scenario's differential matrix).
package sim

import (
	"fmt"

	"aqt/internal/buffer"
	"aqt/internal/graph"
	"aqt/internal/packet"
)

// DropPolicy decides what to discard when a packet arrives at a full
// buffer. Victim returns the enqueue-order index (0 = front) of the
// buffered packet to evict — the arrival is then enqueued at the back
// — or -1 to drop the arrival itself. Implementations must be
// deterministic functions of the buffer contents and the arrival;
// executions stay fully reproducible. The engine panics on any other
// return value.
type DropPolicy interface {
	Name() string
	Victim(buf *buffer.Buffer, p *packet.Packet, now int64) int
}

// DropTail discards the arriving packet (the classical tail-drop
// queue). Buffered packets are never disturbed, so scheduling under
// DropTail sees exactly the prefix of arrivals that fit.
type DropTail struct{}

// Name implements DropPolicy.
func (DropTail) Name() string { return "tail" }

// Victim implements DropPolicy: always the arrival.
func (DropTail) Victim(*buffer.Buffer, *packet.Packet, int64) int { return -1 }

// DropHead evicts the packet at the front of the buffer (the oldest in
// enqueue order) and admits the arrival — the drop-from-front queue,
// which favours fresh traffic over stale backlog.
type DropHead struct{}

// Name implements DropPolicy.
func (DropHead) Name() string { return "head" }

// Victim implements DropPolicy: always the front packet.
func (DropHead) Victim(*buffer.Buffer, *packet.Packet, int64) int { return 0 }

// DropNTG discards, among the buffered packets and the arrival, one
// with the fewest remaining hops (nearest to go — the packet that has
// the least work left and so frees the least future bandwidth by
// surviving). Ties break deterministically: the arrival is dropped
// when it ties the buffered minimum (survivors stay untouched), and
// among buffered ties the lowest enqueue-order index goes.
type DropNTG struct{}

// Name implements DropPolicy.
func (DropNTG) Name() string { return "ntg" }

// Victim implements DropPolicy.
func (DropNTG) Victim(buf *buffer.Buffer, p *packet.Packet, _ int64) int {
	min, at := p.RemainingHops(), -1
	for i := 0; i < buf.Len(); i++ {
		if h := buf.At(i).RemainingHops(); h < min {
			min, at = h, i
		}
	}
	return at
}

// DropByName returns the drop policy with the given name
// (tail | head | ntg).
func DropByName(name string) (DropPolicy, error) {
	switch name {
	case "tail":
		return DropTail{}, nil
	case "head":
		return DropHead{}, nil
	case "ntg":
		return DropNTG{}, nil
	}
	return nil, fmt.Errorf("unknown drop policy %q (tail|head|ntg)", name)
}

// DropObserver is additionally notified of every dropped packet: at
// step t, packet p was discarded at the full buffer of edge eid —
// either the arrival itself (never enqueued there) or an evicted
// resident. Fires from the same event-dispatch layer as the other
// event observers, so AddEventObserver wiring preserves the
// observerless Run fast path.
type DropObserver interface {
	OnDrop(t int64, eid graph.EdgeID, p *packet.Packet)
}

// tryEnqueue places p at the back of the buffer of its current edge,
// applying the capacity limit first: at a full buffer the drop policy
// either discards the arrival (tryEnqueue reports false and p is not
// enqueued anywhere) or evicts a resident to make room. In unbounded
// mode (BufferCap == 0) this is exactly enqueue.
func (e *Engine) tryEnqueue(p *packet.Packet, t int64) bool {
	if e.cfg.BufferCap > 0 {
		eid := p.CurrentEdge()
		if buf := &e.buffers[eid]; buf.Len() >= e.cfg.BufferCap {
			v := e.cfg.Drop.Victim(buf, p, t)
			if v < 0 {
				e.dropPacket(eid, p, t)
				return false
			}
			if v >= buf.Len() {
				panic(fmt.Sprintf("sim: drop policy %s returned victim index %d for a buffer of %d",
					e.cfg.Drop.Name(), v, buf.Len()))
			}
			e.evict(eid, v, t)
		}
	}
	e.enqueue(p, t)
	return true
}

// evict removes the resident at enqueue-order index v from the buffer
// of edge eid and accounts it as dropped, mirroring the send substep's
// bookkeeping: occupancy histogram, nonFinal count and — under a keyed
// policy — the lazy-deletion stale counter (the evicted packet's heap
// entry becomes a tombstone exactly like a sent packet's duplicate
// entries, and popKeyed discards it by IndexOfSeq miss).
func (e *Engine) evict(eid graph.EdgeID, v int, t int64) {
	buf := &e.buffers[eid]
	victim := buf.RemoveAt(v)
	e.shrinkLen(eid, buf.Len())
	if victim.Pos < len(victim.Route)-1 {
		e.nonFinal--
	}
	if e.keyed != nil {
		e.heapStale[eid]++
		e.heapStaleTot++
		if 2*e.heapStale[eid] > len(e.heaps[eid]) {
			e.compactHeap(int(eid))
		}
	}
	e.dropPacket(eid, victim, t)
}

// dropPacket accounts one dropped packet at edge eid and notifies the
// DropObservers. Only reachable in bounded mode, where dropsPerEdge is
// allocated.
func (e *Engine) dropPacket(eid graph.EdgeID, p *packet.Packet, t int64) {
	e.dropped++
	e.stats.Drops++
	e.dropsPerEdge[eid]++
	for _, ob := range e.dropObs {
		ob.OnDrop(t, eid, p)
	}
}

// Dropped returns the lifetime number of dropped packets (0 in
// unbounded mode).
func (e *Engine) Dropped() int64 { return e.dropped }

// DropsAt returns the lifetime number of packets dropped at the buffer
// of edge eid.
func (e *Engine) DropsAt(eid graph.EdgeID) int64 {
	if e.dropsPerEdge == nil {
		return 0
	}
	return e.dropsPerEdge[eid]
}

// BufferCap returns the per-edge buffer capacity (0 = unbounded).
func (e *Engine) BufferCap() int { return e.cfg.BufferCap }

// Drop returns the configured drop policy (nil in unbounded mode).
func (e *Engine) Drop() DropPolicy {
	if e.cfg.BufferCap == 0 {
		return nil
	}
	return e.cfg.Drop
}
