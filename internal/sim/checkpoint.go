// Checkpoint/restore: a versioned, deterministic JSON encoding of the
// complete engine state, built so that
//
//	run(T)            and            run(k); save; load; run(T-k)
//
// are indistinguishable executions: identical Snapshots (modulo the
// wall-clock Stats.Nanos, which is deliberately not serialized),
// identical per-edge queue contents, identical keyed-heap counters and
// identical observer output. The derived views — length histogram,
// incremental max tracking, active set, nonFinal counter, arenas — are
// canonically rebuilt on restore; everything whose *history* shows
// through the API (keyed-heap arrays and tombstone counts, StepStats,
// drop accounting, max residence) is serialized verbatim.
//
// A checkpoint does not embed the graph, policy or configuration: it
// carries fingerprints of them and Restore refuses a mismatched
// target. The caller rebuilds an identical engine (same topology,
// policy table, buffer config and adversary construction) and restores
// into it; internal/scenario wraps this with the spec file as the
// single source of truth.
//
// Decoding is hardened for hostile input (see FuzzCheckpointLoad in
// internal/scenario): every rejection is a positioned *CheckpointError
// and neither DecodeCheckpoint nor Restore ever panics — in particular
// the keyed-heap tombstone invariant (every buffered packet has a
// matching live heap entry) is validated before any state is mutated,
// so a restored engine can never trip popKeyed's exhaustion panic.
package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"aqt/internal/graph"
	"aqt/internal/packet"
)

// CheckpointVersion is the current encoding version. Bump it on any
// incompatible format change; the golden-format test pins the encoding
// byte-for-byte so accidental changes fail loudly.
const CheckpointVersion = 1

// Decode-side size caps: belt-and-braces bounds so hostile input is
// rejected before any large allocation or long validation loop.
const (
	maxCheckpointEdges   = 1 << 16 // mirrors the scenario compiler's topology cap
	maxCheckpointPackets = 1 << 22
	maxCheckpointRoute   = 1 << 12
	maxCheckpointHeap    = 1 << 23
)

// CheckpointError is a positioned checkpoint rejection: Path locates
// the offending value in the document ("buffers[3].packets[0].pos"),
// Msg says what is wrong with it.
type CheckpointError struct {
	Path string
	Msg  string
}

// Error implements error: "checkpoint: path: msg".
func (e *CheckpointError) Error() string {
	if e.Path == "" {
		return "checkpoint: " + e.Msg
	}
	return "checkpoint: " + e.Path + ": " + e.Msg
}

func cperrf(path, format string, args ...interface{}) error {
	return &CheckpointError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// PacketCheckpoint serializes one queued packet. Every field of
// packet.Packet is carried: EnqueueSeq and ArrivedAt feed the keyed
// heap and residence accounting, Reroutes and the name fields are
// observable through traces and tags.
type PacketCheckpoint struct {
	ID         int64          `json:"id"`
	Route      []graph.EdgeID `json:"route"`
	Pos        int            `json:"pos"`
	InjectedAt int64          `json:"injected_at"`
	ArrivedAt  int64          `json:"arrived_at"`
	Seq        int64          `json:"seq"`
	Reroutes   int            `json:"reroutes,omitempty"`
	Tag        string         `json:"tag,omitempty"`
	Source     string         `json:"source,omitempty"`
}

// BufferCheckpoint is one nonempty per-edge buffer, packets in queue
// order (front first). Buffers appear in increasing edge order and
// empty buffers are omitted.
type BufferCheckpoint struct {
	Edge    graph.EdgeID       `json:"edge"`
	Packets []PacketCheckpoint `json:"packets"`
}

// HeapCheckpoint is one edge's keyed selection heap, serialized
// *verbatim* in array order (parallel Keys/Seqs arrays) together with
// its tombstone count. A canonical rebuild would be semantically
// equivalent but would change future HeapSkips/HeapCompactions — and
// the resume contract is bit-identical stats, so the lazy-deletion
// state is carried as-is.
type HeapCheckpoint struct {
	Edge  graph.EdgeID `json:"edge"`
	Keys  []int64      `json:"keys"`
	Seqs  []int64      `json:"seqs"`
	Stale int          `json:"stale,omitempty"`
}

// AdversaryState is an opaque, JSON-serializable adversary state blob:
// a kind tag naming the encoding plus the kind-specific payload.
type AdversaryState struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// CheckpointableAdversary is implemented by adversaries whose dynamic
// state can be extracted and later restored onto a freshly constructed
// instance (built from the same specification). RestoreState runs
// after the engine's own state has been applied, so implementations
// may consult the restored clock and queues (Sequence re-enters its
// current phase this way).
type CheckpointableAdversary interface {
	Adversary
	// CheckpointState extracts the adversary's dynamic state.
	CheckpointState() (AdversaryState, error)
	// RestoreState applies a previously extracted state. It must
	// validate st and return an error — never panic — on mismatched
	// kind or malformed payload.
	RestoreState(e *Engine, st AdversaryState) error
}

// CheckpointStats mirrors StepStats minus Nanos: wall-clock time is
// measurement, not state, and excluding it keeps the encoding a pure
// function of the execution (the golden-format test depends on that).
type CheckpointStats struct {
	Steps           int64 `json:"steps"`
	Sends           int64 `json:"sends"`
	Receives        int64 `json:"receives"`
	Injections      int64 `json:"injections"`
	Drops           int64 `json:"drops,omitempty"`
	HeapSkips       int64 `json:"heap_skips,omitempty"`
	HeapCompactions int64 `json:"heap_compactions,omitempty"`
	HeapRebuilds    int64 `json:"heap_rebuilds,omitempty"`
}

// LeapCheckpoint carries the cumulative LeapStats. Note that leap
// window *boundaries* are not state: a resumed run may split windows
// differently around the checkpoint step while producing an identical
// execution, so equivalence tests compare everything except this.
type LeapCheckpoint struct {
	Windows int64 `json:"windows"`
	Steps   int64 `json:"steps"`
	Idle    int64 `json:"idle,omitempty"`
	Drain   int64 `json:"drain,omitempty"`
}

// Checkpoint is the complete serializable engine state plus the
// fingerprints Restore validates against its target.
type Checkpoint struct {
	Version int `json:"version"`

	// Fingerprints of the non-serialized parts (graph, policy table,
	// buffer config). Restore refuses a target that does not match.
	NumNodes      int      `json:"num_nodes"`
	NumEdges      int      `json:"num_edges"`
	Policy        string   `json:"policy"`
	PolicyPerEdge []string `json:"policy_per_edge,omitempty"`
	BufferCap     int      `json:"buffer_cap,omitempty"`
	DropPolicy    string   `json:"drop_policy,omitempty"`

	Now          int64           `json:"now"`
	Started      bool            `json:"started,omitempty"`
	NextID       int64           `json:"next_id"`
	NextSeq      int64           `json:"next_seq"`
	Injected     int64           `json:"injected"`
	Absorbed     int64           `json:"absorbed"`
	Dropped      int64           `json:"dropped,omitempty"`
	MaxResidence int64           `json:"max_residence,omitempty"`
	Stats        CheckpointStats `json:"stats"`
	Leap         *LeapCheckpoint `json:"leap,omitempty"`

	// DropsPerEdge is present exactly when packets have been dropped
	// (bounded buffers); its length is NumEdges and it sums to Dropped.
	DropsPerEdge []int64 `json:"drops_per_edge,omitempty"`

	Buffers []BufferCheckpoint `json:"buffers,omitempty"`
	Heaps   []HeapCheckpoint   `json:"heaps,omitempty"`

	Adversary *AdversaryState `json:"adversary,omitempty"`
}

// Checkpoint extracts the engine's complete state. The engine itself
// is not mutated (resolving the cached max-queue edge excepted, which
// is semantically const). Fails if called mid-step (from an observer
// hook) or if the adversary implements CheckpointableAdversary and
// refuses to serialize.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	if e.midStep {
		return nil, cperrf("", "Checkpoint called mid-step (from an observer hook)")
	}
	c := &Checkpoint{
		Version:      CheckpointVersion,
		NumNodes:     e.g.NumNodes(),
		NumEdges:     e.g.NumEdges(),
		Policy:       e.pol.Name(),
		BufferCap:    e.cfg.BufferCap,
		Now:          e.now,
		Started:      e.started,
		NextID:       int64(e.nextID),
		NextSeq:      e.nextSeq,
		Injected:     e.injected,
		Absorbed:     e.absorbed,
		Dropped:      e.dropped,
		MaxResidence: e.maxResidence,
		Stats: CheckpointStats{
			Steps:           e.stats.Steps,
			Sends:           e.stats.Sends,
			Receives:        e.stats.Receives,
			Injections:      e.stats.Injections,
			Drops:           e.stats.Drops,
			HeapSkips:       e.stats.HeapSkips,
			HeapCompactions: e.stats.HeapCompactions,
			HeapRebuilds:    e.stats.HeapRebuilds,
		},
	}
	if e.polFor != nil {
		c.PolicyPerEdge = make([]string, len(e.polFor))
		for i, p := range e.polFor {
			c.PolicyPerEdge[i] = p.Name()
		}
	}
	if e.cfg.BufferCap > 0 {
		c.DropPolicy = e.cfg.Drop.Name()
	}
	if e.leapStats != (LeapStats{}) {
		c.Leap = &LeapCheckpoint{
			Windows: e.leapStats.Windows,
			Steps:   e.leapStats.Steps,
			Idle:    e.leapStats.Idle,
			Drain:   e.leapStats.Drain,
		}
	}
	if e.dropped > 0 && e.dropsPerEdge != nil {
		c.DropsPerEdge = append([]int64(nil), e.dropsPerEdge...)
	}
	for eid := range e.buffers {
		buf := &e.buffers[eid]
		if buf.Len() == 0 {
			continue
		}
		bc := BufferCheckpoint{Edge: graph.EdgeID(eid), Packets: make([]PacketCheckpoint, 0, buf.Len())}
		buf.Each(func(p *packet.Packet) bool {
			bc.Packets = append(bc.Packets, PacketCheckpoint{
				ID:         int64(p.ID),
				Route:      append([]graph.EdgeID(nil), p.Route...),
				Pos:        p.Pos,
				InjectedAt: p.InjectedAt,
				ArrivedAt:  p.ArrivedAt,
				Seq:        p.EnqueueSeq,
				Reroutes:   p.Reroutes,
				Tag:        p.Tag,
				Source:     p.SourceName,
			})
			return true
		})
		c.Buffers = append(c.Buffers, bc)
	}
	if e.keyed != nil {
		for eid := range e.heaps {
			h := e.heaps[eid]
			if len(h) == 0 {
				continue
			}
			hc := HeapCheckpoint{
				Edge:  graph.EdgeID(eid),
				Keys:  make([]int64, len(h)),
				Seqs:  make([]int64, len(h)),
				Stale: e.heapStale[eid],
			}
			for i, ent := range h {
				hc.Keys[i] = ent.key
				hc.Seqs[i] = ent.seq
			}
			c.Heaps = append(c.Heaps, hc)
		}
	}
	if ca, ok := e.adv.(CheckpointableAdversary); ok {
		st, err := ca.CheckpointState()
		if err != nil {
			return nil, cperrf("adversary", "%v", err)
		}
		c.Adversary = &st
	}
	return c, nil
}

// Encode renders the checkpoint as deterministic indented JSON with a
// trailing newline. encoding/json marshals struct fields in
// declaration order, so the byte output is a pure function of the
// state — the golden-format test pins it.
func (c *Checkpoint) Encode() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		// Only reachable with a hand-built checkpoint holding an
		// invalid RawMessage; Checkpoint() and DecodeCheckpoint never
		// produce one.
		panic("sim: checkpoint encode: " + err.Error())
	}
	return append(b, '\n')
}

// DecodeCheckpoint parses and structurally validates a checkpoint
// document. Every rejection is a *CheckpointError; hostile input never
// panics. Validation here covers everything that does not need the
// target engine (Restore adds the fingerprint, route and heap-content
// checks).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Checkpoint
	if err := dec.Decode(&c); err != nil {
		return nil, cperrf("", "offset %d: %v", dec.InputOffset(), err)
	}
	if dec.More() {
		return nil, cperrf("", "trailing data after the checkpoint object")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the checkpoint's internal consistency: version,
// bounds, monotone sequences, conservation, drop accounting and the
// heap-order property. It needs no engine.
func (c *Checkpoint) Validate() error {
	if c.Version != CheckpointVersion {
		return cperrf("version", "unsupported checkpoint version %d (want %d)", c.Version, CheckpointVersion)
	}
	if c.NumNodes < 0 || c.NumNodes > maxCheckpointEdges {
		return cperrf("num_nodes", "out of range: %d", c.NumNodes)
	}
	if c.NumEdges < 0 || c.NumEdges > maxCheckpointEdges {
		return cperrf("num_edges", "out of range: %d", c.NumEdges)
	}
	for path, v := range map[string]int64{
		"now": c.Now, "next_id": c.NextID, "next_seq": c.NextSeq,
		"injected": c.Injected, "absorbed": c.Absorbed, "dropped": c.Dropped,
		"max_residence": c.MaxResidence,
		"stats.steps":   c.Stats.Steps, "stats.sends": c.Stats.Sends,
		"stats.receives": c.Stats.Receives, "stats.injections": c.Stats.Injections,
		"stats.drops": c.Stats.Drops, "stats.heap_skips": c.Stats.HeapSkips,
		"stats.heap_compactions": c.Stats.HeapCompactions,
		"stats.heap_rebuilds":    c.Stats.HeapRebuilds,
	} {
		if v < 0 {
			return cperrf(path, "negative value %d", v)
		}
	}
	if c.Now > 0 && !c.Started {
		return cperrf("started", "now=%d but started=false", c.Now)
	}
	if c.Leap != nil {
		if c.Leap.Windows < 0 || c.Leap.Steps < 0 || c.Leap.Idle < 0 || c.Leap.Drain < 0 {
			return cperrf("leap", "negative leap counters %+v", *c.Leap)
		}
	}
	if c.BufferCap < 0 || c.BufferCap > 1<<20 {
		return cperrf("buffer_cap", "out of range: %d", c.BufferCap)
	}
	if (c.BufferCap > 0) != (c.DropPolicy != "") {
		return cperrf("drop_policy", "drop policy %q inconsistent with buffer cap %d", c.DropPolicy, c.BufferCap)
	}
	if c.PolicyPerEdge != nil && len(c.PolicyPerEdge) != c.NumEdges {
		return cperrf("policy_per_edge", "length %d != num_edges %d", len(c.PolicyPerEdge), c.NumEdges)
	}
	if c.Stats.Drops != c.Dropped {
		return cperrf("stats.drops", "%d != dropped %d", c.Stats.Drops, c.Dropped)
	}
	switch {
	case c.DropsPerEdge == nil:
		if c.Dropped != 0 {
			return cperrf("drops_per_edge", "missing with dropped=%d", c.Dropped)
		}
	case c.BufferCap == 0:
		return cperrf("drops_per_edge", "present for an unbounded engine")
	case len(c.DropsPerEdge) != c.NumEdges:
		return cperrf("drops_per_edge", "length %d != num_edges %d", len(c.DropsPerEdge), c.NumEdges)
	default:
		var sum int64
		for i, d := range c.DropsPerEdge {
			if d < 0 {
				return cperrf(fmt.Sprintf("drops_per_edge[%d]", i), "negative value %d", d)
			}
			sum += d
		}
		if sum != c.Dropped {
			return cperrf("drops_per_edge", "sum %d != dropped %d", sum, c.Dropped)
		}
	}

	var buffered int64
	prevEdge := graph.EdgeID(-1)
	for i := range c.Buffers {
		bc := &c.Buffers[i]
		path := fmt.Sprintf("buffers[%d]", i)
		if bc.Edge <= prevEdge || int(bc.Edge) >= c.NumEdges {
			return cperrf(path+".edge", "edge %d not strictly increasing within [0,%d)", bc.Edge, c.NumEdges)
		}
		prevEdge = bc.Edge
		if len(bc.Packets) == 0 {
			return cperrf(path+".packets", "empty buffer entry (omit empty buffers)")
		}
		if c.BufferCap > 0 && len(bc.Packets) > c.BufferCap {
			return cperrf(path+".packets", "%d packets exceed buffer cap %d", len(bc.Packets), c.BufferCap)
		}
		buffered += int64(len(bc.Packets))
		if buffered > maxCheckpointPackets {
			return cperrf(path, "total packet count exceeds cap %d", maxCheckpointPackets)
		}
		prevSeq := int64(-1)
		for j := range bc.Packets {
			pc := &bc.Packets[j]
			ppath := fmt.Sprintf("%s.packets[%d]", path, j)
			if pc.ID < 0 || pc.ID >= c.NextID {
				return cperrf(ppath+".id", "id %d outside [0,%d)", pc.ID, c.NextID)
			}
			if len(pc.Route) == 0 || len(pc.Route) > maxCheckpointRoute {
				return cperrf(ppath+".route", "route length %d outside [1,%d]", len(pc.Route), maxCheckpointRoute)
			}
			for k, eid := range pc.Route {
				if eid < 0 || int(eid) >= c.NumEdges {
					return cperrf(fmt.Sprintf("%s.route[%d]", ppath, k), "edge %d outside [0,%d)", eid, c.NumEdges)
				}
			}
			if pc.Pos < 0 || pc.Pos >= len(pc.Route) {
				return cperrf(ppath+".pos", "pos %d outside route of length %d", pc.Pos, len(pc.Route))
			}
			if pc.Route[pc.Pos] != bc.Edge {
				return cperrf(ppath+".pos", "route[%d]=%d but packet is buffered at edge %d", pc.Pos, pc.Route[pc.Pos], bc.Edge)
			}
			if pc.InjectedAt < 0 || pc.InjectedAt > c.Now {
				return cperrf(ppath+".injected_at", "%d outside [0,now=%d]", pc.InjectedAt, c.Now)
			}
			if pc.ArrivedAt < pc.InjectedAt || pc.ArrivedAt > c.Now {
				return cperrf(ppath+".arrived_at", "%d outside [injected_at=%d,now=%d]", pc.ArrivedAt, pc.InjectedAt, c.Now)
			}
			if pc.Seq <= prevSeq || pc.Seq >= c.NextSeq {
				return cperrf(ppath+".seq", "seq %d not strictly increasing within [0,%d)", pc.Seq, c.NextSeq)
			}
			prevSeq = pc.Seq
			if pc.Reroutes < 0 {
				return cperrf(ppath+".reroutes", "negative value %d", pc.Reroutes)
			}
		}
	}
	if c.Injected != c.Absorbed+c.Dropped+buffered {
		return cperrf("injected", "conservation violated: injected %d != absorbed %d + dropped %d + buffered %d",
			c.Injected, c.Absorbed, c.Dropped, buffered)
	}

	var heapTotal int
	prevEdge = -1
	for i := range c.Heaps {
		hc := &c.Heaps[i]
		path := fmt.Sprintf("heaps[%d]", i)
		if hc.Edge <= prevEdge || int(hc.Edge) >= c.NumEdges {
			return cperrf(path+".edge", "edge %d not strictly increasing within [0,%d)", hc.Edge, c.NumEdges)
		}
		prevEdge = hc.Edge
		if len(hc.Keys) != len(hc.Seqs) {
			return cperrf(path, "keys/seqs length mismatch: %d != %d", len(hc.Keys), len(hc.Seqs))
		}
		if len(hc.Keys) == 0 {
			return cperrf(path, "empty heap entry (omit empty heaps)")
		}
		heapTotal += len(hc.Keys)
		if heapTotal > maxCheckpointHeap {
			return cperrf(path, "total heap size exceeds cap %d", maxCheckpointHeap)
		}
		if hc.Stale < 0 || hc.Stale > len(hc.Keys) {
			return cperrf(path+".stale", "stale count %d outside [0,%d]", hc.Stale, len(hc.Keys))
		}
		for j := range hc.Seqs {
			if hc.Seqs[j] < 0 || hc.Seqs[j] >= c.NextSeq {
				return cperrf(fmt.Sprintf("%s.seqs[%d]", path, j), "seq %d outside [0,%d)", hc.Seqs[j], c.NextSeq)
			}
		}
		// The array is a binary min-heap ordered by (key, seq); a
		// violating array would silently change selection order.
		for j := 1; j < len(hc.Keys); j++ {
			p := (j - 1) / 2
			if hc.Keys[j] < hc.Keys[p] || (hc.Keys[j] == hc.Keys[p] && hc.Seqs[j] < hc.Seqs[p]) {
				return cperrf(fmt.Sprintf("%s.keys[%d]", path, j), "heap order violated against parent %d", p)
			}
		}
	}
	return nil
}

// Restore applies a decoded checkpoint to e, which must be a freshly
// constructed, never-run engine built over the same graph, policy
// table and buffer configuration (and, if the checkpoint carries
// adversary state, an adversary of the same kind, freshly constructed
// from the same specification). Pre-run seeds (Engine.Seed) are
// permitted on the target and wiped: restore overwrites the engine's
// entire dynamic state rather than merging into it. All engine-state
// validation happens before any mutation: on error the engine is
// untouched, except that a failure while restoring the adversary's own
// state (the final stage) leaves the engine restored with a fresh
// adversary — discard it.
func (e *Engine) Restore(c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if e.started || e.now != 0 {
		return cperrf("", "restore target must not have run (now=%d, started=%v)", e.now, e.started)
	}
	// Fingerprints.
	if c.NumNodes != e.g.NumNodes() || c.NumEdges != e.g.NumEdges() {
		return cperrf("num_edges", "graph mismatch: checkpoint %d nodes/%d edges, engine %d/%d",
			c.NumNodes, c.NumEdges, e.g.NumNodes(), e.g.NumEdges())
	}
	if c.Policy != e.pol.Name() {
		return cperrf("policy", "policy mismatch: checkpoint %q, engine %q", c.Policy, e.pol.Name())
	}
	if (c.PolicyPerEdge != nil) != (e.polFor != nil) {
		return cperrf("policy_per_edge", "per-edge policy table mismatch")
	}
	for i, name := range c.PolicyPerEdge {
		if name != e.polFor[i].Name() {
			return cperrf(fmt.Sprintf("policy_per_edge[%d]", i), "policy mismatch: checkpoint %q, engine %q", name, e.polFor[i].Name())
		}
	}
	if c.BufferCap != e.cfg.BufferCap {
		return cperrf("buffer_cap", "buffer cap mismatch: checkpoint %d, engine %d", c.BufferCap, e.cfg.BufferCap)
	}
	if c.BufferCap > 0 && c.DropPolicy != e.cfg.Drop.Name() {
		return cperrf("drop_policy", "drop policy mismatch: checkpoint %q, engine %q", c.DropPolicy, e.cfg.Drop.Name())
	}
	if len(c.Heaps) > 0 && e.keyed == nil {
		return cperrf("heaps", "heap state for a non-keyed policy %q", e.pol.Name())
	}
	// Routes must be paths in the *actual* graph (edge indices were
	// already bounds-checked). Skipped when the engine itself skips
	// route validation.
	if !e.cfg.SkipRouteCheck {
		for i := range c.Buffers {
			for j := range c.Buffers[i].Packets {
				pc := &c.Buffers[i].Packets[j]
				if !e.g.IsSimplePath(pc.Route) {
					return cperrf(fmt.Sprintf("buffers[%d].packets[%d].route", i, j), "not a simple path in the target graph")
				}
			}
		}
	}
	// Keyed-heap tombstone invariant: every buffered packet must have a
	// live heap entry (SelectionKey, EnqueueSeq), or popKeyed would
	// exhaust the heap with a nonempty buffer after restore.
	if e.keyed != nil {
		heapAt := make(map[graph.EdgeID]*HeapCheckpoint, len(c.Heaps))
		for i := range c.Heaps {
			heapAt[c.Heaps[i].Edge] = &c.Heaps[i]
		}
		for i := range c.Buffers {
			bc := &c.Buffers[i]
			hc := heapAt[bc.Edge]
			entries := map[[2]int64]bool{}
			if hc != nil {
				for j := range hc.Keys {
					entries[[2]int64{hc.Keys[j], hc.Seqs[j]}] = true
				}
			}
			for j := range bc.Packets {
				pc := &bc.Packets[j]
				p := packet.Packet{
					ID: packet.ID(pc.ID), Route: pc.Route, Pos: pc.Pos,
					InjectedAt: pc.InjectedAt, ArrivedAt: pc.ArrivedAt,
					EnqueueSeq: pc.Seq, Reroutes: pc.Reroutes,
				}
				if !entries[[2]int64{e.keyed.SelectionKey(&p), pc.Seq}] {
					return cperrf(fmt.Sprintf("buffers[%d].packets[%d]", i, j),
						"no live heap entry for buffered packet (key %d, seq %d): tombstone invariant violated",
						e.keyed.SelectionKey(&p), pc.Seq)
				}
			}
		}
	}

	// --- validation complete; apply ---
	// Wipe any pre-run seeds and their derived views first, so the
	// rebuild below starts from the same blank slate NewWithConfig
	// leaves behind.
	for i := range e.buffers {
		e.buffers[i].Clear()
	}
	e.active = e.active[:0]
	for i := range e.inAct {
		e.inAct[i] = false
	}
	for i := range e.lenCnt {
		e.lenCnt[i] = 0
	}
	e.lenCnt[0] = int32(e.g.NumEdges())
	e.curMax = 0
	e.maxEdge = graph.NoEdge
	e.maxDirty = false
	e.nonFinal = 0
	if e.keyed != nil {
		for i := range e.heaps {
			e.heaps[i] = nil
			e.heapStale[i] = 0
		}
		e.heapStaleTot = 0
	}
	e.now = c.Now
	e.started = c.Started
	e.nextID = packet.ID(c.NextID)
	e.nextSeq = c.NextSeq
	e.injected = c.Injected
	e.absorbed = c.Absorbed
	e.dropped = c.Dropped
	e.maxResidence = c.MaxResidence
	e.stats = StepStats{
		Steps:           c.Stats.Steps,
		Sends:           c.Stats.Sends,
		Receives:        c.Stats.Receives,
		Injections:      c.Stats.Injections,
		Drops:           c.Stats.Drops,
		HeapSkips:       c.Stats.HeapSkips,
		HeapCompactions: c.Stats.HeapCompactions,
		HeapRebuilds:    c.Stats.HeapRebuilds,
	}
	e.leapStats = LeapStats{}
	if c.Leap != nil {
		e.leapStats = LeapStats{
			Windows: c.Leap.Windows, Steps: c.Leap.Steps,
			Idle: c.Leap.Idle, Drain: c.Leap.Drain,
		}
	}
	if e.dropsPerEdge != nil {
		for i := range e.dropsPerEdge {
			e.dropsPerEdge[i] = 0
		}
		copy(e.dropsPerEdge, c.DropsPerEdge)
	}
	// Buffers, plus canonical rebuilds of every derived view: the
	// length histogram and incremental max tracking (via growLen, the
	// same invariant-maintaining path the live engine uses), the
	// sorted active set, and the nonFinal counter.
	for _, bc := range c.Buffers {
		buf := &e.buffers[bc.Edge]
		for i := range bc.Packets {
			pc := &bc.Packets[i]
			p := &packet.Packet{
				ID:         packet.ID(pc.ID),
				Route:      append([]graph.EdgeID(nil), pc.Route...),
				Pos:        pc.Pos,
				InjectedAt: pc.InjectedAt,
				ArrivedAt:  pc.ArrivedAt,
				EnqueueSeq: pc.Seq,
				Reroutes:   pc.Reroutes,
				Tag:        pc.Tag,
				SourceName: pc.Source,
			}
			buf.PushBack(p)
			if p.Pos < len(p.Route)-1 {
				e.nonFinal++
			}
			e.growLen(bc.Edge, buf.Len())
		}
		e.active = append(e.active, bc.Edge)
		e.inAct[bc.Edge] = true
	}
	if e.keyed != nil {
		for _, hc := range c.Heaps {
			h := make(keyHeap, len(hc.Keys))
			for i := range hc.Keys {
				h[i] = keyEntry{key: hc.Keys[i], seq: hc.Seqs[i]}
			}
			e.heaps[hc.Edge] = h
			e.heapStale[hc.Edge] = hc.Stale
			e.heapStaleTot += hc.Stale
		}
	}
	if c.Adversary != nil {
		ca, ok := e.adv.(CheckpointableAdversary)
		if !ok {
			return cperrf("adversary", "checkpoint carries %q adversary state but the engine's adversary (%T) is not checkpointable",
				c.Adversary.Kind, e.adv)
		}
		if err := ca.RestoreState(e, *c.Adversary); err != nil {
			if _, ok := err.(*CheckpointError); ok {
				return err
			}
			return cperrf("adversary", "%v", err)
		}
	}
	return nil
}
