// Fuzz harness for bounded buffers: a byte string drives an arbitrary
// interleaving of steps, injections and reroutes against a bounded
// engine on the keyed fast path (NTG heap) and its brute-force generic
// reference, under every drop policy. The executions must agree
// packet-by-packet while drops fire, and every buffer must obey the
// bounded-mode invariants: occupancy never exceeds the cap, survivors
// keep their enqueue order (the ring stays EnqueueSeq-sorted), drops
// never exceed injections, and conservation holds with the dropped
// term included.
package sim

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// checkBounded verifies the per-buffer bounded-mode invariants.
func checkBounded(t *testing.T, e *Engine, cap int, step int) {
	t.Helper()
	g := e.Graph()
	for eid := 0; eid < g.NumEdges(); eid++ {
		q := e.Queue(graph.EdgeID(eid))
		if q.Len() > cap {
			t.Fatalf("step %d edge %d: occupancy %d exceeds cap %d", step, eid, q.Len(), cap)
		}
		for i := 1; i < q.Len(); i++ {
			if q.At(i-1).EnqueueSeq >= q.At(i).EnqueueSeq {
				t.Fatalf("step %d edge %d: survivors out of enqueue order at %d (%d >= %d)",
					step, eid, i, q.At(i-1).EnqueueSeq, q.At(i).EnqueueSeq)
			}
		}
	}
	if d, inj := e.Dropped(), e.Injected(); d > inj {
		t.Fatalf("step %d: dropped %d > injected %d", step, d, inj)
	}
	var perEdge int64
	for eid := 0; eid < g.NumEdges(); eid++ {
		perEdge += e.DropsAt(graph.EdgeID(eid))
	}
	if perEdge != e.Dropped() {
		t.Fatalf("step %d: per-edge drop sum %d != total %d", step, perEdge, e.Dropped())
	}
}

// FuzzDropPolicy is the bounded-buffer analogue of
// FuzzKeyedHeapAgreement. Run with `go test -fuzz FuzzDropPolicy ./internal/sim`.
func FuzzDropPolicy(f *testing.F) {
	f.Add(uint8(1), uint8(0), []byte{1, 1, 1, 0, 2, 2, 0, 3, 0, 0})
	f.Add(uint8(2), uint8(1), []byte{1, 1, 1, 1, 1, 0, 0, 0})
	f.Add(uint8(0), uint8(2), []byte{0x45, 0x12, 0x00, 0xfe, 0x03, 0x27, 0x00, 0x81, 0x00})
	f.Add(uint8(7), uint8(2), []byte{1, 9, 17, 25, 33, 0, 2, 6, 0, 3, 11, 0})
	f.Fuzz(func(t *testing.T, capRaw, dropRaw uint8, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		cap := 1 + int(capRaw%4) // small caps so drops actually fire
		var drop DropPolicy
		switch dropRaw % 3 {
		case 0:
			drop = DropTail{}
		case 1:
			drop = DropHead{}
		default:
			drop = DropNTG{}
		}
		const nEdges = 6
		g := graph.Line(nEdges)
		cfg := Config{BufferCap: cap, Drop: drop}
		fastFeed, slowFeed := &feeder{}, &feeder{}
		fast := NewWithConfig(g, policy.NTG{}, fastFeed, cfg)
		slow := NewWithConfig(g, slowWrap{policy.NTG{}}, slowFeed, cfg)
		step := 0
		check := func() {
			fuzzCompare(t, fast, slow, step)
			checkBounded(t, fast, cap, step)
			if fast.Dropped() != slow.Dropped() {
				t.Fatalf("step %d: dropped %d (fast) vs %d (slow)", step, fast.Dropped(), slow.Dropped())
			}
		}
		for _, b := range ops {
			arg := int(b >> 2)
			switch b & 3 {
			case 0: // step both engines
				fast.Step()
				slow.Step()
				step++
				check()
			case 1: // queue an identical injection on both
				start := arg % nEdges
				end := start + (arg>>3)%(nEdges-start)
				route := make([]graph.EdgeID, 0, end-start+1)
				for eid := start; eid <= end; eid++ {
					route = append(route, graph.EdgeID(eid))
				}
				fastFeed.pending = append(fastFeed.pending, packet.Injection{Route: route})
				slowFeed.pending = append(slowFeed.pending, packet.Injection{Route: route})
			case 2: // truncate the arg-th queued packet (between steps: legal)
				fp, sp := nthQueued(fast, arg), nthQueued(slow, arg)
				if fp == nil {
					continue
				}
				fast.ReplaceRouteSuffix(fp, nil)
				slow.ReplaceRouteSuffix(sp, nil)
			case 3: // extend the arg-th queued packet down the line
				fp, sp := nthQueued(fast, arg), nthQueued(slow, arg)
				if fp == nil {
					continue
				}
				cur := int(fp.CurrentEdge())
				end := cur + 1 + (arg>>2)%(nEdges-cur)
				if end > nEdges-1 {
					end = nEdges - 1
				}
				suffix := make([]graph.EdgeID, 0, end-cur)
				for eid := cur + 1; eid <= end; eid++ {
					suffix = append(suffix, graph.EdgeID(eid))
				}
				fast.ReplaceRouteSuffix(fp, suffix)
				slow.ReplaceRouteSuffix(sp, suffix)
			}
		}
		// Drain to empty so absorption totals are final, then check
		// conservation — injected = absorbed + queued + dropped — on
		// both executions.
		for i := 0; i < 64 && fast.TotalQueued() > 0; i++ {
			fast.Step()
			slow.Step()
			step++
			check()
		}
		fast.CheckConservation()
		slow.CheckConservation()
	})
}
