package sim

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

func TestHeterogeneousPolicies(t *testing.T) {
	// Edge e1 runs LIFO, edge e2 (default) runs FIFO. Three packets
	// with distinguishable tags traverse e1 then e2.
	g := graph.Line(2)
	cfg := Config{PolicyFor: func(eid graph.EdgeID) policy.Policy {
		if eid == g.MustEdge("e1") {
			return policy.LIFO{}
		}
		return nil // default
	}}
	e := NewWithConfig(g, policy.FIFO{}, nil, cfg)
	for _, tag := range []string{"a", "b", "c"} {
		e.Seed(packet.TaggedInj(tag, g.MustEdge("e1"), g.MustEdge("e2")))
	}
	// LIFO at e1 releases c, b, a; FIFO at e2 preserves that order.
	var order []string
	for e.TotalQueued() > 0 && e.Now() < 20 {
		e.Step()
		q := e.Queue(g.MustEdge("e2"))
		if q.Len() > 0 {
			order = append(order, q.Back().Tag)
		}
	}
	want := "cba"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Errorf("arrival order at e2 = %q, want %q", got, want)
	}
}

func TestHeterogeneousDisablesKeyedPath(t *testing.T) {
	g := graph.Line(2)
	cfg := Config{PolicyFor: func(graph.EdgeID) policy.Policy { return policy.LIS{} }}
	e := NewWithConfig(g, policy.LIS{}, nil, cfg)
	if e.keyed != nil {
		t.Error("keyed path must be disabled for heterogeneous networks")
	}
	// And the engine still works.
	e.Seed(packet.InjNamed(g, "e1", "e2"))
	e.Run(2)
	if e.Absorbed() != 1 {
		t.Error("heterogeneous engine broken")
	}
}

func TestHeterogeneousDefaultFallback(t *testing.T) {
	// PolicyFor returning nil everywhere behaves as the main policy.
	g := graph.Line(1)
	cfg := Config{PolicyFor: func(graph.EdgeID) policy.Policy { return nil }}
	e := NewWithConfig(g, policy.FIFO{}, nil, cfg)
	e.SeedN(3, packet.InjNamed(g, "e1"))
	e.Run(3)
	if e.Absorbed() != 3 {
		t.Error("fallback policy broken")
	}
}
