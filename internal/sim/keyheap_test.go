// Property tests for the hand-rolled keyHeap in isolation, against a
// container/heap reference over the same (key, seq) ordering. Small
// key/seq ranges force ties and exact duplicates — the shapes the
// tombstone scheme creates when a reroute restores an earlier key.
package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap implements heap.Interface with keyHeap's ordering.
type refHeap []keyEntry

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(keyEntry)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func randEntry(rng *rand.Rand) keyEntry {
	return keyEntry{key: int64(rng.Intn(6) - 3), seq: int64(rng.Intn(24))}
}

// TestKeyHeapVsContainerHeap interleaves random pushes and pops and
// requires the pop sequence to match container/heap exactly, then
// drains both.
func TestKeyHeapVsContainerHeap(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h keyHeap
		ref := &refHeap{}
		heap.Init(ref)
		for op := 0; op < 1500; op++ {
			if ref.Len() == 0 || rng.Intn(3) != 0 {
				en := randEntry(rng)
				h.push(en)
				heap.Push(ref, en)
				continue
			}
			got, want := h.pop(), heap.Pop(ref).(keyEntry)
			if got != want {
				t.Fatalf("seed %d op %d: pop %+v, reference %+v", seed, op, got, want)
			}
		}
		for ref.Len() > 0 {
			got, want := h.pop(), heap.Pop(ref).(keyEntry)
			if got != want {
				t.Fatalf("seed %d drain: pop %+v, reference %+v", seed, got, want)
			}
		}
		if len(h) != 0 {
			t.Fatalf("seed %d: keyHeap retains %d entries after drain", seed, len(h))
		}
	}
}

// TestKeyHeapFloydConstruction pins the bottom-up construction used by
// compactHeap: Floyd-building a heap from an arbitrary entry slice must
// pop the same sequence as push-building it.
func TestKeyHeapFloydConstruction(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64)
		entries := make([]keyEntry, n)
		for i := range entries {
			entries[i] = randEntry(rng)
		}

		var pushed keyHeap
		for _, en := range entries {
			pushed.push(en)
		}
		floyd := make(keyHeap, n)
		copy(floyd, entries)
		for i := len(floyd)/2 - 1; i >= 0; i-- {
			floyd.siftDown(i)
		}

		for i := 0; i < n; i++ {
			a, b := pushed.pop(), floyd.pop()
			if a != b {
				t.Fatalf("seed %d pop %d: push-built %+v, Floyd-built %+v", seed, i, a, b)
			}
		}
	}
}
