// Allocation regression gates for the engine hot path. These assert
// the two steady-state regimes the benchmarks track — the pure seeded
// FIFO drain and sustained random (w,r) load — run at 0 allocs/op, so
// future PRs cannot silently reintroduce per-step allocations.
// AllocsPerRun divides total allocations by runs (integer division),
// so the amortized arena/ring chunk allocations measure as 0.
package sim_test

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestStepAllocsSeededFIFODrain(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	g := graph.Line(8)
	route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
	e := sim.New(g, policy.FIFO{}, nil)
	e.SeedN(1<<12, packet.Inj(route...))
	e.RunQuiet(64)
	if avg := testing.AllocsPerRun(256, func() { e.Step() }); avg != 0 {
		t.Errorf("seeded FIFO drain: %v allocs per Step, want 0", avg)
	}
}

func TestStepAllocsRandomWR(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	g := graph.Line(32)
	adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
	e := sim.New(g, policy.FIFO{}, adv)
	// Warm up into steady state: arenas, rings and the active set reach
	// their recycled capacities.
	e.RunQuiet(512)
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("random (w,r) load: %v allocs per Step, want 0", avg)
	}
}

// TestStepAllocsRecorded pins the observation path itself: a stride-32
// Recorder on random (w,r) load must not add per-step allocations
// (sample appends amortize below one alloc per step).
func TestStepAllocsRecorded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	g := graph.Line(32)
	adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
	e := sim.New(g, policy.FIFO{}, adv)
	rec := sim.NewRecorder(32)
	e.AddObserver(rec)
	e.Run(512)
	if avg := testing.AllocsPerRun(512, func() { e.Step() }); avg != 0 {
		t.Errorf("recorded random (w,r) load: %v allocs per Step, want 0", avg)
	}
}
