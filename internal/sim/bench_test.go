// Engine hot-path microbenchmarks. BenchmarkStep crosses the three
// policy shapes the engine special-cases (FIFO = ring-deque pop-front,
// LIS = keyed heap fast path, NTG = keyed on remaining hops) with the
// three topology regimes of the paper (Line, Ring, G_ε), all under
// sustained random (w,r) traffic. Run with
//
//	go test -bench=Step -benchmem ./internal/sim
//
// and compare against the BENCH_*.json trajectory emitted by
// cmd/bench.
package sim_test

import (
	"fmt"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// benchTopo names a topology generator; G_ε is the cyclic instability
// graph of Theorem 3.17 (three gadgets of path length 3, stitched).
type benchTopo struct {
	name   string
	build  func() *graph.Graph
	maxLen int
}

func benchTopos() []benchTopo {
	return []benchTopo{
		{"Line32", func() *graph.Graph { return graph.Line(32) }, 4},
		{"Ring16", func() *graph.Graph { return graph.Ring(16) }, 4},
		{"Geps", func() *graph.Graph { return gadget.NewChain(3, 3, true).G }, 5},
	}
}

func benchPolicies() []policy.Policy {
	return []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}}
}

// BenchmarkStep measures ns and allocations per engine step under
// steady random (w,r) load, per (topology, policy) pair.
func BenchmarkStep(b *testing.B) {
	for _, tp := range benchTopos() {
		for _, pol := range benchPolicies() {
			b.Run(fmt.Sprintf("%s/%s", tp.name, pol.Name()), func(b *testing.B) {
				g := tp.build()
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), tp.maxLen, 7)
				e := sim.New(g, pol, adv)
				// Warm up so steady-state buffers exist before timing.
				e.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
				b.ReportMetric(float64(e.TotalQueued()), "backlog")
			})
		}
	}
}

// BenchmarkStepRecorded measures the observation path the stability
// experiments and threshold searches drive: Step with a stride-1
// Recorder attached (peak tracking every step), against the same
// engine unobserved. Before the incremental max-queue counter the
// recorded variant scaled per-step cost with edge count (the Recorder
// forced an O(E) MaxQueueLen scan each step); the Line256 pair pins
// that the recorded/quiet gap no longer grows with E.
func BenchmarkStepRecorded(b *testing.B) {
	for _, n := range []int{32, 256} {
		for _, recorded := range []bool{false, true} {
			mode := "quiet"
			if recorded {
				mode = "stride1"
			}
			b.Run(fmt.Sprintf("Line%d/FIFO/%s", n, mode), func(b *testing.B) {
				g := graph.Line(n)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				e := sim.New(g, policy.FIFO{}, adv)
				if recorded {
					e.AddObserver(sim.NewRecorder(1))
				}
				e.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}

// rerouteChurn is a Lemma 3.3-shaped adversary: every step it reroutes
// `touch` packets of the gadget's ingress buffer, alternating between
// truncating the route after the current edge and restoring the full
// long route. Each key-changing reroute used to force an O(S) heap
// rebuild; under the tombstone scheme it is an O(log S) push.
type rerouteChurn struct {
	full  []graph.EdgeID
	tick  int
	touch int
}

func (c *rerouteChurn) PreStep(e *sim.Engine) {
	q := e.Queue(c.full[0])
	n := q.Len()
	if n == 0 {
		return
	}
	for i := 0; i < c.touch; i++ {
		c.tick++
		p := q.At(c.tick * 37 % n)
		if c.tick%2 == 0 {
			e.ReplaceRouteSuffix(p, nil)
		} else {
			e.ReplaceRouteSuffix(p, c.full[1:])
		}
	}
}

func (*rerouteChurn) Inject(*sim.Engine) []packet.Injection { return nil }

// BenchmarkStepReroute measures Step under sustained Lemma 3.3
// rerouting: S long-route packets at a gadget-chain ingress under a
// to-go policy, with 8 route replacements per step. This is the
// workload where the eager per-reroute heap rebuild cost O(S) per
// touch; the tombstone scheme pays O(log S).
func BenchmarkStepReroute(b *testing.B) {
	for _, pol := range []policy.Policy{policy.NTG{}, policy.FTG{}} {
		for _, s := range []int{1 << 10, 1 << 13} {
			b.Run(fmt.Sprintf("Geps/%s/S=%d", pol.Name(), s), func(b *testing.B) {
				c := gadget.NewChain(3, 2, false)
				full := c.LongRoute(1)
				mk := func() *sim.Engine {
					e := sim.New(c.G, pol, &rerouteChurn{full: full, touch: 8})
					e.SeedN(s, packet.Inj(full...))
					return e
				}
				e := mk()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if e.Queue(full[0]).Len() < s/2 {
						b.StopTimer()
						e = mk()
						b.StartTimer()
					}
					e.Step()
				}
				if st := e.Stats(); st.Steps > 0 {
					b.ReportMetric(float64(st.HeapCompactions)/float64(st.Steps), "compactions/step")
				}
			})
		}
	}
}

// BenchmarkStepSeededFIFO measures the paper's pump regime: one huge
// FIFO buffer draining along a line, no adversary — the pure
// send/receive path.
func BenchmarkStepSeededFIFO(b *testing.B) {
	for _, s := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			g := graph.Line(8)
			route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
			e := sim.New(g, policy.FIFO{}, nil)
			e.SeedN(s, packet.Inj(route...))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = sim.New(g, policy.FIFO{}, nil)
					e.SeedN(s, packet.Inj(route...))
					b.StartTimer()
				}
				e.Step()
			}
		})
	}
}
