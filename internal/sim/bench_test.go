// Engine hot-path microbenchmarks. BenchmarkStep crosses the three
// policy shapes the engine special-cases (FIFO = ring-deque pop-front,
// LIS = keyed heap fast path, NTG = keyed on remaining hops) with the
// three topology regimes of the paper (Line, Ring, G_ε), all under
// sustained random (w,r) traffic. Run with
//
//	go test -bench=Step -benchmem ./internal/sim
//
// and compare against the BENCH_*.json trajectory emitted by
// cmd/bench.
package sim_test

import (
	"fmt"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// benchTopo names a topology generator; G_ε is the cyclic instability
// graph of Theorem 3.17 (three gadgets of path length 3, stitched).
type benchTopo struct {
	name   string
	build  func() *graph.Graph
	maxLen int
}

func benchTopos() []benchTopo {
	return []benchTopo{
		{"Line32", func() *graph.Graph { return graph.Line(32) }, 4},
		{"Ring16", func() *graph.Graph { return graph.Ring(16) }, 4},
		{"Geps", func() *graph.Graph { return gadget.NewChain(3, 3, true).G }, 5},
	}
}

func benchPolicies() []policy.Policy {
	return []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}}
}

// BenchmarkStep measures ns and allocations per engine step under
// steady random (w,r) load, per (topology, policy) pair.
func BenchmarkStep(b *testing.B) {
	for _, tp := range benchTopos() {
		for _, pol := range benchPolicies() {
			b.Run(fmt.Sprintf("%s/%s", tp.name, pol.Name()), func(b *testing.B) {
				g := tp.build()
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), tp.maxLen, 7)
				e := sim.New(g, pol, adv)
				// Warm up so steady-state buffers exist before timing.
				e.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
				b.ReportMetric(float64(e.TotalQueued()), "backlog")
			})
		}
	}
}

// BenchmarkStepRecorded measures the observation path the stability
// experiments and threshold searches drive: Step with a stride-1
// Recorder attached (peak tracking every step), against the same
// engine unobserved. Before the incremental max-queue counter the
// recorded variant scaled per-step cost with edge count (the Recorder
// forced an O(E) MaxQueueLen scan each step); the Line256 pair pins
// that the recorded/quiet gap no longer grows with E.
func BenchmarkStepRecorded(b *testing.B) {
	for _, n := range []int{32, 256} {
		for _, recorded := range []bool{false, true} {
			mode := "quiet"
			if recorded {
				mode = "stride1"
			}
			b.Run(fmt.Sprintf("Line%d/FIFO/%s", n, mode), func(b *testing.B) {
				g := graph.Line(n)
				adv := adversary.NewRandomWR(g, 24, rational.New(1, 3), 4, 7)
				e := sim.New(g, policy.FIFO{}, adv)
				if recorded {
					e.AddObserver(sim.NewRecorder(1))
				}
				e.Run(256)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}

// BenchmarkStepSeededFIFO measures the paper's pump regime: one huge
// FIFO buffer draining along a line, no adversary — the pure
// send/receive path.
func BenchmarkStepSeededFIFO(b *testing.B) {
	for _, s := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			g := graph.Line(8)
			route := []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")}
			e := sim.New(g, policy.FIFO{}, nil)
			e.SeedN(s, packet.Inj(route...))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = sim.New(g, policy.FIFO{}, nil)
					e.SeedN(s, packet.Inj(route...))
					b.StartTimer()
				}
				e.Step()
			}
		})
	}
}
