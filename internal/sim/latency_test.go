package sim

import (
	"strings"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

func TestLatencyObserverBasics(t *testing.T) {
	g := graph.Line(3)
	lo := &LatencyObserver{}
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(lo)
	// Two packets over 3 hops, seeded at t=0: the first is absorbed at
	// step 3 (latency 3), the second queues one step behind at every
	// hop and is absorbed at step 4 (latency 4).
	e.SeedN(2, packet.InjNamed(g, "e1", "e2", "e3"))
	e.Run(6)
	if lo.Count() != 2 {
		t.Fatalf("recorded %d latencies", lo.Count())
	}
	st := lo.Stats()
	if st.Min != 3 || st.Max != 4 || st.Mean != 3.5 {
		t.Errorf("stats = %+v", st)
	}
	if st.P50 != 3 && st.P50 != 4 {
		t.Errorf("p50 = %d", st.P50)
	}
	if !strings.Contains(st.String(), "2 packets") {
		t.Errorf("String = %q", st.String())
	}
}

func TestLatencyObserverEmpty(t *testing.T) {
	lo := &LatencyObserver{}
	st := lo.Stats()
	if st.Count != 0 {
		t.Error("empty stats should have Count 0")
	}
	if !strings.Contains(st.String(), "no absorbed") {
		t.Errorf("String = %q", st.String())
	}
}

func TestLatencyPercentiles(t *testing.T) {
	g := graph.Line(1)
	lo := &LatencyObserver{}
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(lo)
	// 10 packets through one edge: latencies 1..10.
	e.SeedN(10, packet.InjNamed(g, "e1"))
	e.Run(12)
	st := lo.Stats()
	if st.Count != 10 || st.Min != 1 || st.Max != 10 {
		t.Fatalf("stats = %+v", st)
	}
	// Nearest-rank (ceil) indexing over latencies 1..10.
	if st.P50 != 6 {
		t.Errorf("p50 = %d, want 6", st.P50)
	}
	if st.P90 != 10 {
		t.Errorf("p90 = %d, want 10", st.P90)
	}
	if st.P99 != 10 {
		t.Errorf("p99 = %d, want 10", st.P99)
	}
}

// TestLatencyPercentileIndexing pins the nearest-rank (ceil) rule on
// hand-checkable sample sets. The seed code truncated p*(n-1), biasing
// every percentile low — P50 of two samples reported the minimum.
func TestLatencyPercentileIndexing(t *testing.T) {
	stats := func(lats ...int64) LatencyStats {
		lo := &LatencyObserver{lats: lats}
		return lo.Stats()
	}
	cases := []struct {
		name          string
		lats          []int64
		p50, p90, p99 int64
	}{
		{"single", []int64{7}, 7, 7, 7},
		{"pair", []int64{1, 9}, 9, 9, 9},
		{"triple", []int64{1, 5, 9}, 5, 9, 9},
		{"hundred", seq(1, 100), 51, 91, 100},
		{"unsorted", []int64{4, 2, 8, 6}, 6, 8, 8},
	}
	for _, c := range cases {
		st := stats(c.lats...)
		if st.P50 != c.p50 || st.P90 != c.p90 || st.P99 != c.p99 {
			t.Errorf("%s: p50/p90/p99 = %d/%d/%d, want %d/%d/%d",
				c.name, st.P50, st.P90, st.P99, c.p50, c.p90, c.p99)
		}
	}
}

// seq returns lo..hi inclusive.
func seq(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func TestAbsorptionObserverHook(t *testing.T) {
	g := graph.Line(2)
	var seen []packet.ID
	hook := absorbFunc(func(_ int64, p *packet.Packet) { seen = append(seen, p.ID) })
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(hook)
	a := e.Seed(packet.InjNamed(g, "e1", "e2"))
	b := e.Seed(packet.InjNamed(g, "e1"))
	e.Run(4)
	if len(seen) != 2 {
		t.Fatalf("absorptions seen: %d", len(seen))
	}
	// b (single hop, queued second) is absorbed at step 2; a at step 3.
	if seen[0] != b.ID || seen[1] != a.ID {
		t.Errorf("absorption order = %v", seen)
	}
}

// absorbFunc adapts a function to Observer + AbsorptionObserver.
type absorbFunc func(t int64, p *packet.Packet)

func (absorbFunc) OnStep(*Engine) {}

func (f absorbFunc) OnAbsorb(t int64, p *packet.Packet) { f(t, p) }
