package sim

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// dropLog records every OnDrop notification.
type dropLog struct {
	events []struct {
		t   int64
		eid graph.EdgeID
		id  packet.ID
	}
}

func (d *dropLog) OnDrop(t int64, eid graph.EdgeID, p *packet.Packet) {
	d.events = append(d.events, struct {
		t   int64
		eid graph.EdgeID
		id  packet.ID
	}{t, eid, p.ID})
}

func boundedLine(n, cap int, drop DropPolicy, adv Adversary) (*graph.Graph, *Engine) {
	g := graph.Line(n)
	e := NewWithConfig(g, policy.FIFO{}, adv, Config{BufferCap: cap, Drop: drop})
	return g, e
}

func TestDropTailRejectsOverflowArrivals(t *testing.T) {
	g, e := boundedLine(1, 2, DropTail{}, nil)
	log := &dropLog{}
	e.AddEventObserver(log)
	for i := 0; i < 5; i++ {
		e.Seed(packet.Inj(route(g, "e1")...))
	}
	// Cap 2: seeds 3, 4, 5 are dropped on arrival; the survivors are the
	// first two in admission order.
	if got := e.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3", got)
	}
	if got := e.QueueLen(g.MustEdge("e1")); got != 2 {
		t.Fatalf("queue %d, want 2", got)
	}
	if len(log.events) != 3 || log.events[0].id != 2 || log.events[2].id != 4 {
		t.Fatalf("drop log %v, want packets 2..4", log.events)
	}
	e.Run(5)
	if e.Absorbed() != 2 || e.TotalQueued() != 0 {
		t.Fatalf("after drain: %s", e.Snap())
	}
	if e.Injected() != 5 {
		t.Fatalf("injected %d, want 5 (drops still count as injections)", e.Injected())
	}
	e.CheckConservation() // injected = absorbed + queued + dropped
	if e.DropsAt(g.MustEdge("e1")) != 3 {
		t.Fatalf("per-edge drops %d, want 3", e.DropsAt(g.MustEdge("e1")))
	}
}

func TestDropHeadEvictsOldest(t *testing.T) {
	g, e := boundedLine(1, 2, DropHead{}, nil)
	for i := 0; i < 3; i++ {
		e.Seed(packet.Inj(route(g, "e1")...))
	}
	// Cap 2 under drop-head: seeding packet 2 evicts packet 0; the
	// buffer holds 1, 2 in enqueue order.
	if e.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", e.Dropped())
	}
	var ids []packet.ID
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) { ids = append(ids, p.ID) })
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("survivors %v, want [1 2]", ids)
	}
	e.CheckConservation()
}

func TestDropNTGVictimSelection(t *testing.T) {
	// Buffer holds a 3-hop and a 1-hop packet; a 2-hop arrival must
	// evict the 1-hop resident (strictly fewer remaining hops than the
	// arrival); then a 1-hop arrival ties the buffered minimum and is
	// itself dropped.
	g, e := boundedLine(3, 2, DropNTG{}, nil)
	e.Seed(packet.Inj(route(g, "e1", "e2", "e3")...)) // id 0, 3 hops
	e.Seed(packet.Inj(route(g, "e1")...))             // id 1, 1 hop
	e.Seed(packet.Inj(route(g, "e1", "e2")...))       // id 2, 2 hops: evicts id 1
	if e.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", e.Dropped())
	}
	// Buffered are now id 0 (3 hops) and id 2 (2 hops). A 1-hop arrival
	// finds no resident with strictly fewer hops, so it is itself
	// dropped (the arrival loses ties).
	e.Seed(packet.Inj(route(g, "e1")...)) // id 3, 1 hop
	if e.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", e.Dropped())
	}
	var ids []packet.ID
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) { ids = append(ids, p.ID) })
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("survivors %v, want [0 2]", ids)
	}
	e.CheckConservation()
}

func TestBoundedTransitDrops(t *testing.T) {
	// The receive substep precedes injections, so a transit arrival
	// filling the last slot makes a same-step injection at that edge
	// drop — and the admitted transit arrival still counts as a
	// receive.
	gl := graph.Line(2)
	e := NewWithConfig(gl, policy.FIFO{}, &onceInjector{at: 1, injs: []packet.Injection{
		packet.Inj(route(gl, "e2")...),
	}}, Config{BufferCap: 1, Drop: DropTail{}})
	e.Seed(packet.Inj(route(gl, "e1", "e2")...))
	// Step 1: seed crosses e1 and arrives at e2 (receive substep);
	// the injection also lands at e2 in the same substep. Arrival order
	// is transit first (receives precede injections), so the injected
	// packet finds e2 full and drops.
	e.Step()
	if e.Dropped() != 1 || e.QueueLen(gl.MustEdge("e2")) != 1 {
		t.Fatalf("after step 1: dropped %d queue %d: %s", e.Dropped(), e.QueueLen(gl.MustEdge("e2")), e.Snap())
	}
	if e.Stats().Receives != 1 {
		t.Fatalf("receives %d, want 1 (admitted transit arrival)", e.Stats().Receives)
	}
	e.Run(3)
	e.CheckConservation()
	if e.Absorbed() != 1 {
		t.Fatalf("absorbed %d, want 1", e.Absorbed())
	}
}

func TestBoundedKeyedPolicyEvictions(t *testing.T) {
	// Evictions under a keyed policy (NTG uses the per-edge heap fast
	// path) must keep the heap tombstone accounting consistent through
	// compactions. Hammer one edge with bursts that evict on every
	// arrival, then drain completely under each run mode and compare.
	build := func() *Engine {
		g := graph.Line(2)
		var injs []packet.Injection
		for i := 0; i < 6; i++ {
			injs = append(injs, packet.Inj(route(g, "e1", "e2")...))
			injs = append(injs, packet.Inj(route(g, "e1")...))
		}
		return NewWithConfig(g, policy.NTG{}, &onceInjector{at: 1, injs: injs},
			Config{BufferCap: 3, Drop: DropNTG{}})
	}
	ref := build()
	ref.Run(40)
	ref.CheckConservation()
	if ref.Dropped() == 0 {
		t.Fatal("scenario exercises no evictions")
	}
	snap := ref.Snap()
	snap.Stats.Nanos = 0
	for _, mode := range []string{"quiet", "leap"} {
		e := build()
		if mode == "quiet" {
			e.RunQuiet(40)
		} else {
			e.RunLeap(40)
		}
		e.CheckConservation()
		got := e.Snap()
		got.Stats.Nanos = 0
		if got != snap {
			t.Fatalf("%s mode diverges:\nref %+v\ngot %+v", mode, snap, got)
		}
	}
}

func TestUnboundedEngineNeverConsultsDropPolicy(t *testing.T) {
	g := graph.Line(1)
	e := NewWithConfig(g, policy.FIFO{}, nil, Config{})
	for i := 0; i < 100; i++ {
		e.Seed(packet.Inj(route(g, "e1")...))
	}
	if e.Dropped() != 0 || e.Drop() != nil || e.BufferCap() != 0 {
		t.Fatalf("unbounded engine reports bounded state: dropped=%d cap=%d", e.Dropped(), e.BufferCap())
	}
	e.CheckConservation()
}

func TestNegativeBufferCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BufferCap -1 did not panic")
		}
	}()
	NewWithConfig(graph.Line(1), policy.FIFO{}, nil, Config{BufferCap: -1})
}

func TestBoundedDefaultsToDropTail(t *testing.T) {
	e := NewWithConfig(graph.Line(1), policy.FIFO{}, nil, Config{BufferCap: 1})
	if e.Drop() == nil || e.Drop().Name() != "tail" {
		t.Fatalf("default drop policy = %v, want tail", e.Drop())
	}
}
