// Package sim implements the discrete-time execution engine of the
// adversarial queuing model.
//
// Semantics follow section 2 of Lotker, Patt-Shamir and Rosén (SICOMP
// 2004) exactly. Time proceeds in global steps 1, 2, …; each step has
// two substeps:
//
//  1. Send: from every nonempty buffer, the policy picks one packet,
//     which crosses the buffer's edge.
//  2. Receive + inject: crossing packets are absorbed at their
//     destination or enqueued at the buffer of the next edge on their
//     route; then the adversary's new packets are injected into the
//     buffers of the first edges of their routes.
//
// Packets arriving at the same buffer in the same step are enqueued in
// a documented deterministic order: first transit arrivals in
// increasing upstream-edge-ID order, then injections in the order the
// adversary emitted them. All built-in policies break their remaining
// ties on this enqueue order, so executions are fully deterministic.
//
// Before the first step the engine may be seeded with an initial
// configuration (packets present "at time 0"), as the constructions of
// sections 3 and 4 of the paper require.
//
// Rerouting (Lemma 3.3): during a PreStep callback — i.e. at time t
// before the send substep — the adversary may replace the suffix of a
// packet's route beyond its current edge. The engine checks path
// contiguity; model-level admissibility (new edges, shared edge,
// historic policy) is checked by adversary.RerouteValidator.
package sim

import (
	"fmt"
	"sort"
	"time"

	"aqt/internal/buffer"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// Adversary injects packets and optionally reroutes them. Both methods
// receive the engine for read access; they must mutate state only
// through the documented engine methods (ExtendRoute,
// ReplaceRouteSuffix).
type Adversary interface {
	// PreStep runs at the start of step t = e.Now(), before the send
	// substep; it may reroute packets.
	PreStep(e *Engine)
	// Inject runs in the second substep of step t = e.Now() and
	// returns the packets to inject at this step.
	Inject(e *Engine) []packet.Injection
}

// NopAdversary injects nothing. Useful for draining experiments.
type NopAdversary struct{}

// PreStep implements Adversary.
func (NopAdversary) PreStep(*Engine) {}

// Inject implements Adversary.
func (NopAdversary) Inject(*Engine) []packet.Injection { return nil }

// CheckpointState implements CheckpointableAdversary (no state).
func (NopAdversary) CheckpointState() (AdversaryState, error) {
	return AdversaryState{Kind: "nop"}, nil
}

// RestoreState implements CheckpointableAdversary.
func (NopAdversary) RestoreState(_ *Engine, st AdversaryState) error {
	if st.Kind != "nop" {
		return cperrf("adversary.kind", "adversary state kind %q, want \"nop\"", st.Kind)
	}
	return nil
}

// InjectFunc adapts a function to the Adversary interface (no
// rerouting).
type InjectFunc func(e *Engine) []packet.Injection

// PreStep implements Adversary.
func (InjectFunc) PreStep(*Engine) {}

// Inject implements Adversary.
func (f InjectFunc) Inject(e *Engine) []packet.Injection { return f(e) }

// Observer is notified after each completed step.
type Observer interface {
	OnStep(e *Engine)
}

// InjectionObserver is additionally notified of every injection
// (including initial-configuration seeds, which arrive with t = 0).
type InjectionObserver interface {
	OnInject(t int64, p *packet.Packet)
}

// RerouteObserver is additionally notified of every route change.
type RerouteObserver interface {
	OnReroute(t int64, p *packet.Packet, oldRoute []graph.EdgeID)
}

// AbsorptionObserver is additionally notified when a packet reaches
// its destination and leaves the network.
type AbsorptionObserver interface {
	OnAbsorb(t int64, p *packet.Packet)
}

// SendObserver is additionally notified of every send: during the first
// substep of step t, packet p was selected from the buffer of edge eid
// and is crossing it. The packet's Pos still points at eid when the
// callback fires.
type SendObserver interface {
	OnSend(t int64, eid graph.EdgeID, p *packet.Packet)
}

// MarkerObserver is notified of paper-level annotations — e.g. the
// adversary.Sequence phase markers the Lemma 3.6/3.13/3.15/3.16
// constructions emit — via Engine.Annotate.
type MarkerObserver interface {
	OnMarker(t int64, label string)
}

// FailureObserver is notified when an invariant check fails — the
// engine's own CheckConservation, or an external validator calling
// Engine.NotifyFailure before it reports/panics. The flight recorder
// (internal/obs) uses this to auto-dump the event tail.
type FailureObserver interface {
	OnFailure(e *Engine, reason string)
}

// Config tunes engine checking. The zero value enables full checking.
type Config struct {
	// SkipRouteCheck disables validation that injected routes are
	// simple directed paths. The model requires simplicity; disabling
	// is for stress tests only.
	SkipRouteCheck bool

	// PolicyFor, when non-nil, assigns a scheduling policy per edge
	// (heterogeneous networks in the sense of Koukopoulos et al.); the
	// engine's main policy serves as the default for edges where
	// PolicyFor returns nil. The keyed fast path is disabled in this
	// mode.
	PolicyFor func(e graph.EdgeID) policy.Policy

	// BufferCap bounds every edge buffer to at most BufferCap packets
	// (the Miller–Patt-Shamir–Rosenbaum bounded-buffer model; see
	// drop.go). 0, the default, is the paper's unbounded model.
	// Negative values panic.
	BufferCap int

	// Drop selects what to discard when a packet arrives at a full
	// buffer. Only consulted when BufferCap > 0; nil then defaults to
	// DropTail.
	Drop DropPolicy
}

// Engine executes one network under one policy and one adversary.
type Engine struct {
	g   *graph.Graph
	pol policy.Policy
	adv Adversary
	cfg Config

	now     int64
	buffers []buffer.Buffer
	active  []graph.EdgeID // edge IDs that may have nonempty buffers, always sorted
	inAct   []bool         // whether an edge ID is in active

	nextID  packet.ID
	nextSeq int64

	// Incremental max-queue tracking. Invariant (after every public
	// method returns): lenCnt[l] counts the edges whose buffer holds
	// exactly l packets (so sum(lenCnt) == NumEdges), curMax is the
	// largest l with lenCnt[l] > 0 (0 for an empty network), and —
	// unless maxDirty — maxEdge is the lowest edge ID whose buffer
	// holds curMax packets. Buffer lengths only ever change by ±1
	// (enqueue/send), so growLen/shrinkLen maintain curMax in O(1);
	// maxEdge is recomputed lazily by MaxQueueLen when a shrink made
	// the argmax unknown. The differential harness in
	// maxqueue_diff_test.go checks this invariant against a brute-force
	// scan after every step.
	lenCnt   []int32
	curMax   int
	maxEdge  graph.EdgeID
	maxDirty bool

	// Allocation arenas: injected routes and packets are carved out of
	// chunked backing slices so steady-state injection costs amortized
	// O(1/chunk) allocations per packet instead of 2.
	routeArena []graph.EdgeID
	pktArena   []packet.Packet

	stats StepStats

	injected     int64
	absorbed     int64
	dropped      int64            // bounded mode only (drop.go); 0 forever when BufferCap == 0
	dropsPerEdge []int64          // per-edge drop counters; nil in unbounded mode
	inFlight     []*packet.Packet // scratch for the current step's senders
	observers    []Observer
	injObs       []InjectionObserver
	rerObs       []RerouteObserver
	absObs       []AbsorptionObserver
	sendObs      []SendObserver
	markObs      []MarkerObserver
	failObs      []FailureObserver
	dropObs      []DropObserver

	maxResidence int64 // max completed residence in one buffer
	started      bool  // true once Step has run; seeds then refused

	// Keyed-policy fast path (see keyed.go): non-nil when the policy
	// implements policy.Keyed. heapStale counts, per edge, the heap
	// entries stranded as tombstones by key-changing reroutes; it
	// drives the amortized compaction of popKeyed's lazy deletion.
	keyed     policy.Keyed
	heaps     []keyHeap
	heapStale []int
	// heapStaleTot is sum(heapStale), maintained incrementally so
	// leap-acceptance probes (obs.Sampler) can ask "any tombstones
	// anywhere?" in O(1) every window without an O(E) scan.
	heapStaleTot int

	// midStep is true while stepCore runs its send/receive/inject
	// substeps; reroutes are legal only before them (from PreStep, or
	// between steps, which is equivalent to the next PreStep).
	midStep bool

	// polFor holds the per-edge policies of a heterogeneous network
	// (nil in the homogeneous case).
	polFor []policy.Policy

	// Leap mode (see leap.go). nonFinal counts the queued packets NOT
	// sitting on the last edge of their route; nonFinal == 0 is the
	// closed-form drain regime (every send absorbs, no receives).
	// Maintained by enqueue, the send substep and ReplaceRouteSuffix.
	nonFinal  int64
	leapStats LeapStats

	// leapObs is backed by leapObsArr so that registering the usual one
	// or two leap-aware observers costs no heap allocation — engine
	// construction stays alloc-identical to the pre-leap engine (the
	// per-probe alloc gate in cmd/bench counts it).
	leapObs    []LeapObserver
	leapObsArr [4]LeapObserver
}

// New returns an engine over graph g using the given policy and
// adversary (nil means NopAdversary) with default config.
func New(g *graph.Graph, pol policy.Policy, adv Adversary) *Engine {
	return NewWithConfig(g, pol, adv, Config{})
}

// NewWithConfig is New with an explicit Config.
func NewWithConfig(g *graph.Graph, pol policy.Policy, adv Adversary, cfg Config) *Engine {
	if g == nil || pol == nil {
		panic("sim: nil graph or policy")
	}
	if adv == nil {
		adv = NopAdversary{}
	}
	if cfg.BufferCap < 0 {
		panic(fmt.Sprintf("sim: negative BufferCap %d", cfg.BufferCap))
	}
	if cfg.BufferCap > 0 && cfg.Drop == nil {
		cfg.Drop = DropTail{}
	}
	e := &Engine{
		g:       g,
		pol:     pol,
		adv:     adv,
		cfg:     cfg,
		buffers: make([]buffer.Buffer, g.NumEdges()),
		inAct:   make([]bool, g.NumEdges()),
		lenCnt:  make([]int32, 64),
		maxEdge: graph.NoEdge,
	}
	e.lenCnt[0] = int32(g.NumEdges())
	e.leapObs = e.leapObsArr[:0]
	if cfg.BufferCap > 0 {
		// Allocated only in bounded mode, so unbounded construction
		// stays alloc-identical to the pre-bounded engine (the per-probe
		// alloc gate in cmd/bench counts it).
		e.dropsPerEdge = make([]int64, g.NumEdges())
	}
	if cfg.PolicyFor != nil {
		e.polFor = make([]policy.Policy, g.NumEdges())
		for eid := 0; eid < g.NumEdges(); eid++ {
			if p := cfg.PolicyFor(graph.EdgeID(eid)); p != nil {
				e.polFor[eid] = p
			} else {
				e.polFor[eid] = pol
			}
		}
	} else if k, ok := pol.(policy.Keyed); ok {
		e.keyed = k
		e.heaps = make([]keyHeap, g.NumEdges())
		e.heapStale = make([]int, g.NumEdges())
	}
	return e
}

// Graph returns the network.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Policy returns the scheduling policy.
func (e *Engine) Policy() policy.Policy { return e.pol }

// Adversary returns the adversary.
func (e *Engine) Adversary() Adversary { return e.adv }

// SetAdversary swaps the adversary. Sequenced constructions (the
// Theorem 3.17 driver) use this between phases.
func (e *Engine) SetAdversary(adv Adversary) {
	if adv == nil {
		adv = NopAdversary{}
	}
	e.adv = adv
}

// Now returns the index of the current (or last completed) step; 0
// before any step has run.
func (e *Engine) Now() int64 { return e.now }

// AddObserver registers a per-step observer; the event interfaces
// (InjectionObserver, RerouteObserver, AbsorptionObserver,
// SendObserver, MarkerObserver, FailureObserver) are detected
// automatically.
func (e *Engine) AddObserver(ob Observer) {
	e.observers = append(e.observers, ob)
	e.addEventInterfaces(ob)
}

// AddEventObserver registers an event-only observer: any of the event
// interfaces is detected and wired, but ob is NOT added to the OnStep
// dispatch list, so Run keeps its observerless fast path (RunQuiet) —
// the contract the flight recorder relies on. It panics if ob
// implements none of the event interfaces.
func (e *Engine) AddEventObserver(ob any) {
	if !e.addEventInterfaces(ob) {
		panic(fmt.Sprintf("sim: %T implements no event observer interface", ob))
	}
}

func (e *Engine) addEventInterfaces(ob any) bool {
	matched := false
	if io, ok := ob.(InjectionObserver); ok {
		e.injObs = append(e.injObs, io)
		matched = true
	}
	if ro, ok := ob.(RerouteObserver); ok {
		e.rerObs = append(e.rerObs, ro)
		matched = true
	}
	if ao, ok := ob.(AbsorptionObserver); ok {
		e.absObs = append(e.absObs, ao)
		matched = true
	}
	if so, ok := ob.(SendObserver); ok {
		e.sendObs = append(e.sendObs, so)
		matched = true
	}
	if mo, ok := ob.(MarkerObserver); ok {
		e.markObs = append(e.markObs, mo)
		matched = true
	}
	if fo, ok := ob.(FailureObserver); ok {
		e.failObs = append(e.failObs, fo)
		matched = true
	}
	if do, ok := ob.(DropObserver); ok {
		e.dropObs = append(e.dropObs, do)
		matched = true
	}
	if lo, ok := ob.(LeapObserver); ok {
		e.leapObs = append(e.leapObs, lo)
		matched = true
	}
	return matched
}

// Annotate emits a paper-level marker (e.g. a lemma phase name) to the
// registered MarkerObservers, timestamped with the current step. With
// none registered it is a no-op, so adversaries may annotate freely.
func (e *Engine) Annotate(label string) {
	for _, ob := range e.markObs {
		ob.OnMarker(e.now, label)
	}
}

// NotifyFailure reports a failed invariant to the registered
// FailureObservers (the flight recorder auto-dumps on it). Callers —
// CheckConservation, the adversary validators — invoke it before they
// panic or return the error, so the event tail is captured either way.
func (e *Engine) NotifyFailure(reason string) {
	for _, ob := range e.failObs {
		ob.OnFailure(e, reason)
	}
}

// Seed places a packet with the given route into the network as part
// of the initial configuration (time 0). It panics if called after the
// first step or if the route is invalid.
func (e *Engine) Seed(inj packet.Injection) *packet.Packet {
	if e.started {
		panic("sim: Seed after execution started")
	}
	return e.admit(inj, 0)
}

// SeedN seeds n identical packets.
func (e *Engine) SeedN(n int, inj packet.Injection) {
	for i := 0; i < n; i++ {
		e.Seed(inj)
	}
}

// admit creates a packet for inj at time t and enqueues it. In bounded
// mode the injection still counts as injected even when the first
// buffer is full and the drop policy discards the arrival — the packet
// then shows up in the drop accounting instead of a buffer, and the
// conservation law injected = absorbed + queued + dropped balances.
// Injection observers fire before the enqueue attempt (none reads
// enqueue-time state), so an event trace shows inject before drop.
func (e *Engine) admit(inj packet.Injection, t int64) *packet.Packet {
	if !e.cfg.SkipRouteCheck && !e.g.IsSimplePath(inj.Route) {
		panic(fmt.Sprintf("sim: injection route is not a simple path: %s",
			e.g.RouteString(inj.Route)))
	}
	p := e.newPacket()
	*p = packet.Packet{
		ID:         e.nextID,
		Route:      e.copyRoute(inj.Route),
		Pos:        0,
		InjectedAt: t,
		Tag:        inj.Tag,
		SourceName: inj.SourceName,
	}
	e.nextID++
	e.injected++
	e.stats.Injections++
	for _, ob := range e.injObs {
		ob.OnInject(t, p)
	}
	e.tryEnqueue(p, t)
	return p
}

// newPacket hands out the next slot of the packet arena. A chunk stays
// reachable while any of its packets is, so absorbed packets remain
// safe to retain from observers; the arena only amortizes allocator
// work, it never recycles.
func (e *Engine) newPacket() *packet.Packet {
	if len(e.pktArena) == 0 {
		e.pktArena = make([]packet.Packet, 256)
	}
	p := &e.pktArena[0]
	e.pktArena = e.pktArena[1:]
	return p
}

// copyRoute copies src into the route arena. The returned slice has
// capacity exactly len(src), so appends by callers cannot clobber a
// neighbouring route.
func (e *Engine) copyRoute(src []graph.EdgeID) []graph.EdgeID {
	n := len(src)
	if cap(e.routeArena)-len(e.routeArena) < n {
		size := 1024
		if n > size {
			size = n
		}
		e.routeArena = make([]graph.EdgeID, 0, size)
	}
	start := len(e.routeArena)
	e.routeArena = append(e.routeArena, src...)
	return e.routeArena[start : start+n : start+n]
}

// enqueue places p at the back of the buffer of its current edge.
func (e *Engine) enqueue(p *packet.Packet, t int64) {
	p.ArrivedAt = t
	p.EnqueueSeq = e.nextSeq
	e.nextSeq++
	eid := p.CurrentEdge()
	if p.Pos < len(p.Route)-1 {
		e.nonFinal++
	}
	e.buffers[eid].PushBack(p)
	e.growLen(eid, e.buffers[eid].Len())
	if e.keyed != nil {
		e.heaps[eid].push(keyEntry{key: e.keyed.SelectionKey(p), seq: p.EnqueueSeq})
	}
	if !e.inAct[eid] {
		e.inAct[eid] = true
		e.insertActive(eid)
	}
}

// growLen records that edge eid's buffer grew from l-1 to l packets.
func (e *Engine) growLen(eid graph.EdgeID, l int) {
	if l >= len(e.lenCnt) {
		e.lenCnt = append(e.lenCnt, make([]int32, len(e.lenCnt))...)
	}
	e.lenCnt[l-1]--
	e.lenCnt[l]++
	switch {
	case l > e.curMax:
		// Strictly above the previous max: eid is the unique (hence
		// lowest) edge at the new max.
		e.curMax, e.maxEdge, e.maxDirty = l, eid, false
	case l == e.curMax && !e.maxDirty && eid < e.maxEdge:
		e.maxEdge = eid
	}
}

// shrinkLen records that edge eid's buffer shrank from l+1 to l.
func (e *Engine) shrinkLen(eid graph.EdgeID, l int) {
	e.lenCnt[l+1]--
	e.lenCnt[l]++
	if l+1 != e.curMax {
		return
	}
	if e.lenCnt[e.curMax] == 0 {
		// The max level emptied; lengths change by one, so the new max
		// is exactly one below (eid itself now sits there). Which edge
		// at that level has the lowest ID is unknown until queried.
		e.curMax--
		e.maxDirty = true
		if e.curMax == 0 {
			e.maxEdge, e.maxDirty = graph.NoEdge, false
		}
	} else if eid == e.maxEdge {
		e.maxDirty = true
	}
}

// insertActive places eid into the active list at its sorted position.
// Activation only happens on an empty→nonempty transition, so in the
// hot regimes (persistently backlogged buffers) this runs rarely; the
// sorted invariant lets Step iterate in edge-ID order with no per-step
// sort.
func (e *Engine) insertActive(eid graph.EdgeID) {
	i := sort.Search(len(e.active), func(i int) bool { return e.active[i] >= eid })
	e.active = append(e.active, 0)
	copy(e.active[i+1:], e.active[i:])
	e.active[i] = eid
}

// Step executes one time step and dispatches OnStep observers.
func (e *Engine) Step() {
	start := time.Now()
	e.stepCore()
	for _, ob := range e.observers {
		ob.OnStep(e)
	}
	e.stats.Nanos += time.Since(start).Nanoseconds()
}

// stepCore executes one time step without dispatching OnStep observers
// and without wall-clock accounting (callers attribute StepStats.Nanos,
// per step or per batch). Event observers — injection, reroute,
// absorption — still fire: they are wired into admit, ReplaceRouteSuffix
// and the receive substep, not into the per-step dispatch loop.
func (e *Engine) stepCore() {
	e.started = true
	e.now++
	e.adv.PreStep(e)
	e.midStep = true

	// Substep 1: send one packet from every nonempty buffer.
	// The active list is kept sorted by insertActive, so iterating it
	// visits edges in ID order (the documented determinism contract)
	// with no per-step sort; compact it in place, dropping edges whose
	// buffers have drained.
	e.inFlight = e.inFlight[:0]
	keep := e.active[:0]
	for _, eid := range e.active {
		buf := &e.buffers[eid]
		if buf.Len() == 0 {
			e.inAct[eid] = false
			continue
		}
		keep = append(keep, eid)
		var p *packet.Packet
		switch {
		case e.keyed != nil:
			p = e.popKeyed(eid)
		case e.polFor != nil:
			p = buf.RemoveAt(e.polFor[eid].Select(buf, e.now))
		default:
			p = buf.RemoveAt(e.pol.Select(buf, e.now))
		}
		e.shrinkLen(eid, buf.Len())
		if p.Pos < len(p.Route)-1 {
			e.nonFinal--
		}
		if res := e.now - p.ArrivedAt; res > e.maxResidence {
			e.maxResidence = res
		}
		for _, ob := range e.sendObs {
			ob.OnSend(e.now, eid, p)
		}
		e.inFlight = append(e.inFlight, p)
	}
	e.active = keep
	e.stats.Sends += int64(len(e.inFlight))

	// Substep 2a: receive. inFlight is in upstream-edge-ID order, the
	// documented arrival tie-break. Receives counts only admitted
	// transit arrivals — a bounded buffer dropping the arrival records
	// a drop instead, and in unbounded mode tryEnqueue never refuses,
	// so the counter is unchanged from the pre-bounded engine.
	for _, p := range e.inFlight {
		p.Pos++
		if p.Pos == len(p.Route) {
			e.absorbed++
			for _, ob := range e.absObs {
				ob.OnAbsorb(e.now, p)
			}
			continue
		}
		if e.tryEnqueue(p, e.now) {
			e.stats.Receives++
		}
	}

	// Substep 2b: inject.
	for _, inj := range e.adv.Inject(e) {
		e.admit(inj, e.now)
	}
	e.stats.Steps++
	e.midStep = false
}

// Run executes n steps. When no observers are registered the per-step
// dispatch loop is skipped entirely (the RunQuiet fast path); otherwise
// every registered observer sees every step exactly once, as with
// repeated Step calls.
func (e *Engine) Run(n int64) {
	if len(e.observers) == 0 {
		e.RunQuiet(n)
		return
	}
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// RunQuiet executes n steps without dispatching OnStep observers,
// whether or not any are registered — the hot loop for threshold
// searches and batch experiments where per-step observation is
// unnecessary. Event observers (InjectionObserver, RerouteObserver,
// AbsorptionObserver) still fire. With zero observers registered,
// RunQuiet(n) and Run(n) produce identical executions (equivalence is
// asserted by TestRunQuietEquivalence). Wall-clock time is accounted to
// StepStats.Nanos once per batch instead of once per step.
func (e *Engine) RunQuiet(n int64) {
	if n <= 0 {
		return
	}
	start := time.Now()
	for i := int64(0); i < n; i++ {
		e.stepCore()
	}
	e.stats.Nanos += time.Since(start).Nanoseconds()
}

// RunUntil executes steps until pred returns true or maxSteps steps
// have run; it reports whether pred fired. pred is evaluated at entry:
// a predicate that already holds costs zero steps and zero observer
// dispatches (previously the engine burned one step before looking).
// Like Run, it skips the OnStep dispatch loop entirely when no
// observers are registered (wall-clock time is then accounted to
// StepStats.Nanos once for the whole run, pred evaluations included,
// exactly as a manual stepCore loop timed as one batch would report);
// event observers still fire either way.
func (e *Engine) RunUntil(pred func(e *Engine) bool, maxSteps int64) bool {
	if pred(e) {
		return true
	}
	if len(e.observers) == 0 {
		start := time.Now()
		defer func() { e.stats.Nanos += time.Since(start).Nanoseconds() }()
		for i := int64(0); i < maxSteps; i++ {
			e.stepCore()
			if pred(e) {
				return true
			}
		}
		return false
	}
	for i := int64(0); i < maxSteps; i++ {
		e.Step()
		if pred(e) {
			return true
		}
	}
	return false
}

// ExtendRoute appends ext to p's route. Allowed only from PreStep (at
// any time before p is absorbed); the extension must continue the
// route contiguously and, unless route checking is disabled, keep it a
// simple path. This is the Lemma 3.3 rerouting primitive specialized
// to suffix extension.
func (e *Engine) ExtendRoute(p *packet.Packet, ext []graph.EdgeID) {
	if len(ext) == 0 {
		return
	}
	e.ReplaceRouteSuffix(p, append(append([]graph.EdgeID{}, p.Route[p.Pos+1:]...), ext...))
}

// ReplaceRouteSuffix replaces the part of p's route strictly after its
// current edge with newSuffix (which may be empty). In the notation of
// Lemma 3.3 the route q_p e_p r_p becomes q_p e_p r'_p.
//
// Reroutes are legal only from Adversary.PreStep or between steps
// (which is equivalent to the next step's PreStep); a reroute from the
// send, receive or inject substep — or from an event observer fired
// inside them — would silently corrupt the keyed-heap tombstone
// bookkeeping, so the engine panics instead.
func (e *Engine) ReplaceRouteSuffix(p *packet.Packet, newSuffix []graph.EdgeID) {
	if e.midStep {
		panic(fmt.Sprintf("sim: reroute of %v during the send/receive/inject substeps; "+
			"Lemma 3.3 reroutes are allowed only from Adversary.PreStep (or between steps)", p))
	}
	old := p.Route
	var oldKey int64
	if e.keyed != nil {
		oldKey = e.keyed.SelectionKey(p)
	}
	route := make([]graph.EdgeID, 0, p.Pos+1+len(newSuffix))
	route = append(route, old[:p.Pos+1]...)
	route = append(route, newSuffix...)
	if !e.cfg.SkipRouteCheck {
		if !e.g.IsPath(route) {
			panic(fmt.Sprintf("sim: reroute of %v breaks path contiguity: %s",
				p, e.g.RouteString(route)))
		}
		if !e.g.IsSimplePath(route) {
			panic(fmt.Sprintf("sim: reroute of %v is not simple: %s",
				p, e.g.RouteString(route)))
		}
	}
	if wasFinal, isFinal := p.Pos == len(old)-1, p.Pos == len(route)-1; wasFinal != isFinal {
		// The packet sits in a buffer (reroutes are PreStep-only), so a
		// finality flip moves it across the nonFinal count.
		if isFinal {
			e.nonFinal--
		} else {
			e.nonFinal++
		}
	}
	p.Route = route
	p.Reroutes++
	if e.keyed != nil {
		// The route change may have altered the packet's selection key
		// (e.g. RemainingHops under FTG/NTG). Instead of rebuilding the
		// whole buffer's heap (the old O(n) eager scheme), push a fresh
		// entry for just this packet and leave the old one behind as a
		// tombstone; popKeyed skips it (see keyed.go).
		if newKey := e.keyed.SelectionKey(p); newKey != oldKey {
			e.tombstone(p.CurrentEdge(), keyEntry{key: newKey, seq: p.EnqueueSeq})
		}
	}
	for _, ob := range e.rerObs {
		ob.OnReroute(e.now, p, old)
	}
}

// QueueLen returns the number of packets buffered at edge eid.
func (e *Engine) QueueLen(eid graph.EdgeID) int { return e.buffers[eid].Len() }

// Queue returns the buffer of edge eid. Callers must treat it as
// read-only.
func (e *Engine) Queue(eid graph.EdgeID) *buffer.Buffer { return &e.buffers[eid] }

// TotalQueued returns the number of packets currently in the network.
func (e *Engine) TotalQueued() int64 { return e.injected - e.absorbed - e.dropped }

// MaxQueued returns the largest current buffer occupancy in O(1),
// maintained incrementally from per-edge length deltas. Stride-1 peak
// tracking (Recorder) uses this every step; resolve the achieving edge
// with MaxQueueLen only when needed.
func (e *Engine) MaxQueued() int { return e.curMax }

// MaxQueueLen returns the largest current buffer occupancy and the
// edge achieving it (ties to the lowest edge ID). Returns (NoEdge, 0)
// on an empty network. The length is maintained incrementally (O(1));
// the edge is cached and lazily recomputed by one O(E) scan only when
// buffer shrinks since the last call left the argmax unknown.
func (e *Engine) MaxQueueLen() (graph.EdgeID, int) {
	if e.curMax == 0 {
		return graph.NoEdge, 0
	}
	if e.maxDirty {
		for eid := range e.buffers {
			if e.buffers[eid].Len() == e.curMax {
				e.maxEdge = graph.EdgeID(eid)
				break
			}
		}
		e.maxDirty = false
	}
	return e.maxEdge, e.curMax
}

// HeapStaleTotal returns the number of tombstoned keyed-heap entries
// across all edges, in O(1). Zero under non-keyed policies, and zero
// whenever no heap carries a stranded entry — the condition under
// which HeapSkips/HeapCompactions are provably constant through a
// static drain window (obs.Sampler's drain-acceptance probe).
func (e *Engine) HeapStaleTotal() int { return e.heapStaleTot }

// Injected returns the lifetime number of injected packets (including
// initial-configuration seeds).
func (e *Engine) Injected() int64 { return e.injected }

// Absorbed returns the lifetime number of absorbed packets.
func (e *Engine) Absorbed() int64 { return e.absorbed }

// MaxResidence returns the largest number of steps any packet has
// spent in a single buffer so far. With includeWaiting, packets still
// sitting in buffers count their wait up to now — essential when a
// construction starves packets forever.
func (e *Engine) MaxResidence(includeWaiting bool) int64 {
	max := e.maxResidence
	if includeWaiting {
		for eid := range e.buffers {
			b := &e.buffers[eid]
			b.Each(func(p *packet.Packet) bool {
				if w := e.now - p.ArrivedAt; w > max {
					max = w
				}
				return true
			})
		}
	}
	return max
}

// ForEachQueued calls fn for every packet currently buffered, in
// (edge ID, enqueue order) order.
func (e *Engine) ForEachQueued(fn func(eid graph.EdgeID, p *packet.Packet)) {
	for eid := 0; eid < e.g.NumEdges(); eid++ {
		e.buffers[eid].Each(func(p *packet.Packet) bool {
			fn(graph.EdgeID(eid), p)
			return true
		})
	}
}

// EachQueueLen calls fn once per occupancy level l that at least one
// edge currently sits at, in increasing order of l, with the number of
// edges at that level. Level 0 (empty buffers) is included. It reads
// the engine's incremental length histogram — O(max occupancy), no
// buffer scan — so per-edge occupancy metrics stay cheap on large
// networks.
func (e *Engine) EachQueueLen(fn func(l, edges int)) {
	for l := 0; l <= e.curMax; l++ {
		if c := e.lenCnt[l]; c > 0 {
			fn(l, int(c))
		}
	}
}

// CheckConservation panics unless injected == absorbed + buffered +
// dropped (the dropped term is identically 0 in unbounded mode).
// Tests and long experiments call it periodically. FailureObservers are
// notified before the panic, so a flight recorder captures the tail.
func (e *Engine) CheckConservation() {
	var buffered int64
	for eid := range e.buffers {
		buffered += int64(e.buffers[eid].Len())
	}
	if e.injected != e.absorbed+buffered+e.dropped {
		msg := fmt.Sprintf("sim: conservation violated: injected %d != absorbed %d + buffered %d + dropped %d",
			e.injected, e.absorbed, buffered, e.dropped)
		e.NotifyFailure(msg)
		panic(msg)
	}
	if e.dropsPerEdge != nil {
		var perEdge int64
		for _, d := range e.dropsPerEdge {
			perEdge += d
		}
		if perEdge != e.dropped {
			msg := fmt.Sprintf("sim: drop accounting violated: per-edge drops sum %d != dropped %d",
				perEdge, e.dropped)
			e.NotifyFailure(msg)
			panic(msg)
		}
	}
}

// StepStats accumulates lightweight per-engine hot-path counters so
// perf regressions are observable from any report: packets sent across
// edges, transit receives (non-absorbing arrivals), injections
// admitted (seeds included), keyed-heap tombstone activity, and
// wall-clock nanoseconds spent inside Step.
type StepStats struct {
	Steps      int64
	Sends      int64
	Receives   int64
	Injections int64

	// Drops counts packets discarded at full buffers (bounded mode
	// only; identically 0 when Config.BufferCap == 0, keeping stepped,
	// quiet and leaped Snapshots of unbounded engines byte-identical to
	// the pre-bounded engine).
	Drops int64

	// HeapSkips counts stale keyed-heap entries (tombstones) discarded
	// during selection; HeapCompactions counts the amortized rebuilds
	// triggered when tombstones outnumbered live entries.
	// HeapRebuilds is the legacy counter from the eager-rebuild scheme
	// (every reroute forced an O(n) rebuild); it now counts
	// compactions only, so on reroute-heavy workloads it collapses
	// from ~one-per-rerouted-buffer-per-step to ~0.
	HeapSkips       int64
	HeapCompactions int64
	HeapRebuilds    int64

	Nanos int64
}

// NsPerStep returns the mean wall-clock nanoseconds per executed step
// (0 before any step has run).
func (s StepStats) NsPerStep() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Nanos) / float64(s.Steps)
}

// String renders the counters for terminal reports. The drops counter
// appears only when nonzero, so unbounded-mode reports (and their
// golden files) render exactly as before bounded buffers existed.
func (s StepStats) String() string {
	drops := ""
	if s.Drops > 0 {
		drops = fmt.Sprintf(", drops %d", s.Drops)
	}
	return fmt.Sprintf("steps %d, sends %d, receives %d, injections %d%s, heap skips %d, heap compactions %d, %.0f ns/step",
		s.Steps, s.Sends, s.Receives, s.Injections, drops, s.HeapSkips, s.HeapCompactions, s.NsPerStep())
}

// Stats returns the accumulated hot-path counters.
func (e *Engine) Stats() StepStats { return e.stats }

// Snapshot summarizes the engine state for reports.
type Snapshot struct {
	Now         int64
	Injected    int64
	Absorbed    int64
	Dropped     int64 // bounded mode only; 0 when BufferCap == 0
	TotalQueued int64
	MaxQueueLen int
	MaxQueueAt  graph.EdgeID
	Stats       StepStats
}

// Snap returns a snapshot of the current state.
func (e *Engine) Snap() Snapshot {
	eid, l := e.MaxQueueLen()
	return Snapshot{
		Now:         e.now,
		Injected:    e.injected,
		Absorbed:    e.absorbed,
		Dropped:     e.dropped,
		TotalQueued: e.TotalQueued(),
		MaxQueueLen: l,
		MaxQueueAt:  eid,
		Stats:       e.stats,
	}
}

// String implements fmt.Stringer for quick diagnostics. The dropped
// count appears only when nonzero (unbounded-mode output unchanged).
func (s Snapshot) String() string {
	drops := ""
	if s.Dropped > 0 {
		drops = fmt.Sprintf(" dropped=%d", s.Dropped)
	}
	return fmt.Sprintf("t=%d queued=%d (max %d at edge %d) injected=%d absorbed=%d%s",
		s.Now, s.TotalQueued, s.MaxQueueLen, s.MaxQueueAt, s.Injected, s.Absorbed, drops)
}
