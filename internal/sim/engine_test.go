package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// onceInjector injects the given injections at a specific step.
type onceInjector struct {
	at   int64
	injs []packet.Injection
}

func (o *onceInjector) PreStep(*Engine) {}

func (o *onceInjector) Inject(e *Engine) []packet.Injection {
	if e.Now() == o.at {
		return o.injs
	}
	return nil
}

func route(g *graph.Graph, names ...string) []graph.EdgeID {
	r := make([]graph.EdgeID, len(names))
	for i, n := range names {
		r[i] = g.MustEdge(n)
	}
	return r
}

func TestSinglePacketTraversesLine(t *testing.T) {
	g := graph.Line(3)
	e := New(g, policy.FIFO{}, nil)
	e.Seed(packet.Inj(route(g, "e1", "e2", "e3")...))
	if e.TotalQueued() != 1 {
		t.Fatal("seed not queued")
	}
	// Packet seeded at time 0 crosses e1 at step 1, e2 at 2, e3 at 3.
	e.Step()
	if e.QueueLen(g.MustEdge("e1")) != 0 || e.QueueLen(g.MustEdge("e2")) != 1 {
		t.Fatal("packet did not advance to e2 after step 1")
	}
	e.Step()
	if e.QueueLen(g.MustEdge("e3")) != 1 {
		t.Fatal("packet did not advance to e3 after step 2")
	}
	e.Step()
	if e.TotalQueued() != 0 || e.Absorbed() != 1 {
		t.Fatalf("packet not absorbed: %s", e.Snap())
	}
	e.CheckConservation()
}

func TestOnePacketPerEdgePerStep(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	e.SeedN(5, packet.Inj(route(g, "e1")...))
	for i := 1; i <= 5; i++ {
		e.Step()
		if got := e.Absorbed(); got != int64(i) {
			t.Fatalf("after %d steps absorbed %d", i, got)
		}
	}
}

func TestInjectionTiming(t *testing.T) {
	// A packet injected in the second substep of step 3 must not move
	// during step 3; it crosses its first edge at step 4.
	g := graph.Line(2)
	e := New(g, policy.FIFO{}, &onceInjector{at: 3, injs: []packet.Injection{
		packet.Inj(route(g, "e1", "e2")...),
	}})
	e.Run(3)
	if e.QueueLen(g.MustEdge("e1")) != 1 {
		t.Fatal("packet should sit at e1 at end of step 3")
	}
	e.Step() // step 4
	if e.QueueLen(g.MustEdge("e2")) != 1 {
		t.Fatal("packet should be at e2 after step 4")
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	g := graph.Line(2)
	e := New(g, policy.FIFO{}, nil)
	for i := 0; i < 4; i++ {
		e.Seed(packet.TaggedInj(string(rune('a'+i)), route(g, "e1", "e2")...))
	}
	var order []string
	for e.TotalQueued() > 0 {
		e.Step()
		q := e.Queue(g.MustEdge("e2"))
		if q.Len() > 0 {
			order = append(order, q.Back().Tag)
		}
	}
	if strings.Join(order, "") != "abcd" {
		t.Errorf("FIFO emission order = %v", order)
	}
}

func TestArrivalTieBreakTransitBeforeInjection(t *testing.T) {
	// Two packets arrive at edge "m" in the same step: one in transit
	// from upstream, one injected. The transit packet must enqueue
	// first (documented order), so FIFO sends it first.
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, "up")
	g.AddEdge(b, c, "m")
	adv := &onceInjector{at: 1, injs: []packet.Injection{
		packet.TaggedInj("injected", g.MustEdge("m")),
	}}
	e := New(g, policy.FIFO{}, adv)
	e.Seed(packet.TaggedInj("transit", route(g, "up", "m")...))
	e.Step() // transit crosses "up" and arrives at m; injection also lands at m
	q := e.Queue(g.MustEdge("m"))
	if q.Len() != 2 {
		t.Fatalf("queue at m = %d", q.Len())
	}
	if q.At(0).Tag != "transit" || q.At(1).Tag != "injected" {
		t.Errorf("tie-break order = [%s %s], want [transit injected]", q.At(0).Tag, q.At(1).Tag)
	}
}

func TestTransitTieBreakByUpstreamEdgeID(t *testing.T) {
	// Two upstream edges feed one downstream edge; simultaneous
	// arrivals enqueue in increasing upstream edge ID order.
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	m := g.AddNode("m")
	d := g.AddNode("d")
	up1 := g.AddEdge(s1, m, "up1") // lower edge ID
	up2 := g.AddEdge(s2, m, "up2")
	g.AddEdge(m, d, "down")
	_ = up1
	_ = up2
	e := New(g, policy.FIFO{}, nil)
	// Seed up2's packet first: even so, up1's packet must enqueue first.
	e.Seed(packet.TaggedInj("fromUp2", route(g, "up2", "down")...))
	e.Seed(packet.TaggedInj("fromUp1", route(g, "up1", "down")...))
	e.Step()
	q := e.Queue(g.MustEdge("down"))
	if q.Len() != 2 {
		t.Fatalf("queue at down = %d", q.Len())
	}
	if q.At(0).Tag != "fromUp1" || q.At(1).Tag != "fromUp2" {
		t.Errorf("order = [%s %s], want [fromUp1 fromUp2]", q.At(0).Tag, q.At(1).Tag)
	}
}

func TestSeedAfterStartPanics(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("Seed after Step did not panic")
		}
	}()
	e.Seed(packet.Inj(route(g, "e1")...))
}

func TestNonSimpleRoutePanics(t *testing.T) {
	g := graph.Ring(3)
	e := New(g, policy.FIFO{}, nil)
	defer func() {
		if recover() == nil {
			t.Error("cyclic route did not panic")
		}
	}()
	e.Seed(packet.Inj(route(g, "e1", "e2", "e3")...)) // revisits v0
}

func TestSkipRouteCheckAllowsWalks(t *testing.T) {
	g := graph.Ring(3)
	e := NewWithConfig(g, policy.FIFO{}, nil, Config{SkipRouteCheck: true})
	e.Seed(packet.Inj(route(g, "e1", "e2", "e3")...))
	e.Run(3)
	if e.Absorbed() != 1 {
		t.Error("walk route should complete under SkipRouteCheck")
	}
}

func TestExtendRoute(t *testing.T) {
	g := graph.Line(4)
	e := New(g, policy.FIFO{}, nil)
	p := e.Seed(packet.Inj(route(g, "e1", "e2")...))
	e.ExtendRoute(p, route(g, "e3", "e4"))
	if p.RemainingHops() != 4 {
		t.Fatalf("RemainingHops = %d after extension", p.RemainingHops())
	}
	if p.Reroutes != 1 {
		t.Error("Reroutes not counted")
	}
	e.Run(4)
	if e.Absorbed() != 1 {
		t.Error("extended packet not absorbed at new destination")
	}
}

func TestReplaceRouteSuffix(t *testing.T) {
	g := graph.TwoParallelPaths(2, 2) // p1_1,p1_2 and p2_1,p2_2
	e := New(g, policy.FIFO{}, nil)
	p := e.Seed(packet.Inj(route(g, "p1_1", "p1_2")...))
	e.Step() // crosses p1_1, now sits at p1_2... wait, p1_1 leads to t via p1_2
	// After step 1, p is at buffer of p1_2 (Pos=1). Replace nothing
	// after current edge (suffix empty): destination stays the head of
	// p1_2.
	e.ReplaceRouteSuffix(p, nil)
	if p.RemainingHops() != 1 {
		t.Fatalf("RemainingHops = %d", p.RemainingHops())
	}
	e.Step()
	if e.Absorbed() != 1 {
		t.Error("packet not absorbed after suffix truncation")
	}
}

func TestReplaceRouteSuffixContiguityPanics(t *testing.T) {
	g := graph.TwoParallelPaths(2, 2)
	e := New(g, policy.FIFO{}, nil)
	p := e.Seed(packet.Inj(route(g, "p1_1", "p1_2")...))
	defer func() {
		if recover() == nil {
			t.Error("discontiguous reroute did not panic")
		}
	}()
	// p2_2 does not start where p1_1 ends.
	e.ReplaceRouteSuffix(p, route(g, "p2_2"))
}

func TestMaxResidence(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	e.SeedN(3, packet.Inj(route(g, "e1")...))
	e.Run(2)
	// Third packet has waited 2 steps and is still queued.
	if got := e.MaxResidence(false); got != 2 {
		t.Errorf("completed MaxResidence = %d, want 2", got)
	}
	if got := e.MaxResidence(true); got != 2 {
		t.Errorf("waiting-inclusive MaxResidence = %d, want 2", got)
	}
	e.Run(1)
	if got := e.MaxResidence(false); got != 3 {
		t.Errorf("after drain MaxResidence = %d, want 3", got)
	}
}

func TestMaxQueueLenAndSnapshot(t *testing.T) {
	g := graph.Line(2)
	e := New(g, policy.FIFO{}, nil)
	eid, l := e.MaxQueueLen()
	if eid != graph.NoEdge || l != 0 {
		t.Error("empty network MaxQueueLen wrong")
	}
	e.SeedN(4, packet.Inj(route(g, "e1", "e2")...))
	eid, l = e.MaxQueueLen()
	if eid != g.MustEdge("e1") || l != 4 {
		t.Errorf("MaxQueueLen = (%d,%d)", eid, l)
	}
	snap := e.Snap()
	if snap.TotalQueued != 4 || snap.MaxQueueLen != 4 {
		t.Errorf("snapshot %+v", snap)
	}
	if !strings.Contains(snap.String(), "queued=4") {
		t.Errorf("snapshot string %q", snap.String())
	}
}

func TestRunUntil(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	e.SeedN(10, packet.Inj(route(g, "e1")...))
	ok := e.RunUntil(func(e *Engine) bool { return e.TotalQueued() == 0 }, 100)
	if !ok || e.Now() != 10 {
		t.Errorf("RunUntil fired=%v at t=%d, want t=10", ok, e.Now())
	}
	ok = e.RunUntil(func(e *Engine) bool { return false }, 5)
	if ok {
		t.Error("RunUntil should report false on timeout")
	}
}

func TestGreedyInvariant(t *testing.T) {
	// As long as any buffer is nonempty, every step must move at least
	// one packet (greediness). Use LIFO on a contended line.
	g := graph.Line(3)
	e := New(g, policy.LIFO{}, nil)
	for i := 0; i < 6; i++ {
		e.Seed(packet.Inj(route(g, "e1", "e2", "e3")...))
	}
	prevProgress := e.Absorbed()
	for e.TotalQueued() > 0 {
		before := e.Snap()
		e.Step()
		after := e.Snap()
		moved := after.Absorbed > before.Absorbed ||
			after.TotalQueued < before.TotalQueued ||
			after.Injected > before.Injected
		_ = moved
		// Progress in a drain scenario: absorbed strictly grows at
		// least every 3 steps (pipeline depth).
		if e.Now()%3 == 0 {
			if e.Absorbed() == prevProgress && e.TotalQueued() > 0 {
				t.Fatalf("no progress by step %d", e.Now())
			}
			prevProgress = e.Absorbed()
		}
		if e.Now() > 100 {
			t.Fatal("drain did not terminate")
		}
	}
}

func TestObserversFire(t *testing.T) {
	g := graph.Line(2)
	tr := &Tracer{}
	adv := &onceInjector{at: 2, injs: []packet.Injection{packet.Inj(route(g, "e1", "e2")...)}}
	e := New(g, policy.FIFO{}, adv)
	e.AddObserver(tr)
	rec := NewRecorder(1)
	e.AddObserver(rec)
	e.Run(4)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != EvInject || evs[0].T != 2 {
		t.Errorf("trace events = %+v", evs)
	}
	if len(rec.Samples()) != 4 {
		t.Errorf("recorder samples = %d", len(rec.Samples()))
	}
	if rec.PeakTotal() != 1 {
		t.Errorf("peak total = %d", rec.PeakTotal())
	}
}

func TestTracerRecordsReroutes(t *testing.T) {
	g := graph.Line(3)
	tr := &Tracer{}
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(tr)
	p := e.Seed(packet.Inj(route(g, "e1")...))
	e.ExtendRoute(p, route(g, "e2"))
	evs := tr.Events()
	if len(evs) != 2 || evs[1].Kind != EvReroute {
		t.Fatalf("events = %+v", evs)
	}
	if len(evs[1].Route) != 1 {
		t.Errorf("old route length = %d, want 1", len(evs[1].Route))
	}
}

func TestTracerCap(t *testing.T) {
	g := graph.Line(1)
	tr := &Tracer{Cap: 2}
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(tr)
	e.SeedN(5, packet.Inj(route(g, "e1")...))
	if len(tr.Events()) != 2 {
		t.Errorf("cap not applied: %d events", len(tr.Events()))
	}
}

func TestRecorderStrideAndCSV(t *testing.T) {
	g := graph.Line(1)
	rec := NewRecorder(3)
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(rec)
	e.SeedN(2, packet.Inj(route(g, "e1")...))
	e.Run(9)
	if len(rec.Samples()) != 3 {
		t.Errorf("stride-3 over 9 steps = %d samples", len(rec.Samples()))
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "t,total_queued,max_queue\n") {
		t.Error("CSV header missing")
	}
	if got := len(strings.Split(strings.TrimSpace(sb.String()), "\n")); got != 4 {
		t.Errorf("CSV rows = %d", got)
	}
	if !strings.Contains(rec.AsciiPlot(20, 5), "*") {
		t.Error("ascii plot empty")
	}
}

func TestSetAdversaryMidRun(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	e.Run(2)
	e.SetAdversary(&onceInjector{at: 3, injs: []packet.Injection{packet.Inj(route(g, "e1")...)}})
	e.Step()
	if e.Injected() != 1 {
		t.Error("swapped adversary did not inject")
	}
	e.SetAdversary(nil)
	e.Step() // must not panic with nil → Nop
}

// Property: under any of the deterministic policies and random seed
// batches on a line, conservation holds and all packets are eventually
// absorbed.
func TestQuickConservationAndDrain(t *testing.T) {
	f := func(nPkts, lineLen, polIdx uint8) bool {
		n := int(nPkts%20) + 1
		l := int(lineLen%5) + 1
		pols := policy.All()
		pol := pols[int(polIdx)%len(pols)]
		g := graph.Line(l)
		e := New(g, pol, nil)
		full := make([]graph.EdgeID, l)
		for i := range full {
			full[i] = graph.EdgeID(i)
		}
		for i := 0; i < n; i++ {
			e.Seed(packet.Inj(full...))
		}
		e.Run(int64(n*l + l + 1))
		e.CheckConservation()
		return e.Absorbed() == int64(n) && e.TotalQueued() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: total throughput of one edge is at most one packet per step.
func TestQuickUnitCapacity(t *testing.T) {
	f := func(nPkts uint8, steps uint8) bool {
		n := int(nPkts%50) + 1
		g := graph.Line(1)
		e := New(g, policy.FIFO{}, nil)
		e.SeedN(n, packet.Inj(graph.EdgeID(0)))
		s := int64(steps%60) + 1
		e.Run(s)
		want := int64(n)
		if s < want {
			want = s
		}
		return e.Absorbed() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
