// Leap mode: batch-advancing the engine over provably static windows.
//
// The paper's constructions spend most of their wall-clock in long
// deterministic stretches — the silent drain of Lemma 3.13, the idle
// tail after a Sequence finishes, the quiet intervals between the
// bursts of a Definition 2.1 (w,r) adversary. Inside such a stretch
// the step engine still pays a full stepCore per tick. Leap mode skips
// the ticks: when the adversary proves its schedule static over the
// next k steps (the StaticAdversary capability) and the network is in
// a regime whose evolution has a closed form, RunLeap advances the
// clock by k at once, updating per-edge queue lengths, injected/
// absorbed, the incremental max-queue tracker and StepStats exactly as
// k stepCore calls would have.
//
// Two window regimes are leapable:
//
//   - idle: the network is empty. Every step is a pure no-op; the
//     window is an O(1) clock jump.
//   - drain: every queued packet already sits in the buffer of the
//     LAST edge of its route (the engine maintains this as the
//     nonFinal == 0 invariant). Each step then sends one packet from
//     every nonempty buffer straight to absorption — no receives, no
//     cross-buffer interaction — so buffers drain independently and
//     the window collapses to one tight per-buffer loop that reuses
//     the exact per-step selection path (keyed-heap pops included, so
//     HeapSkips stays bit-identical). Drain windows are clamped to the
//     deepest buffer, so the network empties at exactly the step the
//     step engine would reach TotalQueued() == 0.
//
// Equivalence contract (gated by TestLeapEquivalence and the golden
// experiment tables): RunLeap(n) produces a bit-identical Snapshot
// (modulo Stats.Nanos) and identical per-edge queue lengths to Run(n).
// Leap bookkeeping lives in a separate LeapStats, NOT in StepStats,
// precisely so the Snapshot comparison stays byte-for-byte.
//
// Observers: a window is only leaped if every OnStep observer — and,
// for drain windows, every send/absorption event observer — implements
// LeapObserver and accepts the window's kind. Accepting observers get
// one OnLeap call per window, fired BEFORE the engine state mutates,
// so they can reconstruct their per-step observations from the
// pre-window state in closed form (sim.Recorder and obs.Meter do).
// Observers that cannot reconstruct (e.g. LatencyObserver needs each
// absorption) simply refuse the kind and the engine falls back to
// stepping — correctness never depends on acceptance.
package sim

import (
	"math"
	"time"

	"aqt/internal/graph"
	"aqt/internal/packet"
)

// Forever is the StaticUntil horizon of an adversary that will never
// inject or reroute again.
const Forever int64 = math.MaxInt64

// StaticAdversary is the opt-in capability behind leap mode: an
// adversary that can prove its schedule static over a future window.
type StaticAdversary interface {
	Adversary

	// StaticUntil returns an absolute step horizon H with this
	// guarantee: for every step t with Now() < t <= H, PreStep would
	// observably do nothing (no reroutes, no phase changes, no
	// markers) and Inject would return nil — and skipping those calls
	// entirely leaves the adversary in an equivalent state (no pacing
	// or bookkeeping state advances on silent steps). H <= Now() means
	// "no guarantee right now" and disables leaping; Forever means the
	// adversary is permanently done.
	StaticUntil() int64
}

// StaticUntil implements StaticAdversary: a NopAdversary never acts.
func (NopAdversary) StaticUntil() int64 { return Forever }

// LeapKind labels the closed-form regime of a leaped window.
type LeapKind uint8

// Leapable window regimes.
const (
	// LeapIdle: the network is empty for the whole window.
	LeapIdle LeapKind = iota
	// LeapDrain: every queued packet sits on the final edge of its
	// route; each step absorbs one packet per nonempty buffer.
	LeapDrain
)

// String names the kind for reports.
func (k LeapKind) String() string {
	switch k {
	case LeapIdle:
		return "idle"
	case LeapDrain:
		return "drain"
	}
	return "leap(?)"
}

// LeapInfo describes one leaped window: the steps (From, To] were
// batch-advanced. From is the last executed step before the window.
type LeapInfo struct {
	From, To int64
	Kind     LeapKind
}

// Steps returns the number of steps the window covers.
func (li LeapInfo) Steps() int64 { return li.To - li.From }

// LeapObserver is the opt-in observer capability for leap mode.
// Observers registered via AddObserver or AddEventObserver that
// implement it may accept leaped windows; OnLeap fires once per window
// BEFORE the engine state mutates, so the pre-window state is still
// readable and per-step observations can be reconstructed in closed
// form.
type LeapObserver interface {
	// AcceptLeap reports whether the observer can account for a leaped
	// window of the given kind. Refusing makes the engine execute the
	// window step by step instead; it never loses events.
	AcceptLeap(kind LeapKind) bool
	// OnLeap is the closed-form replacement for the window's per-step
	// callbacks. The engine state is the pre-window state (end of step
	// info.From).
	OnLeap(e *Engine, info LeapInfo)
}

// LeapStats counts leap-mode activity. It is deliberately kept out of
// StepStats and Snapshot so leaped and stepped executions stay
// byte-identical there.
type LeapStats struct {
	Windows int64 // leaped windows
	Steps   int64 // steps covered by leaped windows
	Idle    int64 // idle windows
	Drain   int64 // drain windows
}

// Leaps returns the accumulated leap-mode counters.
func (e *Engine) Leaps() LeapStats { return e.leapStats }

// RunLeap executes n steps like Run, batch-advancing over provably
// static windows. The execution is bit-identical to Run(n) — same
// Snapshot (modulo Stats.Nanos), same per-edge queues, same keyed-heap
// counters; only the wall-clock accounting differs (StepStats.Nanos is
// charged once per batch, as in RunQuiet). OnStep observers see every
// executed step; leaped windows reach them as OnLeap calls instead.
func (e *Engine) RunLeap(n int64) {
	e.runLeap(n, nil)
}

// RunLeapUntil is RunUntil with leaping. pred is evaluated at entry
// (already-true costs zero steps, matching RunUntil), after every
// executed step and after every leaped window — never inside a
// window's interior. Callers must therefore use predicates that cannot
// first become true strictly inside a static window. The two families
// every runner here uses are safe by construction: phase predicates
// (Sequence.Finished) because a phase's Until horizon bounds the
// window, and emptiness predicates (TotalQueued() == 0) because drain
// windows are clamped to end exactly when the network empties.
func (e *Engine) RunLeapUntil(pred func(e *Engine) bool, maxSteps int64) bool {
	if pred == nil {
		panic("sim: RunLeapUntil needs a predicate")
	}
	return e.runLeap(maxSteps, pred)
}

func (e *Engine) runLeap(n int64, pred func(e *Engine) bool) bool {
	if pred != nil && pred(e) {
		return true
	}
	if n <= 0 {
		return false
	}
	observed := len(e.observers) > 0
	start := time.Now()
	defer func() { e.stats.Nanos += time.Since(start).Nanoseconds() }()
	// The capability check is hoisted out of the loop: with an adversary
	// that cannot prove static windows (RandomWR and friends) the loop
	// below is exactly Run's stepped loop, with no per-step leap probe.
	sa, static := e.adv.(StaticAdversary)
	for done := int64(0); done < n; {
		if static {
			if k, kind := e.leapWindow(sa, n-done); k > 0 {
				e.applyLeap(k, kind)
				done += k
				if pred != nil && pred(e) {
					return true
				}
				continue
			}
		}
		e.stepCore()
		done++
		if observed {
			for _, ob := range e.observers {
				ob.OnStep(e)
			}
		}
		if pred != nil && pred(e) {
			return true
		}
	}
	return false
}

// leapWindow returns the number of steps (0 = must step) the engine
// may batch-advance right now, and the window's regime. maxK > 0 caps
// the window (remaining run budget).
//
// Bounded buffers (Config.BufferCap > 0) need no extra guard here:
// both regimes are enqueue-free — idle windows hold no packets, and
// drain windows only move final-edge packets to absorption — and the
// static horizon rules out injections, so no step inside a leapable
// window can ever consult the drop policy. A window that could drop
// is by construction not leapable and falls back to stepping.
func (e *Engine) leapWindow(sa StaticAdversary, maxK int64) (int64, LeapKind) {
	h := sa.StaticUntil()
	if h <= e.now {
		return 0, LeapIdle
	}
	k := h - e.now
	if k > maxK || k < 0 { // k < 0: h == Forever overflowed the subtraction
		k = maxK
	}
	if e.TotalQueued() == 0 {
		if !e.leapAccepted(LeapIdle) {
			return 0, LeapIdle
		}
		return k, LeapIdle
	}
	if e.nonFinal != 0 {
		return 0, LeapIdle
	}
	// Clamp to the deepest buffer: the window then ends exactly at the
	// step the step engine would reach TotalQueued() == 0, so
	// emptiness predicates fire at the same time either way.
	if int64(e.curMax) < k {
		k = int64(e.curMax)
	}
	if !e.leapAccepted(LeapDrain) {
		return 0, LeapDrain
	}
	return k, LeapDrain
}

// acceptsLeap reports whether ob opted into leaped windows of kind.
func acceptsLeap(ob any, kind LeapKind) bool {
	lo, ok := ob.(LeapObserver)
	return ok && lo.AcceptLeap(kind)
}

// leapAccepted reports whether every observer that would have seen the
// window's per-step activity can account for it in closed form. Idle
// windows generate no events, so only OnStep observers matter; drain
// windows additionally absorb packets, so send and absorption event
// observers must opt in too (injection/reroute/marker observers see
// nothing either way — static windows have no such events).
func (e *Engine) leapAccepted(kind LeapKind) bool {
	for _, ob := range e.observers {
		if !acceptsLeap(ob, kind) {
			return false
		}
	}
	if kind == LeapDrain {
		for _, ob := range e.sendObs {
			if !acceptsLeap(ob, kind) {
				return false
			}
		}
		for _, ob := range e.absObs {
			if !acceptsLeap(ob, kind) {
				return false
			}
		}
	}
	return true
}

// applyLeap advances the engine over a static window of k steps in
// closed form. Accepting LeapObservers are notified BEFORE the state
// mutates.
func (e *Engine) applyLeap(k int64, kind LeapKind) {
	e.started = true
	info := LeapInfo{From: e.now, To: e.now + k, Kind: kind}
	for _, lo := range e.leapObs {
		if lo.AcceptLeap(kind) {
			lo.OnLeap(e, info)
		}
	}
	e.leapStats.Windows++
	e.leapStats.Steps += k
	if kind == LeapIdle {
		e.leapStats.Idle++
		e.now += k
		e.stats.Steps += k
		return
	}
	e.leapStats.Drain++
	// Every queued packet is on its final edge (nonFinal == 0), so the
	// next k steps never receive: buffers drain independently, one
	// packet per step each, through the exact per-step selection path.
	// Draining buffer-at-a-time instead of step-at-a-time keeps each
	// buffer's ring and heap hot in cache.
	keep := e.active[:0]
	for _, eid := range e.active {
		buf := &e.buffers[eid]
		l := buf.Len()
		if l == 0 {
			e.inAct[eid] = false
			continue
		}
		d := l
		if int64(d) > k {
			d = int(k)
		}
		for j := 1; j <= d; j++ {
			t := e.now + int64(j)
			var p *packet.Packet
			switch {
			case e.keyed != nil:
				p = e.popKeyed(eid)
			case e.polFor != nil:
				p = buf.RemoveAt(e.polFor[eid].Select(buf, t))
			default:
				p = buf.RemoveAt(e.pol.Select(buf, t))
			}
			if res := t - p.ArrivedAt; res > e.maxResidence {
				e.maxResidence = res
			}
			p.Pos++
			e.absorbed++
		}
		// Bulk occupancy-histogram update: this edge moved from level l
		// to level l-d in one go (the step engine walked it through the
		// intermediate levels, with the same net effect).
		e.lenCnt[l]--
		e.lenCnt[l-d]++
		e.stats.Sends += int64(d)
		if l > d {
			keep = append(keep, eid)
		} else {
			e.inAct[eid] = false
		}
	}
	e.active = keep
	// All nonempty buffers shrank by min(len, k), so the new max is
	// exactly max(curMax - k, 0); which edge achieves it is unknown
	// until queried, as after any shrink.
	if int64(e.curMax) > k {
		e.curMax -= int(k)
		e.maxDirty = true
	} else {
		e.curMax = 0
		e.maxEdge, e.maxDirty = graph.NoEdge, false
	}
	e.now += k
	e.stats.Steps += k
}
