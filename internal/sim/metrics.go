package sim

import (
	"fmt"
	"io"

	"aqt/internal/graph"
	"aqt/internal/packet"
)

// Sample is one point of a recorded queue-size time series.
type Sample struct {
	T           int64
	TotalQueued int64
	MaxQueueLen int
}

// Recorder is an Observer that samples queue sizes every Stride steps
// (Stride <= 1 means every step) and tracks lifetime peaks.
type Recorder struct {
	Stride int64

	// MaxSamples, when > 0, bounds the retained series: whenever an
	// append would exceed it, the series is downsampled in place by
	// doubling the effective stride (a power-of-two factor on top of
	// Stride) and keeping only the samples aligned to it. Memory for a
	// million-step stride-1 probe is thus bounded while the series stays
	// uniformly spaced. PeakTotal/PeakBuffer are tracked every step
	// independently of sampling, so they remain exact. 0 = unbounded
	// (the historical behaviour).
	MaxSamples int

	samples  []Sample
	factor   int64 // power-of-two downsampling factor (0 or 1 = none)
	peakTot  int64
	peakMax  int
	peakEdge graph.EdgeID
}

// NewRecorder returns a recorder sampling every stride steps.
func NewRecorder(stride int64) *Recorder {
	if stride < 1 {
		stride = 1
	}
	return &Recorder{Stride: stride}
}

// OnStep implements Observer. Peaks (total and single-buffer) are
// tracked every step regardless of Stride — a between-sample spike
// must not vanish from PeakBuffer — while the series itself is only
// appended on sampled steps. Per-step cost is O(1): the max length
// comes from the engine's incremental counter, and the achieving edge
// is resolved only when a new peak is set.
func (r *Recorder) OnStep(e *Engine) {
	tot := e.TotalQueued()
	if tot > r.peakTot {
		r.peakTot = tot
	}
	l := e.MaxQueued()
	if l > r.peakMax {
		eid, _ := e.MaxQueueLen()
		r.peakMax, r.peakEdge = l, eid
	}
	if e.Now()%r.effStride() != 0 {
		return
	}
	r.appendSample(Sample{T: e.Now(), TotalQueued: tot, MaxQueueLen: l})
}

// effStride returns the current sampling stride. Clamp here, not just
// in NewRecorder: the Stride field doc promises "Stride <= 1 means
// every step", so a literal-constructed Recorder{} must sample every
// step rather than divide by zero.
func (r *Recorder) effStride() int64 {
	stride := r.Stride
	if stride < 1 {
		stride = 1
	}
	if r.factor > 1 {
		stride *= r.factor
	}
	return stride
}

// appendSample appends s and re-establishes the MaxSamples bound.
func (r *Recorder) appendSample(s Sample) {
	r.samples = append(r.samples, s)
	for r.MaxSamples > 0 && len(r.samples) > r.MaxSamples {
		r.downsample()
	}
}

// AcceptLeap implements LeapObserver: both leaped regimes have
// closed-form queue-size trajectories, so the Recorder accepts both.
func (r *Recorder) AcceptLeap(LeapKind) bool { return true }

// OnLeap implements LeapObserver by reconstructing the per-step
// observations OnStep would have made across the window. Fired before
// the engine mutates, so the occupancy histogram still describes the
// window's start. Inside an idle window every step observes zeros;
// inside a drain window every nonempty buffer shrinks by exactly one
// per step, so the total at dt steps in is Σ_{l>dt} (l−dt)·edges(l)
// and the max is curMax−dt — both read off the histogram.
func (r *Recorder) OnLeap(e *Engine, info LeapInfo) {
	type lvl struct{ l, cnt int64 }
	var levels []lvl
	var curMax int64
	if info.Kind == LeapDrain {
		e.EachQueueLen(func(l, edges int) {
			if l > 0 {
				levels = append(levels, lvl{int64(l), int64(edges)})
			}
		})
		curMax = int64(e.MaxQueued())
	}
	totAt := func(dt int64) int64 {
		var tot int64
		for _, lv := range levels {
			if lv.l > dt {
				tot += (lv.l - dt) * lv.cnt
			}
		}
		return tot
	}
	maxAt := func(dt int64) int64 {
		if curMax > dt {
			return curMax - dt
		}
		return 0
	}
	// Queue sizes are nonincreasing inside a static window, so the only
	// candidate peaks the per-step path would have seen are at the first
	// step (dt = 1).
	if tot := totAt(1); tot > r.peakTot {
		r.peakTot = tot
	}
	if l := maxAt(1); int(l) > r.peakMax {
		// Every nonempty buffer shrinks by one in the first step, so the
		// lowest edge holding curMax packets now is the lowest edge
		// holding curMax−1 packets then.
		eid, _ := e.MaxQueueLen()
		r.peakMax, r.peakEdge = int(l), eid
	}
	// Sampled steps: every effective-stride multiple in (From, To]. The
	// stride is re-read after each append because appending may trigger
	// downsampling, exactly as the per-step path interleaves them.
	eff := r.effStride()
	for t := (info.From/eff + 1) * eff; t <= info.To; {
		dt := t - info.From
		r.appendSample(Sample{T: t, TotalQueued: totAt(dt), MaxQueueLen: int(maxAt(dt))})
		eff = r.effStride()
		t = (t/eff + 1) * eff
	}
}

// downsample doubles the effective stride and drops the samples no
// longer aligned to it, halving the retained series (up to alignment).
func (r *Recorder) downsample() {
	base := r.Stride
	if base < 1 {
		base = 1
	}
	if r.factor < 1 {
		r.factor = 1
	}
	r.factor *= 2
	eff := base * r.factor
	kept := r.samples[:0]
	for _, s := range r.samples {
		if s.T%eff == 0 {
			kept = append(kept, s)
		}
	}
	r.samples = kept
}

// EffectiveStride returns the spacing of retained samples: Stride times
// the current power-of-two downsampling factor (MaxSamples bounding).
func (r *Recorder) EffectiveStride() int64 { return r.effStride() }

// Samples returns the recorded series (shared slice; read-only).
func (r *Recorder) Samples() []Sample { return r.samples }

// PeakTotal returns the largest total queue observed at any step.
func (r *Recorder) PeakTotal() int64 { return r.peakTot }

// PeakBuffer returns the largest single-buffer occupancy observed at
// any step (not just sampled ones) and its edge.
func (r *Recorder) PeakBuffer() (graph.EdgeID, int) { return r.peakEdge, r.peakMax }

// Last returns the most recent sample (zero Sample if none).
func (r *Recorder) Last() Sample {
	if len(r.samples) == 0 {
		return Sample{}
	}
	return r.samples[len(r.samples)-1]
}

// WriteCSV writes the series as "t,total_queued,max_queue" rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,total_queued,max_queue"); err != nil {
		return err
	}
	for _, s := range r.samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d\n", s.T, s.TotalQueued, s.MaxQueueLen); err != nil {
			return err
		}
	}
	return nil
}

// AsciiPlot renders the TotalQueued series as a crude fixed-size ASCII
// chart for terminal reports. width and height are clamped to sane
// minima. When several samples fall into one column the column shows
// their maximum — point-sampling one value per column would let a
// single-step spike vanish from the plot entirely.
func (r *Recorder) AsciiPlot(width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 3 {
		height = 3
	}
	if len(r.samples) == 0 {
		return "(no samples)\n"
	}
	var maxV int64 = 1
	for _, s := range r.samples {
		if s.TotalQueued > maxV {
			maxV = s.TotalQueued
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	// Per-column max: every sample lands in exactly one column, so no
	// spike is lost. Columns without a sample of their own (fewer
	// samples than columns) fall back to the nearest-sample mapping.
	n := len(r.samples)
	colMax := make([]int64, width)
	colSet := make([]bool, width)
	for i, s := range r.samples {
		x := 0
		if n > 1 {
			x = i * (width - 1) / (n - 1)
		}
		if !colSet[x] || s.TotalQueued > colMax[x] {
			colSet[x], colMax[x] = true, s.TotalQueued
		}
	}
	for x := 0; x < width; x++ {
		v := colMax[x]
		if !colSet[x] {
			v = r.samples[x*(n-1)/max(width-1, 1)].TotalQueued
		}
		y := int(v * int64(height-1) / maxV)
		grid[height-1-y][x] = '*'
	}
	out := fmt.Sprintf("total queued (peak %d over %d samples)\n", maxV, len(r.samples))
	for _, row := range grid {
		out += string(row) + "\n"
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EventKind labels a trace event.
type EventKind uint8

// Event kinds recorded by Tracer.
const (
	EvInject EventKind = iota
	EvReroute
)

// Event is one recorded trace event.
type Event struct {
	Kind  EventKind
	T     int64
	Pkt   int64
	Route []graph.EdgeID // the route injected, or the old route on reroute
}

// Tracer records injections and reroutes up to a cap (0 = unbounded).
// It exists for tests and debugging; the adversary validators keep
// their own richer records.
//
// Semantics at the cap are keep-OLDEST: once Cap events are stored,
// later events are counted by Dropped() but not retained — the head of
// the execution survives, the tail is lost. For the opposite (a
// bounded tail of the most recent events, alloc-free, with phase
// markers and JSONL dump) use obs.FlightRecorder, which supersedes
// Tracer for debugging long runs.
type Tracer struct {
	Cap     int
	events  []Event
	dropped int64
}

// OnStep implements Observer (no per-step event).
func (t *Tracer) OnStep(*Engine) {}

// OnInject implements InjectionObserver.
func (t *Tracer) OnInject(now int64, p *packet.Packet) {
	t.record(Event{Kind: EvInject, T: now, Pkt: int64(p.ID),
		Route: append([]graph.EdgeID{}, p.Route...)})
}

// OnReroute implements RerouteObserver.
func (t *Tracer) OnReroute(now int64, p *packet.Packet, oldRoute []graph.EdgeID) {
	t.record(Event{Kind: EvReroute, T: now, Pkt: int64(p.ID),
		Route: append([]graph.EdgeID{}, oldRoute...)})
}

func (t *Tracer) record(ev Event) {
	if t.Cap > 0 && len(t.events) >= t.Cap {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns the recorded events (shared slice; read-only).
func (t *Tracer) Events() []Event { return t.events }

// Dropped returns the number of events discarded after Cap was
// reached (keep-oldest semantics; 0 with an unbounded Tracer).
func (t *Tracer) Dropped() int64 { return t.dropped }

// RecorderState is the serializable dynamic state of a Recorder:
// configuration (stride, bound), the retained sample series, the
// current downsampling factor and the exact running peaks. Restoring
// it onto a fresh Recorder reproduces the uninterrupted series —
// including future stride-doubling points, which depend on the
// retained sample count.
type RecorderState struct {
	Stride     int64        `json:"stride"`
	MaxSamples int          `json:"max_samples,omitempty"`
	Factor     int64        `json:"factor,omitempty"`
	PeakTotal  int64        `json:"peak_total,omitempty"`
	PeakMax    int          `json:"peak_max,omitempty"`
	PeakEdge   graph.EdgeID `json:"peak_edge"`
	Samples    []Sample     `json:"samples,omitempty"`
}

// CheckpointState extracts the recorder's state (samples are copied).
func (r *Recorder) CheckpointState() RecorderState {
	return RecorderState{
		Stride:     r.Stride,
		MaxSamples: r.MaxSamples,
		Factor:     r.factor,
		PeakTotal:  r.peakTot,
		PeakMax:    r.peakMax,
		PeakEdge:   r.peakEdge,
		Samples:    append([]Sample(nil), r.samples...),
	}
}

// RestoreState overwrites the recorder with a previously extracted
// state. Malformed state is rejected with an error, never a panic.
func (r *Recorder) RestoreState(st RecorderState) error {
	if st.Stride < 1 {
		return fmt.Errorf("recorder state: stride %d < 1", st.Stride)
	}
	if st.MaxSamples < 0 || st.Factor < 0 || st.PeakTotal < 0 || st.PeakMax < 0 {
		return fmt.Errorf("recorder state: negative field in %+v", st)
	}
	r.Stride = st.Stride
	r.MaxSamples = st.MaxSamples
	r.factor = st.Factor
	r.peakTot = st.PeakTotal
	r.peakMax = st.PeakMax
	r.peakEdge = st.PeakEdge
	r.samples = append(r.samples[:0], st.Samples...)
	return nil
}
