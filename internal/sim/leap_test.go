// Differential tests for leap mode: RunLeap must be the same execution
// as Run — bit-identical Snapshot (modulo Stats.Nanos), identical
// per-edge queues, residence and Recorder output — while actually
// leaping on the workloads it exists for. This file is the equivalence
// gate named in the leap.go package doc.
package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// leapScenario is one workload of the equivalence matrix. build must
// return a fresh engine with a fresh adversary on every call (leap and
// step runs must not share pacing state). minWindows pins that the
// leap run actually leaps (a regression to pure stepping would still
// pass equivalence).
type leapScenario struct {
	name       string
	steps      int64
	minWindows int64
	build      func(pol policy.Policy) *sim.Engine
}

func leapScenarios() []leapScenario {
	return []leapScenario{
		{
			// Seeded single-edge packets, no adversary: the pure drain
			// regime — nonFinal == 0 from step one, then an idle tail.
			name: "seeded-final-drain", steps: 400, minWindows: 2,
			build: func(pol policy.Policy) *sim.Engine {
				g := graph.Line(8)
				e := sim.New(g, pol, nil)
				e.SeedN(100, packet.Inj(g.MustEdge("e1")))
				return e
			},
		},
		{
			// Seeded transit packets: the engine must step while packets
			// traverse e1..e3 (nonFinal > 0), then leap the drain and the
			// idle tail.
			name: "seeded-transit", steps: 400, minWindows: 1,
			build: func(pol policy.Policy) *sim.Engine {
				g := graph.Line(8)
				e := sim.New(g, pol, nil)
				e.SeedN(60, packet.Inj(g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")))
				return e
			},
		},
		{
			// Periodic single-edge bursts: each period is one stepped
			// burst step, a leaped drain window and a leaped idle window.
			name: "burst-final", steps: 1000, minWindows: 10,
			build: func(pol policy.Policy) *sim.Engine {
				g := graph.Line(8)
				adv := adversary.NewBurstScript(adversary.BurstStream{
					Name: "burst", Start: 1, Period: 64, Burst: 24, Budget: -1,
					Route: []graph.EdgeID{g.MustEdge("e1")},
				})
				return sim.New(g, pol, adv)
			},
		},
		{
			// Two staggered multi-edge burst streams with finite budgets:
			// transit stretches (stepped), drains, and a Forever idle tail
			// once both budgets exhaust.
			name: "burst-multi", steps: 1200, minWindows: 3,
			build: func(pol policy.Policy) *sim.Engine {
				g := graph.Line(12)
				adv := adversary.NewBurstScript(
					adversary.BurstStream{
						Name: "a", Start: 5, Period: 96, Burst: 30, Budget: 120,
						Route: []graph.EdgeID{g.MustEdge("e2"), g.MustEdge("e3"), g.MustEdge("e4")},
					},
					adversary.BurstStream{
						Name: "b", Start: 41, Period: 112, Burst: 20, Budget: 80,
						Route: []graph.EdgeID{g.MustEdge("e7"), g.MustEdge("e8")},
					},
				)
				return sim.New(g, pol, adv)
			},
		},
		{
			// A paced Script stream with a late start: idle leap up to
			// Start-1, stepped while the pacer is live (a started stream
			// pins the horizon into the past), leaped again after its
			// budget exhausts.
			name: "script-delayed", steps: 700, minWindows: 2,
			build: func(pol policy.Policy) *sim.Engine {
				g := graph.Line(8)
				adv := adversary.NewScript(adversary.Stream{
					Name: "late", Start: 300, Rate: rational.New(1, 2), Budget: 40,
					Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")},
				})
				return sim.New(g, pol, adv)
			},
		},
	}
}

// requireSameExecution compares every piece of externally observable
// engine state the equivalence contract covers.
func requireSameExecution(t *testing.T, leap, step *sim.Engine) {
	t.Helper()
	// adversary.SameExecution is the shared equivalence gate (snapshot
	// modulo Nanos, residence, per-edge queues packet by packet); the
	// scenario differential matrix reuses the same comparator.
	if err := adversary.SameExecution(leap, step); err != nil {
		t.Errorf("RunLeap vs Run: %v", err)
	}
	le, ll := leap.MaxQueueLen()
	se, sm := step.MaxQueueLen()
	if le != se || ll != sm {
		t.Errorf("MaxQueueLen: RunLeap (%d,%d) != Run (%d,%d)", le, ll, se, sm)
	}
}

// TestLeapEquivalence runs every scenario three ways — RunLeap, Run,
// and a manual Step loop — for FIFO, LIS and NTG, requiring identical
// executions and a minimum number of actually-leaped windows.
func TestLeapEquivalence(t *testing.T) {
	for _, sc := range leapScenarios() {
		for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}} {
			t.Run(sc.name+"/"+pol.Name(), func(t *testing.T) {
				leap, step, manual := sc.build(pol), sc.build(pol), sc.build(pol)
				leap.RunLeap(sc.steps)
				step.Run(sc.steps)
				for i := int64(0); i < sc.steps; i++ {
					manual.Step()
				}
				requireSameExecution(t, leap, step)
				requireSameExecution(t, manual, step)
				ls := leap.Leaps()
				if ls.Windows < sc.minWindows {
					t.Errorf("leaped %d windows, want >= %d (steps covered: %d)",
						ls.Windows, sc.minWindows, ls.Steps)
				}
				if ls.Steps == 0 {
					t.Error("RunLeap never leaped on a workload built to leap")
				}
				if ls.Idle+ls.Drain != ls.Windows {
					t.Errorf("leap kind counters %+v do not sum to Windows", ls)
				}
				if step.Leaps() != (sim.LeapStats{}) {
					t.Errorf("Run accumulated leap stats %+v", step.Leaps())
				}
			})
		}
	}
}

// TestLeapRandomDifferential is the randomized harness: random line and
// ring topologies, random burst scripts (random starts, periods, burst
// sizes, budgets and route lengths) crossed with all three policy
// families, leaped vs stepped. Runs under -race via `make race`.
func TestLeapRandomDifferential(t *testing.T) {
	pols := []policy.Policy{policy.FIFO{}, policy.LIS{}, policy.NTG{}}
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var g *graph.Graph
			n := 4 + rng.Intn(12)
			if rng.Intn(2) == 0 {
				g = graph.Line(n)
			} else {
				g = graph.Ring(n)
			}
			// Draw the stream specs once; each engine gets its own
			// BurstScript over the same specs (pacing state is per
			// instance, so the two runs see the same schedule).
			streams := make([]adversary.BurstStream, 1+rng.Intn(3))
			for i := range streams {
				first := rng.Intn(g.NumEdges())
				routeLen := 1 + rng.Intn(3)
				route := []graph.EdgeID{graph.EdgeID(first)}
				for len(route) < routeLen {
					outs := g.Out(g.Edge(route[len(route)-1]).To)
					if len(outs) == 0 {
						break
					}
					route = append(route, outs[rng.Intn(len(outs))])
				}
				streams[i] = adversary.BurstStream{
					Name:   fmt.Sprintf("s%d", i),
					Start:  1 + int64(rng.Intn(200)),
					Period: 16 + int64(rng.Intn(240)),
					Burst:  1 + int64(rng.Intn(40)),
					Budget: []int64{-1, 20 + int64(rng.Intn(200))}[rng.Intn(2)],
					Route:  route,
				}
			}
			pol := pols[rng.Intn(len(pols))]
			steps := int64(500 + rng.Intn(1500))
			leap := sim.New(g, pol, adversary.NewBurstScript(streams...))
			step := sim.New(g, pol, adversary.NewBurstScript(streams...))
			leap.RunLeap(steps)
			step.Run(steps)
			requireSameExecution(t, leap, step)
		})
	}
}

// TestLeapRecorderEquivalence attaches a Recorder (the one leap-aware
// observer in this package) to both runs: the sampled series, peaks
// and effective stride must be identical whether the windows were
// stepped or reconstructed in closed form by Recorder.OnLeap.
func TestLeapRecorderEquivalence(t *testing.T) {
	for _, stride := range []int64{1, 7} {
		for _, sc := range leapScenarios() {
			t.Run(fmt.Sprintf("%s/stride=%d", sc.name, stride), func(t *testing.T) {
				leap, step := sc.build(policy.FIFO{}), sc.build(policy.FIFO{})
				lr, sr := sim.NewRecorder(stride), sim.NewRecorder(stride)
				leap.AddObserver(lr)
				step.AddObserver(sr)
				leap.RunLeap(sc.steps)
				step.Run(sc.steps)
				requireSameExecution(t, leap, step)
				if leap.Leaps().Windows == 0 {
					t.Error("Recorder acceptance should not prevent leaping")
				}
				if lr.PeakTotal() != sr.PeakTotal() {
					t.Errorf("PeakTotal: leap %d != step %d", lr.PeakTotal(), sr.PeakTotal())
				}
				le, lm := lr.PeakBuffer()
				se, sm := sr.PeakBuffer()
				if lm != sm {
					t.Errorf("PeakBuffer: leap %d (edge %d) != step %d (edge %d)", lm, le, sm, se)
				}
				lsamp, ssamp := lr.Samples(), sr.Samples()
				if len(lsamp) != len(ssamp) {
					t.Fatalf("sample count: leap %d != step %d", len(lsamp), len(ssamp))
				}
				for i := range lsamp {
					if lsamp[i] != ssamp[i] {
						t.Fatalf("sample %d: leap %+v != step %+v", i, lsamp[i], ssamp[i])
					}
				}
			})
		}
	}
}

// TestLeapLatencyObserverEquivalence: LatencyObserver refuses drain
// windows (it needs each absorption), so attaching it forces stepped
// drains — and the per-packet latency stats must match the fully
// stepped run exactly, with idle windows still leaped.
func TestLeapLatencyObserverEquivalence(t *testing.T) {
	sc := leapScenarios()[2] // burst-final: drains and long idle gaps
	leap, step := sc.build(policy.FIFO{}), sc.build(policy.FIFO{})
	ll, sl := &sim.LatencyObserver{}, &sim.LatencyObserver{}
	leap.AddObserver(ll)
	step.AddObserver(sl)
	leap.RunLeap(sc.steps)
	step.Run(sc.steps)
	requireSameExecution(t, leap, step)
	if ll.Stats() != sl.Stats() {
		t.Errorf("latency stats: leap %+v != step %+v", ll.Stats(), sl.Stats())
	}
	ls := leap.Leaps()
	if ls.Drain != 0 {
		t.Errorf("drain windows leaped past a refusing LatencyObserver: %+v", ls)
	}
	if ls.Idle == 0 {
		t.Errorf("idle windows should still leap with a LatencyObserver attached: %+v", ls)
	}
}

// leapLogger accepts every window and records the OnLeap callbacks,
// checking the documented pre-mutation contract: at OnLeap time the
// engine clock still reads info.From.
type leapLogger struct {
	t     *testing.T
	infos []sim.LeapInfo
}

func (l *leapLogger) OnStep(*sim.Engine)           {}
func (l *leapLogger) AcceptLeap(sim.LeapKind) bool { return true }
func (l *leapLogger) OnLeap(e *sim.Engine, info sim.LeapInfo) {
	if e.Now() != info.From {
		l.t.Errorf("OnLeap fired post-mutation: Now()=%d, info.From=%d", e.Now(), info.From)
	}
	if info.To <= info.From {
		l.t.Errorf("empty leap window %+v", info)
	}
	l.infos = append(l.infos, info)
}

// TestLeapObserverCallbacks pins the OnLeap contract: one call per
// window, fired before mutation, windows and stepped OnStep dispatches
// jointly covering the whole horizon exactly once.
func TestLeapObserverCallbacks(t *testing.T) {
	sc := leapScenarios()[2]
	e := sc.build(policy.FIFO{})
	lg := &leapLogger{t: t}
	e.AddObserver(lg)
	e.RunLeap(sc.steps)
	ls := e.Leaps()
	if int64(len(lg.infos)) != ls.Windows {
		t.Fatalf("OnLeap fired %d times for %d windows", len(lg.infos), ls.Windows)
	}
	var covered int64
	for i, info := range lg.infos {
		covered += info.Steps()
		if i > 0 && info.From < lg.infos[i-1].To {
			t.Errorf("windows overlap: %+v then %+v", lg.infos[i-1], info)
		}
	}
	if covered != ls.Steps {
		t.Errorf("windows cover %d steps, LeapStats says %d", covered, ls.Steps)
	}
	if covered+(e.Now()-covered) != sc.steps {
		t.Errorf("coverage accounting broken: covered %d, now %d, horizon %d",
			covered, e.Now(), sc.steps)
	}
}

// TestLeapVetoedByPlainObserver: an OnStep observer that does not
// implement LeapObserver must force a fully stepped execution.
func TestLeapVetoedByPlainObserver(t *testing.T) {
	sc := leapScenarios()[0]
	e := sc.build(policy.FIFO{})
	rec := &stepRecorder{}
	e.AddObserver(rec)
	e.RunLeap(sc.steps)
	if ls := e.Leaps(); ls.Windows != 0 {
		t.Errorf("leaped %d windows past a non-leap observer", ls.Windows)
	}
	if int64(len(rec.times)) != sc.steps {
		t.Errorf("observer saw %d steps, want %d", len(rec.times), sc.steps)
	}
}

// TestRunLeapUntilEquivalence checks RunLeapUntil against RunUntil for
// the two leap-safe predicate families: emptiness (drain windows are
// clamped to end exactly at TotalQueued() == 0) and absorption
// thresholds reached at window boundaries.
func TestRunLeapUntilEquivalence(t *testing.T) {
	mk := func() *sim.Engine {
		g := graph.Line(8)
		adv := adversary.NewBurstScript(adversary.BurstStream{
			Name: "burst", Start: 1, Period: 64, Burst: 24, Budget: 96,
			Route: []graph.EdgeID{g.MustEdge("e1")},
		})
		return sim.New(g, policy.FIFO{}, adv)
	}
	pred := func(e *sim.Engine) bool { return e.Injected() == 96 && e.TotalQueued() == 0 }
	leap, step := mk(), mk()
	lf := leap.RunLeapUntil(pred, 4000)
	sf := step.RunUntil(pred, 4000)
	if lf != sf {
		t.Fatalf("fired: leap %v, step %v", lf, sf)
	}
	if leap.Now() != step.Now() {
		t.Fatalf("stop time: leap %d != step %d", leap.Now(), step.Now())
	}
	requireSameExecution(t, leap, step)
	if leap.Leaps().Windows == 0 {
		t.Error("RunLeapUntil never leaped")
	}

	// Entry semantics: an already-true predicate costs zero steps.
	e := mk()
	if !e.RunLeapUntil(func(*sim.Engine) bool { return true }, 100) {
		t.Error("RunLeapUntil did not fire on an entry-true predicate")
	}
	if e.Now() != 0 {
		t.Errorf("entry-true predicate consumed %d steps", e.Now())
	}

	// Budget exhaustion mirrors RunUntil.
	e2 := mk()
	if e2.RunLeapUntil(func(*sim.Engine) bool { return false }, 123) {
		t.Error("RunLeapUntil fired with an always-false predicate")
	}
	if e2.Now() != 123 {
		t.Errorf("RunLeapUntil took %d steps, want 123", e2.Now())
	}
}

// TestRunUntilEntryPredicate is the boundary-semantics regression test:
// RunUntil with a predicate that is already true at entry must return
// true without executing a step — with and without observers.
func TestRunUntilEntryPredicate(t *testing.T) {
	g := graph.Line(4)
	mk := func() *sim.Engine {
		return sim.New(g, policy.FIFO{}, adversary.NewRandomWR(g, 8, rational.New(1, 2), 3, 3))
	}
	for _, observed := range []bool{false, true} {
		t.Run(fmt.Sprintf("observed=%v", observed), func(t *testing.T) {
			e := mk()
			if observed {
				e.AddObserver(&stepRecorder{})
			}
			if !e.RunUntil(func(*sim.Engine) bool { return true }, 50) {
				t.Error("RunUntil did not fire on an entry-true predicate")
			}
			if e.Now() != 0 {
				t.Errorf("entry-true predicate consumed %d steps", e.Now())
			}
			// A predicate over state reached mid-run still stops as before.
			e2 := mk()
			fired := e2.RunUntil(func(e *sim.Engine) bool { return e.Now() >= 7 }, 50)
			if !fired || e2.Now() != 7 {
				t.Errorf("mid-run predicate: fired=%v at t=%d, want true at 7", fired, e2.Now())
			}
			// Re-invoking with the now-true predicate is free.
			if !e2.RunUntil(func(e *sim.Engine) bool { return e.Now() >= 7 }, 50) || e2.Now() != 7 {
				t.Errorf("re-invoked RunUntil moved the clock to %d", e2.Now())
			}
		})
	}
}

// TestRunLeapZeroAndNegative pins the degenerate horizons.
func TestRunLeapZeroAndNegative(t *testing.T) {
	g := graph.Line(4)
	e := sim.New(g, policy.FIFO{}, nil)
	e.RunLeap(0)
	e.RunLeap(-5)
	if e.Now() != 0 {
		t.Errorf("degenerate RunLeap moved the clock to %d", e.Now())
	}
}
