package sim

import (
	"strings"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// TestRecorderMaxSamplesMillionSteps closes the ROADMAP item on the
// stride-1 Recorder's unbounded memory: a million-step run with
// MaxSamples set must keep the retained series bounded and uniformly
// spaced while the lifetime peaks stay exact — compared against an
// unbounded coarse-stride twin watching the same engine.
func TestRecorderMaxSamplesMillionSteps(t *testing.T) {
	const steps = 1_000_000
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, InjectFunc(func(e *Engine) []packet.Injection {
		// One packet per step keeps the queue busy; a 50-packet burst at
		// step 600_007 sets a lifetime peak on a step no coarse sample
		// will land on.
		n := 1
		if e.Now() == 600_007 {
			n = 50
		}
		inj := make([]packet.Injection, n)
		for i := range inj {
			inj[i] = packet.InjNamed(g, "e1")
		}
		return inj
	}))
	bounded := NewRecorder(1)
	bounded.MaxSamples = 1024
	coarse := NewRecorder(4096) // unbounded, far off the spike step
	e.AddObserver(bounded)
	e.AddObserver(coarse)
	e.Run(steps)

	if got := len(bounded.Samples()); got > 1024 {
		t.Errorf("retained %d samples, MaxSamples is 1024", got)
	}
	eff := bounded.EffectiveStride()
	if eff <= 1 || eff&(eff-1) != 0 {
		t.Errorf("EffectiveStride() = %d, want a power of two > 1", eff)
	}
	for _, s := range bounded.Samples() {
		if s.T%eff != 0 {
			t.Errorf("sample at t=%d not aligned to effective stride %d", s.T, eff)
		}
	}
	// Peaks are tracked every step, independent of sampling: both
	// recorders must agree, and both must have seen the burst.
	if bounded.PeakTotal() != coarse.PeakTotal() {
		t.Errorf("PeakTotal %d (bounded) != %d (coarse twin)", bounded.PeakTotal(), coarse.PeakTotal())
	}
	if bounded.PeakTotal() < 50 {
		t.Errorf("PeakTotal = %d, the step-600007 burst was missed", bounded.PeakTotal())
	}
	be, bp := bounded.PeakBuffer()
	ce, cp := coarse.PeakBuffer()
	if be != ce || bp != cp {
		t.Errorf("PeakBuffer (%v,%d) != coarse twin (%v,%d)", be, bp, ce, cp)
	}
	// The series still covers the whole run.
	if last := bounded.Last(); last.T < steps-eff {
		t.Errorf("last retained sample at t=%d, run ended at %d", last.T, steps)
	}
}

// TestRecorderMaxSamplesUnsetIsUnbounded pins the historical default.
func TestRecorderMaxSamplesUnsetIsUnbounded(t *testing.T) {
	g := graph.Line(1)
	rec := NewRecorder(1)
	e := New(g, policy.FIFO{}, nil)
	e.AddObserver(rec)
	e.SeedN(1, packet.InjNamed(g, "e1"))
	e.Run(5000)
	if got := len(rec.Samples()); got != 5000 {
		t.Errorf("unbounded recorder kept %d samples, want 5000", got)
	}
	if rec.EffectiveStride() != 1 {
		t.Errorf("EffectiveStride() = %d, want 1", rec.EffectiveStride())
	}
}

// TestAsciiPlotSpikeVisible: a single-sample spike must appear in the
// plot. Point-sampling one value per column used to skip it entirely
// unless it landed on a sampled index; per-column max cannot.
func TestAsciiPlotSpikeVisible(t *testing.T) {
	rec := &Recorder{}
	for i := 0; i < 200; i++ {
		v := int64(1)
		if i == 101 { // not on any width-20 point-sample index
			v = 100
		}
		rec.samples = append(rec.samples, Sample{T: int64(i + 1), TotalQueued: v})
	}
	plot := rec.AsciiPlot(20, 5)
	rows := strings.Split(plot, "\n")
	// rows[0] is the caption; rows[1] is the top band (the peak).
	if got := strings.Count(rows[1], "*"); got != 1 {
		t.Errorf("top plot row has %d stars, want the spike exactly once:\n%s", got, plot)
	}
	if !strings.Contains(plot, "peak 100") {
		t.Errorf("caption lost the peak:\n%s", plot)
	}
}

func TestTracerDroppedKeepsOldest(t *testing.T) {
	g := graph.Line(1)
	tr := &Tracer{Cap: 2}
	e := New(g, policy.FIFO{}, InjectFunc(func(e *Engine) []packet.Injection {
		if e.Now() > 5 {
			return nil
		}
		return []packet.Injection{packet.InjNamed(g, "e1")}
	}))
	e.AddObserver(tr)
	e.Run(8)
	if len(tr.Events()) != 2 {
		t.Fatalf("retained %d events, Cap is 2", len(tr.Events()))
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3 (5 injections, 2 kept)", tr.Dropped())
	}
	if tr.Events()[0].T != 1 || tr.Events()[1].T != 2 {
		t.Errorf("keep-oldest violated: events at t=%d,%d, want 1,2",
			tr.Events()[0].T, tr.Events()[1].T)
	}
}
