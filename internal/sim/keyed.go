package sim

// Keyed-policy fast path: for policies whose rule is "minimize
// (key, enqueueSeq)" (policy.Keyed), the engine maintains a per-edge
// binary heap of (key, seq) pairs, replacing the O(n) buffer scan per
// send with an O(log n) pop. The ring buffer stays the source of truth
// (observers and invariant checkers keep seeing enqueue order); the
// heap top's packet is located in the ring by binary search on its
// sequence number.

// keyEntry is one heap element.
type keyEntry struct {
	key int64
	seq int64
}

// keyHeap is a hand-rolled min-heap over (key, seq); container/heap is
// avoided to keep pushes allocation-free on the hot path.
type keyHeap []keyEntry

func (h keyHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}

func (h *keyHeap) push(e keyEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *keyHeap) pop() keyEntry {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h keyHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// rebuildHeap regenerates the heap of edge eid from its buffer
// contents (after a route change invalidated keys).
func (e *Engine) rebuildHeap(eid int) {
	e.stats.HeapRebuilds++
	h := e.heaps[eid][:0]
	buf := &e.buffers[eid]
	for i := 0; i < buf.Len(); i++ {
		p := buf.At(i)
		h = append(h, keyEntry{key: e.keyed.SelectionKey(p), seq: p.EnqueueSeq})
	}
	// Floyd heap construction.
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	e.heaps[eid] = h
	e.heapDirty[eid] = false
}
