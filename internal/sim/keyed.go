package sim

import (
	"aqt/internal/graph"
	"aqt/internal/packet"
)

// Keyed-policy fast path: for policies whose rule is "minimize
// (key, enqueueSeq)" (policy.Keyed), the engine maintains a per-edge
// binary min-heap of (key, seq) entries, replacing the O(n) buffer scan
// per send with an amortized O(log n) pop. The ring buffer stays the
// source of truth (observers and invariant checkers keep seeing enqueue
// order); the heap is only an index into it, and the heap top's packet
// is located in the ring by binary search on its sequence number.
//
// Lazy deletion (tombstones): the heap may hold stale entries. A
// Lemma 3.3 reroute that changes a buffered packet's selection key does
// not rebuild the heap — the pre-tombstone eager scheme paid O(n) per
// rerouted buffer, which dominated reroute-heavy phases — it pushes one
// fresh (newKey, seq) entry for just that packet and leaves the old
// entry behind as a tombstone. Correctness rests on one invariant:
//
//	for every packet p buffered at edge eid, heaps[eid] holds at
//	least one entry equal to (SelectionKey(p), p.EnqueueSeq).
//
// An entry (k, s) is stale iff the buffer no longer holds seq s
// (IndexOfSeq(s) == -1: the packet was already sent and only its
// duplicate entries remain), or its key disagrees with the packet's
// current SelectionKey (a later reroute changed it; the reroute pushed
// a fresher entry). Every non-stale entry equals (SelectionKey(p), seq)
// for some buffered p, so popping in heap order and discarding stale
// entries yields exactly the packet minimizing (key, seq) — the
// policy's selection rule.
//
// heapStale counts, per edge, an upper bound on the stale entries
// still in the heap (each key-changing reroute strands exactly one;
// pops discard them one at a time). When tombstones exceed half the
// heap right after a reroute, the heap is compacted — rebuilt from the
// buffer in O(n) — so memory and pop cost stay proportional to live
// entries. Compaction is amortized: it needs > len/2 reroute pushes
// since the previous compaction, each of which paid only O(log n).

// keyEntry is one heap element.
type keyEntry struct {
	key int64
	seq int64
}

// keyHeap is a hand-rolled min-heap over (key, seq); container/heap is
// avoided to keep pushes allocation-free on the hot path.
type keyHeap []keyEntry

func (h keyHeap) less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}

func (h *keyHeap) push(e keyEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *keyHeap) pop() keyEntry {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h keyHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// popKeyed selects and removes the packet minimizing (SelectionKey,
// EnqueueSeq) from the nonempty buffer of edge eid, discarding stale
// heap entries (tombstones) along the way.
func (e *Engine) popKeyed(eid graph.EdgeID) *packet.Packet {
	buf := &e.buffers[eid]
	h := &e.heaps[eid]
	for len(*h) > 0 {
		top := h.pop()
		i := buf.IndexOfSeq(top.seq)
		if i < 0 {
			// The packet already left this buffer; only this duplicate
			// entry survived it.
			e.skipStale(eid)
			continue
		}
		p := buf.At(i)
		if e.keyed.SelectionKey(p) != top.key {
			// A reroute changed the key after this entry was pushed; the
			// reroute pushed a fresh entry, so this one is a tombstone.
			e.skipStale(eid)
			continue
		}
		return buf.RemoveAt(i)
	}
	panic("sim: keyed heap exhausted with a nonempty buffer (tombstone invariant violated)")
}

func (e *Engine) skipStale(eid graph.EdgeID) {
	e.stats.HeapSkips++
	if e.heapStale[eid] > 0 {
		e.heapStale[eid]--
		e.heapStaleTot--
	}
}

// tombstone records that a reroute changed a buffered packet's
// selection key: push a fresh entry for just that packet, count the
// stranded old entry, and compact when tombstones dominate the heap.
func (e *Engine) tombstone(eid graph.EdgeID, fresh keyEntry) {
	e.heaps[eid].push(fresh)
	e.heapStale[eid]++
	e.heapStaleTot++
	if 2*e.heapStale[eid] > len(e.heaps[eid]) {
		e.compactHeap(int(eid))
	}
}

// compactHeap regenerates the heap of edge eid from its buffer
// contents, dropping every tombstone. This is the only remaining O(n)
// rebuild; it runs amortized (see the package comment above).
func (e *Engine) compactHeap(eid int) {
	e.stats.HeapCompactions++
	e.stats.HeapRebuilds++
	h := e.heaps[eid][:0]
	buf := &e.buffers[eid]
	for i := 0; i < buf.Len(); i++ {
		p := buf.At(i)
		h = append(h, keyEntry{key: e.keyed.SelectionKey(p), seq: p.EnqueueSeq})
	}
	// Floyd heap construction.
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	e.heaps[eid] = h
	e.heapStaleTot -= e.heapStale[eid]
	e.heapStale[eid] = 0
}
