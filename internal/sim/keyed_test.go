package sim

import (
	"testing"
	"testing/quick"

	"aqt/internal/buffer"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// slowWrap hides a policy's Keyed implementation so the engine takes
// the generic Select path — the reference for equivalence tests.
type slowWrap struct {
	p policy.Policy
}

func (w slowWrap) Name() string                           { return w.p.Name() }
func (w slowWrap) Traits() policy.Traits                  { return w.p.Traits() }
func (w slowWrap) Select(q *buffer.Buffer, now int64) int { return w.p.Select(q, now) }

// randomTraffic builds a deterministic mixed workload on a complete
// graph: bursts of multi-hop packets plus a trickle of short ones.
func randomTraffic(seed int64) Adversary {
	return InjectFunc(func(e *Engine) []packet.Injection {
		t := e.Now()
		if t > 60 {
			return nil
		}
		g := e.Graph()
		var out []packet.Injection
		// Deterministic pseudo-random-ish pattern from t and seed.
		x := (t*2654435761 + seed) % int64(g.NumEdges())
		if x < 0 {
			x += int64(g.NumEdges())
		}
		eid := graph.EdgeID(x)
		route := []graph.EdgeID{eid}
		// Try to extend by one hop.
		head := g.Edge(eid).To
		for _, nxt := range g.Out(head) {
			if g.Edge(nxt).To != g.Edge(eid).From {
				route = append(route, nxt)
				break
			}
		}
		out = append(out, packet.Injection{Route: route})
		if t%3 == 0 {
			out = append(out, packet.Injection{Route: []graph.EdgeID{eid}})
		}
		return out
	})
}

func TestKeyedFastPathMatchesSelectPath(t *testing.T) {
	keyedPols := []policy.Policy{
		policy.LIS{}, policy.SIS{}, policy.FTG{}, policy.NTG{}, policy.FFS{}, policy.NFS{},
	}
	for _, pol := range keyedPols {
		for seed := int64(0); seed < 4; seed++ {
			g := graph.Complete(5)
			fast := New(g, pol, randomTraffic(seed))
			slow := New(g, slowWrap{pol}, randomTraffic(seed))
			if fast.keyed == nil {
				t.Fatalf("%s did not take the fast path", pol.Name())
			}
			if slow.keyed != nil {
				t.Fatal("wrapper leaked Keyed")
			}
			for i := 0; i < 100; i++ {
				fast.Step()
				slow.Step()
				if fast.Absorbed() != slow.Absorbed() || fast.TotalQueued() != slow.TotalQueued() {
					t.Fatalf("%s seed %d step %d: fast (abs %d, q %d) vs slow (abs %d, q %d)",
						pol.Name(), seed, i+1, fast.Absorbed(), fast.TotalQueued(),
						slow.Absorbed(), slow.TotalQueued())
				}
				for eid := 0; eid < g.NumEdges(); eid++ {
					if fast.QueueLen(graph.EdgeID(eid)) != slow.QueueLen(graph.EdgeID(eid)) {
						t.Fatalf("%s seed %d step %d: queue mismatch at edge %d",
							pol.Name(), seed, i+1, eid)
					}
				}
			}
		}
	}
}

func TestKeyedHeapRebuildAfterReroute(t *testing.T) {
	// Under NTG, extending a buffered packet's route changes its key;
	// the heap must notice (lazily) or selection would be stale.
	g := graph.Line(4)
	e := New(g, policy.NTG{}, nil)
	long := e.Seed(packet.InjNamed(g, "e1", "e2")) // 2 hops: loses to short
	short := e.Seed(packet.InjNamed(g, "e1"))      // 1 hop: NTG favourite
	_ = short
	// Extend the short packet so it becomes the LONGEST (4 hops).
	e.ExtendRoute(short, []graph.EdgeID{g.MustEdge("e2"), g.MustEdge("e3"), g.MustEdge("e4")})
	e.Step()
	// Now `long` (2 hops) is nearest-to-go and must have been sent:
	// it sits at e2 while the extended packet waits at e1.
	if e.Queue(g.MustEdge("e2")).Len() != 1 {
		t.Fatal("no packet advanced to e2")
	}
	if got := e.Queue(g.MustEdge("e2")).Front(); got != long {
		t.Errorf("stale heap: extended packet was sent instead of the now-shortest")
	}
	if e.Queue(g.MustEdge("e1")).Front() != short {
		t.Error("extended packet should still wait at e1")
	}
}

func TestKeyedConservationUnderChurn(t *testing.T) {
	f := func(seed int64, polIdx uint8) bool {
		pols := []policy.Policy{policy.LIS{}, policy.SIS{}, policy.FTG{}, policy.NTG{}}
		pol := pols[int(polIdx)%len(pols)]
		g := graph.Complete(4)
		e := New(g, pol, randomTraffic(seed))
		e.Run(120)
		e.CheckConservation()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIndexOfSeqViaEngine(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	var pkts []*packet.Packet
	for i := 0; i < 10; i++ {
		pkts = append(pkts, e.Seed(packet.InjNamed(g, "e1")))
	}
	q := e.Queue(g.MustEdge("e1"))
	for i, p := range pkts {
		if got := q.IndexOfSeq(p.EnqueueSeq); got != i {
			t.Errorf("IndexOfSeq(%d) = %d, want %d", p.EnqueueSeq, got, i)
		}
	}
	if q.IndexOfSeq(-5) != -1 || q.IndexOfSeq(1<<40) != -1 {
		t.Error("missing seq should give -1")
	}
}

// BenchmarkKeyedVsScan measures the win on a single hot buffer.
func BenchmarkKeyedVsScan(b *testing.B) {
	mk := func(pol policy.Policy, n int) *Engine {
		g := graph.Line(2)
		e := New(g, pol, nil)
		for i := 0; i < n; i++ {
			e.Seed(packet.InjNamed(g, "e1", "e2"))
		}
		return e
	}
	for _, n := range []int{1 << 10, 1 << 14} {
		b.Run("scan/LIS/"+itoa(n), func(b *testing.B) {
			e := mk(slowWrap{policy.LIS{}}, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = mk(slowWrap{policy.LIS{}}, n)
					b.StartTimer()
				}
			}
		})
		b.Run("heap/LIS/"+itoa(n), func(b *testing.B) {
			e := mk(policy.LIS{}, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = mk(policy.LIS{}, n)
					b.StartTimer()
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 1<<10 {
		return "1k"
	}
	return "16k"
}
