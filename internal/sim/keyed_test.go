package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"aqt/internal/buffer"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// slowWrap hides a policy's Keyed implementation so the engine takes
// the generic Select path — the reference for equivalence tests.
type slowWrap struct {
	p policy.Policy
}

func (w slowWrap) Name() string                           { return w.p.Name() }
func (w slowWrap) Traits() policy.Traits                  { return w.p.Traits() }
func (w slowWrap) Select(q *buffer.Buffer, now int64) int { return w.p.Select(q, now) }

// randomTraffic builds a deterministic mixed workload on a complete
// graph: bursts of multi-hop packets plus a trickle of short ones.
func randomTraffic(seed int64) Adversary {
	return InjectFunc(func(e *Engine) []packet.Injection {
		t := e.Now()
		if t > 60 {
			return nil
		}
		g := e.Graph()
		var out []packet.Injection
		// Deterministic pseudo-random-ish pattern from t and seed.
		x := (t*2654435761 + seed) % int64(g.NumEdges())
		if x < 0 {
			x += int64(g.NumEdges())
		}
		eid := graph.EdgeID(x)
		route := []graph.EdgeID{eid}
		// Try to extend by one hop.
		head := g.Edge(eid).To
		for _, nxt := range g.Out(head) {
			if g.Edge(nxt).To != g.Edge(eid).From {
				route = append(route, nxt)
				break
			}
		}
		out = append(out, packet.Injection{Route: route})
		if t%3 == 0 {
			out = append(out, packet.Injection{Route: []graph.EdgeID{eid}})
		}
		return out
	})
}

func TestKeyedFastPathMatchesSelectPath(t *testing.T) {
	keyedPols := []policy.Policy{
		policy.LIS{}, policy.SIS{}, policy.FTG{}, policy.NTG{}, policy.FFS{}, policy.NFS{},
	}
	for _, pol := range keyedPols {
		for seed := int64(0); seed < 4; seed++ {
			g := graph.Complete(5)
			fast := New(g, pol, randomTraffic(seed))
			slow := New(g, slowWrap{pol}, randomTraffic(seed))
			if fast.keyed == nil {
				t.Fatalf("%s did not take the fast path", pol.Name())
			}
			if slow.keyed != nil {
				t.Fatal("wrapper leaked Keyed")
			}
			for i := 0; i < 100; i++ {
				fast.Step()
				slow.Step()
				if fast.Absorbed() != slow.Absorbed() || fast.TotalQueued() != slow.TotalQueued() {
					t.Fatalf("%s seed %d step %d: fast (abs %d, q %d) vs slow (abs %d, q %d)",
						pol.Name(), seed, i+1, fast.Absorbed(), fast.TotalQueued(),
						slow.Absorbed(), slow.TotalQueued())
				}
				for eid := 0; eid < g.NumEdges(); eid++ {
					if fast.QueueLen(graph.EdgeID(eid)) != slow.QueueLen(graph.EdgeID(eid)) {
						t.Fatalf("%s seed %d step %d: queue mismatch at edge %d",
							pol.Name(), seed, i+1, eid)
					}
				}
			}
		}
	}
}

func TestKeyedHeapRebuildAfterReroute(t *testing.T) {
	// Under NTG, extending a buffered packet's route changes its key;
	// the heap must notice (lazily) or selection would be stale.
	g := graph.Line(4)
	e := New(g, policy.NTG{}, nil)
	long := e.Seed(packet.InjNamed(g, "e1", "e2")) // 2 hops: loses to short
	short := e.Seed(packet.InjNamed(g, "e1"))      // 1 hop: NTG favourite
	_ = short
	// Extend the short packet so it becomes the LONGEST (4 hops).
	e.ExtendRoute(short, []graph.EdgeID{g.MustEdge("e2"), g.MustEdge("e3"), g.MustEdge("e4")})
	e.Step()
	// Now `long` (2 hops) is nearest-to-go and must have been sent:
	// it sits at e2 while the extended packet waits at e1.
	if e.Queue(g.MustEdge("e2")).Len() != 1 {
		t.Fatal("no packet advanced to e2")
	}
	if got := e.Queue(g.MustEdge("e2")).Front(); got != long {
		t.Errorf("stale heap: extended packet was sent instead of the now-shortest")
	}
	if e.Queue(g.MustEdge("e1")).Front() != short {
		t.Error("extended packet should still wait at e1")
	}
}

func TestKeyedConservationUnderChurn(t *testing.T) {
	f := func(seed int64, polIdx uint8) bool {
		pols := []policy.Policy{policy.LIS{}, policy.SIS{}, policy.FTG{}, policy.NTG{}}
		pol := pols[int(polIdx)%len(pols)]
		g := graph.Complete(4)
		e := New(g, pol, randomTraffic(seed))
		e.Run(120)
		e.CheckConservation()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIndexOfSeqViaEngine(t *testing.T) {
	g := graph.Line(1)
	e := New(g, policy.FIFO{}, nil)
	var pkts []*packet.Packet
	for i := 0; i < 10; i++ {
		pkts = append(pkts, e.Seed(packet.InjNamed(g, "e1")))
	}
	q := e.Queue(g.MustEdge("e1"))
	for i, p := range pkts {
		if got := q.IndexOfSeq(p.EnqueueSeq); got != i {
			t.Errorf("IndexOfSeq(%d) = %d, want %d", p.EnqueueSeq, got, i)
		}
	}
	if q.IndexOfSeq(-5) != -1 || q.IndexOfSeq(1<<40) != -1 {
		t.Error("missing seq should give -1")
	}
}

// BenchmarkKeyedVsScan measures the win on a single hot buffer.
func BenchmarkKeyedVsScan(b *testing.B) {
	mk := func(pol policy.Policy, n int) *Engine {
		g := graph.Line(2)
		e := New(g, pol, nil)
		for i := 0; i < n; i++ {
			e.Seed(packet.InjNamed(g, "e1", "e2"))
		}
		return e
	}
	for _, n := range []int{1 << 10, 1 << 14} {
		b.Run("scan/LIS/"+itoa(n), func(b *testing.B) {
			e := mk(slowWrap{policy.LIS{}}, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = mk(slowWrap{policy.LIS{}}, n)
					b.StartTimer()
				}
			}
		})
		b.Run("heap/LIS/"+itoa(n), func(b *testing.B) {
			e := mk(policy.LIS{}, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
				if e.TotalQueued() == 0 {
					b.StopTimer()
					e = mk(policy.LIS{}, n)
					b.StartTimer()
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 1<<10 {
		return "1k"
	}
	return "16k"
}

// verifyHeapInvariant checks the lazy-deletion contract of keyed.go on
// every edge: each buffered packet has at least one live heap entry
// carrying its current (SelectionKey, EnqueueSeq), and the per-edge
// stale counter is an upper bound on the tombstones actually present.
func verifyHeapInvariant(t *testing.T, e *Engine) {
	t.Helper()
	if e.keyed == nil {
		t.Fatal("engine is not on the keyed fast path")
	}
	for eid := range e.heaps {
		h := e.heaps[eid]
		buf := &e.buffers[eid]
		entries := make(map[keyEntry]int, len(h))
		for _, en := range h {
			entries[en]++
		}
		for i := 0; i < buf.Len(); i++ {
			p := buf.At(i)
			want := keyEntry{key: e.keyed.SelectionKey(p), seq: p.EnqueueSeq}
			if entries[want] == 0 {
				t.Fatalf("edge %d: buffered packet %v lost its live heap entry %+v", eid, p, want)
			}
		}
		stale := 0
		for _, en := range h {
			if i := buf.IndexOfSeq(en.seq); i < 0 || e.keyed.SelectionKey(buf.At(i)) != en.key {
				stale++
			}
		}
		if stale > e.heapStale[eid] {
			t.Fatalf("edge %d: %d tombstones in the heap but the stale counter says %d",
				eid, stale, e.heapStale[eid])
		}
	}
}

// rerouteStorm reroutes `churn` randomly chosen buffered packets every
// PreStep on a Line graph — replacing each one's remaining route with a
// random contiguous run along the line (possibly empty: absorb at the
// current edge's head) — and injects a trickle of fresh multi-hop
// packets. Decisions depend only on the seeded RNG and on engine state
// that evolves identically across equivalent engines, so two instances
// built with equal seeds keep a keyed engine and its brute-force
// reference in lockstep.
type rerouteStorm struct {
	rng   *rand.Rand
	churn int
	until int64
	pkts  []*packet.Packet
}

func (a *rerouteStorm) PreStep(e *Engine) {
	a.pkts = a.pkts[:0]
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) { a.pkts = append(a.pkts, p) })
	if len(a.pkts) == 0 {
		return
	}
	n := e.Graph().NumEdges()
	for i := 0; i < a.churn; i++ {
		p := a.pkts[a.rng.Intn(len(a.pkts))]
		// On Line graphs edge IDs ascend along the path, so any
		// contiguous run starting at the packet's current edge is a
		// valid simple route.
		cur := int(p.CurrentEdge())
		end := cur + a.rng.Intn(n-cur)
		suffix := make([]graph.EdgeID, 0, end-cur)
		for eid := cur + 1; eid <= end; eid++ {
			suffix = append(suffix, graph.EdgeID(eid))
		}
		e.ReplaceRouteSuffix(p, suffix)
	}
}

func (a *rerouteStorm) Inject(e *Engine) []packet.Injection {
	if e.Now() > a.until {
		return nil
	}
	n := e.Graph().NumEdges()
	out := make([]packet.Injection, 0, 2)
	for i := 0; i < 2; i++ {
		start := a.rng.Intn(n)
		end := start + a.rng.Intn(n-start)
		route := make([]graph.EdgeID, 0, end-start+1)
		for eid := start; eid <= end; eid++ {
			route = append(route, graph.EdgeID(eid))
		}
		out = append(out, packet.Injection{Route: route})
	}
	return out
}

// TestKeyedTombstoneDifferential is the tentpole harness: the tombstone
// fast path against the brute-force policy.Select reference under a
// randomized reroute-heavy workload, for every keyed policy. After
// every step the two executions must agree packet-by-packet on every
// buffer, and the fast engine's heap must satisfy the lazy-deletion
// invariant.
func TestKeyedTombstoneDifferential(t *testing.T) {
	keyedPols := []policy.Policy{
		policy.LIS{}, policy.SIS{}, policy.FTG{}, policy.NTG{}, policy.FFS{}, policy.NFS{},
	}
	const steps = 400
	for _, pol := range keyedPols {
		for seed := int64(0); seed < 3; seed++ {
			g := graph.Line(7)
			mkStorm := func() *rerouteStorm {
				return &rerouteStorm{rng: rand.New(rand.NewSource(seed)), churn: 3, until: steps - 60}
			}
			fast := New(g, pol, mkStorm())
			slow := New(g, slowWrap{pol}, mkStorm())
			if fast.keyed == nil || slow.keyed != nil {
				t.Fatal("fast/slow path mixup")
			}
			fast.SeedN(6, packet.Injection{Route: []graph.EdgeID{0, 1, 2}})
			slow.SeedN(6, packet.Injection{Route: []graph.EdgeID{0, 1, 2}})
			for step := 1; step <= steps; step++ {
				fast.Step()
				slow.Step()
				if fast.Absorbed() != slow.Absorbed() {
					t.Fatalf("%s seed %d step %d: absorbed %d (fast) vs %d (slow)",
						pol.Name(), seed, step, fast.Absorbed(), slow.Absorbed())
				}
				for eid := 0; eid < g.NumEdges(); eid++ {
					fq, sq := fast.Queue(graph.EdgeID(eid)), slow.Queue(graph.EdgeID(eid))
					if fq.Len() != sq.Len() {
						t.Fatalf("%s seed %d step %d edge %d: queue len %d (fast) vs %d (slow)",
							pol.Name(), seed, step, eid, fq.Len(), sq.Len())
					}
					for i := 0; i < fq.Len(); i++ {
						if fq.At(i).ID != sq.At(i).ID {
							t.Fatalf("%s seed %d step %d edge %d pos %d: packet %v (fast) vs %v (slow)",
								pol.Name(), seed, step, eid, i, fq.At(i), sq.At(i))
						}
					}
				}
				verifyHeapInvariant(t, fast)
			}
			fast.CheckConservation()
			slow.CheckConservation()
			if fast.Stats().HeapRebuilds != fast.Stats().HeapCompactions {
				t.Errorf("%s seed %d: HeapRebuilds %d != HeapCompactions %d (rebuilds must count compactions only)",
					pol.Name(), seed, fast.Stats().HeapRebuilds, fast.Stats().HeapCompactions)
			}
			// A suffix reroute only changes RemainingHops, so only the
			// to-go policies ever see a key change — and so tombstones.
			// For the others the storm must stay tombstone-free.
			_, toGoFTG := pol.(policy.FTG)
			_, toGoNTG := pol.(policy.NTG)
			if st := fast.Stats(); toGoFTG || toGoNTG {
				if st.HeapSkips == 0 {
					t.Errorf("%s seed %d: reroute storm produced no tombstone skips; harness is not exercising the lazy path", pol.Name(), seed)
				}
			} else if st.HeapSkips != 0 || st.HeapCompactions != 0 {
				t.Errorf("%s seed %d: reroutes left %d skips / %d compactions though the selection key cannot change",
					pol.Name(), seed, st.HeapSkips, st.HeapCompactions)
			}
		}
	}
}

// TestKeyedTombstoneCompaction forces the amortized compaction path
// deterministically: rerouting the same packet repeatedly in a small
// buffer must trigger a compaction (tombstones > half the heap) and
// leave selection correct.
func TestKeyedTombstoneCompaction(t *testing.T) {
	g := graph.Line(6)
	e := New(g, policy.NTG{}, nil)
	var pkts []*packet.Packet
	for i := 0; i < 4; i++ {
		pkts = append(pkts, e.Seed(packet.Injection{Route: []graph.EdgeID{0, 1}}))
	}
	victim := pkts[0]
	// Flip the victim's remaining length repeatedly; every flip changes
	// the NTG key, stranding one tombstone per reroute.
	longSuffix := []graph.EdgeID{1, 2, 3, 4}
	for i := 0; i < 9; i++ {
		if i%2 == 0 {
			e.ReplaceRouteSuffix(victim, nil)
		} else {
			e.ReplaceRouteSuffix(victim, longSuffix)
		}
		verifyHeapInvariant(t, e)
	}
	if e.Stats().HeapCompactions == 0 {
		t.Fatalf("9 reroutes in a 4-packet buffer triggered no compaction (skips %d, heap len %d)",
			e.Stats().HeapSkips, len(e.heaps[0]))
	}
	// The victim ended truncated (route e1 only, 1 remaining hop), so
	// NTG must send it first despite all the churn.
	e.Step()
	if got := e.Absorbed(); got != 1 {
		t.Fatalf("absorbed %d after one step, want 1 (the truncated victim)", got)
	}
	verifyHeapInvariant(t, e)
}

// rerouteFromInject attempts the documented-illegal reroute from the
// inject substep.
type rerouteFromInject struct{}

func (rerouteFromInject) PreStep(*Engine) {}
func (rerouteFromInject) Inject(e *Engine) []packet.Injection {
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) {
		e.ReplaceRouteSuffix(p, nil)
	})
	return nil
}

// TestRerouteOutsidePreStepPanics pins the inPreStep guard: a reroute
// from Adversary.Inject would silently poison the tombstone
// bookkeeping, so the engine must refuse it loudly. Reroutes between
// steps (equivalent to the next PreStep) must stay legal.
func TestRerouteOutsidePreStepPanics(t *testing.T) {
	g := graph.Line(4)
	e := New(g, policy.NTG{}, rerouteFromInject{})
	e.Seed(packet.Injection{Route: []graph.EdgeID{0, 1, 2}})

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("reroute from the inject substep did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "PreStep") {
				t.Fatalf("panic %v does not name the PreStep restriction", r)
			}
		}()
		e.Step()
	}()

	// Between steps the engine is idle and a reroute is equivalent to
	// one at the next PreStep: must not panic.
	e2 := New(g, policy.NTG{}, nil)
	p := e2.Seed(packet.Injection{Route: []graph.EdgeID{0, 1, 2}})
	e2.Step()
	e2.ReplaceRouteSuffix(p, nil)
	e2.Step()
	if e2.Absorbed() != 1 {
		t.Fatalf("truncated packet not absorbed; absorbed = %d", e2.Absorbed())
	}
}
