package sim_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// burstEngine builds a small bounded line network under a burst script
// hot enough to overflow the buffers, for drop-accounting tests.
func burstEngine(pol policy.Policy, cap int, drop sim.DropPolicy) *sim.Engine {
	g := graph.Line(5)
	adv := adversary.NewBurstScript(adversary.BurstStream{
		Name: "hot", Start: 1, Period: 4, Burst: 6, Budget: -1,
		Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")},
	})
	return sim.NewWithConfig(g, pol, adv, sim.Config{BufferCap: cap, Drop: drop})
}

// roundTrip checkpoints e through the full wire format and restores
// onto fresh, failing the test on any stage error.
func roundTrip(t *testing.T, e, fresh *sim.Engine) {
	t.Helper()
	cp, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	data := cp.Encode()
	cp2, err := sim.DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if data2 := cp2.Encode(); !bytes.Equal(data, data2) {
		t.Fatal("Encode -> Decode -> Encode is not a fixed point")
	}
	if err := fresh.Restore(cp2); err != nil {
		t.Fatalf("Restore: %v", err)
	}
}

// TestCheckpointRoundTripUnit exercises the three structurally distinct
// engine shapes — unbounded FIFO, keyed NTG with live tombstones, and a
// bounded drop-ntg buffer with real drops — through a mid-run
// checkpoint split, requiring full execution equivalence.
func TestCheckpointRoundTripUnit(t *testing.T) {
	cases := []struct {
		name  string
		build func() *sim.Engine
	}{
		{"fifo-unbounded", func() *sim.Engine {
			g := graph.Ring(6)
			return sim.New(g, policy.FIFO{}, adversary.NewBurstScript(adversary.BurstStream{
				Name: "b", Start: 1, Period: 8, Burst: 3, Budget: -1,
				Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")},
			}))
		}},
		{"ntg-keyed", func() *sim.Engine {
			return burstEngine(policy.NTG{}, 0, nil)
		}},
		{"lis-droptail", func() *sim.Engine {
			return burstEngine(policy.LIS{}, 2, sim.DropTail{})
		}},
		{"ntg-dropntg", func() *sim.Engine {
			return burstEngine(policy.NTG{}, 2, sim.DropNTG{})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const total, k = 400, 157
			direct := tc.build()
			direct.Run(total)
			half := tc.build()
			half.Run(k)
			resumed := tc.build()
			roundTrip(t, half, resumed)
			resumed.Run(total - k)
			if err := adversary.SameExecution(direct, resumed); err != nil {
				t.Fatalf("resumed run diverges: %v", err)
			}
		})
	}
}

// TestCheckpointDropAccounting is the per-edge drop property test: at
// every checkpoint split of a dropping run, the restored engine's
// DropsAt sums must equal both Stats().Drops and Dropped(), and keep
// doing so as the run continues.
func TestCheckpointDropAccounting(t *testing.T) {
	for _, k := range []int64{1, 37, 100, 250, 399} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			half := burstEngine(policy.FIFO{}, 2, sim.DropTail{})
			half.Run(k)
			resumed := burstEngine(policy.FIFO{}, 2, sim.DropTail{})
			roundTrip(t, half, resumed)
			for _, stage := range []int64{0, 400 - k} {
				resumed.Run(stage)
				var sum int64
				for eid := 0; eid < resumed.Graph().NumEdges(); eid++ {
					sum += resumed.DropsAt(graph.EdgeID(eid))
				}
				if sum != resumed.Dropped() || sum != resumed.Stats().Drops {
					t.Fatalf("after +%d steps: per-edge drop sum %d, Dropped %d, Stats.Drops %d",
						stage, sum, resumed.Dropped(), resumed.Stats().Drops)
				}
			}
			if resumed.Dropped() == 0 {
				t.Fatal("workload never dropped; property vacuous")
			}
		})
	}
}

// TestCheckpointRecorderDownsampled runs a million steps with a small
// MaxSamples bound so the Recorder goes through several power-of-two
// downsampling rounds, splits at an interior step, and requires the
// resumed recorder's full state — samples, stride, factor, peaks — to
// match the uninterrupted run exactly.
func TestCheckpointRecorderDownsampled(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-step run")
	}
	build := func() (*sim.Engine, *sim.Recorder) {
		g := graph.Ring(4)
		e := sim.New(g, policy.FIFO{}, adversary.NewBurstScript(adversary.BurstStream{
			Name: "b", Start: 1, Period: 16, Burst: 2, Budget: -1,
			Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")},
		}))
		rec := sim.NewRecorder(3)
		rec.MaxSamples = 64
		e.AddObserver(rec)
		return e, rec
	}
	const total, k = 1_000_000, 333_333
	direct, directRec := build()
	direct.Run(total)

	half, halfRec := build()
	half.Run(k)
	cp, err := half.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	recState := halfRec.CheckpointState()

	resumed, resumedRec := build()
	if err := resumed.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if err := resumedRec.RestoreState(recState); err != nil {
		t.Fatal(err)
	}
	resumed.Run(total - k)

	if err := adversary.SameExecution(direct, resumed); err != nil {
		t.Fatalf("resumed run diverges: %v", err)
	}
	if ds, rs := directRec.CheckpointState(), resumedRec.CheckpointState(); !reflect.DeepEqual(ds, rs) {
		t.Fatalf("recorder state differs after 1e6 steps:\ndirect:  %+v\nresumed: %+v", ds, rs)
	}
	if directRec.EffectiveStride() == 3 {
		t.Fatal("run never downsampled; property vacuous")
	}
}

// TestCheckpointRejections covers the restore-side error paths: a
// checkpoint must not restore onto a mismatched or already-run engine,
// and corrupt documents must be rejected with positioned errors.
func TestCheckpointRejections(t *testing.T) {
	g := graph.Line(5)
	mkAdv := func() sim.Adversary {
		return adversary.NewBurstScript(adversary.BurstStream{
			Name: "b", Start: 1, Period: 4, Burst: 2, Budget: -1,
			Route: []graph.EdgeID{g.MustEdge("e1")},
		})
	}
	src := sim.New(g, policy.FIFO{}, mkAdv())
	src.Run(50)
	cp, err := src.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	reject := func(name string, target *sim.Engine, wantSub string) {
		t.Helper()
		err := target.Restore(cp)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %v, want substring %q", name, err, wantSub)
		}
	}
	ran := sim.New(g, policy.FIFO{}, mkAdv())
	ran.Run(1)
	reject("already-run target", ran, "must not have run")
	reject("policy mismatch", sim.New(g, policy.LIS{}, mkAdv()), "policy mismatch")
	reject("graph mismatch", sim.New(graph.Line(7), policy.FIFO{}, mkAdv()), "graph mismatch")
	reject("adversary mismatch", sim.New(g, policy.FIFO{}, sim.NopAdversary{}), `want "nop"`)
	bounded := sim.NewWithConfig(g, policy.FIFO{}, mkAdv(), sim.Config{BufferCap: 4, Drop: sim.DropTail{}})
	reject("buffer-cap mismatch", bounded, "buffer cap mismatch")

	// Seeded-but-not-run targets are legal: seeds are wiped.
	seeded := sim.New(g, policy.FIFO{}, mkAdv())
	seeded.Seed(packet.Injection{Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")}, Tag: "seed"})
	if err := seeded.Restore(cp); err != nil {
		t.Fatalf("seeded target refused: %v", err)
	}
	if err := adversary.SameExecution(src, seeded); err != nil {
		t.Fatalf("restore over seeds diverges: %v", err)
	}

	corrupt := []struct {
		name, doc, wantSub string
	}{
		{"bad version", `{"version": 9}`, "version"},
		{"trailing data", cpString(cp) + `{"x":1}`, "trailing"},
		{"unknown field", `{"version": 1, "bogus": true}`, "bogus"},
		{"negative counter", `{"version": 1, "num_nodes": 2, "num_edges": 1, "policy": "FIFO", "injected": -3}`, "negative"},
		{"drops mismatch", `{"version": 1, "num_nodes": 2, "num_edges": 1, "policy": "FIFO",
		  "now": 1, "started": true, "dropped": 2, "stats": {"steps": 1}}`, "drop"},
	}
	for _, tc := range corrupt {
		_, err := sim.DecodeCheckpoint([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if _, ok := err.(*sim.CheckpointError); !ok {
			t.Errorf("%s: error is %T, want *CheckpointError: %v", tc.name, err, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
}

func cpString(cp *sim.Checkpoint) string { return string(cp.Encode()) }

// TestCheckpointMidStepRefused: an engine inside a step's substeps (an
// injection hook fires mid-inject) must refuse to checkpoint rather
// than serialize a state no restore could make consistent. OnStep, by
// contrast, fires between steps, where checkpointing is legal.
func TestCheckpointMidStepRefused(t *testing.T) {
	g := graph.Line(3)
	adv := adversary.NewBurstScript(adversary.BurstStream{
		Name: "b", Start: 1, Period: 1, Burst: 1, Budget: -1,
		Route: []graph.EdgeID{g.MustEdge("e1")},
	})
	e := sim.New(g, policy.FIFO{}, adv)
	var midErr, stepErr error
	e.AddObserver(&injProbe{onInject: func(en *sim.Engine) {
		_, midErr = en.Checkpoint()
	}, onStep: func(en *sim.Engine) {
		_, stepErr = en.Checkpoint()
	}, e: e})
	e.Run(2)
	if midErr == nil || !strings.Contains(midErr.Error(), "mid-step") {
		t.Fatalf("mid-inject checkpoint error = %v, want mid-step refusal", midErr)
	}
	if stepErr != nil {
		t.Fatalf("between-steps checkpoint refused: %v", stepErr)
	}
}

type injProbe struct {
	e        *sim.Engine
	onInject func(*sim.Engine)
	onStep   func(*sim.Engine)
}

func (p *injProbe) OnStep(e *sim.Engine)               { p.onStep(e) }
func (p *injProbe) OnInject(t int64, _ *packet.Packet) { p.onInject(p.e) }

// TestCheckpointRandomWindowed round-trips the RandomWR adversary plus
// its WindowValidator: the restored run must match the direct run and
// both validators must agree, across several split points.
func TestCheckpointRandomWindowed(t *testing.T) {
	const total = 600
	build := func() (*sim.Engine, *adversary.RandomWR, *adversary.WindowValidator) {
		g := graph.Ring(8)
		w, rate := int64(40), rational.New(1, 2)
		adv := adversary.NewRandomWR(g, w, rate, 4, 99)
		wv := adversary.NewWindowValidator(w, rate)
		e := sim.New(g, policy.LIS{}, adv)
		e.AddObserver(wv)
		return e, adv, wv
	}
	direct, _, directWV := build()
	direct.Run(total)
	for _, k := range []int64{1, 299, 599} {
		half, _, halfWV := build()
		half.Run(k)
		cp, err := half.Checkpoint()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		us := halfWV.UsageState()
		resumed, _, resumedWV := build()
		if err := resumed.Restore(cp); err != nil {
			t.Fatalf("k=%d: restore: %v", k, err)
		}
		if err := resumedWV.RestoreUsage(us); err != nil {
			t.Fatalf("k=%d: restore usage: %v", k, err)
		}
		resumed.Run(total - k)
		if err := adversary.SameExecution(direct, resumed); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !reflect.DeepEqual(directWV.UsageState(), resumedWV.UsageState()) {
			t.Fatalf("k=%d: window usage diverged", k)
		}
		if err := resumedWV.Check(); err != nil {
			t.Fatalf("k=%d: restored run violates its own window bound: %v", k, err)
		}
	}
}

// TestCheckpointDeterministicEncoding: two checkpoints of identical
// runs must encode byte-identically (the format has no map iteration,
// timestamps or other nondeterminism), across random workloads.
func TestCheckpointDeterministicEncoding(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		steps := int64(100 + rng.Intn(400))
		build := func() *sim.Engine {
			return burstEngine(policy.NTG{}, 3, sim.DropNTG{})
		}
		a, b := build(), build()
		a.Run(steps)
		b.Run(steps)
		ca, errA := a.Checkpoint()
		cb, errB := b.Checkpoint()
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: %v / %v", seed, errA, errB)
		}
		if !bytes.Equal(ca.Encode(), cb.Encode()) {
			t.Fatalf("seed %d: identical runs encode differently", seed)
		}
	}
}
