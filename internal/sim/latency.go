package sim

import (
	"fmt"
	"math"
	"sort"

	"aqt/internal/packet"
)

// LatencyObserver collects end-to-end latency statistics: for every
// absorbed packet it records now − InjectedAt, via the engine's
// absorption hook (O(1) per packet).
type LatencyObserver struct {
	lats []int64
}

// OnStep implements Observer.
func (l *LatencyObserver) OnStep(*Engine) {}

// OnAbsorb implements AbsorptionObserver.
func (l *LatencyObserver) OnAbsorb(t int64, p *packet.Packet) {
	l.lats = append(l.lats, t-p.InjectedAt)
}

// AcceptLeap implements LeapObserver: idle windows absorb nothing, so
// they are trivially accountable; drain windows absorb packets whose
// individual latencies this observer must record, so it refuses them
// and the engine falls back to stepping.
func (l *LatencyObserver) AcceptLeap(kind LeapKind) bool { return kind == LeapIdle }

// OnLeap implements LeapObserver (idle windows carry no absorptions).
func (l *LatencyObserver) OnLeap(*Engine, LeapInfo) {}

// Count returns the number of recorded (absorbed) latencies.
func (l *LatencyObserver) Count() int { return len(l.lats) }

// Stats summarizes the recorded latencies.
type LatencyStats struct {
	Count          int
	Min, Max, Mean float64
	P50, P90, P99  int64
}

// Stats computes the summary (zero value when nothing was absorbed).
func (l *LatencyObserver) Stats() LatencyStats {
	if len(l.lats) == 0 {
		return LatencyStats{}
	}
	s := append([]int64{}, l.lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum int64
	for _, v := range s {
		sum += v
	}
	// Nearest-rank (ceil) indexing: truncating p*(n-1) biases every
	// percentile low (P50 of two samples would report the minimum).
	// The epsilon absorbs float error like 0.9*10 = 9.000000000000002,
	// which would otherwise round a whole rank up.
	pct := func(p float64) int64 {
		idx := int(math.Ceil(p*float64(len(s)-1) - 1e-9))
		if idx > len(s)-1 {
			idx = len(s) - 1
		}
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	}
	return LatencyStats{
		Count: len(s),
		Min:   float64(s[0]),
		Max:   float64(s[len(s)-1]),
		Mean:  float64(sum) / float64(len(s)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
	}
}

// CheckpointState extracts the observed per-packet latencies (copied,
// in absorption order).
func (l *LatencyObserver) CheckpointState() []int64 {
	return append([]int64(nil), l.lats...)
}

// RestoreState overwrites the observer with a previously extracted
// latency series.
func (l *LatencyObserver) RestoreState(lats []int64) {
	l.lats = append(l.lats[:0], lats...)
}

// String renders the stats.
func (s LatencyStats) String() string {
	if s.Count == 0 {
		return "latency: no absorbed packets"
	}
	return fmt.Sprintf("latency over %d packets: mean %.1f, p50 %d, p90 %d, p99 %d, max %.0f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}
