// Fuzz harness for keyed-heap / buffer agreement under the tombstone
// scheme: a byte string drives an arbitrary interleaving of steps,
// injections and reroutes on a Line graph, executed simultaneously on
// the keyed fast path and on the brute-force Select reference. Every
// step the two executions must agree packet-by-packet, and the fast
// engine's heap must satisfy the lazy-deletion invariant.
package sim

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
)

// feeder is an adversary fed explicitly by the fuzz driver: it injects
// whatever was queued since the last step.
type feeder struct {
	pending []packet.Injection
}

func (*feeder) PreStep(*Engine) {}
func (f *feeder) Inject(*Engine) []packet.Injection {
	out := f.pending
	f.pending = nil
	return out
}

// nthQueued returns the i-th packet in ForEachQueued order, or nil.
func nthQueued(e *Engine, i int) *packet.Packet {
	var found *packet.Packet
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) {
		if i == 0 && found == nil {
			found = p
		}
		i--
	})
	return found
}

func fuzzCompare(t *testing.T, fast, slow *Engine, step int) {
	t.Helper()
	g := fast.Graph()
	if fast.Absorbed() != slow.Absorbed() {
		t.Fatalf("step %d: absorbed %d (fast) vs %d (slow)", step, fast.Absorbed(), slow.Absorbed())
	}
	for eid := 0; eid < g.NumEdges(); eid++ {
		fq, sq := fast.Queue(graph.EdgeID(eid)), slow.Queue(graph.EdgeID(eid))
		if fq.Len() != sq.Len() {
			t.Fatalf("step %d edge %d: queue len %d (fast) vs %d (slow)", step, eid, fq.Len(), sq.Len())
		}
		for i := 0; i < fq.Len(); i++ {
			if fq.At(i).ID != sq.At(i).ID {
				t.Fatalf("step %d edge %d pos %d: packet %v (fast) vs %v (slow)",
					step, eid, i, fq.At(i), sq.At(i))
			}
		}
	}
	verifyHeapInvariant(t, fast)
}

func FuzzKeyedHeapAgreement(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0})
	f.Add([]byte{1, 1, 1, 0, 2, 2, 0, 3, 0, 0})
	f.Add([]byte{0x45, 0x12, 0x00, 0xfe, 0x03, 0x27, 0x00, 0x81, 0x00})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		const nEdges = 6
		g := graph.Line(nEdges)
		fastFeed, slowFeed := &feeder{}, &feeder{}
		fast := New(g, policy.NTG{}, fastFeed)
		slow := New(g, slowWrap{policy.NTG{}}, slowFeed)
		step := 0
		for _, b := range ops {
			arg := int(b >> 2)
			switch b & 3 {
			case 0: // step both engines
				fast.Step()
				slow.Step()
				step++
				fuzzCompare(t, fast, slow, step)
			case 1: // queue an identical injection on both
				start := arg % nEdges
				end := start + (arg>>3)%(nEdges-start)
				route := make([]graph.EdgeID, 0, end-start+1)
				for eid := start; eid <= end; eid++ {
					route = append(route, graph.EdgeID(eid))
				}
				fastFeed.pending = append(fastFeed.pending, packet.Injection{Route: route})
				slowFeed.pending = append(slowFeed.pending, packet.Injection{Route: route})
			case 2: // truncate the arg-th queued packet (between steps: legal)
				fp, sp := nthQueued(fast, arg), nthQueued(slow, arg)
				if fp == nil {
					continue
				}
				fast.ReplaceRouteSuffix(fp, nil)
				slow.ReplaceRouteSuffix(sp, nil)
			case 3: // extend the arg-th queued packet down the line
				fp, sp := nthQueued(fast, arg), nthQueued(slow, arg)
				if fp == nil {
					continue
				}
				cur := int(fp.CurrentEdge())
				end := cur + 1 + (arg>>2)%(nEdges-cur)
				if end > nEdges-1 {
					end = nEdges - 1
				}
				suffix := make([]graph.EdgeID, 0, end-cur)
				for eid := cur + 1; eid <= end; eid++ {
					suffix = append(suffix, graph.EdgeID(eid))
				}
				fast.ReplaceRouteSuffix(fp, suffix)
				slow.ReplaceRouteSuffix(sp, suffix)
			}
		}
		// Drain to empty so absorption totals are final, then check
		// conservation on both executions.
		for i := 0; i < 64 && fast.TotalQueued() > 0; i++ {
			fast.Step()
			slow.Step()
			step++
			fuzzCompare(t, fast, slow, step)
		}
		fast.CheckConservation()
		slow.CheckConservation()
	})
}
