// Package core implements the paper's contribution: the parameter
// machinery of section 3.2 and the appendix, the adversary
// constructions of Lemma 3.6 (gadget pump), Lemma 3.15 (bootstrap),
// Lemma 3.16 (stitch), the chain driver of Lemma 3.13, and the
// Theorem 3.17 iterative instability adversary, plus the claim-level
// probes of Claims 3.7–3.12.
//
// All parameter arithmetic is exact: powers rⁿ blow past int64
// rationals, so this package computes with math/big.Rat internally and
// hands the simulator small integers and low-denominator rates.
package core

import (
	"fmt"
	"math"
	"math/big"

	"aqt/internal/rational"
)

// Params carries the solved construction parameters for a given ε.
type Params struct {
	// Eps is ε > 0; the adversary rate is R = 1/2 + ε.
	Eps rational.Rat
	// R = 1/2 + ε, the injection rate of every stream.
	R rational.Rat
	// N is the gadget path length n: the smallest integer satisfying
	// the proof's requirements (see Solve).
	N int
	// S0 is the minimum queue size for which the pump guarantees
	// growth: max(2n, ceil(n / (2(R_n − R_{n+1})))).
	S0 int64
}

// bigRat converts a rational.Rat to *big.Rat.
func bigRat(r rational.Rat) *big.Rat {
	return new(big.Rat).SetFrac64(r.Num(), r.Den())
}

// ratFromBig converts a *big.Rat to rational.Rat; it panics if the
// value does not fit (construction parameters always do).
func ratFromBig(r *big.Rat) rational.Rat {
	if !r.Num().IsInt64() || !r.Denom().IsInt64() {
		panic(fmt.Sprintf("core: rational overflow: %s", r.String()))
	}
	return rational.New(r.Num().Int64(), r.Denom().Int64())
}

// floorBig returns floor(r) as int64.
func floorBig(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && new(big.Int).Rem(r.Num(), r.Denom()).Sign() != 0 {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		panic("core: floor overflow")
	}
	return q.Int64()
}

// ceilBig returns ceil(r) as int64.
func ceilBig(r *big.Rat) int64 {
	f := floorBig(r)
	if new(big.Rat).SetInt64(f).Cmp(r) < 0 {
		f++
	}
	return f
}

// Solve computes the construction parameters for ε. Following the
// choice in Lemma 3.6 (and checking the exact inequalities the proof
// actually uses rather than their logarithmic upper bounds), N is the
// smallest n >= 2 with
//
//	rⁿ < 1/2   and   4·rⁿ < ε,
//
// and S0 = max(2n, ceil(n / (2·(R_n − R_{n+1})))), where
// R_i = (1−r)/(1−rⁱ). Solve panics unless 0 < ε < 1/2.
func Solve(eps rational.Rat) Params {
	half := rational.New(1, 2)
	if eps.Sign() <= 0 || !eps.Less(half) {
		panic("core: need 0 < eps < 1/2")
	}
	r := half.Add(eps)
	rb := bigRat(r)
	eb := bigRat(eps)

	// Smallest n with rⁿ < 1/2 and 4 rⁿ < ε.
	n := 2
	pow := new(big.Rat).Mul(rb, rb) // r²
	halfB := big.NewRat(1, 2)
	four := new(big.Rat).SetInt64(4)
	for {
		cond1 := pow.Cmp(halfB) < 0
		cond2 := new(big.Rat).Mul(four, pow).Cmp(eb) < 0
		if cond1 && cond2 {
			break
		}
		n++
		pow.Mul(pow, rb)
		if n > 4096 {
			panic("core: parameter search diverged")
		}
	}

	rn := riBig(rb, n)
	rn1 := riBig(rb, n+1)
	gap := new(big.Rat).Sub(rn, rn1) // R_n − R_{n+1} > 0
	s0 := ceilBig(new(big.Rat).Quo(
		new(big.Rat).SetInt64(int64(n)),
		new(big.Rat).Mul(big.NewRat(2, 1), gap),
	))
	if min := int64(2 * n); s0 < min {
		s0 = min
	}
	return Params{Eps: eps, R: r, N: n, S0: s0}
}

// riBig returns R_i = (1−r)/(1−rⁱ) as a big.Rat.
func riBig(r *big.Rat, i int) *big.Rat {
	one := big.NewRat(1, 1)
	ri := new(big.Rat).SetInt64(1)
	for k := 0; k < i; k++ {
		ri.Mul(ri, r)
	}
	num := new(big.Rat).Sub(one, r)
	den := new(big.Rat).Sub(one, ri)
	return num.Quo(num, den)
}

// Ri returns R_i = (1−r)/(1−rⁱ) (equation above (3.1)).
func (p Params) Ri(i int) *big.Rat { return riBig(bigRat(p.R), i) }

// Ti returns t_i = floor(2S / (r + R_i)), the duration of the i-th
// short-packet stream in the Lemma 3.6 adversary.
func (p Params) Ti(s int64, i int) int64 {
	den := new(big.Rat).Add(bigRat(p.R), p.Ri(i))
	return floorBig(new(big.Rat).Quo(new(big.Rat).SetInt64(2*s), den))
}

// SPrime returns S′ = floor(2S(1 − R_n)), the pumped queue size of
// Lemma 3.6.
func (p Params) SPrime(s int64) int64 {
	one := big.NewRat(1, 1)
	v := new(big.Rat).Sub(one, p.Ri(p.N))
	v.Mul(v, new(big.Rat).SetInt64(2*s))
	return floorBig(v)
}

// X returns X = S′ − floor(rS) + n, the size of the part-(4) stream of
// the Lemma 3.6 adversary. Claim 3.7 guarantees 0 < X <= rS for
// S >= S0.
func (p Params) X(s int64) int64 {
	return p.SPrime(s) - p.R.FloorMulInt(s) + int64(p.N)
}

// GrowthLowerBound reports whether S′ >= S(1+ε) holds exactly for the
// given S — the pump guarantee of Lemma 3.6.
func (p Params) GrowthLowerBound(s int64) bool {
	sp := new(big.Rat).SetInt64(p.SPrime(s))
	want := new(big.Rat).Mul(
		new(big.Rat).SetInt64(s),
		new(big.Rat).Add(big.NewRat(1, 1), bigRat(p.Eps)),
	)
	return sp.Cmp(want) >= 0
}

// MinM returns the smallest chain length M with r³(1+ε)^M / 4 >
// margin (Theorem 3.17 uses margin = 1; experiments pass a larger
// margin to absorb discretization losses).
func (p Params) MinM(margin rational.Rat) int {
	if margin.Sign() <= 0 {
		panic("core: margin must be positive")
	}
	r := bigRat(p.R)
	r3 := new(big.Rat).Mul(r, new(big.Rat).Mul(r, r))
	onePlusEps := new(big.Rat).Add(big.NewRat(1, 1), bigRat(p.Eps))
	acc := new(big.Rat).Quo(r3, new(big.Rat).SetInt64(4))
	target := bigRat(margin)
	m := 0
	for acc.Cmp(target) <= 0 {
		acc.Mul(acc, onePlusEps)
		m++
		if m > 1_000_000 {
			panic("core: MinM diverged")
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// ParamsFor builds Params for an explicit rate and gadget depth,
// bypassing the minimal-n search. Experiments use it to study how the
// achievable instability rate depends on the pipeline depth n (the
// conceptual contrast with the constant-size networks of prior work):
// the pump grows iff R_n < 1/2, i.e. iff rⁿ < 2r − 1. Eps is set to
// r − 1/2 (possibly zero or negative; such parameters never pump).
// It panics unless 0 < r < 1 and n >= 1.
func ParamsFor(r rational.Rat, n int) Params {
	if r.Sign() <= 0 || !r.Less(rational.FromInt(1)) {
		panic("core: need 0 < r < 1")
	}
	if n < 1 {
		panic("core: need n >= 1")
	}
	rb := bigRat(r)
	rn := riBig(rb, n)
	rn1 := riBig(rb, n+1)
	gap := new(big.Rat).Sub(rn, rn1)
	s0 := ceilBig(new(big.Rat).Quo(
		new(big.Rat).SetInt64(int64(n)),
		new(big.Rat).Mul(big.NewRat(2, 1), gap),
	))
	if min := int64(2 * n); s0 < min {
		s0 = min
	}
	return Params{Eps: r.Sub(rational.New(1, 2)), R: r, N: n, S0: s0}
}

// PumpGrowth returns the exact per-pump factor 2(1 − R_n) by which
// Lemma 3.6 multiplies S. The lemma only claims S′ ≥ S(1+ε), but the
// construction actually achieves 2(1−R_n) ≥ 1+ε, which matters when
// sizing chains for experiments.
func (p Params) PumpGrowth() *big.Rat {
	one := big.NewRat(1, 1)
	v := new(big.Rat).Sub(one, p.Ri(p.N))
	return v.Mul(v, big.NewRat(2, 1))
}

// MinMEmpirical returns the smallest chain length M whose full cycle —
// bootstrap (×g/2 where g = PumpGrowth), M−1 pumps (×g each), drain
// (×~1) and stitch (×r³) — multiplies S1 by more than margin:
//
//	(g/2) · g^(M−1) · r³ > margin.
//
// This is the chain length the experiments use; MinM keeps the
// paper's (1+ε)-based choice for the parameter tables.
func (p Params) MinMEmpirical(margin rational.Rat) int {
	if margin.Sign() <= 0 {
		panic("core: margin must be positive")
	}
	r := bigRat(p.R)
	r3 := new(big.Rat).Mul(r, new(big.Rat).Mul(r, r))
	g := p.PumpGrowth()
	acc := new(big.Rat).Quo(g, big.NewRat(2, 1))
	acc.Mul(acc, r3)
	target := bigRat(margin)
	m := 1
	for acc.Cmp(target) <= 0 {
		acc.Mul(acc, g)
		m++
		if m > 1_000_000 {
			panic("core: MinMEmpirical diverged")
		}
	}
	if m < 2 {
		m = 2
	}
	return m
}

// AsymptoticN returns the appendix's closed-form choice
// n = (log ε − 2)/log r (valid for ε < 1/2), for comparison against
// the exact N in the asymptotics experiment. Uses float64 logs.
func AsymptoticN(eps float64) float64 {
	r := 0.5 + eps
	return (math.Log2(eps) - 2) / math.Log2(r)
}

// AsymptoticS0 returns the appendix's S0 ≈ n/(2(R_n − R_{n+1})) upper
// bound estimate 4n/ε (equation (5.10)), for the asymptotics table.
func AsymptoticS0(eps float64) float64 {
	return 4 * AsymptoticN(eps) / eps
}

// String renders the parameters.
func (p Params) String() string {
	return fmt.Sprintf("Params{eps=%v r=%v n=%d S0=%d}", p.Eps, p.R, p.N, p.S0)
}
