package core

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/sim"
)

// BootstrapReport records one application of the Lemma 3.15 adversary.
type BootstrapReport struct {
	K   int   // gadget index (1 in the theorem)
	Tau int64 // paper time 0

	// QIn is the measured ingress queue at entry (the paper's 2S).
	QIn int64
	// S is QIn/2, the S of the lemma statement.
	S int64
	// SPredicted is S' = floor(2S(1−R_n)).
	SPredicted int64
	// SMeasured is min(e-buffer total, ingress queue) at exit.
	SMeasured int64
	// Exit is the invariant report on the gadget at exit.
	Exit gadget.InvariantReport
}

// GrowthFactor returns SMeasured / S.
func (r BootstrapReport) GrowthFactor() float64 {
	if r.S == 0 {
		return 0
	}
	return float64(r.SMeasured) / float64(r.S)
}

// String summarizes the report.
func (r BootstrapReport) String() string {
	return fmt.Sprintf("bootstrap g%d: 2S=%d → S'=%d (predicted %d, ×%.4f)",
		r.K, r.QIn, r.SMeasured, r.SPredicted, r.GrowthFactor())
}

// BootstrapPhase builds the Lemma 3.15 adversary: starting from 2S
// packets stored in the ingress edge of gadget k, all with remaining
// routes of length 1, it establishes C(S′, Fₙ) on gadget k by time
// τ + 2S + n, with S′ ≥ S(1+ε) for S > S0.
func BootstrapPhase(p Params, c *gadget.Chain, k int, rr *adversary.Rerouter, rep *BootstrapReport) adversary.Phase {
	if k < 1 || k > c.M {
		panic("core: bootstrap gadget index out of range")
	}
	if c.N != p.N {
		panic("core: chain was built with a different n than Params")
	}
	if rep == nil {
		rep = &BootstrapReport{}
	}
	var end int64

	enter := func(e *sim.Engine) sim.Adversary {
		tau := e.Now() - 1
		// Part (1): extend the stored packets' routes from a to
		// a, e_1..e_n, a'. Only packets whose remaining route is
		// exactly the ingress edge qualify (the lemma's precondition);
		// under non-FIFO policies other packets may sit here and must
		// be left alone.
		ext := append(append([]graph.EdgeID{}, c.EPath(k)...), c.Egress(k))
		var old []*packet.Packet
		e.Queue(c.Ingress(k)).Each(func(pk *packet.Packet) bool {
			if pk.RemainingHops() == 1 {
				old = append(old, pk)
			}
			return true
		})
		q2s := int64(len(old))
		s := q2s / 2
		rep.K, rep.Tau, rep.QIn, rep.S = k, tau, q2s, s
		sPrime := p.SPrime(s)
		rep.SPredicted = sPrime
		n := int64(p.N)
		end = tau + 2*s + n
		extendAll(e, rr, old, ext)
		for _, pk := range old {
			pk.Tag = TagOld
		}

		script := adversary.NewScript()
		// Part (2): short packets on e_i at rate r during [i, t_i].
		for i := 1; i <= p.N; i++ {
			ti := p.Ti(s, i)
			dur := ti - int64(i) + 1
			if dur < 0 {
				dur = 0
			}
			script.AddStream(adversary.Stream{
				Name:   fmt.Sprintf("boot%d.short%d", k, i),
				Start:  tau + int64(i),
				Rate:   p.R,
				Budget: p.R.FloorMulInt(dur),
				Route:  []graph.EdgeID{c.EPath(k)[i-1]},
				Tag:    TagShort,
			})
		}
		// Part (3): S'+n packets at rate r in the first (S'+n)/r steps
		// of [1, 2S]; the first n have the single-edge route a, the
		// rest a, f_1..f_n, a'.
		aOnly := []graph.EdgeID{c.Ingress(k)}
		long := c.LongRoute(k)
		script.AddStream(adversary.Stream{
			Name:   fmt.Sprintf("boot%d.long", k),
			Start:  tau + 1,
			Rate:   p.R,
			Budget: sPrime + n,
			RouteFn: func(j int64) []graph.EdgeID {
				if j < n {
					return aOnly
				}
				return long
			},
			Tag: TagLong,
		})
		return script
	}

	done := func(e *sim.Engine) bool {
		if e.Now() <= end {
			return false
		}
		rep.Exit = c.CheckInvariant(e, k, true)
		rep.SMeasured = int64(rep.Exit.S())
		return true
	}

	return adversary.Phase{
		Name:  fmt.Sprintf("lemma3.15 bootstrap g%d", k),
		Enter: enter,
		Done:  done,
		Until: &end,
	}
}
