package core

import (
	"testing"

	"aqt/internal/rational"
)

func TestTheorem317QueueGrowsEveryCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cycle instability run")
	}
	ins := NewInstability(testEps, InstabilityOptions{Validate: true})
	t.Logf("params: %s, M=%d, S*=%d, graph: %d nodes %d edges",
		ins.P, ins.M, ins.SStar, ins.Chain.G.NumNodes(), ins.Chain.G.NumEdges())

	const cycles = 3
	done := ins.RunCycles(cycles)
	for _, rec := range ins.Cycles {
		t.Logf("%s", rec)
	}
	if done != cycles {
		t.Fatalf("completed %d/%d cycles", done, cycles)
	}
	if !ins.Unstable() {
		t.Fatal("queue did not grow in some cycle")
	}
	// Growth must compound: the last S4 should exceed S* by the product
	// of per-cycle factors (at least ~1.2× per cycle in practice).
	last := ins.Cycles[len(ins.Cycles)-1]
	if last.S4 <= ins.SStar {
		t.Errorf("final S4 = %d did not exceed S* = %d", last.S4, ins.SStar)
	}
	ins.Engine.CheckConservation()
}

func TestInstabilityRequiresLargeSStar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("S* <= 2S0 did not panic")
		}
	}()
	p := Solve(testEps)
	NewInstability(testEps, InstabilityOptions{SStar: 2 * p.S0})
}

func TestInstabilityDefaultOptions(t *testing.T) {
	ins := NewInstability(rational.New(1, 4), InstabilityOptions{})
	if ins.SStar != 4*ins.P.S0 {
		t.Errorf("default S* = %d, want %d", ins.SStar, 4*ins.P.S0)
	}
	if ins.M < 2 {
		t.Errorf("M = %d", ins.M)
	}
	if ins.Rerouter != nil {
		t.Error("rerouter should be nil without Validate")
	}
	if ins.Unstable() {
		t.Error("Unstable must be false before any cycle")
	}
	if got := ins.Engine.QueueLen(ins.Chain.Ingress(1)); int64(got) != ins.SStar {
		t.Errorf("seeded ingress queue = %d", got)
	}
}
