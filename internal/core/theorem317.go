package core

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// CycleRecord traces one iteration of the Theorem 3.17 adversary.
type CycleRecord struct {
	Cycle int
	// S1 is the ingress queue at cycle start (paper's S1).
	S1 int64
	// S2 is the invariant size after the bootstrap (Lemma 3.15).
	S2 int64
	// S3 is the egress queue after the chain pump and drain.
	S3 int64
	// S4 is the fresh ingress queue after the stitch (next cycle's S1).
	S4 int64
	// Steps is the number of simulator steps the cycle consumed.
	Steps int64
	// Pumps holds the per-gadget pump reports.
	Pumps []PumpReport
	// Bootstrap, Drain and Stitch hold the phase reports.
	Bootstrap BootstrapReport
	Drain     DrainReport
	Stitch    StitchReport
}

// Growth returns S4/S1, the cycle's net blow-up factor; instability
// requires it to exceed 1.
func (c CycleRecord) Growth() float64 {
	if c.S1 == 0 {
		return 0
	}
	return float64(c.S4) / float64(c.S1)
}

// String summarizes the cycle.
func (c CycleRecord) String() string {
	return fmt.Sprintf("cycle %d: S1=%d S2=%d S3=%d S4=%d (×%.4f, %d steps)",
		c.Cycle, c.S1, c.S2, c.S3, c.S4, c.Growth(), c.Steps)
}

// Instability drives the Theorem 3.17 construction: FIFO on the graph
// G_ε (a daisy chain of M gadgets closed by the stitch edge e0), with
// the iterative adversary
//
//	bootstrap (L3.15) → pump ×(M−1) (L3.6/L3.13) → drain → stitch (L3.16)
//
// whose queue S1 grows by a constant factor every cycle.
type Instability struct {
	P     Params
	Chain *gadget.Chain
	M     int

	// Engine is the live engine (FIFO policy).
	Engine *sim.Engine
	// Rerouter validates the Lemma 3.3 extensions when non-nil.
	Rerouter *adversary.Rerouter

	// SStar is the initial ingress queue (> 2·S0).
	SStar int64
	// Cycles holds one record per completed cycle.
	Cycles []CycleRecord

	maxStepsPerCycle int64
}

// InstabilityOptions tunes NewInstability.
type InstabilityOptions struct {
	// MarginM scales the chain length: M = MinM(MarginM). The theorem
	// needs r³(1+ε)^M/4 > 1; discretization losses make a margin > 1
	// advisable. Zero means 4 (a ~4× per-cycle target).
	MarginM rational.Rat
	// SStar is the initial queue (paper: > 2·S0). Zero means 4·S0.
	SStar int64
	// Validate attaches a Rerouter (Lemma 3.3 checks) plus tags.
	Validate bool
	// ExtraM adds gadgets on top of MinM.
	ExtraM int
	// Observers are attached to the engine before seeding (validators
	// must see the seeds).
	Observers []sim.Observer
	// Params overrides the Solve(eps) parameters (e.g. a ParamsFor
	// point with an explicit depth). When set, eps is ignored.
	Params *Params
}

// NewInstability builds the graph G_ε, the FIFO engine and the initial
// configuration for the given ε.
func NewInstability(eps rational.Rat, opt InstabilityOptions) *Instability {
	var p Params
	if opt.Params != nil {
		p = *opt.Params
	} else {
		p = Solve(eps)
	}
	margin := opt.MarginM
	if margin.IsZero() {
		margin = rational.FromInt(2)
	}
	m := p.MinMEmpirical(margin) + opt.ExtraM
	if m < 2 {
		m = 2
	}
	chain := gadget.NewChain(p.N, m, true)
	eng := sim.New(chain.G, policy.FIFO{}, nil)
	ins := &Instability{P: p, Chain: chain, M: m, Engine: eng}
	if opt.Validate {
		ins.Rerouter = adversary.NewRerouter(p.R)
		eng.AddObserver(ins.Rerouter)
	}
	for _, ob := range opt.Observers {
		eng.AddObserver(ob)
	}
	sStar := opt.SStar
	if sStar == 0 {
		sStar = 4 * p.S0
	}
	if sStar <= 2*p.S0 {
		panic(fmt.Sprintf("core: S* must exceed 2·S0 = %d", 2*p.S0))
	}
	ins.SStar = sStar
	// Initial configuration: S* packets at the ingress of F(1), paths
	// of length 1.
	eng.SeedN(int(sStar), packet.Injection{
		Route: []graph.EdgeID{chain.Ingress(1)},
		Tag:   TagFresh,
	})
	// Generous per-cycle step cap: bootstrap+pumps+drain+stitch is
	// O(S·(1+ε)^M / ε); 64 × S* × M covers every configuration used in
	// tests and benches.
	ins.maxStepsPerCycle = 64 * sStar * int64(m+2)
	return ins
}

// RunCycle executes one full adversary cycle and appends its record.
// It returns the record and reports whether the cycle completed within
// the step cap.
func (ins *Instability) RunCycle() (CycleRecord, bool) {
	rec := CycleRecord{Cycle: len(ins.Cycles) + 1}
	rec.S1 = int64(ins.Engine.QueueLen(ins.Chain.Ingress(1)))
	start := ins.Engine.Now()

	phases := make([]adversary.Phase, 0, ins.M+2)
	rec.Pumps = make([]PumpReport, ins.M-1)
	phases = append(phases, BootstrapPhase(ins.P, ins.Chain, 1, ins.Rerouter, &rec.Bootstrap))
	for k := 1; k < ins.M; k++ {
		phases = append(phases, PumpPhase(ins.P, ins.Chain, k, ins.Rerouter, &rec.Pumps[k-1]))
	}
	phases = append(phases, DrainPhase(ins.P, ins.Chain, &rec.Drain))
	phases = append(phases, StitchPhase(ins.P, ins.Chain, &rec.Stitch))
	seq := adversary.NewSequence(phases...)
	ins.Engine.SetAdversary(seq)

	// RunLeapUntil batch-advances the cycle's static stretches (most of
	// the drain, plus the silent tails of the pump and stitch scripts);
	// the Sequence predicate is leap-safe because every lemma phase
	// reports its Done horizon via Phase.Until. With observers attached
	// that refuse leaping (opt.Observers may be anything) the engine
	// steps as before, so the execution is identical either way.
	ok := ins.Engine.RunLeapUntil(func(*sim.Engine) bool { return seq.Finished() }, ins.maxStepsPerCycle)
	ins.Engine.SetAdversary(nil)

	rec.S2 = rec.Bootstrap.SMeasured
	rec.S3 = rec.Drain.QEgress
	rec.S4 = rec.Stitch.Fresh
	rec.Steps = ins.Engine.Now() - start
	ins.Cycles = append(ins.Cycles, rec)
	return rec, ok
}

// RunCycles executes up to n cycles, stopping early if a cycle fails
// to complete or stops growing. It returns the number of completed
// cycles.
func (ins *Instability) RunCycles(n int) int {
	for i := 0; i < n; i++ {
		rec, ok := ins.RunCycle()
		if !ok || rec.S4 <= 0 {
			return i
		}
	}
	return n
}

// Unstable reports whether every completed cycle grew the queue
// (S4 > S1), the executable content of Theorem 3.17.
func (ins *Instability) Unstable() bool {
	if len(ins.Cycles) == 0 {
		return false
	}
	for _, c := range ins.Cycles {
		if c.S4 <= c.S1 {
			return false
		}
	}
	return true
}
