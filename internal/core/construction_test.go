package core

import (
	"testing"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// eps used by most construction tests: ε = 1/5 → r = 0.7, n = 9,
// S0 ≈ 1156.
var testEps = rational.New(1, 5)

func runSequence(t *testing.T, e *sim.Engine, seq *adversary.Sequence, maxSteps int64) {
	t.Helper()
	e.SetAdversary(seq)
	if !e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, maxSteps) {
		t.Fatalf("sequence did not finish within %d steps (stuck in %s)", maxSteps, seq.PhaseName())
	}
	e.SetAdversary(nil)
}

func TestLemma315Bootstrap(t *testing.T) {
	p := Solve(testEps)
	c := gadget.NewChain(p.N, 1, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	s := 2 * p.S0 // the lemma's S; ingress holds 2S
	e.SeedN(int(2*s), packet.Injection{Route: []graph.EdgeID{c.Ingress(1)}, Tag: TagFresh})

	var rep BootstrapReport
	rr := adversary.NewRerouter(p.R)
	e.AddObserver(rr)
	seq := adversary.NewSequence(BootstrapPhase(p, c, 1, rr, &rep))
	runSequence(t, e, seq, 16*s)

	if rep.QIn != 2*s || rep.S != s {
		t.Fatalf("entry measurement: %+v", rep)
	}
	t.Logf("bootstrap: %s (exit inv: eTotal=%d aQueue=%d emptyE=%v badE=%d badA=%d strays=%d)",
		rep.String(), rep.Exit.ETotal, rep.Exit.AQueue, rep.Exit.EmptyE,
		rep.Exit.BadERoutes, rep.Exit.BadARoutes, rep.Exit.Strays)

	// Lemma 3.15: S' >= S(1+ε). Allow 2% discretization slack on the
	// measured value relative to the exact prediction.
	if rep.SMeasured < rep.SPredicted*98/100 {
		t.Errorf("S' measured %d << predicted %d", rep.SMeasured, rep.SPredicted)
	}
	growth := float64(rep.SMeasured) / float64(rep.S)
	if growth < 1.2 {
		t.Errorf("growth %.4f < 1+ε = 1.2", growth)
	}
	// Invariant C(S', F): every e-buffer nonempty, no strays.
	if len(rep.Exit.EmptyE) > 0 || rep.Exit.Strays > 0 {
		t.Errorf("invariant violated: %v", rep.Exit.Err(int(s)))
	}
	e.CheckConservation()
}

func TestLemma36Pump(t *testing.T) {
	p := Solve(testEps)
	c := gadget.NewChain(p.N, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	s := 2 * p.S0
	c.SeedInvariant(e, 1, int(s))

	var rep PumpReport
	rr := adversary.NewRerouter(p.R)
	e.AddObserver(rr)
	seq := adversary.NewSequence(PumpPhase(p, c, 1, rr, &rep))
	runSequence(t, e, seq, 16*s)

	t.Logf("pump: %s (exit inv: eTotal=%d aQueue=%d emptyE=%v badE=%d badA=%d strays=%d; left=%d)",
		rep.String(), rep.Exit.ETotal, rep.Exit.AQueue, rep.Exit.EmptyE,
		rep.Exit.BadERoutes, rep.Exit.BadARoutes, rep.Exit.Strays, rep.LeftInSource)

	if rep.SIn != s {
		t.Fatalf("entry S = %d, want %d", rep.SIn, s)
	}
	if rep.SMeasured < rep.SPredicted*98/100 {
		t.Errorf("S' measured %d << predicted %d", rep.SMeasured, rep.SPredicted)
	}
	if g := rep.GrowthFactor(); g < 1.2 {
		t.Errorf("pump growth %.4f < 1+ε", g)
	}
	// Lemma 3.6 also asserts F(1) is empty at exit.
	if rep.LeftInSource > 0 {
		t.Errorf("source gadget still holds %d packets", rep.LeftInSource)
	}
	// Discretization leaves up to n−1 of the long packets still in the
	// target's f-path at the 2S+n boundary (the egress serves them for
	// the last n−1 steps once the 2S old packets are through); they
	// merge into the next pump's old population.
	if len(rep.Exit.EmptyE) > 0 {
		t.Errorf("invariant violated on target: %v", rep.Exit.Err(int(s)))
	}
	if rep.Exit.Strays >= p.N {
		t.Errorf("strays %d >= n = %d", rep.Exit.Strays, p.N)
	}
	e.CheckConservation()
}

func TestLemma316Stitch(t *testing.T) {
	p := Solve(testEps)
	c := gadget.NewChain(p.N, 2, true)
	e := sim.New(c.G, policy.FIFO{}, nil)
	s := int64(3000)
	// S old packets at the chain egress with route length 1.
	e.SeedN(int(s), packet.Injection{Route: []graph.EdgeID{c.Egress(2)}, Tag: TagOld})

	var rep StitchReport
	seq := adversary.NewSequence(StitchPhase(p, c, &rep))
	runSequence(t, e, seq, 16*s)

	t.Logf("stitch: %s", rep.String())
	want := StitchPrediction(p.R, s)
	if rep.SIn != s {
		t.Fatalf("entry S = %d", rep.SIn)
	}
	// ±O(1) boundary effects: a last relay/mix packet may still sit at
	// a2, and the fresh count can be off by a couple of packets.
	if rep.Fresh < want*95/100 || rep.Fresh > want+2 {
		t.Errorf("fresh = %d, predicted %d", rep.Fresh, want)
	}
	if rep.Stale > 2 {
		t.Errorf("stale packets at ingress: %d", rep.Stale)
	}
	if rep.Elsewhere != 0 {
		t.Errorf("stray packets elsewhere: %d", rep.Elsewhere)
	}
	e.CheckConservation()
}
