package core

import "aqt/internal/gadget"

// chainForTest builds a chain without stitching.
func chainForTest(n, m int) *gadget.Chain { return gadget.NewChain(n, m, false) }
