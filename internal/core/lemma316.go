package core

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// DrainReport records the no-injection drain that turns C(S, F(M))
// into a queue at the egress of the chain (the closing argument of
// Lemma 3.13: after S+n silent steps at least S−n ≥ S/2 packets are
// queued at the egress).
type DrainReport struct {
	Tau       int64
	SIn       int64 // S of the invariant at entry
	QEgress   int64 // packets at the chain egress at exit
	Elsewhere int64 // packets anywhere else at exit (should be 0)
}

// String summarizes the report.
func (r DrainReport) String() string {
	return fmt.Sprintf("drain: S=%d → egress queue %d (elsewhere %d)", r.SIn, r.QEgress, r.Elsewhere)
}

// DrainPhase runs S+n injection-free steps after the last pump so the
// 2S packets of C(S, F(M)) collapse onto the egress buffer of the
// chain.
func DrainPhase(p Params, c *gadget.Chain, rep *DrainReport) adversary.Phase {
	if rep == nil {
		rep = &DrainReport{}
	}
	var end int64
	enter := func(e *sim.Engine) sim.Adversary {
		tau := e.Now() - 1
		inv := c.CheckInvariant(e, c.M, true)
		rep.Tau, rep.SIn = tau, int64(inv.S())
		end = tau + rep.SIn + int64(p.N)
		return sim.NopAdversary{}
	}
	done := func(e *sim.Engine) bool {
		if e.Now() <= end {
			return false
		}
		rep.QEgress = int64(e.QueueLen(c.Egress(c.M)))
		rep.Elsewhere = e.TotalQueued() - rep.QEgress
		return true
	}
	return adversary.Phase{Name: "lemma3.13 drain", Enter: enter, Done: done,
		Until: &end}
}

// StitchReport records one application of the Lemma 3.16 adversary.
type StitchReport struct {
	Tau int64
	// SIn is the old queue at a0 (the chain egress) at entry.
	SIn int64
	// RS, R2S, R3S are the three stream sizes floor(rS), floor(r²S),
	// floor(r³S).
	RS, R2S, R3S int64
	// Fresh is the measured number of packets at a2 at exit.
	Fresh int64
	// Stale counts exit packets at a2 injected at or before τ+S
	// (Lemma 3.16 says there are none).
	Stale int64
	// Elsewhere counts packets outside a2 at exit (should be 0).
	Elsewhere int64
}

// String summarizes the report.
func (r StitchReport) String() string {
	return fmt.Sprintf("stitch: S=%d → %d fresh at ingress (predicted %d, stale %d, elsewhere %d)",
		r.SIn, r.Fresh, r.R3S, r.Stale, r.Elsewhere)
}

// StitchPhase builds the Lemma 3.16 adversary on the three-edge path
// a0 = egress of F(M), a1 = the stitch edge e0, a2 = ingress of F(1):
// starting from S packets at a0 with remaining routes of length 1, it
// leaves floor(r³S) fresh packets (injected after τ+S) at a2 by time
// τ + S + floor(rS) + floor(r²S), and nothing else in the network.
func StitchPhase(p Params, c *gadget.Chain, rep *StitchReport) adversary.Phase {
	if !c.HasStitch() {
		panic("core: stitch phase needs a chain with the e0 edge")
	}
	if rep == nil {
		rep = &StitchReport{}
	}
	var end, freshAfter int64
	a0, a1, a2 := c.Egress(c.M), c.Stitch(), c.Ingress(1)

	enter := func(e *sim.Engine) sim.Adversary {
		tau := e.Now() - 1
		s := int64(e.QueueLen(a0))
		r := p.R
		rs := r.FloorMulInt(s)
		r2s := r.FloorMulInt(rs)
		r3s := r.FloorMulInt(r2s)
		rep.Tau, rep.SIn, rep.RS, rep.R2S, rep.R3S = tau, s, rs, r2s, r3s
		// The paper's closed intervals [S+1, S+rS] and [S+rS, S+rS+r²S]
		// share their endpoint step; with exact pacing that would let
		// the mix and fresh streams inject on a2 in the same step and
		// overshoot the rate-r bound by one. Start the fresh stream one
		// step later (and extend the phase by one step) instead.
		end = tau + s + rs + r2s + 1
		freshAfter = tau + s

		script := adversary.NewScript()
		// Step (1): rS packets with route a0,a1,a2 during [1, S].
		script.AddStream(adversary.Stream{
			Name:   "stitch.relay",
			Start:  tau + 1,
			Rate:   r,
			Budget: rs,
			Route:  []graph.EdgeID{a0, a1, a2},
			Tag:    TagLong,
		})
		// Step (2): r²S packets at the tail of a2 during [S+1, S+rS].
		script.AddStream(adversary.Stream{
			Name:   "stitch.mix",
			Start:  tau + s + 1,
			Rate:   r,
			Budget: r2s,
			Route:  []graph.EdgeID{a2},
			Tag:    TagLong,
		})
		// Step (3): r³S fresh packets at the tail of a2 during
		// (S+rS, S+rS+r²S+1].
		script.AddStream(adversary.Stream{
			Name:   "stitch.fresh",
			Start:  tau + s + rs + 1,
			Rate:   r,
			Budget: r3s,
			Route:  []graph.EdgeID{a2},
			Tag:    TagFresh,
		})
		return script
	}

	done := func(e *sim.Engine) bool {
		if e.Now() <= end {
			return false
		}
		rep.Fresh = 0
		rep.Stale = 0
		e.Queue(a2).Each(func(pk *packet.Packet) bool {
			if pk.InjectedAt > freshAfter {
				rep.Fresh++
			} else {
				rep.Stale++
			}
			return true
		})
		rep.Elsewhere = e.TotalQueued() - rep.Fresh - rep.Stale
		return true
	}

	return adversary.Phase{Name: "lemma3.16 stitch", Enter: enter, Done: done,
		Until: &end}
}

// StitchPrediction returns the paper's exact output size floor(r³S)
// for a stitch starting from S packets at rate r.
func StitchPrediction(r rational.Rat, s int64) int64 {
	return r.FloorMulInt(r.FloorMulInt(r.FloorMulInt(s)))
}
