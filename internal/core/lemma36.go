package core

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/sim"
)

// Tags attached to the construction's packet populations, following
// the proof's vocabulary ("old packets", "new short packets", "new
// long packets").
const (
	TagOld   = "old"
	TagShort = "short"
	TagLong  = "long"
	TagFresh = "fresh"
)

// PumpReport records one application of the Lemma 3.6 adversary
// (gadget k → k+1) for the experiment tables.
type PumpReport struct {
	K   int   // source gadget index
	Tau int64 // paper time 0 (absolute engine step)

	// SIn is the measured S of C(S, F(k)) at entry.
	SIn int64
	// SPredicted is the paper's S' = floor(2S(1−R_n)).
	SPredicted int64
	// X is the part-(4) stream size.
	X int64
	// SMeasured is min(e-buffer total, ingress queue) on gadget k+1 at
	// exit — the S' actually available to the next pump.
	SMeasured int64
	// Exit is the full invariant report on gadget k+1 at exit.
	Exit gadget.InvariantReport
	// LeftInSource is the number of packets still in gadget k at exit
	// (the lemma says F is empty).
	LeftInSource int
	// Extended is the number of old packets whose routes were extended.
	Extended int
}

// GrowthFactor returns SMeasured / SIn.
func (r PumpReport) GrowthFactor() float64 {
	if r.SIn == 0 {
		return 0
	}
	return float64(r.SMeasured) / float64(r.SIn)
}

// String summarizes the report.
func (r PumpReport) String() string {
	return fmt.Sprintf("pump g%d→g%d: S=%d → S'=%d (predicted %d, ×%.4f)",
		r.K, r.K+1, r.SIn, r.SMeasured, r.SPredicted, r.GrowthFactor())
}

// PumpPhase builds the Lemma 3.6 adversary as a Sequence phase: given
// C(S, F(k)) with gadget k+1 empty, it pumps the configuration into
// C(S′, F(k+1)) over 2S+n steps, for S′ ≥ S(1+ε) when S ≥ S0.
//
// The measured S at entry parameterizes the streams (the adaptive
// compensation for floors/ceilings discussed in DESIGN.md). rr, when
// non-nil, validates the Lemma 3.3 rerouting preconditions. rep, when
// non-nil, is filled in as the phase runs.
func PumpPhase(p Params, c *gadget.Chain, k int, rr *adversary.Rerouter, rep *PumpReport) adversary.Phase {
	if k < 1 || k >= c.M {
		panic(fmt.Sprintf("core: pump needs 1 <= k < M, got k=%d M=%d", k, c.M))
	}
	if c.N != p.N {
		panic("core: chain was built with a different n than Params")
	}
	if rep == nil {
		rep = &PumpReport{}
	}
	var end int64

	enter := func(e *sim.Engine) sim.Adversary {
		tau := e.Now() - 1 // paper time 0
		inv := c.CheckInvariant(e, k, true)
		s := int64(inv.S())
		rep.K, rep.Tau, rep.SIn = k, tau, s
		rep.SPredicted = p.SPrime(s)
		rep.X = p.X(s)
		n := int64(p.N)
		end = tau + 2*s + n

		// Part (1): extend the routes of all packets stored in F(k) by
		// e'_1..e'_n, a'' (gadget k+1's e-path and egress).
		ext := append(append([]graph.EdgeID{}, c.EPath(k+1)...), c.Egress(k+1))
		old := collectGadgetPackets(e, c, k)
		rep.Extended = len(old)
		extendAll(e, rr, old, ext)
		for _, pk := range old {
			pk.Tag = TagOld
		}

		script := adversary.NewScript()
		// Part (2): short single-edge packets on each e'_i at rate r
		// during [i, i+t_i].
		for i := 1; i <= p.N; i++ {
			ti := p.Ti(s, i)
			script.AddStream(adversary.Stream{
				Name:   fmt.Sprintf("pump%d.short%d", k, i),
				Start:  tau + int64(i),
				Rate:   p.R,
				Budget: p.R.FloorMulInt(ti + 1),
				Route:  []graph.EdgeID{c.EPath(k + 1)[i-1]},
				Tag:    TagShort,
			})
		}
		// Part (3): rS long packets with route a,f_1..f_n,a',f'_1..f'_n,a''
		// during [1, S].
		longRoute := append(append([]graph.EdgeID{}, c.LongRoute(k)...), c.FPath(k+1)...)
		longRoute = append(longRoute, c.Egress(k+1))
		script.AddStream(adversary.Stream{
			Name:   fmt.Sprintf("pump%d.long", k),
			Start:  tau + 1,
			Rate:   p.R,
			Budget: p.R.FloorMulInt(s),
			Route:  longRoute,
			Tag:    TagLong,
		})
		// Part (4): X packets with route a',f'_1..f'_n,a'' in the first
		// X/r steps of [S+n+1, 2S+n].
		tailRoute := append([]graph.EdgeID{c.Ingress(k + 1)}, c.FPath(k+1)...)
		tailRoute = append(tailRoute, c.Egress(k+1))
		script.AddStream(adversary.Stream{
			Name:   fmt.Sprintf("pump%d.tail", k),
			Start:  tau + s + n + 1,
			Rate:   p.R,
			Budget: rep.X,
			Route:  tailRoute,
			Tag:    TagLong,
		})
		return script
	}

	done := func(e *sim.Engine) bool {
		if e.Now() <= end {
			return false
		}
		// State is now "end of step end": measure the exit condition.
		rep.Exit = c.CheckInvariant(e, k+1, true)
		rep.SMeasured = int64(rep.Exit.S())
		rep.LeftInSource = c.TotalQueuedInGadget(e, k)
		return true
	}

	return adversary.Phase{
		Name:  fmt.Sprintf("lemma3.6 pump g%d→g%d", k, k+1),
		Enter: enter,
		Done:  done,
		Until: &end,
	}
}

// collectGadgetPackets returns the packets buffered on gadget k's
// edges (ingress, e-path, f-path) whose remaining routes end at the
// gadget's egress, in deterministic order. The egress is the common
// edge Lemma 3.3 requires of the rerouted set P0; packets that do not
// end there are either discretization stragglers (single-edge short
// packets from the previous phase, a step or two from absorption) or —
// under non-FIFO policies, where the construction's invariants do not
// hold — packets already extended further, whose routes must not be
// touched again.
func collectGadgetPackets(e *sim.Engine, c *gadget.Chain, k int) []*packet.Packet {
	egress := c.Egress(k)
	var out []*packet.Packet
	for _, eid := range c.GadgetEdges(k) {
		q := e.Queue(eid)
		q.Each(func(p *packet.Packet) bool {
			rem := p.RemainingRoute()
			if rem[len(rem)-1] == egress {
				out = append(out, p)
			}
			return true
		})
	}
	return out
}

// extendAll extends every packet's route by ext, through the Rerouter
// (validating Lemma 3.3) when provided.
func extendAll(e *sim.Engine, rr *adversary.Rerouter, pkts []*packet.Packet, ext []graph.EdgeID) {
	if len(pkts) == 0 {
		return
	}
	if rr != nil {
		rr.MustExtendBatch(e, pkts, func(*packet.Packet) []graph.EdgeID { return ext })
		return
	}
	for _, p := range pkts {
		e.ExtendRoute(p, ext)
	}
}
