package core

import (
	"math"
	"math/big"
	"testing"

	"aqt/internal/rational"
)

func TestSolveKnownValues(t *testing.T) {
	// ε = 1/5, r = 7/10: smallest n with 0.7ⁿ < 1/2 and 4·0.7ⁿ < 0.2
	// is n = 9 (0.7⁹ ≈ 0.0404, 4·0.0404 ≈ 0.1614 < 0.2).
	p := Solve(rational.New(1, 5))
	if !p.R.Eq(rational.New(7, 10)) {
		t.Errorf("R = %v", p.R)
	}
	if p.N != 9 {
		t.Errorf("N = %d, want 9", p.N)
	}
	// S0 = ceil(n / (2(R_9 − R_10))) ≈ ceil(9 / 0.007788) = 1156.
	if p.S0 < 1100 || p.S0 > 1200 {
		t.Errorf("S0 = %d, want ≈1156", p.S0)
	}
}

func TestSolveConditionsExact(t *testing.T) {
	for _, eps := range []rational.Rat{
		rational.New(1, 20), rational.New(1, 10), rational.New(1, 5),
		rational.New(1, 4), rational.New(3, 10), rational.New(2, 5),
	} {
		p := Solve(eps)
		rb := bigRat(p.R)
		pow := big.NewRat(1, 1)
		for i := 0; i < p.N; i++ {
			pow.Mul(pow, rb)
		}
		if pow.Cmp(big.NewRat(1, 2)) >= 0 {
			t.Errorf("eps=%v: r^n >= 1/2", eps)
		}
		if new(big.Rat).Mul(big.NewRat(4, 1), pow).Cmp(bigRat(eps)) >= 0 {
			t.Errorf("eps=%v: 4r^n >= eps", eps)
		}
		// Minimality: n-1 must violate one of the conditions.
		pow.Quo(pow, rb)
		ok1 := pow.Cmp(big.NewRat(1, 2)) < 0
		ok2 := new(big.Rat).Mul(big.NewRat(4, 1), pow).Cmp(bigRat(eps)) < 0
		if p.N > 2 && ok1 && ok2 {
			t.Errorf("eps=%v: n=%d not minimal", eps, p.N)
		}
		if p.S0 < int64(2*p.N) {
			t.Errorf("eps=%v: S0 < 2n", eps)
		}
	}
}

func TestSolvePanicsOutOfRange(t *testing.T) {
	for _, eps := range []rational.Rat{rational.FromInt(0), rational.New(1, 2), rational.New(-1, 10)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Solve(%v) did not panic", eps)
				}
			}()
			Solve(eps)
		}()
	}
}

func TestRiRecurrence(t *testing.T) {
	// Equation (3.1): R_i / (r + R_i) = R_{i+1}.
	p := Solve(rational.New(1, 5))
	r := bigRat(p.R)
	for i := 1; i <= p.N; i++ {
		ri := p.Ri(i)
		lhs := new(big.Rat).Quo(ri, new(big.Rat).Add(r, ri))
		rhs := p.Ri(i + 1)
		if lhs.Cmp(rhs) != 0 {
			t.Errorf("recurrence fails at i=%d: %v vs %v", i, lhs, rhs)
		}
	}
	// R_1 = 1 - r + ... wait: R_1 = (1-r)/(1-r) = 1.
	if p.Ri(1).Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("R_1 = %v, want 1", p.Ri(1))
	}
}

func TestClaim37XBounds(t *testing.T) {
	// Claim 3.7: 0 < X <= rS for every S >= S0.
	for _, eps := range []rational.Rat{rational.New(1, 10), rational.New(1, 5), rational.New(3, 10)} {
		p := Solve(eps)
		for _, s := range []int64{p.S0, p.S0 + 1, 2 * p.S0, 10 * p.S0} {
			x := p.X(s)
			if x <= 0 {
				t.Errorf("eps=%v S=%d: X=%d <= 0", eps, s, x)
			}
			if x > p.R.FloorMulInt(s)+1 {
				t.Errorf("eps=%v S=%d: X=%d > rS=%d", eps, s, x, p.R.FloorMulInt(s))
			}
		}
	}
}

func TestGrowthLowerBound(t *testing.T) {
	// Lemma 3.6's guarantee S' >= S(1+ε) must hold from S0 upward.
	for _, eps := range []rational.Rat{rational.New(1, 10), rational.New(1, 5), rational.New(1, 4)} {
		p := Solve(eps)
		for _, s := range []int64{p.S0, 2 * p.S0, 16 * p.S0} {
			if !p.GrowthLowerBound(s) {
				t.Errorf("eps=%v S=%d: S'=%d < S(1+eps)", eps, s, p.SPrime(s))
			}
		}
	}
}

func TestTiMonotone(t *testing.T) {
	// t_i = 2S/(r+R_i) grows with i (R_i decreases).
	p := Solve(rational.New(1, 5))
	s := 2 * p.S0
	prev := int64(0)
	for i := 1; i <= p.N; i++ {
		ti := p.Ti(s, i)
		if ti < prev {
			t.Errorf("t_%d = %d < t_%d = %d", i, ti, i-1, prev)
		}
		if ti <= 0 || ti > 2*s {
			t.Errorf("t_%d = %d out of (0, 2S]", i, ti)
		}
		prev = ti
	}
	// t_1 = 2S/(r+1); for r=0.7, ≈ 2S/1.7.
	if got, want := p.Ti(1700, 1), int64(2000); got != want {
		t.Errorf("t_1(1700) = %d, want %d", got, want)
	}
}

func TestMinM(t *testing.T) {
	p := Solve(rational.New(1, 5))
	m := p.MinM(rational.FromInt(1))
	// r³(1+ε)^M/4 > 1 with r=0.7, ε=0.2: 1.2^M > 11.66 → M = 14.
	if m != 14 {
		t.Errorf("MinM = %d, want 14", m)
	}
	// Verify minimality exactly.
	r := bigRat(p.R)
	r3 := new(big.Rat).Mul(r, new(big.Rat).Mul(r, r))
	g := new(big.Rat).Add(big.NewRat(1, 1), bigRat(p.Eps))
	acc := new(big.Rat).Quo(r3, big.NewRat(4, 1))
	for i := 0; i < m-1; i++ {
		acc.Mul(acc, g)
	}
	if acc.Cmp(big.NewRat(1, 1)) > 0 {
		t.Error("M-1 already satisfies the bound; MinM not minimal")
	}
	acc.Mul(acc, g)
	if acc.Cmp(big.NewRat(1, 1)) <= 0 {
		t.Error("M does not satisfy the bound")
	}
}

func TestMinMEmpiricalSmaller(t *testing.T) {
	p := Solve(rational.New(1, 5))
	me := p.MinMEmpirical(rational.FromInt(1))
	if me >= p.MinM(rational.FromInt(1)) {
		t.Errorf("empirical M = %d should beat paper M = %d", me, p.MinM(rational.FromInt(1)))
	}
	if me < 2 {
		t.Errorf("empirical M = %d too small", me)
	}
}

func TestPumpGrowthExceedsOnePlusEps(t *testing.T) {
	for _, eps := range []rational.Rat{rational.New(1, 10), rational.New(1, 5), rational.New(3, 10)} {
		p := Solve(eps)
		g := p.PumpGrowth()
		want := new(big.Rat).Add(big.NewRat(1, 1), bigRat(eps))
		if g.Cmp(want) < 0 {
			t.Errorf("eps=%v: pump growth %v < 1+eps", eps, g)
		}
	}
}

func TestAsymptotics(t *testing.T) {
	// The appendix proves n = Θ(log 1/ε) and S0 = Θ((1/ε)·log(1/ε))
	// as ε → 0⁺ (the constants drift for moderate ε, where r is far
	// from 1/2). Check the Θ bounds with generous constants on a
	// decreasing ε sweep, plus monotonicity of S0's order.
	for _, eps := range []float64{0.1, 0.05, 0.02, 0.01, 0.005} {
		p := Solve(rational.FromFloat(eps, 10000))
		lo := mathLog2Inv(eps) - 1
		hi := 2*mathLog2Inv(eps) + 6
		if float64(p.N) < lo || float64(p.N) > hi {
			t.Errorf("eps=%v: N=%d outside [%.1f, %.1f]", eps, p.N, lo, hi)
		}
		// S0 = Θ(n/ε): generous two-sided constants.
		ratio := float64(p.S0) / (float64(p.N) / eps)
		if ratio < 0.2 || ratio > 40 {
			t.Errorf("eps=%v: S0=%d, S0/(n/ε)=%.2f outside [0.2,40]", eps, p.S0, ratio)
		}
	}
}

func mathLog2Inv(eps float64) float64 { return math.Log2(1 / eps) }

func TestStringers(t *testing.T) {
	p := Solve(rational.New(1, 5))
	if p.String() == "" {
		t.Error("empty String")
	}
}
