package core

import (
	"math/big"
	"strings"
	"testing"

	"aqt/internal/rational"
)

func TestReportStrings(t *testing.T) {
	pr := PumpReport{K: 2, SIn: 100, SMeasured: 140, SPredicted: 139}
	if !strings.Contains(pr.String(), "g2→g3") || !strings.Contains(pr.String(), "1.4000") {
		t.Errorf("PumpReport.String = %q", pr.String())
	}
	if pr.GrowthFactor() != 1.4 {
		t.Errorf("GrowthFactor = %v", pr.GrowthFactor())
	}
	if (PumpReport{}).GrowthFactor() != 0 {
		t.Error("zero SIn should give growth 0")
	}

	br := BootstrapReport{K: 1, QIn: 200, S: 100, SMeasured: 130, SPredicted: 129}
	if !strings.Contains(br.String(), "2S=200") {
		t.Errorf("BootstrapReport.String = %q", br.String())
	}
	if br.GrowthFactor() != 1.3 {
		t.Errorf("bootstrap growth = %v", br.GrowthFactor())
	}
	if (BootstrapReport{}).GrowthFactor() != 0 {
		t.Error("zero S should give growth 0")
	}

	dr := DrainReport{SIn: 50, QEgress: 45, Elsewhere: 1}
	if !strings.Contains(dr.String(), "egress queue 45") {
		t.Errorf("DrainReport.String = %q", dr.String())
	}
	sr := StitchReport{SIn: 50, Fresh: 17, R3S: 17}
	if !strings.Contains(sr.String(), "17 fresh") {
		t.Errorf("StitchReport.String = %q", sr.String())
	}
	cr := CycleRecord{Cycle: 3, S1: 10, S4: 25}
	if cr.Growth() != 2.5 || !strings.Contains(cr.String(), "cycle 3") {
		t.Errorf("CycleRecord: %v %q", cr.Growth(), cr.String())
	}
	if (CycleRecord{}).Growth() != 0 {
		t.Error("zero S1 growth should be 0")
	}
}

func TestParamsForValues(t *testing.T) {
	p := ParamsFor(rational.New(7, 10), 9)
	// Must agree with Solve(1/5) which lands on the same (r, n).
	q := Solve(rational.New(1, 5))
	if p.N != q.N || p.S0 != q.S0 || !p.R.Eq(q.R) {
		t.Errorf("ParamsFor disagrees with Solve: %v vs %v", p, q)
	}
	if !p.Eps.Eq(rational.New(1, 5)) {
		t.Errorf("eps = %v", p.Eps)
	}
	// Shallow depths give tiny S0 but still >= 2n.
	p2 := ParamsFor(rational.New(3, 4), 3)
	if p2.S0 < 6 {
		t.Errorf("S0 = %d < 2n", p2.S0)
	}
}

func TestParamsForPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"r=0": func() { ParamsFor(rational.FromInt(0), 3) },
		"r=1": func() { ParamsFor(rational.FromInt(1), 3) },
		"n=0": func() { ParamsFor(rational.New(1, 2), 0) },
		"r<0": func() { ParamsFor(rational.New(-1, 2), 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAsymptoticFormulas(t *testing.T) {
	// AsymptoticN must be near the exact N for small eps.
	for _, eps := range []float64{0.05, 0.02} {
		approx := AsymptoticN(eps)
		exact := Solve(rational.FromFloat(eps, 10000)).N
		if approx < float64(exact)-3 || approx > float64(exact)+3 {
			t.Errorf("eps=%v: AsymptoticN=%.1f vs exact %d", eps, approx, exact)
		}
	}
	if AsymptoticS0(0.05) != 4*AsymptoticN(0.05)/0.05 {
		t.Error("AsymptoticS0 formula wrong")
	}
}

func TestRatFromBig(t *testing.T) {
	r := ratFromBig(big.NewRat(3, 7))
	if !r.Eq(rational.New(3, 7)) {
		t.Errorf("ratFromBig = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(1))
	ratFromBig(huge)
}

func TestFloorCeilBigNegative(t *testing.T) {
	if got := floorBig(big.NewRat(-7, 2)); got != -4 {
		t.Errorf("floor(-3.5) = %d", got)
	}
	if got := ceilBig(big.NewRat(-7, 2)); got != -3 {
		t.Errorf("ceil(-3.5) = %d", got)
	}
	if got := floorBig(big.NewRat(6, 2)); got != 3 {
		t.Errorf("floor(3) = %d", got)
	}
}

func TestMinMPanicsOnBadMargin(t *testing.T) {
	p := Solve(rational.New(1, 5))
	for _, f := range []func(){
		func() { p.MinM(rational.FromInt(0)) },
		func() { p.MinMEmpirical(rational.FromInt(-1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad margin did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPumpPhasePanics(t *testing.T) {
	p := Solve(rational.New(1, 5))
	c2 := chainForTest(p.N, 2)
	for name, f := range map[string]func(){
		"k=0": func() { PumpPhase(p, c2, 0, nil, nil) },
		"k=M": func() { PumpPhase(p, c2, 2, nil, nil) },
		"wrong n": func() {
			PumpPhase(p, chainForTest(p.N+1, 2), 1, nil, nil)
		},
		"bootstrap k out of range": func() { BootstrapPhase(p, c2, 3, nil, nil) },
		"bootstrap wrong n": func() {
			BootstrapPhase(p, chainForTest(p.N+1, 2), 1, nil, nil)
		},
		"stitch without e0": func() { StitchPhase(p, c2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStitchPredictionValues(t *testing.T) {
	// r = 0.7, S = 1000: floor(0.7*1000)=700, floor(0.7*700)=490,
	// floor(0.7*490)=343.
	if got := StitchPrediction(rational.New(7, 10), 1000); got != 343 {
		t.Errorf("StitchPrediction = %d, want 343", got)
	}
}
