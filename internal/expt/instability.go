package expt

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// E1Theorem317 reproduces the headline result: FIFO on G_ε at rate
// 1/2 + ε grows its backlog by a constant factor every adversary
// cycle, for several ε.
func E1Theorem317(q Quick) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "FIFO instability at r = 1/2 + eps on G_eps (Theorem 3.17)",
		Columns: []string{"eps", "r", "n", "M", "cycle", "S1", "S2", "S3", "S4", "growth", "steps"},
		OK:      true,
	}
	epsList := []rational.Rat{rational.New(1, 5), rational.New(1, 4)}
	cycles := 3
	if q {
		epsList = []rational.Rat{rational.New(1, 4)}
		cycles = 2
	}
	// Each ε owns a full G_ε construction (its own chain, engine and
	// controllers), so the ε runs fan out across a worker pool; rows
	// are assembled in epsList order, keeping the table byte-identical
	// to a sequential run.
	type e1Run struct {
		ins  *core.Instability
		done int
	}
	runs := stability.SweepGrid(epsList, func(eps rational.Rat) e1Run {
		ins := core.NewInstability(eps, InstabilityOpts(q))
		return e1Run{ins: ins, done: ins.RunCycles(cycles)}
	}, 0)
	for i, gr := range runs {
		eps := epsList[i]
		if gr.Panic != "" {
			t.OK = false
			t.AddNote("eps=%v: run panicked: %s", eps, gr.Panic)
			continue
		}
		ins := gr.Value.ins
		if gr.Value.done != cycles {
			t.OK = false
			t.AddNote("eps=%v: only %d/%d cycles completed", eps, gr.Value.done, cycles)
		}
		for _, rec := range ins.Cycles {
			t.AddRow(eps, ins.P.R, ins.P.N, ins.M, rec.Cycle,
				rec.S1, rec.S2, rec.S3, rec.S4, rec.Growth(), rec.Steps)
			if rec.S4 <= rec.S1 {
				t.OK = false
			}
		}
	}
	t.AddNote("instability = S4 > S1 in every cycle; growth compounds without bound")
	return t
}

// InstabilityOpts returns the Theorem 3.17 options used by E1 and the
// benches (exported so callers size runs consistently).
func InstabilityOpts(q Quick) core.InstabilityOptions {
	opt := core.InstabilityOptions{Validate: true}
	if q {
		opt.MarginM = rational.New(3, 2)
	}
	return opt
}

// E2Lemma36 verifies the gadget pump across queue sizes: the measured
// S' must match the exact prediction floor(2S(1−R_n)) and exceed
// S(1+ε).
func E2Lemma36(q Quick) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Gadget pump S -> S' >= S(1+eps) (Lemma 3.6)",
		Columns: []string{"eps", "S", "S'_pred", "S'_meas", "growth", "1+eps", "srcEmpty", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)
	sizes := []int64{p.S0, 2 * p.S0, 4 * p.S0, 8 * p.S0}
	if q {
		sizes = []int64{p.S0, 2 * p.S0}
	}
	for _, s := range sizes {
		c := gadget.NewChain(p.N, 2, false)
		e := sim.New(c.G, policy.FIFO{}, nil)
		c.SeedInvariant(e, 1, int(s))
		var rep core.PumpReport
		rr := adversary.NewRerouter(p.R)
		e.AddObserver(rr)
		seq := adversary.NewSequence(core.PumpPhase(p, c, 1, rr, &rep))
		e.SetAdversary(seq)
		e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s)
		onePlusEps := 1 + eps.Float()
		ok := rep.SMeasured >= rep.SPredicted*98/100 &&
			rep.GrowthFactor() >= onePlusEps && rep.LeftInSource == 0
		if !ok {
			t.OK = false
		}
		t.AddRow(eps, s, rep.SPredicted, rep.SMeasured, rep.GrowthFactor(),
			onePlusEps, rep.LeftInSource == 0, ok)
	}
	t.AddNote("prediction S' = floor(2S(1-R_n)); growth guarantee holds for S >= S0 = %d", p.S0)
	return t
}

// E3Lemma315 verifies the bootstrap: 2S single-edge packets at the
// ingress become C(S', F) with S' >= S(1+ε).
func E3Lemma315(q Quick) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Bootstrap from a single buffer (Lemma 3.15)",
		Columns: []string{"eps", "2S", "S'_pred", "S'_meas", "growth", "1+eps", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)
	sizes := []int64{2 * p.S0, 4 * p.S0, 8 * p.S0}
	if q {
		sizes = sizes[:2]
	}
	for _, q2s := range sizes {
		c := gadget.NewChain(p.N, 1, false)
		e := sim.New(c.G, policy.FIFO{}, nil)
		e.SeedN(int(q2s), packet.Injection{Route: []graph.EdgeID{c.Ingress(1)}})
		var rep core.BootstrapReport
		seq := adversary.NewSequence(core.BootstrapPhase(p, c, 1, nil, &rep))
		e.SetAdversary(seq)
		e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*q2s)
		onePlusEps := 1 + eps.Float()
		ok := rep.SMeasured >= rep.SPredicted*98/100 && rep.GrowthFactor() >= onePlusEps
		if !ok {
			t.OK = false
		}
		t.AddRow(eps, q2s, rep.SPredicted, rep.SMeasured, rep.GrowthFactor(), onePlusEps, ok)
	}
	return t
}

// E4Lemma316 verifies the stitch: S old packets at a0 are replaced by
// floor(r^3 S) fresh packets at a2.
func E4Lemma316(q Quick) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Stitch: S old -> r^3 S fresh (Lemma 3.16)",
		Columns: []string{"r", "S", "fresh_pred", "fresh_meas", "stale", "elsewhere", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)
	sizes := []int64{1000, 4000, 16000}
	if q {
		sizes = []int64{1000, 4000}
	}
	for _, s := range sizes {
		c := gadget.NewChain(p.N, 2, true)
		e := sim.New(c.G, policy.FIFO{}, nil)
		e.SeedN(int(s), packet.Injection{Route: []graph.EdgeID{c.Egress(2)}})
		var rep core.StitchReport
		seq := adversary.NewSequence(core.StitchPhase(p, c, &rep))
		e.SetAdversary(seq)
		e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s)
		pred := core.StitchPrediction(p.R, s)
		total := rep.Fresh + rep.Stale
		ok := total >= pred*95/100 && total <= pred+pred/100+4 && rep.Elsewhere == 0
		if !ok {
			t.OK = false
		}
		t.AddRow(p.R, s, pred, rep.Fresh, rep.Stale, rep.Elsewhere, ok)
	}
	t.AddNote("stale counts packets injected before tau+S still queued (paper predicts 0; +-O(1) pipeline boundary effects appear in discrete runs)")
	return t
}

// E5Lemma313 verifies the chain pump: C(S, F(1)) propagates through M
// gadgets, multiplying S by about (2(1-R_n))^(M-1), and the final
// drain leaves more than S(1+eps)^(M-1)/2 packets at the chain egress.
func E5Lemma313(q Quick) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Chain pump through M gadgets (Lemma 3.13)",
		Columns: []string{"M", "S_in", "egress_meas", "paper_bound", "perPumpGrowth", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)
	ms := []int{2, 4, 6}
	if q {
		ms = []int{2, 3}
	}
	for _, m := range ms {
		c := gadget.NewChain(p.N, m, false)
		e := sim.New(c.G, policy.FIFO{}, nil)
		s := 2 * p.S0
		c.SeedInvariant(e, 1, int(s))
		reps := make([]core.PumpReport, m-1)
		phases := make([]adversary.Phase, 0, m)
		for k := 1; k < m; k++ {
			phases = append(phases, core.PumpPhase(p, c, k, nil, &reps[k-1]))
		}
		var drain core.DrainReport
		phases = append(phases, core.DrainPhase(p, c, &drain))
		seq := adversary.NewSequence(phases...)
		e.SetAdversary(seq)
		e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 512*s)

		// Paper bound: S(1+eps)^(M-1) / 2 packets at the egress.
		bound := float64(s) / 2
		for i := 0; i < m-1; i++ {
			bound *= 1 + eps.Float()
		}
		mean := 1.0
		if len(reps) > 0 {
			prod := 1.0
			for _, r := range reps {
				prod *= r.GrowthFactor()
			}
			mean = prod
		}
		// Pump stragglers (O(n) per pump, see E2) compound along the
		// chain and may still be a few hops from the egress when the
		// S+n drain window closes; they stay a small fraction of the
		// egress queue.
		ok := float64(drain.QEgress) >= bound &&
			drain.Elsewhere <= drain.QEgress/20+int64(2*p.N*m)
		if !ok {
			t.OK = false
		}
		t.AddRow(m, s, drain.QEgress, fmt.Sprintf("%.0f", bound), mean, ok)
	}
	t.AddNote("paper_bound = S(1+eps)^(M-1)/2; perPumpGrowth is the product of measured pump factors")
	return t
}

// E10Claims probes the internals of one pump run at the exact times
// Claims 3.7-3.12 speak about.
func E10Claims(q Quick) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Pump internals (Claims 3.7-3.12)",
		Columns: []string{"claim", "statement", "predicted", "measured", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)
	s := 2 * p.S0
	if !q {
		s = 4 * p.S0
	}
	c := gadget.NewChain(p.N, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, int(s))
	var rep core.PumpReport
	seq := adversary.NewSequence(core.PumpPhase(p, c, 1, nil, &rep))
	e.SetAdversary(seq)

	n := p.N
	// Claim 3.7: 0 < X <= rS.
	x := p.X(s)
	okX := x > 0 && x <= p.R.FloorMulInt(s)+1
	t.AddRow("3.7", "0 < X <= rS", fmt.Sprintf("X in (0,%d]", p.R.FloorMulInt(s)), x, okX)
	if !okX {
		t.OK = false
	}

	// Claim 3.8: one old packet crosses a' per step while the 2S old
	// packets stream through (engine steps [2, 2S+1] — the model's
	// substep timing shifts the paper's [1, 2S] by one). Crossed(t) =
	// 2S − (old still in gadget 1) − (old queued at a').
	egress := c.Egress(1)
	oldCrossedEgress := func() int64 {
		var inG1OrAtEgress int64
		count := func(eid graph.EdgeID) {
			e.Queue(eid).Each(func(pk *packet.Packet) bool {
				if pk.Tag == core.TagOld {
					inG1OrAtEgress++
				}
				return true
			})
		}
		for _, eid := range c.GadgetEdges(1) {
			count(eid)
		}
		count(egress)
		return 2*s - inG1OrAtEgress
	}
	claim38ok := true
	prevCrossed := int64(0)
	var shortsAt map[int]int // claim 3.9(3): shorts left in e'_i at i+2S+1
	shortsAt = make(map[int]int)
	qiMeasured := make(map[int]int) // claim 3.11: occupancy of e'_i at 2S+i
	for e.Now() < 2*s+int64(n) {
		e.Step()
		now := e.Now()
		if now >= 2 && now <= 2*s+1 {
			cur := oldCrossedEgress()
			if cur-prevCrossed != 1 {
				claim38ok = false
			}
			prevCrossed = cur
		}
		for i := 1; i <= n; i++ {
			if now == int64(i)+2*s+1 {
				cnt := 0
				e.Queue(c.EPath(2)[i-1]).Each(func(pk *packet.Packet) bool {
					if pk.Tag == core.TagShort {
						cnt++
					}
					return true
				})
				shortsAt[i] = cnt
			}
			if now == 2*s+int64(i) {
				qiMeasured[i] = e.QueueLen(c.EPath(2)[i-1])
			}
		}
	}
	t.AddRow("3.8", "1 old packet arrives at a' per step in [1,2S]", "exact", claim38ok, claim38ok)
	if !claim38ok {
		t.OK = false
	}

	// Claim 3.9(3): no short packets left in e'_i at time i+2S+1.
	maxShorts := 0
	for _, v := range shortsAt {
		if v > maxShorts {
			maxShorts = v
		}
	}
	ok39 := maxShorts <= 2
	t.AddRow("3.9(3)", "no shorts in e'_i at i+2S+1", 0, maxShorts, ok39)
	if !ok39 {
		t.OK = false
	}

	// Claim 3.11: Q_i = (2S - t_i) R_i packets in e'_i at time 2S+i,
	// and Q_n >= n. Check i = 1, n/2, n within 10%.
	for _, i := range []int{1, (n + 1) / 2, n} {
		ri := p.Ri(i)
		rif, _ := ri.Float64()
		pred := (float64(2*s) - float64(p.Ti(s, i))) * rif
		meas := float64(qiMeasured[i])
		ok := meas >= pred*0.9 && meas <= pred*1.1+4
		if !ok {
			t.OK = false
		}
		t.AddRow("3.11", fmt.Sprintf("Q_%d at 2S+%d", i, i), fmt.Sprintf("%.0f", pred), qiMeasured[i], ok)
	}

	// Claim 3.12 / 3.10: at 2S+n the a' queue and the e'-buffer total
	// both equal S'.
	sPrime := p.SPrime(s)
	aQueue := int64(e.QueueLen(egress))
	var eTotal int64
	for _, eid := range c.EPath(2) {
		eTotal += int64(e.QueueLen(eid))
	}
	ok312 := aQueue >= sPrime*98/100 && aQueue <= sPrime*102/100+4
	ok310 := eTotal >= sPrime*98/100 && eTotal <= sPrime*102/100+int64(n)+4
	t.AddRow("3.12", "a' queue at 2S+n = S'", sPrime, aQueue, ok312)
	t.AddRow("3.10", "e'-buffer total at 2S+n = S'", sPrime, eTotal, ok310)
	if !ok312 || !ok310 {
		t.OK = false
	}
	t.AddNote("eps=%v, S=%d, n=%d; tolerances 2-10%% absorb floors/ceilings (see DESIGN.md)", eps, s, n)
	return t
}
