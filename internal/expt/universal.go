package expt

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// U1UniversalStability smoke-tests the literature claims the paper's
// introduction leans on: LIS, SIS, FTG and NFS are universally stable
// (bounded buffers on every network at every rate r < 1, Andrews et
// al.), so they must stay bounded under heavy random (w,r) traffic at
// r = 9/10 across topologies — far above the 1/2 + ε at which FIFO
// already diverges on G_ε (E1). An empirical battery, not a proof:
// divergence would falsify the simulator or the policy, boundedness is
// the expected shape.
func U1UniversalStability(q Quick) *Table {
	t := &Table{
		ID:      "U1",
		Title:   "Universally stable policies stay bounded at r = 9/10 (policy landscape of section 1)",
		Columns: []string{"policy", "topology", "w", "r", "verdict", "peak", "residence", "ok"},
		OK:      true,
	}
	type topo struct {
		name string
		g    *graph.Graph
	}
	topos := []topo{
		{"ring(8)", graph.Ring(8)},
		{"complete(5)", graph.Complete(5)},
		{"grid(3x3)", graph.Grid(3, 3)},
	}
	steps := int64(12000)
	if q {
		topos = topos[:2]
		steps = 5000
	}
	rate := rational.New(9, 10)
	w := int64(40)
	for _, pol := range policy.All() {
		if !pol.Traits().UniversallyStable {
			continue
		}
		for _, tp := range topos {
			adv := adversary.NewRandomWR(tp.g, w, rate, 3, 97)
			eng := sim.New(tp.g, pol, adv)
			rep := stability.Run(eng, steps, 32, 1.25)
			if eng.Injected() == 0 {
				t.OK = false
			}
			ok := rep.Verdict == stability.Stable
			if !ok {
				t.OK = false
			}
			t.AddRow(pol.Name(), tp.name, w, rate, rep.Verdict,
				rep.PeakTotal, fmt.Sprint(eng.MaxResidence(true)), ok)
		}
	}
	t.AddNote("contrast: FIFO on G_eps diverges already at r = 1/2 + eps (E1); these policies hold at r = 9/10 on every topology tried")
	return t
}
