package expt

import "testing"

func TestA1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation cycles")
	}
	runQuick(t, "A1")
}
