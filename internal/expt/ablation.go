package expt

import (
	"fmt"
	"math/big"

	"aqt/internal/core"
	"aqt/internal/rational"
)

// A1ChainLength is the ablation behind Theorem 3.17's choice of M: the
// full adversary cycle multiplies the queue by roughly
// (g/2)·g^(M−1)·r³ with g = 2(1−R_n), so short chains shrink the
// backlog (the bootstrap halving and the stitch's r³ dominate) and
// only chains past a critical length compound it. The experiment
// computes the predicted per-cycle factor for a range of M and runs
// the real construction at one sub-critical and one super-critical
// length.
func A1ChainLength(q Quick) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: cycle growth vs chain length M (why the daisy chain is essential)",
		Columns: []string{"M", "predicted cycle factor", "measured S1->S4", "grew", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)

	predict := func(m int) float64 {
		g := p.PumpGrowth()
		r := new(big.Rat).SetFrac64(p.R.Num(), p.R.Den())
		r3 := new(big.Rat).Mul(r, new(big.Rat).Mul(r, r))
		acc := new(big.Rat).Quo(g, big.NewRat(2, 1))
		acc.Mul(acc, r3)
		for i := 0; i < m-1; i++ {
			acc.Mul(acc, g)
		}
		f, _ := acc.Float64()
		return f
	}

	crit := p.MinMEmpirical(rational.FromInt(1))
	mRun := map[int]bool{2: true, crit + 1: true}
	ms := []int{2, 3, 4, crit - 1, crit, crit + 1, crit + 2}
	if q {
		ms = []int{2, crit, crit + 1}
	}
	seen := map[int]bool{}
	for _, m := range ms {
		if m < 2 || seen[m] {
			continue
		}
		seen[m] = true
		pred := predict(m)
		measured := "-"
		grew := "-"
		rowOK := true
		if mRun[m] {
			// Force an exact chain length: a tiny margin makes the
			// empirical minimum collapse to 2; ExtraM adds the rest.
			ins := core.NewInstability(eps, core.InstabilityOptions{
				MarginM: rational.New(1, 1000),
				ExtraM:  m - 2,
			})
			if ins.M != m {
				panic(fmt.Sprintf("expt: built M=%d, want %d", ins.M, m))
			}
			rec, ok := ins.RunCycle()
			if !ok {
				rowOK = false
			} else {
				measured = fmt.Sprintf("%d -> %d (x%.3f)", rec.S1, rec.S4, rec.Growth())
				grew = fmt.Sprint(rec.S4 > rec.S1)
				// The measured direction must match the prediction.
				if (rec.S4 > rec.S1) != (pred > 1) {
					rowOK = false
				}
			}
		}
		if !rowOK {
			t.OK = false
		}
		t.AddRow(m, fmt.Sprintf("%.4f", pred), measured, grew, rowOK)
	}
	t.AddNote("g = 2(1-R_n) = %.4f per pump; critical M where (g/2)·g^(M-1)·r^3 crosses 1 is %d", mustF(p.PumpGrowth()), crit)
	t.AddNote("a single gadget can never close the loop: (g/2)·r^3 < 1 for every r < 1 — the chain is what converts the pump's 1+eps into unbounded growth")
	return t
}

func mustF(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
