package expt

import (
	"aqt/internal/adversary"
	"aqt/internal/baselines"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// E14BoundedBuffers measures the goodput-versus-capacity tradeoff of
// bounded buffers (Miller, Patt-Shamir, Rosenbaum, "With Great Speed
// Come Small Buffers", PODC 2019) on the canonical overload pattern:
// periodic bursts of b packets into a drop-tail buffer of capacity B
// that fully drains between bursts. The loss is then exact, not
// asymptotic —
//
//	drops/burst = max(0, b - B),   goodput = min(B, b) / b
//
// — and every row is checked against it, with conservation (injected =
// absorbed + queued + dropped) enforced per run. A second block holds
// all three drop policies to the same loss count at one capacity (the
// policy chooses the victim, never the number of victims), and the
// final block bisects the minimal loss-free capacity with
// stability.MinStableCap, which must land exactly on B* = b.
func E14BoundedBuffers(q Quick) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Bounded buffers: goodput vs capacity under periodic overload",
		Columns: []string{"cap", "drop", "injected", "absorbed", "dropped", "drops_pred", "goodput", "goodput_pred", "ok"},
		OK:      true,
	}
	burst, nBursts := int64(12), int64(50)
	if q {
		burst, nBursts = 6, 10
	}
	period := burst + 4 // the buffer drains fully between bursts at any cap
	steps := period*nBursts + burst + 8

	run := func(cap int, drop sim.DropPolicy) *sim.Engine {
		g := graph.Line(4)
		bs := adversary.BurstStream{
			Name: "burst", Start: 1, Period: period, Burst: burst, Budget: nBursts * burst,
			Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2"), g.MustEdge("e3")},
		}
		e := sim.NewWithConfig(g, policy.FIFO{}, adversary.NewBurstScript(bs),
			sim.Config{BufferCap: cap, Drop: drop})
		e.RunLeap(steps)
		e.CheckConservation()
		return e
	}
	row := func(cap int, drop sim.DropPolicy) {
		e := run(cap, drop)
		injected, absorbed, dropped := e.Injected(), e.Absorbed(), e.Dropped()
		dropsPred := nBursts * baselines.BoundedLoss(burst, int64(cap))
		goodput := float64(absorbed) / float64(injected)
		goodputPred := baselines.BoundedGoodput(burst, int64(cap)).Float()
		rowOK := e.TotalQueued() == 0 &&
			injected == nBursts*burst &&
			dropped == dropsPred &&
			absorbed == injected-dropped &&
			e.DropsAt(e.Graph().MustEdge("e1")) == dropped // only the first buffer overflows
		if !rowOK {
			t.OK = false
		}
		t.AddRow(cap, drop.Name(), injected, absorbed, dropped, dropsPred, goodput, goodputPred, rowOK)
	}

	// Goodput sweep under drop-tail: capacity from starvation to
	// loss-free (one slot above the burst confirms the knee is sharp).
	for cap := 1; int64(cap) <= burst+1; cap++ {
		row(cap, sim.DropTail{})
	}
	// Loss count is policy-independent; only victim selection differs.
	lossy := int(burst) / 2
	row(lossy, sim.DropHead{})
	row(lossy, sim.DropNTG{})

	// Minimal loss-free capacity by bisection: B*(burst) = burst.
	probe := func(cap int64) stability.Verdict {
		if run(int(cap), sim.DropTail{}).Dropped() == 0 {
			return stability.Stable
		}
		return stability.Diverging
	}
	bstar := stability.MinStableCap(probe, 1, burst+4)
	if bstar != burst {
		t.OK = false
	}
	t.AddNote("MinStableCap bisection: minimal loss-free capacity B* = %d, predicted burst size b = %d — %s",
		bstar, burst, passFail(bstar == burst))
	t.AddNote("period = b + 4 ensures every buffer drains between bursts, so the MPR loss formula is exact, not asymptotic")
	return t
}

func passFail(ok bool) string {
	if ok {
		return "match"
	}
	return "MISMATCH"
}
