package expt

import (
	"os"
	"strings"
	"testing"
)

// experimentsSection extracts one "### <id>: ..." section (header,
// table and notes) from EXPERIMENTS.md.
func experimentsSection(t *testing.T, id string) string {
	t.Helper()
	raw, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("reading EXPERIMENTS.md: %v", err)
	}
	lines := strings.Split(string(raw), "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "### "+id+":") {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("EXPERIMENTS.md has no section %s", id)
	}
	end := len(lines)
	for i := start + 1; i < len(lines); i++ {
		if strings.HasPrefix(lines[i], "### ") {
			end = i
			break
		}
	}
	return strings.TrimSpace(strings.Join(lines[start:end], "\n"))
}

// regenerated runs the runner at full (non-quick) sizing and renders
// its markdown exactly as cmd/experiments does for EXPERIMENTS.md.
func regenerated(t *testing.T, id string) string {
	t.Helper()
	r := ByID(id)
	if r == nil {
		t.Fatalf("no runner %s", id)
	}
	var sb strings.Builder
	r.Run(false).Markdown(&sb)
	return strings.TrimSpace(sb.String())
}

// TestE1TableMatchesExperimentsMD and its B2 sibling pin that the
// parallel fan-out inside the runners changed nothing observable: the
// full-size tables regenerate byte-identical to the ones recorded in
// EXPERIMENTS.md (modulo surrounding blank lines).
func TestE1TableMatchesExperimentsMD(t *testing.T) {
	if testing.Short() {
		t.Skip("full instability cycles")
	}
	got, want := regenerated(t, "E1"), experimentsSection(t, "E1")
	if got != want {
		t.Errorf("E1 table drifted from EXPERIMENTS.md:\n--- regenerated ---\n%s\n--- recorded ---\n%s", got, want)
	}
}

func TestB2TableMatchesExperimentsMD(t *testing.T) {
	if testing.Short() {
		t.Skip("full ladder grid")
	}
	got, want := regenerated(t, "B2"), experimentsSection(t, "B2")
	if got != want {
		t.Errorf("B2 table drifted from EXPERIMENTS.md:\n--- regenerated ---\n%s\n--- recorded ---\n%s", got, want)
	}
}
