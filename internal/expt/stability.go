package expt

import (
	"fmt"
	"math"

	"aqt/internal/adversary"
	"aqt/internal/baselines"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// E6Lemma33 validates the rerouting machinery: a full bootstrap+pump
// run under the Rerouter (new-edge checks) and the rate validator,
// counting reroutes per packet (the theorem allows at most M per
// packet).
func E6Lemma33(q Quick) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "On-line rerouting under a historic policy (Lemma 3.3)",
		Columns: []string{"phase", "reroutedPkts", "maxReroutesPerPkt", "rateCheck", "ok"},
		OK:      true,
	}
	eps := rational.New(1, 5)
	p := core.Solve(eps)
	s := 2 * p.S0
	c := gadget.NewChain(p.N, 3, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	rr := adversary.NewRerouter(p.R)
	rv := adversary.NewRateValidator(p.R)
	e.AddObserver(rr)
	e.AddObserver(rv)
	e.SeedN(int(2*s), packet.Injection{Route: []graph.EdgeID{c.Ingress(1)}})

	var boot core.BootstrapReport
	pumps := make([]core.PumpReport, 2)
	seq := adversary.NewSequence(
		core.BootstrapPhase(p, c, 1, rr, &boot),
		core.PumpPhase(p, c, 1, rr, &pumps[0]),
		core.PumpPhase(p, c, 2, rr, &pumps[1]),
	)
	e.SetAdversary(seq)
	e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 64*s)

	maxReroutes := 0
	e.ForEachQueued(func(_ graph.EdgeID, pk *packet.Packet) {
		if pk.Reroutes > maxReroutes {
			maxReroutes = pk.Reroutes
		}
	})
	// The rate validator confirms the emitted execution (including the
	// reroute-charged edges) remains a rate-r adversary.
	rateErr := rv.CheckBudget(600, 4*s)
	phases := []struct {
		name string
		n    int
	}{
		{"bootstrap", int(boot.QIn)},
		{"pump g1->g2", pumps[0].Extended},
		{"pump g2->g3", pumps[1].Extended},
	}
	for _, ph := range phases {
		ok := ph.n > 0
		if !ok {
			t.OK = false
		}
		t.AddRow(ph.name, ph.n, maxReroutes, rateErr == nil, ok)
	}
	if rateErr != nil {
		t.OK = false
		t.AddNote("rate validation failed: %v", rateErr)
	}
	if maxReroutes > 3 {
		t.OK = false
		t.AddNote("a packet was rerouted %d times; bound is one per traversed gadget", maxReroutes)
	}
	t.AddNote("every extension passed the Definition 3.2 new-edge check and the shared-edge precondition")
	return t
}

// E7Theorem41 checks the greedy stability bound: every policy, random
// (w,r) traffic at r = 1/(d+1), residence <= floor(wr).
func E7Theorem41(q Quick) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Greedy stability at r <= 1/(d+1) (Theorem 4.1)",
		Columns: []string{"policy", "d", "w", "r", "bound", "measured", "injected", "ok"},
		OK:      true,
	}
	steps := int64(6000)
	ds := []int{2, 3, 5}
	if q {
		steps = 2500
		ds = []int{2, 3}
	}
	for _, d := range ds {
		w := int64(20 * (d + 1))
		rate := stability.GreedyRateBound(d)
		for _, pol := range policy.All() {
			g := graph.Complete(d + 2)
			adv := adversary.NewRandomWR(g, w, rate, d, int64(17*d)+3)
			res := stability.CheckResidence(g, pol, adv, w, rate, d, steps)
			if !res.OK() || res.Injected == 0 {
				t.OK = false
			}
			t.AddRow(pol.Name(), d, w, rate, res.Bound, res.Measured, res.Injected, res.OK())
		}
	}
	// The extremal bursty adversary: full per-window allowance in
	// single-step bursts (Definition 2.1 permits this; smooth pacing
	// never exercises it). FIFO and NTG as representatives.
	for _, d := range ds {
		w := int64(20 * (d + 1))
		rate := stability.GreedyRateBound(d)
		for _, pol := range []policy.Policy{policy.FIFO{}, policy.NTG{}} {
			g := graph.Complete(d + 2)
			adv := adversary.MaxWindowBurst(g, w, rate, d)
			res := stability.CheckResidence(g, pol, adv, w, rate, d, steps)
			if !res.OK() || res.Injected == 0 {
				t.OK = false
			}
			t.AddRow(pol.Name()+"+burst", d, w, rate, res.Bound, res.Measured, res.Injected, res.OK())
		}
	}
	t.AddNote("bound floor(w*r) is independent of network size (paper section 1); '+burst' rows use single-step full-allowance bursts")
	return t
}

// E8Theorem43 checks the time-priority bound at the higher rate 1/d.
func E8Theorem43(q Quick) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Time-priority stability at r <= 1/d (Theorem 4.3)",
		Columns: []string{"policy", "d", "w", "r", "bound", "measured", "injected", "ok"},
		OK:      true,
	}
	steps := int64(6000)
	ds := []int{2, 3, 5}
	if q {
		steps = 2500
		ds = []int{2, 3}
	}
	for _, d := range ds {
		w := int64(20 * d)
		rate := stability.TimePriorityRateBound(d)
		for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}} {
			g := graph.Complete(d + 2)
			adv := adversary.NewRandomWR(g, w, rate, d, int64(29*d)+7)
			res := stability.CheckResidence(g, pol, adv, w, rate, d, steps)
			if !res.OK() || res.Injected == 0 {
				t.OK = false
			}
			t.AddRow(pol.Name(), d, w, rate, res.Bound, res.Measured, res.Injected, res.OK())
		}
	}
	return t
}

// E9Observation44 transforms initial-configuration adversaries into
// empty-start (w*, r*) adversaries and validates the window bound.
func E9Observation44(q Quick) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Initial configurations reduce to (w*, r*) adversaries (Observation 4.4)",
		Columns: []string{"S", "w", "r", "r*", "w*", "windowCheck", "residBound(Cor4.5)", "measured", "ok"},
		OK:      true,
	}
	d := 3
	g := graph.Complete(d + 2)
	sizes := []int64{8, 32, 128}
	if q {
		sizes = sizes[:2]
	}
	for _, s := range sizes {
		w := int64(24)
		r := rational.New(1, 8) // below 1/(d+1) = 1/4
		rStar := rational.New(3, 16)

		// Seeds: S packets all requiring edge 0, half continuing one
		// more hop (to a node other than edge 0's tail, keeping the
		// route simple).
		var second graph.EdgeID = graph.NoEdge
		for _, cand := range g.Out(g.Edge(0).To) {
			if g.Edge(cand).To != g.Edge(0).From {
				second = cand
				break
			}
		}
		seedRoute := []graph.EdgeID{0, second}
		seeds := make([]packet.Injection, s)
		for i := range seeds {
			seeds[i] = packet.Injection{Route: seedRoute[:1+int(i)%2]}
		}
		streams := []adversary.Stream{{
			Start: 1, Rate: r, Budget: 20 * s,
			Route: []graph.EdgeID{1},
		}}
		wStar := adversary.WStar(adversary.MaxEdgeRequirement(seeds), w, r, rStar)
		transformed := adversary.Observation44(streams, seeds)
		wv := adversary.NewWindowValidator(wStar, rStar)
		e := sim.New(g, policy.FIFO{}, transformed)
		e.AddObserver(wv)
		// The validator only listens to injection/reroute events, which
		// RunQuiet still delivers; skip the no-op OnStep dispatch.
		e.RunQuiet(40 * s)
		winErr := wv.Check()

		// Corollary 4.5: residence bound for greedy schedules started
		// from an S-initial-configuration at rate r < 1/(d+1).
		bound := stability.InitialConfigResidenceBound(s, w, r, stability.GreedyRateBound(d))
		measured := e.MaxResidence(true)
		ok := winErr == nil && measured <= bound
		if !ok {
			t.OK = false
		}
		t.AddRow(s, w, r, rStar, wStar, winErr == nil, bound, measured, ok)
	}
	t.AddNote("w* = ceil((S+w+1)/(r*-r)); the burst-at-step-1 execution passes the (w*, r*) window validator")
	return t
}

// E11Asymptotics reproduces the appendix's parameter table:
// n = Theta(log 1/eps), S0 = Theta((1/eps) log(1/eps)).
func E11Asymptotics(q Quick) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Parameter asymptotics (Appendix)",
		Columns: []string{"eps", "n", "log2(1/eps)", "n/log2(1/eps)", "S0", "(1/eps)log2(1/eps)", "S0/((1/eps)log2(1/eps))"},
		OK:      true,
	}
	epsList := []float64{0.25, 0.1, 0.05, 0.02, 0.01, 0.005}
	if q {
		epsList = epsList[:4]
	}
	for _, eps := range epsList {
		p := core.Solve(rational.FromFloat(eps, 100000))
		l := log2(1 / eps)
		scale := l / eps
		nRatio := float64(p.N) / l
		sRatio := float64(p.S0) / scale
		// Theta: ratios must stay within fixed constants in the
		// asymptotic regime (the appendix proves the classes for
		// eps -> 0+; moderate eps rows are informational).
		if eps <= 0.1 && (nRatio < 0.5 || nRatio > 3 || sRatio < 2 || sRatio > 80) {
			t.OK = false
		}
		t.AddRow(fmt.Sprintf("%.3f", eps), p.N, fmt.Sprintf("%.2f", l),
			fmt.Sprintf("%.2f", nRatio), p.S0, fmt.Sprintf("%.0f", scale),
			fmt.Sprintf("%.2f", sRatio))
	}
	t.AddNote("ratios bounded across the sweep confirm the Theta() classes; constants drift for moderate eps as the appendix notes (valid as eps -> 0+)")
	return t
}

// F1Figure31 reproduces Figure 3.1: the structure of F^2_n.
func F1Figure31(q Quick) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Gadget F^2_n structure (Figure 3.1)",
		Columns: []string{"n", "nodes", "edges", "acyclic", "egress(F)=ingress(F')", "routesSimple", "ok"},
		OK:      true,
	}
	for _, n := range []int{2, 4, 9} {
		c := gadget.NewChain(n, 2, false)
		shared := c.Egress(1) == c.Ingress(2)
		simple := c.G.IsSimplePath(c.LongRoute(1)) && c.G.IsSimplePath(c.LongRoute(2)) &&
			c.G.IsSimplePath(c.EgressRouteOfE(1, 1))
		ok := shared && simple && !c.G.HasCycle()
		if !ok {
			t.OK = false
		}
		t.AddRow(n, c.G.NumNodes(), c.G.NumEdges(), !c.G.HasCycle(), shared, simple, ok)
	}
	t.AddNote("DOT renderings available via cmd/gadgetviz")
	return t
}

// F2Figure32 reproduces Figure 3.2: G_eps = F^M_n closed by e0.
func F2Figure32(q Quick) *Table {
	t := &Table{
		ID:      "F2",
		Title:   "G_eps = F^M_n + stitch edge e0 (Figure 3.2)",
		Columns: []string{"eps", "n", "M", "nodes", "edges", "hasCycle", "recycleRouteSimple", "ok"},
		OK:      true,
	}
	for _, eps := range []rational.Rat{rational.New(1, 4), rational.New(1, 5), rational.New(1, 10)} {
		p := core.Solve(eps)
		m := p.MinMEmpirical(rational.FromInt(2))
		c := gadget.NewChain(p.N, m, true)
		recycle := []graph.EdgeID{c.Egress(m), c.Stitch(), c.Ingress(1)}
		ok := c.G.HasCycle() && c.G.IsSimplePath(recycle)
		if !ok {
			t.OK = false
		}
		t.AddRow(eps, p.N, m, c.G.NumNodes(), c.G.NumEdges(), c.G.HasCycle(),
			c.G.IsSimplePath(recycle), ok)
	}
	return t
}

// B1DepthThresholds tabulates the depth-limited instability thresholds
// r*(n) (prior constructions = shallow pipelines) and verifies pump
// behaviour on both sides of the threshold.
func B1DepthThresholds(q Quick) *Table {
	t := &Table{
		ID:      "B1",
		Title:   "Instability threshold vs pipeline depth (prior work = constant depth)",
		Columns: []string{"n", "r*(n)", "probe r", "expected", "S", "S'", "pumped", "ok"},
		OK:      true,
	}
	cases := []struct {
		n int
		r rational.Rat
	}{
		{3, rational.New(55, 100)}, // below r*(3)=0.618: shrink
		{3, rational.New(7, 10)},   // above: pump
		{4, rational.New(6, 10)},   // above r*(4)~0.5437? below?
		{9, rational.New(7, 10)},   // the paper's regime
		{9, rational.New(52, 100)},
	}
	sCap := int64(4000)
	if q {
		cases = cases[:3]
		sCap = 1500
	}
	for _, cse := range cases {
		res := baselines.RunDepthPump(cse.r, cse.n, sCap)
		ok := res.Pumped() == res.ShouldPump
		if !ok {
			t.OK = false
		}
		thr := baselines.DepthThreshold(cse.n, 20)
		t.AddRow(cse.n, fmt.Sprintf("%.4f", thr.Float()), cse.r, res.ShouldPump,
			res.S, res.Measured, res.Pumped(), ok)
	}
	// Recover r*(n) by pure simulation: bisect the rate with the pump
	// as the probe and compare against the exact root of r^n = 2r-1.
	// The parallel search speculatively pre-probes future bisection
	// midpoints (each probe owns its engine) and returns bit-identical
	// thresholds to the sequential search.
	bisectDepths := []int{3, 6}
	if q {
		bisectDepths = bisectDepths[:1]
	}
	for _, n := range bisectDepths {
		probe := func(rate rational.Rat) stability.Verdict {
			if baselines.RunDepthPump(rate, n, sCap/2).Pumped() {
				return stability.Diverging
			}
			return stability.Stable
		}
		emp := stability.ParallelThresholdSearch(probe, rational.New(1, 2), rational.New(9, 10), 8, 0)
		exact := baselines.DepthThreshold(n, 20)
		diff := emp.Float() - exact.Float()
		ok := diff >= -0.02 && diff <= 0.02
		if !ok {
			t.OK = false
		}
		t.AddRow(n, fmt.Sprintf("%.4f", exact.Float()),
			fmt.Sprintf("bisected: %.4f", emp.Float()), "-", "-", "-", "-", ok)
	}
	t.AddNote("r*(n) solves r^n = 2r-1 (pump condition R_n < 1/2); r*(3)=0.618, r*(n) -> 1/2: unbounded depth is what buys the paper its 1/2+eps bound over the 0.85/0.8357/0.749 constants of constant-size prior constructions")
	t.AddNote("'bisected' rows recover the threshold by pure simulation (rate bisection with the pump as probe) and match the algebraic root to grid resolution")
	return t
}

// B2NTGStarvation measures the NTG starvation mechanism behind the
// low-rate instability results of Borodin et al.
func B2NTGStarvation(q Quick) *Table {
	t := &Table{
		ID:      "B2",
		Title:   "NTG starves aged long-route traffic (mechanism of Borodin et al.)",
		Columns: []string{"policy", "crossRate", "K", "L", "drainSteps", "K/(1-r)", "ok"},
		OK:      true,
	}
	k := 200
	steps := int64(30000)
	if q {
		k = 100
		steps = 15000
	}
	rates := []rational.Rat{rational.New(2, 5), rational.New(3, 5), rational.New(4, 5)}
	if q {
		rates = rates[:2]
	}
	// Every (rate, policy) ladder run builds its own graph and engine,
	// so the whole grid fans out across a worker pool; rows keep the
	// sequential rate-major, policy-minor order (the FIFO verdict reads
	// NTG's drain time for the same rate out of the collected results).
	pols := []policy.Policy{policy.NTG{}, policy.FTG{}, policy.LIS{}, policy.FIFO{}}
	type b2Run struct {
		rate rational.Rat
		pol  policy.Policy
	}
	var grid []b2Run
	for _, r := range rates {
		for _, pol := range pols {
			grid = append(grid, b2Run{r, pol})
		}
	}
	results := stability.SweepGrid(grid, func(run b2Run) baselines.LadderResult {
		sc := baselines.LadderScenario{L: 6, K: k, CrossRate: run.rate, Steps: steps}
		return sc.Run(run.pol)
	}, 0)
	for ri, r := range rates {
		sc := baselines.LadderScenario{L: 6, K: k, CrossRate: r, Steps: steps}
		ideal := float64(k) / (1 - r.Float())
		var ntgDrain int64
		for pi, pol := range pols {
			gr := results[ri*len(pols)+pi]
			if gr.Panic != "" {
				t.OK = false
				t.AddNote("%s at r=%v panicked: %s", pol.Name(), r, gr.Panic)
				continue
			}
			res := gr.Value
			ok := res.Drained()
			switch pol.Name() {
			case "NTG":
				// NTG's drain must track the starvation rate K/(1-r).
				ok = ok && float64(res.DrainTime) > 0.8*ideal
				ntgDrain = res.DrainTime
			case "FTG", "LIS":
				// Policies that favour the aged convoy (by distance or
				// by injection age) drain well below the starvation time.
				ok = ok && float64(res.DrainTime) < 0.9*ideal
			case "FIFO":
				// FIFO protects only per-buffer arrival order; crossers
				// reach downstream buffers first, so FIFO lands between
				// LIS and NTG.
				ok = ok && res.DrainTime <= ntgDrain
			}
			if !ok {
				t.OK = false
			}
			t.AddRow(pol.Name(), r, k, sc.L, res.DrainTime, fmt.Sprintf("%.0f", ideal), ok)
		}
	}
	t.AddNote("recursive amplification of this mechanism with routes of length Theta(1/r) yields the arbitrarily-low-rate instability cited in section 5")
	return t
}

// B3PolicyZoo classifies every policy on the pump workload: FIFO
// diverges by construction; the universally stable policies stay
// bounded on the same graph under the same injections.
func B3PolicyZoo(q Quick) *Table {
	t := &Table{
		ID:      "B3",
		Title:   "Policy zoo on the gadget-chain workload",
		Columns: []string{"policy", "historic", "timePriority", "universallyStable", "verdict", "peakQueue", "ok"},
		OK:      true,
	}
	// A cheap pumping parameter point: r = 3/4 at depth n = 6 gives
	// S0 = 192, so the zoo's 8 policies x 2-3 cycles stay affordable
	// even for policies whose Select scans the whole buffer.
	p := core.ParamsFor(rational.New(3, 4), 6)
	s := 4 * p.S0
	for _, pol := range policy.All() {
		verdict, peak := zooRun(p, pol, s)
		tr := pol.Traits()
		// Expectations: FIFO must diverge (that is E1's construction);
		// universally stable policies must not.
		ok := true
		if pol.Name() == "FIFO" && verdict != stability.Diverging {
			ok = false
		}
		if tr.UniversallyStable && verdict == stability.Diverging {
			ok = false
		}
		if !ok {
			t.OK = false
		}
		t.AddRow(pol.Name(), tr.Historic, tr.TimePriority, tr.UniversallyStable, verdict, peak, ok)
	}
	t.AddNote("same G_eps graph, same per-cycle adversary shape; non-FIFO policies break the pump's FIFO mixing so the backlog stops compounding")
	return t
}

// zooRun drives the instability adversary shape against an arbitrary
// policy and classifies the backlog series over several cycles.
func zooRun(p core.Params, pol policy.Policy, s int64) (stability.Verdict, int64) {
	m := p.MinMEmpirical(rational.New(3, 2))
	c := gadget.NewChain(p.N, m, true)
	e := sim.New(c.G, pol, nil)
	e.SeedN(int(s), packet.Injection{Route: []graph.EdgeID{c.Ingress(1)}})
	rec := sim.NewRecorder(256)
	e.AddObserver(rec)

	peaks := []int64{}
	for cycle := 0; cycle < 3; cycle++ {
		var boot core.BootstrapReport
		var drain core.DrainReport
		var stitch core.StitchReport
		phases := []adversary.Phase{core.BootstrapPhase(p, c, 1, nil, &boot)}
		pumps := make([]core.PumpReport, m-1)
		for k := 1; k < m; k++ {
			phases = append(phases, core.PumpPhase(p, c, k, nil, &pumps[k-1]))
		}
		phases = append(phases, core.DrainPhase(p, c, &drain), core.StitchPhase(p, c, &stitch))
		seq := adversary.NewSequence(phases...)
		e.SetAdversary(seq)
		if !e.RunUntil(func(*sim.Engine) bool { return seq.Finished() }, 64*s*int64(m)) {
			break
		}
		e.SetAdversary(nil)
		peaks = append(peaks, e.TotalQueued())
		if e.TotalQueued() == 0 {
			break
		}
	}
	// Diverging iff the end-of-cycle backlog kept growing.
	verdict := stability.Stable
	if len(peaks) >= 2 && peaks[len(peaks)-1] > peaks[0]*5/4 {
		verdict = stability.Diverging
	}
	return verdict, rec.PeakTotal()
}

// B4FIFOBelowOneOverD verifies that FIFO stays stable on G_eps when
// the injection rate is below 1/d (Theorem 4.3 applied to the same
// graph the instability uses).
func B4FIFOBelowOneOverD(q Quick) *Table {
	t := &Table{
		ID:      "B4",
		Title:   "FIFO on G_eps below 1/d stays bounded (Theorem 4.3 on the instability graph)",
		Columns: []string{"d", "w", "r", "bound", "measured", "verdict", "ok"},
		OK:      true,
	}
	p := core.Solve(rational.New(1, 5))
	c := gadget.NewChain(p.N, 4, true)
	ds := []int{3, 6}
	steps := int64(8000)
	if q {
		ds = ds[:1]
		steps = 3000
	}
	for _, d := range ds {
		w := int64(20 * d)
		rate := stability.TimePriorityRateBound(d)
		adv := adversary.NewRandomWR(c.G, w, rate, d, 31)
		e := sim.New(c.G, policy.FIFO{}, adv)
		rec := sim.NewRecorder(32)
		e.AddObserver(rec)
		e.Run(steps)
		measured := e.MaxResidence(true)
		bound := stability.ResidenceBound(w, rate)
		verdict := stability.Classify(rec.Samples(), 1.25)
		ok := measured <= bound && verdict == stability.Stable && e.Injected() > 0
		if !ok {
			t.OK = false
		}
		t.AddRow(d, w, rate, bound, measured, verdict, ok)
	}
	t.AddNote("same graph family as E1; only the rate/route-length regime differs — matching the paper's 1/2+eps vs 1/d gap for FIFO")
	return t
}

func log2(x float64) float64 { return math.Log2(x) }
