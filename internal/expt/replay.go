package expt

import (
	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// E12ObliviousReplay makes Remark 1 of section 3 executable. The
// constructions are written as adaptive phase controllers (rerouting
// on-line, reading measured queue sizes), but the paper insists this
// is "only a matter of representation": the actual adversary is an
// oblivious rate-r injection sequence. The experiment
//
//  1. records one full Theorem 3.17 cycle under FIFO — every injection
//     with its final (post-extension) route;
//  2. validates the recorded schedule directly against the rate-r
//     definition (final routes charged at injection time, no reroute
//     bookkeeping);
//  3. replays the schedule through a fresh engine with a plain
//     oblivious adversary and verifies the execution is identical,
//     buffer for buffer, at the end and at sampled checkpoints.
func E12ObliviousReplay(q Quick) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Oblivious replay of the adaptive construction (Remark 1 / Lemma 3.3(1))",
		Columns: []string{"config", "packets", "steps", "rateCheck", "identicalExec", "ok"},
		OK:      true,
	}
	type cfg struct {
		label  string
		params *core.Params
		eps    rational.Rat
	}
	// Quick mode uses an explicit cheap parameter point (r = 3/4 at
	// depth 6, S0 = 192); full mode runs the paper's Solve(eps) sizing.
	cheap := core.ParamsFor(rational.New(3, 4), 6)
	cfgs := []cfg{{"r=3/4,n=6", &cheap, rational.New(1, 4)}}
	if !q {
		cfgs = append(cfgs, cfg{"eps=1/4", nil, rational.New(1, 4)})
	}
	for _, c := range cfgs {
		eps := c.eps
		rec := adversary.NewScheduleRecorder()
		ins := core.NewInstability(eps, core.InstabilityOptions{
			MarginM:   rational.New(3, 2),
			Observers: []sim.Observer{rec},
			Params:    c.params,
		})
		_, okCycle := ins.RunCycle()
		steps := ins.Engine.Now()
		schedule := rec.Finish()

		// (2) direct rate-r validation of the oblivious schedule.
		rateErr := adversary.ValidateRecording(schedule, ins.P.R, 400, 4*ins.SStar)

		// (3) oblivious replay.
		replayEng := sim.New(ins.Chain.G, policy.FIFO{}, adversary.NewReplay(schedule))
		adversary.SeedRecording(replayEng, schedule)
		var divergence error
		checkEvery := steps / 16
		if checkEvery < 1 {
			checkEvery = 1
		}
		for replayEng.Now() < steps && divergence == nil {
			replayEng.Step()
			if replayEng.Now()%checkEvery == 0 || replayEng.Now() == steps {
				// Compare against the original only at the end (the
				// original engine has already advanced); mid-run we
				// sanity-check conservation.
				replayEng.CheckConservation()
			}
		}
		divergence = adversary.DivergenceAt(ins.Engine, replayEng)

		ok := okCycle && rateErr == nil && divergence == nil
		if !ok {
			t.OK = false
			if rateErr != nil {
				t.AddNote("rate check: %v", rateErr)
			}
			if divergence != nil {
				t.AddNote("divergence: %v", divergence)
			}
		}
		t.AddRow(c.label, len(schedule), steps, rateErr == nil, divergence == nil, ok)
	}
	t.AddNote("the adaptive controller and the recorded oblivious schedule generate byte-identical executions under FIFO (a historic policy), as Lemma 3.3 claim (1) requires")
	return t
}
