package expt

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		OK:      true,
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", "w")
	tab.AddNote("note %d", 7)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T0", "demo", "PASS", "2.5000", "xyz", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var md strings.Builder
	tab.OK = false
	tab.Markdown(&md)
	if !strings.Contains(md.String(), "FAIL") || !strings.Contains(md.String(), "| a | bb |") {
		t.Errorf("markdown wrong:\n%s", md.String())
	}
}

func TestRunnerRegistry(t *testing.T) {
	rs := All()
	if len(rs) != 23 {
		t.Fatalf("%d runners", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil {
			t.Errorf("%s has no Run", r.ID)
		}
	}
	if ByID("E7") == nil || ByID("E7").ID != "E7" {
		t.Error("ByID failed")
	}
	if ByID("ZZ") != nil {
		t.Error("ByID on unknown id should be nil")
	}
}

// Each experiment runs green in quick mode. The heavyweight ones are
// exercised individually below so a single failure is attributable.

func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	r := ByID(id)
	if r == nil {
		t.Fatalf("no runner %s", id)
	}
	tab := r.Run(true)
	var sb strings.Builder
	tab.Render(&sb)
	t.Logf("\n%s", sb.String())
	if !tab.OK {
		t.Errorf("%s failed", id)
	}
	return tab
}

func TestE2Quick(t *testing.T)  { runQuick(t, "E2") }
func TestE3Quick(t *testing.T)  { runQuick(t, "E3") }
func TestE4Quick(t *testing.T)  { runQuick(t, "E4") }
func TestE6Quick(t *testing.T)  { runQuick(t, "E6") }
func TestE7Quick(t *testing.T)  { runQuick(t, "E7") }
func TestE8Quick(t *testing.T)  { runQuick(t, "E8") }
func TestE9Quick(t *testing.T)  { runQuick(t, "E9") }
func TestE10Quick(t *testing.T) { runQuick(t, "E10") }
func TestE11Quick(t *testing.T) { runQuick(t, "E11") }
func TestF1Quick(t *testing.T)  { runQuick(t, "F1") }
func TestF2Quick(t *testing.T)  { runQuick(t, "F2") }
func TestB1Quick(t *testing.T)  { runQuick(t, "B1") }
func TestB2Quick(t *testing.T)  { runQuick(t, "B2") }
func TestB4Quick(t *testing.T)  { runQuick(t, "B4") }
func TestE13Quick(t *testing.T) { runQuick(t, "E13") }
func TestE14Quick(t *testing.T) { runQuick(t, "E14") }
func TestU1Quick(t *testing.T)  { runQuick(t, "U1") }
func TestH1Quick(t *testing.T)  { runQuick(t, "H1") }

func TestE5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("chain pump")
	}
	runQuick(t, "E5")
}

func TestE1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("full instability cycles")
	}
	runQuick(t, "E1")
}

func TestE12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("full cycle record+replay")
	}
	runQuick(t, "E12")
}

func TestB3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("policy zoo sweep")
	}
	runQuick(t, "B3")
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "T0", Columns: []string{"a", "b"}, OK: true}
	tab.AddRow(1, "x,y") // comma must be quoted
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
