package expt

import (
	"strings"
	"testing"
	"time"
)

func fakeRunner(id string, ok bool, sleep time.Duration) Runner {
	return Runner{
		ID:   id,
		Name: "fake " + id,
		Run: func(Quick) *Table {
			time.Sleep(sleep)
			return &Table{ID: id, Title: "fake", OK: ok}
		},
	}
}

func TestRunAllOrderAndVerdicts(t *testing.T) {
	rs := []Runner{
		fakeRunner("X1", true, 2*time.Millisecond),
		fakeRunner("X2", false, 0),
		fakeRunner("X3", true, time.Millisecond),
	}
	results := RunAll(rs, true, 3)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Runner.ID != rs[i].ID {
			t.Errorf("result %d is %s, want %s (registry order must be preserved)", i, r.Runner.ID, rs[i].ID)
		}
		if r.Panic != "" {
			t.Errorf("%s panicked: %s", r.Runner.ID, r.Panic)
		}
	}
	if results[1].Table.OK {
		t.Error("X2 should fail")
	}
	sum := Summary(results)
	if !strings.Contains(sum, "X2") || !strings.Contains(sum, "FAIL") {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestRunAllRecoversPanics(t *testing.T) {
	rs := []Runner{
		fakeRunner("X1", true, 0),
		{ID: "XP", Name: "panicker", Run: func(Quick) *Table { panic("boom") }},
	}
	results := RunAll(rs, true, 2)
	if results[1].Panic != "boom" {
		t.Errorf("panic not captured: %+v", results[1])
	}
	if results[1].Table == nil || results[1].Table.OK {
		t.Error("panicked runner must yield a failing table")
	}
	if results[0].Table == nil || !results[0].Table.OK {
		t.Error("healthy runner affected by sibling panic")
	}
}

func TestRunAllSequentialAndOversized(t *testing.T) {
	rs := []Runner{fakeRunner("X1", true, 0)}
	if got := RunAll(rs, true, 1); len(got) != 1 || !got[0].Table.OK {
		t.Error("sequential run failed")
	}
	if got := RunAll(rs, true, 64); len(got) != 1 {
		t.Error("oversized pool failed")
	}
	if got := RunAll(rs, true, 0); len(got) != 1 {
		t.Error("default pool failed")
	}
}

func TestRunAllActuallyParallel(t *testing.T) {
	// 4 runners sleeping 40ms each must finish well under 160ms with 4
	// workers.
	rs := []Runner{
		fakeRunner("X1", true, 40*time.Millisecond),
		fakeRunner("X2", true, 40*time.Millisecond),
		fakeRunner("X3", true, 40*time.Millisecond),
		fakeRunner("X4", true, 40*time.Millisecond),
	}
	start := time.Now()
	RunAll(rs, true, 4)
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Errorf("parallel run took %v; expected ~40ms", elapsed)
	}
}
