package expt

import (
	"strings"
	"testing"
	"time"
)

func fakeRunner(id string, ok bool, sleep time.Duration) Runner {
	return Runner{
		ID:   id,
		Name: "fake " + id,
		Run: func(Quick) *Table {
			time.Sleep(sleep)
			return &Table{ID: id, Title: "fake", OK: ok}
		},
	}
}

func TestRunAllOrderAndVerdicts(t *testing.T) {
	rs := []Runner{
		fakeRunner("X1", true, 2*time.Millisecond),
		fakeRunner("X2", false, 0),
		fakeRunner("X3", true, time.Millisecond),
	}
	results := RunAll(rs, true, 3)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Runner.ID != rs[i].ID {
			t.Errorf("result %d is %s, want %s (registry order must be preserved)", i, r.Runner.ID, rs[i].ID)
		}
		if r.Panic != "" {
			t.Errorf("%s panicked: %s", r.Runner.ID, r.Panic)
		}
	}
	if results[1].Table.OK {
		t.Error("X2 should fail")
	}
	sum := Summary(results)
	if !strings.Contains(sum, "X2") || !strings.Contains(sum, "FAIL") {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestSummaryNumericIDOrder(t *testing.T) {
	// Feed the registry IDs in scrambled order; the digest must come
	// out E1…E13 then F1, F2 — a lexicographic sort would interleave
	// E10–E13 between E1 and E2.
	ids := []string{"E10", "F2", "E2", "E13", "E1", "F1", "E11", "E3",
		"E7", "E12", "E4", "E9", "E5", "E8", "E6"}
	var results []Result
	for _, id := range ids {
		r := fakeRunner(id, true, 0)
		results = append(results, Result{Runner: r, Table: &Table{ID: id, OK: true}})
	}
	sum := Summary(results)
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "F1", "F2"}
	lines := strings.Split(strings.TrimRight(sum, "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d summary lines, want %d:\n%s", len(lines), len(want), sum)
	}
	for i, w := range want {
		if got := strings.Fields(lines[i])[0]; got != w {
			t.Fatalf("summary line %d starts with %s, want %s:\n%s", i, got, w, sum)
		}
	}
}

func TestRunAllRecoversPanics(t *testing.T) {
	rs := []Runner{
		fakeRunner("X1", true, 0),
		{ID: "XP", Name: "panicker", Run: func(Quick) *Table { panic("boom") }},
	}
	results := RunAll(rs, true, 2)
	if results[1].Panic != "boom" {
		t.Errorf("panic not captured: %+v", results[1])
	}
	if results[1].Table == nil || results[1].Table.OK {
		t.Error("panicked runner must yield a failing table")
	}
	if results[0].Table == nil || !results[0].Table.OK {
		t.Error("healthy runner affected by sibling panic")
	}
}

func TestRunAllSequentialAndOversized(t *testing.T) {
	rs := []Runner{fakeRunner("X1", true, 0)}
	if got := RunAll(rs, true, 1); len(got) != 1 || !got[0].Table.OK {
		t.Error("sequential run failed")
	}
	if got := RunAll(rs, true, 64); len(got) != 1 {
		t.Error("oversized pool failed")
	}
	if got := RunAll(rs, true, 0); len(got) != 1 {
		t.Error("default pool failed")
	}
}

func TestRunAllActuallyParallel(t *testing.T) {
	// 4 runners sleeping 40ms each must finish well under 160ms with 4
	// workers.
	rs := []Runner{
		fakeRunner("X1", true, 40*time.Millisecond),
		fakeRunner("X2", true, 40*time.Millisecond),
		fakeRunner("X3", true, 40*time.Millisecond),
		fakeRunner("X4", true, 40*time.Millisecond),
	}
	start := time.Now()
	RunAll(rs, true, 4)
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Errorf("parallel run took %v; expected ~40ms", elapsed)
	}
}
