package expt

import (
	"fmt"

	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// E13NearHalf demonstrates the "any rate above 1/2" part of the
// headline theorem quantitatively: as ε → 0⁺ the solver produces
// deeper gadgets (n grows like log 1/ε) and larger minimum queues
// (S0 like (1/ε)·log(1/ε)), but the pump keeps growing by at least
// 1+ε. One pump per ε is run at S = 4·S0 and the measured growth is
// compared with the exact prediction 2(1 − R_n) and the guarantee 1+ε.
// At r = 1/2 exactly (ε = 0) the pump must not grow — the boundary is
// sharp.
func E13NearHalf(q Quick) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Pump growth persists at every rate above 1/2 (eps -> 0 sweep)",
		Columns: []string{"eps", "r", "n", "S0", "S", "growth_pred", "growth_meas", ">=1+eps", "ok"},
		OK:      true,
	}
	epsList := []rational.Rat{
		rational.New(1, 4), rational.New(1, 10), rational.New(1, 25), rational.New(1, 50),
	}
	if !q {
		epsList = append(epsList, rational.New(1, 100))
	}
	for _, eps := range epsList {
		p := core.Solve(eps)
		s := 4 * p.S0
		growth, ok := runOnePump(p, s)
		pred, _ := p.PumpGrowth().Float64()
		want := 1 + eps.Float()
		rowOK := ok && growth >= want && growth >= pred*0.98
		if !rowOK {
			t.OK = false
		}
		t.AddRow(eps, p.R, p.N, p.S0, s, pred, growth, growth >= want, rowOK)
	}

	// The sharp boundary: at r = 1/2 exactly the pump shrinks. Use the
	// deepest affordable pipeline to show depth cannot rescue r = 1/2.
	pHalf := core.ParamsFor(rational.New(1, 2), 12)
	sHalf := int64(4000)
	growth, ok := runOnePump(pHalf, sHalf)
	rowOK := ok && growth < 1
	if !rowOK {
		t.OK = false
	}
	t.AddRow("0", pHalf.R, pHalf.N, "-", sHalf, mustF(pHalf.PumpGrowth()), growth, false, rowOK)
	t.AddNote("r = 1/2 row: 2(1-R_n) = %s < 1 for every n — growth is impossible exactly at one half, matching the theorem's strict inequality", fmt.Sprintf("%.4f", mustF(pHalf.PumpGrowth())))
	return t
}

// runOnePump seeds C(S, F) on a fresh 2-gadget chain and runs one
// Lemma 3.6 pump, returning the measured growth factor.
func runOnePump(p core.Params, s int64) (float64, bool) {
	c := gadget.NewChain(p.N, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, int(s))
	var rep core.PumpReport
	seq := adversary.NewSequence(core.PumpPhase(p, c, 1, nil, &rep))
	e.SetAdversary(seq)
	ok := e.RunLeapUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s+64)
	return rep.GrowthFactor(), ok
}
