// Package expt implements the experiment harness: one runner per
// table/figure row of DESIGN.md (the paper's theorems, lemmas, claims
// and figures plus the literature baselines), each producing a
// rendered table of paper-predicted versus simulator-measured values.
// The cmd tools, the examples and the root benchmarks all drive these
// runners; EXPERIMENTS.md records their output.
package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result table.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// OK aggregates the experiment's pass/fail verdict.
	OK bool
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	status := "PASS"
	if !t.OK {
		status = "FAIL"
	}
	fmt.Fprintf(w, "== %s: %s [%s]\n", t.ID, t.Title, status)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) {
	status := "PASS"
	if !t.OK {
		status = "FAIL"
	}
	fmt.Fprintf(w, "### %s: %s — **%s**\n\n", t.ID, t.Title, status)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Quick controls experiment sizing: true trades statistical margin for
// runtime (used by unit tests and -short benchmarks); false is the
// full configuration recorded in EXPERIMENTS.md.
type Quick bool

// Runner is one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(q Quick) *Table
}

// All returns every experiment runner in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"E1", "Theorem 3.17 FIFO instability", E1Theorem317},
		{"E2", "Lemma 3.6 gadget pump", E2Lemma36},
		{"E3", "Lemma 3.15 bootstrap", E3Lemma315},
		{"E4", "Lemma 3.16 stitch", E4Lemma316},
		{"E5", "Lemma 3.13 chain pump", E5Lemma313},
		{"E6", "Lemma 3.3 rerouting validation", E6Lemma33},
		{"E7", "Theorem 4.1 greedy stability", E7Theorem41},
		{"E8", "Theorem 4.3 time-priority stability", E8Theorem43},
		{"E9", "Observation 4.4 initial configurations", E9Observation44},
		{"E10", "Claims 3.7-3.12 pump internals", E10Claims},
		{"E11", "Appendix asymptotics", E11Asymptotics},
		{"E12", "Oblivious replay (Remark 1)", E12ObliviousReplay},
		{"E13", "Pump growth as eps -> 0", E13NearHalf},
		{"E14", "Bounded buffers: goodput vs capacity", E14BoundedBuffers},
		{"F1", "Figure 3.1 gadget structure", F1Figure31},
		{"F2", "Figure 3.2 G_eps structure", F2Figure32},
		{"B1", "Depth-limited instability thresholds", B1DepthThresholds},
		{"B2", "NTG long-route starvation", B2NTGStarvation},
		{"B3", "Policy zoo", B3PolicyZoo},
		{"B4", "FIFO stable below 1/d", B4FIFOBelowOneOverD},
		{"A1", "Ablation: growth vs chain length M", A1ChainLength},
		{"U1", "Universal stability battery", U1UniversalStability},
		{"H1", "Heterogeneous network defuses the pump", H1Heterogeneous},
	}
}

// ByID returns the runner with the given ID, or nil.
func ByID(id string) *Runner {
	for _, r := range All() {
		if r.ID == id {
			c := r
			return &c
		}
	}
	return nil
}

// WriteCSV writes the table as CSV: a header row of column names, then
// the data rows. Notes and the pass verdict are not included (they are
// presentation, not data).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
