package expt

import (
	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// H1Heterogeneous probes the direction of Koukopoulos, Nikoletseas and
// Spirakis [15] (heterogeneous queueing networks): the Lemma 3.6 pump
// depends on FIFO mixing at the target gadget's e'-buffers, so
// switching just those n edges to a universally stable policy (LIS)
// while the rest of the network stays FIFO collapses the pump — a
// single heterogeneous pipeline is enough to defuse the instability.
func H1Heterogeneous(q Quick) *Table {
	t := &Table{
		ID:      "H1",
		Title:   "Heterogeneous networks: LIS on the e'-path defuses the FIFO pump ([15] direction)",
		Columns: []string{"network", "S", "S'", "growth", "pumped", "ok"},
		OK:      true,
	}
	p := core.Solve(rational.New(1, 5))
	s := 2 * p.S0
	if q {
		s = p.S0
	}

	type cfg struct {
		name   string
		hetero bool
	}
	for _, c := range []cfg{{"uniform FIFO", false}, {"FIFO + LIS e'-path", true}} {
		sPrime := runHeteroPump(p, s, c.hetero)
		growth := float64(sPrime) / float64(s)
		pumped := sPrime > s
		// Uniform FIFO must pump; the heterogeneous variant must not.
		ok := pumped != c.hetero
		if !ok {
			t.OK = false
		}
		t.AddRow(c.name, s, sPrime, growth, pumped, ok)
	}
	t.AddNote("identical adversary schedule in both rows; only the scheduling policy of the n target-gadget e'-edges differs")
	return t
}

// runHeteroPump replays the frozen Lemma 3.6 pump schedule on a
// 2-gadget chain; with hetero set, the target gadget's e'-path runs
// LIS instead of FIFO. Returns the conforming invariant size at the
// target after 2S+n steps.
func runHeteroPump(p core.Params, s int64, hetero bool) int64 {
	c, e := HeteroPumpEngine(p, s, hetero)
	e.RunQuiet(2*s + int64(p.N))
	rep := c.CheckInvariant(e, 2, true)
	goodE := int64(rep.ETotal - rep.BadERoutes)
	if int64(rep.AQueue) < goodE {
		return int64(rep.AQueue)
	}
	return goodE
}

// HeteroPumpEngine wires the frozen Lemma 3.6 pump on a 2-gadget chain
// without running it: invariant seeded, gadget-1 routes extended into
// the target, pump script installed. With hetero set, the target
// gadget's e'-path runs LIS instead of FIFO. The scenario emitter uses
// this to serialize the construction and hold the spec-compiled run to
// the same execution.
func HeteroPumpEngine(p core.Params, s int64, hetero bool) (*gadget.Chain, *sim.Engine) {
	c := gadget.NewChain(p.N, 2, false)
	lisEdges := map[graph.EdgeID]bool{}
	for _, eid := range c.EPath(2) {
		lisEdges[eid] = true
	}
	cfg := sim.Config{}
	if hetero {
		cfg.PolicyFor = func(eid graph.EdgeID) policy.Policy {
			if lisEdges[eid] {
				return policy.LIS{}
			}
			return nil
		}
	}
	e := sim.NewWithConfig(c.G, policy.FIFO{}, nil, cfg)
	c.SeedInvariant(e, 1, int(s))

	// The frozen FIFO pump schedule (as in Lemma 3.6).
	script := adversary.NewScript()
	for i := 1; i <= p.N; i++ {
		script.AddStream(adversary.Stream{
			Start: int64(i), Rate: p.R,
			Budget: p.R.FloorMulInt(p.Ti(s, i) + 1),
			Route:  []graph.EdgeID{c.EPath(2)[i-1]},
		})
	}
	long := append(append([]graph.EdgeID{}, c.LongRoute(1)...), c.FPath(2)...)
	long = append(long, c.Egress(2))
	script.AddStream(adversary.Stream{Start: 1, Rate: p.R, Budget: p.R.FloorMulInt(s), Route: long})
	tail := append([]graph.EdgeID{c.Ingress(2)}, c.FPath(2)...)
	tail = append(tail, c.Egress(2))
	script.AddStream(adversary.Stream{Start: s + int64(p.N) + 1, Rate: p.R, Budget: p.X(s), Route: tail})

	ext := append(append([]graph.EdgeID{}, c.EPath(2)...), c.Egress(2))
	for _, eid := range c.GadgetEdges(1) {
		qb := e.Queue(eid)
		for i := 0; i < qb.Len(); i++ {
			e.ExtendRoute(qb.At(i), ext)
		}
	}
	e.SetAdversary(script)
	return c, e
}
