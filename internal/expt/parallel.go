package expt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Result couples a finished experiment with its runtime.
type Result struct {
	Runner  Runner
	Table   *Table
	Elapsed time.Duration
	// Panic holds a recovered panic message, if the runner crashed.
	Panic string
}

// RunAll executes the given runners across a worker pool and returns
// the results in registry order. workers <= 0 means GOMAXPROCS.
// Every experiment is independent (each builds its own graphs and
// engines), so the fan-out is embarrassingly parallel; a crashed
// runner is reported in its Result rather than taking the pool down.
func RunAll(runners []Runner, q Quick, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	type job struct {
		idx int
		r   Runner
	}
	jobs := make(chan job)
	results := make([]Result, len(runners))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results[j.idx] = runOne(j.r, q)
			}
		}()
	}
	for i, r := range runners {
		jobs <- job{i, r}
	}
	close(jobs)
	wg.Wait()
	return results
}

func runOne(r Runner, q Quick) (res Result) {
	res.Runner = r
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Panic = fmt.Sprint(p)
			res.Table = &Table{ID: r.ID, Title: r.Name, OK: false}
			res.Table.AddNote("runner panicked: %v", p)
		}
	}()
	res.Table = r.Run(q)
	return res
}

// Summary renders a one-line-per-experiment digest sorted by ID:
// letter prefix first, then the numeric suffix compared as a number,
// so E2 precedes E10 (a plain string sort would interleave E10–E13
// between E1 and E2).
func Summary(results []Result) string {
	sorted := append([]Result{}, results...)
	sort.Slice(sorted, func(i, j int) bool {
		return idLess(sorted[i].Runner.ID, sorted[j].Runner.ID)
	})
	out := ""
	for _, r := range sorted {
		status := "PASS"
		if r.Table == nil || !r.Table.OK {
			status = "FAIL"
		}
		out += fmt.Sprintf("%-4s %-45s %-5s %8.2fs\n",
			r.Runner.ID, r.Runner.Name, status, r.Elapsed.Seconds())
	}
	return out
}

// idLess orders experiment IDs by letter prefix, then numeric suffix.
// IDs without a parseable numeric suffix fall back to string order
// after their prefix group.
func idLess(a, b string) bool {
	ap, an, aok := splitID(a)
	bp, bn, bok := splitID(b)
	if ap != bp {
		return ap < bp
	}
	if aok && bok && an != bn {
		return an < bn
	}
	if aok != bok {
		return aok // numbered IDs before unnumbered within a prefix
	}
	return a < b
}

// splitID splits an ID like "E10" into its non-digit prefix and
// numeric suffix; ok is false when there is no numeric suffix.
func splitID(id string) (prefix string, n int, ok bool) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return id, 0, false
	}
	for _, c := range id[i:] {
		n = n*10 + int(c-'0')
	}
	return id[:i], n, true
}
