package expt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"aqt/internal/obs"
)

// Result couples a finished experiment with its runtime.
type Result struct {
	Runner  Runner
	Table   *Table
	Elapsed time.Duration
	// Panic holds a recovered panic message, if the runner crashed.
	Panic string
}

// RunAll executes the given runners across a worker pool and returns
// the results in registry order. workers <= 0 means GOMAXPROCS.
// Every experiment is independent (each builds its own graphs and
// engines), so the fan-out is embarrassingly parallel; a crashed
// runner is reported in its Result rather than taking the pool down.
func RunAll(runners []Runner, q Quick, workers int) []Result {
	results, _ := RunAllTelemetry(runners, q, workers, nil)
	return results
}

// RunAllTelemetry is RunAll with harness telemetry: onProgress (nil =
// none) receives per-runner start/finish reports (the -progress status
// line), and the returned Snapshot aggregates per-worker metrics —
// each worker goroutine records into its own obs.Registry (runner
// wall-clock, table row counts, failure/panic tallies) and the
// goroutine-confined snapshots are merged after the pool drains, the
// same ownership discipline the engines follow.
func RunAllTelemetry(runners []Runner, q Quick, workers int, onProgress obs.ProgressFunc) ([]Result, obs.Snapshot) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	type job struct {
		idx int
		r   Runner
	}
	jobs := make(chan job)
	results := make([]Result, len(runners))
	regs := make([]*obs.Registry, workers)
	prog := newRunProgress(onProgress, len(runners))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		regs[w] = obs.NewRegistry()
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := regs[w]
			elapsed := reg.Histogram("expt.elapsed_ms")
			rows := reg.Histogram("expt.table_rows")
			runs := reg.Counter("expt.runs")
			failed := reg.Counter("expt.failed")
			panics := reg.Counter("expt.panics")
			for j := range jobs {
				prog.begin()
				res := runOne(j.r, q)
				results[j.idx] = res
				runs.Inc()
				elapsed.Observe(res.Elapsed.Milliseconds())
				if res.Table != nil {
					rows.Observe(int64(len(res.Table.Rows)))
				}
				if res.Table == nil || !res.Table.OK {
					failed.Inc()
				}
				if res.Panic != "" {
					panics.Inc()
				}
				prog.end(res.Elapsed)
			}
		}()
	}
	for i, r := range runners {
		jobs <- job{i, r}
	}
	close(jobs)
	wg.Wait()
	snaps := make([]obs.Snapshot, len(regs))
	for i, reg := range regs {
		snaps[i] = reg.Snapshot()
	}
	return results, obs.MergeSnapshots(snaps...)
}

// runProgress mirrors stability's progress tracker for the experiment
// pool (kept local: expt must not depend on internal/stability).
type runProgress struct {
	mu       sync.Mutex
	fn       obs.ProgressFunc
	start    time.Time
	total    int
	done     int
	inFlight int
	slowest  time.Duration
}

func newRunProgress(fn obs.ProgressFunc, total int) *runProgress {
	if fn == nil {
		return nil
	}
	return &runProgress{fn: fn, start: time.Now(), total: total}
}

func (p *runProgress) begin() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.inFlight++
	p.emit()
	p.mu.Unlock()
}

func (p *runProgress) end(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.inFlight--
	p.done++
	if d > p.slowest {
		p.slowest = d
	}
	p.emit()
	p.mu.Unlock()
}

func (p *runProgress) emit() {
	p.fn(obs.SweepProgress{
		Done:         p.done,
		Total:        p.total,
		InFlight:     p.inFlight,
		Elapsed:      time.Since(p.start),
		SlowestProbe: p.slowest,
	})
}

func runOne(r Runner, q Quick) (res Result) {
	res.Runner = r
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			res.Panic = fmt.Sprint(p)
			res.Table = &Table{ID: r.ID, Title: r.Name, OK: false}
			res.Table.AddNote("runner panicked: %v", p)
		}
	}()
	res.Table = r.Run(q)
	return res
}

// Summary renders a one-line-per-experiment digest sorted by ID:
// letter prefix first, then the numeric suffix compared as a number,
// so E2 precedes E10 (a plain string sort would interleave E10–E13
// between E1 and E2).
func Summary(results []Result) string {
	sorted := append([]Result{}, results...)
	sort.Slice(sorted, func(i, j int) bool {
		return idLess(sorted[i].Runner.ID, sorted[j].Runner.ID)
	})
	out := ""
	for _, r := range sorted {
		status := "PASS"
		if r.Table == nil || !r.Table.OK {
			status = "FAIL"
		}
		out += fmt.Sprintf("%-4s %-45s %-5s %8.2fs\n",
			r.Runner.ID, r.Runner.Name, status, r.Elapsed.Seconds())
	}
	return out
}

// idLess orders experiment IDs by letter prefix, then numeric suffix.
// IDs without a parseable numeric suffix fall back to string order
// after their prefix group.
func idLess(a, b string) bool {
	ap, an, aok := splitID(a)
	bp, bn, bok := splitID(b)
	if ap != bp {
		return ap < bp
	}
	if aok && bok && an != bn {
		return an < bn
	}
	if aok != bok {
		return aok // numbered IDs before unnumbered within a prefix
	}
	return a < b
}

// splitID splits an ID like "E10" into its non-digit prefix and
// numeric suffix; ok is false when there is no numeric suffix.
func splitID(id string) (prefix string, n int, ok bool) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return id, 0, false
	}
	for _, c := range id[i:] {
		n = n*10 + int(c-'0')
	}
	return id[:i], n, true
}
