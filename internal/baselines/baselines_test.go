package baselines

import (
	"testing"

	"aqt/internal/policy"
	"aqt/internal/rational"
)

func TestPumpsAtDepthPredicate(t *testing.T) {
	cases := []struct {
		r    rational.Rat
		n    int
		want bool
	}{
		// n = 2 never pumps: r² < 2r−1 ⇔ (1−r)² < 0.
		{rational.New(9, 10), 2, false},
		{rational.New(99, 100), 2, false},
		// n = 3 threshold is the golden ratio conjugate ≈ 0.618.
		{rational.New(6, 10), 3, false},
		{rational.New(62, 100), 3, true},
		{rational.New(7, 10), 3, true},
		// n = 9 at r = 0.7 pumps (the main construction's regime).
		{rational.New(7, 10), 9, true},
		// Below 1/2 no depth pumps.
		{rational.New(49, 100), 50, false},
		{rational.New(1, 2), 50, false},
		// Degenerate inputs.
		{rational.FromInt(1), 5, false},
		{rational.FromInt(0), 5, false},
	}
	for _, c := range cases {
		if got := PumpsAtDepth(c.r, c.n); got != c.want {
			t.Errorf("PumpsAtDepth(%v, %d) = %v, want %v", c.r, c.n, got, c.want)
		}
	}
}

func TestDepthThresholdValues(t *testing.T) {
	// r*(3) = (√5−1)/2 ≈ 0.6180.
	r3 := DepthThreshold(3, 20).Float()
	if r3 < 0.6179 || r3 > 0.6182 {
		t.Errorf("r*(3) = %v", r3)
	}
	// Strictly decreasing towards 1/2.
	prev := 2.0
	for _, n := range []int{3, 4, 5, 7, 9, 12, 16, 24} {
		v := DepthThreshold(n, 20).Float()
		if v >= prev {
			t.Errorf("r*(%d) = %v not decreasing (prev %v)", n, v, prev)
		}
		if v <= 0.5 {
			t.Errorf("r*(%d) = %v <= 1/2", n, v)
		}
		prev = v
	}
	// Deep pipelines approach 1/2.
	if v := DepthThreshold(64, 20).Float(); v > 0.52 {
		t.Errorf("r*(64) = %v, want < 0.52", v)
	}
	// n <= 2 returns 1.
	if !DepthThreshold(2, 10).Eq(rational.FromInt(1)) {
		t.Error("r*(2) should be 1")
	}
}

func TestDepthThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad bits did not panic")
		}
	}()
	DepthThreshold(3, 99)
}

func TestRunDepthPumpGrowsAboveThreshold(t *testing.T) {
	// n = 9 at r = 0.7: comfortably above r*(9) ≈ 0.508+; must pump.
	res := RunDepthPump(rational.New(7, 10), 9, 3000)
	t.Logf("%s", res.String())
	if !res.ShouldPump {
		t.Fatal("predicate says no pump?")
	}
	if !res.Pumped() {
		t.Errorf("expected growth: %s", res)
	}
	// Measured close to predicted.
	if res.Measured < res.Predicted*95/100 {
		t.Errorf("measured %d far below predicted %d", res.Measured, res.Predicted)
	}
}

func TestRunDepthPumpShrinksBelowThreshold(t *testing.T) {
	// n = 3 at r = 0.55: below r*(3) ≈ 0.618; the pump must shrink the
	// queue (S' < S).
	res := RunDepthPump(rational.New(55, 100), 3, 3000)
	t.Logf("%s", res.String())
	if res.ShouldPump {
		t.Fatal("predicate says pump below threshold?")
	}
	if res.Pumped() {
		t.Errorf("queue should shrink below threshold: %s", res)
	}
}

func TestLadderNTGStarvesConvoy(t *testing.T) {
	sc := LadderScenario{
		L:         6,
		K:         200,
		CrossRate: rational.New(3, 5),
		Steps:     20000,
	}
	ntg := sc.Run(policy.NTG{})
	ftg := sc.Run(policy.FTG{})
	fifo := sc.Run(policy.FIFO{})
	t.Logf("NTG:  %s", ntg)
	t.Logf("FTG:  %s", ftg)
	t.Logf("FIFO: %s", fifo)
	for _, r := range []LadderResult{ntg, ftg, fifo} {
		if !r.Drained() {
			t.Fatalf("%s did not drain within horizon", r.Policy)
		}
	}
	// NTG leaks the convoy at 1−r: drain ≈ K/(1−r) = 500 plus hop
	// slack. FTG prioritizes the convoy and drains much faster.
	if ntg.DrainTime < 450 || ntg.DrainTime > 600 {
		t.Errorf("NTG drain %d far from K/(1−r) = 500", ntg.DrainTime)
	}
	if ntg.DrainTime*2 < ftg.DrainTime*3 { // NTG >= 1.5 × FTG
		t.Errorf("NTG drain %d not >> FTG drain %d", ntg.DrainTime, ftg.DrainTime)
	}
	if ntg.DrainTime < fifo.DrainTime {
		t.Errorf("NTG drain %d < FIFO drain %d", ntg.DrainTime, fifo.DrainTime)
	}
}

func TestLadderStarvationGrowsWithRate(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	// NTG's convoy drain time grows like K/(1−r) with the crossing
	// rate; FTG's stays flat — the B2 shape.
	prevNTG := int64(0)
	for _, r := range []rational.Rat{rational.New(1, 5), rational.New(2, 5), rational.New(3, 5), rational.New(4, 5)} {
		sc := LadderScenario{L: 4, K: 150, CrossRate: r, Steps: 40000}
		ntg := sc.Run(policy.NTG{})
		ftg := sc.Run(policy.FTG{})
		t.Logf("r=%v: NTG drain %d, FTG drain %d", r, ntg.DrainTime, ftg.DrainTime)
		if !ntg.Drained() || !ftg.Drained() {
			t.Fatalf("r=%v: horizon too short", r)
		}
		if ntg.DrainTime <= prevNTG {
			t.Errorf("NTG drain not increasing at r=%v", r)
		}
		if ftg.DrainTime > 2*int64(sc.K) {
			t.Errorf("FTG drain %d should stay near K", ftg.DrainTime)
		}
		prevNTG = ntg.DrainTime
	}
}
