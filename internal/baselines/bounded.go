package baselines

import "aqt/internal/rational"

// E14 — bounded buffers (Miller, Patt-Shamir, Rosenbaum, "With Great
// Speed Come Small Buffers", PODC 2019). When every buffer holds at
// most B packets and the workload is a periodic burst of b packets
// into one edge with enough quiet time for the buffer to drain fully
// before the next burst, the loss per burst is exact for every
// work-conserving drop policy — the policy chooses *which* packet to
// discard, never *how many*:
//
//	drops/burst = max(0, b − B),   goodput = min(B, b) / b
//
// and the minimal loss-free capacity is B* = b. The E14 runner checks
// a capacity sweep row-by-row against these predictions and recovers
// B* independently with stability.MinStableCap.

// BoundedLoss returns the predicted packet loss per burst of size
// burst into an empty capacity-cap buffer: max(0, burst − cap).
func BoundedLoss(burst, cap int64) int64 {
	if d := burst - cap; d > 0 {
		return d
	}
	return 0
}

// BoundedGoodput returns the predicted delivered fraction
// min(cap, burst)/burst for the same regime, as an exact rational.
func BoundedGoodput(burst, cap int64) rational.Rat {
	if cap > burst {
		cap = burst
	}
	return rational.New(cap, burst)
}
