// Package baselines implements the comparison constructions the paper
// positions itself against.
//
// B1 — depth-limited instability thresholds. Prior FIFO instability
// constructions (Andrews et al., Borodin et al., Díaz et al.) live on
// constant-size networks with constant-length routes; the rate they can
// destabilize is bottlenecked by the depth of the slow-down pipeline
// they can build. In the vocabulary of this paper's gadget, a pipeline
// of depth n pumps (grows the queue) iff R_n = (1−r)/(1−rⁿ) < 1/2,
// i.e. iff rⁿ < 2r − 1, giving a per-depth threshold r*(n): r*(3) =
// (√5−1)/2 ≈ 0.618, decreasing towards 1/2 as n → ∞ — the paper's
// improvement over the ≈0.85/0.8357/0.749 constants of the prior
// constant-size constructions is exactly the move to unbounded depth.
// This package computes r*(n) exactly (bisection on the rational
// predicate) and verifies selected (n, r) pump runs empirically.
//
// B2 — NTG long-route starvation. Borodin et al. prove NTG (and LIFO,
// FFS) unstable at arbitrarily low rates using routes of length
// Θ(1/r); section 5 of this paper cites that to argue its 1/(d+1)
// stability bound is near-optimal. The ladder scenario here measures
// the mechanism those constructions amplify: NTG lets crossing traffic
// with short remaining routes starve long-route packets, so long-route
// residence grows with the crossing load while universally stable
// policies keep it flat.
package baselines

import (
	"fmt"
	"math/big"

	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

// PumpsAtDepth reports whether a depth-n pipeline pumps at rate r,
// i.e. whether rⁿ < 2r − 1 (equivalently R_n < 1/2). Evaluated with
// big rationals: rⁿ overflows int64 for the denominators bisection
// uses.
func PumpsAtDepth(r rational.Rat, n int) bool {
	if n < 1 || r.Sign() <= 0 || !r.Less(rational.FromInt(1)) {
		return false
	}
	rb := new(big.Rat).SetFrac64(r.Num(), r.Den())
	lhs := big.NewRat(1, 1)
	for i := 0; i < n; i++ {
		lhs.Mul(lhs, rb)
	}
	rhs := new(big.Rat).Sub(new(big.Rat).Add(rb, rb), big.NewRat(1, 1))
	return lhs.Cmp(rhs) < 0
}

// DepthThreshold returns r*(n), the infimum rate at which a depth-n
// pipeline pumps, by bisection to within 1/2^bits. r*(n) is strictly
// decreasing in n with limit 1/2; for n <= 2 no rate below 1 works and
// the function returns 1.
func DepthThreshold(n int, bits int) rational.Rat {
	if bits < 1 || bits > 30 {
		panic("baselines: bits out of range")
	}
	if n <= 2 {
		// rⁿ < 2r−1 requires (1−r)² < 0 for n = 2; impossible.
		return rational.FromInt(1)
	}
	lo, hi := int64(1<<(bits-1)), int64(1)<<bits // rates lo/2^bits .. 1
	den := int64(1) << bits
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if PumpsAtDepth(rational.New(mid, den), n) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return rational.New(hi, den)
}

// DepthPumpResult verifies one (n, r) pump empirically.
type DepthPumpResult struct {
	N         int
	Rate      rational.Rat
	S         int64
	Predicted int64 // S' = floor(2S(1−R_n))
	Measured  int64
	// ShouldPump is the exact rⁿ < 2r−1 predicate.
	ShouldPump bool
}

// Pumped reports whether the measured queue grew.
func (r DepthPumpResult) Pumped() bool { return r.Measured > r.S }

// String summarizes the result.
func (r DepthPumpResult) String() string {
	return fmt.Sprintf("depth n=%d r=%v: S=%d → %d (predicted %d, pump expected %v)",
		r.N, r.Rate, r.S, r.Measured, r.Predicted, r.ShouldPump)
}

// RunDepthPump seeds C(S, F) on a two-gadget chain of depth n and runs
// one Lemma 3.6 pump at the given rate, returning predicted and
// measured S′. S is chosen as max(4·S0-from-the-formula, 4n) capped at
// sCap to keep sweeps affordable (sCap <= 0 means no cap).
func RunDepthPump(r rational.Rat, n int, sCap int64) DepthPumpResult {
	p := core.ParamsFor(r, n)
	s := 4 * p.S0
	if sCap > 0 && s > sCap {
		s = sCap
	}
	if min := int64(4 * n); s < min {
		s = min
	}
	c := gadget.NewChain(n, 2, false)
	e := sim.New(c.G, policy.FIFO{}, nil)
	c.SeedInvariant(e, 1, int(s))
	var rep core.PumpReport
	seq := adversary.NewSequence(core.PumpPhase(p, c, 1, nil, &rep))
	e.SetAdversary(seq)
	e.RunLeapUntil(func(*sim.Engine) bool { return seq.Finished() }, 8*s+int64(8*n))
	return DepthPumpResult{
		N:          n,
		Rate:       r,
		S:          s,
		Predicted:  p.SPrime(s),
		Measured:   rep.SMeasured,
		ShouldPump: PumpsAtDepth(r, n),
	}
}

// PumpGrid runs RunDepthPump at every (rate, depth) probe point across
// a stability.SweepGrid worker pool (workers <= 0 means GOMAXPROCS).
// Each probe builds its own chain, engine and adversary — workers never
// share simulator state — and results come back in input order, so a
// sweep's output is identical at any worker count. A probe that panics
// reports it in its own GridResult instead of sinking the sweep.
func PumpGrid(points []stability.Point, sCap int64, workers int) []stability.GridResult[stability.Point, DepthPumpResult] {
	return PumpGridOpt(points, sCap, workers, nil)
}

// PumpGridOpt is PumpGrid with sweep telemetry: onProgress (nil =
// none) receives probe start/finish reports — the hook behind
// cmd/sweep's -progress status line. Results are identical to
// PumpGrid at any worker count.
func PumpGridOpt(points []stability.Point, sCap int64, workers int, onProgress obs.ProgressFunc) []stability.GridResult[stability.Point, DepthPumpResult] {
	return stability.SweepGridOpt(points, func(p stability.Point) DepthPumpResult {
		return RunDepthPump(p.Rate, p.Depth, sCap)
	}, workers, onProgress)
}

// LadderScenario is the B2 starvation workload: a directed rail of L
// edges carries an aged convoy of K long-route packets, while every
// rail edge receives continuous crossing traffic at rate r via a
// 2-hop route (cross_i, rail_i). At a rail buffer a crossing packet
// has 1 remaining hop and a convoy packet has >= 2, so NTG serves the
// crossing packet whenever one is present: the convoy leaks at rate
// 1−r and drains in about K/(1−r)·(1+o(1)) steps. Time-priority
// policies (FIFO, LIS) and FTG let the older convoy through first.
// This is the starvation mechanism the low-rate NTG instability of
// Borodin et al. amplifies recursively with routes of length Θ(1/r).
type LadderScenario struct {
	L         int
	K         int // convoy size seeded at the first rail buffer
	CrossRate rational.Rat
	Steps     int64 // simulation horizon (must exceed the drain time)
}

// LadderResult reports one policy's behaviour on the ladder.
type LadderResult struct {
	Policy       string
	L, K         int
	DrainTime    int64 // step at which the last convoy packet was absorbed (0 = never)
	MaxResidence int64 // max steps any packet waited in one buffer
	Delivered    int64 // convoy packets absorbed within the horizon
}

// Drained reports whether the whole convoy was delivered.
func (r LadderResult) Drained() bool { return r.Delivered == int64(r.K) }

// String summarizes the result.
func (r LadderResult) String() string {
	return fmt.Sprintf("%s L=%d K=%d: drain %d, residence %d, delivered %d/%d",
		r.Policy, r.L, r.K, r.DrainTime, r.MaxResidence, r.Delivered, r.K)
}

// Ladder returns the ladder graph: rail edges rail1..railL and a
// crossing source edge cross1..crossL into each rail tail node.
func Ladder(l int) *graph.Graph {
	g := graph.New()
	prev := g.AddNode("m0")
	for i := 1; i <= l; i++ {
		cur := g.AddNode(fmt.Sprintf("m%d", i))
		g.AddEdge(prev, cur, fmt.Sprintf("rail%d", i))
		src := g.AddNode(fmt.Sprintf("c%d", i))
		g.AddEdge(src, prev, fmt.Sprintf("cross%d", i))
		prev = cur
	}
	return g
}

// Build wires the ladder workload without running it: crossing script
// installed, convoy seeded at the first rail buffer.
func (sc LadderScenario) Build(pol policy.Policy) *sim.Engine {
	g := Ladder(sc.L)
	rail := make([]graph.EdgeID, sc.L)
	for i := 0; i < sc.L; i++ {
		rail[i] = g.MustEdge(fmt.Sprintf("rail%d", i+1))
	}
	script := adversary.NewScript()
	for i := 1; i <= sc.L; i++ {
		script.AddStream(adversary.Stream{
			Name:  fmt.Sprintf("cross%d", i),
			Start: 1, Rate: sc.CrossRate, Budget: -1,
			Route: []graph.EdgeID{g.MustEdge(fmt.Sprintf("cross%d", i)), rail[i-1]},
			Tag:   "cross",
		})
	}
	e := sim.New(g, pol, script)
	for j := 0; j < sc.K; j++ {
		e.Seed(packet.Injection{Route: rail, Tag: "convoy"})
	}
	return e
}

// Run executes the ladder under the given policy.
func (sc LadderScenario) Run(pol policy.Policy) LadderResult {
	e := sc.Build(pol)

	res := LadderResult{Policy: pol.Name(), L: sc.L, K: sc.K}
	inFlight := func() int64 {
		var n int64
		e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) {
			if p.Tag == "convoy" {
				n++
			}
		})
		return n
	}
	for e.Now() < sc.Steps {
		e.Step()
		if res.DrainTime == 0 && inFlight() == 0 {
			res.DrainTime = e.Now()
			break
		}
	}
	res.MaxResidence = e.MaxResidence(true)
	res.Delivered = int64(sc.K) - inFlight()
	return res
}
