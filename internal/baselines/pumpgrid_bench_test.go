package baselines

import (
	"testing"

	"aqt/internal/rational"
	"aqt/internal/stability"
)

// benchGrid is the same 7-point rate grid cmd/bench's SweepParallel
// pair measures: r = 0.5 .. 0.8 at depth 6.
func benchGrid() []stability.Point {
	pts := make([]stability.Point, 7)
	for i := range pts {
		f := 0.5 + 0.3*float64(i)/6
		pts[i] = stability.Point{Rate: rational.FromFloat(f, 4096), Depth: 6}
	}
	return pts
}

func benchmarkPumpGrid(b *testing.B, workers int) {
	pts := benchGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := PumpGrid(pts, 400, workers)
		for _, r := range res {
			if r.Panic != "" {
				b.Fatalf("probe %v panicked: %s", r.Point, r.Panic)
			}
		}
	}
}

// BenchmarkSweepSequential and BenchmarkSweepParallel measure one full
// 7-point pump sweep per op through the stability.SweepGrid pool —
// first pinned to a single worker, then fanned across GOMAXPROCS. On a
// machine with GOMAXPROCS >= 4 the parallel variant's ns/op divides by
// ~min(7, GOMAXPROCS); at GOMAXPROCS = 1 the two match to within pool
// overhead.
func BenchmarkSweepSequential(b *testing.B) { benchmarkPumpGrid(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchmarkPumpGrid(b, 0) }
