package adversary

import (
	"errors"
	"fmt"

	"aqt/internal/graph"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// The validation errors behind the constructor panics, exported so
// declarative front ends (internal/scenario) can reject a bad spec with
// exactly the message a hand-built adversary would panic with.
var (
	ErrStreamRoute = errors.New("adversary: stream needs exactly one of Route and RouteFn")
	ErrStreamRate  = errors.New("adversary: stream rate must be positive")
	ErrBurstStream = errors.New("adversary: burst stream needs period >= 1, burst >= 1 and a route")
	ErrWindow      = errors.New("adversary: window must be >= 1")
	ErrMaxLen      = errors.New("adversary: maxLen must be >= 1")
)

// CheckStream validates a Stream specification. Script.AddStream panics
// with exactly this error on violation.
func CheckStream(st Stream) error {
	if (st.Route == nil) == (st.RouteFn == nil) {
		return ErrStreamRoute
	}
	if st.Rate.Sign() <= 0 {
		return ErrStreamRate
	}
	return nil
}

// CheckBurstStream validates a BurstStream specification.
// NewBurstScript panics with exactly this error on violation.
func CheckBurstStream(st BurstStream) error {
	if st.Period < 1 || st.Burst < 1 || len(st.Route) == 0 {
		return ErrBurstStream
	}
	return nil
}

// CheckWindow validates a (w,·) window length. NewWindowValidator and
// NewRandomWR panic with exactly this error on violation.
func CheckWindow(w int64) error {
	if w < 1 {
		return ErrWindow
	}
	return nil
}

// CheckWindowRate validates a full (w,r) pair up front: the window must
// be positive and the pair must be admissible in the sense of
// Definition 2.1 — floor(r·w) >= 1, otherwise the adversary may never
// inject a single packet in any window.
func CheckWindowRate(w int64, rate rational.Rat) error {
	if err := CheckWindow(w); err != nil {
		return err
	}
	if rate.Sign() <= 0 {
		return fmt.Errorf("adversary: window rate must be positive, got %v", rate)
	}
	if bound := rate.FloorMulInt(w); bound < 1 {
		return fmt.Errorf("adversary: (w,r) = (%d,%v) admits no injections: floor(r*w) = 0 (Definition 2.1)", w, rate)
	}
	return nil
}

// SameExecution compares the complete externally observable state of
// two engines: snapshot (modulo Stats.Nanos, which is wall-clock),
// residence, and every queue packet by packet — identity, full route,
// position, injection and arrival steps, and tag. Reroute counters are
// deliberately not compared: Remark 1 replays carry final routes up
// front, so an oblivious re-execution has Reroutes == 0 while matching
// the adaptive original everywhere it matters.
//
// It is the shared gate of the leap-vs-step harness and of the
// scenario differential matrix: two runs accepted by SameExecution are
// bit-identical in every quantity the paper's analysis reads.
func SameExecution(a, b *sim.Engine) error {
	sa, sb := a.Snap(), b.Snap()
	sa.Stats.Nanos, sb.Stats.Nanos = 0, 0
	if sa != sb {
		return fmt.Errorf("snapshot differs: %+v vs %+v", sa, sb)
	}
	if ra, rb := a.MaxResidence(true), b.MaxResidence(true); ra != rb {
		return fmt.Errorf("max residence differs: %d vs %d", ra, rb)
	}
	if a.Graph().NumEdges() != b.Graph().NumEdges() {
		return fmt.Errorf("different graphs: %d vs %d edges", a.Graph().NumEdges(), b.Graph().NumEdges())
	}
	for eid := 0; eid < a.Graph().NumEdges(); eid++ {
		id := graph.EdgeID(eid)
		qa, qb := a.Queue(id), b.Queue(id)
		if qa.Len() != qb.Len() {
			return fmt.Errorf("t=%d: queue at edge %d differs: %d vs %d packets",
				a.Now(), eid, qa.Len(), qb.Len())
		}
		for i := 0; i < qa.Len(); i++ {
			pa, pb := qa.At(i), qb.At(i)
			if pa.ID != pb.ID || pa.Pos != pb.Pos || pa.InjectedAt != pb.InjectedAt ||
				pa.ArrivedAt != pb.ArrivedAt || pa.Tag != pb.Tag || !sameRoute(pa.Route, pb.Route) {
				return fmt.Errorf("t=%d: edge %d slot %d differs: %v vs %v",
					a.Now(), eid, i, pa, pb)
			}
		}
	}
	return nil
}

func sameRoute(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
