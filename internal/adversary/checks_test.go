package adversary

import (
	"strings"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// TestCheckMessages pins the rejection messages of every adversary
// validation check, table-driven, so declarative spec errors
// (internal/scenario) can cite them verbatim and the constructor
// panics stay in sync with the exported Check helpers.
func TestCheckMessages(t *testing.T) {
	route := []graph.EdgeID{0}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{
			"stream without route",
			CheckStream(Stream{Rate: rational.New(1, 2)}),
			"adversary: stream needs exactly one of Route and RouteFn",
		},
		{
			"stream with both route and routefn",
			CheckStream(Stream{Rate: rational.New(1, 2), Route: route,
				RouteFn: func(int64) []graph.EdgeID { return route }}),
			"adversary: stream needs exactly one of Route and RouteFn",
		},
		{
			"stream with zero rate",
			CheckStream(Stream{Route: route}),
			"adversary: stream rate must be positive",
		},
		{
			"stream with negative rate",
			CheckStream(Stream{Route: route, Rate: rational.New(-1, 2)}),
			"adversary: stream rate must be positive",
		},
		{
			"burst stream with zero period",
			CheckBurstStream(BurstStream{Burst: 1, Route: route}),
			"adversary: burst stream needs period >= 1, burst >= 1 and a route",
		},
		{
			"burst stream with zero burst",
			CheckBurstStream(BurstStream{Period: 4, Route: route}),
			"adversary: burst stream needs period >= 1, burst >= 1 and a route",
		},
		{
			"burst stream without route",
			CheckBurstStream(BurstStream{Period: 4, Burst: 1}),
			"adversary: burst stream needs period >= 1, burst >= 1 and a route",
		},
		{
			"zero window",
			CheckWindow(0),
			"adversary: window must be >= 1",
		},
		{
			"negative window",
			CheckWindow(-3),
			"adversary: window must be >= 1",
		},
		{
			"window pair with zero window",
			CheckWindowRate(0, rational.New(1, 2)),
			"adversary: window must be >= 1",
		},
		{
			"window pair with zero rate",
			CheckWindowRate(10, rational.Rat{}),
			"adversary: window rate must be positive, got 0",
		},
		{
			"window pair below admissibility",
			CheckWindowRate(3, rational.New(1, 4)),
			"adversary: (w,r) = (3,1/4) admits no injections: floor(r*w) = 0 (Definition 2.1)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatalf("want error %q, got nil", tc.want)
			}
			if tc.err.Error() != tc.want {
				t.Errorf("message %q, want %q", tc.err.Error(), tc.want)
			}
		})
	}

	// Valid specs pass.
	if err := CheckStream(Stream{Route: route, Rate: rational.New(1, 2)}); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
	if err := CheckBurstStream(BurstStream{Period: 4, Burst: 2, Route: route}); err != nil {
		t.Errorf("valid burst stream rejected: %v", err)
	}
	if err := CheckWindowRate(4, rational.New(1, 4)); err != nil {
		t.Errorf("admissible (4,1/4) rejected: %v", err)
	}
}

// TestConstructorPanicsMatchChecks verifies the constructors panic with
// the exact error values the Check helpers return.
func TestConstructorPanicsMatchChecks(t *testing.T) {
	mustPanicWith := func(t *testing.T, want error, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic, want %v", want)
			}
			err, ok := r.(error)
			if !ok || err.Error() != want.Error() {
				t.Fatalf("panicked with %v, want %v", r, want)
			}
		}()
		fn()
	}
	route := []graph.EdgeID{0}
	mustPanicWith(t, ErrStreamRate, func() {
		NewScript(Stream{Route: route})
	})
	mustPanicWith(t, ErrStreamRoute, func() {
		NewScript(Stream{Rate: rational.New(1, 2)})
	})
	mustPanicWith(t, ErrBurstStream, func() {
		NewBurstScript(BurstStream{Period: 0, Burst: 1, Route: route})
	})
	mustPanicWith(t, ErrWindow, func() {
		NewWindowValidator(0, rational.New(1, 2))
	})
	mustPanicWith(t, ErrWindow, func() {
		NewRandomWR(graph.Line(3), 0, rational.New(1, 2), 1, 1)
	})
	mustPanicWith(t, ErrMaxLen, func() {
		NewRandomWR(graph.Line(3), 4, rational.New(1, 2), 0, 1)
	})
}

// TestRerouteOutsidePreStepMessage pins the engine's reroute-guard
// panic: a reroute during the send/receive/inject substeps must be
// rejected citing Lemma 3.3. (Reroutes from Adversary.PreStep and
// between steps are the allowed paths; E2/E6 exercise those.)
func TestRerouteOutsidePreStepMessage(t *testing.T) {
	g := graph.Line(3)
	e := sim.New(g, policy.FIFO{}, nil)
	p := e.Seed(packet.Injection{Route: []graph.EdgeID{g.MustEdge("e1")}})

	// A legal reroute between steps succeeds.
	e.ExtendRoute(p, []graph.EdgeID{g.MustEdge("e2")})

	// An in-substep reroute must panic with the Lemma 3.3 message.
	var inj injectThenReroute
	inj.p = p
	inj.ext = []graph.EdgeID{g.MustEdge("e3")}
	e.SetAdversary(&inj)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reroute inside Inject did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		want := "Lemma 3.3 reroutes are allowed only from Adversary.PreStep (or between steps)"
		if !strings.Contains(msg, "during the send/receive/inject substeps") ||
			!strings.Contains(msg, want) {
			t.Fatalf("panic message %q does not cite the reroute rule %q", msg, want)
		}
	}()
	e.Step()
}

// injectThenReroute reroutes from Inject (the forbidden substep).
type injectThenReroute struct {
	p   *packet.Packet
	ext []graph.EdgeID
}

func (*injectThenReroute) PreStep(*sim.Engine) {}

func (a *injectThenReroute) Inject(e *sim.Engine) []packet.Injection {
	e.ExtendRoute(a.p, a.ext)
	return nil
}
