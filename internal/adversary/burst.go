package adversary

import (
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// BurstStream injects packets in periodic bursts instead of smooth
// pacing: every Period steps starting at Start it injects Burst
// packets at once, until Budget packets have been injected (Budget < 0
// = unbounded).
//
// A (w,r) adversary (Definition 2.1) is allowed to inject floor(r·w)
// packets requiring one edge in a single step and then stay silent —
// burstiness the smooth Stream never exercises. BurstStream with
// Burst = floor(r·w) and Period = w is the extremal such adversary:
// any window of w consecutive steps contains at most one burst, so the
// (w,r) constraint holds with equality. The stability experiments use
// it to stress Theorems 4.1/4.3 at their worst case.
type BurstStream struct {
	Name   string
	Start  int64
	Period int64
	Burst  int64
	Budget int64
	Route  []graph.EdgeID
	Tag    string
}

// NewBurstScript wraps burst streams into an adversary.
func NewBurstScript(streams ...BurstStream) *BurstScript {
	for _, st := range streams {
		if err := CheckBurstStream(st); err != nil {
			panic(err)
		}
	}
	return &BurstScript{streams: streams}
}

// BurstScript is an Adversary emitting periodic bursts.
type BurstScript struct {
	streams []BurstStream
	sent    []int64
	lastT   int64 // last step Inject ran at (0 before the first)
}

// PreStep implements sim.Adversary.
func (b *BurstScript) PreStep(*sim.Engine) {}

// Inject implements sim.Adversary.
func (b *BurstScript) Inject(e *sim.Engine) []packet.Injection {
	if b.sent == nil {
		b.sent = make([]int64, len(b.streams))
	}
	t := e.Now()
	b.lastT = t
	var out []packet.Injection
	for i, st := range b.streams {
		if t < st.Start || (t-st.Start)%st.Period != 0 {
			continue
		}
		n := st.Burst
		if st.Budget >= 0 {
			if left := st.Budget - b.sent[i]; left < n {
				n = left
			}
		}
		for k := int64(0); k < n; k++ {
			out = append(out, packet.Injection{Route: st.Route, Tag: st.Tag, SourceName: st.Name})
		}
		b.sent[i] += n
	}
	return out
}

// StaticUntil implements sim.StaticAdversary: a burst schedule is a
// pure function of the step index, so the script is provably silent up
// to one step before the earliest upcoming burst of any stream with
// budget left. The horizon is computed from the last step Inject ran
// at; inside leaped windows it goes stale but only conservatively (the
// reported burst time stays in the future until the engine steps it).
func (b *BurstScript) StaticUntil() int64 {
	h := sim.Forever
	from := b.lastT + 1
	for i, st := range b.streams {
		if st.Budget >= 0 && b.sent != nil && b.sent[i] >= st.Budget {
			continue
		}
		next := st.Start
		if from > next {
			next += (from - st.Start + st.Period - 1) / st.Period * st.Period
		}
		if next-1 < h {
			h = next - 1
		}
	}
	return h
}

// MaxWindowBurst builds a bursty (w,r) adversary on g: one burst
// stream per edge, each following a greedy route of up to maxLen
// edges. Per-stream burst sizes are scaled by the worst per-edge route
// overlap so the combined usage of every edge stays within the
// floor(r·w)-per-window allowance — packets still arrive in single-
// step bursts, the regime smooth pacing never exercises. Streams are
// staggered across the window.
func MaxWindowBurst(g *graph.Graph, w int64, rate rational.Rat, maxLen int) *BurstScript {
	allowance := rate.FloorMulInt(w)
	if allowance < 1 {
		return NewBurstScript() // the adversary may not inject at all
	}
	routes := make([][]graph.EdgeID, g.NumEdges())
	usage := make([]int64, g.NumEdges())
	for eid := 0; eid < g.NumEdges(); eid++ {
		routes[eid] = greedyRoute(g, graph.EdgeID(eid), maxLen)
		for _, re := range routes[eid] {
			usage[re]++
		}
	}
	var maxUsage int64 = 1
	for _, u := range usage {
		if u > maxUsage {
			maxUsage = u
		}
	}
	burst := allowance / maxUsage
	if burst < 1 {
		return NewBurstScript()
	}
	var streams []BurstStream
	for eid := 0; eid < g.NumEdges(); eid++ {
		streams = append(streams, BurstStream{
			Name:   "burst",
			Start:  1 + int64(eid)%w,
			Period: w,
			Burst:  burst,
			Budget: -1,
			Route:  routes[eid],
		})
	}
	return NewBurstScript(streams...)
}

// greedyRoute extends a route from eid up to maxLen edges, picking
// among unvisited out-edges by a rotation keyed on the starting edge
// so that routes from different edges diverge (keeping per-edge route
// overlap — and hence the burst scale-down — small).
func greedyRoute(g *graph.Graph, eid graph.EdgeID, maxLen int) []graph.EdgeID {
	route := []graph.EdgeID{eid}
	visited := map[graph.NodeID]bool{g.Edge(eid).From: true, g.Edge(eid).To: true}
	cur := g.Edge(eid).To
	for len(route) < maxLen {
		var cands []graph.EdgeID
		for _, cand := range g.Out(cur) {
			if !visited[g.Edge(cand).To] {
				cands = append(cands, cand)
			}
		}
		if len(cands) == 0 {
			break
		}
		next := cands[(int(eid)+len(route))%len(cands)]
		route = append(route, next)
		cur = g.Edge(next).To
		visited[cur] = true
	}
	return route
}
