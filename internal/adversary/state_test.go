package adversary

import (
	"fmt"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// splitCompare runs build() for total steps directly and as a k-split
// checkpoint/restore pair, requiring identical executions. It returns
// the restored engine for further inspection.
func splitCompare(t *testing.T, build func() *sim.Engine, total, k int64) *sim.Engine {
	t.Helper()
	direct := build()
	direct.Run(total)
	half := build()
	half.Run(k)
	cp, err := half.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint at k=%d: %v", k, err)
	}
	cp2, err := sim.DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatalf("decode at k=%d: %v", k, err)
	}
	resumed := build()
	if err := resumed.Restore(cp2); err != nil {
		t.Fatalf("restore at k=%d: %v", k, err)
	}
	resumed.Run(total - k)
	if err := SameExecution(direct, resumed); err != nil {
		t.Fatalf("k=%d: %v", k, err)
	}
	return resumed
}

// TestScriptCheckpointAcrossCompaction: stream "a" exhausts its budget
// early and is compacted out of Script.streams; checkpoints taken both
// before and after the compaction must resume exactly. The restore
// path matches surviving streams by AddStream index and drops the
// compacted ones.
func TestScriptCheckpointAcrossCompaction(t *testing.T) {
	g := graph.Line(6)
	build := func() *sim.Engine {
		return sim.New(g, policy.FIFO{}, NewScript(
			Stream{Name: "a", Start: 1, Rate: rational.New(1, 1), Budget: 5,
				Route: []graph.EdgeID{g.MustEdge("e1"), g.MustEdge("e2")}},
			Stream{Name: "b", Start: 40, Rate: rational.New(1, 3), Budget: -1,
				Route: []graph.EdgeID{g.MustEdge("e3"), g.MustEdge("e4")}},
		))
	}
	for _, k := range []int64{1, 3, 20, 60} { // 3: "a" live; 20: compacted, "b" unstarted; 60: "b" live
		splitCompare(t, build, 120, k)
	}
}

// TestScriptCheckpointStateErrors covers the Script state machine's
// rejection paths.
func TestScriptCheckpointStateErrors(t *testing.T) {
	g := graph.Line(3)
	mk := func() *Script {
		return NewScript(Stream{Name: "a", Start: 1, Rate: rational.New(1, 2), Budget: 10,
			Route: []graph.EdgeID{g.MustEdge("e1")}})
	}
	src := mk()
	st, err := src.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}

	if err := mk().RestoreState(nil, sim.AdversaryState{Kind: "burst", Data: st.Data}); err == nil {
		t.Error("wrong kind accepted")
	}
	two := NewScript(
		Stream{Name: "a", Start: 1, Rate: rational.New(1, 2), Budget: 10, Route: []graph.EdgeID{g.MustEdge("e1")}},
		Stream{Name: "b", Start: 1, Rate: rational.New(1, 2), Budget: 10, Route: []graph.EdgeID{g.MustEdge("e2")}},
	)
	if err := two.RestoreState(nil, st); err == nil {
		t.Error("stream-count (added) mismatch accepted")
	}

	pre := mk()
	pre.SetPreStep(func(*sim.Engine) {})
	if _, err := pre.CheckpointState(); err == nil {
		t.Error("script with an opaque PreStep hook claimed to be checkpointable")
	}
}

// TestReplayCheckpointCursor: a Replay adversary's cursor must survive
// splits at every phase — before, during and after the recorded
// schedule.
func TestReplayCheckpointCursor(t *testing.T) {
	g := graph.Line(5)
	rec := []RecordedInjection{
		{Step: 2, Route: rt(g, "e1", "e2")},
		{Step: 2, Route: rt(g, "e2", "e3")},
		{Step: 7, Route: rt(g, "e1")},
		{Step: 31, Route: rt(g, "e3", "e4")},
	}
	build := func() *sim.Engine {
		return sim.New(g, policy.LIS{}, NewReplay(rec))
	}
	for _, k := range []int64{1, 5, 30, 50} {
		splitCompare(t, build, 80, k)
	}
}

// TestSequenceCheckpointPhases: a two-phase Sequence (paced script,
// then bursts) must resume from splits inside either phase and on the
// boundary. Restore re-enters the current phase and overwrites its
// leap horizon rather than re-running history.
func TestSequenceCheckpointPhases(t *testing.T) {
	g := graph.Line(5)
	build := func() *sim.Engine {
		p1End, p2End := int64(30), int64(90)
		seq := NewSequence(
			Phase{
				Name: "pump",
				Enter: func(*sim.Engine) sim.Adversary {
					return NewScript(Stream{Name: "p", Start: 1, Rate: rational.New(2, 3), Budget: -1,
						Route: rt(g, "e1", "e2")})
				},
				Done:  func(e *sim.Engine) bool { return e.Now() >= p1End },
				Until: &p1End,
			},
			Phase{
				Name: "burst",
				Enter: func(*sim.Engine) sim.Adversary {
					return NewBurstScript(BurstStream{Name: "q", Start: 1, Period: 8, Burst: 3, Budget: -1,
						Route: rt(g, "e3", "e4")})
				},
				Done:  func(e *sim.Engine) bool { return e.Now() >= p2End },
				Until: &p2End,
			},
		)
		return sim.New(g, policy.FIFO{}, seq)
	}
	for _, k := range []int64{1, 15, 30, 31, 70, 100} {
		splitCompare(t, build, 120, k)
	}
}

// TestRandomWRCheckpointDrawReplay: the RandomWR RNG stream position
// is restored by replaying the counted draws from the seed; splits at
// many points must leave the value stream — and hence the injection
// schedule — untouched.
func TestRandomWRCheckpointDrawReplay(t *testing.T) {
	build := func() *sim.Engine {
		g := graph.Ring(7)
		return sim.New(g, policy.NTG{}, NewRandomWR(g, 24, rational.New(1, 3), 3, 42))
	}
	for _, k := range []int64{1, 17, 100, 399} {
		splitCompare(t, build, 400, k)
	}
}

// TestRandomWRCheckpointSeedMismatch: state from one seed must refuse
// to restore into an adversary constructed with another.
func TestRandomWRCheckpointSeedMismatch(t *testing.T) {
	g := graph.Ring(4)
	a := NewRandomWR(g, 10, rational.New(1, 2), 2, 7)
	e := sim.New(g, policy.FIFO{}, a)
	e.Run(20)
	st, err := a.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	other := NewRandomWR(g, 10, rational.New(1, 2), 2, 8)
	if err := other.RestoreState(nil, st); err == nil {
		t.Error("seed mismatch accepted")
	}
}

// TestWindowUsageRestoreRejects: hostile usage states must be rejected
// with errors, never panics.
func TestWindowUsageRestoreRejects(t *testing.T) {
	for i, us := range []UsageState{
		{{Edge: 0, Times: nil}}, // empty ring
		{{Edge: 2, Times: []int64{1}}, {Edge: 1, Times: []int64{1}}}, // not increasing
		{{Edge: 0, Times: []int64{5, 3}}},                            // unsorted times
	} {
		wv := NewWindowValidator(10, rational.New(1, 2))
		if err := wv.RestoreUsage(us); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestAdversaryKindMismatch: every adversary kind refuses a blob
// stamped with another kind.
func TestAdversaryKindMismatch(t *testing.T) {
	g := graph.Line(3)
	bad := sim.AdversaryState{Kind: "nope", Data: []byte(`{}`)}
	targets := []sim.CheckpointableAdversary{
		NewScript(Stream{Name: "a", Start: 1, Rate: rational.New(1, 2), Budget: 1, Route: rt(g, "e1")}),
		NewBurstScript(BurstStream{Name: "b", Start: 1, Period: 2, Burst: 1, Budget: 1, Route: rt(g, "e1")}),
		NewReplay(nil),
		NewSequence(),
		NewRandomWR(g, 4, rational.New(1, 2), 1, 1),
	}
	for _, a := range targets {
		if err := a.RestoreState(nil, bad); err == nil {
			t.Errorf("%T accepted kind %q", a, bad.Kind)
		}
	}
}

// TestPacerRestore: Pacer.Restore must reproduce the exact emission
// schedule from any (ticks, sent) position of a reference pacer.
func TestPacerRestore(t *testing.T) {
	for _, rate := range []rational.Rat{rational.New(1, 3), rational.New(2, 5), rational.New(7, 4)} {
		rate := rate
		t.Run(fmt.Sprint(rate), func(t *testing.T) {
			ref := rational.NewPacer(rate)
			var refOut []int64
			for i := 0; i < 100; i++ {
				refOut = append(refOut, ref.Tick())
			}
			for _, k := range []int{0, 1, 37, 99} {
				probe := rational.NewPacer(rate)
				for i := 0; i < k; i++ {
					probe.Tick()
				}
				fork := rational.NewPacer(rate)
				fork.Restore(probe.Ticks(), probe.Emitted())
				for i := k; i < 100; i++ {
					if got := fork.Tick(); got != refOut[i] {
						t.Fatalf("k=%d tick %d: %d, want %d", k, i, got, refOut[i])
					}
				}
			}
		})
	}
}
