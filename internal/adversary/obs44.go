package adversary

import (
	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
)

// Observation 4.4 of the paper: any sequence of packets given by a
// (w,r) adversary that starts with an S-initial-configuration can be
// given by a (w*, r*) adversary starting from empty buffers, for any
// r* > r and w* = ceil((S + w + 1) / (r* - r)). The new adversary
// injects the initial configuration at step 1 and replays the original
// adversary's step-t injections at step t+1.

// WStar returns the window size w* = ceil((S + w + 1)/(r* - r)) of
// Observation 4.4. It panics unless rStar > r.
func WStar(s, w int64, r, rStar rational.Rat) int64 {
	diff := rStar.Sub(r)
	if diff.Sign() <= 0 {
		panic("adversary: Observation 4.4 needs r* > r")
	}
	return rational.FromInt(s + w + 1).Div(diff).Ceil()
}

// MaxEdgeRequirement returns S, the largest number of seed packets
// requiring any single edge — the S of "S-initial-configuration".
func MaxEdgeRequirement(seeds []packet.Injection) int64 {
	counts := make(map[graph.EdgeID]int64)
	var max int64
	for _, inj := range seeds {
		seen := make(map[graph.EdgeID]bool, len(inj.Route))
		for _, e := range inj.Route {
			if seen[e] {
				continue
			}
			seen[e] = true
			counts[e]++
			if counts[e] > max {
				max = counts[e]
			}
		}
	}
	return max
}

// Observation44 transforms a scripted adversary plus an initial
// configuration into an equivalent adversary that starts from empty
// buffers: the seeds are injected in one burst at step 1, and every
// original stream is delayed by one step. By Observation 4.4 the
// result satisfies the (w*, r*) constraint for any r* exceeding the
// original rate, with w* = WStar(S, w, r, r*) and S =
// MaxEdgeRequirement(seeds) — which the validators confirm on the
// resulting execution.
func Observation44(streams []Stream, seeds []packet.Injection) *Script {
	out := NewScript()
	if len(seeds) > 0 {
		burst := make([]packet.Injection, len(seeds))
		copy(burst, seeds)
		out.AddStream(Stream{
			Name:   "initial-config-burst",
			Start:  1,
			Rate:   rational.FromInt(int64(len(burst))),
			Budget: int64(len(burst)),
			RouteFn: func(i int64) []graph.EdgeID {
				return burst[i].Route
			},
			Tag: "seed",
		})
	}
	for _, st := range streams {
		shifted := st
		shifted.Start = st.Start + 1
		out.AddStream(shifted)
	}
	return out
}
