package adversary

import "aqt/internal/policy"

func fifoPol() policy.Policy { return policy.FIFO{} }
