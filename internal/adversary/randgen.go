package adversary

import (
	"math/rand"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// RandomWR generates random traffic that provably complies with the
// (w,r) adversary constraint of Definition 2.1: in every window of w
// consecutive steps, at most floor(r·w) injected packets require any
// single edge.
//
// Admission control is exact: a candidate route is admitted at step t
// only if, for each of its edges, the count of admitted packets
// requiring that edge within the trailing window (t-w, t] stays within
// the bound. Because any length-w window is a trailing window of its
// last step, this check enforces the definition for all windows.
//
// Routes are random simple paths: from a random start node the walk
// follows uniformly random outgoing edges, avoiding node revisits, up
// to MaxLen hops (at least 1). The generator is deterministic for a
// fixed seed.
type RandomWR struct {
	W        int64
	Rate     rational.Rat
	MaxLen   int
	Attempts int // candidate routes tried per step (default 4)

	g       *graph.Graph
	rng     *rand.Rand
	history map[graph.EdgeID][]int64 // admitted injection times per edge

	// Per-step scratch, reused across Inject calls so steady-state
	// generation is allocation-free except for admitted routes. The
	// engine consumes the returned injection slice within the same
	// step, so recycling `out` on the next call is safe.
	out     []packet.Injection
	route   []graph.EdgeID
	cands   []graph.EdgeID
	visited []int64 // generation stamps, one per node
	gen     int64
}

// NewRandomWR returns a generator over g. maxLen bounds route length
// (the parameter d of the stability theorems). seed fixes the stream.
func NewRandomWR(g *graph.Graph, w int64, rate rational.Rat, maxLen int, seed int64) *RandomWR {
	if w < 1 {
		panic("adversary: window must be >= 1")
	}
	if maxLen < 1 {
		panic("adversary: maxLen must be >= 1")
	}
	return &RandomWR{
		W:        w,
		Rate:     rate,
		MaxLen:   maxLen,
		Attempts: 4,
		g:        g,
		rng:      rand.New(rand.NewSource(seed)),
		history:  make(map[graph.EdgeID][]int64),
		visited:  make([]int64, g.NumNodes()),
	}
}

// PreStep implements sim.Adversary.
func (a *RandomWR) PreStep(*sim.Engine) {}

// Inject implements sim.Adversary.
func (a *RandomWR) Inject(e *sim.Engine) []packet.Injection {
	t := e.Now()
	bound := a.Rate.FloorMulInt(a.W)
	if bound < 1 {
		// The adversary cannot inject at all with floor(r·w) == 0;
		// Definition 2.1 then admits no packets in any window.
		return nil
	}
	a.out = a.out[:0]
	for i := 0; i < a.Attempts; i++ {
		route := a.randomRoute()
		if route == nil {
			continue
		}
		if a.admit(t, route, bound) {
			// The scratch route is recycled for the next candidate;
			// admitted routes get their own exact-size copy.
			owned := append([]graph.EdgeID(nil), route...)
			a.out = append(a.out, packet.Injection{Route: owned, SourceName: "randwr"})
		}
	}
	return a.out
}

// admit checks the trailing-window bound for every edge on the route
// and records the injection when admitted.
func (a *RandomWR) admit(t int64, route []graph.EdgeID, bound int64) bool {
	for _, eid := range route {
		if int64(a.trailingCount(eid, t))+1 > bound {
			return false
		}
	}
	for _, eid := range route {
		a.history[eid] = append(a.history[eid], t)
	}
	return true
}

// trailingCount returns how many admitted packets requiring eid were
// injected in (t-w, t]. It prunes old history as it goes.
func (a *RandomWR) trailingCount(eid graph.EdgeID, t int64) int {
	ts := a.history[eid]
	cut := 0
	for cut < len(ts) && ts[cut] <= t-a.W {
		cut++
	}
	if cut > 0 {
		ts = ts[cut:]
		a.history[eid] = ts
	}
	return len(ts)
}

// randomRoute builds a random simple path of 1..MaxLen edges into the
// reused scratch slice, or nil if the start node is a sink. The result
// is valid only until the next call.
func (a *RandomWR) randomRoute() []graph.EdgeID {
	start := graph.NodeID(a.rng.Intn(a.g.NumNodes()))
	targetLen := 1 + a.rng.Intn(a.MaxLen)
	a.gen++
	a.route = a.route[:0]
	a.visited[start] = a.gen
	cur := start
	for len(a.route) < targetLen {
		outs := a.g.Out(cur)
		// Collect candidate edges whose heads are unvisited.
		a.cands = a.cands[:0]
		for _, eid := range outs {
			if a.visited[a.g.Edge(eid).To] != a.gen {
				a.cands = append(a.cands, eid)
			}
		}
		if len(a.cands) == 0 {
			break
		}
		eid := a.cands[a.rng.Intn(len(a.cands))]
		a.route = append(a.route, eid)
		cur = a.g.Edge(eid).To
		a.visited[cur] = a.gen
	}
	if len(a.route) == 0 {
		return nil
	}
	return a.route
}
