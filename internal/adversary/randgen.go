package adversary

import (
	"math/rand"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// RandomWR generates random traffic that provably complies with the
// (w,r) adversary constraint of Definition 2.1: in every window of w
// consecutive steps, at most floor(r·w) injected packets require any
// single edge.
//
// Admission control is exact: a candidate route is admitted at step t
// only if, for each of its edges, the count of admitted packets
// requiring that edge within the trailing window (t-w, t] stays within
// the bound. Because any length-w window is a trailing window of its
// last step, this check enforces the definition for all windows.
//
// Routes are random simple paths: from a random start node the walk
// follows uniformly random outgoing edges, avoiding node revisits, up
// to MaxLen hops (at least 1). The generator is deterministic for a
// fixed seed.
//
// Steady-state generation is allocation-free: admission history lives
// in per-edge timestamp rings (admission bounds each ring's occupancy
// by floor(r·w), so rings grow geometrically to at most that capacity
// and are then recycled forever), and admitted routes are carved out of
// a per-step arena. Returned injections are valid until the next Inject
// call; the engine consumes them within the same step.
type RandomWR struct {
	W        int64
	Rate     rational.Rat
	MaxLen   int
	Attempts int // candidate routes tried per step (default 4)

	g     *graph.Graph
	rng   *rand.Rand
	src   *countingSource // the rng's source, counting draws for checkpoint/restore
	seed  int64
	bound int64 // floor(Rate·W): per-edge cap in any w-window

	// Per-edge admission history: ring i holds the injection times of
	// admitted packets requiring edge i, oldest at head[i], newest at
	// (head[i]+count[i]-1) mod len. Entries older than the trailing
	// window are pruned in place by trailingCount.
	rings [][]int64
	head  []int32
	count []int32

	// Per-step scratch, reused across Inject calls so steady-state
	// generation is allocation-free. routeBuf backs the routes of the
	// injections returned by the current Inject call.
	out      []packet.Injection
	routeBuf []graph.EdgeID
	route    []graph.EdgeID
	cands    []graph.EdgeID
	visited  []int64 // generation stamps, one per node
	gen      int64
}

// NewRandomWR returns a generator over g. maxLen bounds route length
// (the parameter d of the stability theorems). seed fixes the stream.
func NewRandomWR(g *graph.Graph, w int64, rate rational.Rat, maxLen int, seed int64) *RandomWR {
	if err := CheckWindow(w); err != nil {
		panic(err)
	}
	if maxLen < 1 {
		panic(ErrMaxLen)
	}
	// The rng source is wrapped in a draw counter so the stream
	// position can be checkpointed and replayed (see checkpoint.go).
	// Every draw RandomWR makes is an Intn, which reaches the source
	// through Int63 only, so hiding the underlying Source64 does not
	// change the value stream.
	src := &countingSource{src: rand.NewSource(seed)}
	return &RandomWR{
		W:        w,
		Rate:     rate,
		MaxLen:   maxLen,
		Attempts: 4,
		g:        g,
		rng:      rand.New(src),
		src:      src,
		seed:     seed,
		bound:    rate.FloorMulInt(w),
		rings:    make([][]int64, g.NumEdges()),
		head:     make([]int32, g.NumEdges()),
		count:    make([]int32, g.NumEdges()),
		visited:  make([]int64, g.NumNodes()),
	}
}

// PreStep implements sim.Adversary.
func (a *RandomWR) PreStep(*sim.Engine) {}

// Inject implements sim.Adversary.
func (a *RandomWR) Inject(e *sim.Engine) []packet.Injection {
	t := e.Now()
	if a.bound < 1 {
		// The adversary cannot inject at all with floor(r·w) == 0;
		// Definition 2.1 then admits no packets in any window.
		return nil
	}
	a.out = a.out[:0]
	a.routeBuf = a.routeBuf[:0]
	for i := 0; i < a.Attempts; i++ {
		route := a.randomRoute()
		if route == nil {
			continue
		}
		if a.admit(t, route) {
			// The scratch route is recycled for the next candidate;
			// admitted routes move into the per-step arena. Capping the
			// slice keeps later arena appends from clobbering it.
			start := len(a.routeBuf)
			a.routeBuf = append(a.routeBuf, route...)
			owned := a.routeBuf[start:len(a.routeBuf):len(a.routeBuf)]
			a.out = append(a.out, packet.Injection{Route: owned, SourceName: "randwr"})
		}
	}
	return a.out
}

// admit checks the trailing-window bound for every edge on the route
// and records the injection time in each edge's ring when admitted.
func (a *RandomWR) admit(t int64, route []graph.EdgeID) bool {
	for _, eid := range route {
		if int64(a.trailingCount(eid, t))+1 > a.bound {
			return false
		}
	}
	for _, eid := range route {
		a.push(eid, t)
	}
	return true
}

// trailingCount returns how many admitted packets requiring eid were
// injected in (t-w, t]. It prunes expired entries from the ring head as
// it goes.
func (a *RandomWR) trailingCount(eid graph.EdgeID, t int64) int {
	ts := a.rings[eid]
	h, n := a.head[eid], a.count[eid]
	for n > 0 && ts[h] <= t-a.W {
		h++
		if int(h) == len(ts) {
			h = 0
		}
		n--
	}
	a.head[eid], a.count[eid] = h, n
	return int(n)
}

// push appends t to eid's ring, growing it geometrically up to the
// admission bound (after which occupancy can never exceed capacity, so
// the ring is recycled with no further allocation).
func (a *RandomWR) push(eid graph.EdgeID, t int64) {
	ts := a.rings[eid]
	h, n := a.head[eid], a.count[eid]
	if int(n) == len(ts) {
		grow := 2 * len(ts)
		if grow < 4 {
			grow = 4
		}
		if int64(grow) > a.bound {
			grow = int(a.bound)
		}
		fresh := make([]int64, grow)
		for i := int32(0); i < n; i++ {
			fresh[i] = ts[(h+i)%int32(len(ts))]
		}
		ts, h = fresh, 0
		a.rings[eid], a.head[eid] = ts, h
	}
	ts[(int(h)+int(n))%len(ts)] = t
	a.count[eid] = n + 1
}

// randomRoute builds a random simple path of 1..MaxLen edges into the
// reused scratch slice, or nil if the start node is a sink. The result
// is valid only until the next call.
func (a *RandomWR) randomRoute() []graph.EdgeID {
	start := graph.NodeID(a.rng.Intn(a.g.NumNodes()))
	targetLen := 1 + a.rng.Intn(a.MaxLen)
	a.gen++
	a.route = a.route[:0]
	a.visited[start] = a.gen
	cur := start
	for len(a.route) < targetLen {
		outs := a.g.Out(cur)
		// Collect candidate edges whose heads are unvisited.
		a.cands = a.cands[:0]
		for _, eid := range outs {
			if a.visited[a.g.Edge(eid).To] != a.gen {
				a.cands = append(a.cands, eid)
			}
		}
		if len(a.cands) == 0 {
			break
		}
		eid := a.cands[a.rng.Intn(len(a.cands))]
		a.route = append(a.route, eid)
		cur = a.g.Edge(eid).To
		a.visited[cur] = a.gen
	}
	if len(a.route) == 0 {
		return nil
	}
	return a.route
}
