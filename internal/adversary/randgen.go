package adversary

import (
	"math/rand"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// RandomWR generates random traffic that provably complies with the
// (w,r) adversary constraint of Definition 2.1: in every window of w
// consecutive steps, at most floor(r·w) injected packets require any
// single edge.
//
// Admission control is exact: a candidate route is admitted at step t
// only if, for each of its edges, the count of admitted packets
// requiring that edge within the trailing window (t-w, t] stays within
// the bound. Because any length-w window is a trailing window of its
// last step, this check enforces the definition for all windows.
//
// Routes are random simple paths: from a random start node the walk
// follows uniformly random outgoing edges, avoiding node revisits, up
// to MaxLen hops (at least 1). The generator is deterministic for a
// fixed seed.
type RandomWR struct {
	W        int64
	Rate     rational.Rat
	MaxLen   int
	Attempts int // candidate routes tried per step (default 4)

	g       *graph.Graph
	rng     *rand.Rand
	history map[graph.EdgeID][]int64 // admitted injection times per edge
}

// NewRandomWR returns a generator over g. maxLen bounds route length
// (the parameter d of the stability theorems). seed fixes the stream.
func NewRandomWR(g *graph.Graph, w int64, rate rational.Rat, maxLen int, seed int64) *RandomWR {
	if w < 1 {
		panic("adversary: window must be >= 1")
	}
	if maxLen < 1 {
		panic("adversary: maxLen must be >= 1")
	}
	return &RandomWR{
		W:        w,
		Rate:     rate,
		MaxLen:   maxLen,
		Attempts: 4,
		g:        g,
		rng:      rand.New(rand.NewSource(seed)),
		history:  make(map[graph.EdgeID][]int64),
	}
}

// PreStep implements sim.Adversary.
func (a *RandomWR) PreStep(*sim.Engine) {}

// Inject implements sim.Adversary.
func (a *RandomWR) Inject(e *sim.Engine) []packet.Injection {
	t := e.Now()
	bound := a.Rate.FloorMulInt(a.W)
	if bound < 1 {
		// The adversary cannot inject at all with floor(r·w) == 0;
		// Definition 2.1 then admits no packets in any window.
		return nil
	}
	var out []packet.Injection
	for i := 0; i < a.Attempts; i++ {
		route := a.randomRoute()
		if route == nil {
			continue
		}
		if a.admit(t, route, bound) {
			out = append(out, packet.Injection{Route: route, SourceName: "randwr"})
		}
	}
	return out
}

// admit checks the trailing-window bound for every edge on the route
// and records the injection when admitted.
func (a *RandomWR) admit(t int64, route []graph.EdgeID, bound int64) bool {
	for _, eid := range route {
		if int64(a.trailingCount(eid, t))+1 > bound {
			return false
		}
	}
	for _, eid := range route {
		a.history[eid] = append(a.history[eid], t)
	}
	return true
}

// trailingCount returns how many admitted packets requiring eid were
// injected in (t-w, t]. It prunes old history as it goes.
func (a *RandomWR) trailingCount(eid graph.EdgeID, t int64) int {
	ts := a.history[eid]
	cut := 0
	for cut < len(ts) && ts[cut] <= t-a.W {
		cut++
	}
	if cut > 0 {
		ts = ts[cut:]
		a.history[eid] = ts
	}
	return len(ts)
}

// randomRoute builds a random simple path of 1..MaxLen edges, or nil
// if the start node is a sink.
func (a *RandomWR) randomRoute() []graph.EdgeID {
	start := graph.NodeID(a.rng.Intn(a.g.NumNodes()))
	targetLen := 1 + a.rng.Intn(a.MaxLen)
	route := make([]graph.EdgeID, 0, targetLen)
	visited := map[graph.NodeID]bool{start: true}
	cur := start
	for len(route) < targetLen {
		outs := a.g.Out(cur)
		// Collect candidate edges whose heads are unvisited.
		var cands []graph.EdgeID
		for _, eid := range outs {
			if !visited[a.g.Edge(eid).To] {
				cands = append(cands, eid)
			}
		}
		if len(cands) == 0 {
			break
		}
		eid := cands[a.rng.Intn(len(cands))]
		route = append(route, eid)
		cur = a.g.Edge(eid).To
		visited[cur] = true
	}
	if len(route) == 0 {
		return nil
	}
	return route
}
