package adversary

import (
	"testing"
	"testing/quick"

	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestBurstStreamSchedule(t *testing.T) {
	g := graph.Line(1)
	b := NewBurstScript(BurstStream{
		Start: 3, Period: 5, Burst: 4, Budget: 10, Route: rt(g, "e1"),
	})
	e := sim.New(g, fifo(), b)
	injectedAt := map[int64]int64{}
	prev := int64(0)
	for i := 0; i < 20; i++ {
		e.Step()
		if d := e.Injected() - prev; d > 0 {
			injectedAt[e.Now()] = d
		}
		prev = e.Injected()
	}
	// Bursts at 3 (4 pkts), 8 (4 pkts), 13 (2 pkts, budget exhausted).
	want := map[int64]int64{3: 4, 8: 4, 13: 2}
	for step, n := range want {
		if injectedAt[step] != n {
			t.Errorf("step %d: injected %d, want %d", step, injectedAt[step], n)
		}
	}
	if e.Injected() != 10 {
		t.Errorf("total injected %d, want 10", e.Injected())
	}
}

func TestBurstScriptValidation(t *testing.T) {
	g := graph.Line(1)
	for name, st := range map[string]BurstStream{
		"zero period": {Period: 0, Burst: 1, Route: rt(g, "e1")},
		"zero burst":  {Period: 2, Burst: 0, Route: rt(g, "e1")},
		"no route":    {Period: 2, Burst: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewBurstScript(st)
		}()
	}
}

func TestMaxWindowBurstCompliance(t *testing.T) {
	g := graph.Complete(5)
	w := int64(24)
	rate := rational.New(1, 4)
	adv := MaxWindowBurst(g, w, rate, 3)
	wv := NewWindowValidator(w, rate)
	e := sim.New(g, fifo(), adv)
	e.AddObserver(wv)
	e.Run(500)
	if e.Injected() == 0 {
		t.Fatal("burst adversary injected nothing")
	}
	if err := wv.Check(); err != nil {
		t.Errorf("bursty adversary violated (w,r): %v", err)
	}
	// Burstiness: some step must have carried more than one injection
	// on a single edge's stream (burst size > 1 when allowance allows).
	if rate.FloorMulInt(w) >= 2 && e.Injected() < 2 {
		t.Error("no bursts emitted")
	}
}

func TestMaxWindowBurstZeroAllowance(t *testing.T) {
	g := graph.Complete(3)
	adv := MaxWindowBurst(g, 4, rational.New(1, 8), 2) // floor(0.5) = 0
	e := sim.New(g, fifo(), adv)
	e.Run(50)
	if e.Injected() != 0 {
		t.Errorf("injected %d with zero allowance", e.Injected())
	}
}

// Property: MaxWindowBurst is (w,r)-compliant for arbitrary parameters.
func TestQuickMaxWindowBurstCompliant(t *testing.T) {
	f := func(wRaw, num, den, maxLen uint8) bool {
		w := int64(wRaw%30) + 2
		n := int64(num%6) + 1
		d := n + int64(den%8) + 1
		rate := rational.New(n, d)
		g := graph.Complete(4)
		adv := MaxWindowBurst(g, w, rate, int(maxLen%3)+1)
		wv := NewWindowValidator(w, rate)
		e := sim.New(g, fifo(), adv)
		e.AddObserver(wv)
		e.Run(200)
		return wv.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTheorem41HoldsUnderBursts(t *testing.T) {
	// The stability bounds must survive the extremal bursty adversary,
	// not just smooth pacing.
	d := 3
	w := int64(12 * (d + 1))
	rate := rational.New(1, int64(d+1))
	for _, pol := range policy.All() {
		g := graph.Complete(d + 2)
		adv := MaxWindowBurst(g, w, rate, d)
		e := sim.New(g, pol, adv)
		e.Run(4000)
		if e.Injected() == 0 {
			t.Fatal("no injections")
		}
		bound := rate.FloorMulInt(w)
		if got := e.MaxResidence(true); got > bound {
			t.Errorf("%s: bursty residence %d > bound %d", pol.Name(), got, bound)
		}
	}
}
