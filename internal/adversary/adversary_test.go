package adversary

import (
	"testing"
	"testing/quick"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func rt(g *graph.Graph, names ...string) []graph.EdgeID {
	r := make([]graph.EdgeID, len(names))
	for i, n := range names {
		r[i] = g.MustEdge(n)
	}
	return r
}

func TestStreamPacing(t *testing.T) {
	g := graph.Line(1)
	s := NewScript(Stream{
		Name:   "s",
		Start:  1,
		Rate:   rational.New(1, 2),
		Budget: 5,
		Route:  rt(g, "e1"),
	})
	e := sim.New(g, fifo(), s)
	e.Run(20)
	if e.Injected() != 5 {
		t.Errorf("injected %d, want 5", e.Injected())
	}
	if !s.Idle() {
		t.Error("script should be idle after budget exhausted")
	}
}

func TestStreamStartDelay(t *testing.T) {
	g := graph.Line(1)
	s := NewScript(Stream{
		Start:  5,
		Rate:   rational.FromInt(1),
		Budget: 3,
		Route:  rt(g, "e1"),
	})
	e := sim.New(g, fifo(), s)
	e.Run(4)
	if e.Injected() != 0 {
		t.Fatal("stream injected before its start")
	}
	e.Run(3)
	if e.Injected() != 3 {
		t.Errorf("injected %d, want 3", e.Injected())
	}
}

func TestStreamRouteFn(t *testing.T) {
	g := graph.Line(2)
	short := rt(g, "e1")
	long := rt(g, "e1", "e2")
	s := NewScript(Stream{
		Start:  1,
		Rate:   rational.FromInt(1),
		Budget: 4,
		RouteFn: func(k int64) []graph.EdgeID {
			if k < 2 {
				return short
			}
			return long
		},
	})
	var routes []int
	e := sim.New(g, fifo(), s)
	tr := &sim.Tracer{}
	e.AddObserver(tr)
	e.Run(6)
	for _, ev := range tr.Events() {
		routes = append(routes, len(ev.Route))
	}
	want := []int{1, 1, 2, 2}
	if len(routes) != 4 {
		t.Fatalf("routes = %v", routes)
	}
	for i := range want {
		if routes[i] != want[i] {
			t.Errorf("packet %d route length %d, want %d", i, routes[i], want[i])
		}
	}
}

func TestStreamValidation(t *testing.T) {
	g := graph.Line(1)
	for name, st := range map[string]Stream{
		"both route specs": {Rate: rational.FromInt(1), Route: rt(g, "e1"),
			RouteFn: func(int64) []graph.EdgeID { return nil }},
		"no route":  {Rate: rational.FromInt(1)},
		"zero rate": {Rate: rational.FromInt(0), Route: rt(g, "e1")},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewScript(st)
		}()
	}
}

func TestUnboundedBudget(t *testing.T) {
	g := graph.Line(1)
	s := NewScript(Stream{Start: 1, Rate: rational.New(1, 3), Budget: -1, Route: rt(g, "e1")})
	e := sim.New(g, fifo(), s)
	e.Run(99)
	if e.Injected() != 33 {
		t.Errorf("injected %d, want 33", e.Injected())
	}
	if s.Idle() {
		t.Error("unbounded stream must not go idle")
	}
	if s.PendingBudget() <= 0 {
		t.Error("pending budget should be large")
	}
}

func TestSequencePhases(t *testing.T) {
	g := graph.Line(1)
	mk := func(budget int64) func(e *sim.Engine) sim.Adversary {
		return func(e *sim.Engine) sim.Adversary {
			return NewScript(Stream{
				Start: e.Now(), Rate: rational.FromInt(1), Budget: budget, Route: rt(g, "e1"),
			})
		}
	}
	var entered []int
	seq := NewSequence(
		Phase{Name: "p0", Enter: mk(2), Done: func(e *sim.Engine) bool { return e.Injected() >= 2 }},
		Phase{Name: "p1", Enter: mk(3), Done: func(e *sim.Engine) bool { return e.Injected() >= 5 }},
	)
	seq.OnPhaseChange(func(idx int, e *sim.Engine) { entered = append(entered, idx) })
	e := sim.New(g, fifo(), seq)
	e.Run(10)
	if !seq.Finished() {
		t.Fatalf("sequence not finished: %s", seq)
	}
	if e.Injected() != 5 {
		t.Errorf("injected %d, want 5", e.Injected())
	}
	if len(entered) != 2 || entered[0] != 0 || entered[1] != 1 {
		t.Errorf("entered = %v", entered)
	}
	if seq.PhaseName() != "done" {
		t.Errorf("PhaseName = %q", seq.PhaseName())
	}
}

func TestRateValidatorCompliantStream(t *testing.T) {
	g := graph.Line(1)
	rate := rational.New(3, 5)
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 200, Route: rt(g, "e1")})
	rv := NewRateValidator(rate)
	e := sim.New(g, fifo(), s)
	e.AddObserver(rv)
	e.Run(400)
	if err := rv.Check(); err != nil {
		t.Errorf("compliant stream flagged: %v", err)
	}
	if got := len(rv.EdgeInjections(g.MustEdge("e1"))); got != 200 {
		t.Errorf("recorded %d injections", got)
	}
}

func TestRateValidatorCatchesBurst(t *testing.T) {
	g := graph.Line(1)
	// Two packets in one step at rate 1/2: ceil(0.5*1) = 1 < 2.
	s := NewScript(Stream{Start: 1, Rate: rational.FromInt(2), Budget: 2, Route: rt(g, "e1")})
	rv := NewRateValidator(rational.New(1, 2))
	e := sim.New(g, fifo(), s)
	e.AddObserver(rv)
	e.Run(3)
	if err := rv.Check(); err == nil {
		t.Error("burst not flagged")
	} else if _, ok := err.(Violation); !ok {
		t.Errorf("error type %T", err)
	}
}

func TestRateValidatorIgnoresSeeds(t *testing.T) {
	g := graph.Line(1)
	rv := NewRateValidator(rational.New(1, 2))
	e := sim.New(g, fifo(), nil)
	e.AddObserver(rv)
	e.SeedN(100, packet.Inj(rt(g, "e1")...))
	e.Run(5)
	if err := rv.Check(); err != nil {
		t.Errorf("seeds must not count: %v", err)
	}
}

func TestRateValidatorChargesReroutes(t *testing.T) {
	// Edges added by a reroute are charged at the packet's injection
	// time. Saturate e2 at exactly rate 1, then reroute a packet
	// injected mid-interval onto e2: interval [1,10] now holds 11
	// packets against a bound of 10.
	g := graph.Line(2)
	e1, e2 := g.MustEdge("e1"), g.MustEdge("e2")
	rv := NewRateValidator(rational.FromInt(1))
	for tm := int64(1); tm <= 10; tm++ {
		rv.OnInject(tm, &packet.Packet{Route: []graph.EdgeID{e2}, InjectedAt: tm})
	}
	if err := rv.Check(); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	p := &packet.Packet{Route: []graph.EdgeID{e1, e2}, InjectedAt: 5}
	rv.OnReroute(8, p, []graph.EdgeID{e1})
	if err := rv.Check(); err == nil {
		t.Error("reroute overload not flagged")
	} else if v := err.(Violation); v.Edge != e2 || v.Count != v.Bound+1 {
		t.Errorf("violation = %+v", v)
	}
}

func TestWindowValidator(t *testing.T) {
	g := graph.Line(1)
	rate := rational.New(1, 2)
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 50, Route: rt(g, "e1")})
	wv := NewWindowValidator(10, rate)
	e := sim.New(g, fifo(), s)
	e.AddObserver(wv)
	e.Run(120)
	if wv.Bound() != 5 {
		t.Errorf("Bound = %d, want 5", wv.Bound())
	}
	if err := wv.Check(); err != nil {
		t.Errorf("compliant stream flagged: %v", err)
	}
}

func TestWindowValidatorCatchesViolation(t *testing.T) {
	g := graph.Line(1)
	s := NewScript(Stream{Start: 1, Rate: rational.FromInt(1), Budget: 6, Route: rt(g, "e1")})
	wv := NewWindowValidator(10, rational.New(1, 2))
	e := sim.New(g, fifo(), s)
	e.AddObserver(wv)
	e.Run(10)
	if err := wv.Check(); err == nil {
		t.Error("violation not flagged")
	}
}

func TestWindowValidatorPanicsOnBadW(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("w=0 did not panic")
		}
	}()
	NewWindowValidator(0, rational.New(1, 2))
}

func TestCheckBudgetMatchesCheckOnSmallRuns(t *testing.T) {
	g := graph.Line(1)
	rate := rational.New(2, 5)
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 60, Route: rt(g, "e1")})
	rv := NewRateValidator(rate)
	e := sim.New(g, fifo(), s)
	e.AddObserver(rv)
	e.Run(200)
	errA := rv.Check()
	errB := rv.CheckBudget(10, 50) // force the anchored path
	if (errA == nil) != (errB == nil) {
		t.Errorf("Check = %v, CheckBudget = %v", errA, errB)
	}
}

func TestSharedEdge(t *testing.T) {
	g := graph.Line(3)
	p1 := &packet.Packet{Route: rt(g, "e1", "e2", "e3"), Pos: 0}
	p2 := &packet.Packet{Route: rt(g, "e2", "e3"), Pos: 0}
	e, ok := SharedEdge([]*packet.Packet{p1, p2})
	if !ok || e != g.MustEdge("e2") {
		t.Errorf("SharedEdge = (%d,%v)", e, ok)
	}
	p3 := &packet.Packet{Route: rt(g, "e1"), Pos: 0}
	p4 := &packet.Packet{Route: rt(g, "e3"), Pos: 0}
	if _, ok := SharedEdge([]*packet.Packet{p3, p4}); ok {
		t.Error("disjoint routes reported a shared edge")
	}
	if _, ok := SharedEdge(nil); ok {
		t.Error("empty set reported a shared edge")
	}
}

func TestRerouterNewEdges(t *testing.T) {
	g := graph.Line(3)
	rate := rational.New(3, 5)
	rr := NewRerouter(rate)
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 4, Route: rt(g, "e1")})
	e := sim.New(g, fifo(), s)
	e.AddObserver(rr)
	// Seeds keep e1 backlogged so the population is nonempty (IsNew is
	// relative to the packets currently in the network).
	e.SeedN(10, packet.Inj(rt(g, "e1")...))
	e.Run(6)
	// e2, e3 untouched by injections: new. e1 is used recently: not new.
	if !rr.IsNew(e, g.MustEdge("e2")) || !rr.IsNew(e, g.MustEdge("e3")) {
		t.Error("unused edges should be new")
	}
	if rr.IsNew(e, g.MustEdge("e1")) {
		t.Error("recently used edge must not be new")
	}
}

func TestExtendBatch(t *testing.T) {
	g := graph.Line(3)
	rate := rational.New(3, 5)
	rr := NewRerouter(rate)
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 3, Route: rt(g, "e1")})
	e := sim.New(g, fifo(), s)
	e.AddObserver(rr)
	e.Run(2)
	var pkts []*packet.Packet
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) { pkts = append(pkts, p) })
	if len(pkts) == 0 {
		t.Fatal("no queued packets")
	}
	err := rr.ExtendBatch(e, pkts, func(p *packet.Packet) []graph.EdgeID {
		return rt(g, "e2", "e3")
	})
	if err != nil {
		t.Fatalf("ExtendBatch: %v", err)
	}
	for _, p := range pkts {
		if p.RemainingHops() != 3 {
			t.Errorf("packet not extended: %v", p)
		}
	}
	// A second extension back onto e2 must fail (e2 now not new).
	err = rr.ExtendBatch(e, pkts, func(p *packet.Packet) []graph.EdgeID {
		return rt(g, "e2")
	})
	if err == nil {
		t.Error("extension onto non-new edge should fail")
	}
}

func TestExtendBatchRejectsNonHistoric(t *testing.T) {
	g := graph.Line(2)
	rr := NewRerouter(rational.New(1, 2))
	e := sim.New(g, ftg(), nil)
	e.AddObserver(rr)
	p := e.Seed(packet.Inj(g.MustEdge("e1")))
	err := rr.ExtendBatch(e, []*packet.Packet{p}, func(*packet.Packet) []graph.EdgeID {
		return rt(g, "e2")
	})
	if err == nil {
		t.Error("FTG is not historic; ExtendBatch must refuse")
	}
}

func TestWStar(t *testing.T) {
	// S=10, w=5, r=1/4, r*=1/2: w* = ceil(16/(1/4)) = 64.
	got := WStar(10, 5, rational.New(1, 4), rational.New(1, 2))
	if got != 64 {
		t.Errorf("WStar = %d, want 64", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("WStar with r* <= r did not panic")
		}
	}()
	WStar(10, 5, rational.New(1, 2), rational.New(1, 2))
}

func TestMaxEdgeRequirement(t *testing.T) {
	g := graph.Line(3)
	seeds := []packet.Injection{
		packet.Inj(rt(g, "e1", "e2")...),
		packet.Inj(rt(g, "e2", "e3")...),
		packet.Inj(rt(g, "e2")...),
	}
	if got := MaxEdgeRequirement(seeds); got != 3 {
		t.Errorf("MaxEdgeRequirement = %d, want 3", got)
	}
	if MaxEdgeRequirement(nil) != 0 {
		t.Error("empty seeds should give 0")
	}
}

func TestObservation44Equivalence(t *testing.T) {
	// The transformed adversary must reproduce the same multiset of
	// routes, one step later, plus the seeds at step 1.
	g := graph.Line(2)
	streams := []Stream{{Start: 1, Rate: rational.New(1, 2), Budget: 4, Route: rt(g, "e1", "e2")}}
	seeds := []packet.Injection{packet.Inj(rt(g, "e2")...), packet.Inj(rt(g, "e2")...)}

	transformed := Observation44(streams, seeds)
	e := sim.New(g, fifo(), transformed)
	tr := &sim.Tracer{}
	e.AddObserver(tr)
	e.Run(15)
	if e.Injected() != 6 {
		t.Fatalf("injected %d, want 6", e.Injected())
	}
	evs := tr.Events()
	seedCount := 0
	for _, ev := range evs {
		if ev.T == 1 && len(ev.Route) == 1 {
			seedCount++
		}
	}
	if seedCount != 2 {
		t.Errorf("seed burst at t=1: %d, want 2", seedCount)
	}
	// Original stream injects at steps where floor(t/2) increments:
	// 2,4,6,8. Shifted: 3,5,7,9.
	var streamTimes []int64
	for _, ev := range evs {
		if len(ev.Route) == 2 {
			streamTimes = append(streamTimes, ev.T)
		}
	}
	want := []int64{3, 5, 7, 9}
	if len(streamTimes) != 4 {
		t.Fatalf("stream times = %v", streamTimes)
	}
	for i := range want {
		if streamTimes[i] != want[i] {
			t.Errorf("stream time[%d] = %d, want %d", i, streamTimes[i], want[i])
		}
	}
}

func TestObservation44WindowCompliance(t *testing.T) {
	// The transformed execution must pass a (w*, r*) window check.
	g := graph.Line(2)
	r := rational.New(1, 4)
	w := int64(8)
	streams := []Stream{{Start: 1, Rate: r, Budget: 30, Route: rt(g, "e1", "e2")}}
	seeds := []packet.Injection{packet.Inj(rt(g, "e1")...), packet.Inj(rt(g, "e1")...)}

	rStar := rational.New(1, 2)
	wStar := WStar(MaxEdgeRequirement(seeds), w, r, rStar)
	wv := NewWindowValidator(wStar, rStar)

	transformed := Observation44(streams, seeds)
	e := sim.New(g, fifo(), transformed)
	e.AddObserver(wv)
	e.Run(200)
	if err := wv.Check(); err != nil {
		t.Errorf("(w*,r*) compliance failed: %v", err)
	}
}

func TestRandomWRCompliance(t *testing.T) {
	g := graph.Complete(4)
	w := int64(12)
	rate := rational.New(1, 3)
	gen := NewRandomWR(g, w, rate, 3, 7)
	wv := NewWindowValidator(w, rate)
	e := sim.New(g, fifo(), gen)
	e.AddObserver(wv)
	e.Run(500)
	if e.Injected() == 0 {
		t.Fatal("generator injected nothing")
	}
	if err := wv.Check(); err != nil {
		t.Errorf("RandomWR violated its own constraint: %v", err)
	}
}

func TestRandomWRDeterminism(t *testing.T) {
	g := graph.Complete(3)
	run := func() int64 {
		gen := NewRandomWR(g, 10, rational.New(1, 2), 2, 99)
		e := sim.New(g, fifo(), gen)
		e.Run(200)
		return e.Injected()
	}
	if run() != run() {
		t.Error("same seed produced different executions")
	}
}

func TestRandomWRZeroBound(t *testing.T) {
	g := graph.Complete(3)
	// floor(r*w) = floor(0.05*10) = 0: nothing may be injected.
	gen := NewRandomWR(g, 10, rational.New(1, 20), 2, 1)
	e := sim.New(g, fifo(), gen)
	e.Run(100)
	if e.Injected() != 0 {
		t.Errorf("injected %d with zero window bound", e.Injected())
	}
}

// Property: RandomWR with arbitrary parameters always passes its own
// window validator.
func TestQuickRandomWRAlwaysCompliant(t *testing.T) {
	f := func(seed int64, wRaw, num, den uint8, maxLen uint8) bool {
		w := int64(wRaw%20) + 1
		n := int64(num%10) + 1
		d := n + int64(den%10) // rate <= 1
		rate := rational.New(n, d)
		g := graph.Complete(4)
		gen := NewRandomWR(g, w, rate, int(maxLen%3)+1, seed)
		wv := NewWindowValidator(w, rate)
		e := sim.New(g, fifo(), gen)
		e.AddObserver(wv)
		e.Run(150)
		return wv.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
