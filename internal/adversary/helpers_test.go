package adversary

import "aqt/internal/policy"

func fifo() policy.Policy { return policy.FIFO{} }

func ftg() policy.Policy { return policy.FTG{} }
