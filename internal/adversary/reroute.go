package adversary

import (
	"fmt"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// SharedEdge returns an edge common to the remaining routes of all the
// given packets, if one exists (the precondition of Lemma 3.3 on the
// rerouted set P0). Ties are resolved to the lowest edge ID.
func SharedEdge(pkts []*packet.Packet) (graph.EdgeID, bool) {
	if len(pkts) == 0 {
		return graph.NoEdge, false
	}
	counts := make(map[graph.EdgeID]int)
	for _, p := range pkts {
		seen := make(map[graph.EdgeID]bool)
		for _, e := range p.RemainingRoute() {
			if !seen[e] {
				seen[e] = true
				counts[e]++
			}
		}
	}
	best, found := graph.NoEdge, false
	for e, c := range counts {
		if c == len(pkts) && (!found || e < best) {
			best, found = e, true
		}
	}
	return best, found
}

// Rerouter validates and performs Lemma 3.3 reroutes. It observes
// every injection so it can decide which edges are "new" to the
// current packet population (Definition 3.2): an edge is new to P(t)
// if no packet injected at time >= t* - ceil(1/r) uses it in its
// route, where t* is the minimum injection time over P(t).
//
// Use it as an engine observer and perform reroutes through
// ExtendBatch / ReplaceBatch; those check the lemma's preconditions
// (historic policy, shared edge, new edges) before mutating routes.
type Rerouter struct {
	Rate rational.Rat
	// lastUse[e] is the latest injection time of any packet whose
	// route (as first injected or later extended) includes e.
	lastUse map[graph.EdgeID]int64
	seenAny map[graph.EdgeID]bool
}

// NewRerouter returns a Rerouter for a rate-r adversary.
func NewRerouter(rate rational.Rat) *Rerouter {
	if rate.Sign() <= 0 {
		panic("adversary: rerouter needs a positive rate")
	}
	return &Rerouter{
		Rate:    rate,
		lastUse: make(map[graph.EdgeID]int64),
		seenAny: make(map[graph.EdgeID]bool),
	}
}

// OnStep implements sim.Observer.
func (r *Rerouter) OnStep(*sim.Engine) {}

// AcceptLeap implements sim.LeapObserver: the rerouter tracks edge
// first-use from injections and reroutes only, so static windows (no
// injections, no reroutes) carry nothing to track.
func (r *Rerouter) AcceptLeap(sim.LeapKind) bool { return true }

// OnLeap implements sim.LeapObserver (nothing to track).
func (r *Rerouter) OnLeap(*sim.Engine, sim.LeapInfo) {}

// OnInject implements sim.InjectionObserver.
func (r *Rerouter) OnInject(t int64, p *packet.Packet) {
	r.note(t, p.Route)
}

// OnReroute implements sim.RerouteObserver: edges added by a reroute
// count as used at the packet's injection time (they become part of
// the adversary A' of Lemma 3.3, which injected the packet then).
func (r *Rerouter) OnReroute(t int64, p *packet.Packet, oldRoute []graph.EdgeID) {
	r.note(p.InjectedAt, p.Route)
}

func (r *Rerouter) note(t int64, route []graph.EdgeID) {
	for _, e := range route {
		if !r.seenAny[e] || r.lastUse[e] < t {
			r.seenAny[e] = true
			r.lastUse[e] = t
		}
	}
}

// IsNew reports whether edge e is new to the current packet population
// of the engine per Definition 3.2: no recorded route of a packet
// injected at or after tStar - ceil(1/r) uses e, where tStar is the
// minimum injection time among packets currently in the network.
func (r *Rerouter) IsNew(e *sim.Engine, edge graph.EdgeID) bool {
	tStar, any := minInjectionTime(e)
	if !any {
		return true
	}
	return r.isNewAt(tStar, edge)
}

// isNewAt is IsNew with the population's minimum injection time
// precomputed — batch callers compute tStar once instead of scanning
// every queued packet per edge.
func (r *Rerouter) isNewAt(tStar int64, edge graph.EdgeID) bool {
	last, used := r.lastUse[edge], r.seenAny[edge]
	if !used {
		return true
	}
	threshold := tStar - r.Rate.Inv().Ceil()
	return last < threshold
}

func minInjectionTime(e *sim.Engine) (int64, bool) {
	min, any := int64(0), false
	e.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) {
		if !any || p.InjectedAt < min {
			min, any = p.InjectedAt, true
		}
	})
	return min, any
}

// ExtendBatch applies Lemma 3.3 to a set of packets: it verifies the
// preconditions — the engine's policy is historic, the packets'
// remaining routes share an edge, and every edge of every extension is
// new to the current population — and then extends each packet's route.
// ext receives each packet and returns its extension (nil to leave the
// packet alone). It returns an error (changing nothing) when a
// precondition fails.
func (r *Rerouter) ExtendBatch(e *sim.Engine, pkts []*packet.Packet, ext func(p *packet.Packet) []graph.EdgeID) error {
	if len(pkts) == 0 {
		return nil
	}
	if !e.Policy().Traits().Historic {
		return fmt.Errorf("adversary: policy %s is not historic; Lemma 3.3 does not apply", e.Policy().Name())
	}
	if _, ok := SharedEdge(pkts); !ok {
		return fmt.Errorf("adversary: rerouted packets share no common edge")
	}
	tStar, any := minInjectionTime(e)
	exts := make([][]graph.EdgeID, len(pkts))
	for i, p := range pkts {
		exts[i] = ext(p)
		for _, edge := range exts[i] {
			if any && !r.isNewAt(tStar, edge) {
				return fmt.Errorf("adversary: extension edge %d is not new to P(t)", edge)
			}
		}
	}
	for i, p := range pkts {
		if len(exts[i]) > 0 {
			e.ExtendRoute(p, exts[i])
		}
	}
	return nil
}

// MustExtendBatch is ExtendBatch but panics on error; the paper's
// constructions use it because their preconditions hold by design.
// FailureObservers are notified before the panic, so a flight
// recorder captures the steps leading up to the Lemma 3.3 violation.
func (r *Rerouter) MustExtendBatch(e *sim.Engine, pkts []*packet.Packet, ext func(p *packet.Packet) []graph.EdgeID) {
	if err := r.ExtendBatch(e, pkts, ext); err != nil {
		e.NotifyFailure("rerouter: " + err.Error())
		panic(err)
	}
}
