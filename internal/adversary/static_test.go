// Unit tests for the StaticUntil horizons the leap engine consumes.
// The contract under test (sim.StaticAdversary): for every step t with
// Now() < t <= StaticUntil(), PreStep and Inject are provably silent
// AND skipping them leaves the adversary in an equivalent state.
package adversary

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func lineRoute(g *graph.Graph, names ...string) []graph.EdgeID {
	route := make([]graph.EdgeID, len(names))
	for i, n := range names {
		route[i] = g.MustEdge(n)
	}
	return route
}

// TestScriptStaticUntil: unstarted streams bound the horizon at
// Start-1; a started stream ticks its pacer every step and so pins the
// horizon into the past until it exhausts; an exhausted script is
// static forever; a PreStep hook disables leaping outright.
func TestScriptStaticUntil(t *testing.T) {
	g := graph.Line(6)
	s := NewScript(
		Stream{Name: "a", Start: 50, Rate: rational.New(1, 2), Budget: 4, Route: lineRoute(g, "e1")},
		Stream{Name: "b", Start: 200, Rate: rational.New(1, 1), Budget: 2, Route: lineRoute(g, "e2")},
	)
	if h := s.StaticUntil(); h != 49 {
		t.Errorf("unstarted script: StaticUntil %d, want 49 (earliest Start-1)", h)
	}
	e := sim.New(g, policy.FIFO{}, s)
	e.Run(52) // stream a is live (1 of 4 injected): horizon pinned <= now
	if h := s.StaticUntil(); h > e.Now() {
		t.Errorf("live paced stream: StaticUntil %d > now %d (would leap over pacer ticks)", h, e.Now())
	}
	e.Run(8) // t=60: stream a exhausted its budget; only b (Start 200) is left
	if h := s.StaticUntil(); h != 199 {
		t.Errorf("one stream exhausted: StaticUntil %d, want 199", h)
	}
	e.Run(200) // both budgets exhausted by t=260
	if !s.Idle() {
		t.Fatal("script should be idle after both budgets exhaust")
	}
	if h := s.StaticUntil(); h != sim.Forever {
		t.Errorf("exhausted script: StaticUntil %d, want Forever", h)
	}
	s.SetPreStep(func(*sim.Engine) {})
	if h := s.StaticUntil(); h != 0 {
		t.Errorf("script with PreStep hook: StaticUntil %d, want 0", h)
	}
}

// TestBurstScriptStaticUntil: the horizon is one step before the
// earliest upcoming burst of any stream with budget left, computed from
// the last step Inject ran at; exhausted streams stop contributing.
func TestBurstScriptStaticUntil(t *testing.T) {
	g := graph.Line(6)
	b := NewBurstScript(
		BurstStream{Name: "a", Start: 10, Period: 100, Burst: 3, Budget: 6, Route: lineRoute(g, "e1")},
		BurstStream{Name: "b", Start: 35, Period: 100, Burst: 2, Budget: -1, Route: lineRoute(g, "e2")},
	)
	if h := b.StaticUntil(); h != 9 {
		t.Errorf("fresh script: StaticUntil %d, want 9", h)
	}
	e := sim.New(g, policy.FIFO{}, b)
	e.Run(10) // the t=10 burst of stream a just fired
	if h := b.StaticUntil(); h != 34 {
		t.Errorf("after first burst: StaticUntil %d, want 34 (stream b's t=35 burst)", h)
	}
	e.Run(25) // t=35: stream b fired; next event is a's t=110 burst
	if h := b.StaticUntil(); h != 109 {
		t.Errorf("between periods: StaticUntil %d, want 109", h)
	}
	e.Run(75) // t=110: stream a's second burst exhausts its budget of 6
	if h := b.StaticUntil(); h != 134 {
		t.Errorf("a exhausted: StaticUntil %d, want 134 (b's t=135 burst only)", h)
	}
}

// TestBurstScriptStaticUntilUnbounded: a script whose every stream has
// exhausted its budget is static forever.
func TestBurstScriptStaticUntilExhausted(t *testing.T) {
	g := graph.Line(4)
	b := NewBurstScript(
		BurstStream{Name: "a", Start: 1, Period: 10, Burst: 5, Budget: 10, Route: lineRoute(g, "e1")},
	)
	e := sim.New(g, policy.FIFO{}, b)
	e.Run(12) // bursts at t=1 and t=11 consume the whole budget
	if h := b.StaticUntil(); h != sim.Forever {
		t.Errorf("exhausted burst script: StaticUntil %d, want Forever", h)
	}
}

// TestReplayStaticUntil: the horizon tracks the next recorded
// injection step and reaches Forever once the recording is exhausted.
func TestReplayStaticUntil(t *testing.T) {
	g := graph.Line(6)
	rec := []RecordedInjection{
		{Step: 7, Route: lineRoute(g, "e1")},
		{Step: 7, Route: lineRoute(g, "e2")},
		{Step: 31, Route: lineRoute(g, "e1", "e2")},
	}
	rp := NewReplay(rec)
	if h := rp.StaticUntil(); h != 6 {
		t.Errorf("fresh replay: StaticUntil %d, want 6", h)
	}
	e := sim.New(g, policy.FIFO{}, rp)
	e.Run(7)
	if h := rp.StaticUntil(); h != 30 {
		t.Errorf("after t=7 injections: StaticUntil %d, want 30", h)
	}
	e.Run(24) // t=31 injected; recording exhausted
	if h := rp.StaticUntil(); h != sim.Forever {
		t.Errorf("exhausted replay: StaticUntil %d, want Forever", h)
	}
	if e.Injected() != 3 {
		t.Fatalf("replay injected %d packets, want 3", e.Injected())
	}
}

// TestSequenceStaticUntil: a Sequence only reports a horizon when the
// current phase has been entered, declares an Until bound, and wraps a
// static inner adversary; the horizon is the min of the two. A
// finished Sequence is static forever.
func TestSequenceStaticUntil(t *testing.T) {
	g := graph.Line(6)
	end := int64(90)
	inner := NewBurstScript(
		BurstStream{Name: "a", Start: 40, Period: 1000, Burst: 2, Budget: 2, Route: lineRoute(g, "e1")},
	)
	seq := NewSequence(Phase{
		Name:  "test phase",
		Enter: func(*sim.Engine) sim.Adversary { return inner },
		Done:  func(e *sim.Engine) bool { return e.Now() > end },
		Until: &end,
	})
	if h := seq.StaticUntil(); h != 0 {
		t.Errorf("unentered phase: StaticUntil %d, want 0", h)
	}
	e := sim.New(g, policy.FIFO{}, seq)
	e.Run(1) // enters the phase
	if h := seq.StaticUntil(); h != 39 {
		t.Errorf("entered phase: StaticUntil %d, want 39 (inner burst bound)", h)
	}
	e.Run(39) // burst fired at t=40, budget exhausted; inner is Forever
	if h := seq.StaticUntil(); h != end {
		t.Errorf("quiet phase: StaticUntil %d, want %d (phase Until bound)", h, end)
	}
	e.Run(60) // past end: Done fires, sequence finishes
	if !seq.Finished() {
		t.Fatal("sequence should have finished")
	}
	if h := seq.StaticUntil(); h != sim.Forever {
		t.Errorf("finished sequence: StaticUntil %d, want Forever", h)
	}
}

// TestSequenceStaticUntilNoUntil: a phase without an Until bound never
// authorizes leaping, even with a static inner adversary.
func TestSequenceStaticUntilNoUntil(t *testing.T) {
	g := graph.Line(4)
	seq := NewSequence(Phase{
		Name:  "unbounded",
		Enter: func(*sim.Engine) sim.Adversary { return sim.NopAdversary{} },
		Done:  func(e *sim.Engine) bool { return e.Now() > 50 },
	})
	e := sim.New(g, policy.FIFO{}, seq)
	e.Run(1)
	if h := seq.StaticUntil(); h != 0 {
		t.Errorf("phase without Until: StaticUntil %d, want 0", h)
	}
}
