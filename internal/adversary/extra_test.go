package adversary

import (
	"strings"
	"testing"

	"aqt/internal/graph"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestViolationError(t *testing.T) {
	v := Violation{Edge: 3, T1: 10, T2: 20, Count: 9, Bound: 6}
	msg := v.Error()
	for _, want := range []string{"edge 3", "[10,20]", "9", "bound 6"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func TestSequenceCurrentAndString(t *testing.T) {
	g := graph.Line(1)
	seq := NewSequence(Phase{
		Name:  "only",
		Enter: func(e *sim.Engine) sim.Adversary { return sim.NopAdversary{} },
		Done:  func(e *sim.Engine) bool { return e.Now() >= 2 },
	})
	if seq.Current() != 0 || seq.Finished() {
		t.Error("fresh sequence state wrong")
	}
	if !strings.Contains(seq.String(), "only") {
		t.Errorf("String = %q", seq.String())
	}
	e := sim.New(g, fifoPol(), seq)
	e.Run(3)
	if !seq.Finished() || seq.PhaseName() != "done" {
		t.Errorf("sequence not finished: %s", seq)
	}
	if !strings.Contains(seq.String(), "done") {
		t.Errorf("String = %q", seq.String())
	}
}

func TestSequenceNilEnterAdversary(t *testing.T) {
	g := graph.Line(1)
	seq := NewSequence(Phase{
		Name:  "nil-enter",
		Enter: func(*sim.Engine) sim.Adversary { return nil },
		Done:  func(e *sim.Engine) bool { return e.Now() >= 1 },
	})
	e := sim.New(g, fifoPol(), seq)
	e.Run(2) // must not panic; nil Enter result becomes Nop
	if !seq.Finished() {
		t.Error("sequence did not finish")
	}
}

func TestScriptPreStepHook(t *testing.T) {
	g := graph.Line(1)
	s := NewScript(Stream{Start: 1, Rate: rational.FromInt(1), Budget: 1, Route: rt(g, "e1")})
	calls := 0
	s.SetPreStep(func(*sim.Engine) { calls++ })
	e := sim.New(g, fifoPol(), s)
	e.Run(4)
	if calls != 4 {
		t.Errorf("PreStep hook called %d times", calls)
	}
}

func TestCappedPacerBudgetAccessor(t *testing.T) {
	p := rational.NewCappedPacer(rational.New(1, 2), 9)
	if p.Budget() != 9 {
		t.Errorf("Budget = %d", p.Budget())
	}
}
