// Checkpoint/restore support for the resumable adversaries: each
// implements sim.CheckpointableAdversary by extracting its dynamic
// state (pacer positions, cursors, RNG stream position, admission
// history) and restoring it onto a freshly constructed instance built
// from the same specification. Static configuration — stream specs,
// recordings, phase programs, rates — is deliberately NOT serialized:
// the construction is the source of truth and restore refuses
// mismatches it can detect (seed, stream count, phase count).
//
// All RestoreState implementations validate hostile payloads with
// errors, never panics: they are reachable from fuzzed checkpoint
// documents via Engine.Restore.
package adversary

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"aqt/internal/graph"
	"aqt/internal/sim"
)

// Adversary state kinds (sim.AdversaryState.Kind). "nop" is claimed by
// sim.NopAdversary.
const (
	KindScript   = "script"
	KindBurst    = "burst"
	KindReplay   = "replay"
	KindSequence = "sequence"
	KindRandomWR = "randomwr"
)

// MaxRandomDraws bounds the RNG fast-forward a RandomWR restore will
// perform (the math/rand source state is not exportable, so restore
// replays the draw count from the seed). The default admits ~10^6-step
// random-adversary runs with plenty of margin; the checkpoint fuzz
// harness lowers it so hostile draw counts cannot stall an exec.
// Atomic because fuzz seed execution may interleave with parallel
// tests restoring checkpoints.
var MaxRandomDraws atomic.Int64

func init() { MaxRandomDraws.Store(1 << 32) }

// countingSource wraps a rand.Source, counting Int63 draws so the
// stream position is serializable. It intentionally does not implement
// rand.Source64: RandomWR only ever draws via Intn, which reaches the
// source through Int63 alone, so the value stream is unchanged.
type countingSource struct {
	src rand.Source
	n   int64
}

func (s *countingSource) Int63() int64 { s.n++; return s.src.Int63() }
func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// encodeState marshals a kind-specific payload.
func encodeState(kind string, v interface{}) (sim.AdversaryState, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return sim.AdversaryState{}, fmt.Errorf("%s state: %v", kind, err)
	}
	return sim.AdversaryState{Kind: kind, Data: b}, nil
}

// decodeState checks the kind tag and strictly unmarshals the payload.
func decodeState(kind string, st sim.AdversaryState, v interface{}) error {
	if st.Kind != kind {
		return fmt.Errorf("adversary state kind %q, want %q", st.Kind, kind)
	}
	if len(st.Data) == 0 {
		return fmt.Errorf("%s state: missing payload", kind)
	}
	dec := json.NewDecoder(bytes.NewReader(st.Data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s state: %v", kind, err)
	}
	if dec.More() {
		return fmt.Errorf("%s state: trailing data", kind)
	}
	return nil
}

// --- Script ---

type scriptStreamState struct {
	Index int   `json:"index"` // AddStream order, stable across compaction
	Ticks int64 `json:"ticks"`
	Sent  int64 `json:"sent"`
	Count int64 `json:"count,omitempty"`
}

type scriptState struct {
	Added   int                 `json:"added"`
	Streams []scriptStreamState `json:"streams,omitempty"`
}

// CheckpointState implements sim.CheckpointableAdversary. Streams that
// exhausted their budget and were compacted away are represented by
// absence; a Script with a PreStep hook refuses (closures do not
// serialize).
func (s *Script) CheckpointState() (sim.AdversaryState, error) {
	if s.pre != nil {
		return sim.AdversaryState{}, fmt.Errorf("script with a PreStep hook is not checkpointable")
	}
	ss := scriptState{Added: s.added}
	for _, rs := range s.streams {
		ss.Streams = append(ss.Streams, scriptStreamState{
			Index: rs.idx,
			Ticks: rs.pacer.Ticks(),
			Sent:  rs.pacer.Emitted(),
			Count: rs.count,
		})
	}
	return encodeState(KindScript, ss)
}

// RestoreState implements sim.CheckpointableAdversary: s must be a
// freshly constructed Script over the same stream specifications.
// Streams absent from the state were exhausted before the checkpoint
// and are compacted away immediately.
func (s *Script) RestoreState(_ *sim.Engine, st sim.AdversaryState) error {
	var ss scriptState
	if err := decodeState(KindScript, st, &ss); err != nil {
		return err
	}
	if ss.Added != s.added {
		return fmt.Errorf("script state: %d streams added in checkpoint, %d in target", ss.Added, s.added)
	}
	prev := -1
	for _, sst := range ss.Streams {
		if sst.Index <= prev || sst.Index >= s.added {
			return fmt.Errorf("script state: stream index %d not strictly increasing within [0,%d)", sst.Index, s.added)
		}
		prev = sst.Index
		if sst.Ticks < 0 || sst.Sent < 0 || sst.Count < 0 {
			return fmt.Errorf("script state: negative counters in stream %d", sst.Index)
		}
	}
	j, n := 0, 0
	for _, rs := range s.streams {
		if j < len(ss.Streams) && ss.Streams[j].Index == rs.idx {
			sst := ss.Streams[j]
			if sst.Sent > rs.pacer.Budget() {
				return fmt.Errorf("script state: stream %d sent %d exceeds budget %d", sst.Index, sst.Sent, rs.pacer.Budget())
			}
			rs.pacer.Restore(sst.Ticks, sst.Sent)
			rs.count = sst.Count
			s.streams[n] = rs
			n++
			j++
		}
		// Not in the state: exhausted and compacted before the
		// checkpoint — drop it here too.
	}
	if j != len(ss.Streams) {
		return fmt.Errorf("script state: stream index %d has no matching stream in the target", ss.Streams[j].Index)
	}
	s.streams = s.streams[:n]
	return nil
}

// --- BurstScript ---

type burstState struct {
	Sent  []int64 `json:"sent,omitempty"`
	LastT int64   `json:"last_t,omitempty"`
}

// CheckpointState implements sim.CheckpointableAdversary.
func (b *BurstScript) CheckpointState() (sim.AdversaryState, error) {
	bs := burstState{LastT: b.lastT}
	if b.sent != nil {
		bs.Sent = append([]int64(nil), b.sent...)
	}
	return encodeState(KindBurst, bs)
}

// RestoreState implements sim.CheckpointableAdversary: b must be a
// freshly constructed BurstScript over the same streams.
func (b *BurstScript) RestoreState(_ *sim.Engine, st sim.AdversaryState) error {
	var bs burstState
	if err := decodeState(KindBurst, st, &bs); err != nil {
		return err
	}
	if bs.LastT < 0 {
		return fmt.Errorf("burst state: negative last_t %d", bs.LastT)
	}
	if bs.Sent != nil && len(bs.Sent) != len(b.streams) {
		return fmt.Errorf("burst state: %d sent counters for %d streams", len(bs.Sent), len(b.streams))
	}
	for i, sent := range bs.Sent {
		if sent < 0 || (b.streams[i].Budget >= 0 && sent > b.streams[i].Budget) {
			return fmt.Errorf("burst state: stream %d sent %d outside [0,%d]", i, sent, b.streams[i].Budget)
		}
	}
	b.lastT = bs.LastT
	b.sent = nil
	if bs.Sent != nil {
		b.sent = append([]int64(nil), bs.Sent...)
	}
	return nil
}

// --- Replay ---

type replayState struct {
	Cursor int   `json:"cursor,omitempty"`
	LastT  int64 `json:"last_t,omitempty"`
}

// CheckpointState implements sim.CheckpointableAdversary. The
// recording itself is construction, not state: only the monotone
// cursor and clock cache are carried.
func (rp *Replay) CheckpointState() (sim.AdversaryState, error) {
	return encodeState(KindReplay, replayState{Cursor: rp.cursor, LastT: rp.lastT})
}

// RestoreState implements sim.CheckpointableAdversary: rp must be a
// freshly constructed Replay over the same recording.
func (rp *Replay) RestoreState(_ *sim.Engine, st sim.AdversaryState) error {
	var rs replayState
	if err := decodeState(KindReplay, st, &rs); err != nil {
		return err
	}
	if rs.Cursor < 0 || rs.Cursor > len(rp.steps) {
		return fmt.Errorf("replay state: cursor %d outside [0,%d]", rs.Cursor, len(rp.steps))
	}
	if rs.LastT < 0 {
		return fmt.Errorf("replay state: negative last_t %d", rs.LastT)
	}
	rp.cursor = rs.Cursor
	rp.lastT = rs.LastT
	return nil
}

// --- Sequence ---

type sequenceState struct {
	Cur     int                 `json:"cur"`
	Entered bool                `json:"entered,omitempty"`
	Until   *int64              `json:"until,omitempty"`
	Inner   *sim.AdversaryState `json:"inner,omitempty"`
}

// CheckpointState implements sim.CheckpointableAdversary. The current
// phase's inner adversary must itself be checkpointable. Restoring
// re-runs the phase's Enter hook, so checkpointing a Sequence is only
// sound when Enter is effect-free on the engine (the scenario compiler
// emits exactly such phases); the saved Until horizon is re-applied
// after Enter, so horizon variables assigned by Enter stay exact.
func (q *Sequence) CheckpointState() (sim.AdversaryState, error) {
	qs := sequenceState{Cur: q.cur}
	if q.cur < len(q.phases) {
		ph := &q.phases[q.cur]
		if ph.adv != nil {
			qs.Entered = true
			if ph.Until != nil {
				u := *ph.Until
				qs.Until = &u
			}
			inner, ok := ph.adv.(sim.CheckpointableAdversary)
			if !ok {
				return sim.AdversaryState{}, fmt.Errorf("sequence phase %q adversary %T is not checkpointable", ph.Name, ph.adv)
			}
			ist, err := inner.CheckpointState()
			if err != nil {
				return sim.AdversaryState{}, fmt.Errorf("sequence phase %q: %v", ph.Name, err)
			}
			qs.Inner = &ist
		}
	}
	return encodeState(KindSequence, qs)
}

// RestoreState implements sim.CheckpointableAdversary: q must be a
// freshly constructed Sequence over the same phase program, and e must
// already carry the restored engine state (Enter hooks may read the
// clock and queues). Phase-entry side channels (Annotate markers, the
// OnPhaseChange callback) are NOT re-fired: they happened in the
// original run.
func (q *Sequence) RestoreState(e *sim.Engine, st sim.AdversaryState) error {
	var qs sequenceState
	if err := decodeState(KindSequence, st, &qs); err != nil {
		return err
	}
	if qs.Cur < 0 || qs.Cur > len(q.phases) {
		return fmt.Errorf("sequence state: cur %d outside [0,%d]", qs.Cur, len(q.phases))
	}
	if qs.Entered && qs.Cur >= len(q.phases) {
		return fmt.Errorf("sequence state: entered=true past the last phase")
	}
	if qs.Entered != (qs.Inner != nil) {
		return fmt.Errorf("sequence state: entered=%v but inner state present=%v", qs.Entered, qs.Inner != nil)
	}
	q.cur = qs.Cur
	if !qs.Entered {
		return nil
	}
	ph := &q.phases[q.cur]
	if ph.Enter != nil {
		ph.adv = ph.Enter(e)
	}
	if ph.adv == nil {
		ph.adv = sim.NopAdversary{}
	}
	inner, ok := ph.adv.(sim.CheckpointableAdversary)
	if !ok {
		return fmt.Errorf("sequence state: phase %q adversary %T is not checkpointable", ph.Name, ph.adv)
	}
	if err := inner.RestoreState(e, *qs.Inner); err != nil {
		return fmt.Errorf("sequence phase %q: %v", ph.Name, err)
	}
	if ph.Until != nil && qs.Until != nil {
		*ph.Until = *qs.Until
	}
	return nil
}

// --- RandomWR ---

type randomRingState struct {
	Edge  graph.EdgeID `json:"edge"`
	Times []int64      `json:"times"`
}

type randomState struct {
	Seed  int64             `json:"seed"`
	Draws int64             `json:"draws,omitempty"`
	Rings []randomRingState `json:"rings,omitempty"`
}

// CheckpointState implements sim.CheckpointableAdversary: the seed,
// the RNG stream position (draw count) and the per-edge admission
// history, oldest first. Per-step scratch and the visited-generation
// stamps are not state — they reset equivalently.
func (a *RandomWR) CheckpointState() (sim.AdversaryState, error) {
	rs := randomState{Seed: a.seed, Draws: a.src.n}
	for eid := range a.rings {
		n := int(a.count[eid])
		if n == 0 {
			continue
		}
		ring := a.rings[eid]
		times := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			times = append(times, ring[(int(a.head[eid])+i)%len(ring)])
		}
		rs.Rings = append(rs.Rings, randomRingState{Edge: graph.EdgeID(eid), Times: times})
	}
	return encodeState(KindRandomWR, rs)
}

// RestoreState implements sim.CheckpointableAdversary: a must be a
// freshly constructed RandomWR with the same seed; the RNG is replayed
// from the seed by the recorded draw count (bounded by
// MaxRandomDraws).
func (a *RandomWR) RestoreState(_ *sim.Engine, st sim.AdversaryState) error {
	var rs randomState
	if err := decodeState(KindRandomWR, st, &rs); err != nil {
		return err
	}
	if rs.Seed != a.seed {
		return fmt.Errorf("randomwr state: seed %d, target constructed with %d", rs.Seed, a.seed)
	}
	if max := MaxRandomDraws.Load(); rs.Draws < 0 || rs.Draws > max {
		return fmt.Errorf("randomwr state: draw count %d outside [0,%d]", rs.Draws, max)
	}
	prev := graph.EdgeID(-1)
	for i, ring := range rs.Rings {
		if ring.Edge <= prev || int(ring.Edge) >= len(a.rings) {
			return fmt.Errorf("randomwr state: rings[%d] edge %d not strictly increasing within [0,%d)", i, ring.Edge, len(a.rings))
		}
		prev = ring.Edge
		if len(ring.Times) == 0 {
			return fmt.Errorf("randomwr state: rings[%d] empty (omit empty rings)", i)
		}
		if int64(len(ring.Times)) > a.bound {
			return fmt.Errorf("randomwr state: rings[%d] holds %d admissions, bound is %d", i, len(ring.Times), a.bound)
		}
		for j := 1; j < len(ring.Times); j++ {
			if ring.Times[j] < ring.Times[j-1] {
				return fmt.Errorf("randomwr state: rings[%d] times not sorted", i)
			}
		}
	}
	// Rebuild the RNG at the recorded stream position.
	a.src.src = rand.NewSource(a.seed)
	a.src.n = 0
	a.rng = rand.New(a.src)
	for i := int64(0); i < rs.Draws; i++ {
		a.src.Int63()
	}
	// Reset admission history, then install the recorded one.
	for eid := range a.rings {
		a.head[eid], a.count[eid] = 0, 0
	}
	for _, ring := range rs.Rings {
		a.rings[ring.Edge] = append([]int64(nil), ring.Times...)
		a.head[ring.Edge] = 0
		a.count[ring.Edge] = int32(len(ring.Times))
	}
	a.gen = 0
	for i := range a.visited {
		a.visited[i] = 0
	}
	return nil
}

// --- WindowValidator ---

// EdgeUsage is one edge's recorded injection times (sorted).
type EdgeUsage struct {
	Edge  graph.EdgeID `json:"edge"`
	Times []int64      `json:"times"`
}

// UsageState is the serializable injection history of a validator,
// sorted by edge.
type UsageState []EdgeUsage

// UsageState extracts the validator's recorded per-edge injection
// times (copies, sorted) for checkpointing. The validator itself is
// not an adversary, so this rides the observer-state side of a
// checkpoint (see internal/scenario).
func (wv *WindowValidator) UsageState() UsageState {
	us := make(UsageState, 0, len(wv.u.times))
	for eid, ts := range wv.u.times {
		cp := append([]int64(nil), ts...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		us = append(us, EdgeUsage{Edge: eid, Times: cp})
	}
	sort.Slice(us, func(i, j int) bool { return us[i].Edge < us[j].Edge })
	return us
}

// RestoreUsage overwrites the validator's injection history with a
// previously extracted state.
func (wv *WindowValidator) RestoreUsage(us UsageState) error {
	prev := graph.EdgeID(-1)
	for i, eu := range us {
		if eu.Edge <= prev {
			return fmt.Errorf("window state: usage[%d] edge %d not strictly increasing", i, eu.Edge)
		}
		prev = eu.Edge
		if len(eu.Times) == 0 {
			return fmt.Errorf("window state: usage[%d] empty (omit idle edges)", i)
		}
		for j := 1; j < len(eu.Times); j++ {
			if eu.Times[j] < eu.Times[j-1] {
				return fmt.Errorf("window state: usage[%d] times not sorted", i)
			}
		}
	}
	wv.u = newUsage()
	for _, eu := range us {
		wv.u.times[eu.Edge] = append([]int64(nil), eu.Times...)
	}
	return nil
}
