package adversary

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

func TestRecorderCapturesSchedule(t *testing.T) {
	g := graph.Line(2)
	rec := NewScheduleRecorder()
	s := NewScript(Stream{Start: 2, Rate: rational.FromInt(1), Budget: 3, Route: rt(g, "e1")})
	e := sim.New(g, fifo(), s)
	e.AddObserver(rec)
	e.Seed(packet.Inj(rt(g, "e2")...))
	e.Run(6)
	out := rec.Finish()
	if len(out) != 4 {
		t.Fatalf("recorded %d injections, want 4", len(out))
	}
	if out[0].Step != 0 || len(out[0].Route) != 1 {
		t.Errorf("seed record wrong: %+v", out[0])
	}
	steps := SortedSteps(out)
	if len(steps) != 4 || steps[0] != 0 || steps[1] != 2 || steps[3] != 4 {
		t.Errorf("steps = %v", steps)
	}
	// Finish is idempotent.
	if len(rec.Finish()) != 4 || rec.Len() != 4 {
		t.Error("Finish not idempotent")
	}
}

func TestRecorderCapturesFinalRoutes(t *testing.T) {
	g := graph.Line(3)
	rec := NewScheduleRecorder()
	e := sim.New(g, fifo(), nil)
	e.AddObserver(rec)
	p := e.Seed(packet.Inj(rt(g, "e1")...))
	e.ExtendRoute(p, rt(g, "e2", "e3"))
	out := rec.Finish()
	if len(out[0].Route) != 3 {
		t.Errorf("final route length %d, want 3 (extension included)", len(out[0].Route))
	}
}

func TestRecorderPanicsAfterFinish(t *testing.T) {
	rec := NewScheduleRecorder()
	rec.Finish()
	defer func() {
		if recover() == nil {
			t.Error("OnInject after Finish did not panic")
		}
	}()
	rec.OnInject(1, &packet.Packet{})
}

func TestReplayReproducesExecution(t *testing.T) {
	// Record a run with reroutes, then replay with final routes on a
	// fresh engine: under a historic policy the executions must agree
	// step for step (Lemma 3.3 claim (1) / Remark 1).
	g := graph.Line(4)
	rate := rational.New(3, 5)

	build := func() (*sim.Engine, *ScheduleRecorder) {
		rec := NewScheduleRecorder()
		s := NewScript(Stream{Start: 1, Rate: rate, Budget: 12, Route: rt(g, "e1", "e2")})
		e := sim.New(g, fifo(), s)
		e.AddObserver(rec)
		e.SeedN(5, packet.Inj(rt(g, "e1")...))
		return e, rec
	}
	orig, rec := build()
	// Mid-run, extend the seeds' routes (they all share e1; e3/e4 are
	// new edges).
	var seeds []*packet.Packet
	orig.ForEachQueued(func(_ graph.EdgeID, p *packet.Packet) {
		if p.InjectedAt == 0 {
			seeds = append(seeds, p)
		}
	})
	for _, p := range seeds {
		orig.ExtendRoute(p, rt(g, "e2", "e3"))
	}
	orig.Run(40)
	schedule := rec.Finish()

	replayEng := sim.New(g, fifo(), NewReplay(schedule))
	SeedRecording(replayEng, schedule)
	for replayEng.Now() < orig.Now() {
		replayEng.Step()
	}
	if err := DivergenceAt(orig, replayEng); err != nil {
		t.Errorf("replay diverged: %v", err)
	}
}

func TestReplayStepLockstep(t *testing.T) {
	// Lockstep comparison at every step, not only at the end.
	g := graph.Line(3)
	rate := rational.New(1, 2)
	rec := NewScheduleRecorder()
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 10, Route: rt(g, "e1", "e2", "e3")})
	orig := sim.New(g, fifo(), s)
	orig.AddObserver(rec)
	orig.Run(30)
	schedule := rec.Finish()

	a := sim.New(g, fifo(), NewScript(Stream{Start: 1, Rate: rate, Budget: 10, Route: rt(g, "e1", "e2", "e3")}))
	b := sim.New(g, fifo(), NewReplay(schedule))
	SeedRecording(b, schedule)
	for i := 0; i < 30; i++ {
		a.Step()
		b.Step()
		if err := DivergenceAt(a, b); err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
	}
}

func TestValidateRecording(t *testing.T) {
	g := graph.Line(2)
	rate := rational.New(1, 2)
	rec := NewScheduleRecorder()
	s := NewScript(Stream{Start: 1, Rate: rate, Budget: 20, Route: rt(g, "e1")})
	e := sim.New(g, fifo(), s)
	e.AddObserver(rec)
	e.Run(60)
	schedule := rec.Finish()
	if err := ValidateRecording(schedule, rate, 100, 100); err != nil {
		t.Errorf("compliant recording flagged: %v", err)
	}
	// The same schedule fails a lower-rate check.
	if err := ValidateRecording(schedule, rational.New(1, 4), 100, 100); err == nil {
		t.Error("overloaded recording not flagged")
	}
}

func TestDivergenceAtDetectsDifferences(t *testing.T) {
	g := graph.Line(2)
	a := sim.New(g, fifo(), nil)
	b := sim.New(g, fifo(), nil)
	a.Step()
	if err := DivergenceAt(a, b); err == nil {
		t.Error("time difference not detected")
	}
	b.Step()
	if err := DivergenceAt(a, b); err != nil {
		t.Errorf("identical engines flagged: %v", err)
	}
	a.SetAdversary(nil)
	b2 := sim.New(g, fifo(), nil)
	b2.Seed(packet.Inj(rt(g, "e1")...))
	b2.Step()
	a.Step()
	b2.Step()
	a.Step()
	if err := DivergenceAt(a, b2); err == nil {
		t.Error("injection difference not detected")
	}
}

func TestReplayLastStep(t *testing.T) {
	rec := []RecordedInjection{
		{Step: 0, Route: []graph.EdgeID{0}},
		{Step: 5, Route: []graph.EdgeID{0}},
		{Step: 3, Route: []graph.EdgeID{0}},
	}
	rp := NewReplay(rec)
	if rp.LastStep() != 5 {
		t.Errorf("LastStep = %d", rp.LastStep())
	}
}
