package adversary

import (
	"testing"

	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// FuzzRandomWRWindow drives RandomWR's ring-buffered admission control
// with arbitrary (w, r, maxLen, seed, horizon) parameters and checks
// the execution against the independent WindowValidator (which records
// every injection and replays Definition 2.1 with a sliding scan): the
// (w,r) window constraint must never be violated by the timestamp-ring
// bookkeeping. Mirrors the buffer and rational fuzz harnesses.
func FuzzRandomWRWindow(f *testing.F) {
	f.Add(int64(7), int64(12), uint8(4), uint8(12), uint8(2), uint8(200), false)
	f.Add(int64(1), int64(1), uint8(1), uint8(1), uint8(1), uint8(50), true)
	f.Add(int64(99), int64(40), uint8(9), uint8(10), uint8(3), uint8(255), false)
	f.Fuzz(func(t *testing.T, seed, wRaw int64, num, den, maxLen, steps uint8, ring bool) {
		w := wRaw%64 + 1
		if w < 1 {
			w += 64 // wRaw negative
		}
		d := int64(den%16) + 1
		n := int64(num%16) + 1
		if n > d {
			n, d = d, n // keep the rate in (0, 1]
		}
		rate := rational.New(n, d)
		g := graph.Complete(4)
		if ring {
			g = graph.Ring(6)
		}
		gen := NewRandomWR(g, w, rate, int(maxLen%4)+1, seed)
		wv := NewWindowValidator(w, rate)
		e := sim.New(g, policy.FIFO{}, gen)
		e.AddObserver(wv)
		e.RunQuiet(int64(steps))
		if err := wv.Check(); err != nil {
			t.Fatalf("w=%d r=%v: ring admission violated the (w,r) window constraint: %v",
				w, rate, err)
		}
		if gen.bound >= 1 && int64(steps) >= 4*w && e.Injected() == 0 {
			t.Fatalf("w=%d r=%v bound=%d: generator admitted nothing over %d steps",
				w, rate, gen.bound, steps)
		}
	})
}
