package adversary

import (
	"fmt"
	"sort"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// usage records, per edge, the (sorted) times at which injected packets
// requiring that edge entered the system. Reroutes also register the
// newly added edges at the original injection time of the packet,
// because the rate constraint of Definition 2.1 / the rate-r adversary
// is about the routes packets "have to follow" — after a reroute, the
// packet's route includes the new edges, attributed to its injection.
type usage struct {
	times map[graph.EdgeID][]int64
}

func newUsage() *usage {
	return &usage{times: make(map[graph.EdgeID][]int64)}
}

func (u *usage) add(t int64, edges []graph.EdgeID) {
	seen := make(map[graph.EdgeID]bool, len(edges))
	for _, e := range edges {
		if seen[e] {
			continue // an edge counts once per packet (routes are simple anyway)
		}
		seen[e] = true
		u.times[e] = append(u.times[e], t)
	}
}

func (u *usage) sortAll() {
	for e := range u.times {
		ts := u.times[e]
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
}

// Violation describes one rate-constraint breach found by a validator.
type Violation struct {
	Edge   graph.EdgeID
	T1, T2 int64 // inclusive interval
	Count  int64 // packets requiring Edge injected in [T1,T2]
	Bound  int64 // allowed maximum
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("edge %d: %d packets injected in [%d,%d], bound %d",
		v.Edge, v.Count, v.T1, v.T2, v.Bound)
}

// RateValidator is an engine observer that records every injection and
// reroute and can afterwards verify the execution against the leaky-
// bucket rate-r adversary definition: for every edge e and every time
// interval I, the number of packets injected during I whose routes
// require e is at most ceil(r·|I|).
//
// Initial-configuration seeds (injections at t = 0) are excluded: the
// model treats the initial configuration separately (section 4 of the
// paper, Observation 4.4).
type RateValidator struct {
	Rate rational.Rat
	u    *usage
}

// NewRateValidator returns a validator for the given rate.
func NewRateValidator(rate rational.Rat) *RateValidator {
	return &RateValidator{Rate: rate, u: newUsage()}
}

// OnStep implements sim.Observer.
func (rv *RateValidator) OnStep(*sim.Engine) {}

// AcceptLeap implements sim.LeapObserver: the validator only records
// injections and reroutes, and static windows contain neither, so
// leaped windows of either kind carry nothing to record.
func (rv *RateValidator) AcceptLeap(sim.LeapKind) bool { return true }

// OnLeap implements sim.LeapObserver (nothing to record).
func (rv *RateValidator) OnLeap(*sim.Engine, sim.LeapInfo) {}

// OnInject implements sim.InjectionObserver.
func (rv *RateValidator) OnInject(t int64, p *packet.Packet) {
	if t == 0 {
		return
	}
	rv.u.add(t, p.Route)
}

// OnReroute implements sim.RerouteObserver. The edges added by the
// reroute are charged to the packet's injection time.
func (rv *RateValidator) OnReroute(t int64, p *packet.Packet, oldRoute []graph.EdgeID) {
	if p.InjectedAt == 0 {
		return
	}
	old := make(map[graph.EdgeID]bool, len(oldRoute))
	for _, e := range oldRoute {
		old[e] = true
	}
	var added []graph.EdgeID
	for _, e := range p.Route {
		if !old[e] {
			added = append(added, e)
		}
	}
	rv.u.add(p.InjectedAt, added)
}

// Check verifies every interval between recorded injection times on
// every edge. A violating interval's endpoints always coincide with
// injection times, so checking those O(k²) intervals per edge is
// exact. Returns nil when compliant.
func (rv *RateValidator) Check() error {
	rv.u.sortAll()
	for e, ts := range rv.u.times {
		for i := 0; i < len(ts); i++ {
			for j := i; j < len(ts); j++ {
				count := int64(j - i + 1)
				bound := rv.Rate.CeilMulInt(ts[j] - ts[i] + 1)
				if count > bound {
					return Violation{Edge: e, T1: ts[i], T2: ts[j], Count: count, Bound: bound}
				}
			}
		}
	}
	return nil
}

// CheckAndNotify is Check, but a violation is first reported to e's
// FailureObservers (sim.Engine.NotifyFailure) so a registered flight
// recorder auto-dumps the event tail before the caller acts on the
// error. e may be nil.
func (rv *RateValidator) CheckAndNotify(e *sim.Engine) error {
	err := rv.Check()
	if err != nil && e != nil {
		e.NotifyFailure("rate validator: " + err.Error())
	}
	return err
}

// CheckBudget limits the quadratic exact check to edges with at most
// maxPerEdge recorded injections and uses a linear sliding scan (all
// windows of every length up to maxWin) for busier edges. For the
// paper's constructions (single-edge streams at fixed rates) the
// linear scan at the stream's own granularity is tight in practice.
func (rv *RateValidator) CheckBudget(maxPerEdge int, maxWin int64) error {
	rv.u.sortAll()
	for e, ts := range rv.u.times {
		if len(ts) <= maxPerEdge {
			if err := checkAllIntervals(e, ts, rv.Rate); err != nil {
				return err
			}
			continue
		}
		if err := checkAnchoredIntervals(e, ts, rv.Rate, maxWin); err != nil {
			return err
		}
	}
	return nil
}

func checkAllIntervals(e graph.EdgeID, ts []int64, rate rational.Rat) error {
	for i := 0; i < len(ts); i++ {
		for j := i; j < len(ts); j++ {
			count := int64(j - i + 1)
			bound := rate.CeilMulInt(ts[j] - ts[i] + 1)
			if count > bound {
				return Violation{Edge: e, T1: ts[i], T2: ts[j], Count: count, Bound: bound}
			}
		}
	}
	return nil
}

// checkAnchoredIntervals checks, for every injection i, the intervals
// [ts[i], ts[j]] with ts[j]-ts[i] <= maxWin, plus the full span. This
// is not exhaustive but catches every violation whose tight window is
// at most maxWin long.
func checkAnchoredIntervals(e graph.EdgeID, ts []int64, rate rational.Rat, maxWin int64) error {
	for i := 0; i < len(ts); i++ {
		for j := i; j < len(ts); j++ {
			width := ts[j] - ts[i] + 1
			if width > maxWin && j != len(ts)-1 {
				break
			}
			count := int64(j - i + 1)
			bound := rate.CeilMulInt(width)
			if count > bound {
				return Violation{Edge: e, T1: ts[i], T2: ts[j], Count: count, Bound: bound}
			}
			if width > maxWin {
				break
			}
		}
	}
	// Full span.
	if n := len(ts); n > 0 {
		count := int64(n)
		bound := rate.CeilMulInt(ts[n-1] - ts[0] + 1)
		if count > bound {
			return Violation{Edge: e, T1: ts[0], T2: ts[n-1], Count: count, Bound: bound}
		}
	}
	return nil
}

// EdgeInjections returns the recorded injection times for an edge
// (sorted copy), for tests and diagnostics.
func (rv *RateValidator) EdgeInjections(e graph.EdgeID) []int64 {
	rv.u.sortAll()
	return append([]int64{}, rv.u.times[e]...)
}

// WindowValidator verifies Definition 2.1: a (w,r) adversary may, in
// every window of w consecutive steps, inject at most floor(r·w)
// packets requiring any single edge. Like RateValidator it observes
// the execution and answers at Check time.
type WindowValidator struct {
	W    int64
	Rate rational.Rat
	u    *usage
}

// NewWindowValidator returns a validator for a (w,r) adversary.
func NewWindowValidator(w int64, rate rational.Rat) *WindowValidator {
	if err := CheckWindow(w); err != nil {
		panic(err)
	}
	return &WindowValidator{W: w, Rate: rate, u: newUsage()}
}

// OnStep implements sim.Observer.
func (wv *WindowValidator) OnStep(*sim.Engine) {}

// AcceptLeap implements sim.LeapObserver: like RateValidator, the
// window validator only records injections and reroutes, of which
// static windows have none.
func (wv *WindowValidator) AcceptLeap(sim.LeapKind) bool { return true }

// OnLeap implements sim.LeapObserver (nothing to record).
func (wv *WindowValidator) OnLeap(*sim.Engine, sim.LeapInfo) {}

// OnInject implements sim.InjectionObserver.
func (wv *WindowValidator) OnInject(t int64, p *packet.Packet) {
	if t == 0 {
		return
	}
	wv.u.add(t, p.Route)
}

// OnReroute implements sim.RerouteObserver; added edges charge the
// packet's injection time.
func (wv *WindowValidator) OnReroute(t int64, p *packet.Packet, oldRoute []graph.EdgeID) {
	if p.InjectedAt == 0 {
		return
	}
	old := make(map[graph.EdgeID]bool, len(oldRoute))
	for _, e := range oldRoute {
		old[e] = true
	}
	var added []graph.EdgeID
	for _, e := range p.Route {
		if !old[e] {
			added = append(added, e)
		}
	}
	wv.u.add(p.InjectedAt, added)
}

// Bound returns the per-window per-edge injection bound floor(r·w).
func (wv *WindowValidator) Bound() int64 { return wv.Rate.FloorMulInt(wv.W) }

// CheckAndNotify is Check with sim.Engine.NotifyFailure on violation,
// mirroring RateValidator.CheckAndNotify. e may be nil.
func (wv *WindowValidator) CheckAndNotify(e *sim.Engine) error {
	err := wv.Check()
	if err != nil && e != nil {
		e.NotifyFailure("window validator: " + err.Error())
	}
	return err
}

// Check verifies every w-window with a sliding two-pointer scan per
// edge — O(k) per edge. Returns nil when compliant.
func (wv *WindowValidator) Check() error {
	wv.u.sortAll()
	bound := wv.Bound()
	for e, ts := range wv.u.times {
		lo := 0
		for hi := range ts {
			for ts[hi]-ts[lo] >= wv.W {
				lo++
			}
			if count := int64(hi - lo + 1); count > bound {
				return Violation{Edge: e, T1: ts[lo], T2: ts[hi], Count: count, Bound: bound}
			}
		}
	}
	return nil
}
