package adversary

import (
	"fmt"
	"sort"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// Recorder captures the complete injection schedule of an execution —
// including the routes as they stand after all Lemma 3.3 extensions —
// so the execution can be replayed by an *oblivious* adversary that
// injects every packet with its final route up front.
//
// This makes Remark 1 of the paper executable: the dynamic adversary
// used by the constructions "is only a matter of presentation"; the
// actual adversary is a plain rate-r injection sequence. Record a
// construction run, call Finish, and (a) validate the final-route
// schedule against the rate-r definition directly (no reroute
// charging needed), and (b) replay it against a fresh engine and
// observe the identical execution (for historic policies, claim (1)
// of Lemma 3.3).
type ScheduleRecorder struct {
	pkts  []*packet.Packet // in admission order (seeds first)
	steps []int64          // injection step per packet
	done  bool
	rec   []RecordedInjection
}

// RecordedInjection is one packet of a finished recording.
type RecordedInjection struct {
	Step  int64 // 0 = initial-configuration seed
	Route []graph.EdgeID
	Tag   string
}

// NewRecorder returns an empty recorder; attach it with AddObserver
// before seeding the engine.
func NewScheduleRecorder() *ScheduleRecorder { return &ScheduleRecorder{} }

// OnStep implements sim.Observer.
func (r *ScheduleRecorder) OnStep(*sim.Engine) {}

// OnInject implements sim.InjectionObserver.
func (r *ScheduleRecorder) OnInject(t int64, p *packet.Packet) {
	if r.done {
		panic("adversary: Recorder used after Finish")
	}
	r.pkts = append(r.pkts, p)
	r.steps = append(r.steps, t)
}

// OnReroute implements sim.RerouteObserver. Nothing to store: the
// final route is read from the packet at Finish time.
func (r *ScheduleRecorder) OnReroute(int64, *packet.Packet, []graph.EdgeID) {}

// Finish freezes the recording, snapshotting every packet's final
// route. Call it after the recorded run completes (further reroutes
// would not be seen).
func (r *ScheduleRecorder) Finish() []RecordedInjection {
	if r.done {
		return r.rec
	}
	r.done = true
	r.rec = make([]RecordedInjection, len(r.pkts))
	for i, p := range r.pkts {
		route := make([]graph.EdgeID, len(p.Route))
		copy(route, p.Route)
		r.rec[i] = RecordedInjection{Step: r.steps[i], Route: route, Tag: p.Tag}
	}
	r.pkts = nil
	return r.rec
}

// Len returns the number of recorded packets so far.
func (r *ScheduleRecorder) Len() int {
	if r.done {
		return len(r.rec)
	}
	return len(r.pkts)
}

// Replay is an oblivious adversary that re-issues a finished
// recording: each packet is injected at its original step with its
// final route. Seeds (step 0) are not injected by Replay; pass them to
// the engine with SeedRecording before stepping.
type Replay struct {
	byStep map[int64][]packet.Injection
	last   int64
	steps  []int64 // distinct injection steps, increasing
	cursor int     // index of the first step not yet known to be past
	lastT  int64   // last step Inject ran at (0 before the first)
}

// NewReplay builds a Replay from a finished recording.
func NewReplay(rec []RecordedInjection) *Replay {
	rp := &Replay{byStep: make(map[int64][]packet.Injection)}
	for _, ri := range rec {
		if ri.Step == 0 {
			continue
		}
		rp.byStep[ri.Step] = append(rp.byStep[ri.Step], packet.Injection{
			Route: ri.Route,
			Tag:   ri.Tag,
		})
		if ri.Step > rp.last {
			rp.last = ri.Step
		}
	}
	for step := range rp.byStep {
		rp.steps = append(rp.steps, step)
	}
	sort.Slice(rp.steps, func(i, j int) bool { return rp.steps[i] < rp.steps[j] })
	return rp
}

// PreStep implements sim.Adversary.
func (*Replay) PreStep(*sim.Engine) {}

// Inject implements sim.Adversary.
func (rp *Replay) Inject(e *sim.Engine) []packet.Injection {
	rp.lastT = e.Now()
	return rp.byStep[e.Now()]
}

// StaticUntil implements sim.StaticAdversary: a recording is a pure
// schedule, so the replay is provably silent up to one step before the
// next recorded injection step after the last step Inject ran at
// (conservatively stale inside leaped windows, like BurstScript), and
// forever once the recording is exhausted.
func (rp *Replay) StaticUntil() int64 {
	for rp.cursor < len(rp.steps) && rp.steps[rp.cursor] <= rp.lastT {
		rp.cursor++
	}
	if rp.cursor == len(rp.steps) {
		return sim.Forever
	}
	return rp.steps[rp.cursor] - 1
}

// LastStep returns the last step with injections.
func (rp *Replay) LastStep() int64 { return rp.last }

// SeedRecording seeds a fresh engine with the recording's step-0
// packets (the initial configuration), final routes included.
func SeedRecording(e *sim.Engine, rec []RecordedInjection) {
	for _, ri := range rec {
		if ri.Step == 0 {
			e.Seed(packet.Injection{Route: ri.Route, Tag: ri.Tag})
		}
	}
}

// ValidateRecording checks the finished recording — final routes, at
// injection times — against the leaky-bucket rate-r definition: for
// every edge and every interval I, at most ceil(r·|I|) packets
// requiring the edge are injected during I. Seeds are excluded, as in
// RateValidator. maxPerEdge/maxWin bound the exact quadratic scan as
// in RateValidator.CheckBudget. Returns nil when compliant.
func ValidateRecording(rec []RecordedInjection, rate rational.Rat, maxPerEdge int, maxWin int64) error {
	u := newUsage()
	for _, ri := range rec {
		if ri.Step == 0 {
			continue
		}
		u.add(ri.Step, ri.Route)
	}
	u.sortAll()
	for e, ts := range u.times {
		if len(ts) <= maxPerEdge {
			if err := checkAllIntervals(e, ts, rate); err != nil {
				return err
			}
			continue
		}
		if err := checkAnchoredIntervals(e, ts, rate, maxWin); err != nil {
			return err
		}
	}
	return nil
}

// DivergenceAt compares two engines after the same number of steps and
// returns a description of the first difference found in aggregate
// state (nil when identical). Used by the replay experiments to show
// the adaptive and oblivious presentations generate the same
// execution.
func DivergenceAt(a, b *sim.Engine) error {
	if a.Now() != b.Now() {
		return fmt.Errorf("time differs: %d vs %d", a.Now(), b.Now())
	}
	if a.Injected() != b.Injected() {
		return fmt.Errorf("t=%d: injected %d vs %d", a.Now(), a.Injected(), b.Injected())
	}
	if a.Absorbed() != b.Absorbed() {
		return fmt.Errorf("t=%d: absorbed %d vs %d", a.Now(), a.Absorbed(), b.Absorbed())
	}
	if a.Graph().NumEdges() != b.Graph().NumEdges() {
		return fmt.Errorf("different graphs")
	}
	for eid := 0; eid < a.Graph().NumEdges(); eid++ {
		la, lb := a.QueueLen(graph.EdgeID(eid)), b.QueueLen(graph.EdgeID(eid))
		if la != lb {
			return fmt.Errorf("t=%d: queue at edge %d differs: %d vs %d", a.Now(), eid, la, lb)
		}
	}
	return nil
}

// SortedSteps returns the distinct injection steps of a recording in
// increasing order (diagnostics).
func SortedSteps(rec []RecordedInjection) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, ri := range rec {
		if !seen[ri.Step] {
			seen[ri.Step] = true
			out = append(out, ri.Step)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
