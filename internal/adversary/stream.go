// Package adversary implements the adversaries of adversarial queuing
// theory: scripted injection streams, the (w,r) windowed adversary of
// Borodin et al. (Definition 2.1 of the paper), the leaky-bucket
// rate-r adversary of Andrews et al., compliance validators for both,
// the on-line rerouting machinery of Lemma 3.3, and the initial-
// configuration reduction of Observation 4.4.
package adversary

import (
	"fmt"

	"aqt/internal/graph"
	"aqt/internal/packet"
	"aqt/internal/rational"
	"aqt/internal/sim"
)

// Stream describes one paced injection stream: starting at step Start,
// inject packets at exactly rate Rate (cumulatively floor(rate·k)
// packets over the stream's first k active steps) until Budget packets
// have been injected (Budget < 0 means unbounded).
//
// Exactly one of Route and RouteFn must be set. RouteFn receives the
// 0-based index of the packet within the stream, letting one stream
// emit position-dependent routes (Lemma 3.15 needs "the first n
// packets have path of length 1, the rest ...").
type Stream struct {
	Name    string
	Start   int64
	Rate    rational.Rat
	Budget  int64
	Route   []graph.EdgeID
	RouteFn func(k int64) []graph.EdgeID
	Tag     string
}

// runningStream couples a Stream with its pacing state.
type runningStream struct {
	Stream
	pacer *rational.CappedPacer
	count int64
	idx   int // AddStream order, stable across compaction (checkpoint key)
}

func (rs *runningStream) done() bool { return rs.pacer.Done() }

// Script is an Adversary built from a set of Streams. Streams may be
// added at any time, including mid-run by phase controllers. The zero
// value is an empty script that injects nothing.
type Script struct {
	streams []*runningStream
	added   int                 // total AddStream calls (checkpoint stream keys)
	pre     func(e *sim.Engine) // optional PreStep hook (rerouting)
}

// NewScript returns a Script with the given initial streams.
func NewScript(streams ...Stream) *Script {
	s := &Script{}
	for _, st := range streams {
		s.AddStream(st)
	}
	return s
}

// AddStream registers a stream. It panics on an invalid specification.
func (s *Script) AddStream(st Stream) {
	if err := CheckStream(st); err != nil {
		panic(err)
	}
	budget := st.Budget
	if budget < 0 {
		budget = 1<<62 - 1
	}
	s.streams = append(s.streams, &runningStream{
		Stream: st,
		pacer:  rational.NewCappedPacer(st.Rate, budget),
		idx:    s.added,
	})
	s.added++
}

// SetPreStep installs a PreStep hook (used for Lemma 3.3 rerouting).
func (s *Script) SetPreStep(fn func(e *sim.Engine)) { s.pre = fn }

// PreStep implements sim.Adversary.
func (s *Script) PreStep(e *sim.Engine) {
	if s.pre != nil {
		s.pre(e)
	}
}

// Inject implements sim.Adversary.
func (s *Script) Inject(e *sim.Engine) []packet.Injection {
	t := e.Now()
	var out []packet.Injection
	n := 0
	for _, rs := range s.streams {
		if rs.done() {
			continue // drop exhausted streams below
		}
		s.streams[n] = rs
		n++
		if t < rs.Start {
			continue
		}
		for k := rs.pacer.Tick(); k > 0; k-- {
			route := rs.Route
			if rs.RouteFn != nil {
				route = rs.RouteFn(rs.count)
			}
			rs.count++
			out = append(out, packet.Injection{
				Route:      route,
				Tag:        rs.Tag,
				SourceName: rs.Name,
			})
		}
	}
	s.streams = s.streams[:n]
	return out
}

// StaticUntil implements sim.StaticAdversary. A stream that has not
// started yet is provably silent through Start−1 and skipping those
// steps leaves it untouched (Inject returns before its pacer ticks).
// A started stream, by contrast, ticks its pacer every step — even
// steps yielding zero packets advance pacing state — so it pins the
// horizon into the past (Start−1 < now), disabling leaps until it
// exhausts its budget. A PreStep hook could do anything, so it
// disables leaping outright.
func (s *Script) StaticUntil() int64 {
	if s.pre != nil {
		return 0
	}
	h := sim.Forever
	for _, rs := range s.streams {
		if rs.done() {
			continue
		}
		if rs.Start-1 < h {
			h = rs.Start - 1
		}
	}
	return h
}

// Idle reports whether every stream has exhausted its budget.
func (s *Script) Idle() bool {
	for _, rs := range s.streams {
		if !rs.done() {
			return false
		}
	}
	return true
}

// PendingBudget returns the total number of packets the script still
// intends to inject.
func (s *Script) PendingBudget() int64 {
	var sum int64
	for _, rs := range s.streams {
		sum += rs.pacer.Remaining()
	}
	return sum
}

// Sequence chains adversaries: each phase runs until its Done
// condition reports true, then the next phase starts. It is the glue
// of the Theorem 3.17 iterative construction.
type Sequence struct {
	phases []Phase
	cur    int
	onSwap func(idx int, e *sim.Engine)
}

// Phase is one stage of a Sequence. Enter is called once when the
// phase becomes current (at the PreStep of its first step); its
// returned adversary then drives injections until Done fires, which is
// evaluated at the start of every step before delegation.
type Phase struct {
	Name  string
	Enter func(e *sim.Engine) sim.Adversary
	Done  func(e *sim.Engine) bool

	// Until, when set, points at the phase's leap horizon: an absolute
	// step H such that Done is guaranteed false for every step t <= H,
	// so the Sequence cannot advance inside (now, H]. Phases with a
	// known end time point it at the variable their Enter hook assigns
	// (the lemma drains and pumps set end = τ+…) — a pointer rather
	// than a closure so constructing a phase stays allocation-free; it
	// is only read after Enter ran. Leaving Until nil merely disables
	// leaping while the phase is current. See Sequence.StaticUntil.
	Until *int64

	adv sim.Adversary
}

// NewSequence returns a Sequence over the given phases.
func NewSequence(phases ...Phase) *Sequence {
	return &Sequence{phases: phases}
}

// OnPhaseChange installs a callback fired when a phase is entered.
func (q *Sequence) OnPhaseChange(fn func(idx int, e *sim.Engine)) { q.onSwap = fn }

// Current returns the current phase index (== len(phases) when done).
func (q *Sequence) Current() int { return q.cur }

// Finished reports whether all phases completed.
func (q *Sequence) Finished() bool { return q.cur >= len(q.phases) }

// advance enters phases until the current one is not yet done. Every
// phase entry is announced to the engine's MarkerObservers via
// Annotate, so a flight recorder sees the paper-level phase structure
// (the Lemma 3.6/3.13/3.15/3.16 names) interleaved with the packet
// events. Phase names are built once at construction, so annotating
// is allocation-free (and a no-op without marker observers).
func (q *Sequence) advance(e *sim.Engine) {
	for q.cur < len(q.phases) {
		ph := &q.phases[q.cur]
		if ph.adv == nil {
			e.Annotate(ph.Name)
			if q.onSwap != nil {
				q.onSwap(q.cur, e)
			}
			ph.adv = ph.Enter(e)
			if ph.adv == nil {
				ph.adv = sim.NopAdversary{}
			}
		}
		if ph.Done == nil || !ph.Done(e) {
			return
		}
		q.cur++
	}
}

// PreStep implements sim.Adversary.
func (q *Sequence) PreStep(e *sim.Engine) {
	q.advance(e)
	if q.cur < len(q.phases) {
		q.phases[q.cur].adv.PreStep(e)
	}
}

// Inject implements sim.Adversary.
func (q *Sequence) Inject(e *sim.Engine) []packet.Injection {
	if q.cur < len(q.phases) {
		return q.phases[q.cur].adv.Inject(e)
	}
	return nil
}

// StaticUntil implements sim.StaticAdversary: the schedule is static
// up to the sooner of the current phase's Done horizon (Until) and its
// inner adversary's own static horizon. Both must be known — a phase
// whose Enter has not yet run could do anything at its first PreStep,
// and advancing phases mid-window would skip Annotate markers and
// onSwap callbacks — so any missing piece reports "no guarantee".
// A finished Sequence is permanently silent.
func (q *Sequence) StaticUntil() int64 {
	if q.Finished() {
		return sim.Forever
	}
	ph := &q.phases[q.cur]
	if ph.adv == nil || ph.Until == nil {
		return 0
	}
	inner, ok := ph.adv.(sim.StaticAdversary)
	if !ok {
		return 0
	}
	h := *ph.Until
	if ih := inner.StaticUntil(); ih < h {
		h = ih
	}
	return h
}

// PhaseName returns the current phase's name, or "done".
func (q *Sequence) PhaseName() string {
	if q.Finished() {
		return "done"
	}
	return q.phases[q.cur].Name
}

// String implements fmt.Stringer.
func (q *Sequence) String() string {
	return fmt.Sprintf("Sequence(phase %d/%d: %s)", q.cur, len(q.phases), q.PhaseName())
}
