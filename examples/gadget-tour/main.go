// Gadget tour: a guided, instrumented walk through one application of
// the Lemma 3.6 pump — the paper's core mechanism. It seeds the gadget
// invariant C(S, F), runs the four-part adversary, and prints the
// quantities each claim of section 3.2 speaks about, next to the
// paper's exact predictions.
package main

import (
	"fmt"

	"aqt"
)

func main() {
	eps := aqt.R(1, 5)
	p := aqt.Solve(eps)
	s := 2 * p.S0
	fmt.Printf("parameters for eps = %v (Lemma 3.6): r = %v, n = %d, S0 = %d; using S = %d\n\n",
		eps, p.R, p.N, p.S0, s)

	fmt.Println("stream plan (the four parts of the adversary):")
	fmt.Printf("  (1) extend the 2S = %d old packets' routes into the next gadget\n", 2*s)
	for i := 1; i <= p.N; i++ {
		fmt.Printf("  (2) e'_%d: single-edge packets at rate %v during [%d, %d]\n",
			i, p.R, i, int64(i)+p.Ti(s, i))
	}
	fmt.Printf("  (3) rS = %d long packets through both gadgets during [1, %d]\n",
		p.R.FloorMulInt(s), s)
	fmt.Printf("  (4) X = %d tail packets at a' from step %d (Claim 3.7: 0 < X <= rS)\n\n",
		p.X(s), s+int64(p.N)+1)

	// Build, seed, pump.
	c := aqt.NewChain(p.N, 2, false)
	e := aqt.NewEngine(c.G, aqt.FIFO{}, nil)
	c.SeedInvariant(e, 1, int(s))
	fmt.Printf("t=0: C(S, F) seeded: %d packets across e_1..e_%d, %d at the ingress\n",
		s, p.N, s)

	// Replay the pump by hand so we can probe mid-flight.
	script := aqt.NewScript()
	for i := 1; i <= p.N; i++ {
		script.AddStream(aqt.Stream{
			Start: int64(i), Rate: p.R,
			Budget: p.R.FloorMulInt(p.Ti(s, i) + 1),
			Route:  []aqt.EdgeID{c.EPath(2)[i-1]},
		})
	}
	long := append(append([]aqt.EdgeID{}, c.LongRoute(1)...), c.FPath(2)...)
	long = append(long, c.Egress(2))
	script.AddStream(aqt.Stream{Start: 1, Rate: p.R, Budget: p.R.FloorMulInt(s), Route: long})
	tail := append([]aqt.EdgeID{c.Ingress(2)}, c.FPath(2)...)
	tail = append(tail, c.Egress(2))
	script.AddStream(aqt.Stream{Start: s + int64(p.N) + 1, Rate: p.R, Budget: p.X(s), Route: tail})

	ext := append(append([]aqt.EdgeID{}, c.EPath(2)...), c.Egress(2))
	for _, eid := range c.GadgetEdges(1) {
		q := e.Queue(eid)
		for i := 0; i < q.Len(); i++ {
			e.ExtendRoute(q.At(i), ext)
		}
	}
	e.SetAdversary(script)

	// Claim 3.9(2): old packets arrive at e'_i at rate R_i. Probe the
	// e'_1 and e'_n buffers at the midpoint and the end.
	for e.Now() < s {
		e.Step()
	}
	fmt.Printf("t=S=%d: mid-pump, e'_1 queue %d, e'_%d queue %d, a' queue %d\n",
		s, e.QueueLen(c.EPath(2)[0]), p.N, e.QueueLen(c.EPath(2)[p.N-1]),
		e.QueueLen(c.Egress(1)))
	for e.Now() < 2*s+int64(p.N) {
		e.Step()
	}

	// Claims 3.10-3.12 at t = 2S + n.
	sPrime := p.SPrime(s)
	rep := c.CheckInvariant(e, 2, true)
	fmt.Printf("t=2S+n=%d: C(S', F') established on the next gadget:\n", 2*s+int64(p.N))
	fmt.Printf("  e'-buffers hold %d old packets (Claim 3.10 predicts S' = %d)\n",
		rep.ETotal, sPrime)
	fmt.Printf("  a' queue holds %d long packets (Claim 3.12 predicts S' = %d)\n",
		rep.AQueue, sPrime)
	fmt.Printf("  every e'-buffer nonempty: %v (Claim 3.11)\n", len(rep.EmptyE) == 0)
	fmt.Printf("  gadget 1 empty: %v (Lemma 3.6)\n", c.TotalQueuedInGadget(e, 1) == 0)
	fmt.Printf("\nS = %d -> S' = %d: growth x%.4f (lemma guarantees >= 1+eps = %.2f)\n",
		s, rep.S(), float64(rep.S())/float64(s), 1+eps.Float())
}
