// Policy comparison: the adversary pattern that blows FIFO up
// (Theorem 3.17) is harmless under other scheduling disciplines. This
// example replays the same gadget-chain workload shape against every
// built-in policy and reports which backlogs compound — an executable
// version of the paper's opening observation that stability depends on
// the queuing policy, not just the load.
package main

import (
	"fmt"

	"aqt"
)

func main() {
	// One pump on a 2-gadget chain, per policy: seed the C(S, F)
	// invariant and replay the *identical* injection schedule that
	// Lemma 3.6 prescribes for FIFO; then compare how much of the
	// backlog survives at the target gadget.
	fmt.Println("identical Lemma 3.6 injection schedule, different policies:")
	fmt.Printf("%-8s %-10s %-12s %-10s\n", "policy", "S before", "S' after", "grew?")

	for _, pol := range aqt.Policies() {
		sBefore, sAfter := onePump(pol)
		fmt.Printf("%-8s %-10d %-12d %-10v\n", pol.Name(), sBefore, sAfter, sAfter > sBefore)
	}
	fmt.Println("\nFIFO's arrival-order mixing sustains the pump. NTG also traps the")
	fmt.Println("old packets (it is not universally stable either; cf. Borodin et al.),")
	fmt.Println("while LIS, SIS, FTG, FFS, NFS and LIFO all break the invariant the")
	fmt.Println("adversary relies on.")
}

// onePump seeds C(S, F) on gadget 1 of a depth-9 chain and replays the
// FIFO pump schedule (part 2/3/4 streams with the FIFO-computed
// parameters) under the given policy. Returns the invariant sizes
// before and after. Note the schedule is computed for FIFO and then
// frozen — the adversary is oblivious, exactly as in the paper.
func onePump(pol aqt.Policy) (before, after int64) {
	p := aqt.Solve(aqt.R(1, 5))
	c := aqt.NewChain(p.N, 2, false)
	e := aqt.NewEngine(c.G, pol, nil)
	s := 2 * p.S0
	c.SeedInvariant(e, 1, int(s))
	before = s

	// The frozen FIFO schedule: short streams on the e'-path, the long
	// stream through both gadgets, and the tail stream (Lemma 3.6).
	script := aqt.NewScript()
	for i := 1; i <= p.N; i++ {
		script.AddStream(aqt.Stream{
			Start: int64(i), Rate: p.R,
			Budget: p.R.FloorMulInt(p.Ti(s, i) + 1),
			Route:  []aqt.EdgeID{c.EPath(2)[i-1]},
		})
	}
	long := append(append([]aqt.EdgeID{}, c.LongRoute(1)...), c.FPath(2)...)
	long = append(long, c.Egress(2))
	script.AddStream(aqt.Stream{Start: 1, Rate: p.R, Budget: p.R.FloorMulInt(s), Route: long})
	tail := append([]aqt.EdgeID{c.Ingress(2)}, c.FPath(2)...)
	tail = append(tail, c.Egress(2))
	script.AddStream(aqt.Stream{Start: s + int64(p.N) + 1, Rate: p.R, Budget: p.X(s), Route: tail})

	// Old packets continue into gadget 2 (the Lemma 3.3 extension).
	ext := append(append([]aqt.EdgeID{}, c.EPath(2)...), c.Egress(2))
	for _, eid := range c.GadgetEdges(1) {
		q := e.Queue(eid)
		for i := 0; i < q.Len(); i++ {
			e.ExtendRoute(q.At(i), ext)
		}
	}
	e.SetAdversary(script)
	e.Run(2*s + int64(p.N))
	rep := c.CheckInvariant(e, 2, true)
	// Count only packets conforming to the C(S', F') invariant: the
	// e'-buffer total minus route mismatches (under LIS/FTG the old
	// packets escape and starved short packets pile up instead), and
	// the ingress queue of correctly-routed long packets.
	goodE := int64(rep.ETotal - rep.BadERoutes)
	after = goodE
	if int64(rep.AQueue) < after {
		after = int64(rep.AQueue)
	}
	return before, after
}
