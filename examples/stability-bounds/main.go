// Stability bounds (section 4 of the paper): any greedy protocol is
// stable under a (w,r) adversary with r <= 1/(d+1), and any
// time-priority protocol (FIFO, LIS) already at r <= 1/d; in both
// cases no packet ever waits more than floor(w*r) steps in one buffer
// — a bound independent of the network's size. This example verifies
// the bounds live on a complete graph for every built-in policy.
package main

import (
	"fmt"

	"aqt"
)

func main() {
	const d = 3         // longest route length
	const w = int64(40) // adversary window
	g := aqt.Complete(d + 2)

	fmt.Printf("network: complete digraph on %d nodes (%d edges); routes of <= %d hops\n\n",
		g.NumNodes(), g.NumEdges(), d)

	fmt.Printf("Theorem 4.1 — every greedy policy at r = 1/(d+1) = %v:\n", aqt.GreedyRateBound(d))
	rate := aqt.GreedyRateBound(d)
	for _, pol := range aqt.Policies() {
		adv := aqt.NewRandomWR(g, w, rate, d, 7)
		res := aqt.CheckResidence(g, pol, adv, w, rate, d, 20_000)
		fmt.Printf("  %s\n", res)
	}

	fmt.Printf("\nTheorem 4.3 — time-priority policies at the higher rate r = 1/d = %v:\n",
		aqt.TimePriorityRateBound(d))
	rate = aqt.TimePriorityRateBound(d)
	for _, pol := range aqt.Policies() {
		if !pol.Traits().TimePriority {
			continue
		}
		adv := aqt.NewRandomWR(g, w, rate, d, 11)
		res := aqt.CheckResidence(g, pol, adv, w, rate, d, 20_000)
		fmt.Printf("  %s\n", res)
	}

	fmt.Println("\nboth bounds depend only on (w, r) — never on the network size.")
}
