// FIFO instability (the paper's headline result, Theorem 3.17): on
// the cyclic gadget-chain graph G_ε, a rate-(1/2 + ε) adversary makes
// FIFO's backlog grow without bound. This example builds G_ε for
// ε = 1/5 (so r = 0.7), runs three full adversary cycles —
// bootstrap (Lemma 3.15), M−1 gadget pumps (Lemma 3.6 / 3.13), drain,
// stitch (Lemma 3.16) — and prints the compounding queue sizes.
package main

import (
	"fmt"

	"aqt"
)

func main() {
	eps := aqt.R(1, 5)
	ins := aqt.NewInstability(eps, aqt.InstabilityOptions{
		Validate: true, // check the Lemma 3.3 rerouting preconditions live
	})
	fmt.Printf("G_eps for eps = %v: r = %v, gadget depth n = %d, chain M = %d\n",
		eps, ins.P.R, ins.P.N, ins.M)
	fmt.Printf("graph: %d nodes, %d edges; initial queue S* = %d\n\n",
		ins.Chain.G.NumNodes(), ins.Chain.G.NumEdges(), ins.SStar)

	fmt.Println("cycle   S1 -> bootstrap -> chain+drain -> stitch   growth")
	for i := 0; i < 3; i++ {
		rec, ok := ins.RunCycle()
		if !ok {
			fmt.Println("cycle did not complete")
			return
		}
		fmt.Printf("%5d   %6d       %6d        %6d      %6d   x%.3f\n",
			rec.Cycle, rec.S1, rec.S2, rec.S3, rec.S4, rec.Growth())
	}
	if ins.Unstable() {
		fmt.Printf("\nthe backlog grew every cycle: FIFO is unstable at rate %v = 1/2 + %v\n",
			ins.P.R, eps)
		fmt.Println("(prior constructions needed r >= 0.749; see the B1 experiment)")
	}
}
