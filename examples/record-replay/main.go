// Record & replay (Remark 1 of the paper): the instability
// constructions are written as adaptive controllers — they reroute
// packets on-line and read measured queue sizes — but the paper
// insists the adversary is really an oblivious rate-r injection
// sequence ("this is just a matter of representation"). This example
// records one full Theorem 3.17 cycle, validates the recorded
// schedule directly against the rate-r definition, and replays it
// obliviously, verifying the executions match buffer for buffer.
package main

import (
	"fmt"

	"aqt"
	"aqt/internal/adversary"
	"aqt/internal/core"
	"aqt/internal/sim"
)

func main() {
	// A cheap pumping point: r = 3/4 with gadget depth 6 (S0 = 192).
	params := core.ParamsFor(aqt.R(3, 4), 6)
	rec := adversary.NewScheduleRecorder()
	ins := core.NewInstability(aqt.R(1, 4), core.InstabilityOptions{
		MarginM:   aqt.R(3, 2),
		Observers: []sim.Observer{rec},
		Params:    &params,
	})
	fmt.Printf("recording one adversary cycle on G (r = %v, n = %d, M = %d) ...\n",
		ins.P.R, ins.P.N, ins.M)
	cycle, ok := ins.RunCycle()
	if !ok {
		fmt.Println("cycle did not complete")
		return
	}
	schedule := rec.Finish()
	steps := ins.Engine.Now()
	fmt.Printf("recorded %d injections over %d steps; cycle grew the queue x%.3f\n\n",
		len(schedule), steps, cycle.Growth())

	// 1. The oblivious schedule — every packet with its final route,
	// charged at its injection time — satisfies the rate-r constraint
	// directly. No rerouting bookkeeping needed.
	if err := adversary.ValidateRecording(schedule, ins.P.R, 400, 4*ins.SStar); err != nil {
		fmt.Printf("rate-r validation FAILED: %v\n", err)
		return
	}
	fmt.Printf("rate-r validation: the full schedule is a plain rate-%v adversary\n", ins.P.R)

	// 2. Replaying the schedule obliviously reproduces the execution
	// exactly (FIFO is historic, Lemma 3.3 claim (1)).
	replay := sim.New(ins.Chain.G, aqt.FIFO{}, adversary.NewReplay(schedule))
	adversary.SeedRecording(replay, schedule)
	for replay.Now() < steps {
		replay.Step()
	}
	if err := adversary.DivergenceAt(ins.Engine, replay); err != nil {
		fmt.Printf("replay DIVERGED: %v\n", err)
		return
	}
	fmt.Println("oblivious replay: identical execution, every buffer equal at every edge")
	fmt.Println("\nthe adaptive presentation and the oblivious rate-r adversary are the same object.")
}
