// Quickstart: build a ring network, drive it with random
// (w,r)-compliant adversarial traffic under FIFO, and print queue
// statistics and a stability verdict — the smallest end-to-end tour of
// the library.
package main

import (
	"fmt"

	"aqt"
)

func main() {
	// A directed 8-cycle: every node is a switch, every edge a
	// unit-capacity link with a buffer at its tail.
	g := aqt.Ring(8)

	// A (w, r) adversary (Definition 2.1 of the paper): in every
	// window of w = 20 steps it injects at most floor(r*w) = 5 packets
	// requiring any single edge. Routes here are random simple paths
	// of at most d = 3 hops.
	const w, d = 20, 3
	rate := aqt.R(1, 4)
	adv := aqt.NewRandomWR(g, w, rate, d, 42)

	// Run FIFO for 10k steps, sampling the backlog.
	eng := aqt.NewEngine(g, aqt.FIFO{}, adv)
	rec := aqt.NewRecorder(20)
	eng.AddObserver(rec)
	eng.Run(10_000)

	snap := eng.Snap()
	fmt.Println("quickstart: FIFO on an 8-ring under a (20, 1/4) adversary")
	fmt.Printf("  injected %d, absorbed %d, in flight %d\n",
		snap.Injected, snap.Absorbed, snap.TotalQueued)
	fmt.Printf("  peak backlog %d packets\n", rec.PeakTotal())

	// Theorem 4.1: at r <= 1/(d+1) no packet waits more than
	// floor(w*r) steps in any one buffer — check it live.
	bound := aqt.ResidenceBound(w, rate)
	fmt.Printf("  max per-buffer residence %d (Theorem 4.1 bound %d)\n",
		eng.MaxResidence(true), bound)
	fmt.Printf("  verdict: %v\n", aqt.Classify(rec.Samples(), 1.25))
}
