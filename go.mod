module aqt

go 1.22
