// Command instability runs the paper's headline construction
// (Theorem 3.17): FIFO on the cyclic gadget chain G_ε at rate 1/2 + ε,
// reporting the queue blow-up per adversary cycle.
//
// Usage:
//
//	instability -eps 1/5 -cycles 4 [-sstar 0] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aqt/internal/core"
	"aqt/internal/rational"
)

func parseRat(s string) (rational.Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseInt(num, 10, 64)
		d, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return rational.Rat{}, fmt.Errorf("bad rational %q", s)
		}
		return rational.New(n, d), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return rational.Rat{}, fmt.Errorf("bad value %q", s)
	}
	return rational.FromFloat(f, 1_000_000), nil
}

func main() {
	epsStr := flag.String("eps", "1/5", "epsilon: the adversary rate is 1/2 + eps")
	cycles := flag.Int("cycles", 4, "adversary cycles to run")
	sstar := flag.Int64("sstar", 0, "initial queue S* (0 = 4*S0)")
	validate := flag.Bool("validate", true, "check the Lemma 3.3 rerouting preconditions at runtime")
	extraM := flag.Int("extram", 0, "extra gadgets beyond the computed chain length")
	flag.Parse()

	eps, err := parseRat(*epsStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "instability: %v\n", err)
		os.Exit(2)
	}
	ins := core.NewInstability(eps, core.InstabilityOptions{
		SStar:    *sstar,
		Validate: *validate,
		ExtraM:   *extraM,
	})
	fmt.Printf("%s\n", ins.P)
	fmt.Printf("rate r = %v, chain M = %d gadgets, graph %d nodes / %d edges, S* = %d\n",
		ins.P.R, ins.M, ins.Chain.G.NumNodes(), ins.Chain.G.NumEdges(), ins.SStar)
	fmt.Printf("per-pump growth (exact): %s ≈ %.4f\n\n", "2(1-R_n)", bigFloat(ins))

	fmt.Printf("%-6s %10s %10s %10s %10s %9s %12s\n",
		"cycle", "S1", "S2", "S3", "S4", "growth", "steps")
	for i := 0; i < *cycles; i++ {
		rec, ok := ins.RunCycle()
		fmt.Printf("%-6d %10d %10d %10d %10d %9.4f %12d\n",
			rec.Cycle, rec.S1, rec.S2, rec.S3, rec.S4, rec.Growth(), rec.Steps)
		if !ok {
			fmt.Fprintln(os.Stderr, "instability: cycle did not complete within its step cap")
			os.Exit(1)
		}
	}
	if ins.Unstable() {
		fmt.Printf("\nFIFO is UNSTABLE on G_eps at rate %v: the backlog grew every cycle.\n", ins.P.R)
	} else {
		fmt.Println("\nno sustained growth observed")
		os.Exit(1)
	}
}

func bigFloat(ins *core.Instability) float64 {
	f, _ := ins.P.PumpGrowth().Float64()
	return f
}
