// Command aqtsim runs a general adversarial-queuing simulation: pick a
// topology, a scheduling policy and a random (w,r) adversary, and get
// queue statistics plus a stability verdict.
//
// Usage:
//
//	aqtsim -topo ring -size 6 -policy FIFO -w 20 -rate 1/4 -maxlen 3 -steps 10000
//	aqtsim -topo line -size 4 -adv burst -cap 8 -drop ntg -steps 10000
//	aqtsim -scenario scenarios/quickstart.json
//
// Rates are rationals ("1/4") or decimals ("0.25"). With -scenario,
// the whole configuration comes from a declarative spec file instead
// (see internal/scenario); all other simulation flags are ignored.
package main

import (
	"flag"
	"fmt"
	"os"

	"aqt/internal/adversary"
	"aqt/internal/gadget"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/scenario"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

func buildTopo(name string, size int) (*graph.Graph, error) {
	switch name {
	case "ring":
		return graph.Ring(size), nil
	case "line":
		return graph.Line(size), nil
	case "complete":
		return graph.Complete(size), nil
	case "grid":
		return graph.Grid(size, size), nil
	case "dag":
		return graph.RandomDAG(size, size*2, 11), nil
	case "geps":
		// The paper's G_ε instability graph: a gadget chain of depth
		// size (min 3) with the Theorem 3.17 stitch edge.
		if size < 3 {
			size = 3
		}
		return gadget.NewChain(size, 3, true).G, nil
	default:
		return nil, fmt.Errorf("unknown topology %q (ring|line|complete|grid|dag|geps)", name)
	}
}

func main() {
	topo := flag.String("topo", "ring", "topology: ring|line|complete|grid|dag|geps")
	size := flag.Int("size", 6, "topology size parameter")
	polName := flag.String("policy", "FIFO", "scheduling policy (see -policies)")
	listPols := flag.Bool("policies", false, "list policies and exit")
	w := flag.Int64("w", 20, "adversary window size")
	rateStr := flag.String("rate", "1/4", "adversary rate (per edge per window)")
	maxLen := flag.Int("maxlen", 3, "max route length d")
	steps := flag.Int64("steps", 10000, "simulation steps")
	seed := flag.Int64("seed", 1, "adversary seed")
	advName := flag.String("adv", "random", "adversary: random (smooth (w,r) traffic) | burst (extremal single-step bursts)")
	leap := flag.Bool("leap", false, "run in leap mode (batch-advance provably static windows; identical results)")
	bufCap := flag.Int("cap", 0, "per-edge buffer capacity (0 = unbounded)")
	dropName := flag.String("drop", "tail", "drop policy at full buffers: tail|head|ntg (needs -cap >= 1)")
	validate := flag.Bool("validate", true, "run the (w,r) compliance validator")
	csv := flag.String("csv", "", "write the queue-size series to this file")
	trace := flag.String("trace", "", "write a flight-recorder JSONL event trace to this file")
	traceCap := flag.Int("tracecap", 4096, "flight-recorder ring capacity (latest events kept)")
	metrics := flag.Bool("metrics", false, "print the metrics-registry summary")
	serve := flag.String("serve", "", "serve live telemetry (/metrics /series /trace /healthz /debug/pprof) on this address, e.g. 127.0.0.1:8080")
	serveHold := flag.Bool("serve-hold", false, "with -serve: keep serving the final state after the run until killed")
	sampleEvery := flag.Int64("sample-every", 0, "telemetry sampling stride in steps (0 = auto ~512 samples; implies a sampler when -serve is set)")
	spans := flag.Int64("spans", 0, "trace per-packet spans for ~1/N of packet IDs (0 = off, 1 = every packet)")
	checkpointFile := flag.String("checkpoint", "", "write an engine checkpoint (JSON) to this file after the run")
	restoreFile := flag.String("restore", "", "restore engine state from this checkpoint file before running -steps more steps (observer series restart at the resume point)")
	scenarioFile := flag.String("scenario", "", "run a declarative scenario file instead (overrides topology/policy/adversary flags)")
	flag.Parse()

	if *scenarioFile != "" {
		os.Exit(runScenario(*scenarioFile))
	}
	if *listPols {
		for _, p := range policy.All() {
			tr := p.Traits()
			fmt.Printf("%-6s historic=%v timePriority=%v universallyStable=%v\n",
				p.Name(), tr.Historic, tr.TimePriority, tr.UniversallyStable)
		}
		return
	}
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "aqtsim: %v\n", err)
		os.Exit(2)
	}
	g, err := buildTopo(*topo, *size)
	if err != nil {
		die(err)
	}
	pol, err := policy.ByName(*polName)
	if err != nil {
		die(err)
	}
	rate, err := rational.Parse(*rateStr)
	if err != nil {
		die(err)
	}

	var adv sim.Adversary
	switch *advName {
	case "random":
		adv = adversary.NewRandomWR(g, *w, rate, *maxLen, *seed)
	case "burst":
		// The extremal (w,r) burst adversary reports static horizons
		// between bursts, so -leap has windows to skip; RandomWR draws
		// every step and never leaps.
		adv = adversary.MaxWindowBurst(g, *w, rate, *maxLen)
	default:
		die(fmt.Errorf("unknown adversary %q (random|burst)", *advName))
	}
	var cfg sim.Config
	if *bufCap < 0 {
		die(fmt.Errorf("-cap must be >= 0 (0 = unbounded), got %d", *bufCap))
	}
	if *bufCap > 0 {
		drop, err := sim.DropByName(*dropName)
		if err != nil {
			die(err)
		}
		cfg = sim.Config{BufferCap: *bufCap, Drop: drop}
	}
	eng := sim.NewWithConfig(g, pol, adv, cfg)
	rec := sim.NewRecorder(maxI64(*steps/512, 1))
	eng.AddObserver(rec)
	lat := &sim.LatencyObserver{}
	eng.AddObserver(lat)
	var wv *adversary.WindowValidator
	if *validate {
		wv = adversary.NewWindowValidator(*w, rate)
		eng.AddObserver(wv)
	}
	var fr *obs.FlightRecorder
	if *trace != "" {
		// Event interfaces only: the recorder rides the event hooks, not
		// the per-step dispatch loop.
		fr = obs.NewFlightRecorder(*traceCap)
		eng.AddEventObserver(fr)
	}
	var meter *obs.Meter
	if *metrics {
		meter = obs.NewMeter(nil)
		eng.AddObserver(meter)
	}
	var sam *obs.Sampler
	if *serve != "" || *sampleEvery > 0 {
		ev := *sampleEvery
		if ev <= 0 {
			ev = maxI64(*steps/512, 1)
		}
		sam = obs.NewSampler(obs.SamplerConfig{Every: ev, Meter: meter})
		sam.Attach(eng)
	}
	var spanTr *obs.SpanTracer
	if *spans > 0 {
		spanTr = obs.NewSpanTracer(obs.SpanConfig{SampleEvery: *spans, Seed: uint64(*seed)})
		spanTr.Attach(eng)
	}
	var srv *obs.Server
	var publish func()
	if *serve != "" {
		srv = obs.NewServer()
		var reg *obs.Registry
		if meter != nil {
			reg = meter.Registry()
		}
		publish = func() { srv.PublishTelemetry(eng.Now(), reg, sam, spanTr, fr) }
		// Publish at every sample boundary, from the engine goroutine —
		// handlers only ever read the published copies.
		sam.OnSample = publish
		addr, err := srv.Start(*serve)
		if err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", addr)
		publish()
	}
	if *restoreFile != "" {
		data, err := os.ReadFile(*restoreFile)
		if err != nil {
			die(err)
		}
		cp, err := sim.DecodeCheckpoint(data)
		if err != nil {
			die(err)
		}
		if err := eng.Restore(cp); err != nil {
			die(err)
		}
		fmt.Printf("restored %s at step %d; running %d more steps\n", *restoreFile, cp.Now, *steps)
	}
	if *leap {
		eng.RunLeap(*steps)
	} else {
		eng.Run(*steps)
	}
	if *checkpointFile != "" {
		cp, err := eng.Checkpoint()
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*checkpointFile, cp.Encode(), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("checkpoint written to %s (step %d)\n", *checkpointFile, eng.Now())
	}

	snap := eng.Snap()
	fmt.Printf("topology %s(%d): %d nodes, %d edges\n", *topo, *size, g.NumNodes(), g.NumEdges())
	fmt.Printf("policy %s, (w=%d, r=%v) %s adversary, d<=%d, %d steps\n", pol.Name(), *w, rate, *advName, *maxLen, *steps)
	if *leap {
		ls := eng.Leaps()
		fmt.Printf("leap: %d windows (%d idle, %d drain) covering %d of %d steps\n",
			ls.Windows, ls.Idle, ls.Drain, ls.Steps, *steps)
	}
	fmt.Printf("injected %d, absorbed %d, in flight %d\n", snap.Injected, snap.Absorbed, snap.TotalQueued)
	if eng.BufferCap() > 0 {
		fmt.Printf("buffer cap %d (drop %s): dropped %d\n", eng.BufferCap(), eng.Drop().Name(), snap.Dropped)
	}
	fmt.Printf("peak backlog %d; max single buffer %d (edge %s)\n",
		rec.PeakTotal(), snap.MaxQueueLen, g.EdgeName(snap.MaxQueueAt))
	fmt.Printf("max per-buffer residence %d (floor(w*r) bound: %d)\n",
		eng.MaxResidence(true), stability.ResidenceBound(*w, rate))
	fmt.Printf("%s\n", lat.Stats())
	fmt.Printf("engine: %s\n", snap.Stats)
	fmt.Printf("verdict: %v\n", stability.Classify(rec.Samples(), 1.25))
	fmt.Print(rec.AsciiPlot(64, 10))
	var violation error
	if wv != nil {
		// CheckAndNotify: a violation lands in the flight-recorder ring
		// as a failure event before the trace is dumped below.
		violation = wv.CheckAndNotify(eng)
		if violation != nil {
			fmt.Printf("(w,r) compliance: VIOLATED: %v\n", violation)
		} else {
			fmt.Println("(w,r) compliance: OK")
		}
	}
	if meter != nil {
		meter.Finish(eng)
		fmt.Println("metrics:")
		if err := meter.Registry().Snapshot().WriteText(os.Stdout); err != nil {
			die(err)
		}
	}
	if spanTr != nil {
		fmt.Printf("spans: %d completed (%d live, %d missed), ~1/%d of packet IDs\n",
			spanTr.DoneTotal(), spanTr.Live(), spanTr.Missed(), *spans)
		if err := spanTr.WriteResidenceText(os.Stdout); err != nil {
			die(err)
		}
	}
	if fr != nil {
		f, err := os.Create(*trace)
		if err != nil {
			die(err)
		}
		werr := fr.DumpJSONL(f)
		// The trace file carries the whole telemetry tail: flight events,
		// then completed spans, then sampler series — all one JSONL
		// schema, self-validated below.
		if werr == nil && spanTr != nil {
			werr = spanTr.DumpJSONL(f)
		}
		if werr == nil && sam != nil {
			werr = sam.DumpJSONL(f)
		}
		if werr != nil {
			f.Close()
			die(werr)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		// Self-check the dump against the JSONL schema — the contract
		// `make trace-smoke` relies on.
		f2, err := os.Open(*trace)
		if err != nil {
			die(err)
		}
		n, verr := obs.ValidateJSONL(f2)
		f2.Close()
		if verr != nil {
			die(fmt.Errorf("trace schema: %w", verr))
		}
		fmt.Printf("trace: %d events written to %s (%d recorded, %d overwritten), schema OK\n",
			n, *trace, fr.Total(), fr.Overwritten())
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			die(err)
		}
		fmt.Printf("series written to %s\n", *csv)
	}
	if srv != nil {
		// Publish the end-of-run state (post-Finish counters included).
		publish()
		if *serveHold {
			fmt.Fprintln(os.Stderr, "telemetry: run finished; holding server until killed")
			select {}
		}
		srv.Close()
	}
	if violation != nil {
		os.Exit(1)
	}
}

// runScenario loads, builds and runs one scenario file, printing the
// same deterministic report as `scenario run`. Exit 0 on success, 1 on
// failed checks, 2 on a bad spec.
func runScenario(path string) int {
	b, err := scenario.BuildFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aqtsim: %v\n", err)
		return 2
	}
	out := b.Run()
	b.WriteReport(os.Stdout, out)
	if !out.OK() {
		return 1
	}
	return 0
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
