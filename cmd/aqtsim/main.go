// Command aqtsim runs a general adversarial-queuing simulation: pick a
// topology, a scheduling policy and a random (w,r) adversary, and get
// queue statistics plus a stability verdict.
//
// Usage:
//
//	aqtsim -topo ring -size 6 -policy FIFO -w 20 -rate 1/4 -maxlen 3 -steps 10000
//
// Rates are rationals ("1/4") or decimals ("0.25").
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

func parseRate(s string) (rational.Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseInt(num, 10, 64)
		d, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return rational.Rat{}, fmt.Errorf("bad rational %q", s)
		}
		return rational.New(n, d), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return rational.Rat{}, fmt.Errorf("bad rate %q", s)
	}
	return rational.FromFloat(f, 1_000_000), nil
}

func buildTopo(name string, size int) (*graph.Graph, error) {
	switch name {
	case "ring":
		return graph.Ring(size), nil
	case "line":
		return graph.Line(size), nil
	case "complete":
		return graph.Complete(size), nil
	case "grid":
		return graph.Grid(size, size), nil
	case "dag":
		return graph.RandomDAG(size, size*2, 11), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (ring|line|complete|grid|dag)", name)
	}
}

func main() {
	topo := flag.String("topo", "ring", "topology: ring|line|complete|grid|dag")
	size := flag.Int("size", 6, "topology size parameter")
	polName := flag.String("policy", "FIFO", "scheduling policy (see -policies)")
	listPols := flag.Bool("policies", false, "list policies and exit")
	w := flag.Int64("w", 20, "adversary window size")
	rateStr := flag.String("rate", "1/4", "adversary rate (per edge per window)")
	maxLen := flag.Int("maxlen", 3, "max route length d")
	steps := flag.Int64("steps", 10000, "simulation steps")
	seed := flag.Int64("seed", 1, "adversary seed")
	validate := flag.Bool("validate", true, "run the (w,r) compliance validator")
	csv := flag.String("csv", "", "write the queue-size series to this file")
	flag.Parse()

	if *listPols {
		for _, p := range policy.All() {
			tr := p.Traits()
			fmt.Printf("%-6s historic=%v timePriority=%v universallyStable=%v\n",
				p.Name(), tr.Historic, tr.TimePriority, tr.UniversallyStable)
		}
		return
	}
	die := func(err error) {
		fmt.Fprintf(os.Stderr, "aqtsim: %v\n", err)
		os.Exit(2)
	}
	g, err := buildTopo(*topo, *size)
	if err != nil {
		die(err)
	}
	pol, err := policy.ByName(*polName)
	if err != nil {
		die(err)
	}
	rate, err := parseRate(*rateStr)
	if err != nil {
		die(err)
	}

	adv := adversary.NewRandomWR(g, *w, rate, *maxLen, *seed)
	eng := sim.New(g, pol, adv)
	rec := sim.NewRecorder(maxI64(*steps/512, 1))
	eng.AddObserver(rec)
	lat := &sim.LatencyObserver{}
	eng.AddObserver(lat)
	var wv *adversary.WindowValidator
	if *validate {
		wv = adversary.NewWindowValidator(*w, rate)
		eng.AddObserver(wv)
	}
	eng.Run(*steps)

	snap := eng.Snap()
	fmt.Printf("topology %s(%d): %d nodes, %d edges\n", *topo, *size, g.NumNodes(), g.NumEdges())
	fmt.Printf("policy %s, (w=%d, r=%v) adversary, d<=%d, %d steps\n", pol.Name(), *w, rate, *maxLen, *steps)
	fmt.Printf("injected %d, absorbed %d, in flight %d\n", snap.Injected, snap.Absorbed, snap.TotalQueued)
	fmt.Printf("peak backlog %d; max single buffer %d (edge %s)\n",
		rec.PeakTotal(), snap.MaxQueueLen, g.EdgeName(snap.MaxQueueAt))
	fmt.Printf("max per-buffer residence %d (floor(w*r) bound: %d)\n",
		eng.MaxResidence(true), stability.ResidenceBound(*w, rate))
	fmt.Printf("%s\n", lat.Stats())
	fmt.Printf("engine: %s\n", snap.Stats)
	fmt.Printf("verdict: %v\n", stability.Classify(rec.Samples(), 1.25))
	fmt.Print(rec.AsciiPlot(64, 10))
	if wv != nil {
		if err := wv.Check(); err != nil {
			fmt.Printf("(w,r) compliance: VIOLATED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("(w,r) compliance: OK")
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			die(err)
		}
		fmt.Printf("series written to %s\n", *csv)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
