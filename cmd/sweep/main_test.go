package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the sweep golden files")

// The two configurations below are the same ones `make sweep-smoke`
// runs; the goldens pin their exact output, and the 1-vs-8 worker
// comparison pins that the pool introduces no ordering or verdict
// nondeterminism.

func sweepOut(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb strings.Builder
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("sweep %v exited %d: %s", args, code, errb.String())
	}
	return out.String()
}

func checkDeterministic(t *testing.T, golden string, args ...string) {
	t.Helper()
	w1 := sweepOut(t, append([]string{"-workers", "1"}, args...)...)
	w8 := sweepOut(t, append([]string{"-workers", "8"}, args...)...)
	if w1 != w8 {
		t.Errorf("output differs between -workers 1 and -workers 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", w1, w8)
	}
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(w1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if w1 != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, w1, want)
	}
}

func TestRateSweepDeterministicAcrossWorkers(t *testing.T) {
	checkDeterministic(t, "rate_sweep.golden",
		"-n", "6", "-from", "0.5", "-to", "0.8", "-points", "7", "-scap", "800")
}

func TestDepthSweepDeterministicAcrossWorkers(t *testing.T) {
	checkDeterministic(t, "depth_sweep.golden",
		"-rate", "0.7", "-depths", "3,4,6", "-scap", "800")
}

func TestSweepBadDepth(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rate", "0.7", "-depths", "3,x"}, &out, &errb); code != 2 {
		t.Fatalf("bad depth exited %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "bad depth") {
		t.Errorf("stderr = %q", errb.String())
	}
}
