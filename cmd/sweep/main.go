// Command sweep measures how the gadget pump's growth factor depends
// on the injection rate and the pipeline depth n — the quantitative
// heart of the paper: the pump multiplies the queue by 2(1 − R_n),
// which exceeds 1 exactly when rⁿ < 2r − 1, and approaches 2r as
// n → ∞, so arbitrarily small ε = r − 1/2 suffices with deep chains.
//
// Every grid point is an independent simulation, so the sweep fans its
// probes across a worker pool (baselines.PumpGrid): a 7-point rate
// sweep costs about one probe's wall-clock on enough cores. Output is
// byte-identical at any -workers value — results are ordered by grid
// index, never by completion.
//
// Usage:
//
//	sweep -n 9 -from 0.5 -to 0.8 -points 7 [-scap 2000] [-workers 8]
//	sweep -rate 0.7 -depths 3,4,6,9,12
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"aqt/internal/baselines"
	"aqt/internal/obs"
	"aqt/internal/rational"
	"aqt/internal/stability"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the determinism tests
// can compare -workers configurations without spawning processes.
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(errw)
	n := fs.Int("n", 9, "gadget depth for the rate sweep")
	from := fs.Float64("from", 0.5, "rate sweep start")
	to := fs.Float64("to", 0.8, "rate sweep end")
	points := fs.Int("points", 7, "rate sweep points")
	rate := fs.Float64("rate", 0, "fixed rate for a depth sweep (0 = rate sweep mode)")
	depths := fs.String("depths", "3,4,6,9,12", "depths for the depth sweep")
	sCap := fs.Int64("scap", 3000, "cap on the pump size S")
	workers := fs.Int("workers", 0, "probe worker pool size (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "live probe-progress status line on stderr")
	serve := fs.String("serve", "", "serve live sweep progress (/progress /healthz /debug/pprof) on this address while probing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The status line writes to errw only, so stdout stays byte-identical
	// with and without -progress (the golden tests' contract).
	var sl *obs.StatusLine
	var onProgress obs.ProgressFunc
	if *progress {
		sl = obs.NewStatusLine(errw)
		onProgress = sl.Progress()
	}
	if *serve != "" {
		srv := obs.NewServer()
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintln(errw, err)
			return 1
		}
		fmt.Fprintf(errw, "telemetry: serving on http://%s\n", addr)
		defer srv.Close()
		prev := onProgress
		onProgress = func(p obs.SweepProgress) {
			srv.OnProgress(p)
			if prev != nil {
				prev(p)
			}
		}
	}
	finishProgress := func() {
		if sl != nil {
			sl.Finish()
		}
	}

	if *rate > 0 {
		r := rational.FromFloat(*rate, 4096)
		var pts []stability.Point
		for _, ds := range strings.Split(*depths, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(ds))
			if err != nil || d < 1 {
				fmt.Fprintf(errw, "sweep: bad depth %q\n", ds)
				return 2
			}
			pts = append(pts, stability.Point{Rate: r, Depth: d})
		}
		grid := baselines.PumpGridOpt(pts, *sCap, *workers, onProgress)
		finishProgress()
		fmt.Fprintf(out, "depth sweep at r = %v:\n", r)
		fmt.Fprintf(out, "%6s %10s %8s %8s %8s %8s\n", "n", "r*(n)", "S", "S'", "growth", "pumps")
		for _, gr := range grid {
			if gr.Panic != "" {
				fmt.Fprintf(errw, "sweep: probe %v panicked: %s\n", gr.Point, gr.Panic)
				return 1
			}
			res := gr.Value
			thr := baselines.DepthThreshold(gr.Point.Depth, 20)
			fmt.Fprintf(out, "%6d %10.4f %8d %8d %8.4f %8v\n",
				gr.Point.Depth, thr.Float(), res.S, res.Measured, float64(res.Measured)/float64(res.S), res.Pumped())
		}
		return 0
	}

	pts := make([]stability.Point, *points)
	for i := range pts {
		f := *from
		if *points > 1 {
			f += (*to - *from) * float64(i) / float64(*points-1)
		}
		pts[i] = stability.Point{Rate: rational.FromFloat(f, 4096), Depth: *n}
	}
	grid := baselines.PumpGridOpt(pts, *sCap, *workers, onProgress)
	finishProgress()
	fmt.Fprintf(out, "rate sweep at depth n = %d (threshold r*(%d) = %.4f):\n",
		*n, *n, baselines.DepthThreshold(*n, 20).Float())
	fmt.Fprintf(out, "%8s %8s %8s %8s %8s\n", "r", "S", "S'", "growth", "pumps")
	for _, gr := range grid {
		if gr.Panic != "" {
			fmt.Fprintf(errw, "sweep: probe %v panicked: %s\n", gr.Point, gr.Panic)
			return 1
		}
		res := gr.Value
		fmt.Fprintf(out, "%8.4f %8d %8d %8.4f %8v\n",
			gr.Point.Rate.Float(), res.S, res.Measured, float64(res.Measured)/float64(res.S), res.Pumped())
	}
	return 0
}
