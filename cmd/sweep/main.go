// Command sweep measures how the gadget pump's growth factor depends
// on the injection rate and the pipeline depth n — the quantitative
// heart of the paper: the pump multiplies the queue by 2(1 − R_n),
// which exceeds 1 exactly when rⁿ < 2r − 1, and approaches 2r as
// n → ∞, so arbitrarily small ε = r − 1/2 suffices with deep chains.
//
// Usage:
//
//	sweep -n 9 -from 0.5 -to 0.8 -points 7 [-scap 2000]
//	sweep -rate 0.7 -depths 3,4,6,9,12
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aqt/internal/baselines"
	"aqt/internal/rational"
)

func main() {
	n := flag.Int("n", 9, "gadget depth for the rate sweep")
	from := flag.Float64("from", 0.5, "rate sweep start")
	to := flag.Float64("to", 0.8, "rate sweep end")
	points := flag.Int("points", 7, "rate sweep points")
	rate := flag.Float64("rate", 0, "fixed rate for a depth sweep (0 = rate sweep mode)")
	depths := flag.String("depths", "3,4,6,9,12", "depths for the depth sweep")
	sCap := flag.Int64("scap", 3000, "cap on the pump size S")
	flag.Parse()

	if *rate > 0 {
		r := rational.FromFloat(*rate, 4096)
		fmt.Printf("depth sweep at r = %v:\n", r)
		fmt.Printf("%6s %10s %8s %8s %8s %8s\n", "n", "r*(n)", "S", "S'", "growth", "pumps")
		for _, ds := range strings.Split(*depths, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(ds))
			if err != nil || d < 1 {
				fmt.Fprintf(os.Stderr, "sweep: bad depth %q\n", ds)
				os.Exit(2)
			}
			res := baselines.RunDepthPump(r, d, *sCap)
			thr := baselines.DepthThreshold(d, 20)
			fmt.Printf("%6d %10.4f %8d %8d %8.4f %8v\n",
				d, thr.Float(), res.S, res.Measured, float64(res.Measured)/float64(res.S), res.Pumped())
		}
		return
	}

	fmt.Printf("rate sweep at depth n = %d (threshold r*(%d) = %.4f):\n",
		*n, *n, baselines.DepthThreshold(*n, 20).Float())
	fmt.Printf("%8s %8s %8s %8s %8s\n", "r", "S", "S'", "growth", "pumps")
	for i := 0; i < *points; i++ {
		f := *from
		if *points > 1 {
			f += (*to - *from) * float64(i) / float64(*points-1)
		}
		r := rational.FromFloat(f, 4096)
		res := baselines.RunDepthPump(r, *n, *sCap)
		fmt.Printf("%8.4f %8d %8d %8.4f %8v\n",
			r.Float(), res.S, res.Measured, float64(res.Measured)/float64(res.S), res.Pumped())
	}
}
