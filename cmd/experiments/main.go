// Command experiments regenerates every table of EXPERIMENTS.md: the
// paper's theorems, lemmas, claims and figures (E1-E11, F1-F2) plus
// the literature baselines (B1-B4).
//
// Usage:
//
//	experiments [-quick] [-markdown] [-only E1,E7,B3]
//
// Without flags it runs the full configuration (several minutes); with
// -quick it runs the reduced sizing the unit tests use.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aqt/internal/expt"
)

func main() {
	quick := flag.Bool("quick", false, "reduced experiment sizing")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	csvDir := flag.String("csvdir", "", "also write one CSV per experiment into this directory")
	flag.Parse()

	runners := expt.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	if *only != "" {
		var filtered []expt.Runner
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			r := expt.ByID(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
				os.Exit(2)
			}
			filtered = append(filtered, *r)
		}
		runners = filtered
	}

	fmt.Fprintf(os.Stderr, "running %d experiments ...\n", len(runners))
	results := expt.RunAll(runners, expt.Quick(*quick), *jobs)
	failed := 0
	for _, res := range results {
		if *markdown {
			res.Table.Markdown(os.Stdout)
		} else {
			res.Table.Render(os.Stdout)
		}
		if !res.Table.OK {
			failed++
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, res.Table.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			if err := res.Table.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			f.Close()
		}
	}
	fmt.Fprint(os.Stderr, expt.Summary(results))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d table(s) FAILED\n", failed)
		os.Exit(1)
	}
}
