// Command experiments regenerates every table of EXPERIMENTS.md: the
// paper's theorems, lemmas, claims and figures (E1-E11, F1-F2) plus
// the literature baselines (B1-B4).
//
// Usage:
//
//	experiments [-quick] [-markdown] [-only E1,E7,B3]
//
// Without flags it runs the full configuration (several minutes); with
// -quick it runs the reduced sizing the unit tests use.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aqt/internal/expt"
	"aqt/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "reduced experiment sizing")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS, 1 = sequential)")
	csvDir := flag.String("csvdir", "", "also write one CSV per experiment into this directory")
	progress := flag.Bool("progress", false, "live experiment-progress status line on stderr")
	metrics := flag.Bool("metrics", false, "print the merged harness metrics on stderr")
	trace := flag.String("trace", "", "write a harness-level JSONL event trace to this file")
	serve := flag.String("serve", "", "serve live progress and the merged harness metrics (/progress /metrics /healthz /debug/pprof) on this address")
	flag.Parse()

	runners := expt.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}
	if *only != "" {
		var filtered []expt.Runner
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			r := expt.ByID(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
				os.Exit(2)
			}
			filtered = append(filtered, *r)
		}
		runners = filtered
	}

	fmt.Fprintf(os.Stderr, "running %d experiments ...\n", len(runners))
	var onProgress obs.ProgressFunc
	var sl *obs.StatusLine
	if *progress {
		sl = obs.NewStatusLine(os.Stderr)
		onProgress = sl.Progress()
	}
	var srv *obs.Server
	if *serve != "" {
		srv = obs.NewServer()
		addr, err := srv.Start(*serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", addr)
		defer srv.Close()
		prev := onProgress
		onProgress = func(p obs.SweepProgress) {
			srv.OnProgress(p)
			if prev != nil {
				prev(p)
			}
		}
	}
	// RunAllTelemetry merges one obs.Registry per worker goroutine into
	// a single snapshot — the sweep-level Merge path.
	results, snap := expt.RunAllTelemetry(runners, expt.Quick(*quick), *jobs, onProgress)
	if srv != nil {
		// The merged cross-worker snapshot becomes the final /metrics
		// exposition once all runners are done.
		srv.PublishSnapshot(snap)
	}
	if sl != nil {
		sl.Finish()
	}
	failed := 0
	for _, res := range results {
		if *markdown {
			res.Table.Markdown(os.Stdout)
		} else {
			res.Table.Render(os.Stdout)
		}
		if !res.Table.OK {
			failed++
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, res.Table.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			if err := res.Table.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			f.Close()
		}
	}
	fmt.Fprint(os.Stderr, expt.Summary(results))
	if *metrics {
		fmt.Fprintln(os.Stderr, "harness metrics (merged across workers):")
		if err := snap.WriteText(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	if *trace != "" {
		if err := writeHarnessTrace(*trace, results); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d table(s) FAILED\n", failed)
		os.Exit(1)
	}
}

// writeHarnessTrace records the experiment lifecycle — one marker per
// completed runner (in registry order), one failure event per panic or
// failed table — in the flight-recorder JSONL schema, self-validated
// after writing. Timestamps are cumulative elapsed milliseconds; the
// engines inside the runners are not traced here (use cmd/aqtsim
// -trace for engine-level events).
func writeHarnessTrace(path string, results []expt.Result) error {
	fr := obs.NewFlightRecorder(2 * len(results))
	var t int64
	for _, res := range results {
		t += res.Elapsed.Milliseconds()
		status := "ok"
		if res.Table == nil || !res.Table.OK {
			status = "FAIL"
		}
		fr.Mark(t, fmt.Sprintf("%s %s (%s, %.2fs)",
			res.Runner.ID, res.Runner.Name, status, res.Elapsed.Seconds()))
		if res.Panic != "" {
			fr.RecordFailure(t, fmt.Sprintf("%s panicked: %s", res.Runner.ID, res.Panic))
		} else if res.Table != nil && !res.Table.OK {
			fr.RecordFailure(t, fmt.Sprintf("%s table FAILED", res.Runner.ID))
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fr.DumpJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	f2, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f2.Close()
	n, err := obs.ValidateJSONL(f2)
	if err != nil {
		return fmt.Errorf("trace schema: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace: %d events written to %s, schema OK\n", n, path)
	return nil
}
