// Command gadgetviz renders the paper's figures and parameter tables:
// DOT drawings of Fₙ, F²ₙ (Figure 3.1) and G_ε (Figure 3.2), and the
// (ε → n, S₀, M) solver output.
//
// Usage:
//
//	gadgetviz -dot f2 -n 3            # Figure 3.1 as DOT on stdout
//	gadgetviz -dot geps -eps 1/5      # Figure 3.2 as DOT
//	gadgetviz -params -eps 1/5        # parameter table
//	gadgetviz -thresholds             # depth-threshold table r*(n)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aqt/internal/baselines"
	"aqt/internal/core"
	"aqt/internal/gadget"
	"aqt/internal/rational"
)

func parseRat(s string) (rational.Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err1 := strconv.ParseInt(num, 10, 64)
		d, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return rational.Rat{}, fmt.Errorf("bad rational %q", s)
		}
		return rational.New(n, d), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return rational.Rat{}, fmt.Errorf("bad value %q", s)
	}
	return rational.FromFloat(f, 1_000_000), nil
}

func main() {
	dot := flag.String("dot", "", "emit DOT: fn | f2 | geps")
	n := flag.Int("n", 3, "gadget path length for -dot fn/f2")
	epsStr := flag.String("eps", "1/5", "epsilon for -dot geps and -params")
	params := flag.Bool("params", false, "print the parameter solution for -eps")
	thresholds := flag.Bool("thresholds", false, "print the depth-threshold table r*(n)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "gadgetviz: %v\n", err)
		os.Exit(2)
	}
	eps, err := parseRat(*epsStr)
	if err != nil {
		die(err)
	}

	switch *dot {
	case "fn":
		c := gadget.NewChain(*n, 1, false)
		if err := c.G.DOT(os.Stdout, fmt.Sprintf("F_%d", *n)); err != nil {
			die(err)
		}
		return
	case "f2":
		c := gadget.NewChain(*n, 2, false)
		if err := c.G.DOT(os.Stdout, fmt.Sprintf("F2_%d (Figure 3.1)", *n)); err != nil {
			die(err)
		}
		return
	case "geps":
		p := core.Solve(eps)
		m := p.MinMEmpirical(rational.FromInt(2))
		c := gadget.NewChain(p.N, m, true)
		if err := c.G.DOT(os.Stdout, fmt.Sprintf("G_eps eps=%v (Figure 3.2)", eps)); err != nil {
			die(err)
		}
		return
	case "":
	default:
		die(fmt.Errorf("unknown -dot value %q", *dot))
	}

	if *params {
		p := core.Solve(eps)
		g, _ := p.PumpGrowth().Float64()
		fmt.Printf("eps = %v  =>  r = %v\n", p.Eps, p.R)
		fmt.Printf("n (gadget depth)        = %d\n", p.N)
		fmt.Printf("S0 (min pump size)      = %d\n", p.S0)
		fmt.Printf("pump growth 2(1-R_n)    = %.4f (lemma guarantees >= 1+eps = %.4f)\n",
			g, 1+eps.Float())
		fmt.Printf("M (paper, (1+eps)-based)= %d\n", p.MinM(rational.FromInt(1)))
		fmt.Printf("M (empirical, margin 2) = %d\n", p.MinMEmpirical(rational.FromInt(2)))
		fmt.Printf("appendix estimates      : n ~ %.1f, S0 ~ %.0f\n",
			core.AsymptoticN(eps.Float()), core.AsymptoticS0(eps.Float()))
		return
	}
	if *thresholds {
		fmt.Println("depth n  r*(n) (pump threshold: r^n = 2r-1)")
		for _, depth := range []int{3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 64} {
			fmt.Printf("%7d  %.5f\n", depth, baselines.DepthThreshold(depth, 22).Float())
		}
		fmt.Println("limit    0.50000 (the paper's 1/2 + eps bound)")
		return
	}
	flag.Usage()
}
