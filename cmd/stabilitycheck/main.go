// Command stabilitycheck exercises the paper's section 4 bounds on a
// chosen topology: it drives random (w,r) traffic at the theorem's
// rate and verifies that no packet stays in one buffer longer than
// floor(w·r) steps (Theorem 4.1 for arbitrary greedy policies at
// r ≤ 1/(d+1); Theorem 4.3 for time-priority policies at r ≤ 1/d).
//
// Each (theorem, policy) check is an independent simulation, so the
// checks fan out across a stability.SweepGrid worker pool: every probe
// builds its own topology, engine and adversary (per-worker engine
// ownership — nothing is shared), and results print in the fixed
// theorem/policy order whatever -workers is.
//
// Usage:
//
//	stabilitycheck -d 3 -w 40 -steps 20000 [-topo complete -size 5] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/obs"
	"aqt/internal/policy"
	"aqt/internal/rational"
	"aqt/internal/stability"
)

func main() {
	d := flag.Int("d", 3, "longest route length")
	w := flag.Int64("w", 40, "adversary window")
	steps := flag.Int64("steps", 20000, "steps per run")
	topo := flag.String("topo", "complete", "topology: complete|ring|grid")
	size := flag.Int("size", 0, "topology size (0 = d+2)")
	seed := flag.Int64("seed", 7, "adversary seed")
	workers := flag.Int("workers", 0, "check worker pool size (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "live check-progress status line on stderr")
	flag.Parse()

	sz := *size
	if sz == 0 {
		sz = *d + 2
	}
	build, ok := map[string]func(int) *graph.Graph{
		"complete": graph.Complete,
		"ring":     graph.Ring,
		"grid":     func(n int) *graph.Graph { return graph.Grid(n, n) },
	}[*topo]
	if !ok {
		fmt.Fprintf(os.Stderr, "stabilitycheck: unknown topology %q\n", *topo)
		os.Exit(2)
	}

	// One check per (rate regime, policy); greedy checks first, then
	// the tighter time-priority pair, exactly as they print.
	type check struct {
		pol  policy.Policy
		rate rational.Rat
		seed int64
	}
	greedyRate := stability.GreedyRateBound(*d)
	tpRate := stability.TimePriorityRateBound(*d)
	var checks []check
	for _, pol := range policy.All() {
		checks = append(checks, check{pol, greedyRate, *seed})
	}
	nGreedy := len(checks)
	for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}} {
		checks = append(checks, check{pol, tpRate, *seed + 1})
	}

	var onProgress obs.ProgressFunc
	var sl *obs.StatusLine
	if *progress {
		sl = obs.NewStatusLine(os.Stderr)
		onProgress = sl.Progress()
	}
	results := stability.SweepGridOpt(checks, func(c check) stability.ResidenceResult {
		// Built inside the probe: the graph, adversary and engine stay
		// confined to the worker that runs this check.
		g := build(sz)
		adv := adversary.NewRandomWR(g, *w, c.rate, *d, c.seed)
		return stability.CheckResidence(g, c.pol, adv, *w, c.rate, *d, *steps)
	}, *workers, onProgress)
	if sl != nil {
		sl.Finish()
	}

	fail := 0
	fmt.Printf("Theorem 4.1 — every greedy policy at r = 1/(d+1) = 1/%d:\n", *d+1)
	for i, r := range results {
		if i == nGreedy {
			fmt.Printf("\nTheorem 4.3 — time-priority policies at r = 1/d = 1/%d:\n", *d)
		}
		if r.Panic != "" {
			fmt.Fprintf(os.Stderr, "stabilitycheck: %s check panicked: %s\n", r.Point.pol.Name(), r.Panic)
			os.Exit(2)
		}
		fmt.Printf("  %s\n", r.Value)
		if !r.Value.OK() {
			fail++
		}
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "\nstabilitycheck: %d bound violation(s)\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall residence bounds held")
}
