// Command stabilitycheck exercises the paper's section 4 bounds on a
// chosen topology: it drives random (w,r) traffic at the theorem's
// rate and verifies that no packet stays in one buffer longer than
// floor(w·r) steps (Theorem 4.1 for arbitrary greedy policies at
// r ≤ 1/(d+1); Theorem 4.3 for time-priority policies at r ≤ 1/d).
//
// Usage:
//
//	stabilitycheck -d 3 -w 40 -steps 20000 [-topo complete -size 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"aqt/internal/adversary"
	"aqt/internal/graph"
	"aqt/internal/policy"
	"aqt/internal/sim"
	"aqt/internal/stability"
)

func main() {
	d := flag.Int("d", 3, "longest route length")
	w := flag.Int64("w", 40, "adversary window")
	steps := flag.Int64("steps", 20000, "steps per run")
	topo := flag.String("topo", "complete", "topology: complete|ring|grid")
	size := flag.Int("size", 0, "topology size (0 = d+2)")
	seed := flag.Int64("seed", 7, "adversary seed")
	flag.Parse()

	sz := *size
	if sz == 0 {
		sz = *d + 2
	}
	var g *graph.Graph
	switch *topo {
	case "complete":
		g = graph.Complete(sz)
	case "ring":
		g = graph.Ring(sz)
	case "grid":
		g = graph.Grid(sz, sz)
	default:
		fmt.Fprintf(os.Stderr, "stabilitycheck: unknown topology %q\n", *topo)
		os.Exit(2)
	}

	fail := 0
	fmt.Printf("Theorem 4.1 — every greedy policy at r = 1/(d+1) = 1/%d:\n", *d+1)
	rate := stability.GreedyRateBound(*d)
	for _, pol := range policy.All() {
		adv := adversary.NewRandomWR(g, *w, rate, *d, *seed)
		res := stability.CheckResidence(g, pol, sim.Adversary(adv), *w, rate, *d, *steps)
		fmt.Printf("  %s\n", res)
		if !res.OK() {
			fail++
		}
	}

	fmt.Printf("\nTheorem 4.3 — time-priority policies at r = 1/d = 1/%d:\n", *d)
	rate = stability.TimePriorityRateBound(*d)
	for _, pol := range []policy.Policy{policy.FIFO{}, policy.LIS{}} {
		adv := adversary.NewRandomWR(g, *w, rate, *d, *seed+1)
		res := stability.CheckResidence(g, pol, adv, *w, rate, *d, *steps)
		fmt.Printf("  %s\n", res)
		if !res.OK() {
			fail++
		}
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "\nstabilitycheck: %d bound violation(s)\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall residence bounds held")
}
