package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenFiles are the fast scenarios the golden test runs — every
// topology/adversary family, none of the big replay corpora.
var goldenFiles = []string{"quickstart", "b2", "e7", "e8", "u1"}

// TestRunGoldenWorkerIndependent holds `scenario run` to two promises:
// the byte output is identical whether the files run on 1 worker or 8
// (reports render in the workers, print in input order), and it
// matches the checked-in golden transcript (full determinism across
// runs and machines). Refresh with `go test ./cmd/scenario -update`.
func TestRunGoldenWorkerIndependent(t *testing.T) {
	var paths []string
	for _, f := range goldenFiles {
		p := filepath.Join("..", "..", "scenarios", f+".json")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing scenario %s (run `go run ./cmd/scenario emit`): %v", f, err)
		}
		paths = append(paths, p)
	}

	runWith := func(workers string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		code := run(append([]string{"run", "-workers", workers}, paths...), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("run -workers %s exited %d\nstderr: %s\nstdout: %s",
				workers, code, stderr.String(), stdout.String())
		}
		return stdout.String()
	}

	seq := runWith("1")
	par := runWith("8")
	if seq != par {
		t.Fatalf("output depends on worker count:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", seq, par)
	}

	golden := filepath.Join("testdata", "run.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if string(want) != seq {
		t.Fatalf("output drifted from %s (re-run with -update if intended):\n-- want --\n%s\n-- got --\n%s",
			golden, want, seq)
	}
}

// TestValidateCorpus runs `scenario validate` over every checked-in
// scenario — the Go-level version of `make scenario-smoke`'s first half.
func TestValidateCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario corpus: %v", err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(append([]string{"validate"}, paths...), &stdout, &stderr); code != 0 {
		t.Fatalf("validate exited %d:\n%s", code, stderr.String())
	}
}

// TestUsage pins the exit codes for bad invocations.
func TestUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"frobnicate"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run([]string{"run"}, &stdout, &stderr); code != 2 {
		t.Errorf("run with no files: exit %d, want 2", code)
	}
	if code := run([]string{"validate", "/nonexistent/x.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("validate missing file: exit %d, want 1", code)
	}
}
