// Command scenario validates, runs and emits declarative scenario
// files (see internal/scenario and the README's "Scenario files"
// section).
//
//	scenario validate file.json...          strict validation, line-precise errors
//	scenario run [-workers n] file.json...  build + run + deterministic report
//	scenario emit [-dir scenarios] [id...]  serialize the hand-wired experiments
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"aqt/internal/obs"
	"aqt/internal/scenario"
	"aqt/internal/stability"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: scenario validate file.json...\n")
	fmt.Fprintf(w, "       scenario run [-workers n] file.json...\n")
	fmt.Fprintf(w, "       scenario emit [-dir scenarios] [id...]\n")
	fmt.Fprintf(w, "emittable ids: %v\n", scenario.EmitIDs())
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "validate":
		return cmdValidate(args[1:], stdout, stderr)
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "emit":
		return cmdEmit(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "scenario: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func cmdValidate(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "scenario validate: no files")
		return 2
	}
	bad := 0
	for _, f := range files {
		if _, err := scenario.Load(f); err != nil {
			fmt.Fprintln(stderr, err)
			bad++
			continue
		}
		fmt.Fprintf(stdout, "ok\t%s\n", f)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// runResult is one file's rendered report; rendering happens inside
// the worker, printing in input order afterwards, so the byte output
// is independent of the worker count.
type runResult struct {
	report string
	failed bool
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	every := fs.Int64("checkpoint-every", 0, "write a checkpoint every N steps (0 = off)")
	ckptDir := fs.String("checkpoint-dir", "checkpoints", "directory for -checkpoint-every files (<spec name>.ckpt.json, overwritten per segment)")
	restore := fs.String("restore", "", "resume a single scenario from this checkpoint file (one input file only)")
	serve := fs.String("serve", "", "serve live telemetry (/metrics /series /trace /healthz /debug/pprof) on this address while running (one input file only)")
	serveHold := fs.Bool("serve-hold", false, "with -serve: keep serving the final state after the run until killed")
	sampleEvery := fs.Int64("sample-every", 0, "with -serve: sampling stride for the telemetry sampler attached to the run (0 = auto ~512 samples)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "scenario run: no files")
		return 2
	}
	if *restore != "" && len(files) != 1 {
		fmt.Fprintln(stderr, "scenario run: -restore takes exactly one scenario file")
		return 2
	}
	if (*serveHold || *sampleEvery > 0) && *serve == "" {
		fmt.Fprintln(stderr, "scenario run: -serve-hold and -sample-every require -serve")
		return 2
	}
	if *serve != "" {
		if len(files) != 1 {
			fmt.Fprintln(stderr, "scenario run: -serve takes exactly one scenario file")
			return 2
		}
		if *every > 0 {
			if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		return cmdRunServe(files[0], *serve, *serveHold, *sampleEvery, *restore, *every, *ckptDir, stdout, stderr)
	}
	if *every > 0 {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	results := stability.SweepGrid(files, func(path string) runResult {
		b, err := scenario.BuildFile(path)
		if err != nil {
			return runResult{report: err.Error() + "\n", failed: true}
		}
		if *restore != "" {
			data, err := os.ReadFile(*restore)
			if err != nil {
				return runResult{report: "scenario run: " + err.Error() + "\n", failed: true}
			}
			cp, err := scenario.DecodeCheckpoint(*restore, data)
			if err != nil {
				return runResult{report: err.Error() + "\n", failed: true}
			}
			if err := b.Restore(cp); err != nil {
				return runResult{report: "scenario run: " + err.Error() + "\n", failed: true}
			}
		}
		var out scenario.Outcome
		switch {
		case *every > 0:
			dest := filepath.Join(*ckptDir, sanitizeName(b.Spec.Name)+".ckpt.json")
			out, err = b.RunCheckpointed(b.Spec.Run.Mode, *every, func(cp *scenario.Checkpoint, step int64) error {
				return os.WriteFile(dest, cp.Encode(), 0o644)
			})
			if err != nil {
				return runResult{report: "scenario run: " + err.Error() + "\n", failed: true}
			}
		case *restore != "":
			out = b.RunRemaining()
		default:
			out = b.Run()
		}
		var buf bytes.Buffer
		b.WriteReport(&buf, out)
		return runResult{report: buf.String(), failed: !out.OK()}
	}, *workers)
	bad := 0
	for i, gr := range results {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if gr.Panic != "" {
			fmt.Fprintf(stdout, "%s: PANIC: %s\n", gr.Point, gr.Panic)
			bad++
			continue
		}
		fmt.Fprint(stdout, gr.Value.report)
		if gr.Value.failed {
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// cmdRunServe runs exactly one scenario with an embedded telemetry
// server attached. Serve-only observers fill whatever the spec does
// not configure — a meter so /metrics always has families to expose,
// and a sampler to drive the publish cadence — but stay out of Built,
// so checkpoints still match the spec's observer set exactly. Results
// are unchanged either way (leap windows are exact by construction),
// only the leap window census and per-step cost can differ from an
// unserved run.
func cmdRunServe(path, addr string, hold bool, sampleEvery int64, restore string, every int64, ckptDir string, stdout, stderr io.Writer) int {
	b, err := scenario.BuildFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	meter := b.Meter
	serveOnlyMeter := meter == nil
	if serveOnlyMeter {
		meter = obs.NewMeter(nil)
		b.Engine.AddObserver(meter)
	}
	sam := b.Sampler
	if sam == nil {
		ev := sampleEvery
		if ev <= 0 {
			if ev = b.Spec.Run.Steps / 512; ev < 1 {
				ev = 1
			}
		}
		sam = obs.NewSampler(obs.SamplerConfig{Every: ev, Meter: meter})
		sam.Attach(b.Engine)
	}
	reg := meter.Registry()
	srv := obs.NewServer()
	publish := func() {
		srv.PublishTelemetry(b.Engine.Now(), reg, sam, b.Spans, nil)
	}
	sam.OnSample = publish
	got, err := srv.Start(addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "telemetry: serving on http://%s\n", got)
	publish()
	if restore != "" {
		data, err := os.ReadFile(restore)
		if err != nil {
			fmt.Fprintln(stderr, "scenario run: "+err.Error())
			return 1
		}
		cp, err := scenario.DecodeCheckpoint(restore, data)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := b.Restore(cp); err != nil {
			fmt.Fprintln(stderr, "scenario run: "+err.Error())
			return 1
		}
	}
	var out scenario.Outcome
	switch {
	case every > 0:
		dest := filepath.Join(ckptDir, sanitizeName(b.Spec.Name)+".ckpt.json")
		out, err = b.RunCheckpointed(b.Spec.Run.Mode, every, func(cp *scenario.Checkpoint, step int64) error {
			return os.WriteFile(dest, cp.Encode(), 0o644)
		})
		if err != nil {
			fmt.Fprintln(stderr, "scenario run: "+err.Error())
			return 1
		}
	case restore != "":
		out = b.RunRemaining()
	default:
		out = b.Run()
	}
	if serveOnlyMeter {
		meter.Finish(b.Engine)
	}
	publish()
	b.WriteReport(stdout, out)
	if hold {
		fmt.Fprintln(stderr, "telemetry: run finished; holding server until killed")
		select {}
	}
	srv.Close()
	if !out.OK() {
		return 1
	}
	return 0
}

// sanitizeName maps a spec's display name to a safe file stem.
func sanitizeName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "scenario"
	}
	return string(out)
}

func cmdEmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "scenarios", "output directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ids := fs.Args()
	if len(ids) == 0 {
		ids = scenario.EmitIDs()
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	results := stability.SweepGrid(ids, scenario.Emit, 0)
	for _, gr := range results {
		if gr.Panic != "" {
			fmt.Fprintf(stderr, "emit %s: PANIC: %s\n", gr.Point, gr.Panic)
			return 1
		}
		em := gr.Value
		path := filepath.Join(*dir, em.ID+".json")
		if err := os.WriteFile(path, em.Spec.Encode(), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote\t%s\t(%s, %d steps)\n", path, em.Spec.Name, em.Spec.Run.Steps)
	}
	return 0
}
